package rma

// Cursor iterates the array in key order without callbacks, for callers
// that need pull-style traversal (merge joins, pagination). It is a
// snapshot-free iterator: mutating the array invalidates it (like the
// paper's sequential design, there is no concurrency control).
type Cursor struct {
	pairs []cursorPair
	pos   int
}

type cursorPair struct{ k, v int64 }

// NewCursor returns a cursor positioned before the first element with
// key >= lo, bounded by hi (inclusive).
//
// The cursor materializes the range up front through the array's
// tight-loop scan: for range sizes up to millions of elements this is
// both simpler and faster than incremental segment hopping, and it makes
// the cursor robust to subsequent mutations.
func (r *Array) NewCursor(lo, hi int64) *Cursor {
	c := &Cursor{}
	n, _ := r.Sum(lo, hi)
	c.pairs = make([]cursorPair, 0, n)
	r.ScanRange(lo, hi, func(k, v int64) bool {
		c.pairs = append(c.pairs, cursorPair{k, v})
		return true
	})
	return c
}

// Next advances the cursor and reports whether an element is available.
func (c *Cursor) Next() bool {
	if c.pos >= len(c.pairs) {
		return false
	}
	c.pos++
	return true
}

// Key returns the current element's key. Valid only after a true Next.
func (c *Cursor) Key() int64 { return c.pairs[c.pos-1].k }

// Value returns the current element's value. Valid only after a true
// Next.
func (c *Cursor) Value() int64 { return c.pairs[c.pos-1].v }

// Remaining returns the number of elements not yet visited.
func (c *Cursor) Remaining() int { return len(c.pairs) - c.pos }
