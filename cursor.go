package rma

import "rma/internal/core"

// Cursor iterates the array in key order without callbacks, for callers
// that need pull-style traversal (merge joins, pagination). It is a
// lazy segment-hopping walker holding O(1) state — the current segment
// and an offset into its run — regardless of the range size. It is
// snapshot-free: mutating the array invalidates it (like the paper's
// sequential design, there is no concurrency control).
type Cursor struct {
	w     core.Walker
	k, v  int64
	valid bool
}

// NewCursor returns a cursor positioned before the first element with
// key >= lo, bounded by hi (inclusive). Construction costs one index
// descent; no part of the range is materialized.
func (r *Array) NewCursor(lo, hi int64) *Cursor {
	return &Cursor{w: r.a.NewWalker(lo, hi)}
}

// Next advances the cursor and reports whether an element is available.
func (c *Cursor) Next() bool {
	c.k, c.v, c.valid = c.w.Next()
	return c.valid
}

// Key returns the current element's key. Valid only after a true Next.
func (c *Cursor) Key() int64 { return c.k }

// Value returns the current element's value. Valid only after a true
// Next.
func (c *Cursor) Value() int64 { return c.v }

// SeekGE repositions the cursor before the first element with key >= key
// via one static-index descent, keeping the upper bound. The next Next
// returns that element. (Named SeekGE rather than Seek to avoid the
// io.Seeker signature.)
func (c *Cursor) SeekGE(key int64) {
	c.w.SeekGE(key)
	c.valid = false
}

// Remaining returns the number of elements not yet visited, computed
// from the per-segment cardinality prefix sums in O(log n).
func (c *Cursor) Remaining() int { return c.w.Remaining() }
