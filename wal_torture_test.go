package rma

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// WAL kill -9 torture: the zero-lost-acks crash contract, end to end.
// A child process (this binary re-execed with RMA_WAL_TORTURE_DIR set)
// runs a deterministic single-threaded op stream against a durable
// sharded map with the write-ahead log enabled (fsync "always") and
// tiny segments, so the automatic checkpoint scheduler, segment
// rotation and truncation all churn constantly. The child appends an
// 8-byte op count to an ack file after EACH op returns — an op returns
// only after its WAL commit wave is durable, so every acked op must
// survive any kill. The parent SIGKILLs the child at random offsets —
// mid-wave, mid-rotation, mid-truncation, mid-checkpoint — recovers
// the map, and verifies:
//
//   - zero lost acked writes: the recovered content equals the
//     reference after exactly P ops, where P >= acked;
//   - exact prefix: the child is single-threaded, so at most one op is
//     in flight when the kill lands and P ∈ {acked, acked+1} — the
//     recovered state IS one of the two candidate prefixes, key for
//     key and value for value, never a partial application.
//
// The op stream is a pure function of the op index: op i inserts the
// unique key i<<1 unless splitmix64(i+1)%8 == 0, in which case it
// deletes the (possibly absent) key of an earlier op. Unique put keys
// keep the reference a plain map (no multiset bookkeeping), and make
// resumption exact: a restarted child probes whether the one
// potentially-unacked op landed before re-applying it. The ack file is
// deliberately NOT fsynced — it rides the page cache, which survives
// killing the process; the durability contract under test is the
// map's, not the ack file's.
//
// Cycles: 50 by default (8 with -short), scaled by RMA_TORTURE_SCALE —
// the knob CI's nightly job turns up.

const (
	walTortureMaxOps = 1 << 20
	// walTortureMinProgress is how many NEW acked ops the parent waits
	// for before killing — enough for several commit waves, rotations
	// and scheduler rounds per cycle.
	walTortureMinProgress = 200
)

func walTortureCfg() WALConfig {
	return WALConfig{
		// 4 KiB segments rotate every couple hundred records; the
		// scheduler checkpoints every 25ms or 16 KiB of live log, so
		// truncation races the kill constantly.
		SegmentBytes:       4096,
		CheckpointInterval: 25 * time.Millisecond,
		CheckpointWALBytes: 16 << 10,
		SchedulerPeriod:    10 * time.Millisecond,
		// Fsync defaults to "always": an op ack implies durable.
	}
}

func walTortureOpts() []Option {
	return []Option{
		WithSegmentCapacity(8),
		WithPageCapacity(64),
		WithBackgroundRebalancing(2),
		WithWAL(walTortureCfg()),
	}
}

// walTortureApply replays op i into the reference map.
func walTortureApply(ref map[int64]int64, i int) {
	h := splitmix64(uint64(i) + 1)
	if i > 0 && h%8 == 0 {
		delete(ref, int64((h>>8)%uint64(i))<<1)
	} else {
		ref[int64(i)<<1] = int64(i)
	}
}

// TestWALTortureChild is the child body — a no-op unless re-execed by
// the parent with RMA_WAL_TORTURE_DIR set. It acks every op and runs
// until killed.
func TestWALTortureChild(t *testing.T) {
	dir := os.Getenv("RMA_WAL_TORTURE_DIR")
	if dir == "" {
		t.Skip("torture child helper; driven by TestWALKill9Torture")
	}
	ackPath := os.Getenv("RMA_WAL_TORTURE_ACK")

	s, err := OpenSharded(dir, walTortureOpts()...)
	if errors.Is(err, ErrNoCheckpoint) {
		s, err = NewSharded(tortureShards, append(walTortureOpts(), WithDurability(dir))...)
		if err != nil {
			tortureDie("create: %v", err)
		}
	} else if err != nil {
		tortureDie("open: %v", err)
	}

	start := int(lastAckAt(ackPath))
	ack, err := os.OpenFile(ackPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		tortureDie("ack log: %v", err)
	}
	for i := start; i < walTortureMaxOps; i++ {
		h := splitmix64(uint64(i) + 1)
		if i > 0 && h%8 == 0 {
			// Deletes are idempotent re-applied (the key is just absent
			// the second time), so no resumption probe is needed.
			if _, err := s.Delete(int64((h>>8)%uint64(i)) << 1); err != nil {
				tortureDie("op %d: delete: %v", i, err)
			}
		} else {
			key := int64(i) << 1
			apply := true
			if i == start {
				// Op start may have landed durably before the previous
				// kill beat its ack; its key is unique to it, so a probe
				// decides exactly.
				if _, ok := s.Find(key); ok {
					apply = false
				}
			}
			if apply {
				if err := s.Insert(key, int64(i)); err != nil {
					tortureDie("op %d: insert: %v", i, err)
				}
			}
		}
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(i+1))
		if _, err := ack.Write(rec[:]); err != nil {
			tortureDie("ack write: %v", err)
		}
	}
	ack.Close()
	s.Close()
}

// lastAckAt reads the newest complete ack record without a testing.T
// (shared by the child, which dies rather than fails).
func lastAckAt(path string) uint64 {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	n := len(b) / 8 * 8
	if n == 0 {
		return 0
	}
	return binary.LittleEndian.Uint64(b[n-8:])
}

// walTortureMatches reports whether the map's content equals ref
// exactly.
func walTortureMatches(s *Sharded, ref map[int64]int64) bool {
	if s.Size() != len(ref) {
		return false
	}
	for k, v := range s.All() {
		if rv, ok := ref[k]; !ok || rv != v {
			return false
		}
	}
	return true
}

// verifyWALTortureDir recovers the map and checks it equals the
// reference after exactly acked or acked+1 ops; returns the matched
// prefix length.
func verifyWALTortureDir(t *testing.T, dir string, acked uint64) uint64 {
	t.Helper()
	s, err := OpenSharded(dir, walTortureOpts()...)
	if errors.Is(err, ErrNoCheckpoint) {
		if acked != 0 {
			t.Fatalf("%d acked ops but no recovery point on disk", acked)
		}
		return 0
	}
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer s.Close()
	if err := s.Validate(); err != nil {
		t.Fatalf("recovered map invalid: %v", err)
	}

	ref := make(map[int64]int64)
	for i := 0; i < int(acked); i++ {
		walTortureApply(ref, i)
	}
	if walTortureMatches(s, ref) {
		return acked
	}
	// One op may have landed durably after the last ack made it out.
	walTortureApply(ref, int(acked))
	if walTortureMatches(s, ref) {
		return acked + 1
	}
	t.Fatalf("recovered content matches neither prefix %d nor %d: size %d, ref size %d",
		acked, acked+1, s.Size(), len(ref))
	return 0
}

// TestWALKill9Torture is the crash loop: spawn child, let it ack a few
// hundred new ops, SIGKILL it at a random offset, recover and verify
// the exact-prefix contract. Repeat.
func TestWALKill9Torture(t *testing.T) {
	if os.Getenv("RMA_WAL_TORTURE_DIR") != "" || os.Getenv("RMA_TORTURE_DIR") != "" {
		t.Skip("torture child process")
	}
	if testing.Short() && os.Getenv("RMA_TORTURE_SCALE") == "" {
		t.Skip("kill -9 torture skipped in -short mode")
	}
	cycles := 50
	if testing.Short() {
		cycles = 8
	}
	if s := os.Getenv("RMA_TORTURE_SCALE"); s != "" {
		scale, err := strconv.Atoi(s)
		if err != nil || scale < 1 {
			t.Fatalf("bad RMA_TORTURE_SCALE %q", s)
		}
		cycles *= scale
	}

	// Under RMA_TORTURE_BASE, state lives in a wal/ subtree so a CI
	// artifact carries both tortures' trees without collision.
	base := os.Getenv("RMA_TORTURE_BASE")
	if base == "" {
		base = t.TempDir()
	} else {
		base = filepath.Join(base, "wal")
		if err := os.MkdirAll(base, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(base, "map")
	ackPath := filepath.Join(base, "acks.log")
	rng := rand.New(rand.NewSource(20260808))
	var total uint64

	for cycle := 0; cycle < cycles; cycle++ {
		ackBefore := lastAck(t, ackPath)
		cmd := exec.Command(os.Args[0], "-test.run=^TestWALTortureChild$")
		cmd.Env = append(os.Environ(),
			"RMA_WAL_TORTURE_DIR="+dir, "RMA_WAL_TORTURE_ACK="+ackPath)
		var out strings.Builder
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		exited := make(chan error, 1)
		go func() { exited <- cmd.Wait() }()

		deadline := time.After(60 * time.Second)
	progress:
		for lastAck(t, ackPath) < ackBefore+walTortureMinProgress {
			select {
			case err := <-exited:
				if err != nil {
					t.Fatalf("cycle %d: child died on its own: %v\n%s", cycle, err, out.String())
				}
				break progress
			case <-deadline:
				cmd.Process.Kill()
				<-exited
				t.Fatalf("cycle %d: fewer than %d acked ops in 60s (at %d)\n%s",
					cycle, walTortureMinProgress, lastAck(t, ackPath), out.String())
			case <-time.After(time.Millisecond):
			}
		}
		select {
		case <-exited:
		default:
			time.Sleep(time.Duration(rng.Intn(40)) * time.Millisecond)
			cmd.Process.Kill()
			<-exited
		}

		acked := lastAck(t, ackPath)
		if acked < ackBefore {
			t.Fatalf("cycle %d: ack count went backwards: %d after %d", cycle, acked, ackBefore)
		}
		p := verifyWALTortureDir(t, dir, acked)
		if p != acked && p != acked+1 {
			t.Fatalf("cycle %d: durable prefix %d outside {%d,%d}", cycle, p, acked, acked+1)
		}
		total = p
	}
	if total == 0 {
		t.Fatal("torture loop made no progress: no op ever acknowledged")
	}
	t.Logf("survived %d kill -9 cycles with zero lost acked writes; durable prefix %d", cycles, total)
}
