package rma

import (
	"sync"
	"sync/atomic"
	"testing"

	"rma/internal/workload"
)

// Unit tests for the lock-free read path at the facade: exactness
// against a quiescent map, deterministic retry provocation, the
// zero-allocation pin on the fast path, and degradation to the locked
// path when the option is off.

// newLockFreeFixture builds a lock-free sharded map holding diffVal
// pairs for every even key in [0, 2n).
func newLockFreeFixture(t *testing.T, n int, opts ...Option) *Sharded {
	t.Helper()
	sample := make([]int64, 128)
	for i := range sample {
		sample[i] = int64(i) * int64(2*n) / int64(len(sample))
	}
	opts = append([]Option{WithSegmentCapacity(16), WithPageCapacity(64), WithLockFreeReads()}, opts...)
	s, err := NewShardedFromSample(6, sample, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := int64(i) * 2
		if err := s.Insert(k, diffVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestLockFreeReadsExact: with no writers racing, every lock-free read
// must agree exactly with the reference, and the LockFreeReads counter
// must account for each of them — a quiescent map never retries.
func TestLockFreeReadsExact(t *testing.T) {
	const n = 4096
	s := newLockFreeFixture(t, n)
	for i := int64(0); i < 2*n; i++ {
		v, ok := s.Find(i)
		if want := i%2 == 0; ok != want || (ok && v != diffVal(i)) {
			t.Fatalf("Find(%d) = (%d,%v)", i, v, ok)
		}
		if fk, _, ok := s.Floor(i); !ok || fk != i-i%2 {
			t.Fatalf("Floor(%d) = (%d,%v), want %d", i, fk, ok, i-i%2)
		}
		if ck, _, ok := s.Ceiling(i); i < 2*n-1 && (!ok || ck != i+i%2) {
			t.Fatalf("Ceiling(%d) = (%d,%v), want %d", i, ck, ok, i+i%2)
		}
	}
	st := s.Stats()
	if st.LockFreeReads == 0 {
		t.Fatal("no read took the lock-free path")
	}
	if st.ReadRetries != 0 || st.ReadFallbacks != 0 {
		t.Fatalf("quiescent map retried (%d) or fell back (%d)", st.ReadRetries, st.ReadFallbacks)
	}
}

// TestLockFreeReadRetriesProgress provokes retries deterministically: a
// writer hammers one shard in a tight loop while a reader probes the
// same shard's keys, so version collisions are guaranteed to occur and
// the ReadRetries counter must move. The reader stops as soon as the
// counter progresses, keeping the test fast and unflaky.
func TestLockFreeReadRetriesProgress(t *testing.T) {
	const n = 2048
	s := newLockFreeFixture(t, n)
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Insert/delete the same key forever: every cycle bumps the
		// owning shard's version twice.
		for !stop.Load() {
			if err := s.Insert(1, diffVal(1)); err != nil {
				t.Error(err)
				return
			}
			if _, err := s.Delete(1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	rng := workload.NewRNG(11)
	for i := 0; i < 5_000_000; i++ {
		k := int64(rng.Uint64n(64)) // keys 0..63 share low shards with key 1
		if v, ok := s.Find(k); ok && v != diffVal(k) {
			t.Errorf("Find(%d) = %d, want %d", k, v, diffVal(k))
			break
		}
		if s.Stats().ReadRetries > 0 {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	st := s.Stats()
	if st.ReadRetries == 0 {
		t.Fatal("5M reads against a spinning writer never recorded a retry")
	}
	t.Logf("retries %d, fallbacks %d, lock-free reads %d", st.ReadRetries, st.ReadFallbacks, st.LockFreeReads)
}

// TestLockFreeGetAllocationFree pins the fast path at zero allocations
// per point read: Find, Floor, Ceiling and a pooled GetBatch must not
// allocate, or the "lock-free" path would pay the allocator's locks
// instead. Skipped under -race, where the readLock shims take the shard
// mutex and sync.Pool intentionally allocates.
func TestLockFreeGetAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pin is meaningless under -race instrumentation")
	}
	const n = 8192
	s := newLockFreeFixture(t, n)
	var sink int64
	probes := [4]int64{3, 4096, 8190, 16384}
	if allocs := testing.AllocsPerRun(100, func() {
		for _, k := range probes[:] {
			v, _ := s.Find(k)
			sink += v
			fk, _, _ := s.Floor(k)
			ck, _, _ := s.Ceiling(k)
			sink += fk + ck
		}
	}); allocs != 0 {
		t.Errorf("lock-free Find/Floor/Ceiling: %.1f allocs/run, want 0", allocs)
	}
	keys := make([]int64, 64)
	for i := range keys {
		keys[i] = int64(i) * 251 % (2 * n)
	}
	out := make([]Lookup, 64)
	if allocs := testing.AllocsPerRun(100, func() {
		out = s.GetBatch(keys, out)
		sink += out[0].Val
	}); allocs != 0 {
		t.Errorf("lock-free GetBatch: %.1f allocs/run, want 0", allocs)
	}
	_ = sink
	if st := s.Stats(); st.LockFreeReads == 0 {
		t.Fatal("the allocation pin never exercised the lock-free path")
	}
}

// TestLockFreeOffUsesLockedPath: without the option, the counters stay
// zero and the read surface still answers exactly — the seqlock path
// must be strictly opt-in.
func TestLockFreeOffUsesLockedPath(t *testing.T) {
	s, err := NewSharded(4, WithSegmentCapacity(16), WithPageCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		if err := s.Insert(i, diffVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 1000; i++ {
		if v, ok := s.Find(i); !ok || v != diffVal(i) {
			t.Fatalf("Find(%d) = (%d,%v)", i, v, ok)
		}
	}
	if !s.SnapshotScan(0, 999, func(k, v int64) bool { return true }) {
		t.Error("SnapshotScan on a quiescent locked-mode map reported an inconsistent cut")
	}
	st := s.Stats()
	if st.LockFreeReads != 0 || st.ReadRetries != 0 || st.EpochAdvances != 0 {
		t.Fatalf("locked-mode map recorded lock-free activity: %+v", st)
	}
}

// TestSnapshotScanConsistentUnderWriters: a scan that returns true
// promises a single consistent cut; with writers storing only diffVal
// and scans retried until consistent, the yielded sequence must always
// be sorted, in range, and exact per element.
func TestSnapshotScanConsistentUnderWriters(t *testing.T) {
	const n = 2048
	s := newLockFreeFixture(t, n, WithBackgroundRebalancing(1))
	defer s.Close()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := workload.NewRNG(9)
		for !stop.Load() {
			k := int64(rng.Uint64n(2 * n))
			if rng.Uint64n(2) == 0 {
				if err := s.Insert(k, diffVal(k)); err != nil {
					t.Error(err)
					return
				}
			} else if _, err := s.Delete(k); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	consistent, broken := 0, 0
	for i := 0; i < 2_000; i++ {
		prev := int64(minInt64)
		ok := s.SnapshotScan(0, 2*n, func(k, v int64) bool {
			if k < prev || v != diffVal(k) {
				t.Errorf("SnapshotScan yielded (%d,%d) after %d", k, v, prev)
				return false
			}
			prev = k
			return true
		})
		if ok {
			consistent++
		} else {
			broken++
		}
		if t.Failed() {
			break
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if consistent == 0 {
		t.Error("2000 snapshot scans never once observed a consistent cut")
	}
	if st := s.Stats(); broken > 0 && st.SnapshotBreaks == 0 {
		t.Errorf("%d scans reported broken cuts but SnapshotBreaks is 0", broken)
	}
	t.Logf("scans: %d consistent, %d broken; SnapshotBreaks=%d", consistent, broken, s.Stats().SnapshotBreaks)
}

// TestSnapshotBreaksCountFinalDegradationsOnly: under a sustained
// writer, snapshot scans restart with backoff before settling for a
// torn verdict — so the SnapshotBreaks counter must equal exactly the
// number of scans that actually REPORTED a broken cut, never the
// (larger) number of broken attempts the retry loop absorbed.
func TestSnapshotBreaksCountFinalDegradationsOnly(t *testing.T) {
	const n = 2048
	s := newLockFreeFixture(t, n, WithBackgroundRebalancing(1))
	defer s.Close()
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := workload.NewRNG(31)
		for !stop.Load() {
			k := int64(rng.Uint64n(2 * n))
			if rng.Uint64n(2) == 0 {
				if err := s.Insert(k, diffVal(k)); err != nil {
					t.Error(err)
					return
				}
			} else if _, err := s.Delete(k); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	torn := uint64(0)
	for i := 0; i < 3_000; i++ {
		if !s.SnapshotScan(0, 2*n, func(k, v int64) bool { return true }) {
			torn++
		}
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if st := s.Stats(); st.SnapshotBreaks != torn {
		t.Fatalf("SnapshotBreaks = %d but %d scans reported torn cuts — the counter must track final degradations only",
			st.SnapshotBreaks, torn)
	}
	t.Logf("3000 scans under a sustained writer: %d torn verdicts, SnapshotBreaks matches", torn)
}
