package rma

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"rma/internal/workload"
)

// Linearizability checking for the lock-free read path.
//
// N goroutines issue concurrent Put/Delete/Get/SnapshotScan operations
// against one Sharded map running with lock-free reads and background
// rebalancing, recording every operation as an event with invocation
// and response timestamps drawn from one global atomic tick. After the
// run, a Wing & Gong-style checker searches for a linearization: a
// total order of the events, consistent with real time (an operation
// whose response preceded another's invocation must come first), under
// which every recorded response matches the sequential ordered-map
// semantics.
//
// Two properties of the map make the search tractable without losing
// generality:
//
//   - Writers only ever store diffVal(k) under key k, so the sequential
//     state reduces to a per-key occurrence count (multiset semantics):
//     Put increments it, a Delete that returned true decrements it, a
//     Delete that returned false requires it to be zero, and a Get
//     requires it to be nonzero exactly when it found the key. Any
//     value mismatch is a hard failure before the checker even runs.
//   - Point operations on different keys commute under that
//     specification, so the global history is linearizable iff each
//     per-key subhistory is — the checker runs per key. Consistent
//     snapshot scans (SnapshotScan returning true guarantees a witness
//     instant inside the scan's [invoke, response] interval) decompose
//     the same way: one read event per key in the scanned window,
//     present or absent, all sharing the scan's interval.
//
// Within a per-key history the count after any prefix is determined by
// the recorded responses alone, so the checker memoizes on the set of
// linearized events; real-time order further splits each history into
// independently checkable segments at every point where all earlier
// responses precede all later invocations, bounding the search to the
// actual overlap window.
//
// The workload is seeded (override with RMA_LIN_SEED) and scales with
// RMA_TORTURE_SCALE. On failure the offending per-key history is
// logged, and also written to $RMA_LIN_DIR/lin-key-<k>.txt when
// RMA_LIN_DIR is set — the nightly CI job uploads that directory as an
// artifact.

const (
	linPut = iota
	linDel
	linGet
)

// linEvent is one completed operation in the recorded history.
type linEvent struct {
	kind     uint8
	key      int64
	out      bool // Del: existed; Get: found
	inv, ret uint64
}

func (e linEvent) String() string {
	k := [...]string{"Put", "Del", "Get"}[e.kind]
	return fmt.Sprintf("%s(%d)=%v [%d,%d]", k, e.key, e.out, e.inv, e.ret)
}

// applyLin advances the per-key count by one event, reporting whether
// the event's recorded response is legal in state c.
func applyLin(e linEvent, c int) (int, bool) {
	switch e.kind {
	case linPut:
		return c + 1, true
	case linDel:
		if e.out {
			if c > 0 {
				return c - 1, true
			}
			return c, false
		}
		return c, c == 0
	default: // linGet
		return c, e.out == (c > 0)
	}
}

// linSegment searches for a linearization of one overlap segment
// starting from count c0, returning the (response-determined) final
// count and whether an order exists. len(evs) must be <= 63.
func linSegment(evs []linEvent, c0 int) (int, bool) {
	n := len(evs)
	full := uint64(1)<<n - 1
	// The count after linearizing a set is determined by the responses
	// in it, so a failed mask never needs revisiting.
	dead := make(map[uint64]struct{})
	var dfs func(mask uint64, c int) bool
	dfs = func(mask uint64, c int) bool {
		if mask == full {
			return true
		}
		if _, seen := dead[mask]; seen {
			return false
		}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				continue
			}
			// evs[i] may linearize next only if no other remaining
			// event strictly precedes it in real time.
			minimal := true
			for j := 0; j < n && minimal; j++ {
				if j != i && mask&(1<<j) == 0 && evs[j].ret < evs[i].inv {
					minimal = false
				}
			}
			if !minimal {
				continue
			}
			if c2, ok := applyLin(evs[i], c); ok && dfs(mask|1<<i, c2) {
				return true
			}
		}
		dead[mask] = struct{}{}
		return false
	}
	cEnd := c0
	for _, e := range evs {
		if e.kind == linPut {
			cEnd++
		} else if e.kind == linDel && e.out {
			cEnd--
		}
	}
	return cEnd, dfs(0, c0)
}

// checkKeyLinearizable verifies one key's subhistory: sorts by
// invocation, splits at real-time cut points, and searches each
// segment. Returns the final count and an error describing the first
// unlinearizable segment.
func checkKeyLinearizable(key int64, evs []linEvent) (int, error) {
	sort.Slice(evs, func(i, j int) bool { return evs[i].inv < evs[j].inv })
	c := 0
	start := 0
	maxRet := uint64(0)
	for i := 0; i <= len(evs); i++ {
		if i < len(evs) && (i == start || evs[i].inv <= maxRet) {
			if evs[i].ret > maxRet {
				maxRet = evs[i].ret
			}
			continue
		}
		seg := evs[start:i]
		if len(seg) > 63 {
			return 0, fmt.Errorf("key %d: overlap segment of %d events exceeds the checker's bitmask; retune the workload", key, len(seg))
		}
		c2, ok := linSegment(seg, c)
		if !ok {
			return 0, fmt.Errorf("key %d: no linearization for segment of %d events from count %d", key, len(seg), c)
		}
		c = c2
		if i < len(evs) {
			start = i
			maxRet = evs[i].ret
		}
	}
	return c, nil
}

// dumpLinHistory logs a failing per-key history and writes it to
// RMA_LIN_DIR when set, so CI can upload it as an artifact.
func dumpLinHistory(t *testing.T, seed uint64, key int64, evs []linEvent, verdict error) {
	t.Helper()
	t.Errorf("seed %d: %v", seed, verdict)
	for _, e := range evs {
		t.Logf("  %s", e)
	}
	dir := os.Getenv("RMA_LIN_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("RMA_LIN_DIR: %v", err)
		return
	}
	var b []byte
	b = fmt.Appendf(b, "seed=%d\n%v\n", seed, verdict)
	for _, e := range evs {
		b = fmt.Appendf(b, "%s\n", e)
	}
	path := filepath.Join(dir, fmt.Sprintf("lin-key-%d.txt", key))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Logf("RMA_LIN_DIR: %v", err)
	}
}

func linSeed() uint64 {
	if s := os.Getenv("RMA_LIN_SEED"); s != "" {
		if n, err := strconv.ParseUint(s, 10, 64); err == nil {
			return n
		}
	}
	return 0xB1A5
}

const (
	linG        = 6
	linKeySpace = 1024
	linScanW    = 16 // snapshot-scan window width in keys
)

func TestShardedLinearizable(t *testing.T) {
	seed := linSeed()
	opsPerG := 4_000 * tortureScale()

	sample := make([]int64, 128)
	for i := range sample {
		sample[i] = int64(i) * linKeySpace / int64(len(sample))
	}
	s, err := NewShardedFromSample(6, sample,
		WithSegmentCapacity(16), WithPageCapacity(64),
		WithBackgroundRebalancing(2), WithLockFreeReads())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	}()

	var tick atomic.Uint64
	histories := make([][]linEvent, linG)
	var wg sync.WaitGroup
	for g := 0; g < linG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := workload.NewRNG(seed + uint64(g)*0x9E3779B97F4A7C15)
			evs := make([]linEvent, 0, opsPerG+opsPerG/16*linScanW)
			for op := 0; op < opsPerG; op++ {
				k := int64(rng.Uint64n(linKeySpace))
				switch p := rng.Uint64n(100); {
				case p < 40: // put
					inv := tick.Add(1)
					err := s.Insert(k, diffVal(k))
					ret := tick.Add(1)
					if err != nil {
						t.Error(err)
						return
					}
					evs = append(evs, linEvent{linPut, k, true, inv, ret})
				case p < 65: // delete
					inv := tick.Add(1)
					ok, err := s.Delete(k)
					ret := tick.Add(1)
					if err != nil {
						t.Error(err)
						return
					}
					evs = append(evs, linEvent{linDel, k, ok, inv, ret})
				case p < 95: // point read
					inv := tick.Add(1)
					v, ok := s.Find(k)
					ret := tick.Add(1)
					if ok && v != diffVal(k) {
						t.Errorf("g%d: Find(%d) = %d, want %d", g, k, v, diffVal(k))
						return
					}
					evs = append(evs, linEvent{linGet, k, ok, inv, ret})
				default: // consistent snapshot scan over a small window
					lo := int64(rng.Uint64n(linKeySpace - linScanW))
					hi := lo + linScanW - 1
					seen := [linScanW]bool{}
					for attempt := 0; attempt < 8; attempt++ {
						seen = [linScanW]bool{}
						bad := false
						prev := int64(minInt64)
						inv := tick.Add(1)
						consistent := s.SnapshotScan(lo, hi, func(k, v int64) bool {
							if k < lo || k > hi || k < prev || v != diffVal(k) {
								bad = true
								return false
							}
							prev = k
							seen[k-lo] = true
							return true
						})
						ret := tick.Add(1)
						if bad {
							t.Errorf("g%d: SnapshotScan(%d,%d) yielded an out-of-range, unordered or corrupt element", g, lo, hi)
							return
						}
						if !consistent {
							continue
						}
						// A consistent cut: every key in the window was
						// atomically observed present or absent.
						for i := int64(0); i < linScanW; i++ {
							evs = append(evs, linEvent{linGet, lo + i, seen[i], inv, ret})
						}
						break
					}
				}
			}
			histories[g] = evs
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Merge the per-goroutine histories and check key by key.
	perKey := make(map[int64][]linEvent, linKeySpace)
	for _, evs := range histories {
		for _, e := range evs {
			perKey[e.key] = append(perKey[e.key], e)
		}
	}
	finals := make(map[int64]int, len(perKey))
	for k, evs := range perKey {
		c, err := checkKeyLinearizable(k, evs)
		if err != nil {
			dumpLinHistory(t, seed, k, evs, err)
			continue
		}
		finals[k] = c
	}
	if t.Failed() {
		t.FailNow()
	}

	// The linearized final counts are response-determined; the quiescent
	// map must agree exactly.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for k, c := range finals {
		if got := s.CountRange(k, k); got != c {
			t.Errorf("seed %d: key %d: final count %d, linearized history says %d", seed, k, got, c)
		}
	}
	st := s.Stats()
	if st.LockFreeReads == 0 {
		t.Error("the history never exercised the lock-free read path")
	}
	t.Logf("checked %d keys, %d events; lock-free reads %d, retries %d, snapshot breaks %d",
		len(perKey), func() (n int) {
			for _, evs := range histories {
				n += len(evs)
			}
			return
		}(), st.LockFreeReads, st.ReadRetries, st.SnapshotBreaks)
}

// TestLinCheckerRejectsBadHistory pins the checker itself: a history
// that real time forbids must be rejected, and legal reorderings must
// be accepted — otherwise a green linearizability run proves nothing.
func TestLinCheckerRejectsBadHistory(t *testing.T) {
	// Get=true strictly after a successful delete of the only copy.
	bad := []linEvent{
		{linPut, 1, true, 1, 2},
		{linDel, 1, true, 3, 4},
		{linGet, 1, true, 5, 6},
	}
	if _, err := checkKeyLinearizable(1, bad); err == nil {
		t.Fatal("checker accepted a read of a deleted key")
	}
	// The same read overlapping the delete is fine: it may linearize
	// before it.
	good := []linEvent{
		{linPut, 1, true, 1, 2},
		{linDel, 1, true, 3, 6},
		{linGet, 1, true, 4, 5},
	}
	if _, err := checkKeyLinearizable(1, good); err != nil {
		t.Fatal(err)
	}
	// Delete=false while a copy provably exists must be rejected...
	bad2 := []linEvent{
		{linPut, 7, true, 1, 2},
		{linDel, 7, false, 3, 4},
	}
	if _, err := checkKeyLinearizable(7, bad2); err == nil {
		t.Fatal("checker accepted a failed delete of a present key")
	}
	// ...unless a concurrent successful delete can take the copy first.
	good2 := []linEvent{
		{linPut, 7, true, 1, 2},
		{linDel, 7, true, 3, 6},
		{linDel, 7, false, 4, 5},
	}
	if c, err := checkKeyLinearizable(7, good2); err != nil || c != 0 {
		t.Fatalf("count %d, err %v; want 0, nil", c, err)
	}
	// Segmented histories carry state across cuts.
	long := []linEvent{
		{linPut, 3, true, 1, 2},
		{linPut, 3, true, 10, 11},
		{linDel, 3, true, 20, 21},
		{linGet, 3, true, 30, 31},
		{linDel, 3, true, 40, 41},
		{linGet, 3, false, 50, 51},
	}
	if c, err := checkKeyLinearizable(3, long); err != nil || c != 0 {
		t.Fatalf("count %d, err %v; want 0, nil", c, err)
	}
}
