package exp

import (
	"rma/internal/abtree"
	"rma/internal/calibrator"
	"rma/internal/workload"
)

// Fig12 compares the update-oriented (UT) and scan-oriented (ST)
// threshold presets against an (a,b)-tree, under uniform and sequential
// insertion: per-stage insert throughput (12a), full-scan throughput
// (12b) and memory footprint (12c), sampled as the structures grow.
func Fig12(p Params) {
	sizes := fig10Sizes(p.N)

	ut := RMAConfig(128)
	ut.Thresholds = calibrator.UpdateOriented()
	st := RMAConfig(128)
	st.Thresholds = calibrator.ScanOriented()

	systems := []struct {
		Name string
		Mk   func() updMap
	}{
		{"abtree", func() updMap { return abSUT{abtree.New(128)} }},
		{"rma-ut", func() updMap { return mustCore(ut) }},
		{"rma-st", func() updMap { return mustCore(st) }},
	}

	for _, patName := range []string{"uniform", "sequential"} {
		insRate := map[string][]float64{}
		scanRate := map[string][]float64{}
		footprint := map[string][]int64{}

		for _, sys := range systems {
			m := sys.Mk()
			var keys []int64
			if patName == "uniform" {
				keys = workload.Keys(workload.NewUniform(p.Seed, 0), p.N)
			} else {
				keys = workload.Keys(workload.NewSequential(0, 1), p.N)
			}
			prev := 0
			for _, s := range sizes {
				lo, hi := prev, s
				d := timeIt(func() {
					for _, k := range keys[lo:hi] {
						m.InsertKV(k, workload.ValueFor(k))
					}
				})
				prev = s
				insRate[sys.Name] = append(insRate[sys.Name], mops(s-lo, d))
				scanRate[sys.Name] = append(scanRate[sys.Name], fullScanThroughput(m, 2))
				footprint[sys.Name] = append(footprint[sys.Name], m.Bytes())
			}
		}
		// Dense footprint bound: 16 bytes/element.
		p.printf("## Fig 12a — insertion throughput [Mops/s] vs size (%s)\n", patName)
		printSeries(p, sizes, systems, insRate)
		p.printf("## Fig 12b — full-scan throughput [Melts/s] vs size (%s)\n", patName)
		printSeries(p, sizes, systems, scanRate)
		p.printf("## Fig 12c — memory footprint [MB] vs size (%s; dense = 16 B/elt)\n", patName)
		p.printf("%-12s", "structure")
		for _, s := range sizes {
			p.printf("\t%9d", s)
		}
		p.printf("\n")
		for _, sys := range systems {
			p.printf("%-12s", sys.Name)
			for _, f := range footprint[sys.Name] {
				p.printf("\t%9.1f", float64(f)/(1<<20))
			}
			p.printf("\n")
		}
		p.printf("%-12s", "dense-bound")
		for _, s := range sizes {
			p.printf("\t%9.1f", float64(s)*16/(1<<20))
		}
		p.printf("\n")
	}
}

func printSeries(p Params, sizes []int, systems []struct {
	Name string
	Mk   func() updMap
}, data map[string][]float64) {
	p.printf("%-12s", "structure")
	for _, s := range sizes {
		p.printf("\t%9d", s)
	}
	p.printf("\n")
	for _, sys := range systems {
		p.printf("%-12s", sys.Name)
		for _, v := range data[sys.Name] {
			p.printf("\t%9.3f", v)
		}
		p.printf("\n")
	}
}
