package exp

import (
	"runtime"
	"time"

	"rma/internal/core"
	"rma/internal/workload"
)

const maxInt64 = 1<<63 - 1

// HotpathResult is one measured series of the hotpath experiment:
// machine-readable so cmd/rmabench can emit a BENCH_hotpath.json
// artifact and successive PRs can be held to the recorded trajectory.
type HotpathResult struct {
	Series    string `json:"series"` // e.g. "insert-uniform"
	Layout    string `json:"layout"` // "clustered" | "interleaved"
	Rebalance string `json:"rebal"`  // "rewired" | "twopass" | "sync" | "async"
	// Index and Size are recorded by the lookup experiment: the segment
	// index kind behind the measured reads and the fixture cardinality
	// of the layout × size matrix.
	Index         string  `json:"index,omitempty"`
	Size          int     `json:"size,omitempty"`
	Ops           int     `json:"ops"` // operations measured
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	ElementCopies uint64  `json:"element_copies"` // total, from core.Stats
	PageSwaps     uint64  `json:"page_swaps"`     // total, from core.Stats
	// Per-operation latency quantiles, recorded only by the putasync
	// experiment (the tail the async rebalancer exists to shrink).
	P50Ns float64 `json:"p50_ns,omitempty"`
	P99Ns float64 `json:"p99_ns,omitempty"`
	// DeferredWindows/MaintenanceRuns attribute how much rebalance work
	// left the write path (putasync only).
	DeferredWindows uint64 `json:"deferred_windows,omitempty"`
	MaintenanceRuns uint64 `json:"maintenance_runs,omitempty"`
	// Seqlock read-path accounting, recorded by the shards experiment's
	// racing-reader series (rebal column "seqlock"): accepted optimistic
	// reads, discarded attempts, and locked-path rescues.
	LockFreeReads uint64 `json:"lock_free_reads,omitempty"`
	ReadRetries   uint64 `json:"read_retries,omitempty"`
	ReadFallbacks uint64 `json:"read_fallbacks,omitempty"`
	// Serving-layer accounting, recorded by the serve experiment: the
	// closed-loop pool's aggregate throughput and extreme tail per op
	// class (P999Ns extends the P50/P99 pair above), the client count
	// behind it, and error replies observed on the wire.
	P999Ns    float64 `json:"p999_ns,omitempty"`
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	Errors    uint64  `json:"errors,omitempty"`
	Clients   int     `json:"clients,omitempty"`
}

// hotpathConfigs enumerates the four layout x rebalance corners the
// hot-path overhaul targets.
func hotpathConfigs() []struct {
	layout, rebal string
	cfg           core.Config
} {
	var out []struct {
		layout, rebal string
		cfg           core.Config
	}
	for _, lay := range []struct {
		name string
		l    core.Layout
	}{{"clustered", core.LayoutClustered}, {"interleaved", core.LayoutInterleaved}} {
		for _, rb := range []struct {
			name string
			m    core.RebalanceMode
		}{{"rewired", core.RebalanceRewired}, {"twopass", core.RebalanceTwoPass}} {
			cfg := core.DefaultConfig()
			cfg.Adaptive = core.AdaptiveOff
			cfg.Layout = lay.l
			cfg.Rebalance = rb.m
			out = append(out, struct {
				layout, rebal string
				cfg           core.Config
			}{lay.name, rb.name, cfg})
		}
	}
	return out
}

// measure runs f over ops operations and returns wall time per op and
// heap allocations per op (mallocs delta, GC-independent).
func measure(ops int, f func()) (nsPerOp, allocsPerOp float64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	f()
	d := time.Since(t0)
	runtime.ReadMemStats(&after)
	if ops <= 0 {
		return 0, 0
	}
	return float64(d.Nanoseconds()) / float64(ops),
		float64(after.Mallocs-before.Mallocs) / float64(ops)
}

// Hotpath measures the four hot paths this repo's perf trajectory tracks —
// insert (uniform and Zipf), point lookup, and 1% range scans — on every
// layout x rebalance-mode corner, and returns the machine-readable series.
// It also prints a TSV block like the figure experiments do.
func Hotpath(p Params) []HotpathResult {
	p.printf("## hotpath: insert/lookup/scan trajectory, N=%d\n", p.N)
	p.printf("# series\tlayout\trebal\tns/op\tallocs/op\telt.copies\tpage.swaps\n")

	var results []HotpathResult
	record := func(series, layout, rebal string, ops int, ns, allocs float64, st core.Stats) {
		r := HotpathResult{
			Series: series, Layout: layout, Rebalance: rebal,
			Ops: ops, NsPerOp: ns, AllocsPerOp: allocs,
			ElementCopies: st.ElementCopies, PageSwaps: st.PageSwaps,
		}
		results = append(results, r)
		p.printf("%s\t%s\t%s\t%.1f\t%.3f\t%d\t%d\n",
			series, layout, rebal, ns, allocs, st.ElementCopies, st.PageSwaps)
	}

	uniform := workload.Keys(workload.NewUniform(p.Seed, 0), p.N)
	zipf := workload.Keys(workload.NewZipf(p.Seed+1, 0.99, uint64(p.N)*8, true), p.N)

	for _, c := range hotpathConfigs() {
		// Insert, uniform keys.
		a := newCore(c.cfg)
		ns, allocs := measure(p.N, func() {
			for _, k := range uniform {
				if err := a.Insert(k, workload.ValueFor(k)); err != nil {
					panic(err)
				}
			}
		})
		record("insert-uniform", c.layout, c.rebal, p.N, ns, allocs, a.Stats())

		// Insert, Zipf-skewed keys (hammered regions stress rebalances).
		za := newCore(c.cfg)
		ns, allocs = measure(p.N, func() {
			for _, k := range zipf {
				if err := za.Insert(k, workload.ValueFor(k)); err != nil {
					panic(err)
				}
			}
		})
		record("insert-zipf", c.layout, c.rebal, p.N, ns, allocs, za.Stats())

		// Point lookups against the uniform-loaded array.
		rng := workload.NewRNG(p.Seed + 7)
		nLookups := p.N / 2
		base := a.Stats()
		var sink int64
		ns, allocs = measure(nLookups, func() {
			for i := 0; i < nLookups; i++ {
				v, _ := a.Find(uniform[rng.Uint64n(uint64(len(uniform)))])
				sink += v
			}
		})
		st := a.Stats()
		st.ElementCopies -= base.ElementCopies
		st.PageSwaps -= base.PageSwaps
		record("lookup", c.layout, c.rebal, nLookups, ns, allocs, st)

		// 1% range scans: ops counted as elements touched. Keys are
		// uniform over the non-negative 63-bit space, so a 1% key span
		// covers ~1% of the stored elements.
		span := int64((uint64(1) << 63) / 100)
		nScans := 64
		scanned := 0
		base = a.Stats()
		ns, allocs = measure(1, func() {
			for i := 0; i < nScans; i++ {
				lo := uniform[rng.Uint64n(uint64(len(uniform)))]
				hi := lo + span
				if hi < lo {
					hi = maxInt64
				}
				cnt, s := a.Sum(lo, hi)
				sink += s
				scanned += cnt
			}
		})
		if scanned > 0 {
			ns = ns / float64(scanned)
			allocs = allocs / float64(scanned)
		}
		st = a.Stats()
		st.ElementCopies -= base.ElementCopies
		st.PageSwaps -= base.PageSwaps
		record("scan-1pct", c.layout, c.rebal, scanned, ns, allocs, st)
		_ = sink
	}
	return results
}

// newCore builds a bare core.Array, panicking on config errors (the
// hotpath configs are statically valid).
func newCore(cfg core.Config) *core.Array {
	a, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	return a
}
