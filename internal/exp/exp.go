// Package exp is the experiment harness: one runner per figure of the
// paper's evaluation (Figs 1, 10, 11, 12, 13, 14), each printing the same
// series the paper plots, at a configurable scale.
//
// The paper runs 2^30 elements on a dual-socket Xeon; the harness defaults
// to 2^20 so a full reproduction finishes in minutes. Shapes (who wins, by
// what factor, where crossovers fall) are the reproduction target —
// absolute numbers are not, as documented in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"sort"
	"time"

	"rma/internal/abtree"
	"rma/internal/art"
	"rma/internal/calibrator"
	"rma/internal/core"
	"rma/internal/workload"
)

// Params controls an experiment run.
type Params struct {
	N    int       // final cardinality (paper: 1G = 2^30)
	Seed uint64    // base RNG seed
	Out  io.Writer // results sink (TSV)
	// ShardMax caps the shard counts the "shards" experiment sweeps
	// (0 means the full matrix up to 8). Setting it to 1 records the
	// unsharded serving baseline on its own.
	ShardMax int
	// Async selects which rebalancer modes the "putasync" experiment
	// measures: "off" (synchronous only), "on" (background only), or
	// "both" (the default when empty).
	Async string
	// Duration bounds each mix of the "serve" experiment's measured
	// phase (0 = 1s per mix); Clients sizes its closed-loop pool
	// (0 = 4). ServeAddr points the serve experiment at an externally
	// running rmaserve instead of the in-process loopback server —
	// the soak path (empty = in-process).
	Duration  time.Duration
	Clients   int
	ServeAddr string
}

// DefaultParams returns laptop-scale defaults.
func DefaultParams(out io.Writer) Params {
	return Params{N: 1 << 20, Seed: 42, Out: out}
}

func (p Params) printf(format string, args ...any) {
	fmt.Fprintf(p.Out, format, args...)
}

// sprintf is a local alias to keep figure runners terse.
func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// mops converts an element count and duration to million elements/sec.
func mops(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds() / 1e6
}

// timeIt measures f.
func timeIt(f func()) time.Duration {
	t0 := time.Now()
	f()
	return time.Since(t0)
}

// --- systems under test -------------------------------------------------------

// updMap is the minimal update/scan surface the experiments drive.
type updMap interface {
	InsertKV(k, v int64)
	DeleteKey(k int64) bool
	FindKV(k int64) (int64, bool)
	SumRange(lo, hi int64) (int, int64)
	SumEverything() (int, int64)
	Bytes() int64
	Count() int
}

// coreSUT adapts internal/core.Array.
type coreSUT struct{ a *core.Array }

func (s coreSUT) InsertKV(k, v int64) {
	if err := s.a.Insert(k, v); err != nil {
		panic(err)
	}
}
func (s coreSUT) DeleteKey(k int64) bool {
	ok, err := s.a.Delete(k)
	if err != nil {
		panic(err)
	}
	return ok
}
func (s coreSUT) FindKV(k int64) (int64, bool)       { return s.a.Find(k) }
func (s coreSUT) SumRange(lo, hi int64) (int, int64) { return s.a.Sum(lo, hi) }
func (s coreSUT) SumEverything() (int, int64)        { return s.a.SumAll() }
func (s coreSUT) Bytes() int64                       { return s.a.FootprintBytes() }
func (s coreSUT) Count() int                         { return s.a.Size() }

// abSUT adapts the (a,b)-tree.
type abSUT struct{ t *abtree.Tree }

func (s abSUT) InsertKV(k, v int64)                { s.t.Insert(k, v) }
func (s abSUT) DeleteKey(k int64) bool             { return s.t.Delete(k) }
func (s abSUT) FindKV(k int64) (int64, bool)       { return s.t.Find(k) }
func (s abSUT) SumRange(lo, hi int64) (int, int64) { return s.t.Sum(lo, hi) }
func (s abSUT) SumEverything() (int, int64)        { return s.t.SumAll() }
func (s abSUT) Bytes() int64                       { return s.t.FootprintBytes() }
func (s abSUT) Count() int                         { return s.t.Size() }

// artSUT adapts the ART-indexed tree.
type artSUT struct{ t *art.Tree }

func (s artSUT) InsertKV(k, v int64)                { s.t.Insert(k, v) }
func (s artSUT) DeleteKey(k int64) bool             { return s.t.Delete(k) }
func (s artSUT) FindKV(k int64) (int64, bool)       { return s.t.Find(k) }
func (s artSUT) SumRange(lo, hi int64) (int, int64) { return s.t.Sum(lo, hi) }
func (s artSUT) SumEverything() (int, int64)        { return s.t.SumAll() }
func (s artSUT) Bytes() int64                       { return s.t.FootprintBytes() }
func (s artSUT) Count() int                         { return s.t.Size() }

// mustCore builds a core array or panics (configs are static).
func mustCore(cfg core.Config) coreSUT {
	a, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	return coreSUT{a}
}

// RMAConfig returns the paper's RMA at segment size b.
func RMAConfig(b int) core.Config {
	cfg := core.DefaultConfig()
	cfg.SegmentSlots = b
	if cfg.PageSlots < 2*b {
		cfg.PageSlots = 2 * b
	}
	return cfg
}

// RelatedWorkConfigs returns the TPMA configuration stand-ins for the
// prior PMA implementations of Fig 1a (see DESIGN.md, "Substitutions").
func RelatedWorkConfigs() []struct {
	Name string
	Cfg  core.Config
} {
	baseline := core.BaselineConfig()

	pm14 := baseline
	pm14.Thresholds = calibrator.Thresholds{Rho1: 0.1, RhoH: 0.3, TauH: 0.75, Tau1: 0.9}

	kls17 := baseline
	kls17.Sizing = core.SizingFixed
	kls17.SegmentSlots = 32

	drf12 := baseline
	drf12.Sizing = core.SizingFixed
	drf12.SegmentSlots = 16

	slh17 := baseline
	slh17.Thresholds = calibrator.Thresholds{Rho1: 0.08, RhoH: 0.3, TauH: 0.7, Tau1: 0.92}

	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"baseline", baseline},
		{"pm14-like", pm14},
		{"kls17-like", kls17},
		{"drf12-like", drf12},
		{"slh17-like", slh17},
	}
}

// --- common workload drivers ---------------------------------------------------

// insertPattern drives n insertions from the pattern into m, returning
// the throughput in million inserts/sec.
func insertPattern(m updMap, p workload.Pattern, seed uint64, n int) float64 {
	g := workload.NewPattern(p, seed)
	keys := workload.Keys(g, n)
	d := timeIt(func() {
		for _, k := range keys {
			m.InsertKV(k, workload.ValueFor(k))
		}
	})
	return mops(n, d)
}

// scanThroughput runs random contiguous scans, each covering `frac` of
// the structure's elements, until roughly 2*N elements have been
// scanned; it returns million elements/sec. This is the paper's Fig 1
// scan measurement (random contiguous scans of 1% of the final data
// structure). sortedKeys is a sorted copy of the stored keys, used to
// translate element fractions into key ranges.
func scanThroughput(m updMap, sortedKeys []int64, seed uint64, frac float64) float64 {
	n := len(sortedKeys)
	if n == 0 {
		return 0
	}
	cnt := int(float64(n) * frac)
	if cnt < 1 {
		cnt = 1
	}
	rng := workload.NewRNG(seed)
	scanned := 0
	target := 2 * n
	d := timeIt(func() {
		for scanned < target {
			i := int(rng.Uint64n(uint64(n - cnt + 1)))
			lo := sortedKeys[i]
			hi := sortedKeys[i+cnt-1]
			c, s := m.SumRange(lo, hi)
			sink += s
			scanned += c + 1
		}
	})
	return mops(scanned, d)
}

// fullScanThroughput measures one full scan in million elements/sec.
func fullScanThroughput(m updMap, reps int) float64 {
	n := m.Count()
	best := time.Duration(1<<62 - 1)
	for r := 0; r < reps; r++ {
		d := timeIt(func() {
			c, s := m.SumEverything()
			sink += s + int64(c)
		})
		if d < best {
			best = d
		}
	}
	return mops(n, best)
}

// lookupThroughput measures random point lookups of existing keys.
func lookupThroughput(m updMap, keys []int64, lookups int, seed uint64) float64 {
	rng := workload.NewRNG(seed)
	d := timeIt(func() {
		for i := 0; i < lookups; i++ {
			k := keys[rng.Uint64n(uint64(len(keys)))]
			v, _ := m.FindKV(k)
			sink += v
		}
	})
	return mops(lookups, d)
}

// sink defeats dead-code elimination of measured loops.
var sink int64

// Sink exposes the accumulated sink so callers can keep it alive.
func Sink() int64 { return sink }

// sortedPairs draws n pairs and sorts them (for bulk loads).
func sortedPairs(g workload.Generator, n int) ([]int64, []int64) {
	keys := workload.Keys(g, n)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]int64, n)
	for i, k := range keys {
		vals[i] = workload.ValueFor(k)
	}
	return keys, vals
}

// alphaLabels is the Zipf sweep of Figs 11 and 13b: uniform plus
// alpha in {0.5, 1, 1.5, 2, 2.5, 3}.
var alphaSweep = []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0} // 0 = uniform

func alphaLabel(a float64) string {
	if a == 0 {
		return "uniform"
	}
	return fmt.Sprintf("zipf-%.1f", a)
}

func alphaGen(a float64, seed uint64) workload.Generator {
	if a == 0 {
		return workload.NewUniform(seed, 0)
	}
	return workload.NewZipf(seed, a, workload.ZipfRange, true)
}
