package exp

import (
	"sort"

	"rma/internal/abtree"
	"rma/internal/core"
	"rma/internal/workload"
)

// fig01Patterns are the insertion patterns of Fig 1.
var fig01Patterns = []workload.Pattern{
	workload.PatternUniform, workload.PatternZipf1,
	workload.PatternZipf15, workload.PatternSequential,
}

// fig01Row measures one structure across the Fig 1 columns: insertion
// throughput per pattern plus 1%-range scan throughput after a uniform
// load. Returned values are million elements/sec.
func fig01Row(p Params, mk func() updMap) (ins [4]float64, scan float64) {
	for i, pat := range fig01Patterns {
		m := mk()
		ins[i] = insertPattern(m, pat, p.Seed, p.N)
	}
	// Scans over a uniform-loaded structure, as in the introduction.
	m := mk()
	keys := workload.Keys(workload.NewPattern(workload.PatternUniform, p.Seed), p.N)
	for _, k := range keys {
		m.InsertKV(k, workload.ValueFor(k))
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	scan = scanThroughput(m, sorted, p.Seed^1, 0.01)
	return ins, scan
}

func fig01Print(p Params, name string, ins [4]float64, scan float64, base *[5]float64) {
	if base[0] == 0 {
		*base = [5]float64{ins[0], ins[1], ins[2], ins[3], scan}
	}
	p.printf("%-14s", name)
	for i, v := range ins {
		p.printf("\t%8.3f (%4.2fx)", v, v/base[i])
	}
	p.printf("\t%8.3f (%4.2fx)\n", scan, scan/base[4])
}

func fig01Header(p Params) {
	p.printf("%-14s\t%-17s\t%-17s\t%-17s\t%-17s\t%-17s\n",
		"structure", "ins-uniform", "ins-zipf1.0", "ins-zipf1.5", "ins-sequential", "scan-1%")
	p.printf("# Mops/sec (speedup vs the TPMA baseline row)\n")
}

// Fig01a compares the TPMA baseline against configuration stand-ins for
// the prior PMA implementations (PM14, KLS17, DRF12, SLH17).
func Fig01a(p Params) {
	p.printf("## Fig 1a — baseline TPMA vs prior PMA implementations (stand-ins)\n")
	fig01Header(p)
	var base [5]float64
	for _, rw := range RelatedWorkConfigs() {
		cfg := rw.Cfg
		ins, scan := fig01Row(p, func() updMap { return mustCore(cfg) })
		fig01Print(p, rw.Name, ins, scan, &base)
	}
}

// Fig01b compares (a,b)-trees at leaf capacities 64..512 against the
// TPMA baseline.
func Fig01b(p Params) {
	p.printf("## Fig 1b — (a,b)-trees vs the TPMA baseline\n")
	fig01Header(p)
	var base [5]float64
	cfg := core.BaselineConfig()
	ins, scan := fig01Row(p, func() updMap { return mustCore(cfg) })
	fig01Print(p, "baseline", ins, scan, &base)
	for _, b := range []int{64, 128, 256, 512} {
		b := b
		ins, scan := fig01Row(p, func() updMap { return abSUT{abtree.New(b)} })
		fig01Print(p, sprintf("abtree-B%d", b), ins, scan, &base)
	}
}

// Fig01c compares the final RMA (B=128, 256) against (a,b)-trees at the
// same capacities, the TPMA baseline and a static dense array (scans
// only).
func Fig01c(p Params) {
	p.printf("## Fig 1c — RMA vs (a,b)-trees vs static array\n")
	fig01Header(p)
	var base [5]float64
	cfg := core.BaselineConfig()
	ins, scan := fig01Row(p, func() updMap { return mustCore(cfg) })
	fig01Print(p, "baseline", ins, scan, &base)
	for _, b := range []int{128, 256} {
		b := b
		ins, scan := fig01Row(p, func() updMap { return abSUT{abtree.New(b)} })
		fig01Print(p, sprintf("abtree-B%d", b), ins, scan, &base)
		rcfg := RMAConfig(b)
		ins, scan = fig01Row(p, func() updMap { return mustCore(rcfg) })
		fig01Print(p, sprintf("rma-B%d", b), ins, scan, &base)
	}
	// Static array: scans only (no updates possible).
	keys, vals := sortedPairs(workload.NewUniform(p.Seed, 0), p.N)
	d := denseSUT{keys: keys, vals: vals}
	scanD := scanThroughput(d, keys, p.Seed^1, 0.01)
	p.printf("%-14s\t%-17s\t%-17s\t%-17s\t%-17s\t%8.3f (%4.2fx)\n",
		"static-array", "-", "-", "-", "-", scanD, scanD/base[4])
}

// denseSUT adapts the dense array to the experiment surface (updates
// panic; the harness never calls them on it).
type denseSUT struct {
	keys, vals []int64
}

func (d denseSUT) InsertKV(k, v int64)    { panic("dense: immutable") }
func (d denseSUT) DeleteKey(k int64) bool { panic("dense: immutable") }
func (d denseSUT) FindKV(k int64) (int64, bool) {
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= k })
	if i < len(d.keys) && d.keys[i] == k {
		return d.vals[i], true
	}
	return 0, false
}
func (d denseSUT) SumRange(lo, hi int64) (int, int64) {
	i := sort.Search(len(d.keys), func(i int) bool { return d.keys[i] >= lo })
	j := sort.Search(len(d.keys), func(j int) bool { return d.keys[j] > hi })
	var s int64
	for k := i; k < j; k++ {
		s += d.vals[k]
	}
	return j - i, s
}
func (d denseSUT) SumEverything() (int, int64) {
	var s int64
	for _, v := range d.vals {
		s += v
	}
	return len(d.keys), s
}
func (d denseSUT) Bytes() int64 { return int64(len(d.keys)) * 16 }
func (d denseSUT) Count() int   { return len(d.keys) }
