package exp

import (
	"sort"

	"rma/internal/core"
	"rma/internal/workload"
)

// The lookup experiment tracks the read path the same way hotpath
// tracks the write path: point gets (hits, sorted hits, guaranteed
// misses), the batched GetBatch surface (random and sorted probe sets)
// and seek-then-scan, over a layout × fixture-size matrix. Every series
// is one index descent plus one in-segment probe — exactly the paper's
// point-lookup decomposition — so the trajectory attributes read-path
// work to the index half (size sweep: deeper descents) and the probe
// half (layout sweep: dense runs vs occupancy-masked slots).

// lookupBatch is the GetBatch probe-group size the experiment measures.
const lookupBatch = 1024

// lookupReps repeats every series and keeps the fastest run, like the
// scan experiments: read series are short, so single runs are noisy.
const lookupReps = 5

// measureBest runs f lookupReps times and returns the fastest ns/op
// with its allocs/op.
func measureBest(ops int, f func()) (nsPerOp, allocsPerOp float64) {
	best := -1.0
	var bestAllocs float64
	for r := 0; r < lookupReps; r++ {
		ns, allocs := measure(ops, f)
		if best < 0 || ns < best {
			best, bestAllocs = ns, allocs
		}
	}
	return best, bestAllocs
}

// indexLabel names a segment-index kind for the trajectory.
func indexLabel(k core.IndexKind) string {
	switch k {
	case core.IndexStatic:
		return "static"
	case core.IndexDynamic:
		return "dynamic"
	case core.IndexEytzinger:
		return "eytzinger"
	default:
		return "unknown"
	}
}

// Lookup measures the read path on both layouts at two fixture sizes
// and returns the machine-readable series. Loaded keys are even, so
// the odd miss probes never hit; probe sets are drawn uniformly from
// the loaded keys.
func Lookup(p Params) []HotpathResult {
	p.printf("## lookup: read-path trajectory (point/miss/batch/seek-scan), N=%d\n", p.N)
	p.printf("# series\tlayout\tindex\tsize\tns/op\tallocs/op\n")

	var results []HotpathResult
	sizes := []int{p.N >> 2, p.N}
	if sizes[0] < 1024 {
		sizes = sizes[1:]
	}

	for _, lay := range []struct {
		name string
		l    core.Layout
	}{{"clustered", core.LayoutClustered}, {"interleaved", core.LayoutInterleaved}} {
		for _, size := range sizes {
			cfg := core.DefaultConfig()
			cfg.Adaptive = core.AdaptiveOff
			cfg.Layout = lay.l
			a := newCore(cfg)
			keys := workload.Keys(workload.NewUniform(p.Seed, 0), size)
			for i := range keys {
				keys[i] &^= 1
			}
			for _, k := range keys {
				if err := a.Insert(k, workload.ValueFor(k)); err != nil {
					panic(err)
				}
			}

			record := func(series string, ops int, ns, allocs float64) {
				r := HotpathResult{
					Series: series, Layout: lay.name, Rebalance: "rewired",
					Index: indexLabel(cfg.Index), Size: size,
					Ops: ops, NsPerOp: ns, AllocsPerOp: allocs,
				}
				results = append(results, r)
				p.printf("%s\t%s\t%s\t%d\t%.1f\t%.4f\n",
					series, lay.name, r.Index, size, ns, allocs)
			}

			rng := workload.NewRNG(p.Seed + 11)
			nProbes := size / 2
			probes := make([]int64, nProbes)
			for i := range probes {
				probes[i] = keys[rng.Uint64n(uint64(len(keys)))]
			}
			sortedProbes := append([]int64(nil), probes...)
			sort.Slice(sortedProbes, func(i, j int) bool { return sortedProbes[i] < sortedProbes[j] })
			misses := make([]int64, nProbes)
			for i := range misses {
				misses[i] = probes[i] | 1
			}

			// Point gets: random hits, sorted hits (the single-get
			// baseline GetBatch must beat), guaranteed misses.
			ns, allocs := measureBest(nProbes, func() {
				for _, k := range probes {
					v, _ := a.Find(k)
					sink += v
				}
			})
			record("point-get", nProbes, ns, allocs)

			ns, allocs = measureBest(nProbes, func() {
				for _, k := range sortedProbes {
					v, _ := a.Find(k)
					sink += v
				}
			})
			record("point-get-sorted", nProbes, ns, allocs)

			ns, allocs = measureBest(nProbes, func() {
				for _, k := range misses {
					v, _ := a.Find(k)
					sink += v
				}
			})
			record("miss-get", nProbes, ns, allocs)

			// Batched gets over the same probe sets, ns attributed per
			// probed key.
			out := make([]core.Lookup, 0, lookupBatch)
			for _, bs := range []struct {
				series string
				set    []int64
			}{{"getbatch-random", probes}, {"getbatch-sorted", sortedProbes}} {
				set := bs.set
				ns, allocs = measureBest(len(set), func() {
					for off := 0; off < len(set); off += lookupBatch {
						end := min(off+lookupBatch, len(set))
						out = a.FindBatch(set[off:end], out)
						sink += out[0].Val
					}
				})
				record(bs.series, len(set), ns, allocs)
			}

			// Seek-then-scan: one index-routed walker seek plus a short
			// dense run — the pagination/merge-join shape.
			const runLen = 64
			nSeeks := max(nProbes/runLen, 1)
			ns, allocs = measureBest(nSeeks, func() {
				for i := 0; i < nSeeks; i++ {
					w := a.NewWalker(probes[i%len(probes)], maxInt64)
					for j := 0; j < runLen; j++ {
						k, _, ok := w.Next()
						if !ok {
							break
						}
						sink += k
					}
					w.Release()
				}
			})
			record("seek-scan", nSeeks, ns, allocs)
		}
	}
	return results
}
