package exp

import (
	"rma/internal/abtree"
	"rma/internal/core"
	"rma/internal/workload"
)

// Fig13a measures (a,b)-tree "aging": a bulk-loaded tree's full-scan
// throughput decays as random updates disperse its leaves across memory
// (the paper sees -25% after changing 5% of the elements).
func Fig13a(p Params) {
	t := abtree.New(128)
	keys, vals := sortedPairs(workload.NewUniform(p.Seed, 0), p.N)
	t.BulkLoad(keys, vals)
	m := abSUT{t}

	step := p.N / 100 // 1% of elements per round
	rng := workload.NewUniform(p.Seed^5, 0)
	p.printf("## Fig 13a — (a,b)-tree scan throughput [Melts/s] vs %% changed elements\n")
	p.printf("%-10s\t%9s\n", "changed%", "scan")
	p.printf("%-10d\t%9.2f\n", 0, fullScanThroughput(m, 3))
	for round := 1; round <= 50; round++ {
		for i := 0; i < step; i++ {
			k := rng.Next()
			t.Insert(k, workload.ValueFor(k))
		}
		for i := 0; i < step; i++ {
			t.Delete(keys[int(rng.Next())%len(keys)])
		}
		if round <= 10 || round%5 == 0 {
			p.printf("%-10d\t%9.2f\n", round, fullScanThroughput(m, 3))
		}
	}
}

// Fig13b measures bulk-loading throughput: starting from N/2 elements,
// another N/2 arrive in batches (the paper: 512M base, 1M batches). The
// series compare single inserts, the bottom-up scheme with and without
// memory rewiring, and DRF12's top-down scheme, across the Zipf sweep.
func Fig13b(p Params) {
	base := p.N / 2
	batch := p.N / 512
	if batch < 1024 {
		batch = 1024
	}
	nBatches := (p.N - base) / batch

	type scheme struct {
		name string
		cfg  core.Config
		load func(a *core.Array, b core.Batch) error
	}
	withRWR := RMAConfig(128)
	noRWR := RMAConfig(128)
	noRWR.Rebalance = core.RebalanceTwoPass

	schemes := []scheme{
		{"rma-single-inserts", withRWR, func(a *core.Array, b core.Batch) error {
			for i := range b.Keys {
				if err := a.Insert(b.Keys[i], b.Vals[i]); err != nil {
					return err
				}
			}
			return nil
		}},
		{"bottomup-noRWR", noRWR, (*core.Array).BulkLoad},
		{"bottomup-RWR", withRWR, (*core.Array).BulkLoad},
		{"topdown", noRWR, (*core.Array).BulkLoadTopDown},
	}

	p.printf("## Fig 13b — bulk load throughput [Mops/s] vs Zipf alpha (base %d, %d batches of %d)\n",
		base, nBatches, batch)
	p.printf("%-20s", "scheme")
	for _, a := range alphaSweep {
		p.printf("\t%9s", alphaLabel(a))
	}
	p.printf("\n")

	for _, s := range schemes {
		p.printf("%-20s", s.name)
		for _, alpha := range alphaSweep {
			a, err := core.New(s.cfg)
			if err != nil {
				panic(err)
			}
			pre := alphaGen(alpha, p.Seed)
			for i := 0; i < base; i++ {
				if err := a.Insert(pre.Next(), 0); err != nil {
					panic(err)
				}
			}
			g := alphaGen(alpha, p.Seed^7)
			total := 0
			d := timeIt(func() {
				for bi := 0; bi < nBatches; bi++ {
					keys := workload.Keys(g, batch)
					vals := make([]int64, batch)
					if err := s.load(a, core.Batch{Keys: keys, Vals: vals}); err != nil {
						panic(err)
					}
					total += batch
				}
			})
			p.printf("\t%9.3f", mops(total, d))
		}
		p.printf("\n")
	}
}
