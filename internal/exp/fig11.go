package exp

import (
	"rma/internal/art"
	"rma/internal/core"
	"rma/internal/workload"
)

// fig11Systems returns the four series of Fig 11: ART, even rebalancing,
// the paper's adaptive rebalancing, and the APMA policy.
func fig11Systems(withAPMA bool) []struct {
	Name string
	Mk   func() updMap
} {
	even := RMAConfig(128)
	even.Adaptive = core.AdaptiveOff

	adaptive := RMAConfig(128)

	apma := core.BaselineConfig()
	apma.Adaptive = core.AdaptiveAPMA

	out := []struct {
		Name string
		Mk   func() updMap
	}{
		{"art", func() updMap { return artSUT{art.New(128)} }},
		{"even-rebal", func() updMap { return mustCore(even) }},
		{"adaptive-rebal", func() updMap { return mustCore(adaptive) }},
	}
	if withAPMA {
		out = append(out, struct {
			Name string
			Mk   func() updMap
		}{"apma", func() updMap { return mustCore(apma) }})
	}
	return out
}

// Fig11a measures insert-only throughput across the Zipf skew sweep
// (Fig 11a: adaptive rebalancing turns the TPMA worst case around).
func Fig11a(p Params) {
	p.printf("## Fig 11a — insert-only throughput [Mops/s] vs Zipf alpha\n")
	p.printf("%-14s", "structure")
	for _, a := range alphaSweep {
		p.printf("\t%9s", alphaLabel(a))
	}
	p.printf("\n")
	for _, sys := range fig11Systems(true) {
		p.printf("%-14s", sys.Name)
		for _, a := range alphaSweep {
			m := sys.Mk()
			g := alphaGen(a, p.Seed)
			keys := workload.Keys(g, p.N)
			d := timeIt(func() {
				for _, k := range keys {
					m.InsertKV(k, workload.ValueFor(k))
				}
			})
			p.printf("\t%9.3f", mops(p.N, d))
		}
		p.printf("\n")
	}
}

// Fig11b measures the mixed workload: from cardinality N, repeated runs
// of gamma=1024 insertions then gamma deletions, insert and delete
// streams seeded differently so they hammer different regions (Fig 11b).
// APMA is excluded: it does not support deletions.
func Fig11b(p Params) {
	const gamma = 1024
	rounds := p.N / (4 * gamma)
	if rounds < 4 {
		rounds = 4
	}
	p.printf("## Fig 11b — mixed workload throughput [Mops/s] vs Zipf alpha (gamma=%d, %d rounds)\n", gamma, rounds)
	p.printf("%-14s", "structure")
	for _, a := range alphaSweep {
		p.printf("\t%9s", alphaLabel(a))
	}
	p.printf("\n")
	for _, sys := range fig11Systems(false) {
		p.printf("%-14s", sys.Name)
		for _, a := range alphaSweep {
			m := sys.Mk()
			// Preload to cardinality N with the same distribution.
			pre := alphaGen(a, p.Seed)
			for i := 0; i < p.N; i++ {
				m.InsertKV(pre.Next(), 0)
			}
			ins := alphaGen(a, p.Seed^0x1111)
			del := alphaGen(a, p.Seed^0x2222)
			total := 0
			d := timeIt(func() {
				for r := 0; r < rounds; r++ {
					for i := 0; i < gamma; i++ {
						m.InsertKV(ins.Next(), 0)
					}
					for i := 0; i < gamma; i++ {
						m.DeleteKey(del.Next())
					}
					total += 2 * gamma
				}
			})
			p.printf("\t%9.3f", mops(total, d))
		}
		p.printf("\n")
	}
}
