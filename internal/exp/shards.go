package exp

import (
	"runtime"
	"sync"

	"rma/internal/core"
	"rma/internal/shard"
	"rma/internal/workload"
)

// Shards measures the concurrent serving layer: aggregate Put
// throughput across a (goroutines x shard count) matrix, the batched
// ingestion path, concurrent point lookups, and the merged cross-shard
// scan. Series are named "<op>-g<goroutines>-s<shards>"; ns/op is
// aggregate wall time over all operations of all goroutines, so on a
// multicore machine it falls as shards remove lock contention, while on
// a single hardware thread (GOMAXPROCS=1) it mostly shows the residual
// cost of scheduling and lock handoff. The recorded NumCPU accompanies
// every BENCH_hotpath.json snapshot via its goos/goarch header fields;
// interpret scaling accordingly.
func Shards(p Params) []HotpathResult {
	maxShards := p.ShardMax
	if maxShards <= 0 {
		maxShards = 8
	}
	p.printf("## shards: concurrent serving layer, N=%d, GOMAXPROCS=%d\n", p.N, runtime.GOMAXPROCS(0))
	p.printf("# series\tlayout\trebal\tns/op\tallocs/op\telt.copies\tpage.swaps\n")

	var results []HotpathResult
	record := func(series string, ops int, ns, allocs float64, st core.Stats) {
		r := HotpathResult{
			Series: series, Layout: "sharded", Rebalance: "mutex",
			Ops: ops, NsPerOp: ns, AllocsPerOp: allocs,
			ElementCopies: st.ElementCopies, PageSwaps: st.PageSwaps,
		}
		results = append(results, r)
		p.printf("%s\t%s\t%s\t%.1f\t%.3f\t%d\t%d\n",
			series, r.Layout, r.Rebalance, ns, allocs, st.ElementCopies, st.PageSwaps)
	}

	goroutineCounts := []int{1, 2, 4, 8}
	shardCounts := []int{1, 2, 4, 8}

	for _, k := range shardCounts {
		if k > maxShards {
			continue
		}
		// Point puts at every goroutine count.
		for _, g := range goroutineCounts {
			m := newShardMap(p, k)
			ns, allocs := measure(p.N, func() {
				putConcurrent(m, p, g)
			})
			record(sprintf("put-g%d-s%d", g, k), p.N, ns, allocs, m.Stats())
		}

		// Batched puts (ApplyBatch: per-shard grouping + bulk runs).
		m := newShardMap(p, k)
		ns, allocs := measure(p.N, func() {
			batchPutConcurrent(m, p, 8, 1024)
		})
		record(sprintf("batchput-g8-s%d", k), p.N, ns, allocs, m.Stats())

		// Concurrent point lookups against the batch-loaded map.
		nGets := p.N / 2
		base := m.Stats()
		ns, allocs = measure(nGets, func() {
			getConcurrent(m, p, 8, nGets)
		})
		st := m.Stats()
		st.ElementCopies -= base.ElementCopies
		st.PageSwaps -= base.PageSwaps
		record(sprintf("get-g8-s%d", k), nGets, ns, allocs, st)

		// Merged cross-shard scan (single caller, locks one shard at a
		// time).
		base = m.Stats()
		var scanned int
		ns, allocs = measure(1, func() {
			for r := 0; r < 3; r++ {
				c, s := m.SumAll()
				sink += s
				scanned += c
			}
		})
		if scanned > 0 {
			ns /= float64(scanned)
			allocs /= float64(scanned)
		}
		st = m.Stats()
		st.ElementCopies -= base.ElementCopies
		st.PageSwaps -= base.PageSwaps
		record(sprintf("scan-merge-s%d", k), scanned, ns, allocs, st)

		// Racing reads: 8 readers against 2 churning writers on the same
		// loaded map shape, once through the mutex path and once through
		// the seqlock path (EnableLockFreeReads) — the rebal column names
		// the read protocol, the seqlock row carries the retry/fallback
		// accounting. This is the contention corner the lock-free read
		// mode exists for; on one hardware thread the two rows converge
		// (readers and writers time-slice), on multicore the seqlock row
		// is the one that keeps scaling.
		for _, lf := range []bool{false, true} {
			m := newShardMap(p, k)
			rebal := "mutex"
			if lf {
				m.EnableLockFreeReads()
				rebal = "seqlock"
			}
			batchPutConcurrent(m, p, 8, 1024)
			nGets := p.N / 2
			base := m.Stats()
			stop := make(chan struct{})
			var churn sync.WaitGroup
			for w := 0; w < 2; w++ {
				churn.Add(1)
				go func(w int) {
					defer churn.Done()
					gen := workload.NewUniform(p.Seed+uint64(w)*977+7, 0)
					for {
						select {
						case <-stop:
							return
						default:
						}
						k := gen.Next()
						if err := m.Insert(k, workload.ValueFor(k)); err != nil {
							panic(err)
						}
						if _, err := m.Delete(k); err != nil {
							panic(err)
						}
					}
				}(w)
			}
			ns, allocs := measure(nGets, func() {
				getConcurrent(m, p, 8, nGets)
			})
			close(stop)
			churn.Wait()
			st := m.Stats()
			st.ElementCopies -= base.ElementCopies
			st.PageSwaps -= base.PageSwaps
			r := HotpathResult{
				Series: sprintf("getrace-g8-s%d", k), Layout: "sharded", Rebalance: rebal,
				Ops: nGets, NsPerOp: ns, AllocsPerOp: allocs,
				ElementCopies: st.ElementCopies, PageSwaps: st.PageSwaps,
				LockFreeReads: st.LockFreeReads, ReadRetries: st.ReadRetries,
				ReadFallbacks: st.ReadFallbacks,
			}
			results = append(results, r)
			p.printf("%s\t%s\t%s\t%.1f\t%.3f\t%d\t%d\tlf=%d retry=%d fb=%d\n",
				r.Series, r.Layout, r.Rebalance, ns, allocs, st.ElementCopies,
				st.PageSwaps, st.LockFreeReads, st.ReadRetries, st.ReadFallbacks)
		}
	}
	return results
}

// newShardMap builds the serving layer over k default-configuration
// RMAs, learning the shard boundaries from a sample of the workload's
// own key distribution (uniform separators over the full int64 domain
// would leave the shards below zero empty — the workload draws
// non-negative 63-bit keys).
func newShardMap(p Params, k int) *shard.Map {
	sample := workload.Keys(workload.NewUniform(p.Seed+1009, 0), 4096)
	m, err := shard.New(core.DefaultConfig(), shard.QuantileSeps(k, sample))
	if err != nil {
		panic(err)
	}
	return m
}

// putConcurrent inserts p.N uniform keys split across g goroutines.
func putConcurrent(m *shard.Map, p Params, g int) {
	var wg sync.WaitGroup
	per := p.N / g
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := workload.NewUniform(p.Seed+uint64(i)*31, 0)
			n := per
			if i == g-1 {
				n = p.N - per*(g-1)
			}
			for j := 0; j < n; j++ {
				k := gen.Next()
				if err := m.Insert(k, workload.ValueFor(k)); err != nil {
					panic(err)
				}
			}
		}(i)
	}
	wg.Wait()
}

// batchPutConcurrent inserts p.N uniform keys split across g
// goroutines, each submitting ApplyBatch batches of the given size.
func batchPutConcurrent(m *shard.Map, p Params, g, batch int) {
	var wg sync.WaitGroup
	per := p.N / g
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := workload.NewUniform(p.Seed+uint64(i)*31, 0)
			n := per
			if i == g-1 {
				n = p.N - per*(g-1)
			}
			ops := make([]shard.Op, 0, batch)
			for j := 0; j < n; j++ {
				k := gen.Next()
				ops = append(ops, shard.Op{Kind: shard.OpPut, Key: k, Val: workload.ValueFor(k)})
				if len(ops) == batch || j == n-1 {
					if _, err := m.ApplyBatch(ops); err != nil {
						panic(err)
					}
					ops = ops[:0]
				}
			}
		}(i)
	}
	wg.Wait()
}

// getConcurrent issues total random lookups of stored keys split across
// g goroutines.
func getConcurrent(m *shard.Map, p Params, g, total int) {
	var wg sync.WaitGroup
	per := total / g
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := per
			if i == g-1 {
				n = total - per*(g-1)
			}
			// Regenerate the same uniform streams the loader used, so
			// lookups hit stored keys.
			gen := workload.NewUniform(p.Seed+uint64(i)*31, 0)
			keys := workload.Keys(gen, per+1)
			rng := workload.NewRNG(p.Seed + uint64(i) + 99)
			var local int64
			for j := 0; j < n; j++ {
				v, _ := m.Find(keys[rng.Uint64n(uint64(len(keys)))])
				local += v
			}
			atomicSinkAdd(local)
		}(i)
	}
	wg.Wait()
}

// atomicSinkAdd folds goroutine-local sums into the shared sink without
// a data race.
var sinkMu sync.Mutex

func atomicSinkAdd(v int64) {
	sinkMu.Lock()
	sink += v
	sinkMu.Unlock()
}
