package exp

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"rma/internal/rebal"
	"rma/internal/shard"
	"rma/internal/workload"
)

// PutAsync measures what the background rebalancer is for: per-put
// latency quantiles. Each goroutine times every Insert individually, so
// the p99 captures the stalls that aggregate-throughput series average
// away — the synchronous spreads/resizes on the writer's critical path.
// Series are "putasync-<mode>-g<G>-s<K>" with mode "sync" (rebalances
// execute inside Insert) or "async" (deferred to a maintenance pool of
// one worker per available CPU); compare the p99 columns between the
// two modes at the same shard count. NsPerOp is the mean of the same
// per-op samples, so it is directly comparable with p50/p99 (it is NOT
// aggregate wall time over goroutines like the "shards" series).
// DeferredWindows/MaintenanceRuns record how much rebalance work the
// async mode moved off the write path. A pool drain (Close) runs after
// the measured window, so async numbers exclude shutdown but include
// all steady-state maintenance interference.
func PutAsync(p Params) []HotpathResult {
	mode := p.Async
	switch mode {
	case "":
		mode = "both"
	case "off", "on", "both":
	default:
		// A typo must not append an empty snapshot to the checked-in
		// trajectory and exit 0.
		panic(sprintf("putasync: unknown -async mode %q (want off|on|both)", mode))
	}
	workers := runtime.GOMAXPROCS(0)
	p.printf("## putasync: per-put latency, N=%d, GOMAXPROCS=%d, pool=%d workers\n",
		p.N, runtime.GOMAXPROCS(0), workers)
	p.printf("# series\trebal\tmean.ns\tp50.ns\tp99.ns\tdeferred\tmaint.runs\telt.copies\n")

	var results []HotpathResult
	goroutines := 8
	shardCounts := []int{1, 8}
	maxShards := p.ShardMax
	if maxShards <= 0 {
		maxShards = 8
	}

	for _, k := range shardCounts {
		if k > maxShards && k != 1 {
			continue
		}
		if mode == "off" || mode == "both" {
			results = append(results, putLatency(p, k, goroutines, 0))
		}
		if mode == "on" || mode == "both" {
			results = append(results, putLatency(p, k, goroutines, workers))
		}
	}
	for _, r := range results {
		p.printf("%s\t%s\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\n",
			r.Series, r.Rebalance, r.NsPerOp, r.P50Ns, r.P99Ns,
			r.DeferredWindows, r.MaintenanceRuns, r.ElementCopies)
	}
	return results
}

// putLatency loads p.N uniform keys through g goroutines over k shards,
// timing every Insert. workers == 0 keeps rebalancing synchronous;
// otherwise a maintenance pool of that size drains deferred windows in
// the background.
func putLatency(p Params, k, g, workers int) HotpathResult {
	m := newShardMap(p, k)
	var pool *rebal.Pool
	modeName := "sync"
	if workers > 0 {
		modeName = "async"
		pool = rebal.NewPool(m, workers)
		m.EnableDeferredRebalancing(pool.Notify)
		pool.Start()
	}

	per := p.N / g
	lats := make([][]int64, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := workload.NewUniform(p.Seed+uint64(i)*31, 0)
			n := per
			if i == g-1 {
				n = p.N - per*(g-1)
			}
			samples := make([]int64, n)
			for j := 0; j < n; j++ {
				key := gen.Next()
				t0 := time.Now()
				if err := m.Insert(key, workload.ValueFor(key)); err != nil {
					panic(err)
				}
				samples[j] = time.Since(t0).Nanoseconds()
			}
			lats[i] = samples
		}(i)
	}
	wg.Wait()
	if pool != nil {
		if err := pool.Close(); err != nil {
			panic(err)
		}
	}

	all := lats[0][:0:0]
	var sum int64
	for _, s := range lats {
		all = append(all, s...)
		for _, v := range s {
			sum += v
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	st := m.Stats()
	return HotpathResult{
		Series:          sprintf("putasync-%s-g%d-s%d", modeName, g, k),
		Layout:          "sharded",
		Rebalance:       modeName,
		Ops:             len(all),
		NsPerOp:         float64(sum) / float64(len(all)),
		P50Ns:           quantile(all, 0.50),
		P99Ns:           quantile(all, 0.99),
		ElementCopies:   st.ElementCopies,
		PageSwaps:       st.PageSwaps,
		DeferredWindows: st.DeferredWindows,
		MaintenanceRuns: st.MaintenanceRuns,
	}
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []int64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i])
}

// interface guard: the shard map is the pool's maintenance source.
var _ rebal.Source = (*shard.Map)(nil)
