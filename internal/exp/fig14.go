package exp

import (
	"sort"

	"rma/internal/core"
	"rma/internal/workload"
)

// FeatureChain returns the cumulative configuration chain of Fig 14: the
// TPMA baseline plus one feature per step, ending at the full RMA.
func FeatureChain() []struct {
	Name string
	Cfg  core.Config
} {
	baseline := core.BaselineConfig()

	clustering := baseline
	clustering.Layout = core.LayoutClustered

	fixedSeg := clustering
	fixedSeg.Sizing = core.SizingFixed
	fixedSeg.SegmentSlots = 128

	staticIx := fixedSeg
	staticIx.Index = core.IndexStatic

	rewiring := staticIx
	rewiring.Rebalance = core.RebalanceRewired

	adaptive := rewiring
	adaptive.Adaptive = core.AdaptiveRMA

	return []struct {
		Name string
		Cfg  core.Config
	}{
		{"baseline", baseline},
		{"+clustering", clustering},
		{"+fixed-segments", fixedSeg},
		{"+static-index", staticIx},
		{"+rewiring", rewiring},
		{"+adaptive", adaptive},
	}
}

// Fig14 measures the cumulative contribution of each RMA feature on the
// Fig 1 workloads, reporting speedups relative to the TPMA baseline.
func Fig14(p Params) {
	p.printf("## Fig 14 — cumulative feature contributions (speedup vs TPMA baseline)\n")
	p.printf("%-16s\t%12s\t%12s\t%12s\t%12s\t%12s\n",
		"configuration", "ins-uniform", "ins-zipf1.0", "ins-zipf1.5", "ins-seq", "scan-1%")

	var base [5]float64
	for _, step := range FeatureChain() {
		cfg := step.Cfg
		var vals [5]float64
		for i, pat := range fig01Patterns {
			m := mustCore(cfg)
			vals[i] = insertPattern(m, pat, p.Seed, p.N)
		}
		m := mustCore(cfg)
		keys := workload.Keys(workload.NewPattern(workload.PatternUniform, p.Seed), p.N)
		for _, k := range keys {
			m.InsertKV(k, workload.ValueFor(k))
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		vals[4] = scanThroughput(m, sorted, p.Seed^1, 0.01)

		if base[0] == 0 {
			base = vals
		}
		p.printf("%-16s", step.Name)
		for i, v := range vals {
			p.printf("\t%6.2f (%4.1fx)", v, v/base[i])
		}
		p.printf("\n")
	}
}
