package exp

import (
	"os"
	"sync"
	"time"

	"rma/internal/core"
	"rma/internal/vmem"
	"rma/internal/wal"
	"rma/internal/workload"
)

// Durability measures what checkpointing costs and what recovery buys —
// the three numbers that justify (or indict) the crash-consistency
// layer:
//
//   - checkpoint latency: the first (full) checkpoint persists every
//     page; a steady-state checkpoint after a localized update burst
//     persists only the dirtied pages. Both report ns per page written,
//     so the full/incremental economy is directly visible in Ops (pages).
//   - recovery time vs re-bulk-load: core.Open maps the checkpointed
//     pages back and rebuilds only derived state, versus rebuilding the
//     array from sorted pairs with BulkLoad — the alternative a system
//     without checkpoints pays after every restart. Both report ns per
//     element over the same cardinality.
//   - steady-state put overhead: uniform random inserts with a
//     checkpoint every N/16 ops, against the same insert stream on a
//     plain in-memory array. The delta is the full price of durability
//     on the write path (dirty-bit marking + periodic page writes).
//
// Series ride the hotpath trajectory ("dur-*"), so BENCH_hotpath.json
// records the durability economics PR over PR.
func Durability(p Params) []HotpathResult {
	cfg := core.DefaultConfig()
	p.printf("## durability: checkpoint/recovery economics, N=%d, pageSlots=%d\n", p.N, cfg.PageSlots)
	p.printf("# series\tlayout\trebal\tops\tns/op\tckpt.pages\n")

	dir, err := os.MkdirTemp("", "rma-durability-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	var results []HotpathResult
	record := func(series string, ops int, d time.Duration, st core.Stats) {
		r := HotpathResult{
			Series: series, Layout: "clustered", Rebalance: "rewired",
			Ops: ops, NsPerOp: float64(d.Nanoseconds()) / float64(max(ops, 1)),
			ElementCopies: st.ElementCopies, PageSwaps: st.PageSwaps,
		}
		results = append(results, r)
		p.printf("%s\tclustered\trewired\t%d\t%.1f\t%d\n", series, ops, r.NsPerOp, st.CheckpointPages)
	}

	uniform := workload.Keys(workload.NewUniform(p.Seed, 0), p.N)

	// --- checkpoint latency: full, then incremental ------------------------
	reg, err := vmem.CreateFileRegion(dir+"/ckpt", cfg.PageSlots)
	if err != nil {
		panic(err)
	}
	a := newCore(cfg)
	if err := a.AttachDurability(reg); err != nil {
		panic(err)
	}
	for _, k := range uniform {
		if err := a.Insert(k, workload.ValueFor(k)); err != nil {
			panic(err)
		}
	}
	d := timeIt(func() {
		if _, err := a.Checkpoint(0); err != nil {
			panic(err)
		}
	})
	fullPages := int(a.Stats().CheckpointPages)
	record("dur-ckpt-full", fullPages, d, a.Stats())

	// A localized burst (0.1% of N around one hot key) dirties few pages.
	burst := p.N / 1000
	if burst < 1 {
		burst = 1
	}
	hot := uniform[len(uniform)/2]
	for i := 0; i < burst; i++ {
		if err := a.Insert(hot+int64(i%256), int64(i)); err != nil {
			panic(err)
		}
	}
	before := a.Stats().CheckpointPages
	d = timeIt(func() {
		if _, err := a.Checkpoint(0); err != nil {
			panic(err)
		}
	})
	record("dur-ckpt-incr", int(a.Stats().CheckpointPages-before), d, a.Stats())

	// --- recovery vs re-bulk-load ------------------------------------------
	n := a.Size()
	reg.Close()
	reopened, err := vmem.OpenFileRegion(dir + "/ckpt")
	if err != nil {
		panic(err)
	}
	var recovered *core.Array
	d = timeIt(func() {
		recovered, err = core.Open(reopened, cfg, 0)
		if err != nil {
			panic(err)
		}
	})
	if recovered.Size() != n {
		panic("durability: recovery size mismatch")
	}
	record("dur-recover", n, d, recovered.Stats())
	reopened.Close()

	keys, vals := sortedPairs(workload.NewUniform(p.Seed, 0), p.N)
	fresh := newCore(cfg)
	d = timeIt(func() {
		if err := fresh.BulkLoad(core.Batch{Keys: keys, Vals: vals}); err != nil {
			panic(err)
		}
	})
	record("dur-rebuild", fresh.Size(), d, fresh.Stats())

	// --- steady-state put overhead -----------------------------------------
	every := p.N / 16
	if every < 1 {
		every = 1
	}
	reg2, err := vmem.CreateFileRegion(dir+"/puts", cfg.PageSlots)
	if err != nil {
		panic(err)
	}
	dur := newCore(cfg)
	if err := dur.AttachDurability(reg2); err != nil {
		panic(err)
	}
	d = timeIt(func() {
		for i, k := range uniform {
			if err := dur.Insert(k, workload.ValueFor(k)); err != nil {
				panic(err)
			}
			if (i+1)%every == 0 {
				if _, err := dur.Checkpoint(0); err != nil {
					panic(err)
				}
			}
		}
	})
	record("dur-put-ckpt16", p.N, d, dur.Stats())
	reg2.Close()

	plain := newCore(cfg)
	d = timeIt(func() {
		for _, k := range uniform {
			if err := plain.Insert(k, workload.ValueFor(k)); err != nil {
				panic(err)
			}
		}
	})
	record("dur-put-baseline", p.N, d, plain.Stats())

	// --- write-ahead log: ack latency, group commit, replay ----------------
	// wal-put is the full price of a synchronous ack: one record staged,
	// one commit wave, one fsync awaited per op (capped — each op IS an
	// fsync). wal-group-commit drives the same log from 8 writers so
	// concurrent records coalesce into shared waves; the per-op time
	// dropping well below wal-put is the group-commit economy. wal-recover
	// is replay throughput: records written without syncing, then the log
	// reopened and every record decoded and handed back.
	walSeps := make([]int64, 8)
	for i := range walSeps {
		walSeps[i] = int64(i)
	}
	walOps := p.N
	if walOps > 4096 {
		walOps = 4096
	}
	wput, err := wal.Create(dir+"/wal-put", walSeps, 0, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		panic(err)
	}
	d = timeIt(func() {
		var op [1]wal.Op
		for i := 0; i < walOps; i++ {
			op[0] = wal.Op{Kind: wal.OpPut, Key: int64(i), Val: int64(i)}
			tk, err := wput.Append(0, op[:])
			if err != nil {
				panic(err)
			}
			if err := wput.Wait(tk); err != nil {
				panic(err)
			}
		}
	})
	record("wal-put", walOps, d, core.Stats{})
	wput.Close()

	wgrp, err := wal.Create(dir+"/wal-group", walSeps, 0, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		panic(err)
	}
	const walWriters = 8
	per := walOps / walWriters
	d = timeIt(func() {
		var wg sync.WaitGroup
		for w := 0; w < walWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var op [1]wal.Op
				for i := 0; i < per; i++ {
					op[0] = wal.Op{Kind: wal.OpPut, Key: int64(i), Val: int64(w)}
					tk, err := wgrp.Append(w, op[:])
					if err != nil {
						panic(err)
					}
					if err := wgrp.Wait(tk); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
	})
	record("wal-group-commit", per*walWriters, d, core.Stats{})
	wgrp.Close()

	walN := p.N
	if walN > 1<<16 {
		walN = 1 << 16
	}
	wrec, err := wal.Create(dir+"/wal-recover", walSeps, 0, wal.Options{Sync: wal.SyncNever})
	if err != nil {
		panic(err)
	}
	var last wal.Ticket
	var op [1]wal.Op
	for i := 0; i < walN; i++ {
		op[0] = wal.Op{Kind: wal.OpPut, Key: int64(i), Val: int64(i)}
		if last, err = wrec.Append(i%8, op[:]); err != nil {
			panic(err)
		}
	}
	if err := wrec.Wait(last); err != nil {
		panic(err)
	}
	wrec.Close()
	var replayed int
	d = timeIt(func() {
		reopened, err := wal.Open(dir+"/wal-recover", wal.Options{Sync: wal.SyncNever})
		if err != nil {
			panic(err)
		}
		err = reopened.Replay(func(shard int, lsn uint64, ops []wal.Op) error {
			replayed += len(ops)
			return nil
		})
		if err != nil {
			panic(err)
		}
		reopened.Close()
	})
	if replayed != walN {
		panic("durability: wal replay count mismatch")
	}
	record("wal-recover", walN, d, core.Stats{})

	return results
}
