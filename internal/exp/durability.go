package exp

import (
	"os"
	"time"

	"rma/internal/core"
	"rma/internal/vmem"
	"rma/internal/workload"
)

// Durability measures what checkpointing costs and what recovery buys —
// the three numbers that justify (or indict) the crash-consistency
// layer:
//
//   - checkpoint latency: the first (full) checkpoint persists every
//     page; a steady-state checkpoint after a localized update burst
//     persists only the dirtied pages. Both report ns per page written,
//     so the full/incremental economy is directly visible in Ops (pages).
//   - recovery time vs re-bulk-load: core.Open maps the checkpointed
//     pages back and rebuilds only derived state, versus rebuilding the
//     array from sorted pairs with BulkLoad — the alternative a system
//     without checkpoints pays after every restart. Both report ns per
//     element over the same cardinality.
//   - steady-state put overhead: uniform random inserts with a
//     checkpoint every N/16 ops, against the same insert stream on a
//     plain in-memory array. The delta is the full price of durability
//     on the write path (dirty-bit marking + periodic page writes).
//
// Series ride the hotpath trajectory ("dur-*"), so BENCH_hotpath.json
// records the durability economics PR over PR.
func Durability(p Params) []HotpathResult {
	cfg := core.DefaultConfig()
	p.printf("## durability: checkpoint/recovery economics, N=%d, pageSlots=%d\n", p.N, cfg.PageSlots)
	p.printf("# series\tlayout\trebal\tops\tns/op\tckpt.pages\n")

	dir, err := os.MkdirTemp("", "rma-durability-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	var results []HotpathResult
	record := func(series string, ops int, d time.Duration, st core.Stats) {
		r := HotpathResult{
			Series: series, Layout: "clustered", Rebalance: "rewired",
			Ops: ops, NsPerOp: float64(d.Nanoseconds()) / float64(max(ops, 1)),
			ElementCopies: st.ElementCopies, PageSwaps: st.PageSwaps,
		}
		results = append(results, r)
		p.printf("%s\tclustered\trewired\t%d\t%.1f\t%d\n", series, ops, r.NsPerOp, st.CheckpointPages)
	}

	uniform := workload.Keys(workload.NewUniform(p.Seed, 0), p.N)

	// --- checkpoint latency: full, then incremental ------------------------
	reg, err := vmem.CreateFileRegion(dir+"/ckpt", cfg.PageSlots)
	if err != nil {
		panic(err)
	}
	a := newCore(cfg)
	if err := a.AttachDurability(reg); err != nil {
		panic(err)
	}
	for _, k := range uniform {
		if err := a.Insert(k, workload.ValueFor(k)); err != nil {
			panic(err)
		}
	}
	d := timeIt(func() {
		if _, err := a.Checkpoint(0); err != nil {
			panic(err)
		}
	})
	fullPages := int(a.Stats().CheckpointPages)
	record("dur-ckpt-full", fullPages, d, a.Stats())

	// A localized burst (0.1% of N around one hot key) dirties few pages.
	burst := p.N / 1000
	if burst < 1 {
		burst = 1
	}
	hot := uniform[len(uniform)/2]
	for i := 0; i < burst; i++ {
		if err := a.Insert(hot+int64(i%256), int64(i)); err != nil {
			panic(err)
		}
	}
	before := a.Stats().CheckpointPages
	d = timeIt(func() {
		if _, err := a.Checkpoint(0); err != nil {
			panic(err)
		}
	})
	record("dur-ckpt-incr", int(a.Stats().CheckpointPages-before), d, a.Stats())

	// --- recovery vs re-bulk-load ------------------------------------------
	n := a.Size()
	reg.Close()
	reopened, err := vmem.OpenFileRegion(dir + "/ckpt")
	if err != nil {
		panic(err)
	}
	var recovered *core.Array
	d = timeIt(func() {
		recovered, err = core.Open(reopened, cfg, 0)
		if err != nil {
			panic(err)
		}
	})
	if recovered.Size() != n {
		panic("durability: recovery size mismatch")
	}
	record("dur-recover", n, d, recovered.Stats())
	reopened.Close()

	keys, vals := sortedPairs(workload.NewUniform(p.Seed, 0), p.N)
	fresh := newCore(cfg)
	d = timeIt(func() {
		if err := fresh.BulkLoad(core.Batch{Keys: keys, Vals: vals}); err != nil {
			panic(err)
		}
	})
	record("dur-rebuild", fresh.Size(), d, fresh.Stats())

	// --- steady-state put overhead -----------------------------------------
	every := p.N / 16
	if every < 1 {
		every = 1
	}
	reg2, err := vmem.CreateFileRegion(dir+"/puts", cfg.PageSlots)
	if err != nil {
		panic(err)
	}
	dur := newCore(cfg)
	if err := dur.AttachDurability(reg2); err != nil {
		panic(err)
	}
	d = timeIt(func() {
		for i, k := range uniform {
			if err := dur.Insert(k, workload.ValueFor(k)); err != nil {
				panic(err)
			}
			if (i+1)%every == 0 {
				if _, err := dur.Checkpoint(0); err != nil {
					panic(err)
				}
			}
		}
	})
	record("dur-put-ckpt16", p.N, d, dur.Stats())
	reg2.Close()

	plain := newCore(cfg)
	d = timeIt(func() {
		for _, k := range uniform {
			if err := plain.Insert(k, workload.ValueFor(k)); err != nil {
				panic(err)
			}
		}
	})
	record("dur-put-baseline", p.N, d, plain.Stats())

	return results
}
