package exp

import (
	"bytes"
	"strings"
	"testing"
)

// tiny returns parameters small enough for CI but large enough to cross
// several resizes.
func tiny() (Params, *bytes.Buffer) {
	var buf bytes.Buffer
	p := Params{N: 1 << 13, Seed: 7, Out: &buf}
	return p, &buf
}

// Every figure runner must execute end-to-end and print its series.
func TestFigureRunnersSmoke(t *testing.T) {
	runners := map[string]func(Params){
		"fig01a": Fig01a,
		"fig01b": Fig01b,
		"fig01c": Fig01c,
		"fig10":  Fig10,
		"fig11a": Fig11a,
		"fig11b": Fig11b,
		"fig12":  Fig12,
		"fig13a": Fig13a,
		"fig13b": Fig13b,
		"fig14":  Fig14,
	}
	for name, run := range runners {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			p, buf := tiny()
			run(p)
			out := buf.String()
			if !strings.Contains(out, "## Fig") {
				t.Fatalf("%s printed no header:\n%s", name, out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("%s printed too little:\n%s", name, out)
			}
		})
	}
	_ = Sink()
}

func TestFeatureChainCovered(t *testing.T) {
	chain := FeatureChain()
	if len(chain) != 6 {
		t.Fatalf("chain has %d steps, want 6 (baseline + 5 features)", len(chain))
	}
	// Each step must actually change the configuration.
	for i := 1; i < len(chain); i++ {
		if chain[i].Cfg == chain[i-1].Cfg {
			t.Fatalf("step %q does not change the configuration", chain[i].Name)
		}
	}
}

func TestRelatedWorkConfigsValid(t *testing.T) {
	for _, rw := range RelatedWorkConfigs() {
		if err := rw.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", rw.Name, err)
		}
	}
}

func TestScanThroughputCoversRequestedFraction(t *testing.T) {
	p, _ := tiny()
	m := mustCore(RMAConfig(32))
	keys := make([]int64, 0, p.N)
	for i := 0; i < p.N; i++ {
		m.InsertKV(int64(i), 0)
		keys = append(keys, int64(i))
	}
	if v := scanThroughput(m, keys, 1, 0.01); v <= 0 {
		t.Fatal("scan throughput must be positive")
	}
}
