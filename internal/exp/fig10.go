package exp

import (
	"sort"

	"rma/internal/art"
	"rma/internal/workload"
)

// fig10Sizes returns the cardinality checkpoints: powers of two from
// N/64 up to N (the paper plots 1M..1G on a 1G load).
func fig10Sizes(n int) []int {
	var out []int
	for s := n / 64; s <= n; s *= 2 {
		if s >= 1024 {
			out = append(out, s)
		}
	}
	return out
}

// fig10Bs is the node/segment size sweep of Fig 10.
var fig10Bs = []int{32, 128, 512, 2048}

// Fig10 measures insertion, lookup and scan throughput for ART-indexed
// trees and RMAs at matching node/segment sizes, plus the dense-array
// scan bound (Fig 10 a, b, c).
func Fig10(p Params) {
	sizes := fig10Sizes(p.N)

	type series struct {
		name string
		mk   func() updMap
	}
	var all []series
	for _, b := range fig10Bs {
		b := b
		all = append(all,
			series{sprintf("art-B%d", b), func() updMap { return artSUT{art.New(b)} }},
			series{sprintf("rma-B%d", b), func() updMap { return mustCore(RMAConfig(b)) }},
		)
	}

	// --- Fig 10a: insertion throughput as the structure grows ---
	p.printf("## Fig 10a — insertion throughput [Mops/s] vs size\n")
	p.printf("%-12s", "structure")
	for _, s := range sizes {
		p.printf("\t%9d", s)
	}
	p.printf("\n")

	keys := workload.Keys(workload.NewUniform(p.Seed, 0), p.N)
	built := map[string]updMap{}
	for _, sr := range all {
		m := sr.mk()
		p.printf("%-12s", sr.name)
		prev := 0
		for _, s := range sizes {
			cnt := s - prev
			lo, hi := prev, s
			d := timeIt(func() {
				for _, k := range keys[lo:hi] {
					m.InsertKV(k, workload.ValueFor(k))
				}
			})
			prev = s
			p.printf("\t%9.3f", mops(cnt, d))
		}
		p.printf("\n")
		built[sr.name] = m
	}

	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	// --- Fig 10b: point lookups at the final size ---
	p.printf("## Fig 10b — point-lookup throughput [Mops/s] at size %d\n", p.N)
	lookups := p.N / 4
	if lookups > 1<<20 {
		lookups = 1 << 20 // the paper uses 1M lookups
	}
	for _, sr := range all {
		v := lookupThroughput(built[sr.name], keys, lookups, p.Seed^2)
		p.printf("%-12s\t%9.3f\n", sr.name, v)
	}

	// --- Fig 10c: scans at varying interval size ---
	fracs := []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0}
	p.printf("## Fig 10c — scan throughput [Melts/s] vs interval fraction at size %d\n", p.N)
	p.printf("%-12s", "structure")
	for _, f := range fracs {
		p.printf("\t%8.4f", f)
	}
	p.printf("\n")
	for _, sr := range all {
		p.printf("%-12s", sr.name)
		for _, f := range fracs {
			p.printf("\t%8.2f", scanThroughput(built[sr.name], sorted, p.Seed^3, f))
		}
		p.printf("\n")
	}
	// Dense array bound.
	vals := make([]int64, len(sorted))
	for i, k := range sorted {
		vals[i] = workload.ValueFor(k)
	}
	d := denseSUT{keys: sorted, vals: vals}
	p.printf("%-12s", "dense")
	for _, f := range fracs {
		p.printf("\t%8.2f", scanThroughput(d, sorted, p.Seed^3, f))
	}
	p.printf("\n")
}
