package server

import (
	"strconv"

	"rma"
	"rma/internal/resp"
)

// Per-connection pipelined coalescing.
//
// A pipeline holds at most one pending run, and the run is homogeneous:
// either coalescible point reads (GET, EXISTS, MGET) or coalescible
// upserts (SET, MSET). Reads flush through one Sharded.GetBatch, writes
// through one Sharded.ApplyBatch; the replies are emitted in command
// order at flush time. Any command outside the run's class flushes it
// first, so one connection's commands always take effect (and answer)
// in the order they were sent.
//
// DEL is a write but not part of the coalesced run: its reply is the
// number of keys that existed, which the aggregate ApplyBatch result
// cannot attribute per command once SET's delete+put pairs share the
// batch. A DEL therefore flushes the run and applies as its own batch
// (multi-key DELs still ride one ApplyBatch).

type runClass uint8

const (
	runNone runClass = iota
	runRead
	runWrite
)

// readCmd is one queued read command: its kind and how many of the
// pipeline's queued keys it owns.
type readCmd struct {
	kind  byte // 'g' GET, 'e' EXISTS, 'm' MGET
	nkeys int
}

// pipeline is one connection's pending coalesced run plus its reusable
// scratch. All storage is reused across flushes, so a steady-state
// connection batches without allocating.
type pipeline struct {
	class     runClass
	reads     []readCmd
	keys      []int64 // queued read probe keys
	ops       []rma.BatchOp
	writeCmds int // queued SET/MSET commands (each answers +OK)
	looks     []rma.Lookup
	scan      scanBuf
}

// scanBuf collects one SCAN command's results before the array header
// (whose length must be known first) is written.
type scanBuf struct {
	keys, vals []int64
}

func (p *pipeline) count() int {
	if p.class == runRead {
		return len(p.reads)
	}
	return p.writeCmds
}

func (p *pipeline) resetRead() {
	p.reads = p.reads[:0]
	p.keys = p.keys[:0]
	p.class = runNone
}

func (p *pipeline) resetWrite() {
	p.ops = p.ops[:0]
	p.writeCmds = 0
	p.class = runNone
}

// flushPending executes and answers the pending run, if any.
func (s *Server) flushPending(p *pipeline, w *resp.Writer) {
	switch p.class {
	case runRead:
		s.flushReads(p, w)
	case runWrite:
		s.flushWrites(p, w)
	}
}

// flushReads resolves the queued point reads through one GetBatch and
// answers each command in order.
func (s *Server) flushReads(p *pipeline, w *resp.Writer) {
	p.looks = s.db.GetBatch(p.keys, p.looks)
	s.readBatches.Add(1)
	s.readBatched.Add(uint64(len(p.reads)))
	i := 0
	for _, rc := range p.reads {
		group := p.looks[i : i+rc.nkeys]
		i += rc.nkeys
		switch rc.kind {
		case 'g':
			if group[0].OK {
				w.BulkInt(group[0].Val)
			} else {
				w.Null()
			}
		case 'e':
			n := int64(0)
			for _, l := range group {
				if l.OK {
					n++
				}
			}
			w.Int(n)
		case 'm':
			w.ArrayHeader(len(group))
			for _, l := range group {
				if l.OK {
					w.BulkInt(l.Val)
				} else {
					w.Null()
				}
			}
		}
	}
	p.resetRead()
}

// flushWrites applies the queued upserts through one ApplyBatch and
// answers +OK per command (or the engine error to every command in the
// batch — the batch is not atomic across shards, so after an error the
// client must treat the run's effects as partial).
func (s *Server) flushWrites(p *pipeline, w *resp.Writer) {
	_, err := s.db.ApplyBatch(p.ops)
	s.writeBatches.Add(1)
	s.writeBatched.Add(uint64(p.writeCmds))
	for i := 0; i < p.writeCmds; i++ {
		if err != nil {
			s.errorReplies.Add(1)
			w.Error("ERR " + err.Error())
		} else {
			w.SimpleString("OK")
		}
	}
	p.resetWrite()
}

// beginRead ensures the pipeline is collecting reads.
func (s *Server) beginRead(p *pipeline, w *resp.Writer) {
	if p.class == runWrite {
		s.flushWrites(p, w)
	}
	p.class = runRead
}

// beginWrite ensures the pipeline is collecting writes.
func (s *Server) beginWrite(p *pipeline, w *resp.Writer) {
	if p.class == runRead {
		s.flushReads(p, w)
	}
	p.class = runWrite
}

// argErr flushes pending work (reply order!) and emits an error reply.
func (s *Server) argErr(p *pipeline, w *resp.Writer, msg string) bool {
	s.flushPending(p, w)
	s.errorReplies.Add(1)
	w.Error(msg)
	return false
}

// upperName uppercases the command name into buf (commands are short
// ASCII; anything longer than buf cannot be a known command).
func upperName(buf []byte, name []byte) []byte {
	if len(name) > len(buf) {
		return nil
	}
	for i, b := range name {
		if 'a' <= b && b <= 'z' {
			b -= 'a' - 'A'
		}
		buf[i] = b
	}
	return buf[:len(name)]
}

// dispatch routes one parsed command: coalescible commands queue on the
// pipeline, everything else flushes it and executes immediately. The
// return value reports whether the connection should close (QUIT,
// SHUTDOWN).
func (s *Server) dispatch(p *pipeline, w *resp.Writer, cmd [][]byte) bool {
	if len(cmd) == 0 {
		return s.argErr(p, w, "ERR empty command")
	}
	var nameBuf [16]byte
	name := upperName(nameBuf[:], cmd[0])
	args := cmd[1:]

	switch string(name) { // compiler optimizes the []byte->string switch, no alloc
	case "GET":
		if len(args) != 1 {
			return s.wrongArity(p, w, "GET")
		}
		k, ok := resp.ParseInt(args[0])
		if !ok {
			return s.intErr(p, w)
		}
		s.beginRead(p, w)
		p.keys = append(p.keys, k)
		p.reads = append(p.reads, readCmd{kind: 'g', nkeys: 1})

	case "EXISTS", "MGET":
		if len(args) == 0 {
			return s.wrongArity(p, w, string(name))
		}
		kind := byte('e')
		if name[0] == 'M' {
			kind = 'm'
		}
		nk := 0
		for _, a := range args {
			k, ok := resp.ParseInt(a)
			if !ok {
				p.keys = p.keys[:len(p.keys)-nk] // drop the partial command
				return s.intErr(p, w)
			}
			p.keys = append(p.keys, k)
			nk++
		}
		s.beginRead(p, w)
		p.reads = append(p.reads, readCmd{kind: kind, nkeys: nk})

	case "SET":
		if len(args) != 2 {
			return s.wrongArity(p, w, "SET")
		}
		k, ok1 := resp.ParseInt(args[0])
		v, ok2 := resp.ParseInt(args[1])
		if !ok1 || !ok2 {
			return s.intErr(p, w)
		}
		s.beginWrite(p, w)
		p.ops = append(p.ops,
			rma.BatchOp{Kind: rma.OpDelete, Key: k},
			rma.BatchOp{Kind: rma.OpPut, Key: k, Val: v})
		p.writeCmds++

	case "MSET":
		if len(args) == 0 || len(args)%2 != 0 {
			return s.wrongArity(p, w, "MSET")
		}
		nops := 0
		for i := 0; i < len(args); i += 2 {
			k, ok1 := resp.ParseInt(args[i])
			v, ok2 := resp.ParseInt(args[i+1])
			if !ok1 || !ok2 {
				p.ops = p.ops[:len(p.ops)-nops]
				return s.intErr(p, w)
			}
			p.ops = append(p.ops,
				rma.BatchOp{Kind: rma.OpDelete, Key: k},
				rma.BatchOp{Kind: rma.OpPut, Key: k, Val: v})
			nops += 2
		}
		s.beginWrite(p, w)
		p.writeCmds++

	case "DEL":
		if len(args) == 0 {
			return s.wrongArity(p, w, "DEL")
		}
		s.flushPending(p, w)
		ops := p.ops[:0]
		for _, a := range args {
			k, ok := resp.ParseInt(a)
			if !ok {
				return s.intErr(p, w)
			}
			ops = append(ops, rma.BatchOp{Kind: rma.OpDelete, Key: k})
		}
		p.ops = ops[:0]
		deleted, err := s.db.ApplyBatch(ops)
		if err != nil {
			s.errorReplies.Add(1)
			w.Error("ERR " + err.Error())
			return false
		}
		w.Int(int64(deleted))

	case "SCAN":
		return s.scanCmd(p, w, args)

	case "COUNT":
		if len(args) != 2 {
			return s.wrongArity(p, w, "COUNT")
		}
		lo, ok1 := resp.ParseInt(args[0])
		hi, ok2 := resp.ParseInt(args[1])
		if !ok1 || !ok2 {
			return s.intErr(p, w)
		}
		s.flushPending(p, w)
		w.Int(int64(s.db.CountRange(lo, hi)))

	case "LEN", "DBSIZE":
		s.flushPending(p, w)
		w.Int(int64(s.db.Size()))

	case "PING":
		s.flushPending(p, w)
		if len(args) == 1 {
			w.BulkBytes(args[0])
		} else {
			w.SimpleString("PONG")
		}

	case "ECHO":
		if len(args) != 1 {
			return s.wrongArity(p, w, "ECHO")
		}
		s.flushPending(p, w)
		w.BulkBytes(args[0])

	case "STATS", "INFO":
		s.flushPending(p, w)
		s.statsCmd(w)

	case "CHECKPOINT":
		if len(args) != 0 {
			return s.wrongArity(p, w, "CHECKPOINT")
		}
		s.flushPending(p, w)
		if !s.db.Durable() {
			s.errorReplies.Add(1)
			w.Error("ERR store is not durable")
			return false
		}
		// Prefer the background round (the maintenance pool drives it and
		// no client blocks); without a pool, or when a round is already in
		// flight, run synchronously — CheckpointAll helps an in-flight
		// round finish and then publishes its own.
		if s.db.RequestCheckpoint() {
			w.SimpleString("Background checkpoint started")
		} else if err := s.db.Checkpoint(); err != nil {
			s.errorReplies.Add(1)
			w.Error("ERR " + err.Error())
			return false
		} else {
			w.SimpleString("OK")
		}

	case "LASTSAVE":
		if len(args) != 0 {
			return s.wrongArity(p, w, "LASTSAVE")
		}
		s.flushPending(p, w)
		st := s.db.ServeStats()
		w.ArrayHeader(2)
		w.Int(int64(st.CheckpointRounds))
		w.Int(int64(st.CheckpointLSN))

	case "FLUSH":
		s.flushPending(p, w)
		if err := s.db.Flush(); err != nil {
			s.errorReplies.Add(1)
			w.Error("ERR " + err.Error())
			return false
		}
		w.SimpleString("OK")

	case "QUIT":
		s.flushPending(p, w)
		w.SimpleString("OK")
		return true

	case "SHUTDOWN":
		s.flushPending(p, w)
		w.SimpleString("OK")
		s.shutdownOnce.Do(func() { close(s.shutdownCh) })
		return true

	default:
		return s.argErr(p, w, "ERR unknown command '"+string(cmd[0])+"'")
	}
	return false
}

func (s *Server) wrongArity(p *pipeline, w *resp.Writer, name string) bool {
	return s.argErr(p, w, "ERR wrong number of arguments for '"+name+"'")
}

func (s *Server) intErr(p *pipeline, w *resp.Writer) bool {
	return s.argErr(p, w, "ERR value is not an integer or out of range")
}

// scanCmd answers SCAN lo hi [COUNT n]: up to n elements of [lo, hi] in
// key order as a flat key,value,... array, read through SnapshotScan. A
// final element reports the traversal's consistency verdict ("consistent"
// or "torn") — clients needing one cut retry on "torn" (see SERVING.md).
func (s *Server) scanCmd(p *pipeline, w *resp.Writer, args [][]byte) bool {
	if len(args) != 2 && len(args) != 4 {
		return s.wrongArity(p, w, "SCAN")
	}
	lo, ok1 := resp.ParseInt(args[0])
	hi, ok2 := resp.ParseInt(args[1])
	if !ok1 || !ok2 {
		return s.intErr(p, w)
	}
	count := 128
	if len(args) == 4 {
		var cBuf [8]byte
		if string(upperName(cBuf[:], args[2])) != "COUNT" {
			return s.argErr(p, w, "ERR syntax error")
		}
		n, ok := resp.ParseInt(args[3])
		if !ok || n <= 0 {
			return s.intErr(p, w)
		}
		count = int(min(n, int64(s.cfg.MaxScanCount)))
	}
	s.flushPending(p, w)

	sb := &p.scan
	sb.keys, sb.vals = sb.keys[:0], sb.vals[:0]
	consistent := s.db.SnapshotScan(lo, hi, func(k, v int64) bool {
		sb.keys = append(sb.keys, k)
		sb.vals = append(sb.vals, v)
		return len(sb.keys) < count
	})
	w.ArrayHeader(2*len(sb.keys) + 1)
	for i := range sb.keys {
		w.BulkInt(sb.keys[i])
		w.BulkInt(sb.vals[i])
	}
	if consistent {
		w.BulkString("consistent")
	} else {
		w.BulkString("torn")
	}
	return false
}

// statsCmd answers STATS with one bulk string of "name value" lines:
// the store's ServeStats snapshot followed by the server counters.
func (s *Server) statsCmd(w *resp.Writer) {
	st := s.db.ServeStats()
	sv := s.Stats()
	var b []byte
	line := func(name string, v uint64) {
		b = append(b, name...)
		b = append(b, ' ')
		b = strconv.AppendUint(b, v, 10)
		b = append(b, '\n')
	}
	line("size", uint64(st.Size))
	line("shards", uint64(st.Shards))
	line("pending_windows", uint64(st.PendingWindows))
	line("footprint_bytes", uint64(st.FootprintBytes))
	line("inserts", st.Inserts)
	line("deletes", st.Deletes)
	line("lookups", st.Lookups)
	line("rebalances", st.Rebalances)
	line("deferred_windows", st.DeferredWindows)
	line("maintenance_runs", st.MaintenanceRuns)
	line("alloc_failures", st.AllocFailures)
	line("checkpoints", st.Checkpoints)
	line("checkpoint_failures", st.CheckpointFailures)
	line("lock_free_reads", st.LockFreeReads)
	line("read_retries", st.ReadRetries)
	line("read_fallbacks", st.ReadFallbacks)
	line("epoch_advances", st.EpochAdvances)
	line("snapshot_breaks", st.SnapshotBreaks)
	line("checkpoint_rounds", st.CheckpointRounds)
	line("checkpoint_lsn", st.CheckpointLSN)
	line("wal_records", st.WALRecords)
	line("wal_syncs", st.WALSyncs)
	line("wal_truncations", st.WALTruncations)
	line("auto_checkpoints", st.AutoCheckpoints)
	line("server_connections", sv.Connections)
	line("server_active_conns", sv.ActiveConns)
	line("server_commands", sv.Commands)
	line("server_errors", sv.Errors)
	line("server_read_batches", sv.ReadBatches)
	line("server_read_batched", sv.ReadBatched)
	line("server_write_batches", sv.WriteBatches)
	line("server_write_batched", sv.WriteBatched)
	w.BulkBytes(b)
}
