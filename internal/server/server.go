// Package server is rmaserve's engine: a RESP (Redis protocol) front
// end over rma.Sharded, the network layer of the serving stack.
//
// The design goal is that the hot path of a busy connection runs on the
// store's batched surfaces, not its point surfaces. Clients that
// pipeline see their commands coalesced per connection: consecutive
// point reads (GET, EXISTS, MGET) gather into one Sharded.GetBatch —
// one lock and one engine-level batch probe per touched shard — and
// consecutive upserts (SET, MSET) gather into one Sharded.ApplyBatch.
// Replies are emitted strictly in command order; a command of the other
// class (or a non-coalescible command such as SCAN) flushes the pending
// run first, so per-connection sequential consistency is preserved: a
// GET pipelined after a SET on the same connection always observes it.
//
// Command surface, batching semantics and per-command consistency
// guarantees are documented in SERVING.md at the repo root.
package server

import (
	"net"
	"sync"
	"sync/atomic"

	"rma"
	"rma/internal/resp"
)

// Config tunes a Server. The zero value is usable.
type Config struct {
	// MaxPipeline caps how many pipelined commands coalesce into one
	// batch before the run is force-flushed (default 256). Bounds both
	// reply latency under an endless pipeline and the batch scratch.
	MaxPipeline int
	// MaxScanCount caps a SCAN command's COUNT argument (default 4096);
	// the default COUNT when the client omits it is 128.
	MaxScanCount int
}

func (c *Config) fill() {
	if c.MaxPipeline <= 0 {
		c.MaxPipeline = 256
	}
	if c.MaxScanCount <= 0 {
		c.MaxScanCount = 4096
	}
}

// Stats counts server-level traffic (the store's own counters live in
// rma.ServeStats).
type Stats struct {
	// Connections and ActiveConns count accepted and currently open
	// connections.
	Connections, ActiveConns uint64
	// Commands counts dispatched commands; Errors counts error replies
	// (protocol errors, bad arguments, unknown commands, engine errors).
	Commands, Errors uint64
	// ReadBatches/WriteBatches count coalesced flushes that hit
	// GetBatch/ApplyBatch; ReadBatched/WriteBatched count the commands
	// they carried (ratio = achieved coalescing factor).
	ReadBatches, ReadBatched   uint64
	WriteBatches, WriteBatched uint64
}

// Server serves the RESP protocol over one rma.Sharded store. Create
// with New, run with Serve or ListenAndServe, stop with Close. The
// server does not own the store: closing the server leaves the store
// open (callers checkpoint/close it themselves).
type Server struct {
	db  *rma.Sharded
	cfg Config

	connsMu sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup

	shutdownOnce sync.Once
	shutdownCh   chan struct{}

	connections  atomic.Uint64
	activeConns  atomic.Int64
	commands     atomic.Uint64
	errorReplies atomic.Uint64
	readBatches  atomic.Uint64
	readBatched  atomic.Uint64
	writeBatches atomic.Uint64
	writeBatched atomic.Uint64
}

// New builds a server over db.
func New(db *rma.Sharded, cfg Config) *Server {
	cfg.fill()
	return &Server{
		db:         db,
		cfg:        cfg,
		conns:      make(map[net.Conn]struct{}),
		shutdownCh: make(chan struct{}),
	}
}

// Stats returns the server-level counters.
func (s *Server) Stats() Stats {
	return Stats{
		Connections: s.connections.Load(),
		ActiveConns: uint64(max(s.activeConns.Load(), 0)),
		Commands:    s.commands.Load(),
		Errors:      s.errorReplies.Load(),
		ReadBatches: s.readBatches.Load(), ReadBatched: s.readBatched.Load(),
		WriteBatches: s.writeBatches.Load(), WriteBatched: s.writeBatched.Load(),
	}
}

// Shutdown returns a channel closed when a client issues SHUTDOWN; the
// process owner listens and tears the server down (Close cannot run on
// the handler's own goroutine).
func (s *Server) Shutdown() <-chan struct{} { return s.shutdownCh }

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close, running one handler
// goroutine per connection. It returns nil after Close; any other
// accept error is returned as-is.
func (s *Server) Serve(ln net.Listener) error {
	s.connsMu.Lock()
	if s.closed {
		s.connsMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.connsMu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.connsMu.Lock()
			closed := s.closed
			s.connsMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.connsMu.Lock()
		if s.closed {
			s.connsMu.Unlock()
			c.Close()
			return nil
		}
		s.conns[c] = struct{}{}
		s.connsMu.Unlock()
		s.connections.Add(1)
		s.activeConns.Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// Close stops the server: the listener closes, every open connection is
// closed, and Close blocks until all handlers have returned. Idempotent.
// The store is left open and serving (in-process callers keep using it).
func (s *Server) Close() error {
	s.connsMu.Lock()
	if s.closed {
		s.connsMu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.connsMu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// ServeConn runs the RESP session on an already-established connection
// (net.Pipe ends, in-process harnesses) and returns when it closes.
func (s *Server) ServeConn(c net.Conn) {
	s.connsMu.Lock()
	if s.closed {
		s.connsMu.Unlock()
		c.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.connsMu.Unlock()
	s.connections.Add(1)
	s.activeConns.Add(1)
	s.wg.Add(1)
	s.handle(c)
}

// fillNotify wraps a connection so the session learns exactly when the
// parser is about to block on the network: bufio only calls the
// underlying Read once its buffer is exhausted, so onFill fires at
// every would-block point — including mid-command, when a pipelined
// burst ends in a torn command.
type fillNotify struct {
	c      net.Conn
	onFill func()
}

func (f *fillNotify) Read(p []byte) (int, error) {
	f.onFill()
	return f.c.Read(p)
}

// handle runs one connection's session loop.
func (s *Server) handle(c net.Conn) {
	defer func() {
		c.Close()
		s.connsMu.Lock()
		delete(s.conns, c)
		s.connsMu.Unlock()
		s.activeConns.Add(-1)
		s.wg.Done()
	}()

	w := resp.NewWriter(c)
	var p pipeline
	// Invariant: p is empty and replies are flushed whenever the session
	// blocks on the network. The fill hook enforces it at the only place
	// blocking can happen — the parser refilling its buffer — so a
	// pipelined run coalesces for exactly as long as complete commands
	// keep arriving, and acknowledged work is never stranded behind a
	// torn command.
	r := resp.NewReader(&fillNotify{c: c, onFill: func() {
		s.flushPending(&p, w)
		w.Flush()
	}})
	for {
		cmd, err := r.ReadCommand()
		if err != nil {
			if resp.IsProtocol(err) {
				// Complete commands before the framing error still get
				// their replies — a pipelined client matches replies to
				// commands by position. Then answer once and close: the
				// stream cannot be trusted past the error.
				s.flushPending(&p, w)
				s.errorReplies.Add(1)
				w.Error("ERR protocol error: " + err.Error())
				w.Flush()
			}
			return
		}
		s.commands.Add(1)
		quit := s.dispatch(&p, w, cmd)
		if quit {
			s.flushPending(&p, w)
			w.Flush()
			return
		}
		// The fill hook flushes at block points; this bound only caps
		// how much batch scratch an endless buffered pipeline can pin.
		if p.count() >= s.cfg.MaxPipeline {
			s.flushPending(&p, w)
		}
	}
}
