package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"rma"
	"rma/internal/resp"
	"rma/internal/workload"
)

// newTestServer returns a server over a fresh store plus a dialer into
// it (loopback listener). Cleanup closes server then store.
func newTestServer(t *testing.T, cfg Config, opts ...rma.Option) (*Server, func() net.Conn) {
	t.Helper()
	db, err := rma.NewSharded(4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s := New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		db.Close()
	})
	addr := ln.Addr().String()
	return s, func() net.Conn {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
}

// roundTrip writes raw RESP bytes and returns everything the server
// replies until it would block (the connection stays open).
func roundTrip(t *testing.T, c net.Conn, in string, wantLen int) string {
	t.Helper()
	if _, err := io.WriteString(c, in); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<16)
	var out []byte
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	for len(out) < wantLen {
		n, err := c.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(out)
}

// cmdLine encodes one RESP array command from string args.
func cmdLine(args ...string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(&b, "$%d\r\n%s\r\n", len(a), a)
	}
	return b.String()
}

// TestServeSmoke drives the full command surface over one connection
// with a canned script and asserts the exact reply bytes, including a
// pipelined burst whose replies must come back in command order.
func TestServeSmoke(t *testing.T) {
	_, dial := newTestServer(t, Config{})
	c := dial()
	defer c.Close()

	steps := []struct{ in, want string }{
		{cmdLine("PING"), "+PONG\r\n"},
		{cmdLine("ECHO", "42"), "$2\r\n42\r\n"},
		{cmdLine("GET", "7"), "$-1\r\n"},
		{cmdLine("SET", "7", "700"), "+OK\r\n"},
		{cmdLine("GET", "7"), "$3\r\n700\r\n"},
		{cmdLine("SET", "7", "701"), "+OK\r\n"}, // upsert, not a duplicate
		{cmdLine("GET", "7"), "$3\r\n701\r\n"},
		{cmdLine("LEN"), ":1\r\n"},
		{cmdLine("MSET", "1", "10", "2", "20", "3", "30"), "+OK\r\n"},
		{cmdLine("MGET", "1", "2", "9"), "*3\r\n$2\r\n10\r\n$2\r\n20\r\n$-1\r\n"},
		{cmdLine("EXISTS", "1", "2", "9"), ":2\r\n"},
		{cmdLine("COUNT", "1", "3"), ":3\r\n"},
		{cmdLine("SCAN", "1", "7"), "*9\r\n$1\r\n1\r\n$2\r\n10\r\n$1\r\n2\r\n$2\r\n20\r\n$1\r\n3\r\n$2\r\n30\r\n$1\r\n7\r\n$3\r\n701\r\n$10\r\nconsistent\r\n"},
		{cmdLine("SCAN", "1", "7", "COUNT", "2"), "*5\r\n$1\r\n1\r\n$2\r\n10\r\n$1\r\n2\r\n$2\r\n20\r\n$10\r\nconsistent\r\n"},
		{cmdLine("DEL", "1", "9"), ":1\r\n"},
		{cmdLine("EXISTS", "1"), ":0\r\n"},
		{cmdLine("FLUSH"), "+OK\r\n"},
		// Inline commands parse too.
		{"GET 2\r\n", "$2\r\n20\r\n"},
		// Errors: arity, non-integer, unknown command.
		{cmdLine("GET"), "-ERR wrong number of arguments for 'GET'\r\n"},
		{cmdLine("SET", "x", "1"), "-ERR value is not an integer or out of range\r\n"},
		{cmdLine("NOPE", "1"), "-ERR unknown command 'NOPE'\r\n"},
	}
	for i, st := range steps {
		if got := roundTrip(t, c, st.in, len(st.want)); got != st.want {
			t.Fatalf("step %d: sent %q\n got %q\nwant %q", i, st.in, got, st.want)
		}
	}

	// Pipelined burst: mixed classes in one write; replies must be in
	// order (SET before the GET that reads it, MGET coalesced).
	in := cmdLine("SET", "100", "1") + cmdLine("SET", "101", "2") +
		cmdLine("MGET", "100", "101") + cmdLine("DEL", "100") +
		cmdLine("MGET", "100", "101") + cmdLine("PING")
	want := "+OK\r\n+OK\r\n*2\r\n$1\r\n1\r\n$1\r\n2\r\n:1\r\n*2\r\n$-1\r\n$1\r\n2\r\n+PONG\r\n"
	if got := roundTrip(t, c, in, len(want)); got != want {
		t.Fatalf("pipelined burst:\n got %q\nwant %q", got, want)
	}

	// STATS answers a bulk with the counters.
	if _, err := io.WriteString(c, cmdLine("STATS")); err != nil {
		t.Fatal(err)
	}
	r := resp.NewReader(c)
	rep, err := r.ReadReply()
	if err != nil || rep.Kind != resp.BulkString {
		t.Fatalf("STATS reply: %v kind=%d", err, rep.Kind)
	}
	if !bytes.Contains(rep.Bulk, []byte("size ")) || !bytes.Contains(rep.Bulk, []byte("server_commands ")) {
		t.Fatalf("STATS missing counters: %q", rep.Bulk)
	}

	// QUIT answers then closes.
	if got := roundTrip(t, c, cmdLine("QUIT"), len("+OK\r\n")); got != "+OK\r\n" {
		t.Fatalf("QUIT: %q", got)
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

// TestServeProtocolErrorCloses verifies a framing error gets one -ERR
// reply and a hangup (the stream is untrusted past it).
func TestServeProtocolErrorCloses(t *testing.T) {
	_, dial := newTestServer(t, Config{})
	c := dial()
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.WriteString(c, "*abc\r\n"); err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(c)
	if !bytes.HasPrefix(out, []byte("-ERR protocol error")) {
		t.Fatalf("want protocol error reply then close, got %q", out)
	}
}

// TestServeProtocolErrorFlushesPending sends a valid pipelined burst
// whose last command is malformed, all in one write so no buffer
// refill flushes in between. Every complete command must still get its
// reply, in order, before the one protocol-error reply — a pipelined
// client matches replies to commands by position.
func TestServeProtocolErrorFlushesPending(t *testing.T) {
	_, dial := newTestServer(t, Config{})
	c := dial()
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	burst := cmdLine("SET", "1", "11") +
		cmdLine("SET", "2", "22") +
		cmdLine("MGET", "1", "2") +
		"*abc\r\n"
	if _, err := io.WriteString(c, burst); err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(c)
	want := "+OK\r\n+OK\r\n*2\r\n$2\r\n11\r\n$2\r\n22\r\n"
	if !bytes.HasPrefix(out, []byte(want)) {
		t.Fatalf("want pipelined replies before the error, got %q", out)
	}
	rest := out[len(want):]
	if !bytes.HasPrefix(rest, []byte("-ERR protocol error")) {
		t.Fatalf("want protocol error after pending replies, got %q", rest)
	}
}

// TestServeInflightKillReconnect kills a connection mid-pipeline (bytes
// of a half-written command in the server's buffer, earlier commands
// unflushed) and verifies the server survives: a new connection works
// and sees every complete upsert that preceded the cut.
func TestServeInflightKillReconnect(t *testing.T) {
	s, dial := newTestServer(t, Config{})
	c := dial()
	// Two complete SETs, then a torn command, then hang up without
	// ever reading replies.
	io.WriteString(c, cmdLine("SET", "1", "11")+cmdLine("SET", "2", "22")+"*2\r\n$3\r\nGET\r\n$1")
	time.Sleep(20 * time.Millisecond) // let the server ingest the bytes
	c.Close()

	c2 := dial()
	defer c2.Close()
	want := "*2\r\n$2\r\n11\r\n$2\r\n22\r\n"
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := roundTrip(t, c2, cmdLine("MGET", "1", "2"), len(want)); got == want {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("after reconnect: got %q, want %q", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := s.Stats(); st.Connections < 2 {
		t.Fatalf("Connections = %d, want >= 2", st.Connections)
	}
}

// TestServeShutdownCommand verifies SHUTDOWN answers +OK, closes the
// session, and signals the Shutdown channel the process owner drains.
func TestServeShutdownCommand(t *testing.T) {
	s, dial := newTestServer(t, Config{})
	c := dial()
	defer c.Close()
	if got := roundTrip(t, c, cmdLine("SHUTDOWN"), len("+OK\r\n")); got != "+OK\r\n" {
		t.Fatalf("SHUTDOWN: %q", got)
	}
	select {
	case <-s.Shutdown():
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown channel not signalled")
	}
}

// TestServeCloseDrainsConnections verifies Close kicks live sessions
// and returns, and that the store remains usable afterwards (the
// server does not own it).
func TestServeCloseDrainsConnections(t *testing.T) {
	db, err := rma.NewSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	var conns []net.Conn
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		io.WriteString(c, cmdLine("SET", fmt.Sprint(i), "1"))
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve after Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	for _, c := range conns {
		c.Close()
	}
	if s.Close() != nil { // idempotent
		t.Fatal("second Close errored")
	}
	if err := db.Validate(); err != nil {
		t.Fatalf("store invalid after server close: %v", err)
	}
}

// TestServeConnPipe runs a session over net.Pipe — the in-process,
// no-sockets harness CI determinism leans on.
func TestServeConnPipe(t *testing.T) {
	db, err := rma.NewSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := New(db, Config{})
	defer s.Close()
	cli, srv := net.Pipe()
	done := make(chan struct{})
	go func() { s.ServeConn(srv); close(done) }()

	w := resp.NewWriter(cli)
	r := resp.NewReader(cli)
	w.Command("SET", 5, 50)
	w.Command("GET", 5)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	rep, err := r.ReadReply()
	if err != nil || rep.Kind != resp.SimpleString {
		t.Fatalf("SET over pipe: %v %+v", err, rep)
	}
	rep, err = r.ReadReply()
	if err != nil || rep.Kind != resp.BulkString || string(rep.Bulk) != "50" {
		t.Fatalf("GET over pipe: %v %+v", err, rep)
	}
	cli.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ServeConn did not return after peer close")
	}
}

// refStore is the differential test's reference: a plain map guarded by
// a mutex (named refMu: the lockcheck contract applies to engine
// structs, not test scaffolding).
type refStore struct {
	refMu sync.Mutex
	m     map[int64]int64
}

// diffClient drives one connection with a random op mix, checking every
// reply against the reference. With checkValues=false (concurrent
// torture, interleavings unknowable) replies are only drained and
// checked for protocol health, not content.
func diffClient(t *testing.T, c net.Conn, ref *refStore, seed uint64, ops int, keyRange int64, checkValues bool) {
	t.Helper()
	rng := workload.NewRNG(seed)
	w := resp.NewWriter(c)
	r := resp.NewReader(c)

	expect := func(want resp.Reply, wantBulk string) {
		t.Helper()
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		rep, err := r.ReadReply()
		if err != nil {
			t.Fatalf("reply: %v", err)
		}
		if !checkValues {
			if rep.Kind == resp.Array {
				for i := 0; i < rep.N; i++ {
					if _, err := r.ReadReply(); err != nil {
						t.Fatalf("array element: %v", err)
					}
				}
			}
			if rep.Kind == resp.ErrorString {
				t.Fatalf("error reply: %s", rep.Bulk)
			}
			return
		}
		if rep.Kind != want.Kind {
			t.Fatalf("reply kind %d, want %d (bulk %q)", rep.Kind, want.Kind, rep.Bulk)
		}
		switch want.Kind {
		case resp.Integer:
			if rep.Int != want.Int {
				t.Fatalf("reply %d, want %d", rep.Int, want.Int)
			}
		case resp.BulkString:
			if string(rep.Bulk) != wantBulk {
				t.Fatalf("reply %q, want %q", rep.Bulk, wantBulk)
			}
		}
	}

	for i := 0; i < ops; i++ {
		k := int64(rng.Uint64n(uint64(keyRange)))
		switch rng.Uint64n(10) {
		case 0, 1, 2: // SET
			v := int64(rng.Uint64n(1 << 30))
			w.Command("SET", k, v)
			ref.refMu.Lock()
			ref.m[k] = v
			ref.refMu.Unlock()
			expect(resp.Reply{Kind: resp.SimpleString}, "")
		case 3: // DEL
			w.Command("DEL", k)
			ref.refMu.Lock()
			_, had := ref.m[k]
			delete(ref.m, k)
			ref.refMu.Unlock()
			want := int64(0)
			if had {
				want = 1
			}
			expect(resp.Reply{Kind: resp.Integer, Int: want}, "")
		case 4, 5, 6, 7: // GET
			w.Command("GET", k)
			ref.refMu.Lock()
			v, ok := ref.m[k]
			ref.refMu.Unlock()
			if ok {
				expect(resp.Reply{Kind: resp.BulkString}, fmt.Sprint(v))
			} else {
				expect(resp.Reply{Kind: resp.NullBulk}, "")
			}
		case 8: // EXISTS
			w.Command("EXISTS", k)
			ref.refMu.Lock()
			_, ok := ref.m[k]
			ref.refMu.Unlock()
			want := int64(0)
			if ok {
				want = 1
			}
			expect(resp.Reply{Kind: resp.Integer, Int: want}, "")
		default: // SCAN, verified against the reference's sorted view
			lo := k
			hi := k + 64
			w.Command("SCAN", lo, hi)
			if err := w.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			var got []int64
			rep, err := r.ReadReply()
			if err != nil || rep.Kind != resp.Array {
				t.Fatalf("SCAN reply: %v %+v", err, rep)
			}
			for j := 0; j < rep.N; j++ {
				el, err := r.ReadReply()
				if err != nil {
					t.Fatalf("SCAN element: %v", err)
				}
				if j < rep.N-1 { // last element is the verdict
					n, ok := resp.ParseInt(el.Bulk)
					if !ok {
						t.Fatalf("SCAN element %q not an int", el.Bulk)
					}
					got = append(got, n)
				}
			}
			if !checkValues {
				continue
			}
			ref.refMu.Lock()
			var want []int64
			for rk, rv := range ref.m {
				if rk >= lo && rk <= hi {
					want = append(want, rk, rv)
				}
			}
			ref.refMu.Unlock()
			sortPairsByKey(want)
			if len(got) != len(want) {
				t.Fatalf("SCAN [%d,%d]: %d elements, want %d", lo, hi, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("SCAN [%d,%d] element %d: %d, want %d", lo, hi, j, got[j], want[j])
				}
			}
		}
	}
}

// sortPairsByKey sorts a flat [k,v,k,v,...] slice by key.
func sortPairsByKey(kv []int64) {
	for i := 2; i < len(kv); i += 2 {
		for j := i; j > 0 && kv[j-2] > kv[j]; j -= 2 {
			kv[j-2], kv[j] = kv[j], kv[j-2]
			kv[j-1], kv[j+1] = kv[j+1], kv[j-1]
		}
	}
}

// TestServeDifferential drives a random op mix through a live
// connection and checks every reply against an in-process reference
// map — the end-to-end correctness pin for the whole stack (parser,
// coalescer, batched engine surfaces, reply encoder).
func TestServeDifferential(t *testing.T) {
	_, dial := newTestServer(t, Config{})
	c := dial()
	defer c.Close()
	ref := &refStore{m: make(map[int64]int64)}
	ops := 20000
	if testing.Short() {
		ops = 4000
	}
	diffClient(t, c, ref, 1234, ops, 512, true)
}

// TestServeDifferentialTorture runs concurrent clients against one
// server — each on a private key stripe it checks differentially, plus
// cross-stripe scanners — under the race detector in CI's -race lane.
func TestServeDifferentialTorture(t *testing.T) {
	_, dial := newTestServer(t, Config{}, rma.WithLockFreeReads(), rma.WithBackgroundRebalancing(2))
	const clients = 4
	ops := 4000
	if testing.Short() {
		ops = 800
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := dial()
			defer c.Close()
			// Private stripe => single-writer => exact differential
			// checking stays valid under concurrency.
			ref := &refStore{m: make(map[int64]int64)}
			stripe := int64(id) << 32
			rng := workload.NewRNG(uint64(id)*77 + 1)
			w := resp.NewWriter(c)
			r := resp.NewReader(c)
			for j := 0; j < ops; j++ {
				k := stripe + int64(rng.Uint64n(256))
				if rng.Uint64n(2) == 0 {
					v := int64(rng.Uint64n(1 << 20))
					w.Command("SET", k, v)
					ref.m[k] = v
					w.Flush()
					rep, err := r.ReadReply()
					if err != nil || rep.Kind != resp.SimpleString {
						t.Errorf("client %d SET: %v %+v", id, err, rep)
						return
					}
				} else {
					w.Command("GET", k)
					w.Flush()
					rep, err := r.ReadReply()
					if err != nil {
						t.Errorf("client %d GET: %v", id, err)
						return
					}
					if v, ok := ref.m[k]; ok {
						if rep.Kind != resp.BulkString || string(rep.Bulk) != fmt.Sprint(v) {
							t.Errorf("client %d GET %d: %+v want %d", id, k, rep, v)
							return
						}
					} else if rep.Kind != resp.NullBulk {
						t.Errorf("client %d GET %d: %+v want null", id, k, rep)
						return
					}
				}
			}
		}(i)
	}
	// One scanner racing the writers end-to-end: replies must stay
	// protocol-clean and scans key-ordered even when cuts are torn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := dial()
		defer c.Close()
		w := resp.NewWriter(c)
		r := resp.NewReader(c)
		for j := 0; j < ops/4; j++ {
			w.Command("SCAN", 0, int64(clients)<<32)
			w.Flush()
			rep, err := r.ReadReply()
			if err != nil || rep.Kind != resp.Array {
				t.Errorf("scanner: %v %+v", err, rep)
				return
			}
			prev := int64(-1 << 62)
			for e := 0; e < rep.N; e++ {
				el, err := r.ReadReply()
				if err != nil {
					t.Errorf("scanner element: %v", err)
					return
				}
				if e < rep.N-1 && e%2 == 0 {
					k, _ := resp.ParseInt(el.Bulk)
					if k < prev {
						t.Errorf("scan out of order: %d after %d", k, prev)
						return
					}
					prev = k
				}
			}
		}
	}()
	wg.Wait()
}

// TestServeCheckpointLastsave drives the operator recovery-point
// surface: CHECKPOINT on a non-durable store errors; on a durable
// store without a maintenance pool it publishes synchronously (+OK);
// with a pool it starts a background round. LASTSAVE reports the
// published round count and WAL LSN floor.
func TestServeCheckpointLastsave(t *testing.T) {
	// Non-durable: exact error, LASTSAVE all-zero.
	_, dial := newTestServer(t, Config{})
	c := dial()
	steps := []struct{ in, want string }{
		{cmdLine("CHECKPOINT"), "-ERR store is not durable\r\n"},
		{cmdLine("LASTSAVE"), "*2\r\n:0\r\n:0\r\n"},
		{cmdLine("CHECKPOINT", "now"), "-ERR wrong number of arguments for 'CHECKPOINT'\r\n"},
	}
	for i, st := range steps {
		if got := roundTrip(t, c, st.in, len(st.want)); got != st.want {
			t.Fatalf("step %d: sent %q\n got %q\nwant %q", i, st.in, got, st.want)
		}
	}
	c.Close()

	// Durable + WAL, no pool: CHECKPOINT publishes synchronously and
	// LASTSAVE advances past it.
	_, dial = newTestServer(t, Config{},
		rma.WithDurability(t.TempDir()), rma.WithWAL(rma.WALConfig{
			CheckpointInterval: -1, CheckpointWALBytes: -1,
		}))
	c = dial()
	in := cmdLine("MSET", "1", "10", "2", "20") + cmdLine("CHECKPOINT")
	want := "+OK\r\n+OK\r\n"
	if got := roundTrip(t, c, in, len(want)); got != want {
		t.Fatalf("sync checkpoint: got %q want %q", got, want)
	}
	if _, err := io.WriteString(c, cmdLine("LASTSAVE")); err != nil {
		t.Fatal(err)
	}
	r := resp.NewReader(c)
	rep, err := r.ReadReply()
	if err != nil || rep.Kind != resp.Array || rep.N != 2 {
		t.Fatalf("LASTSAVE reply: %v %+v", err, rep)
	}
	roundsRep, err1 := r.ReadReply()
	lsnRep, err2 := r.ReadReply()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if roundsRep.Int != 1 {
		t.Fatalf("LASTSAVE rounds = %d, want 1", roundsRep.Int)
	}
	if lsnRep.Int <= 0 {
		t.Fatalf("LASTSAVE lsn = %d, want > 0 after logged writes", lsnRep.Int)
	}
	c.Close()

	// Durable + pool: CHECKPOINT goes async.
	_, dial = newTestServer(t, Config{},
		rma.WithDurability(t.TempDir()), rma.WithBackgroundRebalancing(1),
		rma.WithWAL(rma.WALConfig{CheckpointInterval: -1, CheckpointWALBytes: -1}))
	c = dial()
	defer c.Close()
	in = cmdLine("SET", "5", "50") + cmdLine("CHECKPOINT")
	want = "+OK\r\n+Background checkpoint started\r\n"
	if got := roundTrip(t, c, in, len(want)); got != want {
		t.Fatalf("async checkpoint: got %q want %q", got, want)
	}
}
