package workload

import "sort"

// Generator produces a stream of 8-byte keys according to some
// distribution. All implementations in this package are deterministic for
// a given seed.
type Generator interface {
	Next() int64
}

// Uniform draws keys uniformly from [0, Range) (or the full non-negative
// int64 space when Range == 0), mirroring the paper's uniform insertion
// pattern of 8-byte integer keys.
type Uniform struct {
	rng *RNG
	n   uint64
}

// NewUniform returns a uniform key generator. n == 0 means the full
// non-negative 63-bit key space.
func NewUniform(seed uint64, n uint64) *Uniform {
	return &Uniform{rng: NewRNG(seed), n: n}
}

// Next returns the next uniform key.
func (u *Uniform) Next() int64 {
	if u.n == 0 {
		return u.rng.Int63()
	}
	return int64(u.rng.Uint64n(u.n))
}

// Sequential produces strictly increasing keys: the paper's "sequential"
// insertion pattern, which appends at the logical end of the array and is
// the canonical hammering workload.
type Sequential struct {
	next int64
	step int64
}

// NewSequential returns a sequential generator starting at start with the
// given step (step must be > 0).
func NewSequential(start, step int64) *Sequential {
	if step <= 0 {
		panic("workload: Sequential requires step > 0")
	}
	return &Sequential{next: start, step: step}
}

// Next returns the next key in the ascending sequence.
func (s *Sequential) Next() int64 {
	k := s.next
	s.next += s.step
	return k
}

// ZipfRange is the paper's Zipfian key range beta = 2^27 (Section V).
const ZipfRange = 1 << 27

// Pattern names a key distribution used by the experiments.
type Pattern int

// The insertion patterns exercised by Figures 1, 11 and 14.
const (
	PatternUniform Pattern = iota
	PatternZipf1           // Zipf alpha = 1.0
	PatternZipf15          // Zipf alpha = 1.5
	PatternSequential
)

// String returns the human-readable pattern name used in figure output.
func (p Pattern) String() string {
	switch p {
	case PatternUniform:
		return "uniform"
	case PatternZipf1:
		return "zipf-1.0"
	case PatternZipf15:
		return "zipf-1.5"
	case PatternSequential:
		return "sequential"
	default:
		return "unknown"
	}
}

// NewPattern instantiates the named pattern with the given seed.
func NewPattern(p Pattern, seed uint64) Generator {
	switch p {
	case PatternUniform:
		return NewUniform(seed, 0)
	case PatternZipf1:
		return NewZipf(seed, 1.0, ZipfRange, true)
	case PatternZipf15:
		return NewZipf(seed, 1.5, ZipfRange, true)
	case PatternSequential:
		return NewSequential(0, 1)
	default:
		panic("workload: unknown pattern")
	}
}

// Keys draws n keys from g.
func Keys(g Generator, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Pair is a key/value element, the 16-byte tuple of the evaluation.
type Pair struct {
	Key, Val int64
}

// Pairs draws n key/value pairs from g; the value is a cheap mix of the
// key so correctness checks can recompute it.
func Pairs(g Generator, n int) []Pair {
	out := make([]Pair, n)
	for i := range out {
		k := g.Next()
		out[i] = Pair{Key: k, Val: ValueFor(k)}
	}
	return out
}

// ValueFor derives the payload value carried alongside key k. Tests use it
// to verify that scans return the value that was inserted with each key.
func ValueFor(k int64) int64 { return k ^ 0x5bd1e995 }

// SortPairs sorts pairs by key (stable order for equal keys), as bulk
// loading requires sorted batches.
func SortPairs(ps []Pair) {
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Key < ps[j].Key })
}
