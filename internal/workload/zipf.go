package workload

import "math"

// Zipf draws ranks from a Zipf distribution with exponent alpha over
// {1, ..., n} using rejection-inversion sampling (Hörmann & Derflinger,
// "Rejection-inversion to generate variates from monotone discrete
// distributions", 1996). Unlike math/rand's Zipf, it supports any
// alpha > 0, including the alpha <= 1 range the paper sweeps (Fig 11,
// Fig 13b evaluate alpha in {0.5, 1.0, ..., 3.0}).
//
// Ranks are mapped to keys through a seed-dependent bijective scramble of
// [0, n), so that two Zipf generators with different seeds hammer
// *different* keys — exactly how the paper's mixed workload uses
// "different seeds for insertions and deletions" (Section V).
type Zipf struct {
	rng   *RNG
	n     uint64
	alpha float64

	// Precomputed constants of the rejection-inversion sampler.
	hIntegralX1  float64
	hIntegralNum float64
	s            float64

	// Rank -> key scramble: key = (rank-1)*mult + add (mod n), with mult
	// odd so the map is bijective when n is a power of two; for general n
	// a Feistel-style mix over the next power of two with cycle walking.
	mask     uint64 // next power of two - 1
	mult     uint64
	add      uint64
	scramble bool
}

// NewZipf returns a Zipf key generator over [0, n) with exponent alpha > 0.
// If scramble is false, rank r maps to key r-1 directly (rank 1 is the most
// frequent and keys cluster by rank, maximizing spatial hammering).
func NewZipf(seed uint64, alpha float64, n uint64, scramble bool) *Zipf {
	if n == 0 {
		panic("workload: Zipf with n == 0")
	}
	if alpha <= 0 {
		panic("workload: Zipf requires alpha > 0")
	}
	z := &Zipf{rng: NewRNG(seed), n: n, alpha: alpha, scramble: scramble}
	z.hIntegralX1 = z.hIntegral(1.5) - 1.0
	z.hIntegralNum = z.hIntegral(float64(n) + 0.5)
	z.s = 2.0 - z.hIntegralInverse(z.hIntegral(2.5)-z.h(2.0))

	pow2 := uint64(1)
	for pow2 < n {
		pow2 <<= 1
	}
	z.mask = pow2 - 1
	z.mult = NewRNG(seed^0xa5a5a5a5).Uint64() | 1 // odd
	z.add = NewRNG(seed ^ 0x5a5a5a5a).Uint64()
	return z
}

// NextRank draws the next rank in [1, n].
func (z *Zipf) NextRank() uint64 {
	for {
		u := z.hIntegralNum + z.rng.Float64()*(z.hIntegralX1-z.hIntegralNum)
		x := z.hIntegralInverse(u)
		k := math.Round(x)
		if k < 1 {
			k = 1
		} else if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.s || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k)
		}
	}
}

// Next draws the next key in [0, n).
func (z *Zipf) Next() int64 {
	rank := z.NextRank() - 1
	if !z.scramble {
		return int64(rank)
	}
	// Cycle-walk the scramble over the next power of two until the image
	// lands inside [0, n). Expected < 2 iterations.
	v := rank
	for {
		v = (v*z.mult + z.add) & z.mask
		if v < z.n {
			return int64(v)
		}
	}
}

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1.0-z.alpha)*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.alpha * math.Log(x))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * (1.0 - z.alpha)
	if t < -1.0 {
		t = -1.0 // numerical guard, as in the reference implementation
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x, continuous at 0.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1.0 - x*(0.5-x*(1.0/3.0-0.25*x))
}

// helper2 computes expm1(x)/x, continuous at 0.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1.0 + x*0.5*(1.0+x*(1.0/3.0)*(1.0+0.25*x))
}
