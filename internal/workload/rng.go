// Package workload provides deterministic random-number generation and the
// key distributions used throughout the paper's evaluation: uniform 64-bit
// keys, Zipfian keys with arbitrary skew factor alpha over a bounded range,
// and the sequential (append-only) pattern. All generators are seeded and
// reproducible, so experiments and tests are deterministic.
package workload

// RNG is a xoshiro256** pseudo-random generator. It is deterministic for a
// given seed, far faster than crypto-grade sources, and of far higher
// quality than a bare linear-congruential generator, which matters for the
// skew experiments where billions of draws are taken.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 returns a uniformly distributed non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint64n returns a uniform value in [0, n). n must be > 0.
// It uses Lemire's multiply-shift reduction with rejection to stay unbiased.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("workload: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Perm fills out with a uniformly random permutation of [0, len(out)).
func (r *RNG) Perm(out []int) {
	for i := range out {
		out[i] = i
	}
	for i := len(out) - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		out[i], out[j] = out[j], out[i]
	}
}
