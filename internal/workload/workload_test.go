package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws out of 1000", same)
	}
}

func TestRNGUint64nBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []uint64{1, 2, 3, 7, 64, 1000, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGUint64nUniformity(t *testing.T) {
	r := NewRNG(99)
	const n, draws = 10, 100000
	var buckets [n]int
	for i := 0; i < draws; i++ {
		buckets[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range buckets {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	out := make([]int, 257)
	r.Perm(out)
	seen := make([]bool, len(out))
	for _, v := range out {
		if v < 0 || v >= len(out) || seen[v] {
			t.Fatalf("not a permutation: value %d", v)
		}
		seen[v] = true
	}
}

func TestZipfRankBounds(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		z := NewZipf(1, alpha, 1000, false)
		for i := 0; i < 5000; i++ {
			r := z.NextRank()
			if r < 1 || r > 1000 {
				t.Fatalf("alpha=%v: rank %d out of [1,1000]", alpha, r)
			}
		}
	}
}

// TestZipfFrequencies checks the empirical frequency of the top ranks
// against the analytic Zipf pmf, for skews both below and above 1 — the
// regime math/rand cannot generate and the reason we implement
// rejection-inversion ourselves.
func TestZipfFrequencies(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.0, 2.0} {
		const n = 1 << 16
		const draws = 200000
		z := NewZipf(12345, alpha, n, false)
		counts := map[uint64]int{}
		for i := 0; i < draws; i++ {
			counts[z.NextRank()]++
		}
		// Normalizing constant (generalized harmonic number).
		hn := 0.0
		for i := 1; i <= n; i++ {
			hn += 1 / math.Pow(float64(i), alpha)
		}
		for _, rank := range []uint64{1, 2, 4, 8} {
			want := float64(draws) / math.Pow(float64(rank), alpha) / hn
			if want < 100 {
				continue // too rare for a tight bound
			}
			got := float64(counts[rank])
			if math.Abs(got-want) > 0.15*want+3*math.Sqrt(want) {
				t.Errorf("alpha=%v rank=%d: got %v draws, want ~%v", alpha, rank, got, want)
			}
		}
	}
}

func TestZipfScrambleBijective(t *testing.T) {
	// The scramble must be a bijection on [0, n) so that the key
	// distribution is an exact relabeling of the rank distribution.
	const n = 1000 // deliberately not a power of two
	z := NewZipf(77, 1.0, n, true)
	seen := make([]bool, n)
	for rank := uint64(0); rank < n; rank++ {
		v := rank
		for {
			v = (v*z.mult + z.add) & z.mask
			if v < z.n {
				break
			}
		}
		if seen[v] {
			t.Fatalf("scramble collision at image %d", v)
		}
		seen[v] = true
	}
}

func TestZipfDifferentSeedsHammerDifferentKeys(t *testing.T) {
	a := NewZipf(1, 2.0, ZipfRange, true)
	b := NewZipf(2, 2.0, ZipfRange, true)
	// The most frequent key differs across seeds (this is what makes the
	// paper's mixed workload hammer different array portions).
	counts := func(z *Zipf) (top int64) {
		m := map[int64]int{}
		for i := 0; i < 5000; i++ {
			m[z.Next()]++
		}
		best := -1
		for k, c := range m {
			if c > best {
				best, top = c, k
			}
		}
		return top
	}
	if ka, kb := counts(a), counts(b); ka == kb {
		t.Fatalf("top keys identical across seeds: %d", ka)
	}
}

func TestSequential(t *testing.T) {
	s := NewSequential(10, 3)
	for i := 0; i < 100; i++ {
		if got, want := s.Next(), int64(10+3*i); got != want {
			t.Fatalf("step %d: got %d want %d", i, got, want)
		}
	}
}

func TestUniformBounded(t *testing.T) {
	u := NewUniform(9, 1000)
	for i := 0; i < 10000; i++ {
		if k := u.Next(); k < 0 || k >= 1000 {
			t.Fatalf("bounded uniform out of range: %d", k)
		}
	}
	f := NewUniform(9, 0)
	for i := 0; i < 1000; i++ {
		if k := f.Next(); k < 0 {
			t.Fatalf("full-range uniform returned negative key %d", k)
		}
	}
}

func TestPatternsAreDeterministic(t *testing.T) {
	for p := PatternUniform; p <= PatternSequential; p++ {
		a := Keys(NewPattern(p, 5), 100)
		b := Keys(NewPattern(p, 5), 100)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("pattern %v not deterministic at %d", p, i)
			}
		}
	}
}

func TestPairsCarryDerivableValues(t *testing.T) {
	ps := Pairs(NewUniform(4, 0), 100)
	for _, p := range ps {
		if p.Val != ValueFor(p.Key) {
			t.Fatalf("value mismatch for key %d", p.Key)
		}
	}
}

func TestSortPairs(t *testing.T) {
	ps := Pairs(NewUniform(8, 1000), 500)
	SortPairs(ps)
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Key > ps[i].Key {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 4-limb schoolbook multiplication in uint32 chunks.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		p00 := a0 * b0
		p01 := a0 * b1
		p10 := a1 * b0
		p11 := a1 * b1
		carry := (p00>>32 + p01&0xffffffff + p10&0xffffffff) >> 32
		wantHi := p11 + p01>>32 + p10>>32 + carry
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
