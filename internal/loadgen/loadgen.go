// Package loadgen is a YCSB-style closed-loop load generator for
// rmaserve: a pool of clients, each with its own RESP connection and
// deterministic key-distribution state, driving one of the standard
// mixes A–E and recording per-op-class latency histograms. It speaks
// the wire protocol through internal/resp — the same reader/writer the
// server uses — so a loadgen run is also an end-to-end protocol test.
//
// The pool is closed-loop: every client keeps exactly one command in
// flight, so measured latency is honest (no coordinated omission from
// a load schedule the server can't keep up with) and offered load
// adapts to what the server sustains. Throughput comparisons therefore
// hold client count fixed.
package loadgen

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rma/internal/resp"
	"rma/internal/workload"
)

// Op classes measured separately (YCSB terminology).
const (
	ClassRead   = "read"
	ClassUpdate = "update"
	ClassInsert = "insert"
	ClassScan   = "scan"
)

// Classes lists the op classes in reporting order.
var Classes = []string{ClassRead, ClassUpdate, ClassInsert, ClassScan}

// Mix is a YCSB-style workload: op-class percentages (summing to 100)
// plus the key distribution the point ops draw from.
type Mix struct {
	Name string
	// ReadPct/UpdatePct/InsertPct/ScanPct select the op class per
	// operation (percent, must sum to 100).
	ReadPct, UpdatePct, InsertPct, ScanPct int
	// Dist is "zipf" (scrambled, alpha 1.0), "uniform", or "latest"
	// (zipf-skewed offsets back from the most recent insert).
	Dist string
	// ScanCount is the per-scan element cap (SCAN ... COUNT n).
	ScanCount int
}

// Mixes returns the standard YCSB-style mix suite:
//
//	A 50/50 read/update zipf     C 100 read zipf
//	B 95/5  read/update zipf     D 95/5 read/insert latest
//	E 95/5  scan/insert zipf (short ranges)
func Mixes() []Mix {
	return []Mix{
		{Name: "A", ReadPct: 50, UpdatePct: 50, Dist: "zipf"},
		{Name: "B", ReadPct: 95, UpdatePct: 5, Dist: "zipf"},
		{Name: "C", ReadPct: 100, Dist: "zipf"},
		{Name: "D", ReadPct: 95, InsertPct: 5, Dist: "latest"},
		{Name: "E", ScanPct: 95, InsertPct: 5, Dist: "zipf", ScanCount: 16},
	}
}

// MixByName returns the named mix.
func MixByName(name string) (Mix, bool) {
	for _, m := range Mixes() {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// Options configures a Run.
type Options struct {
	// Dial opens one connection per client (plus one for preloading).
	Dial func() (net.Conn, error)
	// Clients is the closed-loop pool size (default 4).
	Clients int
	// Duration bounds the measured phase (default 1s).
	Duration time.Duration
	// Seed derives every client's deterministic generator state.
	Seed uint64
	// Keys is the preloaded key range [0, Keys): point ops draw from
	// it, inserts extend it upward (default 1<<16).
	Keys int
	// SkipPreload reuses an already-loaded store (soak reruns).
	SkipPreload bool
}

func (o *Options) fill() {
	if o.Clients <= 0 {
		o.Clients = 4
	}
	if o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.Keys <= 0 {
		o.Keys = 1 << 16
	}
}

// ClassResult aggregates one op class across the pool.
type ClassResult struct {
	Ops, Errors    uint64
	Mean           time.Duration
	P50, P99, P999 time.Duration
}

// Result is one mix run's aggregate.
type Result struct {
	Mix      string
	Clients  int
	Elapsed  time.Duration
	Ops      uint64
	Errors   uint64
	PerClass map[string]ClassResult
}

// OpsPerSec returns the pool's aggregate throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// clientStats is one client's private tally, merged after the run.
type clientStats struct {
	hists  [4]Hist // indexed by class
	sumNs  [4]int64
	errors [4]uint64
}

// Run preloads the store (unless SkipPreload), then drives mix with a
// closed-loop client pool for opts.Duration and returns the merged
// result. Any client hitting a connection or protocol error aborts the
// run with that error (engine/argument error replies are counted, not
// fatal).
func Run(opts Options, mix Mix) (Result, error) {
	opts.fill()
	if mix.ReadPct+mix.UpdatePct+mix.InsertPct+mix.ScanPct != 100 {
		return Result{}, fmt.Errorf("loadgen: mix %s percentages sum to %d, want 100",
			mix.Name, mix.ReadPct+mix.UpdatePct+mix.InsertPct+mix.ScanPct)
	}
	if mix.ScanCount <= 0 {
		mix.ScanCount = 16
	}

	if !opts.SkipPreload {
		if err := preload(opts); err != nil {
			return Result{}, err
		}
	}

	// nextKey feeds inserts and anchors the "latest" distribution;
	// shared so concurrent inserters never collide on a key.
	var nextKey atomic.Int64
	nextKey.Store(int64(opts.Keys))

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		stats   = make([]clientStats, opts.Clients)
		errs    = make(chan error, opts.Clients)
		started = time.Now()
	)
	for i := 0; i < opts.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			if err := runClient(opts, mix, id, &nextKey, &stop, &stats[id]); err != nil {
				errs <- err
				stop.Store(true)
			}
		}(i)
	}
	timer := time.AfterFunc(opts.Duration, func() { stop.Store(true) })
	wg.Wait()
	timer.Stop()
	elapsed := time.Since(started)

	select {
	case err := <-errs:
		return Result{}, err
	default:
	}

	res := Result{Mix: mix.Name, Clients: opts.Clients, Elapsed: elapsed,
		PerClass: make(map[string]ClassResult, len(Classes))}
	for ci, class := range Classes {
		var h Hist
		var errors uint64
		var sumNs int64
		for i := range stats {
			h.Merge(&stats[i].hists[ci])
			sumNs += stats[i].sumNs[ci]
			errors += stats[i].errors[ci]
		}
		if h.Count() == 0 && errors == 0 {
			continue
		}
		cr := ClassResult{
			Ops: h.Count(), Errors: errors,
			P50:  time.Duration(h.Quantile(0.50)),
			P99:  time.Duration(h.Quantile(0.99)),
			P999: time.Duration(h.Quantile(0.999)),
		}
		if cr.Ops > 0 {
			cr.Mean = time.Duration(sumNs / int64(cr.Ops))
		}
		res.PerClass[class] = cr
		res.Ops += h.Count()
		res.Errors += errors
	}
	return res, nil
}

// preload fills [0, Keys) through one connection with MSET batches of
// 512 pairs (values derivable via workload.ValueFor, so differential
// checks can recompute them).
func preload(opts Options) error {
	c, err := opts.Dial()
	if err != nil {
		return err
	}
	defer c.Close()
	w := resp.NewWriter(c)
	r := resp.NewReader(c)
	const batch = 512
	sent := 0
	for lo := 0; lo < opts.Keys; lo += batch {
		hi := min(lo+batch, opts.Keys)
		w.ArrayHeader(1 + 2*(hi-lo))
		w.BulkString("MSET")
		for k := lo; k < hi; k++ {
			w.BulkInt(int64(k))
			w.BulkInt(workload.ValueFor(int64(k)))
		}
		sent++
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("loadgen: preload: %w", err)
	}
	for i := 0; i < sent; i++ {
		rep, err := r.ReadReply()
		if err != nil {
			return fmt.Errorf("loadgen: preload reply: %w", err)
		}
		if rep.Kind == resp.ErrorString {
			return fmt.Errorf("loadgen: preload rejected: %s", rep.Bulk)
		}
	}
	return nil
}

// keyPicker produces point-op keys for one client per the mix's
// distribution.
type keyPicker struct {
	dist    string
	zipf    *workload.Zipf
	uniform *workload.RNG
	keys    int64
}

func newKeyPicker(mix Mix, opts Options, id int) *keyPicker {
	seed := opts.Seed + uint64(id)*0x9e3779b97f4a7c15 + 1
	p := &keyPicker{dist: mix.Dist, keys: int64(opts.Keys)}
	switch mix.Dist {
	case "uniform":
		p.uniform = workload.NewRNG(seed)
	case "latest":
		// Zipf-skewed offset back from the newest key, windowed so the
		// hot set tracks the insert frontier.
		p.zipf = workload.NewZipf(seed, 1.0, uint64(min(opts.Keys, 1<<16)), false)
	default: // "zipf"
		p.zipf = workload.NewZipf(seed, 1.0, uint64(opts.Keys), true)
	}
	return p
}

func (p *keyPicker) pick(nextKey *atomic.Int64) int64 {
	switch p.dist {
	case "uniform":
		return int64(p.uniform.Uint64n(uint64(p.keys)))
	case "latest":
		k := nextKey.Load() - 1 - int64(p.zipf.NextRank())
		if k < 0 {
			k = 0
		}
		return k
	default:
		return p.zipf.Next()
	}
}

// runClient is one closed-loop client: pick an op, issue it, read the
// reply, record the latency, repeat until stopped.
func runClient(opts Options, mix Mix, id int, nextKey *atomic.Int64,
	stop *atomic.Bool, st *clientStats) error {
	c, err := opts.Dial()
	if err != nil {
		return err
	}
	defer c.Close()
	w := resp.NewWriter(c)
	r := resp.NewReader(c)
	rng := workload.NewRNG(opts.Seed ^ (uint64(id+1) * 0xbf58476d1ce4e5b9))
	picker := newKeyPicker(mix, opts, id)

	readHi := mix.ReadPct
	updateHi := readHi + mix.UpdatePct
	insertHi := updateHi + mix.InsertPct

	for !stop.Load() {
		roll := int(rng.Uint64n(100))
		var class int
		t0 := time.Now()
		switch {
		case roll < readHi:
			class = 0
			w.Command("GET", picker.pick(nextKey))
		case roll < updateHi:
			class = 1
			k := picker.pick(nextKey)
			w.Command("SET", k, workload.ValueFor(k)+1)
		case roll < insertHi:
			class = 2
			k := nextKey.Add(1) - 1
			w.Command("SET", k, workload.ValueFor(k))
		default:
			class = 3
			lo := picker.pick(nextKey)
			w.ArrayHeader(5)
			w.BulkString("SCAN")
			w.BulkInt(lo)
			w.BulkInt(lo + int64(4*mix.ScanCount))
			w.BulkString("COUNT")
			w.BulkInt(int64(mix.ScanCount))
		}
		if err := w.Flush(); err != nil {
			return fmt.Errorf("loadgen: client %d write: %w", id, err)
		}
		isErr, err := drainReply(r)
		if err != nil {
			return fmt.Errorf("loadgen: client %d reply: %w", id, err)
		}
		ns := time.Since(t0).Nanoseconds()
		st.hists[class].Record(ns)
		st.sumNs[class] += ns
		if isErr {
			st.errors[class]++
		}
	}
	return nil
}

// drainReply consumes exactly one reply (recursing into arrays) and
// reports whether it was an error reply.
func drainReply(r *resp.Reader) (isErr bool, err error) {
	rep, err := r.ReadReply()
	if err != nil {
		return false, err
	}
	if rep.Kind == resp.Array {
		for i := 0; i < rep.N; i++ {
			inner, err := drainReply(r)
			if err != nil {
				return false, err
			}
			isErr = isErr || inner
		}
	}
	return isErr || rep.Kind == resp.ErrorString, nil
}
