package loadgen

import "testing"

// TestHistQuantiles pins the log-bucket quantile math: quantiles land
// within one bucket (≤12.5% relative error) of the true value.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := int64(1); i <= 10000; i++ {
		h.Record(i)
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 5000}, {0.99, 9900}, {0.999, 9990}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want*7/8-1 || got > c.want*9/8+1 {
			t.Errorf("Quantile(%v) = %d, want within 12.5%% of %d", c.q, got, c.want)
		}
	}
}

// TestHistSmallAndMerge covers exact small buckets, merging, and the
// empty histogram.
func TestHistSmallAndMerge(t *testing.T) {
	var a, b Hist
	if a.Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	for i := 0; i < 10; i++ {
		a.Record(3)
		b.Record(7)
	}
	a.Merge(&b)
	if a.Count() != 20 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if got := a.Quantile(0.25); got != 3 {
		t.Errorf("Quantile(0.25) = %d, want 3 (exact small bucket)", got)
	}
	if got := a.Quantile(0.99); got != 7 {
		t.Errorf("Quantile(0.99) = %d, want 7 (exact small bucket)", got)
	}
	// Negative and huge values clamp without panicking.
	a.Record(-5)
	a.Record(1 << 62)
	if bucketOf(-5) != 0 {
		t.Error("negative latency should clamp to bucket 0")
	}
}

// TestBucketRoundTrip: every bucket's floor maps back to that bucket —
// the invariant Quantile relies on to report a representative value.
func TestBucketRoundTrip(t *testing.T) {
	for b := 0; b < histBuckets; b++ {
		if got := bucketOf(bucketFloor(b)); got != b {
			t.Fatalf("bucketOf(bucketFloor(%d)) = %d", b, got)
		}
	}
}
