package loadgen

import "math/bits"

// Hist is a log-bucketed latency histogram: values below 16ns land in
// exact buckets, larger values in 8 sub-buckets per power of two
// (≤12.5% relative error — plenty for p50/p99/p999 trend tracking).
// Fixed-size and mergeable, so every client records into a private
// histogram with no synchronization and the pool merges at the end.
type Hist struct {
	counts [histBuckets]uint64
	n      uint64
}

const histBuckets = 16 + 59*8 // majors 5..63, 8 sub-buckets each (int64 max has 63 bits)

// Record adds one latency observation in nanoseconds.
func (h *Hist) Record(ns int64) {
	h.counts[bucketOf(ns)]++
	h.n++
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n }

// Quantile returns the q-quantile (0 < q <= 1) in nanoseconds as the
// lower bound of the bucket holding that rank, or 0 when empty.
func (h *Hist) Quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	rank := uint64(q * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			return bucketFloor(i)
		}
	}
	return bucketFloor(histBuckets - 1)
}

func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 16 {
		return int(v)
	}
	major := bits.Len64(v)       // >= 5
	sub := int(v>>(major-4)) - 8 // [0, 8)
	b := 16 + (major-5)*8 + sub
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func bucketFloor(b int) int64 {
	if b < 16 {
		return int64(b)
	}
	major := (b-16)/8 + 5
	sub := (b - 16) % 8
	return int64(8+sub) << (major - 4)
}
