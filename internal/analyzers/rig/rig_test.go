package rig

import (
	"path/filepath"
	"testing"
)

// TestLoadModule loads the real module: every package must parse and
// type-check, and the core engine must be present — the precondition
// for every rmavet run.
func TestLoadModule(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rma", "rma/internal/core", "rma/internal/shard",
		"rma/internal/vmem", "rma/internal/detector",
	} {
		if _, ok := m.Pkgs[want]; !ok {
			t.Errorf("package %s not loaded", want)
		}
	}
	if len(m.Sorted) != len(m.Pkgs) {
		t.Errorf("Sorted has %d entries, Pkgs %d", len(m.Sorted), len(m.Pkgs))
	}
}
