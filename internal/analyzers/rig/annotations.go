package rig

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //rma: annotation grammar (see STATIC_ANALYSIS.md at the repo
// root). Two positions carry meaning:
//
//   - A function's doc comment can carry function directives:
//     //rma:noalloc (the function and its static call closure must not
//     heap-allocate) and //rma:init (the function runs before its
//     receiver is shared, so lockcheck skips it).
//
//   - A line marker — //rma:alloc-ok or //rma:cap-ok, trailing a
//     statement or on the line directly above it — acknowledges one
//     allocating construct inside a noalloc closure: alloc-ok for a
//     documented escape hatch (resize, first-use scratch growth) whose
//     callee is not walked further, cap-ok for an append whose target
//     capacity is pre-sized (pinned by the runtime allocation tests and
//     the escape gate).
//
// Both spellings are exact: //rma:noalloc with no space, matching the
// //go: directive convention so gofmt leaves them alone.

// Function directive names.
const (
	DirNoalloc = "noalloc"
	DirInit    = "init"
	// DirSeqlock marks a seqlock read-path function: unguarded READS of
	// guarded shard state are blessed, but only when lockcheck can verify
	// the retry shape (a for loop bracketing the reads with at least two
	// .ver.Load() calls — capture and revalidation). Writes, direct mutex
	// acquisition and passing guarded values to other functions remain
	// findings.
	DirSeqlock = "seqlock"
)

// Line marker names.
const (
	MarkAllocOK = "alloc-ok"
	MarkCapOK   = "cap-ok"
)

// FuncDirectives returns the //rma: directives in a function's doc
// comment ("noalloc", "init", ...).
func FuncDirectives(fd *ast.FuncDecl) []string {
	if fd == nil || fd.Doc == nil {
		return nil
	}
	var dirs []string
	for _, c := range fd.Doc.List {
		if name, ok := directive(c.Text); ok {
			dirs = append(dirs, name)
		}
	}
	return dirs
}

// HasDirective reports whether the function's doc comment carries the
// named //rma: directive.
func HasDirective(fd *ast.FuncDecl, name string) bool {
	for _, d := range FuncDirectives(fd) {
		if d == name || strings.HasPrefix(d, name+" ") {
			return true
		}
	}
	return false
}

// directive extracts the payload of one //rma: comment line.
func directive(text string) (string, bool) {
	const prefix = "//rma:"
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	return strings.TrimSpace(strings.TrimPrefix(text, prefix)), true
}

// LineMarkers collects the //rma: line markers of one file: a map from
// the line the marker governs to the marker name. A trailing marker
// governs its own line; a marker alone on a line governs the next line.
func LineMarkers(fset *token.FileSet, file *ast.File) map[int]string {
	marks := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			name, ok := directive(c.Text)
			if !ok {
				continue
			}
			base := strings.Fields(name)
			if len(base) == 0 {
				continue
			}
			if base[0] != MarkAllocOK && base[0] != MarkCapOK {
				continue
			}
			line := fset.Position(c.Pos()).Line
			if !trailing(fset, file, c) {
				line++ // marker on its own line governs the next
			}
			marks[line] = base[0]
		}
	}
	return marks
}

// trailing reports whether comment c follows code on its line.
func trailing(fset *token.FileSet, file *ast.File, c *ast.Comment) bool {
	cl := fset.Position(c.Pos()).Line
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || found {
			return false
		}
		switch n.(type) {
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		if fset.Position(n.Pos()).Line == cl && n.Pos() < c.Pos() {
			found = true
			return false
		}
		// Descend only into nodes spanning the comment's line.
		return fset.Position(n.Pos()).Line <= cl && fset.Position(n.End()).Line >= cl
	})
	return found
}
