package rig

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// LoadFixture loads one directory of Go files as a single-package
// Module for analyzer tests. The package is registered under asPath, so
// fixtures can stand in for a specific module package (unsafecheck's
// confinement rules are path-based). Imports — standard library or real
// module packages — are resolved from export data, so a fixture can use
// the real types it violates contracts against.
func LoadFixture(fixtureDir, asPath string) (*Module, error) {
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("rig: no Go files in %s", fixtureDir)
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, fixtureDir, names)
	if err != nil {
		return nil, err
	}

	m := &Module{Fset: fset, Pkgs: make(map[string]*Package, 1)}
	imp := &moduleImporter{
		module: m,
		gc:     importer.ForCompiler(fset, "gc", exportLookup(fixtureDir, make(map[string]string))),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("rig: type-checking fixture %s: %w", fixtureDir, err)
	}
	pkg := &Package{Path: asPath, Files: files, Types: tpkg, Info: info}
	m.Pkgs[asPath] = pkg
	m.Sorted = []*Package{pkg}
	return m, nil
}
