// Package rig is the minimal analysis framework behind cmd/rmavet: a
// stdlib-only mirror of the golang.org/x/tools/go/analysis surface
// (Analyzer, Pass, Diagnostic) plus a module loader built on the go
// command.
//
// The repo deliberately has no third-party dependencies, so instead of
// vendoring x/tools the rig reproduces the two pieces the analyzers
// need: type-checked syntax for every package of the module, and a
// driver that runs analyzers over it and reports positioned
// diagnostics. Module packages are parsed and type-checked from source
// (the analyzers need function bodies across package boundaries —
// noalloc's transitive walk, unsafecheck's vmem lifecycle); standard
// library dependencies are imported from compiler export data located
// with `go list -export`, which is both faster and more faithful than
// re-type-checking the standard library from source.
//
// Unlike go/analysis, a Pass sees the whole module at once rather than
// one package at a time: the contracts rmavet enforces (lock
// discipline, allocation-free call closures, page lifecycles) are
// whole-program properties, and a module of this size loads in well
// under a second, so per-package facts buy nothing.
package rig

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects the loaded module through
// the Pass and reports diagnostics; a non-nil error aborts the whole
// rmavet run (reserved for analyzer bugs, not findings).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, positioned in the module's file set.
// Analyzer is filled in by Run for attribution in rmavet's output.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass connects one Analyzer to one loaded Module.
type Pass struct {
	Analyzer *Analyzer
	Module   *Module
	Report   func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package is one loaded, type-checked source package.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the loaded analysis unit: every source package named by the
// load patterns plus their in-module dependencies, type-checked against
// export data for the standard library.
type Module struct {
	Fset *token.FileSet
	// Pkgs maps import path to package for every source-loaded package.
	Pkgs map[string]*Package
	// Sorted holds the packages in deterministic (import path) order.
	Sorted []*Package

	// funcDecls maps every declared function/method object to its
	// syntax, across all loaded packages (built lazily by FuncDecl).
	funcDecls map[*types.Func]*ast.FuncDecl
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Imports    []string
}

// Load loads the Go module rooted at dir: patterns default to "./...".
// Non-standard packages are parsed and type-checked from source;
// standard-library imports come from export data.
func Load(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	exports := make(map[string]string)
	var srcPkgs []*listedPackage
	for _, lp := range listed {
		if lp.Standard {
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
			continue
		}
		srcPkgs = append(srcPkgs, lp)
	}

	parsed := make(map[string][]*ast.File, len(srcPkgs))
	byPath := make(map[string]*listedPackage, len(srcPkgs))
	for _, lp := range srcPkgs {
		byPath[lp.ImportPath] = lp
		files, err := parseFiles(fset, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		parsed[lp.ImportPath] = files
	}

	order, err := topoSort(srcPkgs, byPath)
	if err != nil {
		return nil, err
	}

	m := &Module{Fset: fset, Pkgs: make(map[string]*Package, len(order))}
	imp := &moduleImporter{
		module: m,
		gc:     importer.ForCompiler(fset, "gc", exportLookup(dir, exports)),
	}
	for _, path := range order {
		files := parsed[path]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("rig: type-checking %s: %w", path, err)
		}
		pkg := &Package{Path: path, Files: files, Types: tpkg, Info: info}
		m.Pkgs[path] = pkg
		m.Sorted = append(m.Sorted, pkg)
	}
	sort.Slice(m.Sorted, func(i, j int) bool { return m.Sorted[i].Path < m.Sorted[j].Path })
	return m, nil
}

// goList runs `go list -deps -export -json` and decodes the package
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,Standard,Export,GoFiles,Imports", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("rig: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("rig: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// parseFiles parses the named files of one package directory with
// comments retained (the annotation grammar lives in comments).
func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// topoSort orders the source packages dependencies-first.
func topoSort(pkgs []*listedPackage, byPath map[string]*listedPackage) ([]string, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	state := make(map[string]int, len(pkgs))
	var order []string
	var visit func(path string) error
	visit = func(path string) error {
		lp, ok := byPath[path]
		if !ok {
			return nil // standard library: imported from export data
		}
		switch state[path] {
		case grey:
			return fmt.Errorf("rig: import cycle through %s", path)
		case black:
			return nil
		}
		state[path] = grey
		for _, dep := range lp.Imports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	// Deterministic roots: sorted import paths.
	paths := make([]string, 0, len(pkgs))
	for _, lp := range pkgs {
		paths = append(paths, lp.ImportPath)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// exportLookup returns the gc importer's lookup function: export data
// recorded by the initial go list, topped up on demand for import paths
// the initial listing did not cover (fixture packages may import
// standard-library packages the module itself does not).
func exportLookup(dir string, exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
			cmd.Dir = dir
			out, err := cmd.Output()
			if err != nil {
				return nil, fmt.Errorf("rig: no export data for %q: %v", path, err)
			}
			file = strings.TrimSpace(string(out))
			if file == "" {
				return nil, fmt.Errorf("rig: empty export data path for %q", path)
			}
			exports[path] = file
		}
		return os.Open(file)
	}
}

// moduleImporter resolves imports during type checking: source-loaded
// module packages first, compiler export data for everything else.
type moduleImporter struct {
	module *Module
	gc     types.Importer
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := mi.module.Pkgs[path]; ok {
		return pkg.Types, nil
	}
	return mi.gc.Import(path)
}

// FuncDecl returns the declaration of fn anywhere in the module, or nil
// for functions without loaded syntax (standard library, interface
// methods).
func (m *Module) FuncDecl(fn *types.Func) *ast.FuncDecl {
	if m.funcDecls == nil {
		m.funcDecls = make(map[*types.Func]*ast.FuncDecl)
		for _, pkg := range m.Sorted {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if !ok || fd.Name == nil {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						m.funcDecls[obj] = fd
					}
				}
			}
		}
	}
	return m.funcDecls[fn]
}

// Run executes the analyzers over the module and returns the collected
// diagnostics sorted by position.
func Run(m *Module, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		pass := &Pass{
			Analyzer: a,
			Module:   m,
			Report: func(d Diagnostic) {
				d.Analyzer = name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("rig: analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := m.Fset.Position(diags[i].Pos), m.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
