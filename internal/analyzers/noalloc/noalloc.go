// Package noalloc enforces the repo's steady-state allocation contract
// (the claim PERFORMANCE.md makes in prose and the runtime
// testing.AllocsPerRun tests spot-check): a function marked
// //rma:noalloc, together with every module function statically
// reachable from it, must not contain heap-allocating constructs.
//
// Flagged constructs: make, new, append (growth), slice/map composite
// literals, address-taken composite literals, function literals, go
// statements, non-constant string concatenation, string<->[]byte/[]rune
// conversions, and calls to functions outside the module that are not
// on the noalloc allowlist (math, math/bits, sync/atomic, the in-place
// slices sorters and searchers).
//
// Escape hatches, both spelled as line markers so the acknowledgement
// sits next to the construct it acknowledges:
//
//   - //rma:alloc-ok — a documented cold or first-use allocation
//     (resize, scratch growth, error construction); the marked call's
//     callee is not traversed further.
//   - //rma:cap-ok — an append whose destination capacity is pre-sized,
//     so the append never grows (pinned by the escape-analysis gate and
//     the runtime allocation tests).
//
// Two constructs are treated as cold paths and skipped outright: panic
// arguments, and error construction via fmt.Errorf / errors.New —
// these fire only on failure, and the contract is about the
// steady-state success path.
//
// Limitation: dynamic dispatch (interface method calls, calls through
// function values) is not followed; the escape-analysis regression gate
// (cmd/rmavet -escapes) and the runtime allocation tests backstop those
// edges.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rma/internal/analyzers/rig"
)

// Analyzer is the noalloc analysis.
var Analyzer = &rig.Analyzer{
	Name: "noalloc",
	Doc:  "forbid heap-allocating constructs in //rma:noalloc call closures",
	Run:  run,
}

// allow lists non-module functions known not to allocate (or, for the
// sorters, to sort in place). A "*" entry allows the whole package.
var allow = map[string]map[string]bool{
	"math":        {"*": true},
	"math/bits":   {"*": true},
	"sync/atomic": {"*": true},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
		"BinarySearch": true, "BinarySearchFunc": true,
		"Min": true, "Max": true, "Index": true, "IndexFunc": true,
		"Contains": true, "Reverse": true,
	},
	"sort": {"Search": true},
	// The WAL group-commit staging path (internal/wal.Append) runs
	// under a stripe mutex and finishes records with CRC-32C; none of
	// these allocate (sync.Cond parks on a runtime ticket).
	"sync":       {"Lock": true, "Unlock": true, "Wait": true, "Signal": true, "Broadcast": true},
	"hash/crc32": {"Checksum": true, "Update": true},
}

// cold lists error constructors tolerated as failure-path-only.
var cold = map[string]map[string]bool{
	"fmt":    {"Errorf": true},
	"errors": {"New": true, "Is": true, "As": true},
}

// declSite locates one function declaration in its file.
type declSite struct {
	pkg  *rig.Package
	file *ast.File
	fd   *ast.FuncDecl
}

type checker struct {
	pass    *rig.Pass
	sites   map[*types.Func]declSite
	markers map[*ast.File]map[int]string
	visited map[*types.Func]bool
}

func run(pass *rig.Pass) error {
	c, roots := newChecker(pass)
	for _, root := range roots {
		c.walk(root, root)
	}
	return nil
}

// newChecker indexes every function declaration of the module and
// collects the //rma:noalloc roots.
func newChecker(pass *rig.Pass) (*checker, []*types.Func) {
	c := &checker{
		pass:    pass,
		sites:   make(map[*types.Func]declSite),
		markers: make(map[*ast.File]map[int]string),
		visited: make(map[*types.Func]bool),
	}
	var roots []*types.Func
	for _, pkg := range pass.Module.Sorted {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				c.sites[fn] = declSite{pkg: pkg, file: file, fd: fd}
				if rig.HasDirective(fd, rig.DirNoalloc) {
					roots = append(roots, fn)
				}
			}
		}
	}
	return c, roots
}

// ClosureFunc locates one function of the //rma:noalloc transitive call
// closure in source. The escape-analysis gate (cmd/rmavet -escapes)
// matches compiler -m diagnostics against these line ranges.
type ClosureFunc struct {
	Name      string // qualified name, e.g. (*rma/internal/core.Array).Insert
	File      string // absolute path
	StartLine int    // declaration range, inclusive
	EndLine   int
	// Exempt lists the lines the allocation contract excuses: lines
	// carrying //rma:alloc-ok or //rma:cap-ok markers, and the cold
	// paths the analyzer skips (panic arguments, error construction).
	Exempt map[int]bool
}

// Closure computes the //rma:noalloc closure of the module without
// reporting diagnostics: the same function set the analyzer checks, plus
// the lines its escape hatches excuse, for the escape gate to consume.
func Closure(m *rig.Module) []ClosureFunc {
	pass := &rig.Pass{Analyzer: Analyzer, Module: m, Report: func(rig.Diagnostic) {}}
	c, roots := newChecker(pass)
	for _, root := range roots {
		c.walk(root, root)
	}

	fset := m.Fset
	out := make([]ClosureFunc, 0, len(c.visited))
	for fn := range c.visited {
		site, ok := c.sites[fn]
		if !ok || site.fd.Body == nil {
			continue
		}
		start := fset.Position(site.fd.Pos())
		end := fset.Position(site.fd.End())
		cf := ClosureFunc{
			Name:      fn.FullName(),
			File:      start.Filename,
			StartLine: start.Line,
			EndLine:   end.Line,
			Exempt:    make(map[int]bool),
		}
		for line, mark := range c.fileMarkers(site.file) {
			if mark != "" && line >= cf.StartLine && line <= cf.EndLine {
				cf.Exempt[line] = true
			}
		}
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !c.isColdCall(site, call) {
				return true
			}
			for l := fset.Position(call.Pos()).Line; l <= fset.Position(call.End()).Line; l++ {
				cf.Exempt[l] = true
			}
			return false
		})
		out = append(out, cf)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].StartLine < out[j].StartLine
	})
	return out
}

// isColdCall reports whether the call is one of the failure-path
// constructs the allocation contract ignores: panic, or the allowlisted
// error constructors.
func (c *checker) isColdCall(site declSite, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := site.pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	callee := c.staticCallee(site, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	return cold[callee.Pkg().Path()][callee.Name()]
}

// walk checks fn and recurses into its static module callees, carrying
// the root for diagnostics. A function already visited under any root
// is not re-checked — closures overlap heavily (Insert and Delete share
// the whole rebalance machinery).
func (c *checker) walk(fn *types.Func, root *types.Func) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	site, ok := c.sites[fn]
	if !ok || site.fd.Body == nil {
		return
	}
	marks := c.fileMarkers(site.file)
	closure := fmt.Sprintf("//rma:noalloc closure of %s", root.Name())
	if fn == root {
		closure = fmt.Sprintf("//rma:noalloc function %s", root.Name())
	}

	ast.Inspect(site.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.callExpr(site, n, marks, closure, root)
		case *ast.CompositeLit:
			c.compositeLit(site, n, marks, closure)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if !c.marked(marks, site, n.Pos()) {
						c.pass.Reportf(n.Pos(),
							"address-taken composite literal allocates in %s", closure)
					}
					return false // the literal itself is covered
				}
			}
		case *ast.FuncLit:
			if !c.marked(marks, site, n.Pos()) {
				c.pass.Reportf(n.Pos(), "function literal allocates in %s", closure)
			}
			return false // its body runs dynamically; not part of the static closure
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "go statement allocates in %s", closure)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && c.isString(site, n) {
				c.pass.Reportf(n.Pos(), "string concatenation allocates in %s", closure)
			}
		}
		return true
	})
}

// callExpr handles calls: builtins, conversions, and traversal into
// static module callees. Returns whether Inspect should descend.
func (c *checker) callExpr(site declSite, call *ast.CallExpr, marks map[int]string, closure string, root *types.Func) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := site.pkg.Info.Uses[fun].(*types.Builtin); ok {
			return c.builtin(site, call, b.Name(), marks, closure)
		}
	}

	// Conversions: string <-> []byte / []rune copy their operand.
	if tv, ok := site.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if c.stringConv(site, tv.Type, call) {
			if !c.marked(marks, site, call.Pos()) {
				c.pass.Reportf(call.Pos(), "string conversion allocates in %s", closure)
			}
		}
		return true
	}

	callee := c.staticCallee(site, call)
	if callee == nil {
		return true // dynamic dispatch: documented limitation, escape gate backstops
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			return true // interface method: dynamic
		}
	}
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	if _, inModule := c.pass.Module.Pkgs[pkgPath]; inModule {
		if c.marked(marks, site, call.Pos()) {
			return true // documented escape hatch: do not traverse the callee
		}
		c.walk(callee, root)
		return true
	}
	if cold[pkgPath][callee.Name()] {
		return true
	}
	if a := allow[pkgPath]; a != nil && (a["*"] || a[callee.Name()]) {
		return true
	}
	if !c.marked(marks, site, call.Pos()) {
		c.pass.Reportf(call.Pos(),
			"call to %s.%s may allocate in %s (not in the noalloc allowlist)",
			pkgPath, callee.Name(), closure)
	}
	return true
}

// builtin checks one builtin call. panic is a cold path: its argument
// (often a boxed string) is not scanned.
func (c *checker) builtin(site declSite, call *ast.CallExpr, name string, marks map[int]string, closure string) bool {
	switch name {
	case "panic":
		return false
	case "make", "new":
		if !c.marked(marks, site, call.Pos()) {
			c.pass.Reportf(call.Pos(),
				"%s allocates in %s (//rma:alloc-ok to document an escape hatch)", name, closure)
		}
	case "append":
		line := c.pass.Module.Fset.Position(call.Pos()).Line
		if m := marks[line]; m != rig.MarkCapOK && m != rig.MarkAllocOK {
			c.pass.Reportf(call.Pos(),
				"append may grow its backing array in %s (mark //rma:cap-ok if the capacity is pre-sized)", closure)
		}
	}
	return true
}

// compositeLit flags slice and map literals; value struct and array
// literals live on the stack.
func (c *checker) compositeLit(site declSite, lit *ast.CompositeLit, marks map[int]string, closure string) {
	tv, ok := site.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Map:
		if !c.marked(marks, site, lit.Pos()) {
			c.pass.Reportf(lit.Pos(), "slice or map literal allocates in %s", closure)
		}
	}
}

func (c *checker) staticCallee(site declSite, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := site.pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := site.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := site.pkg.Info.Uses[id].(*types.Func); ok {
				return fn
			}
		}
	}
	return nil
}

func (c *checker) stringConv(site declSite, to types.Type, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := site.pkg.Info.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	from := tv.Type
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func (c *checker) isString(site declSite, e ast.Expr) bool {
	tv, ok := site.pkg.Info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil { // constants fold at compile time
		return false
	}
	return isStringType(tv.Type)
}

// marked reports whether the node's line carries any //rma: line marker.
func (c *checker) marked(marks map[int]string, site declSite, pos token.Pos) bool {
	return marks[c.pass.Module.Fset.Position(pos).Line] != ""
}

func (c *checker) fileMarkers(file *ast.File) map[int]string {
	m, ok := c.markers[file]
	if !ok {
		m = rig.LineMarkers(c.pass.Module.Fset, file)
		c.markers[file] = m
	}
	return m
}
