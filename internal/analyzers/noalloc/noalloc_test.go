package noalloc_test

import (
	"testing"

	"rma/internal/analyzers/noalloc"
	"rma/internal/analyzers/rigtest"
)

func TestNoalloc(t *testing.T) {
	rigtest.Run(t, "testdata/src/fixture", "fix/noalloc", noalloc.Analyzer)
}
