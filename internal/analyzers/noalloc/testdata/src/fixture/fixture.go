// Package fixture is noalloc's golden test: annotated hot paths with
// seeded allocations, and the escape hatches that make real ones legal.
package fixture

import "strings"

// hot is a steady-state path: nothing here may allocate.
//
//rma:noalloc
func hot(dst []int64, k int64) []int64 {
	dst = append(dst, k) // want `append may grow its backing array in //rma:noalloc function hot`
	return dst
}

// hotPresized appends into pre-sized capacity: the marker acknowledges
// the construct and the escape gate pins the claim.
//
//rma:noalloc
func hotPresized(dst []int64, k int64) []int64 {
	if cap(dst) == len(dst) {
		return dst
	}
	dst = append(dst, k) //rma:cap-ok — capacity checked above
	return dst
}

// hidden is only reachable through entry; its append is the classic
// buried allocation a reviewer misses.
func hidden(dst []int64, k int64) []int64 {
	return append(dst, k) // want `append may grow its backing array in //rma:noalloc closure of entry`
}

// entry's own body is clean: the violation sits one call deep.
//
//rma:noalloc
func entry(dst []int64, k int64) []int64 {
	return hidden(dst, k)
}

// grow is a documented resize escape hatch: the marked call's callee is
// not traversed.
func grow(dst []int64) []int64 {
	return append(dst, make([]int64, 64)...)
}

//rma:noalloc
func hotWithEscapeHatch(dst []int64) []int64 {
	if cap(dst) == 0 {
		dst = grow(dst) //rma:alloc-ok — first-use growth
	}
	return dst
}

// zoo collects one of each flagged construct.
//
//rma:noalloc
func zoo(s string, n int) {
	_ = make([]int64, n)        // want `make allocates in //rma:noalloc function zoo`
	_ = new(int)                // want `new allocates in //rma:noalloc function zoo`
	_ = []int{1, 2, 3}          // want `slice or map literal allocates in //rma:noalloc function zoo`
	_ = &point{1, 2}            // want `address-taken composite literal allocates in //rma:noalloc function zoo`
	_ = func() int { return n } // want `function literal allocates in //rma:noalloc function zoo`
	go sink(n)                  // want `go statement allocates in //rma:noalloc function zoo`
	_ = s + s                   // want `string concatenation allocates in //rma:noalloc function zoo`
	_ = []byte(s)               // want `string conversion allocates in //rma:noalloc function zoo`
	_ = strings.Repeat(s, 2)    // want `call to strings.Repeat may allocate in //rma:noalloc function zoo`
}

// stackOnly shows the constructs that are fine: value literals, copy,
// arithmetic, and calls into the allowlist.
//
//rma:noalloc
func stackOnly(dst, src []int64) point {
	copy(dst, src)
	p := point{x: len(dst), y: cap(src)}
	return p
}

type point struct{ x, y int }

func sink(int) {}
