// Package benchguard pins the BENCH_hotpath.json schema: the repo's
// benchmark history is only comparable across commits if every
// experiment records the same identifying fields, and nothing checks
// that at run time — a field silently dropped from one experiment's
// result literal shows up months later as an unplottable hole.
//
// Two rules, anchored on exp.HotpathResult (any package ending
// internal/exp) and on snapshot structs (any struct with a
// []HotpathResult field — cmd/rmabench's hotpathSnapshot):
//
//   - Every field of these structs must carry a json tag, so renames
//     are deliberate schema changes, not Go-side identifier drift.
//   - Every keyed HotpathResult composite literal must set the
//     identifying fields Series, Layout, Rebalance, Ops, NsPerOp; a
//     snapshot literal must set every one of its fields. (Positional
//     literals set everything by construction.)
package benchguard

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"rma/internal/analyzers/rig"
)

// Analyzer is the benchguard analysis.
var Analyzer = &rig.Analyzer{
	Name: "benchguard",
	Doc:  "pin the BENCH_hotpath.json schema: json tags and required result fields",
	Run:  run,
}

// requiredResult are the identifying fields every experiment's
// HotpathResult must record.
var requiredResult = []string{"Series", "Layout", "Rebalance", "Ops", "NsPerOp"}

func run(pass *rig.Pass) error {
	result := findHotpathResult(pass.Module)
	if result == nil {
		return nil // nothing to guard (fixture without the anchor type)
	}
	snapshots := findSnapshotStructs(pass.Module, result)

	required := map[*types.TypeName][]string{result: requiredResult}
	for _, tn := range snapshots {
		required[tn] = allFields(tn)
	}
	for tn := range required {
		checkTags(pass, tn)
	}
	checkLiterals(pass, required)
	return nil
}

// findHotpathResult locates the schema anchor type.
func findHotpathResult(m *rig.Module) *types.TypeName {
	for _, pkg := range m.Sorted {
		if !strings.HasSuffix(pkg.Path, "internal/exp") {
			continue
		}
		if tn, ok := pkg.Types.Scope().Lookup("HotpathResult").(*types.TypeName); ok {
			return tn
		}
	}
	return nil
}

// findSnapshotStructs returns every named struct with a []HotpathResult
// field — the file-level envelope types that embed result slices.
func findSnapshotStructs(m *rig.Module, result *types.TypeName) []*types.TypeName {
	var out []*types.TypeName
	for _, pkg := range m.Sorted {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn == result {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				sl, ok := st.Field(i).Type().Underlying().(*types.Slice)
				if !ok {
					continue
				}
				if named, ok := sl.Elem().(*types.Named); ok && named.Obj() == result {
					out = append(out, tn)
					break
				}
			}
		}
	}
	return out
}

func allFields(tn *types.TypeName) []string {
	st := tn.Type().Underlying().(*types.Struct)
	fields := make([]string, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields = append(fields, st.Field(i).Name())
	}
	return fields
}

// checkTags requires a json tag on every field of the schema struct,
// reporting at the field's declaration.
func checkTags(pass *rig.Pass, tn *types.TypeName) {
	spec := findTypeSpec(pass.Module, tn)
	if spec == nil {
		return
	}
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, fld := range st.Fields.List {
		tagged := false
		if fld.Tag != nil {
			tag := strings.Trim(fld.Tag.Value, "`")
			if _, ok := reflect.StructTag(tag).Lookup("json"); ok {
				tagged = true
			}
		}
		if !tagged {
			for _, name := range fld.Names {
				pass.Reportf(name.Pos(),
					"benchmark schema field %s.%s has no json tag (BENCH_hotpath.json schema drift)",
					tn.Name(), name.Name)
			}
		}
	}
}

func findTypeSpec(m *rig.Module, tn *types.TypeName) *ast.TypeSpec {
	for _, pkg := range m.Sorted {
		if pkg.Types != tn.Pkg() {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if ok && pkg.Info.Defs[ts.Name] == tn {
						return ts
					}
				}
			}
		}
	}
	return nil
}

// checkLiterals flags keyed composite literals of schema structs that
// omit required fields.
func checkLiterals(pass *rig.Pass, required map[*types.TypeName][]string) {
	for _, pkg := range pass.Module.Sorted {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				tv, ok := pkg.Info.Types[lit]
				if !ok || tv.Type == nil {
					return true
				}
				t := tv.Type
				if p, ok := t.Underlying().(*types.Pointer); ok {
					t = p.Elem()
				}
				named, ok := t.(*types.Named)
				if !ok {
					return true
				}
				req, ok := required[named.Obj()]
				if !ok {
					return true
				}
				// Positional literals set every field by construction.
				if len(lit.Elts) > 0 {
					if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); !keyed {
						return true
					}
				}
				set := make(map[string]bool, len(lit.Elts))
				for _, elt := range lit.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							set[id.Name] = true
						}
					}
				}
				var missing []string
				for _, f := range req {
					if !set[f] {
						missing = append(missing, f)
					}
				}
				if len(missing) > 0 {
					pass.Reportf(lit.Pos(),
						"%s literal missing required schema field(s) %s (BENCH_hotpath.json records would drift)",
						named.Obj().Name(), strings.Join(missing, ", "))
				}
				return true
			})
		}
	}
}
