// Package fixture is benchguard's golden test: a miniature of the
// BENCH_hotpath.json schema types with seeded drift.
package fixture

// HotpathResult mirrors exp.HotpathResult (the fixture package path
// ends internal/exp, so it anchors the schema).
type HotpathResult struct {
	Series    string  `json:"series"`
	Layout    string  `json:"layout"`
	Rebalance string  `json:"rebalance"`
	Ops       int     `json:"ops"`
	NsPerOp   float64 `json:"ns_per_op"`
	P99Ns     float64 // want `benchmark schema field HotpathResult\.P99Ns has no json tag`
}

// snapshot mirrors rmabench's hotpathSnapshot envelope.
type snapshot struct {
	Label   string          `json:"label"`
	Seed    int64           // want `benchmark schema field snapshot\.Seed has no json tag`
	Results []HotpathResult `json:"results"`
}

func good() snapshot {
	r := HotpathResult{Series: "put", Layout: "interleaved", Rebalance: "rewired", Ops: 1, NsPerOp: 2}
	return snapshot{Label: "x", Seed: 1, Results: []HotpathResult{r}}
}

func badResult() HotpathResult {
	return HotpathResult{ // want `HotpathResult literal missing required schema field\(s\) Layout`
		Series:    "put",
		Rebalance: "rewired",
		Ops:       1,
		NsPerOp:   2,
	}
}

func badSnapshot() snapshot {
	return snapshot{Label: "x"} // want `snapshot literal missing required schema field\(s\) Seed, Results`
}

// positional literals set every field by construction.
func positional() HotpathResult {
	return HotpathResult{"put", "interleaved", "rewired", 1, 2, 3}
}

var (
	_ = good
	_ = badResult
	_ = badSnapshot
	_ = positional
)
