package benchguard_test

import (
	"testing"

	"rma/internal/analyzers/benchguard"
	"rma/internal/analyzers/rigtest"
)

func TestBenchguard(t *testing.T) {
	rigtest.Run(t, "testdata/src/fixture", "fix/internal/exp", benchguard.Analyzer)
}
