// Package rigtest runs rig analyzers over golden fixture packages, in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// lines annotate their expected diagnostics with
//
//	code() // want "regexp" "second regexp"
//
// and the runner fails the test on any unmatched expectation or
// unexpected diagnostic. Fixtures live under testdata/src/<name> next
// to each analyzer.
package rigtest

import (
	"regexp"
	"strings"
	"testing"

	"rma/internal/analyzers/rig"
)

// wantRe extracts the quoted expectations of one want comment: either
// double-quoted (with \" escapes) or backtick-quoted (taken literally).
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the fixture directory as a package named asPath, applies
// the analyzers, and matches the diagnostics against the fixture's
// want comments.
func Run(t *testing.T, fixtureDir, asPath string, analyzers ...*rig.Analyzer) {
	t.Helper()
	m, err := rig.LoadFixture(fixtureDir, asPath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := rig.Run(m, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range m.Sorted {
		for _, file := range pkg.Files {
			filename := m.Fset.Position(file.Pos()).Filename
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					line := m.Fset.Position(c.Pos()).Line
					for _, q := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
						src := q[2] // backtick form: literal
						if q[1] != "" || src == "" {
							src = strings.ReplaceAll(q[1], `\"`, `"`)
						}
						pat, err := regexp.Compile(src)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", filename, line, src, err)
						}
						wants[key{filename, line}] = append(wants[key{filename, line}], pat)
					}
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		pos := m.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		found := false
		for _, pat := range wants[k] {
			if !matched[pat] && pat.MatchString(d.Message) {
				matched[pat] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for k, pats := range wants {
		for _, pat := range pats {
			if !matched[pat] {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, pat)
			}
		}
	}
}
