// Package fixture is lockcheck's golden test: a miniature of the shard
// package's locking discipline, with seeded violations annotated by
// want comments.
package fixture

import "sync"

// engine stands in for core.Array.
type engine struct{ n int }

func (e *engine) Size() int                     { return e.n }
func (e *engine) FlushPending() error           { return nil }
func (e *engine) IterAscend(lo, hi int64) int   { return int(hi - lo) }
func (e *engine) Sum(lo, hi int64) (int, int64) { return 0, 0 }

// cell pairs a shard lock with its guarded engine.
type cell struct {
	mu sync.Mutex
	a  *engine
}

// Map is the sharded container.
type Map struct {
	shards []cell
}

// flushDeferred drains deferred work; must run under the shard's lock.
func flushDeferred(s *cell) { _ = s.a.FlushPending() }

// NewMap fills guarded state before the map is shared.
//
//rma:init
func NewMap(k int) *Map {
	m := &Map{shards: make([]cell, k)}
	for i := range m.shards {
		m.shards[i].a = &engine{}
	}
	return m
}

// BadNew forgets the //rma:init annotation.
func BadNew(k int) *Map {
	m := &Map{shards: make([]cell, k)}
	m.shards[0].a = &engine{} // want `access to m\.shards\[0\]\.a without holding m\.shards\[0\]\.mu`
	return m
}

// BadUnlocked reads shard state without the lock.
func (m *Map) BadUnlocked(i int) int {
	s := &m.shards[i]
	return s.a.Size() // want `access to s\.a without holding s\.mu`
}

// GoodLocked reads shard state under the lock.
func (m *Map) GoodLocked(i int) int {
	s := &m.shards[i]
	s.mu.Lock()
	n := s.a.Size()
	s.mu.Unlock()
	return n
}

// GoodEarlyUnlock unlocks on an early-return path; the fall-through
// path still holds the lock.
func (m *Map) GoodEarlyUnlock(i, j int) int {
	s := &m.shards[i]
	s.mu.Lock()
	if j < s.a.Size() {
		n := s.a.Size()
		s.mu.Unlock()
		return n
	}
	n := s.a.Size()
	s.mu.Unlock()
	return n
}

// BadInversion locks shard 1 while holding shard 2.
func (m *Map) BadInversion() {
	s2 := &m.shards[2]
	s1 := &m.shards[1]
	s2.mu.Lock()
	s1.mu.Lock() // want `out of ascending index order`
	s1.mu.Unlock()
	s2.mu.Unlock()
}

// GoodAscending holds two shard locks in ascending index order.
func (m *Map) GoodAscending() {
	s1 := &m.shards[1]
	s2 := &m.shards[2]
	s1.mu.Lock()
	s2.mu.Lock()
	s2.mu.Unlock()
	s1.mu.Unlock()
}

// BadUnprovable nests two shard locks with run-time indices.
func (m *Map) BadUnprovable(i, j int) {
	si := &m.shards[i]
	sj := &m.shards[j]
	si.mu.Lock()
	sj.mu.Lock() // want `unprovable ascending order`
	sj.mu.Unlock()
	si.mu.Unlock()
}

// BadSnapshotNoFlush performs an ordered read without draining
// deferred rebalance work first.
func (m *Map) BadSnapshotNoFlush(i int) int {
	s := &m.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.IterAscend(0, 10) // want `snapshot read s\.a\.IterAscend without flush-on-snapshot`
}

// GoodSnapshotHelper flushes through the helper before the ordered read.
func (m *Map) GoodSnapshotHelper(i int) int {
	s := &m.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	flushDeferred(s)
	return s.a.IterAscend(0, 10)
}

// GoodSnapshotDirect flushes in place before the ordered read.
func (m *Map) GoodSnapshotDirect(i int) (int, int64) {
	s := &m.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.a.FlushPending()
	return s.a.Sum(0, 100)
}

// BadPassUnlocked hands the shard to a helper without its lock.
func (m *Map) BadPassUnlocked(i int) {
	s := &m.shards[i]
	flushDeferred(s) // want `guarded shard s passed to call without holding s\.mu`
}
