// Package fixture is lockcheck's golden test: a miniature of the shard
// package's locking discipline, with seeded violations annotated by
// want comments.
package fixture

import (
	"sync"
	"sync/atomic"
)

// engine stands in for core.Array.
type engine struct{ n int }

func (e *engine) Size() int                     { return e.n }
func (e *engine) FlushPending() error           { return nil }
func (e *engine) IterAscend(lo, hi int64) int   { return int(hi - lo) }
func (e *engine) Sum(lo, hi int64) (int, int64) { return 0, 0 }
func (e *engine) ReadSize() (int, bool)         { return e.n, true }

// gate stands in for vmem.EpochGate.
type gate struct{ n atomic.Int64 }

func (g *gate) Enter() uint32 { g.n.Add(1); return 0 }
func (g *gate) Exit(p uint32) { g.n.Add(-1) }

// cell pairs a shard lock with its guarded engine, seqlock version and
// epoch gate.
type cell struct {
	mu   sync.Mutex
	a    *engine
	ver  atomic.Uint64
	gate *gate
}

func (s *cell) readLock()   {}
func (s *cell) readUnlock() {}

// Map is the sharded container.
type Map struct {
	shards []cell
}

// flushDeferred drains deferred work; must run under the shard's lock.
func flushDeferred(s *cell) { _ = s.a.FlushPending() }

// NewMap fills guarded state before the map is shared.
//
//rma:init
func NewMap(k int) *Map {
	m := &Map{shards: make([]cell, k)}
	for i := range m.shards {
		m.shards[i].a = &engine{}
	}
	return m
}

// BadNew forgets the //rma:init annotation.
func BadNew(k int) *Map {
	m := &Map{shards: make([]cell, k)}
	m.shards[0].a = &engine{} // want `access to m\.shards\[0\]\.a without holding m\.shards\[0\]\.mu`
	return m
}

// BadUnlocked reads shard state without the lock.
func (m *Map) BadUnlocked(i int) int {
	s := &m.shards[i]
	return s.a.Size() // want `access to s\.a without holding s\.mu`
}

// GoodLocked reads shard state under the lock.
func (m *Map) GoodLocked(i int) int {
	s := &m.shards[i]
	s.mu.Lock()
	n := s.a.Size()
	s.mu.Unlock()
	return n
}

// GoodEarlyUnlock unlocks on an early-return path; the fall-through
// path still holds the lock.
func (m *Map) GoodEarlyUnlock(i, j int) int {
	s := &m.shards[i]
	s.mu.Lock()
	if j < s.a.Size() {
		n := s.a.Size()
		s.mu.Unlock()
		return n
	}
	n := s.a.Size()
	s.mu.Unlock()
	return n
}

// BadInversion locks shard 1 while holding shard 2.
func (m *Map) BadInversion() {
	s2 := &m.shards[2]
	s1 := &m.shards[1]
	s2.mu.Lock()
	s1.mu.Lock() // want `out of ascending index order`
	s1.mu.Unlock()
	s2.mu.Unlock()
}

// GoodAscending holds two shard locks in ascending index order.
func (m *Map) GoodAscending() {
	s1 := &m.shards[1]
	s2 := &m.shards[2]
	s1.mu.Lock()
	s2.mu.Lock()
	s2.mu.Unlock()
	s1.mu.Unlock()
}

// BadUnprovable nests two shard locks with run-time indices.
func (m *Map) BadUnprovable(i, j int) {
	si := &m.shards[i]
	sj := &m.shards[j]
	si.mu.Lock()
	sj.mu.Lock() // want `unprovable ascending order`
	sj.mu.Unlock()
	si.mu.Unlock()
}

// BadSnapshotNoFlush performs an ordered read without draining
// deferred rebalance work first.
func (m *Map) BadSnapshotNoFlush(i int) int {
	s := &m.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.a.IterAscend(0, 10) // want `snapshot read s\.a\.IterAscend without flush-on-snapshot`
}

// GoodSnapshotHelper flushes through the helper before the ordered read.
func (m *Map) GoodSnapshotHelper(i int) int {
	s := &m.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	flushDeferred(s)
	return s.a.IterAscend(0, 10)
}

// GoodSnapshotDirect flushes in place before the ordered read.
func (m *Map) GoodSnapshotDirect(i int) (int, int64) {
	s := &m.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.a.FlushPending()
	return s.a.Sum(0, 100)
}

// BadPassUnlocked hands the shard to a helper without its lock.
func (m *Map) BadPassUnlocked(i int) {
	s := &m.shards[i]
	flushDeferred(s) // want `guarded shard s passed to call without holding s\.mu`
}

// BadSeqlockMissing reads engine state lock-free without the directive.
func (m *Map) BadSeqlockMissing(i int) int {
	s := &m.shards[i]
	n, _ := s.a.ReadSize() // want `access to s\.a without holding s\.mu`
	return n
}

// GoodSeqlock is the canonical verified retry loop: version capture,
// optimistic read, revalidation — the //rma:seqlock blessing applies.
//
//rma:seqlock
func (m *Map) GoodSeqlock(i int) (int, bool) {
	s := &m.shards[i]
	for attempt := 0; attempt < 4; attempt++ {
		p := s.gate.Enter()
		v1 := s.ver.Load()
		if v1&1 == 0 {
			s.readLock()
			n, valid := s.a.ReadSize()
			s.readUnlock()
			if valid && s.ver.Load() == v1 {
				s.gate.Exit(p)
				return n, true
			}
		}
		s.gate.Exit(p)
	}
	return 0, false
}

// GoodSeqlockControlOnly touches only the seqlock control fields, so no
// retry shape is demanded.
//
//rma:seqlock
func (m *Map) GoodSeqlockControlOnly(vec []uint64, lo int) {
	for i := range vec {
		vec[i] = m.shards[lo+i].ver.Load()
	}
}

// BadSeqlockNoShape claims the blessing without the retry loop.
//
//rma:seqlock
func (m *Map) BadSeqlockNoShape(i int) int { // want `reads guarded state without the verified retry shape`
	s := &m.shards[i]
	n, _ := s.a.ReadSize()
	return n
}

// BadSeqlockWrite mutates guarded state from a reader.
//
//rma:seqlock
func (m *Map) BadSeqlockWrite(i int) (int, bool) {
	s := &m.shards[i]
	for attempt := 0; attempt < 4; attempt++ {
		v1 := s.ver.Load()
		n, valid := s.a.ReadSize()
		s.a = nil // want `//rma:seqlock function writes s\.a`
		if valid && s.ver.Load() == v1 {
			return n, true
		}
	}
	return 0, false
}

// BadSeqlockMu takes the shard mutex inside a seqlock reader.
//
//rma:seqlock
func (m *Map) BadSeqlockMu(i int) (int, bool) {
	s := &m.shards[i]
	for attempt := 0; attempt < 4; attempt++ {
		v1 := s.ver.Load()
		s.mu.Lock() // want `calls s\.mu\.Lock`
		n, valid := s.a.ReadSize()
		s.mu.Unlock() // want `calls s\.mu\.Unlock`
		if valid && s.ver.Load() == v1 {
			return n, true
		}
	}
	return 0, false
}

// BadSeqlockEscape hands the guarded cell to a helper from inside the
// blessed region.
//
//rma:seqlock
func (m *Map) BadSeqlockEscape(i int) (int, bool) {
	s := &m.shards[i]
	for attempt := 0; attempt < 4; attempt++ {
		v1 := s.ver.Load()
		flushDeferred(s) // want `guarded shard s passed out of //rma:seqlock function`
		n, valid := s.a.ReadSize()
		if valid && s.ver.Load() == v1 {
			return n, true
		}
	}
	return 0, false
}
