// Package lockcheck enforces the shard layer's locking discipline (the
// contract CONCURRENCY.md states in prose):
//
//   - Guarded state — any field of a struct that pairs a mutex named mu
//     with the data it protects (internal/shard's cell) — may only be
//     touched while that struct's mu is held. Taking the struct's
//     address and locking its mu are, of course, allowed first.
//   - A guarded struct passed to a helper function must already be
//     locked by the caller; inside the helper the parameter is assumed
//     locked (the flushDeferred(s *cell) convention).
//   - Nested acquisition of two shard locks must be provably in
//     ascending shard-index order; anything the analyzer cannot prove
//     ascending is reported (the repo's contract is stronger still:
//     current code never holds two shard locks at once).
//   - Ordered snapshot reads (IterAscend, IterDescend, ScanRange, Sum)
//     on a guarded engine must be preceded, in the same critical
//     section, by a flush of deferred rebalance work — either a direct
//     FlushPending call or a helper like flushDeferred that performs
//     one (flush-on-snapshot).
//   - Seqlock read paths carry //rma:seqlock: unguarded reads of
//     guarded state are blessed there, but only when the function has
//     the verified retry shape — a for loop and at least two
//     <cell>.ver.Load() calls (version capture + revalidation). Even
//     then, writes to guarded state, direct mu acquisition, and passing
//     guarded values to other functions stay findings: the blessing
//     covers exactly the optimistic-read idiom, nothing else.
//
// Constructors that fill guarded state before the value is shared carry
// the //rma:init directive and are skipped.
//
// The analysis is a linear, statement-ordered scan per function — not a
// full dataflow lattice. Branches whose body ends in return/break/
// continue/panic do not leak their lock-state changes into the
// fall-through path, which is exactly enough precision for the shard
// package's lock/unlock shapes.
package lockcheck

import (
	"go/ast"
	"go/constant"
	"go/types"

	"rma/internal/analyzers/rig"
)

// Analyzer is the lockcheck analysis.
var Analyzer = &rig.Analyzer{
	Name: "lockcheck",
	Doc:  "enforce per-shard lock discipline, ascending lock order, and flush-on-snapshot",
	Run:  run,
}

// snapshotMethods are the ordered reads that require a preceding flush
// of deferred rebalance work in the same critical section.
var snapshotMethods = map[string]bool{
	"IterAscend":  true,
	"IterDescend": true,
	"ScanRange":   true,
	"Sum":         true,
}

func run(pass *rig.Pass) error {
	guarded := collectGuarded(pass.Module)
	if len(guarded) == 0 {
		return nil
	}
	c := &checker{
		pass:      pass,
		guarded:   guarded,
		flushMemo: make(map[*types.Func]map[int]bool),
	}
	for _, pkg := range pass.Module.Sorted {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if rig.HasDirective(fd, rig.DirInit) {
					continue
				}
				if rig.HasDirective(fd, rig.DirSeqlock) {
					c.checkSeqlock(pkg, fd)
					continue
				}
				c.checkFunc(pkg, fd)
			}
		}
	}
	return nil
}

// collectGuarded finds every named struct type in the module with a
// field named exactly "mu" of type sync.Mutex.
func collectGuarded(m *rig.Module) map[*types.TypeName]bool {
	guarded := make(map[*types.TypeName]bool)
	for _, pkg := range m.Sorted {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() != "mu" {
					continue
				}
				ft, ok := f.Type().(*types.Named)
				if ok && ft.Obj().Name() == "Mutex" &&
					ft.Obj().Pkg() != nil && ft.Obj().Pkg().Path() == "sync" {
					guarded[tn] = true
				}
			}
		}
	}
	return guarded
}

// heldLock is one currently-held shard lock, with its container and
// index expression when the base was formed as &container[index].
type heldLock struct {
	base      string
	container string
	index     ast.Expr
}

// aliasInfo records that a local variable was bound to &container[index].
type aliasInfo struct {
	container string
	index     ast.Expr
}

// funcState is the linear scan's lock state at one program point.
type funcState struct {
	locked  map[string]bool
	flushed map[string]bool
	held    []heldLock
	alias   map[string]aliasInfo
}

func newState() *funcState {
	return &funcState{
		locked:  make(map[string]bool),
		flushed: make(map[string]bool),
		alias:   make(map[string]aliasInfo),
	}
}

func (st *funcState) clone() *funcState {
	c := newState()
	for k, v := range st.locked {
		c.locked[k] = v
	}
	for k, v := range st.flushed {
		c.flushed[k] = v
	}
	for k, v := range st.alias {
		c.alias[k] = v
	}
	c.held = append(c.held, st.held...)
	return c
}

type checker struct {
	pass      *rig.Pass
	guarded   map[*types.TypeName]bool
	flushMemo map[*types.Func]map[int]bool

	pkg *rig.Package
	st  *funcState
}

// checkFunc scans one function. Parameters (and a receiver) of
// pointer-to-guarded type are assumed locked by the caller — the
// flushDeferred(s *cell) convention; the matching caller-side rule
// requires the lock at every call site.
func (c *checker) checkFunc(pkg *rig.Package, fd *ast.FuncDecl) {
	c.pkg = pkg
	c.st = newState()
	fields := []*ast.Field{}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, fld := range fields {
		for _, name := range fld.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && c.isGuarded(obj.Type()) {
				c.st.locked[name.Name] = true
			}
		}
	}
	c.stmts(fd.Body.List)
}

// isGuarded reports whether t (possibly behind a pointer) is a guarded
// struct type.
func (c *checker) isGuarded(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return c.guarded[named.Obj()]
}

func (c *checker) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.expr(r)
		}
		c.recordAliases(s)
		for _, l := range s.Lhs {
			c.expr(l)
		}
	case *ast.DeferStmt:
		if base, op := c.lockOp(s.Call); base != nil && op == "Unlock" {
			return // deferred unlock: the lock stays held to function end
		}
		c.expr(s.Call)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		saved := c.st.clone()
		c.stmts(s.Body.List)
		if terminates(s.Body) {
			c.st = saved
		}
		if s.Else != nil {
			savedElse := c.st.clone()
			c.stmt(s.Else)
			if b, ok := s.Else.(*ast.BlockStmt); ok && terminates(b) {
				c.st = savedElse
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		c.stmts(s.Body.List)
		if s.Post != nil {
			c.stmt(s.Post)
		}
	case *ast.RangeStmt:
		c.expr(s.X)
		c.stmts(s.Body.List)
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		c.clauses(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.clauses(s.Body)
	case *ast.SelectStmt:
		c.clauses(s.Body)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.expr(r)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.GoStmt:
		c.expr(s.Call)
	case *ast.SendStmt:
		c.expr(s.Chan)
		c.expr(s.Value)
	case *ast.IncDecStmt:
		c.expr(s.X)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	}
}

// clauses scans switch/select clause bodies as alternatives: state
// changes inside one clause never leak into the next or the fall-through.
func (c *checker) clauses(body *ast.BlockStmt) {
	for _, cl := range body.List {
		saved := c.st.clone()
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				c.expr(e)
			}
			c.stmts(cl.Body)
		case *ast.CommClause:
			if cl.Comm != nil {
				c.stmt(cl.Comm)
			}
			c.stmts(cl.Body)
		}
		c.st = saved
	}
}

// terminates reports whether a block always leaves the enclosing path
// (return, break/continue/goto, or panic).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// recordAliases tracks s := &container[index] bindings so lock-order
// checks can compare shard indices. Rebinding a name discards any lock
// state the old binding carried.
func (c *checker) recordAliases(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		un, ok := ast.Unparen(as.Rhs[i]).(*ast.UnaryExpr)
		if !ok || un.Op.String() != "&" {
			continue
		}
		ix, ok := ast.Unparen(un.X).(*ast.IndexExpr)
		if !ok || !c.isGuarded(c.typeOf(un.X)) {
			continue
		}
		c.st.alias[id.Name] = aliasInfo{
			container: types.ExprString(ix.X),
			index:     ix.Index,
		}
		delete(c.st.locked, id.Name)
		delete(c.st.flushed, id.Name)
		c.dropHeld(id.Name)
	}
}

func (c *checker) dropHeld(base string) {
	held := c.st.held[:0]
	for _, h := range c.st.held {
		if h.base != base {
			held = append(held, h)
		}
	}
	c.st.held = held
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// expr scans one expression in syntax order, firing lock events and
// access checks.
func (c *checker) expr(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(n)
		case *ast.SelectorExpr:
			c.access(n)
		case *ast.FuncLit:
			// A function literal's body runs at some later time; analyze
			// it with no locks assumed held.
			saved := c.st
			c.st = newState()
			c.stmts(n.Body.List)
			c.st = saved
			return false
		}
		return true
	})
}

// lockOp matches <base>.mu.Lock() / <base>.mu.Unlock() on a guarded
// base, returning the base expression and the operation name.
func (c *checker) lockOp(call *ast.CallExpr) (ast.Expr, string) {
	outer, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (outer.Sel.Name != "Lock" && outer.Sel.Name != "Unlock") {
		return nil, ""
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "mu" || !c.isGuarded(c.typeOf(inner.X)) {
		return nil, ""
	}
	return inner.X, outer.Sel.Name
}

func (c *checker) call(call *ast.CallExpr) {
	if base, op := c.lockOp(call); base != nil {
		if op == "Lock" {
			c.lockEvent(base, call)
		} else {
			c.unlockEvent(base)
		}
		return
	}

	// <base>.<field>.Method(...) on a guarded base: flush bookkeeping
	// and the flush-on-snapshot rule.
	if outer, ok := call.Fun.(*ast.SelectorExpr); ok {
		if inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr); ok &&
			inner.Sel.Name != "mu" && c.isGuarded(c.typeOf(inner.X)) {
			base := types.ExprString(inner.X)
			switch {
			case outer.Sel.Name == "FlushPending":
				c.st.flushed[base] = true
			case snapshotMethods[outer.Sel.Name]:
				if !c.st.flushed[base] {
					c.pass.Reportf(call.Pos(),
						"snapshot read %s.%s.%s without flush-on-snapshot: flush deferred work (FlushPending or a flushing helper) in the same critical section first",
						base, inner.Sel.Name, outer.Sel.Name)
				}
			}
		}
	}

	// Guarded values passed as arguments must already be locked; the
	// callee may flush them on the caller's behalf (flushDeferred).
	callee := c.calleeFunc(call)
	for i, arg := range call.Args {
		if !c.isGuarded(c.typeOf(arg)) {
			continue
		}
		base := types.ExprString(arg)
		if !c.st.locked[base] {
			c.pass.Reportf(arg.Pos(),
				"guarded shard %s passed to call without holding %s.mu", base, base)
		}
		if callee != nil && c.flushesParam(callee)[i] {
			c.st.flushed[base] = true
		}
	}
}

// calleeFunc resolves a call to its static function object, or nil for
// dynamic calls.
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := c.pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// flushesParam reports, per parameter index, whether fn flushes that
// guarded parameter (its body contains <param>.<field>.FlushPending()).
func (c *checker) flushesParam(fn *types.Func) map[int]bool {
	if m, ok := c.flushMemo[fn]; ok {
		return m
	}
	flushes := make(map[int]bool)
	c.flushMemo[fn] = flushes
	fd := c.pass.Module.FuncDecl(fn)
	if fd == nil || fd.Body == nil || fd.Type.Params == nil {
		return flushes
	}
	paramIdx := make(map[string]int)
	idx := 0
	for _, fld := range fd.Type.Params.List {
		for _, name := range fld.Names {
			paramIdx[name.Name] = idx
			idx++
		}
		if len(fld.Names) == 0 {
			idx++
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		outer, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || outer.Sel.Name != "FlushPending" {
			return true
		}
		inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(inner.X).(*ast.Ident); ok {
			if i, ok := paramIdx[id.Name]; ok {
				flushes[i] = true
			}
		}
		return true
	})
	return flushes
}

// seqlockControl names the guarded-cell fields a seqlock reader touches
// to synchronize — the version word, the epoch gate, and the race-mode
// read-lock shims. Reads of these never require the retry shape, so
// small helpers (capture a version vector, probe the gate) stay legal
// under //rma:seqlock without a spurious shape demand.
var seqlockControl = map[string]bool{
	"ver":        true,
	"gate":       true,
	"readLock":   true,
	"readUnlock": true,
}

// checkSeqlock validates one //rma:seqlock function. The directive
// blesses unguarded READS of guarded state, but only when the function
// carries the verified retry shape: at least one for loop, and at least
// two <cell>.ver.Load() calls (the version capture before the optimistic
// reads and the revalidation after them). Functions that touch only the
// seqlock control fields (ver, gate, readLock, readUnlock) are exempt
// from the shape demand. Writes to guarded state, direct mu
// acquisition, and passing guarded values to calls are reported
// regardless — the blessing covers the optimistic-read idiom only.
func (c *checker) checkSeqlock(pkg *rig.Package, fd *ast.FuncDecl) {
	c.pkg = pkg
	c.st = newState()
	loops, verLoads, dataReads := 0, 0, 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops++
		case *ast.CallExpr:
			if c.isVerLoad(n) {
				verLoads++
			}
		case *ast.SelectorExpr:
			if !seqlockControl[n.Sel.Name] && n.Sel.Name != "mu" &&
				c.isGuarded(c.typeOf(n.X)) {
				dataReads++
			}
		}
		return true
	})
	if dataReads > 0 && (loops == 0 || verLoads < 2) {
		c.pass.Reportf(fd.Pos(),
			"//rma:seqlock function %s reads guarded state without the verified retry shape: need a for loop with a version capture and a revalidation (>= 2 .ver.Load() calls on the guarded cell)",
			fd.Name.Name)
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				c.seqlockWrite(l)
			}
		case *ast.IncDecStmt:
			c.seqlockWrite(n.X)
		case *ast.CallExpr:
			if base, op := c.lockOp(n); base != nil {
				c.pass.Reportf(n.Pos(),
					"//rma:seqlock function %s calls %s.mu.%s: seqlock readers synchronize through ver/gate/readLock, never the shard mutex",
					fd.Name.Name, types.ExprString(base), op)
			}
			for _, arg := range n.Args {
				if c.isGuarded(c.typeOf(arg)) {
					c.pass.Reportf(arg.Pos(),
						"guarded shard %s passed out of //rma:seqlock function %s: the seqlock blessing does not extend across calls",
						types.ExprString(arg), fd.Name.Name)
				}
			}
		}
		return true
	})
}

// seqlockWrite reports a store to guarded state from a seqlock reader.
func (c *checker) seqlockWrite(e ast.Expr) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !c.isGuarded(c.typeOf(sel.X)) {
		return
	}
	c.pass.Reportf(e.Pos(),
		"//rma:seqlock function writes %s.%s: the lock-free read path must be read-only on guarded state",
		types.ExprString(sel.X), sel.Sel.Name)
}

// isVerLoad matches <guarded>.ver.Load() — one version capture or
// revalidation of the seqlock retry shape.
func (c *checker) isVerLoad(call *ast.CallExpr) bool {
	outer, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || outer.Sel.Name != "Load" {
		return false
	}
	inner, ok := ast.Unparen(outer.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "ver" {
		return false
	}
	return c.isGuarded(c.typeOf(inner.X))
}

// access checks one selector: any field of a guarded struct other than
// mu requires the struct's lock.
func (c *checker) access(sel *ast.SelectorExpr) {
	if sel.Sel.Name == "mu" {
		return
	}
	if !c.isGuarded(c.typeOf(sel.X)) {
		return
	}
	base := types.ExprString(sel.X)
	if !c.st.locked[base] {
		c.pass.Reportf(sel.Pos(),
			"access to %s.%s without holding %s.mu", base, sel.Sel.Name, base)
	}
}

// lockEvent records an acquisition and checks nested-lock ordering.
func (c *checker) lockEvent(baseExpr ast.Expr, call *ast.CallExpr) {
	base := types.ExprString(baseExpr)
	container, index := c.resolveShard(baseExpr)
	for _, h := range c.st.held {
		if h.container != "" && container != "" && h.container == container {
			hi, ok1 := c.constIndex(h.index)
			ni, ok2 := c.constIndex(index)
			if ok1 && ok2 {
				if ni <= hi {
					c.pass.Reportf(call.Pos(),
						"shard locks acquired out of ascending index order: %s[%d] while holding %s[%d]",
						container, ni, container, hi)
				}
				continue
			}
		}
		c.pass.Reportf(call.Pos(),
			"nested shard lock acquisition with unprovable ascending order: locking %s while holding %s",
			base, h.base)
		break
	}
	c.st.locked[base] = true
	c.st.held = append(c.st.held, heldLock{base: base, container: container, index: index})
}

func (c *checker) unlockEvent(baseExpr ast.Expr) {
	base := types.ExprString(baseExpr)
	delete(c.st.locked, base)
	delete(c.st.flushed, base)
	c.dropHeld(base)
}

// resolveShard maps a lock base to its (container, index): either a
// tracked alias (s := &m.shards[i]) or a direct m.shards[i] expression.
func (c *checker) resolveShard(baseExpr ast.Expr) (string, ast.Expr) {
	switch e := ast.Unparen(baseExpr).(type) {
	case *ast.Ident:
		if a, ok := c.st.alias[e.Name]; ok {
			return a.container, a.index
		}
	case *ast.IndexExpr:
		return types.ExprString(e.X), e.Index
	}
	return "", nil
}

// constIndex evaluates an index expression to a compile-time integer.
func (c *checker) constIndex(e ast.Expr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	tv, ok := c.pkg.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
