package lockcheck_test

import (
	"testing"

	"rma/internal/analyzers/lockcheck"
	"rma/internal/analyzers/rigtest"
)

func TestLockcheck(t *testing.T) {
	rigtest.Run(t, "testdata/src/fixture", "fix/lockcheck", lockcheck.Analyzer)
}
