// Package unsafecheck fences the repo's unsafe memory machinery
// (MEMORY contract: rewiring is the only place raw memory appears):
//
//   - Confinement: importing unsafe — or touching reflect's
//     SliceHeader/StringHeader — is allowed only in internal/vmem (the
//     page allocator and its mmap rewiring backend) and in
//     internal/core's swar.go (word-packed probe kernels). Everywhere
//     else the module works with ordinary slices.
//
//   - Page lifecycle: a slice obtained from a vmem object (Page, Slots,
//     AcquireSpare, AcquireSpares) is a window onto virtual memory that
//     Swap may rewire to different physical pages. Such a slice must
//     not be used after a Swap on the same vmem object — except as an
//     argument to Swap or ReleaseSpare, which is exactly the
//     fill-then-swap idiom of the rewired rebalance paths. Deriving a
//     fresh slice after the Swap is, of course, fine.
//
// The lifecycle scan is linear per function (source order); state is
// keyed by variable object and owning expression, so a.keys and a.vals
// pages invalidate independently.
package unsafecheck

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"rma/internal/analyzers/rig"
)

// Analyzer is the unsafecheck analysis.
var Analyzer = &rig.Analyzer{
	Name: "unsafecheck",
	Doc:  "confine unsafe to vmem/swar and enforce the page fill-then-swap lifecycle",
	Run:  run,
}

// derivingMethods return page slices tied to the receiver's mapping.
var derivingMethods = map[string]bool{
	"Page": true, "Slots": true, "AcquireSpare": true, "AcquireSpares": true,
}

func run(pass *rig.Pass) error {
	for _, pkg := range pass.Module.Sorted {
		for _, file := range pkg.Files {
			checkConfinement(pass, pkg, file)
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					(&fnChecker{pass: pass, pkg: pkg,
						derived: make(map[types.Object]string),
						stale:   make(map[types.Object]bool),
					}).check(fd)
				}
			}
		}
	}
	return nil
}

// allowedUnsafe reports whether the file may touch raw memory.
func allowedUnsafe(pkgPath, filename string) bool {
	if strings.HasSuffix(pkgPath, "internal/vmem") {
		return true
	}
	return strings.HasSuffix(pkgPath, "internal/core") && filepath.Base(filename) == "swar.go"
}

func checkConfinement(pass *rig.Pass, pkg *rig.Package, file *ast.File) {
	filename := pass.Module.Fset.Position(file.Pos()).Filename
	if allowedUnsafe(pkg.Path, filename) {
		return
	}
	for _, imp := range file.Imports {
		if imp.Path.Value == `"unsafe"` {
			pass.Reportf(imp.Pos(),
				"unsafe is confined to internal/vmem and internal/core/swar.go (importing package %s)", pkg.Path)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := pkg.Info.Uses[sel.Sel].(*types.TypeName); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "reflect" &&
			(obj.Name() == "SliceHeader" || obj.Name() == "StringHeader") {
			pass.Reportf(sel.Pos(),
				"reflect.%s is confined to internal/vmem and internal/core/swar.go", obj.Name())
		}
		return true
	})
}

// fnChecker runs the page-lifecycle scan over one function.
type fnChecker struct {
	pass *rig.Pass
	pkg  *rig.Package
	// derived maps a variable to the vmem owner expression its page
	// slice came from; stale marks those invalidated by a Swap.
	derived map[types.Object]string
	stale   map[types.Object]bool
}

func (c *fnChecker) check(fd *ast.FuncDecl) {
	c.walkNode(fd.Body)
}

// vmemReceiver returns the printed receiver expression of a method call
// on a vmem-package type, or "" when the call is something else.
func (c *fnChecker) vmemReceiver(call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	t := c.typeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil ||
		!strings.HasSuffix(named.Obj().Pkg().Path(), "internal/vmem") {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

func (c *fnChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// walkNode traverses in source order, intercepting assignments (to
// record derivations) and Swap/ReleaseSpare calls (to exempt their
// arguments and invalidate derived slices).
func (c *fnChecker) walkNode(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
			return false
		case *ast.CallExpr:
			return c.call(n)
		case *ast.Ident:
			c.use(n)
		}
		return true
	})
}

func (c *fnChecker) assign(as *ast.AssignStmt) {
	for _, r := range as.Rhs {
		c.walkNode(r)
	}
	// Pair LHS with RHS in the 1:1 form; the multi-value form
	// (v, err := p.AcquireSpares(n)) pairs lhs[0] with the one call.
	for i, lhs := range as.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			c.walkNode(lhs) // e.g. x.f = ... — scan for stale uses
			continue
		}
		if id.Name == "_" {
			continue
		}
		obj := c.pkg.Info.Defs[id]
		if obj == nil {
			obj = c.pkg.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		var rhs ast.Expr
		switch {
		case len(as.Rhs) == len(as.Lhs):
			rhs = as.Rhs[i]
		case len(as.Rhs) == 1 && i == 0:
			rhs = as.Rhs[0]
		}
		// Any rebinding clears old page-slice state for the variable.
		delete(c.derived, obj)
		delete(c.stale, obj)
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if owner, m := c.vmemReceiver(call); owner != "" && derivingMethods[m] {
				c.derived[obj] = owner
			}
		}
	}
}

func (c *fnChecker) call(call *ast.CallExpr) bool {
	owner, m := c.vmemReceiver(call)
	if owner == "" {
		return true
	}
	switch m {
	case "Swap":
		// Arguments are the fill-then-swap handoff: exempt from the
		// stale check, and the swap invalidates everything derived
		// from this owner.
		c.walkReceiverOnly(call)
		for obj, o := range c.derived {
			if o == owner {
				c.stale[obj] = true
			}
		}
		return false
	case "ReleaseSpare":
		c.walkReceiverOnly(call)
		return false
	}
	return true
}

// walkReceiverOnly scans the receiver chain of a Swap/ReleaseSpare call
// but not its arguments.
func (c *fnChecker) walkReceiverOnly(call *ast.CallExpr) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		c.walkNode(sel.X)
	}
}

func (c *fnChecker) use(id *ast.Ident) {
	obj := c.pkg.Info.Uses[id]
	if obj == nil || !c.stale[obj] {
		return
	}
	c.pass.Reportf(id.Pos(),
		"page slice %s retained across %s.Swap: rewiring may have remapped it (re-derive with Page/Slots after the swap)",
		id.Name, c.derived[obj])
}
