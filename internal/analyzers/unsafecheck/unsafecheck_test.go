package unsafecheck_test

import (
	"testing"

	"rma/internal/analyzers/rigtest"
	"rma/internal/analyzers/unsafecheck"
)

func TestConfinement(t *testing.T) {
	rigtest.Run(t, "testdata/src/confine", "fix/confine", unsafecheck.Analyzer)
}

func TestLifecycle(t *testing.T) {
	rigtest.Run(t, "testdata/src/lifecycle", "fix/lifecycle", unsafecheck.Analyzer)
}
