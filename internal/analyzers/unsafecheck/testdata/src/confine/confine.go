// Package fixture violates unsafe confinement: it is not internal/vmem
// and not internal/core/swar.go, yet reaches for raw memory.
package fixture

import "unsafe" // want `unsafe is confined to internal/vmem and internal/core/swar\.go`

// Size uses the import so the fixture compiles.
func Size() uintptr { return unsafe.Sizeof(int64(0)) }
