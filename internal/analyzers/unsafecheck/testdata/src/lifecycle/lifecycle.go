// Package fixture exercises the page fill-then-swap lifecycle against
// the real vmem types: one seeded leak, and the blessed idioms.
package fixture

import "rma/internal/vmem"

// Leak retains a page slice across a swap on the same object.
func Leak(p *vmem.Pages, sp []int64) int64 {
	pg := p.Page(0)
	p.Swap(0, sp)
	return pg[0] // want `page slice pg retained across p\.Swap`
}

// FillThenSwap is the rewired-rebalance idiom: fill the spare, then
// hand it over as the Swap argument.
func FillThenSwap(p *vmem.Pages) error {
	sp, err := p.AcquireSpare()
	if err != nil {
		return err
	}
	for i := range sp {
		sp[i] = int64(i)
	}
	p.Swap(0, sp)
	return nil
}

// ReDerive takes a fresh window after the swap — always legal.
func ReDerive(p *vmem.Pages, sp []int64) int64 {
	pg := p.Page(0)
	_ = pg[0]
	p.Swap(0, sp)
	pg = p.Page(0)
	return pg[0]
}

// IndependentOwners shows that a swap on one Pages object does not
// invalidate slices derived from another.
func IndependentOwners(keys, vals *vmem.Pages, sp []int64) int64 {
	vpg := vals.Page(0)
	keys.Swap(0, sp)
	return vpg[0]
}

// SwapLoop mirrors redistributeRewired: every post-swap touch of the
// spares happens as a Swap/ReleaseSpare argument, which is exempt.
func SwapLoop(p *vmem.Pages, n int) error {
	spares, err := p.AcquireSpares(n)
	if err != nil {
		return err
	}
	for i := 0; i < n-1; i++ {
		p.Swap(i, spares[i])
	}
	p.ReleaseSpare(spares[n-1])
	return nil
}

// LoopLeak reads a spare directly after the swaps began.
func LoopLeak(p *vmem.Pages, n int) (int64, error) {
	spares, err := p.AcquireSpares(n)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		p.Swap(i, spares[i])
	}
	return spares[0][0], nil // want `page slice spares retained across p\.Swap`
}
