// Package resp implements the subset of the Redis serialization
// protocol (RESP2) that rmaserve speaks: command arrays of bulk strings
// on the request side, the five RESP2 reply kinds on the response side.
//
// The implementation is allocation-conscious rather than allocation-
// free: each Reader owns one growable byte arena and one argument
// table, both reused across commands, so a steady-state connection
// parses pipelined commands without per-command allocations; the Writer
// formats integers into a fixed scratch buffer through strconv's append
// forms. The same Reader also parses replies (ReadReply), so the
// loadgen client and the differential tests reuse this package from the
// other end of the wire.
//
// Two request syntaxes are accepted, exactly like Redis:
//
//   - RESP arrays: *<n>\r\n followed by n bulk strings $<len>\r\n<data>\r\n
//   - inline commands: one line of whitespace-separated words (handy
//     for canned scripts and netcat debugging)
//
// Hard limits bound a malicious or corrupted stream: at most MaxArgs
// arguments per command and MaxBulk bytes per argument; violations
// surface as *ProtocolError, which the server answers once and then
// closes the connection.
package resp

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits. A command that exceeds either is a protocol error:
// the stream cannot be trusted after an oversized header, so the
// connection is expected to close.
const (
	// MaxArgs bounds the argument count of one command (MGET/MSET
	// batches included).
	MaxArgs = 1 << 16
	// MaxBulk bounds one argument's byte length. Keys and values are
	// 20-byte decimals; 1 MiB leaves generous room for ECHO payloads.
	MaxBulk = 1 << 20
	// maxInline bounds one inline command line.
	maxInline = 1 << 16
)

// ProtocolError is a malformed-stream error: after one of these the
// reader's position is unreliable and the connection should close.
type ProtocolError struct{ msg string }

func (e *ProtocolError) Error() string { return "resp: " + e.msg }

func protoErrf(format string, args ...any) error {
	return &ProtocolError{msg: fmt.Sprintf(format, args...)}
}

// IsProtocol reports whether err is a protocol-level error (as opposed
// to an I/O error such as a closed connection).
func IsProtocol(err error) bool {
	var pe *ProtocolError
	return errors.As(err, &pe)
}

// Reader parses RESP commands and replies from a buffered stream.
// Not safe for concurrent use.
type Reader struct {
	br *bufio.Reader
	// arena backs the argument bytes of the current command; args holds
	// slices into it. Both are reused: a returned command is valid only
	// until the next Read* call.
	arena []byte
	args  [][]byte
}

// NewReader wraps r. Buffer size fits a maximal coalescing window of
// small commands; larger bulks still work (bufio refills).
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64<<10)}
}

// Buffered returns the number of bytes already read off the wire and
// waiting to be parsed — the server's pipelining signal: more buffered
// bytes mean more commands can coalesce into the current batch before
// anything is flushed.
func (r *Reader) Buffered() int { return r.br.Buffered() }

// readLine reads up to CRLF (LF accepted, as in Redis), returning the
// line without its terminator.
func (r *Reader) readLine(limit int) ([]byte, error) {
	line, err := r.br.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, protoErrf("line exceeds %d bytes", limit)
		}
		return nil, err
	}
	n := len(line) - 1
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	if n > limit {
		return nil, protoErrf("line exceeds %d bytes", limit)
	}
	return line[:n], nil
}

// ReadCommand parses one command — a RESP array of bulk strings or an
// inline line — and returns its arguments. The returned slices alias
// the reader's arena and are valid only until the next Read* call;
// empty inline lines are skipped. io.EOF is returned untouched at a
// clean command boundary so servers can distinguish an orderly
// disconnect from a truncated command (io.ErrUnexpectedEOF).
func (r *Reader) ReadCommand() ([][]byte, error) {
	for {
		first, err := r.br.ReadByte()
		if err != nil {
			return nil, err // io.EOF at boundary is a clean close
		}
		if first != '*' {
			if err := r.br.UnreadByte(); err != nil {
				return nil, err
			}
			cmd, err := r.readInline()
			if err != nil {
				return nil, err
			}
			if len(cmd) == 0 {
				continue // blank line between inline commands
			}
			return cmd, nil
		}
		return r.readArray()
	}
}

// readInline splits one line into whitespace-separated arguments.
func (r *Reader) readInline() ([][]byte, error) {
	line, err := r.readLine(maxInline)
	if err != nil {
		return nil, err
	}
	r.arena = append(r.arena[:0], line...)
	r.args = r.args[:0]
	for f := range bytes.FieldsSeq(r.arena) {
		if len(r.args) == MaxArgs {
			return nil, protoErrf("command has more than %d arguments", MaxArgs)
		}
		r.args = append(r.args, f)
	}
	return r.args, nil
}

// readArray parses the body of a *<n> command ('*' already consumed).
func (r *Reader) readArray() ([][]byte, error) {
	n, err := r.readCount('*')
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxArgs {
		return nil, protoErrf("command has %d arguments (max %d)", n, MaxArgs)
	}
	r.arena = r.arena[:0]
	r.args = r.args[:0]
	// Offsets first: growing the arena mid-parse would invalidate
	// already-recorded slices, so record (start,end) and slice at the end.
	type span struct{ lo, hi int }
	var spans [16]span
	sp := spans[:0]
	for i := int64(0); i < n; i++ {
		prefix, err := r.br.ReadByte()
		if err != nil {
			return nil, unexpectedEOF(err)
		}
		if prefix != '$' {
			return nil, protoErrf("expected bulk string in command array, got %q", prefix)
		}
		bl, err := r.readCount('$')
		if err != nil {
			return nil, err
		}
		if bl < 0 || bl > MaxBulk {
			return nil, protoErrf("bulk length %d out of range (max %d)", bl, MaxBulk)
		}
		lo := len(r.arena)
		r.arena = grow(r.arena, int(bl))
		if _, err := io.ReadFull(r.br, r.arena[lo:lo+int(bl)]); err != nil {
			return nil, unexpectedEOF(err)
		}
		if err := r.expectCRLF(); err != nil {
			return nil, err
		}
		sp = append(sp, span{lo, lo + int(bl)})
	}
	for _, s := range sp {
		r.args = append(r.args, r.arena[s.lo:s.hi])
	}
	return r.args, nil
}

// readCount parses the integer after a type prefix up to CRLF.
func (r *Reader) readCount(prefix byte) (int64, error) {
	line, err := r.readLine(32)
	if err != nil {
		if err == io.EOF {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, err
	}
	n, ok := parseInt(line)
	if !ok {
		return 0, protoErrf("invalid length after %q: %q", prefix, line)
	}
	return n, nil
}

// expectCRLF consumes the terminator after a bulk payload.
func (r *Reader) expectCRLF() error {
	b, err := r.br.ReadByte()
	if err != nil {
		return unexpectedEOF(err)
	}
	if b == '\r' {
		if b, err = r.br.ReadByte(); err != nil {
			return unexpectedEOF(err)
		}
	}
	if b != '\n' {
		return protoErrf("bulk string not terminated by CRLF")
	}
	return nil
}

// grow extends b by n bytes, reusing capacity when it suffices so a
// steady-state connection parses without per-command allocations.
func grow(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, max(2*cap(b), len(b)+n))
	copy(nb, b)
	return nb
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// parseInt parses a decimal int64 without allocating (strconv.ParseInt
// would need a string). Rejects empty input, bare signs and overflow.
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	switch b[0] {
	case '-':
		neg, i = true, 1
	case '+':
		i = 1
	}
	if i == len(b) {
		return 0, false
	}
	var n uint64
	for ; i < len(b); i++ {
		d := b[i] - '0'
		if d > 9 {
			return 0, false
		}
		n = n*10 + uint64(d)
		if n > 1<<63 {
			return 0, false
		}
	}
	if neg {
		return -int64(n), true
	}
	if n == 1<<63 {
		return 0, false
	}
	return int64(n), true
}

// ParseInt is parseInt for callers outside the package (the server's
// key/value arguments).
func ParseInt(b []byte) (int64, bool) { return parseInt(b) }

// --- replies ------------------------------------------------------------------

// ReplyKind discriminates the RESP2 reply types.
type ReplyKind uint8

// The RESP2 reply kinds.
const (
	SimpleString ReplyKind = iota // +OK
	ErrorString                   // -ERR ...
	Integer                       // :42
	BulkString                    // $3\r\nfoo
	NullBulk                      // $-1
	Array                         // *n header; elements follow
)

// Reply is one parsed reply. For Array only N is meaningful and the
// caller reads the N element replies next (streaming, so a deep MGET
// response needs no recursive materialization). Bulk aliases the
// reader's arena: valid until the next Read* call.
type Reply struct {
	Kind ReplyKind
	Int  int64  // Integer value
	Bulk []byte // SimpleString, ErrorString and BulkString payload
	N    int    // Array element count
}

// ReadReply parses one reply (for Array: just the header).
func (r *Reader) ReadReply() (Reply, error) {
	prefix, err := r.br.ReadByte()
	if err != nil {
		return Reply{}, err
	}
	switch prefix {
	case '+', '-':
		line, err := r.readLine(MaxBulk)
		if err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		r.arena = append(r.arena[:0], line...)
		kind := SimpleString
		if prefix == '-' {
			kind = ErrorString
		}
		return Reply{Kind: kind, Bulk: r.arena}, nil
	case ':':
		n, err := r.readCount(':')
		if err != nil {
			return Reply{}, err
		}
		return Reply{Kind: Integer, Int: n}, nil
	case '$':
		bl, err := r.readCount('$')
		if err != nil {
			return Reply{}, err
		}
		if bl == -1 {
			return Reply{Kind: NullBulk}, nil
		}
		if bl < 0 || bl > MaxBulk {
			return Reply{}, protoErrf("bulk length %d out of range (max %d)", bl, MaxBulk)
		}
		r.arena = grow(r.arena[:0], int(bl))
		if _, err := io.ReadFull(r.br, r.arena); err != nil {
			return Reply{}, unexpectedEOF(err)
		}
		if err := r.expectCRLF(); err != nil {
			return Reply{}, err
		}
		return Reply{Kind: BulkString, Bulk: r.arena}, nil
	case '*':
		n, err := r.readCount('*')
		if err != nil {
			return Reply{}, err
		}
		if n < 0 || n > MaxArgs {
			return Reply{}, protoErrf("array length %d out of range (max %d)", n, MaxArgs)
		}
		return Reply{Kind: Array, N: int(n)}, nil
	default:
		return Reply{}, protoErrf("unknown reply prefix %q", prefix)
	}
}

// --- writer -------------------------------------------------------------------

// Writer formats RESP replies (and commands — the loadgen client emits
// command arrays through the same methods) into a buffered stream.
// Nothing reaches the wire until Flush. Not safe for concurrent use.
type Writer struct {
	bw *bufio.Writer
	// Two scratch buffers: lineInt formats lengths into scratch while a
	// BulkInt payload formatted into bulkScratch is still pending.
	scratch     [24]byte
	bulkScratch [24]byte
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64<<10)}
}

// Flush pushes everything buffered to the wire.
func (w *Writer) Flush() error { return w.bw.Flush() }

func (w *Writer) line(prefix byte, body string) {
	w.bw.WriteByte(prefix)
	w.bw.WriteString(body)
	w.bw.WriteString("\r\n")
}

func (w *Writer) lineInt(prefix byte, n int64) {
	w.bw.WriteByte(prefix)
	w.bw.Write(strconv.AppendInt(w.scratch[:0], n, 10))
	w.bw.WriteString("\r\n")
}

// SimpleString writes +s.
func (w *Writer) SimpleString(s string) { w.line('+', s) }

// Error writes -msg.
func (w *Writer) Error(msg string) { w.line('-', msg) }

// Int writes :n.
func (w *Writer) Int(n int64) { w.lineInt(':', n) }

// BulkBytes writes b as a bulk string.
func (w *Writer) BulkBytes(b []byte) {
	w.lineInt('$', int64(len(b)))
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// BulkString writes s as a bulk string.
func (w *Writer) BulkString(s string) {
	w.lineInt('$', int64(len(s)))
	w.bw.WriteString(s)
	w.bw.WriteString("\r\n")
}

// BulkInt writes n's decimal form as a bulk string — how rmaserve
// returns int64 values.
func (w *Writer) BulkInt(n int64) {
	b := strconv.AppendInt(w.bulkScratch[:0], n, 10)
	w.lineInt('$', int64(len(b)))
	w.bw.Write(b)
	w.bw.WriteString("\r\n")
}

// Null writes the RESP2 null bulk $-1 (missing key).
func (w *Writer) Null() { w.bw.WriteString("$-1\r\n") }

// ArrayHeader writes *n; the caller writes the n elements next.
func (w *Writer) ArrayHeader(n int) { w.lineInt('*', int64(n)) }

// Command writes one command as a RESP array of bulk strings: name,
// then each int64 argument in decimal — the client-side emit path.
func (w *Writer) Command(name string, args ...int64) {
	w.ArrayHeader(1 + len(args))
	w.BulkString(name)
	for _, a := range args {
		w.BulkInt(a)
	}
}
