package resp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func readOne(t *testing.T, in string) [][]byte {
	t.Helper()
	r := NewReader(strings.NewReader(in))
	cmd, err := r.ReadCommand()
	if err != nil {
		t.Fatalf("ReadCommand(%q): %v", in, err)
	}
	return cmd
}

func TestReadCommandArray(t *testing.T) {
	cmd := readOne(t, "*3\r\n$3\r\nSET\r\n$2\r\n42\r\n$4\r\n-100\r\n")
	want := []string{"SET", "42", "-100"}
	if len(cmd) != len(want) {
		t.Fatalf("got %d args, want %d", len(cmd), len(want))
	}
	for i, w := range want {
		if string(cmd[i]) != w {
			t.Fatalf("arg %d = %q, want %q", i, cmd[i], w)
		}
	}
}

func TestReadCommandInline(t *testing.T) {
	r := NewReader(strings.NewReader("\r\nPING\r\nGET  7\r\n"))
	cmd, err := r.ReadCommand()
	if err != nil || string(cmd[0]) != "PING" || len(cmd) != 1 {
		t.Fatalf("inline 1: %v %q", err, cmd)
	}
	cmd, err = r.ReadCommand()
	if err != nil || len(cmd) != 2 || string(cmd[0]) != "GET" || string(cmd[1]) != "7" {
		t.Fatalf("inline 2: %v %q", err, cmd)
	}
	if _, err = r.ReadCommand(); err != io.EOF {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}
}

func TestReadCommandPipelined(t *testing.T) {
	r := NewReader(strings.NewReader("*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$1\r\n5\r\n"))
	if cmd, err := r.ReadCommand(); err != nil || string(cmd[0]) != "PING" {
		t.Fatalf("first: %v %q", err, cmd)
	}
	if r.Buffered() == 0 {
		t.Fatal("second command should be buffered (pipelining signal)")
	}
	if cmd, err := r.ReadCommand(); err != nil || string(cmd[1]) != "5" {
		t.Fatalf("second: %v %q", err, cmd)
	}
}

func TestTruncatedCommandIsUnexpectedEOF(t *testing.T) {
	for _, in := range []string{"*2\r\n$3\r\nGET\r\n", "*1\r\n$3\r\nGE", "*1\r\n", "*1\r\n$5\r\nhello"} {
		r := NewReader(strings.NewReader(in))
		_, err := r.ReadCommand()
		if err != io.ErrUnexpectedEOF {
			t.Errorf("ReadCommand(%q) err = %v, want ErrUnexpectedEOF", in, err)
		}
	}
}

func TestProtocolErrors(t *testing.T) {
	cases := []string{
		"*abc\r\n",                   // bad array count
		"*2\r\n$3\r\nGET\r\n:5\r\n",  // non-bulk inside command array
		"*1\r\n$-5\r\n",              // negative bulk length
		"*1\r\n$2000000\r\n",         // bulk over MaxBulk
		"*1\r\n$2\r\nhiXX",           // missing CRLF after bulk
		"*999999999999999999999\r\n", // count overflow
		"*70000\r\n",                 // over MaxArgs
	}
	for _, in := range cases {
		r := NewReader(strings.NewReader(in))
		_, err := r.ReadCommand()
		if !IsProtocol(err) {
			t.Errorf("ReadCommand(%q) err = %v, want protocol error", in, err)
		}
	}
}

func TestParseInt(t *testing.T) {
	good := map[string]int64{
		"0": 0, "7": 7, "-1": -1, "+42": 42,
		"9223372036854775807":  1<<63 - 1,
		"-9223372036854775808": -1 << 63,
	}
	for in, want := range good {
		if got, ok := ParseInt([]byte(in)); !ok || got != want {
			t.Errorf("ParseInt(%q) = %d,%v want %d,true", in, got, ok, want)
		}
	}
	for _, in := range []string{"", "-", "+", "12x", "9223372036854775808", "99999999999999999999"} {
		if _, ok := ParseInt([]byte(in)); ok {
			t.Errorf("ParseInt(%q) accepted, want reject", in)
		}
	}
}

func TestWriterReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("OK")
	w.Error("ERR boom")
	w.Int(-42)
	w.BulkInt(1234567890123)
	w.Null()
	w.ArrayHeader(2)
	w.BulkBytes([]byte("ab"))
	w.BulkString("cd")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	rep, err := r.ReadReply()
	if err != nil || rep.Kind != SimpleString || string(rep.Bulk) != "OK" {
		t.Fatalf("simple: %+v %v", rep, err)
	}
	rep, err = r.ReadReply()
	if err != nil || rep.Kind != ErrorString || string(rep.Bulk) != "ERR boom" {
		t.Fatalf("error: %+v %v", rep, err)
	}
	rep, err = r.ReadReply()
	if err != nil || rep.Kind != Integer || rep.Int != -42 {
		t.Fatalf("int: %+v %v", rep, err)
	}
	rep, err = r.ReadReply()
	if err != nil || rep.Kind != BulkString || string(rep.Bulk) != "1234567890123" {
		t.Fatalf("bulk: %+v %v", rep, err)
	}
	rep, err = r.ReadReply()
	if err != nil || rep.Kind != NullBulk {
		t.Fatalf("null: %+v %v", rep, err)
	}
	rep, err = r.ReadReply()
	if err != nil || rep.Kind != Array || rep.N != 2 {
		t.Fatalf("array: %+v %v", rep, err)
	}
	for i, want := range []string{"ab", "cd"} {
		rep, err = r.ReadReply()
		if err != nil || rep.Kind != BulkString || string(rep.Bulk) != want {
			t.Fatalf("elem %d: %+v %v", i, rep, err)
		}
	}
}

func TestCommandEmit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Command("SET", 7, -9)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cmd := readOne(t, buf.String())
	if len(cmd) != 3 || string(cmd[0]) != "SET" || string(cmd[1]) != "7" || string(cmd[2]) != "-9" {
		t.Fatalf("round trip = %q", cmd)
	}
}

// The reader's arena is reused: args from a previous command must not
// be corrupted before the next Read* call, and a long pipeline must
// parse without growing allocations once warm.
func TestReaderReuseNoAllocsSteadyState(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 256; i++ {
		w.Command("SET", int64(i), int64(i*3))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	// Warm the arena on the first few commands.
	for i := 0; i < 8; i++ {
		if _, err := r.ReadCommand(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := r.ReadCommand(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state ReadCommand allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestErrorsAreNotProtocol(t *testing.T) {
	if IsProtocol(io.EOF) || IsProtocol(errors.New("x")) {
		t.Fatal("IsProtocol misclassifies plain errors")
	}
}
