package resp

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRESPParse throws arbitrary bytes at both parser entry points.
// Properties under fuzz:
//
//   - no panic, no hang: every input either parses or errors out;
//   - every parsed command respects the protocol limits (arg count,
//     bulk size) — an input that smuggles an oversized command past the
//     limit checks is a finding;
//   - commands that parse re-encode (Writer.Command-style) to bytes
//     that parse back to the same arguments — the round trip the
//     server and the loadgen client rely on;
//   - after any error the reader stays inert (subsequent reads error
//     too or hit EOF, never panic).
func FuzzRESPParse(f *testing.F) {
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\n7\r\n$2\r\n14\r\n"))
	f.Add([]byte("*1\r\n$4\r\nPING\r\n*2\r\n$3\r\nGET\r\n$1\r\n5\r\n"))
	f.Add([]byte("GET 7\r\nSET 1 2\r\n"))
	f.Add([]byte("*2\r\n$3\r\nDEL\r\n$20\r\n-9223372036854775808\r\n"))
	f.Add([]byte("+OK\r\n:42\r\n$-1\r\n*2\r\n$1\r\na\r\n$1\r\nb\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$\r\n\r\n*\r\n"))
	f.Add([]byte("*65537\r\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Commands: parse the whole stream, re-encode every command,
		// reparse, compare.
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1024; i++ {
			cmd, err := r.ReadCommand()
			if err != nil {
				// After any error the stream is done for the server;
				// one more read must not panic.
				r.ReadCommand()
				break
			}
			if len(cmd) > MaxArgs {
				t.Fatalf("parsed command with %d args > MaxArgs", len(cmd))
			}
			total := 0
			for _, a := range cmd {
				if len(a) > MaxBulk {
					t.Fatalf("parsed arg of %d bytes > MaxBulk", len(a))
				}
				total += len(a)
			}
			if total > len(data) {
				t.Fatalf("args total %d bytes from a %d-byte input", total, len(data))
			}
			roundTrip(t, cmd)
		}

		// Replies: same stream through the reply parser.
		r = NewReader(bytes.NewReader(data))
		for i := 0; i < 1024; i++ {
			rep, err := r.ReadReply()
			if err != nil {
				r.ReadReply()
				break
			}
			if rep.Kind == Array && (rep.N < 0 || rep.N > MaxArgs) {
				t.Fatalf("array header N=%d out of range", rep.N)
			}
			if len(rep.Bulk) > MaxBulk {
				t.Fatalf("reply bulk of %d bytes > MaxBulk", len(rep.Bulk))
			}
		}
	})
}

// roundTrip re-encodes cmd as a RESP array and verifies it parses back
// identically.
func roundTrip(t *testing.T, cmd [][]byte) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.ArrayHeader(len(cmd))
	for _, a := range cmd {
		w.BulkBytes(a)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// cmd aliases the source reader's arena; copy before reparsing.
	want := make([][]byte, len(cmd))
	for i, a := range cmd {
		want[i] = append([]byte(nil), a...)
	}
	r := NewReader(&buf)
	got, err := r.ReadCommand()
	if err != nil {
		// A zero-arg command (*0) parses to an empty slice and
		// re-encodes to *0; ReadCommand loops past it to EOF.
		if len(want) == 0 && err == io.EOF {
			return
		}
		t.Fatalf("re-encoded command failed to parse: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip arg count %d != %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("round trip arg %d: %q != %q", i, got[i], want[i])
		}
	}
}
