package art

import "fmt"

// leaf is a tree leaf: parallel sorted key/value arrays plus the scan
// chain — the same layout as the (a,b)-tree's leaves (Fig 3), since the
// paper's "ART" competitor differs only in how leaves are indexed.
type leaf struct {
	keys []int64
	vals []int64
	next *leaf
	prev *leaf
}

// Tree is an (a,b)-tree with ART-indexed leaves: the strongest competitor
// of the paper's evaluation (Section V).
type Tree struct {
	ix      index
	leafCap int
	minLeaf int
	head    *leaf
	n       int

	slabK, slabV []int64
	slabLeaves   []leaf
	slabBytes    int64
}

// New returns an empty tree with the given leaf capacity (>= 2).
func New(leafCap int) *Tree {
	if leafCap < 2 {
		panic(fmt.Sprintf("art: leaf capacity %d < 2", leafCap))
	}
	return &Tree{leafCap: leafCap, minLeaf: leafCap / 2}
}

// LeafCap returns the configured leaf capacity B.
func (t *Tree) LeafCap() int { return t.leafCap }

// Size returns the number of stored elements.
func (t *Tree) Size() int { return t.n }

const slabLeafCount = 128

func (t *Tree) newLeaf() *leaf {
	if len(t.slabLeaves) == 0 {
		t.slabLeaves = make([]leaf, slabLeafCount)
		t.slabK = make([]int64, slabLeafCount*t.leafCap)
		t.slabV = make([]int64, slabLeafCount*t.leafCap)
		t.slabBytes += int64(slabLeafCount)*int64(t.leafCap)*16 + slabLeafCount*64
	}
	l := &t.slabLeaves[0]
	t.slabLeaves = t.slabLeaves[1:]
	l.keys = t.slabK[:0:t.leafCap]
	l.vals = t.slabV[:0:t.leafCap]
	t.slabK = t.slabK[t.leafCap:]
	t.slabV = t.slabV[t.leafCap:]
	return l
}

// FootprintBytes estimates the tree's memory: leaf slabs + radix nodes.
func (t *Tree) FootprintBytes() int64 { return t.slabBytes + t.ix.footprint() }

func lowerBound(a []int64, key int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upperBound(a []int64, key int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// targetLeaf returns a chain leaf able to hold key: the floor leaf from
// the radix index, advanced through duplicate "overflow" leaves (leaves
// sharing their predecessor's minimum are not indexed) only while key is
// strictly beyond the current leaf's content. Stopping as soon as
// key <= max(leaf) keeps hot-duplicate insertion O(1) instead of walking
// the whole overflow chain.
func (t *Tree) targetLeaf(key int64) *leaf {
	l := t.ix.floor(key)
	if l == nil {
		l = t.head
	}
	if l == nil {
		return nil
	}
	for len(l.keys) > 0 && key > l.keys[len(l.keys)-1] &&
		l.next != nil && len(l.next.keys) > 0 && l.next.keys[0] <= key {
		l = l.next
	}
	return l
}

// indexed reports whether leaf l owns an index entry: it is the first
// leaf of the chain with its minimum.
func (l *leaf) indexedUnder(min int64) bool {
	return l.prev == nil || len(l.prev.keys) == 0 || l.prev.keys[0] != min
}

// scanStart returns the leaf where a scan from lo must begin: the last
// leaf whose minimum is strictly below lo (duplicates of lo may trail a
// preceding leaf), or the head.
func (t *Tree) scanStart(lo int64) *leaf {
	if lo == minInt64 {
		return t.head
	}
	if l := t.ix.floor(lo - 1); l != nil {
		return l
	}
	return t.head
}

// Insert adds the key/value pair.
func (t *Tree) Insert(key, val int64) {
	t.n++
	if t.head == nil {
		l := t.newLeaf()
		l.keys = append(l.keys, key)
		l.vals = append(l.vals, val)
		t.head = l
		t.ix.insert(key, l)
		return
	}
	l := t.targetLeaf(key)
	if len(l.keys) == t.leafCap {
		r := t.splitLeaf(l)
		if key >= r.keys[0] {
			l = r
		}
	}
	oldMin := l.keys[0]
	i := upperBound(l.keys, key)
	l.keys = append(l.keys, 0)
	l.vals = append(l.vals, 0)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = key
	l.vals[i] = val
	if i == 0 {
		t.reindex(l, oldMin)
	}
}

// splitLeaf halves l into a new right leaf, preferring a split point at
// a key boundary so the new leaf gets a distinct minimum; when the whole
// leaf is one duplicated key the right leaf stays unindexed (an overflow
// leaf reached through the chain).
func (t *Tree) splitLeaf(l *leaf) *leaf {
	mid := len(l.keys) / 2
	// Nudge the split point to the nearest key boundary.
	if l.keys[mid] == l.keys[mid-1] {
		up := mid
		for up < len(l.keys) && l.keys[up] == l.keys[mid-1] {
			up++
		}
		down := mid
		for down > 1 && l.keys[down-1] == l.keys[down-2] {
			down--
		}
		switch {
		case up < len(l.keys) && (down <= 1 || up-mid <= mid-down):
			mid = up
		case down > 1:
			mid = down
		}
	}
	r := t.newLeaf()
	r.keys = append(r.keys, l.keys[mid:]...)
	r.vals = append(r.vals, l.vals[mid:]...)
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	r.next = l.next
	if r.next != nil {
		r.next.prev = r
	}
	r.prev = l
	l.next = r
	if r.keys[0] != l.keys[0] {
		t.ix.insert(r.keys[0], r)
	}
	return r
}

// reindex records that l's minimum changed from oldMin to its current
// first key, preserving the one-entry-per-distinct-minimum invariant.
func (t *Tree) reindex(l *leaf, oldMin int64) {
	newMin := l.keys[0]
	if newMin == oldMin {
		return
	}
	if l.indexedUnder(oldMin) {
		// If a duplicate-overflow successor still starts with oldMin, it
		// inherits the entry; otherwise the entry goes away.
		if l.next != nil && len(l.next.keys) > 0 && l.next.keys[0] == oldMin {
			t.ix.insert(oldMin, l.next)
		} else {
			t.ix.remove(oldMin)
		}
	}
	if l.indexedUnder(newMin) {
		t.ix.insert(newMin, l)
	}
}

// Find returns a value stored under key.
func (t *Tree) Find(key int64) (int64, bool) {
	if t.head == nil {
		return 0, false
	}
	l := t.targetLeaf(key)
	i := lowerBound(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		return l.vals[i], true
	}
	return 0, false
}

// Delete removes one occurrence of key, merging or borrowing when the
// leaf underflows.
func (t *Tree) Delete(key int64) bool {
	if t.head == nil {
		return false
	}
	l := t.targetLeaf(key)
	i := lowerBound(l.keys, key)
	if i >= len(l.keys) || l.keys[i] != key {
		return false
	}
	oldMin := l.keys[0]
	copy(l.keys[i:], l.keys[i+1:])
	copy(l.vals[i:], l.vals[i+1:])
	l.keys = l.keys[:len(l.keys)-1]
	l.vals = l.vals[:len(l.vals)-1]
	t.n--

	if len(l.keys) == 0 {
		t.unlink(l, oldMin)
		return true
	}
	if i == 0 {
		t.reindex(l, oldMin)
	}
	if len(l.keys) < t.minLeaf {
		t.fixUnderflow(l)
	}
	return true
}

// unlink removes a drained leaf from the chain and fixes the index: the
// entry disappears or passes to a duplicate-overflow successor.
func (t *Tree) unlink(l *leaf, oldMin int64) {
	if l.indexedUnder(oldMin) {
		if l.next != nil && len(l.next.keys) > 0 && l.next.keys[0] == oldMin {
			t.ix.insert(oldMin, l.next)
		} else {
			t.ix.remove(oldMin)
		}
	}
	if l.prev != nil {
		l.prev.next = l.next
	} else {
		t.head = l.next
	}
	if l.next != nil {
		l.next.prev = l.prev
	}
}

// fixUnderflow borrows from or merges with the right neighbour (or left
// at the chain end), keeping index entries current.
func (t *Tree) fixUnderflow(l *leaf) {
	r := l.next
	if r != nil {
		if len(l.keys)+len(r.keys) <= t.leafCap {
			// Merge r into l.
			rMin := r.keys[0]
			l.keys = append(l.keys, r.keys...)
			l.vals = append(l.vals, r.vals...)
			t.unlink(r, rMin)
			return
		}
		// Borrow the right neighbour's first element.
		rMin := r.keys[0]
		l.keys = append(l.keys, r.keys[0])
		l.vals = append(l.vals, r.vals[0])
		copy(r.keys, r.keys[1:])
		copy(r.vals, r.vals[1:])
		r.keys = r.keys[:len(r.keys)-1]
		r.vals = r.vals[:len(r.vals)-1]
		t.reindex(r, rMin)
		return
	}
	p := l.prev
	if p == nil {
		return // single leaf: no minimum fill requirement
	}
	if len(p.keys)+len(l.keys) <= t.leafCap {
		lMin := l.keys[0]
		p.keys = append(p.keys, l.keys...)
		p.vals = append(p.vals, l.vals...)
		t.unlink(l, lMin)
		return
	}
	// Borrow the left neighbour's last element.
	oldMin := l.keys[0]
	k := p.keys[len(p.keys)-1]
	v := p.vals[len(p.vals)-1]
	p.keys = p.keys[:len(p.keys)-1]
	p.vals = p.vals[:len(p.vals)-1]
	l.keys = append(l.keys, 0)
	l.vals = append(l.vals, 0)
	copy(l.keys[1:], l.keys)
	copy(l.vals[1:], l.vals)
	l.keys[0], l.vals[0] = k, v
	t.reindex(l, oldMin)
}

// ScanRange calls yield for every element with lo <= key <= hi in order.
func (t *Tree) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	if t.head == nil || lo > hi {
		return
	}
	l := t.scanStart(lo)
	i := lowerBound(l.keys, lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			k := l.keys[i]
			if k > hi {
				return
			}
			if !yield(k, l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
		// Duplicate-overflow predecessors may still trail keys below lo.
		if l != nil && len(l.keys) > 0 && l.keys[0] < lo {
			i = lowerBound(l.keys, lo)
		}
	}
}

// Scan iterates every element.
func (t *Tree) Scan(yield func(key, val int64) bool) {
	t.ScanRange(minInt64, maxInt64, yield)
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// Sum aggregates elements in [lo, hi].
func (t *Tree) Sum(lo, hi int64) (count int, sum int64) {
	if t.head == nil || lo > hi {
		return 0, 0
	}
	l := t.scanStart(lo)
	i := lowerBound(l.keys, lo)
	for l != nil {
		start := i
		end := len(l.keys)
		if end > 0 && l.keys[end-1] > hi {
			end = upperBound(l.keys, hi)
		}
		for ; i < end; i++ {
			sum += l.vals[i]
		}
		count += end - start
		if end < len(l.keys) {
			return count, sum
		}
		l = l.next
		i = 0
		// Duplicate-overflow predecessors may still trail keys below lo.
		if l != nil && len(l.keys) > 0 && l.keys[0] < lo {
			i = lowerBound(l.keys, lo)
		}
	}
	return count, sum
}

// SumAll aggregates the whole tree.
func (t *Tree) SumAll() (count int, sum int64) { return t.Sum(minInt64, maxInt64) }

// Min returns the smallest key.
func (t *Tree) Min() (int64, bool) {
	if t.head == nil || len(t.head.keys) == 0 {
		return 0, false
	}
	return t.head.keys[0], true
}

// Max returns the largest key.
func (t *Tree) Max() (int64, bool) {
	if t.ix.root == nil {
		if t.head == nil || len(t.head.keys) == 0 {
			return 0, false
		}
		return t.head.keys[len(t.head.keys)-1], true
	}
	l := maxOf(t.ix.root)
	return l.keys[len(l.keys)-1], true
}

// BulkLoad builds the tree from sorted key/value slices, replacing its
// content.
func (t *Tree) BulkLoad(keys, vals []int64) {
	if len(keys) != len(vals) {
		panic("art: BulkLoad length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			panic("art: BulkLoad input not sorted")
		}
	}
	t.ix = index{}
	t.head = nil
	t.n = len(keys)
	if len(keys) == 0 {
		return
	}
	var prev *leaf
	for pos := 0; pos < len(keys); pos += t.leafCap {
		end := pos + t.leafCap
		if end > len(keys) {
			end = len(keys)
		}
		l := t.newLeaf()
		l.keys = append(l.keys, keys[pos:end]...)
		l.vals = append(l.vals, vals[pos:end]...)
		if prev != nil {
			prev.next = l
			l.prev = prev
		} else {
			t.head = l
		}
		// Index only the first leaf of each distinct-minimum chain.
		if l.indexedUnder(l.keys[0]) {
			t.ix.insert(l.keys[0], l)
		}
		prev = l
	}
}

// Validate checks structural invariants (tests only).
func (t *Tree) Validate() error {
	count := 0
	prevKey := int64(minInt64)
	indexedLeaves := 0
	for l := t.head; l != nil; l = l.next {
		if len(l.keys) == 0 {
			return fmt.Errorf("art: empty leaf in chain")
		}
		if len(l.keys) > t.leafCap {
			return fmt.Errorf("art: leaf overflow")
		}
		for _, k := range l.keys {
			if k < prevKey {
				return fmt.Errorf("art: chain out of order at %d", k)
			}
			prevKey = k
			count++
		}
		if l.next != nil && l.next.prev != l {
			return fmt.Errorf("art: broken chain back-pointer")
		}
		if l.indexedUnder(l.keys[0]) {
			indexedLeaves++
			// The index must route this minimum to exactly this leaf.
			if got := t.ix.floor(l.keys[0]); got != l {
				return fmt.Errorf("art: index misroutes min %d", l.keys[0])
			}
		}
	}
	if count != t.n {
		return fmt.Errorf("art: chain has %d elements, size says %d", count, t.n)
	}
	if t.ix.size != indexedLeaves {
		return fmt.Errorf("art: index has %d entries, chain has %d indexed leaves", t.ix.size, indexedLeaves)
	}
	// Floor must route every stored key to the leaf that holds it.
	for l := t.head; l != nil; l = l.next {
		for _, k := range l.keys {
			tgt := t.targetLeaf(k)
			if _, ok := t.Find(k); !ok {
				return fmt.Errorf("art: stored key %d not findable (routed to %p)", k, tgt)
			}
		}
	}
	return nil
}
