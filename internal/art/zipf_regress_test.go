package art

import (
	"testing"
	"time"

	"rma/internal/workload"
)

func TestZipfInsertThroughputRegression(t *testing.T) {
	t.Parallel()
	tr := New(128)
	z := workload.NewZipf(1, 1.5, 1<<27, true)
	const n = 200000
	t0 := time.Now()
	for i := 0; i < n; i++ {
		tr.Insert(z.Next(), 0)
	}
	d := time.Since(t0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Before the O(1) duplicate fast path this took minutes; require a
	// generous but regression-catching bound.
	if d > 5*time.Second {
		t.Fatalf("200k zipf-1.5 inserts took %v: duplicate chain walk regressed", d)
	}
}
