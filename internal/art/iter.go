package art

import "iter"

// Lazy iterators and navigation queries. The leaf chain is doubly
// linked, so both directions ride it directly; the radix index supplies
// the O(key-length) entry point. Order statistics hop the chain
// whole-leaf at a time — O(n/B), the cost of an unaugmented tree.

// floorLeaf returns the last chain leaf whose minimum is <= x, walking
// past duplicate-overflow leaves (which share their predecessor's
// minimum and are not indexed), or nil when every element exceeds x.
func (t *Tree) floorLeaf(x int64) *leaf {
	l := t.ix.floor(x)
	if l == nil {
		if t.head != nil && len(t.head.keys) > 0 && t.head.keys[0] <= x {
			l = t.head
		} else {
			return nil
		}
	}
	for l.next != nil && len(l.next.keys) > 0 && l.next.keys[0] <= x {
		l = l.next
	}
	return l
}

// Floor returns the greatest element with key <= x.
func (t *Tree) Floor(x int64) (key, val int64, ok bool) {
	if t.head == nil {
		return 0, 0, false
	}
	l := t.floorLeaf(x)
	if l == nil {
		return 0, 0, false
	}
	if i := upperBound(l.keys, x) - 1; i >= 0 {
		return l.keys[i], l.vals[i], true
	}
	return 0, 0, false
}

// Ceiling returns the smallest element with key >= x.
func (t *Tree) Ceiling(x int64) (key, val int64, ok bool) {
	if t.head == nil {
		return 0, 0, false
	}
	l := t.scanStart(x)
	for l != nil {
		if i := lowerBound(l.keys, x); i < len(l.keys) {
			return l.keys[i], l.vals[i], true
		}
		l = l.next
	}
	return 0, 0, false
}

// rankOf counts elements with key < x (inclusive=false) or <= x.
func (t *Tree) rankOf(x int64, inclusive bool) int {
	cnt := 0
	for l := t.head; l != nil; l = l.next {
		if len(l.keys) == 0 {
			continue
		}
		last := l.keys[len(l.keys)-1]
		if last < x || (inclusive && last == x) {
			cnt += len(l.keys)
			continue
		}
		if inclusive {
			cnt += upperBound(l.keys, x)
		} else {
			cnt += lowerBound(l.keys, x)
		}
		break
	}
	return cnt
}

// Rank returns the number of elements with key strictly less than x.
func (t *Tree) Rank(x int64) int { return t.rankOf(x, false) }

// CountRange returns the number of elements with lo <= key <= hi.
func (t *Tree) CountRange(lo, hi int64) int {
	if t.n == 0 || lo > hi {
		return 0
	}
	return t.rankOf(hi, true) - t.rankOf(lo, false)
}

// Select returns the i-th smallest element (0-based).
func (t *Tree) Select(i int) (key, val int64, ok bool) {
	if i < 0 || i >= t.n {
		return 0, 0, false
	}
	for l := t.head; l != nil; l = l.next {
		if i < len(l.keys) {
			return l.keys[i], l.vals[i], true
		}
		i -= len(l.keys)
	}
	return 0, 0, false
}

// IterAscend returns a lazy ascending iterator over elements with
// lo <= key <= hi.
func (t *Tree) IterAscend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if t.head == nil || lo > hi {
			return
		}
		l := t.scanStart(lo)
		i := lowerBound(l.keys, lo)
		for l != nil {
			for ; i < len(l.keys); i++ {
				k := l.keys[i]
				if k > hi {
					return
				}
				if !yield(k, l.vals[i]) {
					return
				}
			}
			l = l.next
			i = 0
			// Duplicate-overflow leaves may still trail keys below lo.
			if l != nil && len(l.keys) > 0 && l.keys[0] < lo {
				i = lowerBound(l.keys, lo)
			}
		}
	}
}

// IterDescend returns a lazy descending iterator over elements with
// lo <= key <= hi, walking the prev-linked chain.
func (t *Tree) IterDescend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if t.head == nil || lo > hi {
			return
		}
		l := t.floorLeaf(hi)
		if l == nil {
			return
		}
		start := upperBound(l.keys, hi) - 1
		for l != nil {
			for i := start; i >= 0; i-- {
				if l.keys[i] < lo {
					return
				}
				if !yield(l.keys[i], l.vals[i]) {
					return
				}
			}
			l = l.prev
			if l != nil {
				start = len(l.keys) - 1
			}
		}
	}
}
