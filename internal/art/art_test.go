package art

import (
	"sort"
	"testing"

	"rma/internal/workload"
)

// --- radix index -------------------------------------------------------------

// floorOracle computes the expected floor over a sorted key list.
func floorOracle(keys []int64, k int64) (int64, bool) {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
	if i == 0 {
		return 0, false
	}
	return keys[i-1], true
}

func TestIndexInsertFloorAgainstOracle(t *testing.T) {
	var ix index
	refs := map[int64]*leaf{}
	var keys []int64
	g := workload.NewUniform(1, 1<<48)
	for i := 0; i < 5000; i++ {
		k := g.Next() - (1 << 47) // include negatives
		if _, dup := refs[k]; dup {
			continue
		}
		l := &leaf{keys: []int64{k}}
		refs[k] = l
		keys = append(keys, k)
		ix.insert(k, l)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if ix.size != len(keys) {
		t.Fatalf("index size %d, want %d", ix.size, len(keys))
	}
	probe := workload.NewUniform(2, 1<<48)
	for i := 0; i < 3000; i++ {
		k := probe.Next() - (1 << 47)
		want, ok := floorOracle(keys, k)
		got := ix.floor(k)
		if !ok {
			if got != nil {
				t.Fatalf("floor(%d) = %v, want nil", k, got.keys)
			}
			continue
		}
		if got == nil || got != refs[want] {
			t.Fatalf("floor(%d) wrong: want leaf of %d", k, want)
		}
	}
	// Exact hits must floor to themselves.
	for _, k := range keys[:200] {
		if got := ix.floor(k); got != refs[k] {
			t.Fatalf("floor(%d) must be its own leaf", k)
		}
	}
}

func TestIndexRemove(t *testing.T) {
	var ix index
	var keys []int64
	refs := map[int64]*leaf{}
	for i := 0; i < 2000; i++ {
		k := int64(i * 7)
		l := &leaf{keys: []int64{k}}
		refs[k] = l
		keys = append(keys, k)
		ix.insert(k, l)
	}
	// Remove every other key; floors must fall back to survivors.
	for i := 0; i < len(keys); i += 2 {
		if !ix.remove(keys[i]) {
			t.Fatalf("remove(%d) missed", keys[i])
		}
	}
	if ix.remove(keys[0]) {
		t.Fatal("double remove succeeded")
	}
	for i := 1; i < len(keys); i += 2 {
		if got := ix.floor(keys[i]); got != refs[keys[i]] {
			t.Fatalf("floor(%d) lost after removals", keys[i])
		}
	}
	// floor of a removed key falls to the previous surviving key.
	if got := ix.floor(keys[2]); got != refs[keys[1]] {
		t.Fatalf("floor of removed key wrong")
	}
	for i := 1; i < len(keys); i += 2 {
		if !ix.remove(keys[i]) {
			t.Fatalf("remove(%d) missed", keys[i])
		}
	}
	if ix.size != 0 || ix.root != nil {
		t.Fatalf("index not empty: size %d", ix.size)
	}
}

func TestIndexNodeGrowthChain(t *testing.T) {
	// Keys differing in the last byte force one node to grow 4->16->48->256.
	var ix index
	refs := map[int64]*leaf{}
	for b := 0; b < 256; b++ {
		k := int64(b)
		l := &leaf{keys: []int64{k}}
		refs[k] = l
		ix.insert(k, l)
	}
	for b := 0; b < 256; b++ {
		if got := ix.floor(int64(b)); got != refs[int64(b)] {
			t.Fatalf("floor(%d) wrong after growth", b)
		}
	}
	// And shrink back down through removals.
	for b := 0; b < 250; b++ {
		if !ix.remove(int64(b)) {
			t.Fatalf("remove(%d) missed", b)
		}
	}
	for b := 250; b < 256; b++ {
		if got := ix.floor(int64(b)); got != refs[int64(b)] {
			t.Fatalf("floor(%d) wrong after shrink", b)
		}
	}
}

func TestIndexPathCompressionSplit(t *testing.T) {
	// Two keys sharing a long prefix create a deep compressed path; a
	// third key splitting the prefix must restructure correctly.
	var ix index
	a := &leaf{keys: []int64{0x1111111111110000}}
	b := &leaf{keys: []int64{0x1111111111110001}}
	c := &leaf{keys: []int64{0x1111000000000000}}
	ix.insert(a.keys[0], a)
	ix.insert(b.keys[0], b)
	ix.insert(c.keys[0], c)
	for _, l := range []*leaf{a, b, c} {
		if ix.floor(l.keys[0]) != l {
			t.Fatalf("floor(%x) wrong after path split", l.keys[0])
		}
	}
	if ix.floor(0x1111111111110000-1) != c {
		t.Fatal("floor between split paths wrong")
	}
}

func TestIndexNegativeKeysOrder(t *testing.T) {
	var ix index
	neg := &leaf{keys: []int64{-100}}
	pos := &leaf{keys: []int64{100}}
	ix.insert(-100, neg)
	ix.insert(100, pos)
	if ix.floor(-50) != neg || ix.floor(50) != neg || ix.floor(200) != pos {
		t.Fatal("sign-flip transform broke ordering")
	}
	if ix.floor(-200) != nil {
		t.Fatal("floor below all keys must be nil")
	}
}

// --- ART-indexed tree ----------------------------------------------------------

func TestTreeInsertFind(t *testing.T) {
	for _, b := range []int{4, 8, 128} {
		tr := New(b)
		keys := []int64{10, 5, 30, 20, 25, 1, 100, 50, 7, 3}
		for _, k := range keys {
			tr.Insert(k, k*2)
		}
		for _, k := range keys {
			v, ok := tr.Find(k)
			if !ok || v != k*2 {
				t.Fatalf("B=%d: Find(%d) = (%d,%v)", b, k, v, ok)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTreeDifferentialAgainstOracle(t *testing.T) {
	tr := New(8)
	var model []int64
	rng := workload.NewRNG(17)
	for op := 0; op < 20000; op++ {
		k := int64(rng.Uint64n(500))
		if rng.Uint64n(3) == 0 && len(model) > 0 {
			got := tr.Delete(k)
			i := sort.Search(len(model), func(i int) bool { return model[i] >= k })
			want := i < len(model) && model[i] == k
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			if want {
				model = append(model[:i], model[i+1:]...)
			}
		} else {
			tr.Insert(k, k)
			i := sort.Search(len(model), func(i int) bool { return model[i] > k })
			model = append(model, 0)
			copy(model[i+1:], model[i:])
			model[i] = k
		}
		if tr.Size() != len(model) {
			t.Fatalf("op %d: size %d want %d", op, tr.Size(), len(model))
		}
		if op%2500 == 2499 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			var got []int64
			tr.Scan(func(k, _ int64) bool { got = append(got, k); return true })
			for i := range got {
				if got[i] != model[i] {
					t.Fatalf("op %d: content mismatch at %d", op, i)
				}
			}
		}
	}
}

func TestTreeDuplicateOverflowChains(t *testing.T) {
	tr := New(4)
	// Many duplicates force unindexed overflow leaves.
	for i := 0; i < 200; i++ {
		tr.Insert(7, int64(i))
	}
	tr.Insert(3, 0)
	tr.Insert(9, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := tr.Sum(7, 7)
	if cnt != 200 {
		t.Fatalf("dup count %d", cnt)
	}
	for i := 0; i < 200; i++ {
		if !tr.Delete(7) {
			t.Fatalf("Delete #%d missed", i)
		}
	}
	if tr.Delete(7) {
		t.Fatal("deleted phantom duplicate")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Find(3); !ok {
		t.Fatal("lost key 3")
	}
	if _, ok := tr.Find(9); !ok {
		t.Fatal("lost key 9")
	}
}

func TestTreeSequentialInsertScan(t *testing.T) {
	tr := New(16)
	const n = 10000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cnt, sum := tr.SumAll()
	if cnt != n || sum != int64(n)*(n-1)/2 {
		t.Fatalf("SumAll = (%d,%d)", cnt, sum)
	}
	cnt, _ = tr.Sum(100, 199)
	if cnt != 100 {
		t.Fatalf("range count %d", cnt)
	}
}

func TestTreeBulkLoad(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, 9999} {
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := range keys {
			keys[i] = int64(i * 2)
			vals[i] = int64(i)
		}
		tr := New(128)
		tr.BulkLoad(keys, vals)
		if tr.Size() != n {
			t.Fatalf("n=%d: size %d", n, tr.Size())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Updates after bulk load.
		for i := 0; i < 200; i++ {
			tr.Insert(int64(i*2+1), 0)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d post-insert: %v", n, err)
		}
	}
}

func TestTreeBulkLoadWithDuplicates(t *testing.T) {
	keys := make([]int64, 500)
	vals := make([]int64, 500)
	for i := range keys {
		keys[i] = int64(i / 50) // runs of 50 duplicates
	}
	tr := New(8)
	tr.BulkLoad(keys, vals)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := tr.Sum(3, 3)
	if cnt != 50 {
		t.Fatalf("dup count %d", cnt)
	}
}

func TestTreeMinMaxFootprint(t *testing.T) {
	tr := New(8)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	for _, k := range []int64{50, 10, 90} {
		tr.Insert(k, 0)
	}
	mn, _ := tr.Min()
	mx, _ := tr.Max()
	if mn != 10 || mx != 90 {
		t.Fatalf("Min/Max = %d/%d", mn, mx)
	}
	before := tr.FootprintBytes()
	for i := 0; i < 10000; i++ {
		tr.Insert(int64(i), 0)
	}
	if tr.FootprintBytes() <= before {
		t.Fatal("footprint did not grow")
	}
}

func TestTreeDeleteToEmpty(t *testing.T) {
	tr := New(4)
	for i := 0; i < 1000; i++ {
		tr.Insert(int64(i), 0)
	}
	for i := 0; i < 1000; i++ {
		if !tr.Delete(int64(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size %d", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	tr.Insert(5, 50)
	if v, ok := tr.Find(5); !ok || v != 50 {
		t.Fatal("tree unusable after emptying")
	}
}
