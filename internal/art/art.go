// Package art implements the Adaptive Radix Tree (Leis, Kemper, Neumann,
// ICDE 2013) over fixed 8-byte keys, plus the "ART" competitor of the
// paper's evaluation: an (a,b)-tree whose leaves are indexed by an ART
// instead of separator-key inner nodes (Section V: "it is still actually
// an (a,b)-tree, but the leaves are this time indexed by ART").
//
// The radix tree maps the minimum key of every leaf to the leaf. Keys are
// int64, transformed by flipping the sign bit so that unsigned
// byte-lexicographic order equals signed numeric order. Node types 4, 16,
// 48 and 256 adapt to fanout, with pessimistic path compression (the full
// prefix fits in 8 bytes since keys are 8 bytes).
package art

// keyBytes converts a signed key into its order-preserving unsigned form.
func keyBytes(k int64) uint64 { return uint64(k) ^ (1 << 63) }

func keyAt(u uint64, depth int) byte { return byte(u >> (56 - 8*uint(depth))) }

// radix node kinds.
type artNode interface{}

// entry is a terminal radix entry: the full transformed key and the tree
// leaf whose minimum it is.
type entry struct {
	key uint64
	ref *leaf
}

type header struct {
	prefix    [8]byte
	prefixLen int
}

type node4 struct {
	header
	n        int
	keys     [4]byte
	children [4]artNode
}

type node16 struct {
	header
	n        int
	keys     [16]byte
	children [16]artNode
}

type node48 struct {
	header
	n        int
	index    [256]int8 // -1 = absent, else slot in children
	children [48]artNode
}

type node256 struct {
	header
	n        int
	children [256]artNode
}

// index is the radix tree over leaf minima.
type index struct {
	root artNode
	size int
}

// --- prefix helpers ---------------------------------------------------------

func (h *header) prefixMatch(key uint64, depth int) int {
	for i := 0; i < h.prefixLen; i++ {
		if h.prefix[i] != keyAt(key, depth+i) {
			return i
		}
	}
	return h.prefixLen
}

func commonPrefix(a, b uint64, depth int) int {
	n := 0
	for depth+n < 8 && keyAt(a, depth+n) == keyAt(b, depth+n) {
		n++
	}
	return n
}

// --- child access -----------------------------------------------------------

func findChild(n artNode, c byte) artNode {
	switch nd := n.(type) {
	case *node4:
		for i := 0; i < nd.n; i++ {
			if nd.keys[i] == c {
				return nd.children[i]
			}
		}
	case *node16:
		lo, hi := 0, nd.n
		for lo < hi {
			mid := (lo + hi) / 2
			if nd.keys[mid] < c {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < nd.n && nd.keys[lo] == c {
			return nd.children[lo]
		}
	case *node48:
		if s := nd.index[c]; s >= 0 {
			return nd.children[s]
		}
	case *node256:
		return nd.children[c]
	}
	return nil
}

// replaceChild swaps the child at byte c with nn.
func replaceChild(n artNode, c byte, nn artNode) {
	switch nd := n.(type) {
	case *node4:
		for i := 0; i < nd.n; i++ {
			if nd.keys[i] == c {
				nd.children[i] = nn
				return
			}
		}
	case *node16:
		for i := 0; i < nd.n; i++ {
			if nd.keys[i] == c {
				nd.children[i] = nn
				return
			}
		}
	case *node48:
		nd.children[nd.index[c]] = nn
	case *node256:
		nd.children[c] = nn
	}
}

// addChild inserts child at byte c, growing the node when full; returns
// the (possibly new) node.
func addChild(n artNode, c byte, child artNode) artNode {
	switch nd := n.(type) {
	case *node4:
		if nd.n < 4 {
			i := 0
			for i < nd.n && nd.keys[i] < c {
				i++
			}
			copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
			copy(nd.children[i+1:nd.n+1], nd.children[i:nd.n])
			nd.keys[i] = c
			nd.children[i] = child
			nd.n++
			return nd
		}
		g := &node16{header: nd.header, n: nd.n}
		copy(g.keys[:], nd.keys[:nd.n])
		copy(g.children[:], nd.children[:nd.n])
		return addChild(g, c, child)
	case *node16:
		if nd.n < 16 {
			i := 0
			for i < nd.n && nd.keys[i] < c {
				i++
			}
			copy(nd.keys[i+1:nd.n+1], nd.keys[i:nd.n])
			copy(nd.children[i+1:nd.n+1], nd.children[i:nd.n])
			nd.keys[i] = c
			nd.children[i] = child
			nd.n++
			return nd
		}
		g := &node48{header: nd.header, n: nd.n}
		for i := range g.index {
			g.index[i] = -1
		}
		for i := 0; i < nd.n; i++ {
			g.index[nd.keys[i]] = int8(i)
			g.children[i] = nd.children[i]
		}
		return addChild(g, c, child)
	case *node48:
		if nd.n < 48 {
			slot := 0
			for nd.children[slot] != nil {
				slot++
			}
			nd.children[slot] = child
			nd.index[c] = int8(slot)
			nd.n++
			return nd
		}
		g := &node256{header: nd.header, n: nd.n}
		for b := 0; b < 256; b++ {
			if s := nd.index[b]; s >= 0 {
				g.children[b] = nd.children[s]
			}
		}
		return addChild(g, c, child)
	case *node256:
		nd.children[c] = child
		nd.n++
		return nd
	}
	panic("art: addChild on leaf")
}

// removeChild deletes the child at byte c, shrinking the node when
// sparse; returns the (possibly new, possibly collapsed) node.
func removeChild(n artNode, c byte) artNode {
	switch nd := n.(type) {
	case *node4:
		for i := 0; i < nd.n; i++ {
			if nd.keys[i] == c {
				copy(nd.keys[i:nd.n-1], nd.keys[i+1:nd.n])
				copy(nd.children[i:nd.n-1], nd.children[i+1:nd.n])
				nd.n--
				nd.children[nd.n] = nil
				break
			}
		}
		if nd.n == 1 {
			// Path compression: merge the lone child upward.
			child := nd.children[0]
			if e, ok := child.(*entry); ok {
				return e
			}
			ch := childHeader(child)
			// New prefix: nd.prefix + key byte + child prefix.
			var p [8]byte
			pl := nd.prefixLen
			copy(p[:], nd.prefix[:pl])
			p[pl] = nd.keys[0]
			pl++
			copy(p[pl:], ch.prefix[:ch.prefixLen])
			pl += ch.prefixLen
			ch.prefix = p
			ch.prefixLen = pl
			return child
		}
		return nd
	case *node16:
		for i := 0; i < nd.n; i++ {
			if nd.keys[i] == c {
				copy(nd.keys[i:nd.n-1], nd.keys[i+1:nd.n])
				copy(nd.children[i:nd.n-1], nd.children[i+1:nd.n])
				nd.n--
				nd.children[nd.n] = nil
				break
			}
		}
		if nd.n <= 3 {
			g := &node4{header: nd.header, n: nd.n}
			copy(g.keys[:], nd.keys[:nd.n])
			copy(g.children[:], nd.children[:nd.n])
			return g
		}
		return nd
	case *node48:
		if s := nd.index[c]; s >= 0 {
			nd.children[s] = nil
			nd.index[c] = -1
			nd.n--
		}
		if nd.n <= 12 {
			g := &node16{header: nd.header}
			for b := 0; b < 256; b++ {
				if s := nd.index[b]; s >= 0 {
					g.keys[g.n] = byte(b)
					g.children[g.n] = nd.children[s]
					g.n++
				}
			}
			return g
		}
		return nd
	case *node256:
		if nd.children[c] != nil {
			nd.children[c] = nil
			nd.n--
		}
		if nd.n <= 40 {
			g := &node48{header: nd.header}
			for i := range g.index {
				g.index[i] = -1
			}
			for b := 0; b < 256; b++ {
				if nd.children[b] != nil {
					g.index[b] = int8(g.n)
					g.children[g.n] = nd.children[b]
					g.n++
				}
			}
			return g
		}
		return nd
	}
	panic("art: removeChild on leaf")
}

func childHeader(n artNode) *header {
	switch nd := n.(type) {
	case *node4:
		return &nd.header
	case *node16:
		return &nd.header
	case *node48:
		return &nd.header
	case *node256:
		return &nd.header
	}
	panic("art: header of leaf")
}

// --- index operations ---------------------------------------------------------

// insert maps key -> ref, replacing an existing mapping.
func (ix *index) insert(k int64, ref *leaf) {
	key := keyBytes(k)
	if ix.root == nil {
		ix.root = &entry{key, ref}
		ix.size++
		return
	}
	ix.root = ix.insertRec(ix.root, key, 0, ref)
}

func (ix *index) insertRec(n artNode, key uint64, depth int, ref *leaf) artNode {
	if e, ok := n.(*entry); ok {
		if e.key == key {
			e.ref = ref
			return e
		}
		cp := commonPrefix(e.key, key, depth)
		nn := &node4{}
		nn.prefixLen = cp
		for i := 0; i < cp; i++ {
			nn.prefix[i] = keyAt(key, depth+i)
		}
		var out artNode = nn
		out = addChild(out, keyAt(e.key, depth+cp), e)
		out = addChild(out, keyAt(key, depth+cp), &entry{key, ref})
		ix.size++
		return out
	}
	h := childHeader(n)
	p := h.prefixMatch(key, depth)
	if p < h.prefixLen {
		// Split the compressed path.
		nn := &node4{}
		nn.prefixLen = p
		copy(nn.prefix[:], h.prefix[:p])
		oldByte := h.prefix[p]
		// Trim the old node's prefix past the split byte.
		copy(h.prefix[:], h.prefix[p+1:h.prefixLen])
		h.prefixLen -= p + 1
		var out artNode = nn
		out = addChild(out, oldByte, n)
		out = addChild(out, keyAt(key, depth+p), &entry{key, ref})
		ix.size++
		return out
	}
	depth += h.prefixLen
	c := keyAt(key, depth)
	if child := findChild(n, c); child != nil {
		nn := ix.insertRec(child, key, depth+1, ref)
		if nn != child {
			replaceChild(n, c, nn)
		}
		return n
	}
	ix.size++
	return addChild(n, c, &entry{key, ref})
}

// remove deletes the mapping of key; reports whether it existed.
func (ix *index) remove(k int64) bool {
	key := keyBytes(k)
	if ix.root == nil {
		return false
	}
	if e, ok := ix.root.(*entry); ok {
		if e.key == key {
			ix.root = nil
			ix.size--
			return true
		}
		return false
	}
	nn, ok := ix.removeRec(ix.root, key, 0)
	if ok {
		ix.root = nn
		ix.size--
	}
	return ok
}

func (ix *index) removeRec(n artNode, key uint64, depth int) (artNode, bool) {
	h := childHeader(n)
	if h.prefixMatch(key, depth) < h.prefixLen {
		return n, false
	}
	depth += h.prefixLen
	c := keyAt(key, depth)
	child := findChild(n, c)
	if child == nil {
		return n, false
	}
	if e, ok := child.(*entry); ok {
		if e.key != key {
			return n, false
		}
		return removeChild(n, c), true
	}
	nn, ok := ix.removeRec(child, key, depth+1)
	if !ok {
		return n, false
	}
	if nn != child {
		replaceChild(n, c, nn)
	}
	return n, true
}

// floor returns the leaf mapped to the greatest key <= k, or nil.
func (ix *index) floor(k int64) *leaf {
	key := keyBytes(k)
	if ix.root == nil {
		return nil
	}
	return floorRec(ix.root, key, 0)
}

func floorRec(n artNode, key uint64, depth int) *leaf {
	if e, ok := n.(*entry); ok {
		if e.key <= key {
			return e.ref
		}
		return nil
	}
	h := childHeader(n)
	for i := 0; i < h.prefixLen; i++ {
		kb := keyAt(key, depth+i)
		if h.prefix[i] < kb {
			return maxOf(n) // whole subtree below key
		}
		if h.prefix[i] > kb {
			return nil // whole subtree above key
		}
	}
	depth += h.prefixLen
	c := keyAt(key, depth)
	if child := findChild(n, c); child != nil {
		if r := floorRec(child, key, depth+1); r != nil {
			return r
		}
	}
	// Greatest child strictly below c.
	if child := maxChildBelow(n, c); child != nil {
		return maxOf(child)
	}
	return nil
}

// maxChildBelow returns the child with the greatest key byte < c.
func maxChildBelow(n artNode, c byte) artNode {
	switch nd := n.(type) {
	case *node4:
		for i := nd.n - 1; i >= 0; i-- {
			if nd.keys[i] < c {
				return nd.children[i]
			}
		}
	case *node16:
		for i := nd.n - 1; i >= 0; i-- {
			if nd.keys[i] < c {
				return nd.children[i]
			}
		}
	case *node48:
		for b := int(c) - 1; b >= 0; b-- {
			if s := nd.index[b]; s >= 0 {
				return nd.children[s]
			}
		}
	case *node256:
		for b := int(c) - 1; b >= 0; b-- {
			if nd.children[b] != nil {
				return nd.children[b]
			}
		}
	}
	return nil
}

// maxOf returns the leaf under the greatest key of the subtree.
func maxOf(n artNode) *leaf {
	for {
		if e, ok := n.(*entry); ok {
			return e.ref
		}
		switch nd := n.(type) {
		case *node4:
			n = nd.children[nd.n-1]
		case *node16:
			n = nd.children[nd.n-1]
		case *node48:
			for b := 255; b >= 0; b-- {
				if s := nd.index[b]; s >= 0 {
					n = nd.children[s]
					break
				}
			}
		case *node256:
			for b := 255; b >= 0; b-- {
				if nd.children[b] != nil {
					n = nd.children[b]
					break
				}
			}
		}
	}
}

// minOf returns the leaf under the smallest key of the subtree.
func minOf(n artNode) *leaf {
	for {
		if e, ok := n.(*entry); ok {
			return e.ref
		}
		switch nd := n.(type) {
		case *node4:
			n = nd.children[0]
		case *node16:
			n = nd.children[0]
		case *node48:
			for b := 0; b < 256; b++ {
				if s := nd.index[b]; s >= 0 {
					n = nd.children[s]
					break
				}
			}
		case *node256:
			for b := 0; b < 256; b++ {
				if nd.children[b] != nil {
					n = nd.children[b]
					break
				}
			}
		}
	}
}

// footprint estimates the radix tree's memory.
func (ix *index) footprint() int64 {
	var f int64
	var walk func(artNode)
	walk = func(n artNode) {
		switch nd := n.(type) {
		case *entry:
			f += 24
		case *node4:
			f += 64
			for i := 0; i < nd.n; i++ {
				walk(nd.children[i])
			}
		case *node16:
			f += 176
			for i := 0; i < nd.n; i++ {
				walk(nd.children[i])
			}
		case *node48:
			f += 672
			for i := 0; i < 48; i++ {
				if nd.children[i] != nil {
					walk(nd.children[i])
				}
			}
		case *node256:
			f += 2064
			for b := 0; b < 256; b++ {
				if nd.children[b] != nil {
					walk(nd.children[b])
				}
			}
		}
	}
	if ix.root != nil {
		walk(ix.root)
	}
	return f
}
