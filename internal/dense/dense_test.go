package dense

import "testing"

func build(n int) *Array {
	keys := make([]int64, n)
	vals := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i * 2)
		vals[i] = int64(i)
	}
	return FromSorted(keys, vals)
}

func TestFind(t *testing.T) {
	a := build(1000)
	for i := 0; i < 1000; i++ {
		v, ok := a.Find(int64(i * 2))
		if !ok || v != int64(i) {
			t.Fatalf("Find(%d) = (%d,%v)", i*2, v, ok)
		}
		if _, ok := a.Find(int64(i*2 + 1)); ok {
			t.Fatalf("found absent key %d", i*2+1)
		}
	}
}

func TestSumMatchesScan(t *testing.T) {
	a := build(1000)
	for _, r := range [][2]int64{{0, 1998}, {100, 200}, {-5, 5}, {1999, 5000}, {3, 3}} {
		cnt, sum := a.Sum(r[0], r[1])
		wc, ws := 0, int64(0)
		a.ScanRange(r[0], r[1], func(_, v int64) bool { wc++; ws += v; return true })
		if cnt != wc || sum != ws {
			t.Fatalf("Sum(%d,%d) = (%d,%d), scan says (%d,%d)", r[0], r[1], cnt, sum, wc, ws)
		}
	}
	cnt, _ := a.SumAll()
	if cnt != 1000 {
		t.Fatalf("SumAll count %d", cnt)
	}
}

func TestEmptyAndEdge(t *testing.T) {
	a := FromSorted(nil, nil)
	if a.Size() != 0 {
		t.Fatal("size")
	}
	if _, ok := a.Find(1); ok {
		t.Fatal("found in empty")
	}
	cnt, _ := a.Sum(-100, 100)
	if cnt != 0 {
		t.Fatal("sum in empty")
	}
}

func TestUnsortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSorted([]int64{2, 1}, []int64{0, 0})
}

func TestFootprint(t *testing.T) {
	a := build(1024)
	if f := a.FootprintBytes(); f < 1024*16 || f > 1024*16+64 {
		t.Fatalf("footprint %d, want ~%d", f, 1024*16)
	}
}
