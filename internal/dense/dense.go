// Package dense implements the static sorted dense array: the paper's
// upper bound for scan throughput ("close to dense column scans") and the
// storage model of static columnar data. It supports no updates; it
// exists so benchmarks can report the gap the RMA is closing. Being one
// sorted column, every navigation and order-statistic query is a binary
// search or a direct index access — the lower bound the sparse
// structures are measured against.
package dense

import (
	"fmt"
	"iter"
)

// Array is an immutable sorted column of key/value pairs.
type Array struct {
	keys []int64
	vals []int64
}

// FromSorted builds the array from sorted parallel slices (not copied).
func FromSorted(keys, vals []int64) *Array {
	if len(keys) != len(vals) {
		panic("dense: length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			panic(fmt.Sprintf("dense: input not sorted at %d", i))
		}
	}
	return &Array{keys: keys, vals: vals}
}

// Size returns the number of elements.
func (a *Array) Size() int { return len(a.keys) }

// Find returns a value stored under key.
func (a *Array) Find(key int64) (int64, bool) {
	i := a.lowerBound(key)
	if i < len(a.keys) && a.keys[i] == key {
		return a.vals[i], true
	}
	return 0, false
}

func (a *Array) lowerBound(key int64) int {
	lo, hi := 0, len(a.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (a *Array) upperBound(key int64) int {
	lo, hi := 0, len(a.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Min returns the smallest key.
func (a *Array) Min() (int64, bool) {
	if len(a.keys) == 0 {
		return 0, false
	}
	return a.keys[0], true
}

// Max returns the largest key.
func (a *Array) Max() (int64, bool) {
	if len(a.keys) == 0 {
		return 0, false
	}
	return a.keys[len(a.keys)-1], true
}

// Floor returns the greatest element with key <= x.
func (a *Array) Floor(x int64) (key, val int64, ok bool) {
	if i := a.upperBound(x) - 1; i >= 0 {
		return a.keys[i], a.vals[i], true
	}
	return 0, 0, false
}

// Ceiling returns the smallest element with key >= x.
func (a *Array) Ceiling(x int64) (key, val int64, ok bool) {
	if i := a.lowerBound(x); i < len(a.keys) {
		return a.keys[i], a.vals[i], true
	}
	return 0, 0, false
}

// Rank returns the number of elements with key strictly less than x.
func (a *Array) Rank(x int64) int { return a.lowerBound(x) }

// CountRange returns the number of elements with lo <= key <= hi.
func (a *Array) CountRange(lo, hi int64) int {
	if lo > hi {
		return 0
	}
	return a.upperBound(hi) - a.lowerBound(lo)
}

// Select returns the i-th smallest element (0-based).
func (a *Array) Select(i int) (key, val int64, ok bool) {
	if i < 0 || i >= len(a.keys) {
		return 0, 0, false
	}
	return a.keys[i], a.vals[i], true
}

// IterAscend returns a lazy ascending iterator over [lo, hi].
func (a *Array) IterAscend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if lo > hi {
			return
		}
		for i := a.lowerBound(lo); i < len(a.keys); i++ {
			if a.keys[i] > hi {
				return
			}
			if !yield(a.keys[i], a.vals[i]) {
				return
			}
		}
	}
}

// IterDescend returns a lazy descending iterator over [lo, hi].
func (a *Array) IterDescend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if lo > hi {
			return
		}
		for i := a.upperBound(hi) - 1; i >= 0; i-- {
			if a.keys[i] < lo {
				return
			}
			if !yield(a.keys[i], a.vals[i]) {
				return
			}
		}
	}
}

// ScanRange calls yield for every element with lo <= key <= hi.
func (a *Array) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	for i := a.lowerBound(lo); i < len(a.keys); i++ {
		if a.keys[i] > hi {
			return
		}
		if !yield(a.keys[i], a.vals[i]) {
			return
		}
	}
}

// Sum aggregates elements in [lo, hi]: the dense column scan all sparse
// structures are measured against.
func (a *Array) Sum(lo, hi int64) (count int, sum int64) {
	i := a.lowerBound(lo)
	j := i
	for j < len(a.keys) && a.keys[j] <= hi {
		j++
	}
	for k := i; k < j; k++ {
		sum += a.vals[k]
	}
	return j - i, sum
}

// SumAll aggregates the whole column.
func (a *Array) SumAll() (count int, sum int64) {
	var s int64
	for _, v := range a.vals {
		s += v
	}
	return len(a.keys), s
}

// FootprintBytes returns the memory held: exactly 16 bytes per element,
// the optimum the paper compares sparse-array footprints against.
func (a *Array) FootprintBytes() int64 {
	return int64(cap(a.keys))*8 + int64(cap(a.vals))*8 + 48
}
