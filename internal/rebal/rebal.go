// Package rebal is the asynchronous maintenance layer of the sharded
// serving stack: a pool of worker goroutines that executes the window
// rebalances, adaptive spreads and resizes the engine's deferred-mode
// writers queued instead of running synchronously (see
// internal/core/pending.go and CONCURRENCY.md).
//
// The pool never touches engine state directly. It drives a Source —
// implemented by internal/shard.Map — whose MaintainShard method
// acquires the shard's lock for exactly one bounded slice of work (one
// rebalance or resize) and releases it, so maintenance interleaves with
// foreground traffic at fine granularity instead of stalling a shard
// for a whole backlog.
//
// Fairness: workers share one atomic round-robin cursor over the shard
// indices. A worker does one slice on the cursor's shard and moves on,
// so a flood of deferred windows on one shard cannot starve another
// shard's maintenance — every K-th slice visits any given shard
// regardless of backlog skew. Workers park only after a full clean
// sweep (K consecutive empty slices) and are woken by Notify, which
// writers call after leaving deferred work behind.
package rebal

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Scheduler is the optional periodic surface of a Source: when the
// Source also implements it, the pool runs a dedicated goroutine that
// calls SchedulerTick at a fixed cadence for as long as the pool is
// open. internal/shard.Map uses it for the automatic checkpoint
// scheduler — threshold checks that must keep firing even while the
// workers never park (sustained write load is exactly when WAL-bytes
// and dirty-page thresholds matter most).
type Scheduler interface {
	SchedulerTick()
}

// Source is the maintenance surface the pool drives. internal/shard.Map
// implements it; tests substitute fakes.
type Source interface {
	// NumShards returns the number of independently lockable shards.
	NumShards() int
	// MaintainShard performs at most one bounded slice of deferred work
	// on shard i under its lock, reporting whether an entry was
	// processed. Errors are storage-allocation failures; the shard
	// stays consistent and the entry is consumed.
	MaintainShard(i int) (bool, error)
}

// Pool runs background maintenance workers over a Source. Create with
// NewPool, then Start; Close drains every queued entry and stops the
// workers. All methods are safe for concurrent use; Close is
// idempotent.
type Pool struct {
	src     Source
	workers int

	cursor atomic.Uint64 // shared round-robin shard cursor
	wake   chan struct{} // coalesced writer wakeups, cap = workers
	done   chan struct{}
	wg     sync.WaitGroup

	// schedPeriod is the SchedulerTick cadence (SetSchedulerPeriod
	// before Start; defaults to 250ms).
	schedPeriod time.Duration

	started   atomic.Bool
	closeOnce sync.Once
	closeErr  error

	errMu   sync.Mutex
	lastErr error
}

// NewPool builds a pool of the given number of workers (minimum 1) over
// src. The pool is inert until Start.
func NewPool(src Source, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		src:         src,
		workers:     workers,
		wake:        make(chan struct{}, workers),
		done:        make(chan struct{}),
		schedPeriod: 250 * time.Millisecond,
	}
}

// SetSchedulerPeriod overrides the SchedulerTick cadence. Call before
// Start (tests tighten it to force scheduler activity quickly).
func (p *Pool) SetSchedulerPeriod(d time.Duration) {
	if d > 0 {
		p.schedPeriod = d
	}
}

// Start launches the worker goroutines — plus, when the Source is also
// a Scheduler, the periodic ticker goroutine that drives it. Starting
// twice panics (the lifecycle is New → Start → Close).
func (p *Pool) Start() {
	if !p.started.CompareAndSwap(false, true) {
		panic("rebal: Pool started twice")
	}
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.run()
	}
	if sched, ok := p.src.(Scheduler); ok {
		p.wg.Add(1)
		go p.tick(sched)
	}
}

// tick drives the Source's periodic scheduler until Close.
func (p *Pool) tick(sched Scheduler) {
	defer p.wg.Done()
	t := time.NewTicker(p.schedPeriod)
	defer t.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-t.C:
			sched.SchedulerTick()
		}
	}
}

// Notify wakes a parked worker. Writers call it (outside any shard
// lock) after an operation left deferred windows pending. Non-blocking
// and coalescing: a burst of notifies costs one channel send.
func (p *Pool) Notify() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Close stops the pool: workers exit, then every shard's remaining
// backlog is drained synchronously, so a closed pool leaves no deferred
// work behind. Idempotent — extra Closes return the first result.
func (p *Pool) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		if p.started.Load() {
			p.wg.Wait()
		}
		p.closeErr = p.drainAll()
		if p.closeErr == nil {
			p.errMu.Lock()
			p.closeErr = p.lastErr
			p.errMu.Unlock()
		}
	})
	return p.closeErr
}

// drainAll empties every shard's queue, shard by shard.
func (p *Pool) drainAll() error {
	for i := 0; i < p.src.NumShards(); i++ {
		for {
			did, err := p.src.MaintainShard(i)
			if err != nil {
				return fmt.Errorf("rebal: draining shard %d: %w", i, err)
			}
			if !did {
				break
			}
		}
	}
	return nil
}

// run is one worker: round-robin slices until a clean sweep, then park.
func (p *Pool) run() {
	defer p.wg.Done()
	k := p.src.NumShards()
	idle := 0
	for {
		select {
		case <-p.done:
			return
		default:
		}
		i := int(p.cursor.Add(1)-1) % k
		did, err := p.src.MaintainShard(i)
		if err != nil {
			// Storage-allocation failure (failure injection in tests):
			// the entry is consumed and the shard stays consistent, so
			// record it and keep maintaining.
			p.errMu.Lock()
			p.lastErr = err
			p.errMu.Unlock()
		}
		if did {
			idle = 0
			continue
		}
		if idle++; idle < k {
			continue // finish sweeping the other shards before parking
		}
		// Clean sweep: nothing left to maintain, so this is a natural
		// quiesce point. Sources running epoch-protected readers
		// (shard.Map with lock-free reads) drain their retired-page
		// limbo here, so reclamation keeps pace even when no writer
		// shows up to advance the epoch.
		if q, ok := p.src.(interface{ Quiesce() }); ok {
			q.Quiesce()
		}
		select {
		case <-p.wake:
			idle = 0
		case <-p.done:
			return
		}
	}
}
