package rebal

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeSource is a deterministic Source: per-shard work counters guarded
// by one mutex, mirroring the shard layer's one-lock-per-slice shape.
type fakeSource struct {
	mu      sync.Mutex
	backlog []int // remaining slices per shard
	done    []int // slices executed per shard
	err     error // returned once per MaintainShard while set
}

func newFakeSource(backlog ...int) *fakeSource {
	return &fakeSource{backlog: backlog, done: make([]int, len(backlog))}
}

func (f *fakeSource) NumShards() int { return len(f.backlog) }

func (f *fakeSource) MaintainShard(i int) (bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return false, f.err
	}
	if f.backlog[i] == 0 {
		return false, nil
	}
	f.backlog[i]--
	f.done[i]++
	return true, nil
}

func (f *fakeSource) add(i, n int) {
	f.mu.Lock()
	f.backlog[i] += n
	f.mu.Unlock()
}

func (f *fakeSource) snapshot() (backlog, done []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.backlog...), append([]int(nil), f.done...)
}

// TestCloseDrainsPending: work queued before (and while) the pool is
// closing must be fully executed by the time Close returns.
func TestCloseDrainsPending(t *testing.T) {
	src := newFakeSource(500, 300, 200, 100)
	p := NewPool(src, 2)
	p.Start()
	p.Notify()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	backlog, done := src.snapshot()
	for i, b := range backlog {
		if b != 0 {
			t.Errorf("shard %d: %d slices left after Close", i, b)
		}
	}
	want := []int{500, 300, 200, 100}
	for i := range want {
		if done[i] != want[i] {
			t.Errorf("shard %d: executed %d slices, want %d", i, done[i], want[i])
		}
	}
}

// TestCloseWithoutStartDrains: a pool that never started still drains
// on Close (the lifecycle contract is "Close leaves nothing pending").
func TestCloseWithoutStartDrains(t *testing.T) {
	src := newFakeSource(10, 20)
	p := NewPool(src, 4)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if backlog, _ := src.snapshot(); backlog[0] != 0 || backlog[1] != 0 {
		t.Fatalf("backlog %v left after Close without Start", backlog)
	}
}

// TestDoubleCloseSafe: Close is idempotent and returns the first result.
func TestDoubleCloseSafe(t *testing.T) {
	src := newFakeSource(50, 50)
	p := NewPool(src, 3)
	p.Start()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// And concurrently, under -race.
	p2 := NewPool(newFakeSource(10), 2)
	p2.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p2.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestCloseReportsDrainError: an allocation failure during the final
// drain surfaces from Close.
func TestCloseReportsDrainError(t *testing.T) {
	src := newFakeSource(5)
	src.err = errors.New("injected")
	p := NewPool(src, 1)
	if err := p.Close(); err == nil {
		t.Fatal("Close swallowed the drain error")
	}
}

// TestFloodDoesNotStarveOtherShards: with shard 0 continuously
// refilled, the other shards' backlogs must still drain — the
// round-robin cursor guarantees every K-th slice visits each shard.
func TestFloodDoesNotStarveOtherShards(t *testing.T) {
	src := newFakeSource(0, 64, 64, 64)
	p := NewPool(src, 2)
	p.Start()
	defer p.Close()

	// Flooder: keeps shard 0's backlog topped up and the pool awake.
	stop := make(chan struct{})
	var flood sync.WaitGroup
	flood.Add(1)
	go func() {
		defer flood.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			src.add(0, 8)
			p.Notify()
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		backlog, _ := src.snapshot()
		if backlog[1] == 0 && backlog[2] == 0 && backlog[3] == 0 {
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			flood.Wait()
			t.Fatalf("shards 1-3 starved under a shard-0 flood: backlog %v", backlog)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	flood.Wait()
}

// TestNotifyWakesParkedWorkers: after a clean sweep the workers park;
// new work plus Notify must get executed without Close.
func TestNotifyWakesParkedWorkers(t *testing.T) {
	src := newFakeSource(0, 0)
	p := NewPool(src, 1)
	p.Start()
	defer p.Close()

	time.Sleep(10 * time.Millisecond) // let the worker park
	src.add(1, 25)
	p.Notify()

	deadline := time.Now().Add(10 * time.Second)
	for {
		backlog, done := src.snapshot()
		if backlog[1] == 0 && done[1] == 25 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("parked worker never woke: backlog %v done %v", backlog, done)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStartTwicePanics pins the lifecycle contract.
func TestStartTwicePanics(t *testing.T) {
	p := NewPool(newFakeSource(0), 1)
	p.Start()
	defer p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	p.Start()
}
