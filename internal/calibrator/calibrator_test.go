package calibrator

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for name, th := range map[string]Thresholds{
		"update-oriented": UpdateOriented(),
		"scan-oriented":   ScanOriented(),
		"baseline":        Baseline(),
	} {
		if err := th.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	bad := []Thresholds{
		{Rho1: 0.5, RhoH: 0.3, TauH: 0.75, Tau1: 1},                         // rho1 >= rhoH
		{Rho1: 0.1, RhoH: 0.8, TauH: 0.75, Tau1: 1},                         // rhoH > tauH
		{Rho1: 0.1, RhoH: 0.3, TauH: 1.0, Tau1: 1.0},                        // tauH >= tau1
		{Rho1: -0.1, RhoH: 0.3, TauH: 0.75, Tau1: 1},                        // negative
		{Rho1: 0.1, RhoH: 0.5, TauH: 0.75, Tau1: 1, Strategy: ResizeDouble}, // 2*rhoH > tauH
		{Rho1: 0.1, RhoH: 0.3, TauH: 0.75, Tau1: 1, ForceShrinkFill: 1.5},   // bad fill
	}
	for i, th := range bad {
		if err := th.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTreeGeometry(t *testing.T) {
	c := NewTree(4, UpdateOriented())
	if c.Height() != 3 {
		t.Fatalf("height of 4 segments: got %d want 3", c.Height())
	}
	// Fig 2a: 4 segments, windows by level.
	cases := []struct{ seg, level, lo, hi int }{
		{0, 1, 0, 1}, {3, 1, 3, 4},
		{0, 2, 0, 2}, {1, 2, 0, 2}, {2, 2, 2, 4},
		{0, 3, 0, 4}, {3, 3, 0, 4},
	}
	for _, tc := range cases {
		lo, hi := c.Window(tc.seg, tc.level)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("Window(%d,%d) = [%d,%d), want [%d,%d)", tc.seg, tc.level, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestThresholdInterpolation(t *testing.T) {
	th := Thresholds{Rho1: 0.1, RhoH: 0.3, TauH: 0.75, Tau1: 1.0}
	c := NewTree(4, th) // height 3
	rho1, tau1 := c.At(1)
	if rho1 != 0.1 || tau1 != 1.0 {
		t.Fatalf("leaf level: got (%v,%v)", rho1, tau1)
	}
	rhoH, tauH := c.At(3)
	if rhoH != 0.3 || tauH != 0.75 {
		t.Fatalf("root level: got (%v,%v)", rhoH, tauH)
	}
	rho2, tau2 := c.At(2)
	if math.Abs(rho2-0.2) > 1e-12 || math.Abs(tau2-0.875) > 1e-12 {
		t.Fatalf("mid level: got (%v,%v), want (0.2, 0.875) as in Fig 2a", rho2, tau2)
	}
}

func TestThresholdMonotoneAcrossLevels(t *testing.T) {
	f := func(hseed uint8) bool {
		segs := 1 << (hseed%10 + 1)
		c := NewTree(segs, UpdateOriented())
		prevRho, prevTau := c.At(1)
		for l := 2; l <= c.Height(); l++ {
			rho, tau := c.At(l)
			if rho < prevRho || tau > prevTau {
				return false // rho must rise, tau must fall toward the root
			}
			if !(rho < tau) {
				return false
			}
			prevRho, prevTau = rho, tau
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSegmentTree(t *testing.T) {
	c := NewTree(1, UpdateOriented())
	if c.Height() != 1 {
		t.Fatalf("height: %d", c.Height())
	}
	rho, tau := c.At(1)
	if rho != 0.3 || tau != 0.75 {
		t.Fatalf("single-segment thresholds (%v,%v), want root extremes", rho, tau)
	}
	if lo, hi := c.Window(0, 1); lo != 0 || hi != 1 {
		t.Fatalf("window [%d,%d)", lo, hi)
	}
}

func TestNonPowerOfTwoWindowsClip(t *testing.T) {
	// Arbitrary segment counts (proportional resizes produce them): the
	// window containing the trailing segments clips at the array end.
	c := NewTree(6, UpdateOriented())
	if c.Height() != 4 {
		t.Fatalf("height of 6 segments: got %d want 4", c.Height())
	}
	if lo, hi := c.Window(5, 2); lo != 4 || hi != 6 {
		t.Fatalf("Window(5,2) = [%d,%d), want [4,6)", lo, hi)
	}
	if lo, hi := c.Window(5, 3); lo != 4 || hi != 6 {
		t.Fatalf("Window(5,3) = [%d,%d), want clipped [4,6)", lo, hi)
	}
	if lo, hi := c.Window(5, 4); lo != 0 || hi != 6 {
		t.Fatalf("Window(5,4) = [%d,%d), want the whole array", lo, hi)
	}
	if lo, hi := c.Window(1, 2); lo != 0 || hi != 2 {
		t.Fatalf("Window(1,2) = [%d,%d)", lo, hi)
	}
}

func TestGrowCapacityDoubling(t *testing.T) {
	c := NewTree(8, UpdateOriented())
	if got := c.GrowCapacity(1024, 1024, 128); got != 2048 {
		t.Fatalf("doubling grow: got %d", got)
	}
}

func TestGrowCapacityProportional(t *testing.T) {
	c := NewTree(8, ScanOriented())
	// n=1024 at tauH=rhoH=0.75: want ceil(2*1024/1.5) = 1366, rounded up
	// to the 128-slot granule: 1408 — the proportional strategy lands
	// close to its target density instead of jumping to a power of two.
	if got := c.GrowCapacity(1024, 1024, 128); got != 1408 {
		t.Fatalf("proportional grow: got %d", got)
	}
	// Even if n already fits, an expansion must expand by a granule.
	if got := c.GrowCapacity(4096, 100, 128); got != 4224 {
		t.Fatalf("forced expansion: got %d", got)
	}
}

func TestShrinkCapacity(t *testing.T) {
	c := NewTree(8, UpdateOriented())
	if got := c.ShrinkCapacity(2048, 100, 128, 256); got != 1024 {
		t.Fatalf("halving shrink: got %d", got)
	}
	if got := c.ShrinkCapacity(256, 10, 128, 256); got != 256 {
		t.Fatalf("shrink below min must be refused: got %d", got)
	}
	s := NewTree(8, ScanOriented())
	// n=300: want 2*300/1.5 = 400, rounded up to the 128 granule: 512.
	if got := s.ShrinkCapacity(2048, 300, 128, 256); got != 512 {
		t.Fatalf("proportional shrink: got %d", got)
	}
	// No shrink when the target is at or above the current capacity.
	if got := s.ShrinkCapacity(512, 300, 128, 256); got != 512 {
		t.Fatalf("needless shrink: got %d", got)
	}
}

// The 2*rhoH <= tauH constraint exists so that halving the capacity after
// a shrink cannot immediately violate the upper threshold; verify the
// arithmetic for the update-oriented preset.
func TestDoublingConsistency(t *testing.T) {
	th := UpdateOriented()
	if 2*th.RhoH > th.TauH {
		t.Fatal("update-oriented preset violates 2*rhoH <= tauH")
	}
	// Fill at rhoH, then double: density halves and must stay >= rho1...
	// density after doubling = rhoH/2; the array is valid as long as the
	// root window can later re-satisfy rhoH by shrinking, i.e. rhoH/2 >= rho1.
	if th.RhoH/2 < th.Rho1 {
		t.Fatal("doubling from rhoH would violate rho1")
	}
}
