// Package calibrator implements the calibrator tree of a packed memory
// array: the implicit binary tree over the segments whose per-level
// density thresholds decide when and how widely to rebalance (Section II
// of the paper, Fig 2a).
//
// The tree is never materialized; levels and windows are pure arithmetic
// over segment indices, which is all the rebalancing procedures need.
package calibrator

import (
	"fmt"
	"math"
)

// ResizeStrategy selects how the array capacity changes on resize
// (Section II, "Density thresholds").
type ResizeStrategy int

const (
	// ResizeDouble doubles (halves) the capacity: the update-oriented
	// approach, which requires 2*RhoH <= TauH for consistency.
	ResizeDouble ResizeStrategy = iota
	// ResizeProportional sets the capacity to 2N/(TauH+RhoH): the
	// scan-oriented approach, which keeps the array close to its target
	// density after every resize.
	ResizeProportional
)

// Thresholds holds the four extreme density thresholds of the calibrator
// tree; intermediate levels are interpolated arithmetically. The required
// order is 0 <= Rho1 < RhoH <= TauH < Tau1 <= 1: Rho1/Tau1 bound the
// segments (leaves), RhoH/TauH bound the root.
type Thresholds struct {
	Rho1, RhoH, TauH, Tau1 float64
	Strategy               ResizeStrategy
	// ForceShrinkFill, when > 0, forces a resize whenever a deletion
	// leaves the global fill factor below this value. The paper's
	// scan-oriented configuration sets it to 0.5 so the minimum potential
	// fill factor stays at 50% even though Rho1 = 0.
	ForceShrinkFill float64
}

// UpdateOriented returns the paper's update-oriented thresholds (UT):
// rho1=0.08, rhoH=0.3, tauH=0.75, tau1=1, doubling resizes. These mimic
// the configuration of prior PMA implementations and are the defaults of
// the evaluation (Section V, "Density thresholds").
func UpdateOriented() Thresholds {
	return Thresholds{Rho1: 0.08, RhoH: 0.3, TauH: 0.75, Tau1: 1.0, Strategy: ResizeDouble}
}

// ScanOriented returns the paper's scan-oriented thresholds (ST):
// rho1=0, rhoH=tauH=0.75, tau1=1, proportional resizes, plus the forced
// shrink at fill < 50% after deletions (Section III, "Scan-oriented
// thresholds").
func ScanOriented() Thresholds {
	return Thresholds{Rho1: 0, RhoH: 0.75, TauH: 0.75, Tau1: 1.0,
		Strategy: ResizeProportional, ForceShrinkFill: 0.5}
}

// Baseline returns thresholds mimicking the traditional-PMA literature
// (rho1~0.1, rhoH~0.3, tauH~0.75, tau1=0.92), used by the TPMA baseline
// configurations of Fig 1a.
func Baseline() Thresholds {
	return Thresholds{Rho1: 0.1, RhoH: 0.3, TauH: 0.75, Tau1: 0.92, Strategy: ResizeDouble}
}

// Validate checks the ordering constraints on the thresholds.
func (t Thresholds) Validate() error {
	if !(0 <= t.Rho1 && t.Rho1 < t.RhoH && t.RhoH <= t.TauH && t.TauH < t.Tau1 && t.Tau1 <= 1) {
		return fmt.Errorf("calibrator: thresholds must satisfy 0 <= rho1 < rhoH <= tauH < tau1 <= 1, got rho1=%v rhoH=%v tauH=%v tau1=%v",
			t.Rho1, t.RhoH, t.TauH, t.Tau1)
	}
	if t.Strategy == ResizeDouble && 2*t.RhoH > t.TauH {
		return fmt.Errorf("calibrator: doubling resizes require 2*rhoH <= tauH, got rhoH=%v tauH=%v", t.RhoH, t.TauH)
	}
	if t.ForceShrinkFill < 0 || t.ForceShrinkFill > 1 {
		return fmt.Errorf("calibrator: ForceShrinkFill out of [0,1]: %v", t.ForceShrinkFill)
	}
	return nil
}

// Tree is the implicit calibrator tree over numSegs segments. Windows are
// power-of-two segment ranges, clipped at the array end when numSegs is
// not a power of two (arbitrary counts are needed by the proportional
// resize strategy, whose capacities are not powers of two). Level 1 is
// the segment level; level Height() is the root, covering the whole
// array.
type Tree struct {
	numSegs int
	height  int
	th      Thresholds
}

// NewTree builds the implicit tree geometry for numSegs segments.
func NewTree(numSegs int, th Thresholds) Tree {
	if numSegs <= 0 {
		panic(fmt.Sprintf("calibrator: numSegs must be positive, got %d", numSegs))
	}
	h := 1
	for s := numSegs - 1; s > 0; s >>= 1 {
		h++
	}
	if numSegs == 1 {
		h = 1
	}
	return Tree{numSegs: numSegs, height: h, th: th}
}

// NumSegs returns the number of segments (leaves).
func (c Tree) NumSegs() int { return c.numSegs }

// Height returns the number of levels; level l in [1, Height()].
func (c Tree) Height() int { return c.height }

// Thresholds returns the configured extreme thresholds.
func (c Tree) Thresholds() Thresholds { return c.th }

// At returns the (rho, tau) density thresholds of level l, interpolated
// arithmetically between the segment extremes (rho1, tau1) at l=1 and the
// root extremes (rhoH, tauH) at l=Height() (Section II).
func (c Tree) At(l int) (rho, tau float64) {
	if l < 1 || l > c.height {
		panic(fmt.Sprintf("calibrator: level %d out of [1,%d]", l, c.height))
	}
	if c.height == 1 {
		// A single segment is simultaneously leaf and root; use the root
		// bounds, which are the tighter pair.
		return c.th.RhoH, c.th.TauH
	}
	frac := float64(l-1) / float64(c.height-1)
	rho = c.th.Rho1 + (c.th.RhoH-c.th.Rho1)*frac
	tau = c.th.Tau1 - (c.th.Tau1-c.th.TauH)*frac
	return
}

// Window returns the half-open segment interval [lo, hi) of the level-l
// window containing segment seg, clipped at the array end. At level 1
// the window is the segment itself; at level Height() it covers the
// whole array.
func (c Tree) Window(seg, l int) (lo, hi int) {
	if seg < 0 || seg >= c.numSegs {
		panic(fmt.Sprintf("calibrator: segment %d out of [0,%d)", seg, c.numSegs))
	}
	w := 1 << (l - 1) // window size in segments at level l
	lo = seg &^ (w - 1)
	hi = lo + w
	if hi > c.numSegs {
		hi = c.numSegs
	}
	return lo, hi
}

// GrowCapacity returns the new capacity in slots after an expansion,
// given the current capacity, the number of stored elements (including
// the pending insertion), and the capacity granule (slot counts must be
// multiples of granule, the storage page size). Doubling doubles;
// proportional sizing lands on ceil(2N/(tauH+rhoH)) rounded up to the
// granule, the paper's second strategy.
func (c Tree) GrowCapacity(capSlots, n, granule int) int {
	switch c.th.Strategy {
	case ResizeProportional:
		want := roundUp(int(math.Ceil(2*float64(n)/(c.th.TauH+c.th.RhoH))), granule)
		if want <= capSlots {
			want = capSlots + granule // an expansion must expand
		}
		return want
	default:
		return capSlots * 2
	}
}

// ShrinkCapacity returns the new capacity in slots after a contraction,
// or the current capacity if no shrink should happen. minSlots bounds
// the result from below.
func (c Tree) ShrinkCapacity(capSlots, n, granule, minSlots int) int {
	switch c.th.Strategy {
	case ResizeProportional:
		want := roundUp(int(math.Ceil(2*float64(n)/(c.th.TauH+c.th.RhoH))), granule)
		if want < minSlots {
			want = minSlots
		}
		if want >= capSlots {
			return capSlots
		}
		return want
	default:
		out := capSlots / 2
		if out < minSlots {
			return capSlots
		}
		return out
	}
}

// roundUp rounds x up to a multiple of m.
func roundUp(x, m int) int {
	if r := x % m; r != 0 {
		return x + m - r
	}
	return x
}
