package shard

import "iter"

// Merged iteration: shards own disjoint, contiguous key ranges in
// ascending shard order, so a globally ordered traversal is the
// concatenation of per-shard traversals — no heap merge, O(1) walker
// state per shard, one shard lock held at a time. The yielded sequence
// is always globally sorted; under concurrent writers each shard's
// portion is a consistent snapshot, but shards visited later may
// reflect writes that happened after earlier shards were read.
//
// The yield callback runs with the current shard's lock held: it must
// not call back into the same Map.

// IterAscend returns a lazy ascending iterator over elements with
// lo <= key <= hi, merged across shards.
func (m *Map) IterAscend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if lo > hi {
			return
		}
		if m.lockFree {
			m.snapshotAscend(lo, hi, yield)
			return
		}
		jHi := m.shardOf(hi)
		for j := m.shardOf(lo); j <= jHi; j++ {
			if !m.yieldAscend(j, lo, hi, yield) {
				return
			}
		}
	}
}

// IterDescend returns a lazy descending iterator over elements with
// lo <= key <= hi, walking shards right to left.
func (m *Map) IterDescend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if lo > hi {
			return
		}
		if m.lockFree {
			m.snapshotDescend(lo, hi, yield)
			return
		}
		jLo := m.shardOf(lo)
		for j := m.shardOf(hi); j >= jLo; j-- {
			if !m.yieldDescend(j, lo, hi, yield) {
				return
			}
		}
	}
}

// flushDeferred drains the shard's deferred-rebalance backlog before a
// snapshot read; it must run under the shard's lock. Iterators and
// scans call it so every shard they observe is fully rebalanced
// (flush-on-snapshot — see CONCURRENCY.md). A flush error can only be
// a storage-allocation failure, which leaves the shard consistent with
// the work still queued, so reads proceed regardless; the Close paths
// surface it. The seqlock write bracket runs only when there is work
// to flush — an idle flush must not bump the version word, or every
// scan would break every concurrent snapshot for nothing.
func flushDeferred(s *cell) error {
	if s.a.PendingCount() == 0 {
		return nil
	}
	s.beginWrite()
	err := s.a.FlushPending()
	s.endWrite()
	s.advanceEpoch()
	return err
}

// yieldAscend drives shard j's portion of an ascending traversal under
// the shard's lock; it reports false when the consumer stopped early.
func (m *Map) yieldAscend(j int, lo, hi int64, yield func(int64, int64) bool) bool {
	s := &m.shards[j]
	s.mu.Lock()
	defer s.mu.Unlock()
	flushDeferred(s)
	for k, v := range s.a.IterAscend(lo, hi) {
		if !yield(k, v) {
			return false
		}
	}
	return true
}

func (m *Map) yieldDescend(j int, lo, hi int64, yield func(int64, int64) bool) bool {
	s := &m.shards[j]
	s.mu.Lock()
	defer s.mu.Unlock()
	flushDeferred(s)
	for k, v := range s.a.IterDescend(lo, hi) {
		if !yield(k, v) {
			return false
		}
	}
	return true
}

// ScanRange visits every element with lo <= key <= hi in key order via
// the per-shard callback scans (dense-run tight loops).
func (m *Map) ScanRange(lo, hi int64, visit func(key, val int64) bool) {
	if lo > hi {
		return
	}
	if m.lockFree {
		m.SnapshotScanRange(lo, hi, visit)
		return
	}
	jHi := m.shardOf(hi)
	for j := m.shardOf(lo); j <= jHi; j++ {
		s := &m.shards[j]
		s.mu.Lock()
		flushDeferred(s)
		stopped := false
		s.a.ScanRange(lo, hi, func(k, v int64) bool {
			if !visit(k, v) {
				stopped = true
				return false
			}
			return true
		})
		s.mu.Unlock()
		if stopped {
			return
		}
	}
}

// Scan visits every element in key order.
func (m *Map) Scan(visit func(key, val int64) bool) { m.ScanRange(minKey, maxKey, visit) }

// Sum aggregates elements with lo <= key <= hi across shards.
func (m *Map) Sum(lo, hi int64) (count int, sum int64) {
	if lo > hi {
		return 0, 0
	}
	jHi := m.shardOf(hi)
	for j := m.shardOf(lo); j <= jHi; j++ {
		s := &m.shards[j]
		s.mu.Lock()
		flushDeferred(s)
		c, sm := s.a.Sum(lo, hi)
		s.mu.Unlock()
		count += c
		sum += sm
	}
	return count, sum
}

// SumAll aggregates every element.
func (m *Map) SumAll() (count int, sum int64) { return m.Sum(minKey, maxKey) }
