package shard

import (
	"sync"

	"rma/internal/core"
)

// Batched reads: the lookup mirror of ApplyBatch. A batch of point
// probes is grouped per shard in one stable counting-sort pass, then
// each shard is locked exactly once and its group resolved through the
// engine's FindBatch — which sorts the group and amortizes index
// descents across adjacent probes — before the grouped results are
// scattered back into the caller's order. Like Find, a batched read
// does not flush deferred rebalance work: point probes are exact on a
// locally-spread shard (only ordered snapshots need the flush; see
// CONCURRENCY.md).

// getScratch holds one GetBatch call's grouping buffers, pooled so
// steady-state batched reads allocate nothing (concurrent callers each
// take their own scratch from the pool).
type getScratch struct {
	counts, next []int
	homes        []int32
	gkeys        []int64
	gout         []core.Lookup
}

var getPool = sync.Pool{New: func() any { return new(getScratch) }}

func (g *getScratch) size(nKeys, k int) {
	if cap(g.counts) < k+1 {
		g.counts = make([]int, k+1)
		g.next = make([]int, k)
	}
	g.counts = g.counts[:k+1]
	g.next = g.next[:k]
	clear(g.counts)
	if cap(g.homes) < nKeys {
		g.homes = make([]int32, nKeys)
		g.gkeys = make([]int64, nKeys)
		g.gout = make([]core.Lookup, nKeys)
	}
	g.homes = g.homes[:nKeys]
	g.gkeys = g.gkeys[:nKeys]
	g.gout = g.gout[:nKeys]
}

// GetBatch resolves a batch of point lookups: out is grown to
// len(keys) (reused when its capacity suffices) and out[i] answers
// keys[i]. Each shard is locked exactly once; like every multi-shard
// operation the batch is consistent per shard, not across shards —
// concurrent writers can interleave between shard visits.
func (m *Map) GetBatch(keys []int64, out []core.Lookup) []core.Lookup {
	if cap(out) < len(keys) {
		out = make([]core.Lookup, len(keys))
	}
	out = out[:len(keys)]
	if len(keys) == 0 {
		return out
	}
	k := len(m.shards)
	g := getPool.Get().(*getScratch)
	defer getPool.Put(g)
	g.size(len(keys), k)

	// Stable counting-sort of the probes by shard.
	for i, key := range keys {
		h := m.shardOf(key)
		g.homes[i] = int32(h)
		g.counts[h+1]++
	}
	for i := 1; i <= k; i++ {
		g.counts[i] += g.counts[i-1]
	}
	copy(g.next, g.counts[:k])
	for i, key := range keys {
		h := g.homes[i]
		g.gkeys[g.next[h]] = key
		g.next[h]++
	}

	// One lock and one engine-level batch per non-empty shard group —
	// unless lock-free reads are on, in which case each group first
	// attempts the seqlock path (all-or-nothing per shard, preserving
	// the per-shard atomicity contract) and only locks on fallback.
	for j := 0; j < k; j++ {
		lo, hi := g.counts[j], g.counts[j+1]
		if lo == hi {
			continue
		}
		if m.lockFree && m.seqFindGroup(j, g.gkeys[lo:hi], g.gout[lo:hi]) {
			continue
		}
		s := &m.shards[j]
		s.mu.Lock()
		res := s.a.FindBatch(g.gkeys[lo:hi], g.gout[lo:hi])
		s.mu.Unlock()
		// FindBatch reuses the passed slice when its capacity suffices
		// (it always does here); copy back defensively otherwise.
		if &res[0] != &g.gout[lo] {
			copy(g.gout[lo:hi], res)
		}
	}

	// Scatter the grouped results back into batch order.
	copy(g.next, g.counts[:k])
	for i := range keys {
		h := g.homes[i]
		out[i] = g.gout[g.next[h]]
		g.next[h]++
	}
	return out
}
