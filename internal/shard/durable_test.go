package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rma/internal/rebal"
	"rma/internal/vmem"
)

func durableMap(t *testing.T, k int) (*Map, string) {
	t.Helper()
	dir := t.TempDir()
	m := mustNew(t, k, UniformSeps(k))
	if err := m.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.CloseDurability() })
	return m, dir
}

func reopenMap(t *testing.T, dir string) *Map {
	t.Helper()
	m, err := OpenMap(dir, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.CloseDurability() })
	return m
}

func fillMap(t *testing.T, m *Map, lo, hi int64) {
	t.Helper()
	for k := lo; k < hi; k++ {
		if err := m.Insert(k*1_000_003, k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMapCheckpointOpenRoundTrip(t *testing.T) {
	m, dir := durableMap(t, 4)
	fillMap(t, m, -3000, 3000)
	if err := m.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if m.PublishedCheckpoints() != 1 {
		t.Fatalf("PublishedCheckpoints = %d", m.PublishedCheckpoints())
	}
	size := m.Size()
	m.CloseDurability()

	r := reopenMap(t, dir)
	if r.Size() != size {
		t.Fatalf("recovered size %d, want %d", r.Size(), size)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for k := int64(-3000); k < 3000; k++ {
		v, ok := r.Find(k * 1_000_003)
		if !ok || v != k {
			t.Fatalf("Find(%d) = %d,%v", k*1_000_003, v, ok)
		}
	}
	// The recovered map keeps checkpointing incrementally.
	fillMap(t, r, 3000, 3500)
	if err := r.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
}

func TestMapOpenWithoutCheckpointFails(t *testing.T) {
	m, dir := durableMap(t, 3)
	fillMap(t, m, 0, 100)
	// No round published yet: the tree must not be recoverable.
	if _, err := OpenMap(dir, testConfig()); !errors.Is(err, vmem.ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

// TestMapRecoversLastPublishedRound pins cross-shard atomicity: shards
// that checkpointed as part of an unpublished round must recover at the
// previous published round, not at their newer per-shard epochs.
func TestMapRecoversLastPublishedRound(t *testing.T) {
	m, dir := durableMap(t, 4)
	fillMap(t, m, 0, 2000)
	if err := m.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// Second round: every shard checkpoints, but the map publish dies —
	// the moment a kill -9 between shard checkpoints and publish models.
	fillMap(t, m, 2000, 4000)
	m.InjectPublishFault()
	if err := m.CheckpointAll(); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("want injected publish fault, got %v", err)
	}
	if m.PublishedCheckpoints() != 1 {
		t.Fatalf("PublishedCheckpoints = %d after failed publish", m.PublishedCheckpoints())
	}
	m.CloseDurability()

	r := reopenMap(t, dir)
	if r.Size() != 2000 {
		t.Fatalf("recovered %d elements, want the 2000 of round 1", r.Size())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMapCheckpointRetryAfterPublishFault pins graceful degradation at
// the map level: after a failed publish the map keeps serving, and the
// next round publishes everything.
func TestMapCheckpointRetryAfterPublishFault(t *testing.T) {
	m, dir := durableMap(t, 2)
	fillMap(t, m, 0, 1000)
	m.InjectPublishFault()
	if err := m.CheckpointAll(); err == nil {
		t.Fatal("want publish failure")
	}
	fillMap(t, m, 1000, 1100)
	if err := m.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	m.CloseDurability()
	r := reopenMap(t, dir)
	if r.Size() != 1100 {
		t.Fatalf("recovered %d, want 1100", r.Size())
	}
}

// TestMapShardFaultFailsRound pins the shard→map failure path: a vmem
// fault inside one shard's checkpoint poisons the round (no publish),
// the map keeps serving, and a retry succeeds.
func TestMapShardFaultFailsRound(t *testing.T) {
	m, dir := durableMap(t, 3)
	fillMap(t, m, 0, 1500)
	m.ShardRegion(1).InjectFault(vmem.FaultManifestSync, 0)
	if err := m.CheckpointAll(); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if m.PublishedCheckpoints() != 0 {
		t.Fatal("round with a failed shard must not publish")
	}
	if m.Stats().CheckpointFailures == 0 {
		t.Fatal("CheckpointFailures not recorded")
	}
	fillMap(t, m, 1500, 1600)
	if err := m.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	m.CloseDurability()
	if r := reopenMap(t, dir); r.Size() != 1600 {
		t.Fatalf("recovered %d, want 1600", r.Size())
	}
}

// TestAsyncCheckpointViaMaintenancePool drives a checkpoint round
// through internal/rebal's workers: RequestCheckpoint flags the shards,
// the pool folds each shard's checkpoint into its sweep, and the last
// finisher publishes — all while foreground writers keep inserting.
func TestAsyncCheckpointViaMaintenancePool(t *testing.T) {
	m, dir := durableMap(t, 4)
	pool := rebal.NewPool(m, 2)
	m.EnableDeferredRebalancing(pool.Notify)
	pool.Start()
	defer pool.Close()

	fillMap(t, m, 0, 2000)
	if !m.RequestCheckpoint() {
		t.Fatal("RequestCheckpoint refused")
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := int64(2000); !stop.Load(); k++ {
			if err := m.Insert(k*1_000_003, k); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	waitUntil(t, func() bool { return m.PublishedCheckpoints() == 1 })
	stop.Store(true)
	wg.Wait()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	m.CloseDurability()
	r := reopenMap(t, dir)
	if r.Size() < 2000 {
		t.Fatalf("recovered %d, want >= 2000", r.Size())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAllocFailureUnderBackgroundRebalance pins the sharded layer's
// degraded mode under -race: with the maintenance pool executing
// deferred rebalances in the background, a persistent allocation
// failure on one shard surfaces as ErrAllocFailed to that shard's
// writers (foreground or maintenance), while concurrent readers and the
// other shards' writers keep serving; Stats records every failure, the
// map stays structurally valid throughout, and lifting the injection
// restores full service.
func TestAllocFailureUnderBackgroundRebalance(t *testing.T) {
	m := mustNew(t, 2, UniformSeps(2))
	pool := rebal.NewPool(m, 2)
	m.EnableDeferredRebalancing(pool.Notify)
	pool.Start()
	defer pool.Close()

	// Warm both shards, then arm shard 0 (negative keys): every next
	// allocation on its key space fails, so the next grow or rewired
	// rebalance — foreground or background — trips.
	for k := int64(0); k < 2000; k++ {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		if err := m.Insert(-k-1, k); err != nil {
			t.Fatal(err)
		}
	}
	m.InjectAllocFailure(0, 0, -1)

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for k := seed; !stop.Load(); k++ {
				m.Find(k % 4000)
				m.Contains(-(k % 4000) - 1)
			}
		}(int64(r + 1))
	}
	var failed, healthyErrs int
	for k := int64(2000); k < 30_000; k++ {
		if err := m.Insert(-k-1, k); err != nil {
			if !errors.Is(err, vmem.ErrAllocFailed) {
				t.Fatalf("shard 0 insert: %v", err)
			}
			failed++
		}
		if err := m.Insert(k, k); err != nil {
			healthyErrs++ // shard 1 must never fail
		}
	}
	stop.Store(true)
	wg.Wait()
	if healthyErrs != 0 {
		t.Fatalf("healthy shard saw %d insert failures", healthyErrs)
	}
	if failed == 0 {
		t.Fatal("armed shard never surfaced ErrAllocFailed")
	}
	if m.Stats().AllocFailures == 0 {
		t.Fatal("Stats.AllocFailures not recorded")
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("map invalid in degraded mode: %v", err)
	}
	// Lift the injection: shard 0 resumes growing.
	m.InjectAllocFailure(0, -1, -1)
	for k := int64(30_000); k < 40_000; k++ {
		if err := m.Insert(-k-1, k); err != nil {
			t.Fatalf("insert after lifting injection: %v", err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}
