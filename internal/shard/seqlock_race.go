//go:build race

package shard

// raceEnabled reports whether this build runs under the race detector.
const raceEnabled = true

// Race-build seqlock shims: the optimistic read section takes the
// shard mutex, so the detector sees properly synchronized reads while
// every other aspect of the seqlock path — version capture, retry
// loop, validity handling, epoch pinning — runs exactly as in normal
// builds. See seqlock_norace.go for the no-op fast-path pair.
func (s *cell) readLock()   { s.mu.Lock() }
func (s *cell) readUnlock() { s.mu.Unlock() }
