package shard

import "rma/internal/core"

// The seqlock read path (CONCURRENCY.md, "Lock-free reads").
//
// Writers bump the shard's version word to odd before mutating and back
// to even after (beginWrite/endWrite, always under the shard mutex). A
// reader pins the vmem epoch gate, captures an even version, reads
// optimistically through the engine's published view, and accepts the
// result only if the version is unchanged — otherwise it discards and
// retries. After seqlockAttempts failed attempts the caller falls back
// to the locked path, so a write-hot shard degrades to today's behavior
// instead of live-locking readers.
//
// Under the race detector this formal data race is made literal-race-
// free: readLock/readUnlock are the shard mutex in race builds and
// no-ops otherwise (seqlock_race.go / seqlock_norace.go), keeping the
// control flow identical in both modes.
//
// The //rma:seqlock directive marks each retry loop for lockcheck,
// which verifies the shape (version capture + revalidation inside a
// loop) before blessing the unguarded reads; writes or direct mutex
// use inside these functions stay findings.

// seqlockAttempts bounds the optimism of the lock-free read path: a
// reader that loses the race this many times takes the lock instead.
const seqlockAttempts = 8

// seqFind resolves one point lookup lock-free against shard j. The
// last result reports whether the seqlock path answered; on false the
// caller must fall back to the locked path.
//
//rma:noalloc
//rma:seqlock
func (m *Map) seqFind(j int, key int64) (int64, bool, bool) {
	s := &m.shards[j]
	for attempt := 0; attempt < seqlockAttempts; attempt++ {
		p := s.gate.Enter()
		v1 := s.ver.Load()
		if v1&1 == 0 {
			s.readLock()
			val, ok, valid := s.a.ReadFind(key)
			s.readUnlock()
			if valid && s.ver.Load() == v1 {
				s.gate.Exit(p)
				m.lockFreeReads.Add(1)
				return val, ok, true
			}
		}
		s.gate.Exit(p)
		m.readRetries.Add(1)
	}
	m.readFallbacks.Add(1)
	return 0, false, false
}

// seqFindGroup resolves one GetBatch shard group lock-free, filling
// out[i] for keys[i]. All-or-nothing per attempt: a version change or
// torn view discards the whole group (results may not mix epochs —
// the group is atomic per shard like the locked path). Reports whether
// the seqlock path answered.
//
//rma:noalloc
//rma:seqlock
func (m *Map) seqFindGroup(j int, keys []int64, out []core.Lookup) bool {
	s := &m.shards[j]
	for attempt := 0; attempt < seqlockAttempts; attempt++ {
		p := s.gate.Enter()
		v1 := s.ver.Load()
		if v1&1 == 0 {
			s.readLock()
			valid := true
			for i, key := range keys {
				val, ok, g := s.a.ReadFind(key)
				if !g {
					valid = false
					break
				}
				out[i] = core.Lookup{Val: val, OK: ok}
			}
			s.readUnlock()
			if valid && s.ver.Load() == v1 {
				s.gate.Exit(p)
				m.lockFreeReads.Add(1)
				return true
			}
		}
		s.gate.Exit(p)
		m.readRetries.Add(1)
	}
	m.readFallbacks.Add(1)
	return false
}

// seqFloor probes shard j's floor lock-free (last result as seqFind).
//
//rma:noalloc
//rma:seqlock
func (m *Map) seqFloor(j int, x int64) (int64, int64, bool, bool) {
	s := &m.shards[j]
	for attempt := 0; attempt < seqlockAttempts; attempt++ {
		p := s.gate.Enter()
		v1 := s.ver.Load()
		if v1&1 == 0 {
			s.readLock()
			k, val, ok, valid := s.a.ReadFloor(x)
			s.readUnlock()
			if valid && s.ver.Load() == v1 {
				s.gate.Exit(p)
				m.lockFreeReads.Add(1)
				return k, val, ok, true
			}
		}
		s.gate.Exit(p)
		m.readRetries.Add(1)
	}
	m.readFallbacks.Add(1)
	return 0, 0, false, false
}

// seqCeiling probes shard j's ceiling lock-free.
//
//rma:noalloc
//rma:seqlock
func (m *Map) seqCeiling(j int, x int64) (int64, int64, bool, bool) {
	s := &m.shards[j]
	for attempt := 0; attempt < seqlockAttempts; attempt++ {
		p := s.gate.Enter()
		v1 := s.ver.Load()
		if v1&1 == 0 {
			s.readLock()
			k, val, ok, valid := s.a.ReadCeiling(x)
			s.readUnlock()
			if valid && s.ver.Load() == v1 {
				s.gate.Exit(p)
				m.lockFreeReads.Add(1)
				return k, val, ok, true
			}
		}
		s.gate.Exit(p)
		m.readRetries.Add(1)
	}
	m.readFallbacks.Add(1)
	return 0, 0, false, false
}
