package shard

import (
	"errors"
	"fmt"
	"time"

	"rma/internal/core"
	"rma/internal/vmem"
	"rma/internal/wal"
)

// The write-ahead log at the sharded layer: with EnableWAL, every
// acknowledged write is logged before its caller returns. A write
// appends its record to the log's group-commit core while still holding
// the owning shard's lock — so the record's LSN order matches the
// engine-application order exactly, per shard — and then waits for the
// record's commit wave outside the lock, so the fsync latency is paid
// without serializing the shard.
//
// Recovery composes the log with the checkpoint tree: each shard's
// checkpoint persists the LSN of the last record applied to it (the
// replay floor, core meta v2), and OpenMapWAL re-applies exactly the
// records above each shard's floor, in log order. Because LSN
// assignment, engine application and floor advancement all happen under
// the same shard lock, replay is a deterministic re-execution of the
// post-checkpoint suffix — no record is applied twice, none is skipped.
//
// The ack contract under faults: a write is acknowledged (returns nil)
// only after its record's commit wave is durable per the sync policy.
// When the log rejects an append (injected fault, allocation failure),
// the write has been applied in memory but is NOT logged — the caller
// gets the error and must not treat the write as durable; the last
// published recovery point is untouched. See DURABILITY.md for the full
// crash matrix.

// WALPolicy is the automatic checkpoint scheduler's thresholds: the
// scheduler (driven by internal/rebal's pool via SchedulerTick) starts
// a checkpoint round when any enabled threshold is crossed and new
// records have been logged since the last round it started. A zero
// value disables that threshold; all-zero disables the scheduler.
type WALPolicy struct {
	// DirtyPages fires when the shards' un-checkpointed page count
	// reaches this.
	DirtyPages int
	// Interval fires when this much time has passed since the last
	// published checkpoint.
	Interval time.Duration
	// WALBytes fires when the live log size reaches this.
	WALBytes int64
}

func (p WALPolicy) enabled() bool {
	return p.DirtyPages > 0 || p.Interval > 0 || p.WALBytes > 0
}

// EnableWAL creates a fresh write-ahead log rooted at dir (any previous
// log there is discarded) and routes every subsequent write through it.
// Requires EnableDurability first — the log's truncation floor comes
// from published checkpoints. Must be called before the map is shared
// across goroutines (the facade calls it at construction).
//
//rma:init
func (m *Map) EnableWAL(dir string, o wal.Options, p WALPolicy) error {
	if m.dur == nil {
		return fmt.Errorf("shard: WAL requires durability")
	}
	if m.wal != nil {
		return fmt.Errorf("shard: WAL already enabled")
	}
	l, err := wal.Create(dir, m.seps, 0, o)
	if err != nil {
		return err
	}
	m.wal = l
	m.walPolicy = p
	m.dur.lastPublish.Store(time.Now().UnixNano())
	return nil
}

// WAL returns the attached log (nil without EnableWAL) — a testing and
// diagnostics surface (fault injection, log stats).
func (m *Map) WAL() *wal.Log { return m.wal }

// CloseWAL drains staged records through one final commit wave and
// closes the log. The map keeps serving from memory but writes are no
// longer logged; call it after the last write. No-op without a WAL.
func (m *Map) CloseWAL() error {
	if m.wal == nil {
		return nil
	}
	return m.wal.Close()
}

// LastCheckpoint identifies the last published map-level recovery
// point: how many checkpoint rounds have published since this process
// built or opened the map, and the WAL LSN floor the latest one covers
// (0 without a WAL, or before any round logged records). The serving
// layer's LASTSAVE surface.
func (m *Map) LastCheckpoint() (rounds, lsn uint64) {
	if m.dur == nil {
		return 0, 0
	}
	return m.dur.mapSeq.Load(), m.dur.publishedLSN.Load()
}

// logOne stages one operation for shard j and advances the shard's
// replay floor. Caller holds s.mu — that lock is what makes the LSN
// order equal the application order for the shard; the returned ticket
// is waited on after release.
//
//rma:noalloc
func (m *Map) logOne(s *cell, j int, op wal.Op) (wal.Ticket, error) {
	s.wop[0] = op
	t, err := m.wal.Append(j, s.wop[:])
	if err != nil {
		return wal.Ticket{}, err
	}
	s.a.SetWALLSN(t.LSN())
	return t, nil
}

// logGroup stages one record holding a batch group's operations for
// shard j, reusing the caller's scratch for the conversion. Caller
// holds s.mu.
func (m *Map) logGroup(s *cell, j int, group []Op, scratch *[]wal.Op) (wal.Ticket, error) {
	w := (*scratch)[:0]
	for _, op := range group {
		w = append(w, wal.Op{Kind: wal.OpKind(op.Kind), Key: op.Key, Val: op.Val})
	}
	*scratch = w
	t, err := m.wal.Append(j, w)
	if err != nil {
		return wal.Ticket{}, err
	}
	s.a.SetWALLSN(t.LSN())
	return t, nil
}

// walFloorLocked returns the truncation floor a checkpoint of shard s
// establishes. Caller holds s.mu: appends for s happen under that lock,
// so every record of s in the log has LSN at most LastLSN here and all
// of them are applied — the checkpoint covers the entire log as far as
// this shard is concerned, including the case where the shard has never
// logged anything (its future records will land above LastLSN).
func (m *Map) walFloorLocked() uint64 {
	if m.wal == nil {
		return 0
	}
	return m.wal.LastLSN()
}

// afterPublish moves the WAL recovery floor forward after a map
// manifest published: the round's minimum per-shard floor is the LSN
// the new recovery point covers, and sealed segments wholly below it
// are dead weight. Runs on the round finisher, outside every shard
// lock. A truncation failure (injected or real) only counts in the log
// stats — the extra segments are retried after the next round.
func (m *Map) afterPublish() {
	d := m.dur
	d.lastPublish.Store(time.Now().UnixNano())
	if m.wal == nil {
		return
	}
	floor := d.walFloors[0].Load()
	for i := 1; i < len(d.walFloors); i++ {
		if f := d.walFloors[i].Load(); f < floor {
			floor = f
		}
	}
	d.publishedLSN.Store(floor)
	if floor > 0 {
		_ = m.wal.TruncateBelow(floor)
	}
}

// SchedulerTick is the automatic checkpoint scheduler's probe, called
// periodically by internal/rebal's pool. When the policy's thresholds
// say so — and records have actually been logged since the last round
// the scheduler started — it begins an asynchronous checkpoint round
// (RequestCheckpoint), which in turn truncates the log once published.
func (m *Map) SchedulerTick() {
	d := m.dur
	if m.wal == nil || d == nil || !m.walPolicy.enabled() || d.active.Load() {
		return
	}
	rec := m.wal.Stats().Records
	if rec == d.schedRecords.Load() {
		return // nothing logged since the last scheduler-started round
	}
	p := m.walPolicy
	fire := p.WALBytes > 0 && m.wal.LiveBytes() >= p.WALBytes
	if !fire && p.Interval > 0 {
		fire = time.Now().UnixNano()-d.lastPublish.Load() >= int64(p.Interval)
	}
	if !fire && p.DirtyPages > 0 {
		fire = m.dirtyPages() >= p.DirtyPages
	}
	if fire && m.RequestCheckpoint() {
		d.schedRecords.Store(rec)
		m.autoCheckpoints.Add(1)
	}
}

// dirtyPages sums the un-checkpointed page counts across shards (one
// shard lock at a time, like every aggregate).
func (m *Map) dirtyPages() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += s.a.DirtyPages()
		s.mu.Unlock()
	}
	return n
}

// OpenMapWAL recovers a sharded map from the checkpoint tree at dir
// plus the write-ahead log at walDir, restoring every acknowledged
// write: the last published checkpoint round is reopened exactly as
// OpenMap would, then the log's records above each shard's persisted
// replay floor are re-applied in log order. When no checkpoint has ever
// published, the log alone rebuilds the map — its genesis record names
// the shard separators. The recovered map logs and checkpoints
// incrementally, exactly like one built with EnableWAL.
//
//rma:init
func OpenMapWAL(dir, walDir string, cfg core.Config, o wal.Options, p WALPolicy) (*Map, error) {
	m, err := OpenMap(dir, cfg)
	switch {
	case err == nil:
		floors := make([]uint64, len(m.shards))
		var maxFloor uint64
		for i := range m.shards {
			floors[i] = m.shards[i].a.WALLSN()
			if floors[i] > maxFloor {
				maxFloor = floors[i]
			}
		}
		l, lerr := wal.Open(walDir, o)
		if errors.Is(lerr, wal.ErrNoLog) {
			// The tree predates the WAL (or the whole log was truncated
			// away after its last record was checkpointed): start a fresh
			// log above every floor.
			l, lerr = wal.Create(walDir, m.seps, maxFloor, o)
		}
		if lerr != nil {
			m.CloseDurability()
			return nil, lerr
		}
		// The surviving log can sit entirely below the checkpoint: after a
		// publish truncates the sealed segments, the active one may be
		// header-only (a forced wave rotates even with nothing staged), so
		// Open's record scan seeds the counter below the persisted floors.
		// Fresh appends must land strictly above every floor or the next
		// recovery would skip them.
		l.EnsureLSNAtLeast(maxFloor)
		if rerr := m.replayWAL(l, floors); rerr != nil {
			l.Close()
			m.CloseDurability()
			return nil, rerr
		}
		m.wal = l
	case errors.Is(err, vmem.ErrNoCheckpoint):
		l, lerr := wal.Open(walDir, o)
		if lerr != nil {
			if errors.Is(lerr, wal.ErrNoLog) {
				return nil, err // neither checkpoint nor log: nothing to recover
			}
			return nil, lerr
		}
		seps := l.Seps()
		if seps == nil {
			// Genesis truncated but no manifest published: the log cannot
			// name its own shards. Should be impossible — truncation only
			// follows a publish — so surface it rather than guess.
			l.Close()
			return nil, fmt.Errorf("shard: wal at %s has no genesis and no map manifest exists", walDir)
		}
		m2, nerr := New(cfg, seps)
		if nerr != nil {
			l.Close()
			return nil, nerr
		}
		if derr := m2.EnableDurability(dir); derr != nil {
			l.Close()
			return nil, derr
		}
		if rerr := m2.replayWAL(l, make([]uint64, len(m2.shards))); rerr != nil {
			l.Close()
			m2.CloseDurability()
			return nil, rerr
		}
		m = m2
		m.wal = l
	default:
		return nil, err
	}
	m.walPolicy = p
	m.dur.lastPublish.Store(time.Now().UnixNano())
	return m, nil
}

// replayWAL re-applies every logged record above its shard's floor, in
// log order — which per shard is LSN order, so this is a deterministic
// re-execution of each shard's post-checkpoint suffix. Runs at recovery
// time, before the map is shared.
//
//rma:init
func (m *Map) replayWAL(l *wal.Log, floors []uint64) error {
	return l.Replay(func(sh int, lsn uint64, ops []wal.Op) error {
		if sh < 0 || sh >= len(m.shards) {
			return fmt.Errorf("shard: wal names shard %d of a %d-shard map", sh, len(m.shards))
		}
		if lsn <= floors[sh] {
			return nil // covered by the shard's checkpoint
		}
		s := &m.shards[sh]
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, op := range ops {
			var err error
			if op.Kind == wal.OpPut {
				err = s.a.Insert(op.Key, op.Val)
			} else {
				_, err = s.a.Delete(op.Key)
			}
			if err != nil {
				return err
			}
		}
		s.a.SetWALLSN(lsn)
		return nil
	})
}
