package shard

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"

	"rma/internal/core"
	"rma/internal/vmem"
)

// Durability at the sharded layer: each shard checkpoints its own
// vmem.FileRegion independently (see internal/core/durable.go), and the
// map binds the K per-shard epochs into one crash-consistent unit with
// a map-level CHECKPOINT manifest — the shard-epoch vector plus the
// separator table, checksummed and published by atomic rename.
//
// The protocol is two-phase without any global pause:
//
//  1. A checkpoint round begins (RequestCheckpoint or CheckpointAll):
//     every shard is flagged. Each shard is then checkpointed at a
//     quiesce point — under its own lock, with its deferred-rebalance
//     backlog empty — either by a maintenance worker (MaintainShard
//     picks the flag up once the backlog drains) or synchronously by
//     CheckpointAll. Shards keep serving between and during other
//     shards' checkpoints; only one shard is locked at a time.
//  2. When the last shard of the round lands, the finisher publishes
//     the map manifest naming the K new epochs — outside every shard
//     lock. Recovery (OpenMap) reads that vector and reopens each shard
//     at exactly the named epoch, so a crash mid-round recovers the
//     previous round's state on every shard: per-shard epochs published
//     after the map manifest are orphans that the next checkpoint
//     retires.
//
// The retention handshake that makes step 2 safe: each shard checkpoint
// passes keep = the epoch the last *published map manifest* named for
// that shard, so the region retains it until a newer map manifest
// supersedes it — a shard is never left unable to serve the epoch the
// map-level recovery point demands.
//
// Coordination state is all atomics (per-shard request flags, one
// remaining-count). The shard lock already serializes each shard's
// engine; adding a map-level lock would couple shards that the whole
// design keeps independent (see CONCURRENCY.md).

const (
	mapManifestName  = "CHECKPOINT"
	mapManifestMagic = "RMAMAP01"
)

var mapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// errBox wraps errors for atomic.Value (which requires one concrete type).
type errBox struct{ err error }

// durState is the map's durability coordination block, created by
// EnableDurability/OpenMap before the map is shared and immutable as a
// pointer afterwards (like Map.notify).
type durState struct {
	dir     string
	regions []*vmem.FileRegion

	// One checkpoint round in flight at a time: active guards the round,
	// pending flags the shards still to checkpoint, remaining counts them
	// down, epochs collects what each shard published. failed poisons the
	// round (no map manifest) while still letting it drain.
	active    atomic.Bool
	pending   []atomic.Bool
	remaining atomic.Int64
	epochs    []atomic.Uint64
	failed    atomic.Bool

	// keep[i] is the epoch the last published map manifest named for
	// shard i — the retention floor passed to every shard checkpoint.
	// Written only by the round finisher (publish), read by the next
	// round's checkpointers; the active-flag handoff orders the accesses.
	keep []uint64

	// WAL coordination (zero-valued without EnableWAL): walFloors[i] is
	// the log LSN shard i's latest checkpoint covers (see
	// walFloorLocked), written by the shard's round claimant under the
	// shard lock and read by the round finisher; publishedLSN is the
	// minimum floor the last published manifest covers — the map's
	// recovery LSN; lastPublish (unix nanos) and schedRecords gate the
	// automatic checkpoint scheduler.
	walFloors    []atomic.Uint64
	publishedLSN atomic.Uint64
	lastPublish  atomic.Int64
	schedRecords atomic.Uint64

	// mapSeq counts published map manifests; lastErr holds the most
	// recent round failure for CheckpointAll to surface.
	mapSeq      atomic.Uint64
	lastErr     atomic.Value // errBox
	failPublish atomic.Bool  // testing hook: fail the next map publish
}

func newDurState(dir string, k int) *durState {
	return &durState{
		dir:       dir,
		regions:   make([]*vmem.FileRegion, k),
		pending:   make([]atomic.Bool, k),
		epochs:    make([]atomic.Uint64, k),
		keep:      make([]uint64, k),
		walFloors: make([]atomic.Uint64, k),
	}
}

func (d *durState) storeErr(err error) { d.lastErr.Store(errBox{err}) }

func (d *durState) loadErr() error {
	if b, ok := d.lastErr.Load().(errBox); ok {
		return b.err
	}
	return nil
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
}

// EnableDurability creates a fresh durability tree rooted at dir — one
// file region per shard plus the map-level manifest — and attaches each
// shard's array to its region. Any previous checkpoint history under
// dir is discarded. Must be called before the map is shared across
// goroutines (the facade calls it at construction).
//
//rma:init
func (m *Map) EnableDurability(dir string) error {
	if m.dur != nil {
		return fmt.Errorf("shard: durability already enabled")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// A stale map manifest must not survive a re-create: until the first
	// round publishes, recovery from this tree is meant to fail.
	if err := os.Remove(filepath.Join(dir, mapManifestName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	d := newDurState(dir, len(m.shards))
	for i := range m.shards {
		r, err := vmem.CreateFileRegion(shardDir(dir, i), m.shards[i].a.PageSlots())
		if err == nil {
			s := &m.shards[i]
			s.mu.Lock()
			err = s.a.AttachDurability(r)
			s.mu.Unlock()
		}
		if err != nil {
			for _, r := range d.regions {
				if r != nil {
					r.Close()
				}
			}
			return err
		}
		d.regions[i] = r
	}
	m.dur = d
	return nil
}

// Durable reports whether the map checkpoints to disk.
func (m *Map) Durable() bool { return m.dur != nil }

// ShardRegion returns shard i's file region (nil without durability) —
// a testing surface for fault injection.
func (m *Map) ShardRegion(i int) *vmem.FileRegion {
	if m.dur == nil {
		return nil
	}
	return m.dur.regions[i]
}

// PublishedCheckpoints returns how many map-level checkpoints have been
// published since this Map was built or opened.
func (m *Map) PublishedCheckpoints() uint64 {
	if m.dur == nil {
		return 0
	}
	return m.dur.mapSeq.Load()
}

// InjectPublishFault makes the next map-manifest publish fail (testing
// hook; the per-shard write path is covered by vmem's InjectFault).
func (m *Map) InjectPublishFault() {
	if m.dur != nil {
		m.dur.failPublish.Store(true)
	}
}

// InjectAllocFailure arms allocation-failure injection on shard i's
// engine (see core.Array.InjectAllocFailure). Testing hook.
func (m *Map) InjectAllocFailure(i, keysN, valsN int) {
	s := &m.shards[i]
	s.mu.Lock()
	s.a.InjectAllocFailure(keysN, valsN)
	s.mu.Unlock()
}

// RequestCheckpoint begins an asynchronous checkpoint round: every
// shard is flagged, and the maintenance workers (internal/rebal) fold
// each shard's checkpoint into their sweep once its deferred backlog is
// empty; the last shard's finisher publishes the map manifest. Returns
// false — without starting anything — when the map is not durable or a
// round is already in flight. The round's outcome is observable through
// PublishedCheckpoints and Stats (Checkpoints/CheckpointFailures).
func (m *Map) RequestCheckpoint() bool {
	d := m.dur
	if d == nil || !d.active.CompareAndSwap(false, true) {
		return false
	}
	m.beginRound()
	if m.notify != nil {
		m.notify()
	}
	return true
}

// CheckpointAll runs one full checkpoint round synchronously and
// returns once the map manifest is published: every shard's deferred
// backlog is flushed and its state checkpointed under its own lock (one
// shard at a time — readers and writers on other shards are never
// blocked). If an asynchronous round is already in flight, CheckpointAll
// helps it finish and then runs its own. On failure the map keeps
// serving from memory, the previous recovery point stays intact, and
// the next round retries the unpersisted pages.
func (m *Map) CheckpointAll() error {
	d := m.dur
	if d == nil {
		return core.ErrNotDurable
	}
	for !d.active.CompareAndSwap(false, true) {
		for i := range m.shards {
			m.checkpointShard(i)
		}
		runtime.Gosched()
	}
	seq := d.mapSeq.Load()
	m.beginRound()
	for i := range m.shards {
		m.checkpointShard(i)
	}
	// A maintenance worker may have claimed one of the round's shards
	// between beginRound and our sweep; wait for the round to settle.
	for d.active.Load() {
		runtime.Gosched()
	}
	if d.mapSeq.Load() == seq {
		if err := d.loadErr(); err != nil {
			return err
		}
		return fmt.Errorf("shard: checkpoint round did not publish")
	}
	return nil
}

// beginRound resets the round state. Caller holds the active flag.
func (m *Map) beginRound() {
	d := m.dur
	d.failed.Store(false)
	d.remaining.Store(int64(len(m.shards)))
	for i := range d.pending {
		d.epochs[i].Store(0)
		d.pending[i].Store(true)
	}
}

// checkpointShard claims shard i's slice of the current round, if still
// unclaimed, and checkpoints it at a quiesce point: deferred backlog
// flushed, under the shard lock.
func (m *Map) checkpointShard(i int) {
	d := m.dur
	if d == nil || !d.pending[i].CompareAndSwap(true, false) {
		return
	}
	s := &m.shards[i]
	s.mu.Lock()
	err := flushDeferred(s)
	var epoch uint64
	if err == nil {
		// The checkpoint itself only reads the array and updates dirty
		// tracking — nothing reader-visible, so no version bump.
		epoch, err = s.a.Checkpoint(d.keep[i])
	}
	if err == nil {
		d.walFloors[i].Store(m.walFloorLocked())
	}
	s.mu.Unlock()
	m.finishShardCheckpoint(i, epoch, err)
}

// finishShardCheckpoint accounts one shard's checkpoint outcome and, on
// the round's last shard, publishes the map manifest — outside every
// shard lock, so the sync cost of the publish never extends a critical
// section.
func (m *Map) finishShardCheckpoint(i int, epoch uint64, err error) {
	d := m.dur
	if err != nil {
		d.failed.Store(true)
		d.storeErr(err)
	} else {
		d.epochs[i].Store(epoch)
	}
	if d.remaining.Add(-1) == 0 {
		if !d.failed.Load() {
			if perr := m.publishMapCheckpoint(); perr != nil {
				d.storeErr(perr)
			} else {
				d.mapSeq.Add(1)
				m.afterPublish()
			}
		}
		d.active.Store(false)
	}
}

// publishMapCheckpoint writes the map manifest naming the round's K
// epochs and moves the retention floor forward. Runs on the round
// finisher only.
func (m *Map) publishMapCheckpoint() error {
	d := m.dur
	if d.failPublish.CompareAndSwap(true, false) {
		return fmt.Errorf("shard: map publish: %w", vmem.ErrFaultInjected)
	}
	buf := encodeMapManifest(m.seps, d.epochs)
	path := filepath.Join(d.dir, mapManifestName)
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: map publish: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("shard: map publish: %w", err)
	}
	if err := syncDir(d.dir); err != nil {
		return fmt.Errorf("shard: map publish: %w", err)
	}
	for i := range d.keep {
		d.keep[i] = d.epochs[i].Load()
	}
	return nil
}

func writeFileSync(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CloseDurability closes every shard's file region. The map keeps
// serving from memory but can no longer checkpoint; call it after the
// last CheckpointAll.
func (m *Map) CloseDurability() error {
	d := m.dur
	if d == nil {
		return nil
	}
	var first error
	for _, r := range d.regions {
		if r == nil {
			continue
		}
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenMap recovers a sharded map from the durability tree at dir: the
// map manifest names one epoch per shard, and every shard reopens at
// exactly that epoch, so the map comes back as the atomic unit the last
// published round captured — regardless of how far a later, unpublished
// round had progressed when the process died. cfg must describe the
// same engine the checkpoints were taken with (see core.Open). The
// recovered map is durable and continues checkpointing incrementally.
//
//rma:init
func OpenMap(dir string, cfg core.Config) (*Map, error) {
	seps, epochs, err := readMapManifest(dir)
	if err != nil {
		return nil, err
	}
	m := &Map{seps: seps, shards: make([]cell, len(epochs))}
	d := newDurState(dir, len(epochs))
	fail := func(err error) (*Map, error) {
		for _, r := range d.regions {
			if r != nil {
				r.Close()
			}
		}
		return nil, err
	}
	for i := range m.shards {
		r, err := vmem.OpenFileRegion(shardDir(dir, i))
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", i, err))
		}
		d.regions[i] = r
		a, err := core.Open(r, cfg, epochs[i])
		if err != nil {
			return fail(fmt.Errorf("shard %d: %w", i, err))
		}
		m.shards[i].a = a
		d.keep[i] = epochs[i]
	}
	m.dur = d
	return m, nil
}

// --- map manifest encoding --------------------------------------------------
//
//	magic "RMAMAP01"        8 bytes
//	version                 u32 (currently 1)
//	K                       u32 (number of shards)
//	seps                    (K-1) × i64
//	epochs                  K × u64
//	crc                     u32, CRC-32C of everything above

func encodeMapManifest(seps []int64, epochs []atomic.Uint64) []byte {
	k := len(epochs)
	b := make([]byte, 0, 8+4+4+len(seps)*8+k*8+4)
	b = append(b, mapManifestMagic...)
	b = mle32(b, 1)
	b = mle32(b, uint32(k))
	for _, s := range seps {
		b = mle64(b, uint64(s))
	}
	for i := range epochs {
		b = mle64(b, epochs[i].Load())
	}
	return mle32(b, crc32.Checksum(b, mapCastagnoli))
}

func readMapManifest(dir string) (seps []int64, epochs []uint64, err error) {
	b, err := os.ReadFile(filepath.Join(dir, mapManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("shard: %s: %w", dir, vmem.ErrNoCheckpoint)
		}
		return nil, nil, err
	}
	bad := fmt.Errorf("shard: malformed map manifest (%d bytes)", len(b))
	if len(b) < 8+4+4+4 || string(b[:8]) != mapManifestMagic {
		return nil, nil, bad
	}
	body, sum := b[:len(b)-4], mget32(b[len(b)-4:])
	if crc32.Checksum(body, mapCastagnoli) != sum {
		return nil, nil, fmt.Errorf("shard: map manifest checksum mismatch")
	}
	p := body[8:]
	if v := mget32(p); v != 1 {
		return nil, nil, fmt.Errorf("shard: unsupported map manifest version %d", v)
	}
	k := int(mget32(p[4:]))
	p = p[8:]
	if k < 1 || len(p) != (k-1)*8+k*8 {
		return nil, nil, bad
	}
	seps = make([]int64, k-1)
	for i := range seps {
		seps[i] = int64(mget64(p))
		p = p[8:]
		if i > 0 && seps[i] < seps[i-1] {
			return nil, nil, bad
		}
	}
	epochs = make([]uint64, k)
	for i := range epochs {
		epochs[i] = mget64(p)
		p = p[8:]
		if epochs[i] == 0 {
			return nil, nil, bad
		}
	}
	return seps, epochs, nil
}

func mle32(b []byte, x uint32) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func mle64(b []byte, x uint64) []byte {
	b = mle32(b, uint32(x))
	return mle32(b, uint32(x>>32))
}

func mget32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func mget64(b []byte) uint64 {
	return uint64(mget32(b)) | uint64(mget32(b[4:]))<<32
}
