package shard

import (
	"runtime"
	"sync"
	"time"
)

// Cross-shard snapshot reads (lock-free mode).
//
// A multi-shard traversal holds one shard lock at a time, so by itself
// it only guarantees per-shard atomicity: writers can slip between
// shard visits. In lock-free mode every reader-visible write bumps the
// owning shard's seqlock version (shard.go), which makes consistency
// checkable: record each shard's version at its visit, and before
// reading any later shard revalidate that every previously visited
// shard still carries its recorded version. If the validation holds
// through the final shard, there is a witness instant — inside the last
// shard's critical section, at the moment of its validation — at which
// every shard simultaneously held exactly the state the traversal
// observed, because versions only ever move forward and an unchanged
// version means an unchanged shard. The whole mechanism costs one
// uint64 per shard and a handful of atomic loads: no global lock, no
// copy, no quiescing of writers.
//
// Traversals that stream results to a callback cannot restart once the
// cut breaks AND elements have been consumed (the caller already saw
// earlier shards); but a break detected before the first yield is
// invisible to the caller, so the traversal restarts from the first
// shard under a fresh vector, backing off exponentially between
// attempts to let the write burst drain. Only a final degradation — a
// break after elements streamed, or retries exhausted — counts a
// SnapshotBreak; SnapshotScanRange surfaces that verdict to the
// caller. Rank consumes nothing externally, so it always retries (with
// the same backoff) and only degrades after a bounded number of broken
// cuts.

// snapVec is a pooled version vector, recycled across traversals so
// steady-state snapshot reads allocate nothing.
type snapVec struct{ v []uint64 }

var vecPool = sync.Pool{New: func() any { return new(snapVec) }}

func getVec(n int) *snapVec {
	sv := vecPool.Get().(*snapVec)
	if cap(sv.v) < n {
		sv.v = make([]uint64, n)
	}
	sv.v = sv.v[:n]
	return sv
}

// versionsMatch reports whether shards jLo..jLo+len(vec)-1 still carry
// the versions recorded in vec. Control-word reads only — safe without
// any shard lock.
//
//rma:noalloc
//rma:seqlock
func (m *Map) versionsMatch(vec []uint64, jLo int) bool {
	for i := range vec {
		if m.shards[jLo+i].ver.Load() != vec[i] {
			return false
		}
	}
	return true
}

// SnapshotScanRange visits every element with lo <= key <= hi in key
// order and reports whether the whole traversal observed one consistent
// cut: true means there was an instant at which every visited shard
// simultaneously held exactly the state the callback saw. On a broken
// cut the scan does not restart (the callback already consumed earlier
// shards); it completes with the per-shard-atomic semantics of the
// locked path, counts a SnapshotBreak, and returns false.
//
// Early termination by the callback returns the consistency status of
// the prefix actually visited; a single-shard traversal is trivially
// consistent. Outside lock-free mode versions never move, so the
// traversal is reported consistent exactly when it is (writers hold
// the same locks the scan does, but may interleave between shards
// without detection — use EnableLockFreeReads for the verdict to be
// meaningful).
func (m *Map) SnapshotScanRange(lo, hi int64, visit func(key, val int64) bool) bool {
	if lo > hi {
		return true
	}
	jLo, jHi := m.shardOf(lo), m.shardOf(hi)
	sv := getVec(jHi - jLo + 1)
	defer vecPool.Put(sv)
	vec := sv.v
	consistent := true
	yielded := false
	attempt := 0
	for {
		restart := false
		for j := jLo; j <= jHi; j++ {
			s := &m.shards[j]
			s.mu.Lock()
			flushDeferred(s)
			if consistent && !m.versionsMatch(vec[:j-jLo], jLo) {
				if !yielded && attempt+1 < snapshotAttempts {
					// Nothing streamed yet: the break is invisible to the
					// caller — restart under a fresh vector instead of
					// settling for a torn verdict.
					s.mu.Unlock()
					attempt++
					snapshotBackoff(attempt)
					restart = true
					break
				}
				consistent = false
				m.snapshotBreaks.Add(1)
			}
			vec[j-jLo] = s.ver.Load()
			stopped := false
			s.a.ScanRange(lo, hi, func(k, v int64) bool {
				yielded = true
				if !visit(k, v) {
					stopped = true
					return false
				}
				return true
			})
			s.mu.Unlock()
			if stopped {
				break
			}
		}
		if !restart {
			return consistent
		}
	}
}

// snapshotAscend is IterAscend's lock-free-mode body: the merged
// ascending traversal with version-vector validation. The verdict is
// tracked for the SnapshotBreaks counter but not surfaced through the
// iter.Seq2 shape — use SnapshotScanRange when the caller needs it.
func (m *Map) snapshotAscend(lo, hi int64, yield func(int64, int64) bool) {
	jLo, jHi := m.shardOf(lo), m.shardOf(hi)
	sv := getVec(jHi - jLo + 1)
	defer vecPool.Put(sv)
	vec := sv.v
	consistent := true
	yielded := false
	attempt := 0
	for {
		restart := false
		for j := jLo; j <= jHi; j++ {
			s := &m.shards[j]
			s.mu.Lock()
			flushDeferred(s)
			if consistent && !m.versionsMatch(vec[:j-jLo], jLo) {
				if !yielded && attempt+1 < snapshotAttempts {
					s.mu.Unlock()
					attempt++
					snapshotBackoff(attempt)
					restart = true
					break
				}
				consistent = false
				m.snapshotBreaks.Add(1)
			}
			vec[j-jLo] = s.ver.Load()
			stopped := false
			for k, v := range s.a.IterAscend(lo, hi) {
				yielded = true
				if !yield(k, v) {
					stopped = true
					break
				}
			}
			s.mu.Unlock()
			if stopped {
				return
			}
		}
		if !restart {
			return
		}
	}
}

// snapshotDescend mirrors snapshotAscend right to left: the visited
// suffix (higher shards) is revalidated before each lower shard.
func (m *Map) snapshotDescend(lo, hi int64, yield func(int64, int64) bool) {
	jLo, jHi := m.shardOf(lo), m.shardOf(hi)
	sv := getVec(jHi - jLo + 1)
	defer vecPool.Put(sv)
	vec := sv.v
	consistent := true
	yielded := false
	attempt := 0
	for {
		restart := false
		for j := jHi; j >= jLo; j-- {
			s := &m.shards[j]
			s.mu.Lock()
			flushDeferred(s)
			if consistent && !m.versionsMatch(vec[j-jLo+1:], j+1) {
				if !yielded && attempt+1 < snapshotAttempts {
					s.mu.Unlock()
					attempt++
					snapshotBackoff(attempt)
					restart = true
					break
				}
				consistent = false
				m.snapshotBreaks.Add(1)
			}
			vec[j-jLo] = s.ver.Load()
			stopped := false
			for k, v := range s.a.IterDescend(lo, hi) {
				yielded = true
				if !yield(k, v) {
					stopped = true
					break
				}
			}
			s.mu.Unlock()
			if stopped {
				return
			}
		}
		if !restart {
			return
		}
	}
}

// snapshotAttempts bounds how many broken cuts a snapshot traversal
// tolerates — restarting between them — before settling for the
// per-shard-atomic answer.
const snapshotAttempts = 4

// snapshotBackoff parts a retrying snapshot traversal from the write
// burst that broke its cut: the first retry just yields the processor,
// later ones sleep exponentially (2us, 4us, ...) — long enough for a
// rebalance or batch to drain, short enough to stay invisible next to
// the traversal itself.
func snapshotBackoff(attempt int) {
	if attempt <= 1 {
		runtime.Gosched()
		return
	}
	time.Sleep(time.Duration(1<<uint(attempt)) * time.Microsecond)
}

// snapshotRank is Rank's lock-free-mode body: the left-of-x size sum
// retried under a fresh version vector until one consistent cut covers
// every contributing shard, then the in-shard rank of the owning shard
// completes it under the same cut.
func (m *Map) snapshotRank(x int64) int {
	j := m.shardOf(x)
	sv := getVec(j + 1)
	defer vecPool.Put(sv)
	vec := sv.v
	for attempt := 0; attempt < snapshotAttempts; attempt++ {
		if attempt > 0 {
			snapshotBackoff(attempt)
		}
		r := 0
		consistent := true
		for i := 0; i <= j; i++ {
			s := &m.shards[i]
			s.mu.Lock()
			if !m.versionsMatch(vec[:i], 0) {
				consistent = false
			}
			vec[i] = s.ver.Load()
			if consistent {
				if i < j {
					r += s.a.Size()
				} else {
					r += s.a.Rank(x)
				}
			}
			s.mu.Unlock()
			if !consistent {
				break
			}
		}
		if consistent {
			return r
		}
	}
	// Every attempt lost the race; take the per-shard-atomic answer the
	// locked path would have produced.
	m.snapshotBreaks.Add(1)
	r := 0
	for i := 0; i <= j; i++ {
		s := &m.shards[i]
		s.mu.Lock()
		if i < j {
			r += s.a.Size()
		} else {
			r += s.a.Rank(x)
		}
		s.mu.Unlock()
	}
	return r
}
