//go:build !race

package shard

// raceEnabled reports whether this build runs under the race detector;
// test assertions that depend on the true lock-free path key off it.
const raceEnabled = false

// readLock/readUnlock bracket the optimistic read section of a seqlock
// attempt. In normal builds they are no-ops — the whole point is that
// the fast path takes zero locks; the version revalidation and the
// defensive view reads carry the correctness argument (see
// core/readpath.go). In race builds they are the shard mutex, because
// the optimistic read is a formal data race under the Go memory model
// that the detector would (correctly, by its rules) flag; taking the
// lock there keeps -race runs exercising the identical control flow —
// retry loop, validity handling, fallback — with the race silenced at
// its source rather than suppressed.
func (s *cell) readLock()   {}
func (s *cell) readUnlock() {}
