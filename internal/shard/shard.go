// Package shard implements the concurrent serving layer over the RMA:
// an ordered map that partitions the key space across K independent
// core.Array instances, each guarded by its own lock.
//
// Sharding is the natural concurrency boundary for this structure
// because everything the engine does — rebalances, rewiring, resizes —
// is confined to one array's page space (PUMA makes the same argument
// for page-granular allocation). Shard boundaries are immutable after
// construction, so routing a key to its shard is a lock-free binary
// search; only the per-shard work takes a lock. Keys never migrate
// between shards, which keeps every cross-shard read (merged iteration,
// rank sums, range counts) a sequence of per-shard critical sections
// with no global lock and no lock coupling.
//
// Concurrency contract (see CONCURRENCY.md at the repo root):
//
//   - Every operation locks at most one shard at a time; multi-shard
//     operations visit shards in ascending index order.
//   - Shard locks are exclusive even for reads: the engine's "read"
//     paths mutate internal state (operation counters, walker scratch),
//     so they cannot share a shard.
//   - Single-shard point operations (Insert, Delete, Find, Contains)
//     are linearizable. Every operation that may visit more than one
//     shard — iterators, Min/Max, Floor/Ceiling, Rank, Select,
//     CountRange, Sum, Size, ApplyBatch — is atomic per shard but not
//     across shards: concurrent writers can interleave between shard
//     visits (a Floor probing leftward can return a key that was
//     deleted after its owning shard was passed). Within one shard the
//     view is always consistent, and the merged key order is always
//     globally ascending because shards own disjoint key ranges.
//   - Iterator and scan callbacks run while the current shard's lock is
//     held and must not call back into the same Map.
//
// Lock-free reads (EnableLockFreeReads) relax the second bullet for the
// point-read fast path only: Find/Contains/Floor/Ceiling/GetBatch first
// attempt a seqlock-validated optimistic read against the engine's
// published read view (core.ReadFind and friends mutate nothing), and
// fall back to the locked path after a bounded number of retries. Writes
// bump a per-shard version word around every reader-visible mutation;
// retired vmem pages pass through an epoch gate so an in-flight
// optimistic reader can never observe a recycled page. Cross-shard scans
// additionally capture a per-shard version vector and report whether the
// whole traversal observed a single consistent cut (see snapshot.go).
package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"rma/internal/core"
	"rma/internal/vmem"
	"rma/internal/wal"
)

const (
	minKey = -1 << 63
	maxKey = 1<<63 - 1
)

// cell is one shard: a lock and its array, padded so that neighbouring
// shard locks do not share a cache line under concurrent traffic.
//
// ver is the shard's seqlock word: even when quiescent, odd while a
// writer is mutating reader-visible state. Writers bump it twice around
// every mutation (beginWrite/endWrite, under mu); optimistic readers
// capture an even value before reading and revalidate after. gate is
// the shard's vmem epoch gate (nil until EnableLockFreeReads): readers
// pin an epoch for the duration of one optimistic attempt, and pages
// retired by rebalances wait in the gate's limbo until no reader can
// still hold a reference.
type cell struct {
	mu   sync.Mutex
	a    *core.Array
	ver  atomic.Uint64
	gate *vmem.EpochGate
	// wop is the shard's one-op WAL staging scratch (guarded by mu, like
	// the array): point writes encode into it so the logged put path
	// allocates nothing.
	wop [1]wal.Op
	_   [64 - 32]byte
}

// beginWrite/endWrite bracket a reader-visible mutation: ver goes odd,
// the mutation runs, ver returns even. Callers must hold s.mu (the
// mutex serializes writers; the version word serializes readers).
func (s *cell) beginWrite() { s.ver.Add(1) }
func (s *cell) endWrite()   { s.ver.Add(1) }

// advanceEpoch attempts one epoch-gate advance when retired pages are
// waiting in limbo. Must run under s.mu — the gate's limbo list is
// guarded by the owning shard's lock.
func (s *cell) advanceEpoch() {
	if s.gate != nil && s.gate.LimboPages() > 0 {
		s.gate.TryAdvance()
	}
}

// Map is the sharded ordered map. Create one with New; the zero value
// is not usable. All methods are safe for concurrent use.
type Map struct {
	// seps holds the K-1 shard separators: shard i owns keys k with
	// seps[i-1] <= k < seps[i] (boundary sentinels implied at the ends
	// of the int64 domain). Immutable after New, hence read lock-free.
	seps   []int64
	shards []cell

	// notify, when non-nil, is called outside any shard lock after a
	// write left deferred rebalance work pending — the hook that wakes
	// internal/rebal's worker pool. Set once by
	// EnableDeferredRebalancing before the map is shared; immutable
	// afterwards (like seps), hence read lock-free.
	notify func()

	// dur is the durability coordination block (see durable.go); nil for
	// an in-memory map. Set once by EnableDurability/OpenMap before the
	// map is shared; the pointer is immutable afterwards (like seps) and
	// the block's own state is all atomics.
	dur *durState

	// wal, when non-nil, logs every acknowledged write before its caller
	// returns (see wal.go). Set once by EnableWAL/OpenMapWAL before the
	// map is shared; immutable afterwards (like seps). walPolicy is the
	// automatic checkpoint scheduler's thresholds; autoCheckpoints
	// counts the rounds the scheduler started.
	wal             *wal.Log
	walPolicy       WALPolicy
	autoCheckpoints atomic.Uint64

	// lockFree enables the seqlock read path. Set once by
	// EnableLockFreeReads before the map is shared (like seps), hence
	// read without synchronization.
	lockFree bool

	// Lock-free read-path counters, merged into Stats. Atomics because
	// readers touch them outside any shard lock.
	lockFreeReads  atomic.Uint64
	readRetries    atomic.Uint64
	readFallbacks  atomic.Uint64
	snapshotBreaks atomic.Uint64
}

// New builds a Map with len(seps)+1 shards, one fresh core.Array per
// shard built from cfg. seps must be non-decreasing; equal separators
// are allowed and simply leave the shard between them empty.
//
// New fills shard state before the map is shared, so it runs without
// shard locks (lockcheck's //rma:init escape).
//
//rma:init
func New(cfg core.Config, seps []int64) (*Map, error) {
	for i := 1; i < len(seps); i++ {
		if seps[i] < seps[i-1] {
			return nil, fmt.Errorf("shard: separators must be non-decreasing, got %d after %d", seps[i], seps[i-1])
		}
	}
	m := &Map{
		seps:   append([]int64(nil), seps...),
		shards: make([]cell, len(seps)+1),
	}
	for i := range m.shards {
		a, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		m.shards[i].a = a
	}
	return m, nil
}

// UniformSeps returns k-1 separators splitting the full int64 key
// domain into k equal spans: the default when nothing is known about
// the key distribution.
func UniformSeps(k int) []int64 {
	if k <= 1 {
		return nil
	}
	step := ^uint64(0)/uint64(k) + 1
	seps := make([]int64, k-1)
	for i := range seps {
		seps[i] = minKey + int64(uint64(i+1)*step)
	}
	return seps
}

// QuantileSeps returns k-1 separators at the quantiles of sample, so
// each shard receives roughly the same share of a workload distributed
// like the sample. The sample is not modified. With fewer distinct
// sample keys than shards, some shards own empty ranges — harmless.
func QuantileSeps(k int, sample []int64) []int64 {
	if k <= 1 || len(sample) == 0 {
		return UniformSeps(k)
	}
	sorted := append([]int64(nil), sample...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	seps := make([]int64, k-1)
	for i := range seps {
		seps[i] = sorted[len(sorted)*(i+1)/k]
	}
	return seps
}

// NumShards returns the number of shards K.
func (m *Map) NumShards() int { return len(m.shards) }

// Boundaries returns a copy of the K-1 shard separators.
func (m *Map) Boundaries() []int64 { return append([]int64(nil), m.seps...) }

// shardOf routes a key to its owning shard: the first shard whose upper
// separator exceeds the key. Lock-free — seps is immutable.
func (m *Map) shardOf(key int64) int {
	lo, hi := 0, len(m.seps)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if key < m.seps[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// ownRange returns the key interval [lo, hi] owned by shard i
// (inclusive bounds, clipped to the int64 domain).
func (m *Map) ownRange(i int) (lo, hi int64) {
	lo, hi = minKey, maxKey
	if i > 0 {
		lo = m.seps[i-1]
	}
	if i < len(m.seps) {
		hi = m.seps[i] - 1
	}
	return lo, hi
}

// --- deferred rebalancing ---------------------------------------------------

// EnableDeferredRebalancing switches every shard's engine into deferred
// mode (see internal/core/pending.go): overflowing inserts do only a
// minimal local spread and queue the density violation; MaintainShard
// executes the deferred work. notify, if non-nil, is invoked outside
// any shard lock after a write leaves work pending — wire it to the
// maintenance pool's Notify. Must be called before the map is shared
// across goroutines (the facade calls it at construction).
func (m *Map) EnableDeferredRebalancing(notify func()) {
	m.notify = notify
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.a.SetDeferRebalance(true)
		s.mu.Unlock()
	}
}

// DisableDeferredRebalancing drains every shard's backlog and returns
// the shards to synchronous rebalancing. Used on Close so a map
// outliving its maintenance pool keeps the synchronous contract.
func (m *Map) DisableDeferredRebalancing() error {
	var first error
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		err := flushDeferred(s)
		s.a.SetDeferRebalance(false)
		s.mu.Unlock()
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MaintainShard performs at most one slice of deferred work on shard i
// — one queued violation resolved under one short lock acquisition —
// reporting whether an entry was processed. This is internal/rebal's
// Source surface; the bounded slice is what lets maintenance interleave
// with foreground writers instead of stalling a shard for its whole
// backlog.
//
// When a checkpoint round is in flight (RequestCheckpoint) and shard
// i's backlog is empty, the slice is the shard's checkpoint instead:
// the quiesce point the durability protocol wants — no deferred windows
// standing, nothing mid-rebalance — found for free inside the
// maintenance sweep. The publish of the round's last shard runs after
// the lock is released (see durable.go).
func (m *Map) MaintainShard(i int) (bool, error) {
	s := &m.shards[i]
	d := m.dur
	s.mu.Lock()
	var did bool
	var err error
	if s.a.PendingCount() > 0 {
		// Only bracket sweeps that can mutate: an idle MaintainOne must
		// not bump the version word, or background maintenance would
		// invalidate snapshot version vectors without changing anything.
		s.beginWrite()
		did, err = s.a.MaintainOne()
		s.endWrite()
	}
	if err == nil && !did && d != nil && d.pending[i].CompareAndSwap(true, false) {
		var epoch uint64
		epoch, err = s.a.Checkpoint(d.keep[i])
		if err == nil {
			d.walFloors[i].Store(m.walFloorLocked())
		}
		s.mu.Unlock()
		m.finishShardCheckpoint(i, epoch, err)
		return true, err
	}
	s.advanceEpoch()
	s.mu.Unlock()
	return did, err
}

// PendingShard returns shard i's deferred-window backlog.
func (m *Map) PendingShard(i int) int {
	s := &m.shards[i]
	s.mu.Lock()
	n := s.a.PendingCount()
	s.mu.Unlock()
	return n
}

// PendingWindows returns the total deferred-window backlog across
// shards (diagnostics; per-shard consistent, not a global snapshot).
func (m *Map) PendingWindows() int {
	n := 0
	for i := range m.shards {
		n += m.PendingShard(i)
	}
	return n
}

// FlushAll synchronously drains every shard's deferred backlog.
func (m *Map) FlushAll() error {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		err := flushDeferred(s)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// maintenanceHint wakes the maintenance pool when a write left deferred
// work behind. pending is read under the shard lock; the call happens
// after release so the worker can take the lock immediately.
func (m *Map) maintenanceHint(pending int) {
	if pending > 0 && m.notify != nil {
		m.notify()
	}
}

// --- point operations -------------------------------------------------------

// Insert adds a key/value pair to the owning shard. With a WAL, the
// write is logged under the shard lock and acknowledged only once its
// commit wave is durable (the wait happens after the lock is released,
// so the fsync latency never serializes the shard).
func (m *Map) Insert(key, val int64) error {
	j := m.shardOf(key)
	s := &m.shards[j]
	s.mu.Lock()
	s.beginWrite()
	err := s.a.Insert(key, val)
	s.endWrite()
	s.advanceEpoch()
	var t wal.Ticket
	if err == nil && m.wal != nil {
		t, err = m.logOne(s, j, wal.Op{Kind: wal.OpPut, Key: key, Val: val})
	}
	pending := s.a.PendingCount()
	s.mu.Unlock()
	m.maintenanceHint(pending)
	if err == nil && t.Ok() {
		err = m.wal.Wait(t)
	}
	return err
}

// Delete removes one occurrence of key, reporting whether it existed.
// Only deletions that found their key are logged — a no-op needs no
// replay — with the same log-then-wait protocol as Insert.
func (m *Map) Delete(key int64) (bool, error) {
	j := m.shardOf(key)
	s := &m.shards[j]
	s.mu.Lock()
	s.beginWrite()
	ok, err := s.a.Delete(key)
	s.endWrite()
	s.advanceEpoch()
	var t wal.Ticket
	if err == nil && ok && m.wal != nil {
		t, err = m.logOne(s, j, wal.Op{Kind: wal.OpDelete, Key: key})
	}
	s.mu.Unlock()
	if err == nil && t.Ok() {
		err = m.wal.Wait(t)
	}
	return ok, err
}

// Find returns a value stored under key.
func (m *Map) Find(key int64) (int64, bool) {
	j := m.shardOf(key)
	if m.lockFree {
		if v, ok, done := m.seqFind(j, key); done {
			return v, ok
		}
	}
	s := &m.shards[j]
	s.mu.Lock()
	v, ok := s.a.Find(key)
	s.mu.Unlock()
	return v, ok
}

// Contains reports whether key is stored.
func (m *Map) Contains(key int64) bool {
	if m.lockFree {
		_, ok := m.Find(key)
		return ok
	}
	s := &m.shards[m.shardOf(key)]
	s.mu.Lock()
	ok := s.a.Contains(key)
	s.mu.Unlock()
	return ok
}

// --- min/max and navigation -------------------------------------------------

// Min returns the smallest stored key.
func (m *Map) Min() (int64, bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		k, ok := s.a.Min()
		s.mu.Unlock()
		if ok {
			return k, true
		}
	}
	return 0, false
}

// Max returns the largest stored key.
func (m *Map) Max() (int64, bool) {
	for i := len(m.shards) - 1; i >= 0; i-- {
		s := &m.shards[i]
		s.mu.Lock()
		k, ok := s.a.Max()
		s.mu.Unlock()
		if ok {
			return k, true
		}
	}
	return 0, false
}

// shardFloor probes shard i for the greatest element with key <= x,
// lock-free first when enabled, locked otherwise.
func (m *Map) shardFloor(i int, x int64) (key, val int64, ok bool) {
	if m.lockFree {
		if k, v, ok, done := m.seqFloor(i, x); done {
			return k, v, ok
		}
	}
	s := &m.shards[i]
	s.mu.Lock()
	key, val, ok = s.a.Floor(x)
	s.mu.Unlock()
	return key, val, ok
}

// shardCeiling probes shard i for the smallest element with key >= x.
func (m *Map) shardCeiling(i int, x int64) (key, val int64, ok bool) {
	if m.lockFree {
		if k, v, ok, done := m.seqCeiling(i, x); done {
			return k, v, ok
		}
	}
	s := &m.shards[i]
	s.mu.Lock()
	key, val, ok = s.a.Ceiling(x)
	s.mu.Unlock()
	return key, val, ok
}

// Floor returns the greatest stored element with key <= x: the owning
// shard's floor, or the max of the nearest non-empty shard to the left.
func (m *Map) Floor(x int64) (key, val int64, ok bool) {
	j := m.shardOf(x)
	if key, val, ok = m.shardFloor(j, x); ok {
		return key, val, true
	}
	for i := j - 1; i >= 0; i-- {
		if key, val, ok = m.shardFloor(i, maxKey); ok {
			return key, val, true
		}
	}
	return 0, 0, false
}

// Ceiling returns the smallest stored element with key >= x.
func (m *Map) Ceiling(x int64) (key, val int64, ok bool) {
	j := m.shardOf(x)
	if key, val, ok = m.shardCeiling(j, x); ok {
		return key, val, true
	}
	for i := j + 1; i < len(m.shards); i++ {
		if key, val, ok = m.shardCeiling(i, minKey); ok {
			return key, val, true
		}
	}
	return 0, 0, false
}

// --- order statistics ---------------------------------------------------------

// Rank returns the number of stored elements with key < x: the sizes of
// the shards left of the owning shard plus the in-shard rank. Each shard
// is read under its own lock; under concurrent writes the sum is a
// consistent-per-shard snapshot, not a global one — unless lock-free
// reads are enabled, in which case the sum is retried against the
// per-shard version vector until all contributing shards agree on one
// cut (see snapshot.go).
func (m *Map) Rank(x int64) int {
	if m.lockFree {
		return m.snapshotRank(x)
	}
	j := m.shardOf(x)
	r := 0
	for i := 0; i < j; i++ {
		s := &m.shards[i]
		s.mu.Lock()
		r += s.a.Size()
		s.mu.Unlock()
	}
	s := &m.shards[j]
	s.mu.Lock()
	r += s.a.Rank(x)
	s.mu.Unlock()
	return r
}

// Select returns the i-th smallest element (0-based), walking shards
// left to right until the index falls inside one.
func (m *Map) Select(i int) (key, val int64, ok bool) {
	if i < 0 {
		return 0, 0, false
	}
	for j := range m.shards {
		s := &m.shards[j]
		s.mu.Lock()
		n := s.a.Size()
		if i < n {
			key, val, ok = s.a.Select(i)
			s.mu.Unlock()
			return key, val, ok
		}
		s.mu.Unlock()
		i -= n
	}
	return 0, 0, false
}

// CountRange returns the number of elements with lo <= key <= hi:
// boundary shards answer with their Fenwick counts, interior shards
// contribute their whole size.
func (m *Map) CountRange(lo, hi int64) int {
	if lo > hi {
		return 0
	}
	jLo, jHi := m.shardOf(lo), m.shardOf(hi)
	cnt := 0
	for j := jLo; j <= jHi; j++ {
		s := &m.shards[j]
		s.mu.Lock()
		if j > jLo && j < jHi {
			cnt += s.a.Size()
		} else {
			cnt += s.a.CountRange(lo, hi)
		}
		s.mu.Unlock()
	}
	return cnt
}

// --- bookkeeping --------------------------------------------------------------

// Size returns the total number of stored elements across shards.
func (m *Map) Size() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		n += s.a.Size()
		s.mu.Unlock()
	}
	return n
}

// ShardSizes returns the per-shard element counts (inspection and load
// diagnostics).
func (m *Map) ShardSizes() []int {
	out := make([]int, len(m.shards))
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		out[i] = s.a.Size()
		s.mu.Unlock()
	}
	return out
}

// FootprintBytes returns the physical memory held by all shards plus
// the separator table.
func (m *Map) FootprintBytes() int64 {
	f := int64(cap(m.seps)) * 8
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		f += s.a.FootprintBytes()
		s.mu.Unlock()
	}
	return f
}

// Stats returns the operation counters summed across shards
// (MaxWindowSegments is the maximum).
func (m *Map) Stats() core.Stats {
	var t core.Stats
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st := s.a.Stats()
		s.mu.Unlock()
		t.Inserts += st.Inserts
		t.Deletes += st.Deletes
		t.Lookups += st.Lookups
		t.Rebalances += st.Rebalances
		t.AdaptiveRebalances += st.AdaptiveRebalances
		t.RebalancedSegments += st.RebalancedSegments
		t.RebalancedElements += st.RebalancedElements
		t.Resizes += st.Resizes
		t.Grows += st.Grows
		t.Shrinks += st.Shrinks
		t.ElementCopies += st.ElementCopies
		t.PageSwaps += st.PageSwaps
		t.SlotScans += st.SlotScans
		t.BulkLoads += st.BulkLoads
		t.DeferredWindows += st.DeferredWindows
		t.MaintenanceRuns += st.MaintenanceRuns
		t.AllocFailures += st.AllocFailures
		t.Checkpoints += st.Checkpoints
		t.CheckpointFailures += st.CheckpointFailures
		t.CheckpointPages += st.CheckpointPages
		if st.MaxWindowSegments > t.MaxWindowSegments {
			t.MaxWindowSegments = st.MaxWindowSegments
		}
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		if s.gate != nil {
			t.EpochAdvances += s.gate.Advances()
		}
		s.mu.Unlock()
	}
	t.LockFreeReads = m.lockFreeReads.Load()
	t.ReadRetries = m.readRetries.Load()
	t.ReadFallbacks = m.readFallbacks.Load()
	t.SnapshotBreaks = m.snapshotBreaks.Load()
	if m.wal != nil {
		ws := m.wal.Stats()
		t.WALRecords = ws.Records
		t.WALWaves = ws.Waves
		t.WALSyncs = ws.Syncs
		t.WALRotations = ws.Rotations
		t.WALTruncations = ws.Truncations
		t.WALAppendFailures = ws.AppendFailures
		t.WALSyncFailures = ws.SyncFailures
		t.WALRotateFailures = ws.RotateFailures
		t.WALTruncateFailures = ws.TruncateFailures
	}
	t.AutoCheckpoints = m.autoCheckpoints.Load()
	return t
}

// --- lock-free reads ----------------------------------------------------------

// EnableLockFreeReads switches the map's point-read fast path to the
// seqlock protocol (see seqlock.go) and attaches a vmem epoch gate to
// every shard so rebalance-retired pages are reclaimed only after all
// optimistic readers have moved on. Must be called before the map is
// shared across goroutines (the facade calls it at construction), after
// EnableDurability/OpenMap when durability is in play — the gate routes
// page retirement, so it must see the final vmem spaces.
func (m *Map) EnableLockFreeReads() {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		g := vmem.NewEpochGate()
		s.gate = g
		s.a.AttachEpochGate(g)
		s.mu.Unlock()
	}
	m.lockFree = true
}

// LockFreeReads reports whether the seqlock read path is enabled.
func (m *Map) LockFreeReads() bool { return m.lockFree }

// Quiesce advances every shard's epoch gate as far as reader occupancy
// allows, draining limbo pages back to the spare pools. internal/rebal
// calls it before parking its workers; tests call it to assert
// reclamation progress.
func (m *Map) Quiesce() {
	if !m.lockFree {
		return
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		s.advanceEpoch()
		s.mu.Unlock()
	}
}

// Validate checks every shard's structural invariants and that every
// stored key lies inside its shard's owned range. O(n); for tests.
func (m *Map) Validate() error {
	for i := range m.shards {
		s := &m.shards[i]
		lo, hi := m.ownRange(i)
		s.mu.Lock()
		err := s.a.Validate()
		if err == nil {
			if mn, ok := s.a.Min(); ok && mn < lo {
				err = fmt.Errorf("shard %d: key %d below owned range [%d, %d]", i, mn, lo, hi)
			}
			if mx, ok := s.a.Max(); ok && mx > hi {
				err = fmt.Errorf("shard %d: key %d above owned range [%d, %d]", i, mx, lo, hi)
			}
		}
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
