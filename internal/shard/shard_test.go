package shard

import (
	"sort"
	"testing"

	"rma/internal/core"
	"rma/internal/workload"
)

// testConfig returns a small-geometry config so a few thousand keys
// exercise rebalances and resizes inside every shard.
func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SegmentSlots = 16
	cfg.PageSlots = 64
	return cfg
}

func mustNew(t *testing.T, k int, seps []int64) *Map {
	t.Helper()
	m, err := New(testConfig(), seps)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NumShards(); got != k {
		t.Fatalf("NumShards = %d, want %d", got, k)
	}
	return m
}

func TestUniformSeps(t *testing.T) {
	if got := UniformSeps(1); got != nil {
		t.Fatalf("UniformSeps(1) = %v, want nil", got)
	}
	seps := UniformSeps(2)
	if len(seps) != 1 || seps[0] != 0 {
		t.Fatalf("UniformSeps(2) = %v, want [0]", seps)
	}
	for _, k := range []int{3, 4, 7, 8, 64} {
		seps := UniformSeps(k)
		if len(seps) != k-1 {
			t.Fatalf("UniformSeps(%d) has %d separators", k, len(seps))
		}
		for i := 1; i < len(seps); i++ {
			if seps[i] <= seps[i-1] {
				t.Fatalf("UniformSeps(%d) not increasing: %v", k, seps)
			}
		}
	}
}

func TestQuantileSeps(t *testing.T) {
	sample := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	seps := QuantileSeps(4, sample)
	if len(seps) != 3 {
		t.Fatalf("QuantileSeps = %v, want 3 separators", seps)
	}
	for i := 1; i < len(seps); i++ {
		if seps[i] < seps[i-1] {
			t.Fatalf("QuantileSeps not non-decreasing: %v", seps)
		}
	}
	// An all-equal sample collapses every separator; routing must still
	// work and all keys land in a live shard.
	m := mustNew(t, 4, QuantileSeps(4, []int64{5, 5, 5, 5}))
	for _, k := range []int64{-10, 4, 5, 6, 100} {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 5 {
		t.Fatalf("Size = %d, want 5", m.Size())
	}
}

func TestNewRejectsDecreasingSeps(t *testing.T) {
	if _, err := New(testConfig(), []int64{10, 5}); err == nil {
		t.Fatal("New accepted decreasing separators")
	}
}

func TestShardOfRouting(t *testing.T) {
	m := mustNew(t, 4, []int64{100, 200, 300})
	cases := map[int64]int{
		minKey: 0, 0: 0, 99: 0,
		100: 1, 199: 1,
		200: 2, 299: 2,
		300: 3, maxKey: 3,
	}
	for k, want := range cases {
		if got := m.shardOf(k); got != want {
			t.Errorf("shardOf(%d) = %d, want %d", k, got, want)
		}
	}
	// Every inserted key must satisfy its shard's owned range.
	rng := workload.NewRNG(3)
	for i := 0; i < 5000; i++ {
		k := int64(rng.Uint64n(400))
		if err := m.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossBoundaryNavigation pins the merged Min/Max/Floor/Ceiling
// behaviour when the answer lives in a different shard than the probe,
// including across empty shards.
func TestCrossBoundaryNavigation(t *testing.T) {
	m := mustNew(t, 4, []int64{100, 200, 300})
	// Populate only shards 0 and 3: shards 1 and 2 stay empty.
	for _, k := range []int64{10, 20, 30} {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []int64{310, 320} {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}

	if k, ok := m.Min(); !ok || k != 10 {
		t.Fatalf("Min = (%d,%v), want 10", k, ok)
	}
	if k, ok := m.Max(); !ok || k != 320 {
		t.Fatalf("Max = (%d,%v), want 320", k, ok)
	}
	// Floor(250) probes empty shard 2, then empty shard 1, then shard 0.
	if k, _, ok := m.Floor(250); !ok || k != 30 {
		t.Fatalf("Floor(250) = (%d,%v), want 30", k, ok)
	}
	// Ceiling(50) probes shard 0 (no key >= 50), then 1, 2, finally 3.
	if k, _, ok := m.Ceiling(50); !ok || k != 310 {
		t.Fatalf("Ceiling(50) = (%d,%v), want 310", k, ok)
	}
	if _, _, ok := m.Floor(5); ok {
		t.Fatal("Floor(5) found an element below every key")
	}
	if _, _, ok := m.Ceiling(400); ok {
		t.Fatal("Ceiling(400) found an element above every key")
	}
	// Rank/CountRange across the empty middle.
	if got := m.Rank(305); got != 3 {
		t.Fatalf("Rank(305) = %d, want 3", got)
	}
	if got := m.CountRange(20, 310); got != 3 {
		t.Fatalf("CountRange(20,310) = %d, want 3", got)
	}
	if got := m.CountRange(310, 20); got != 0 {
		t.Fatalf("inverted CountRange = %d, want 0", got)
	}
	// Select across shards.
	if k, _, ok := m.Select(3); !ok || k != 310 {
		t.Fatalf("Select(3) = (%d,%v), want 310", k, ok)
	}
	if _, _, ok := m.Select(5); ok {
		t.Fatal("Select(5) ok with 5 elements")
	}
}

// TestApplyBatchMatchesSequential drives random batches through
// ApplyBatch and the same ops one-by-one through a twin map; final
// contents must match exactly, and the batch path must have used the
// bulk loader for long put runs.
func TestApplyBatchMatchesSequential(t *testing.T) {
	seps := []int64{256, 512, 768}
	batched := mustNew(t, 4, seps)
	serial := mustNew(t, 4, seps)

	rng := workload.NewRNG(17)
	totalDeleted := 0
	for round := 0; round < 30; round++ {
		n := 16 + int(rng.Uint64n(512))
		// Every third round is a pure ingest burst (long put runs ride
		// the bulk path); the others interleave deletes.
		delPct := uint64(25)
		if round%3 == 0 {
			delPct = 0
		}
		ops := make([]Op, n)
		for i := range ops {
			k := int64(rng.Uint64n(1024))
			if rng.Uint64n(100) < delPct {
				ops[i] = Op{Kind: OpDelete, Key: k}
			} else {
				ops[i] = Op{Kind: OpPut, Key: k, Val: k * 3}
			}
		}
		d, err := batched.ApplyBatch(ops)
		if err != nil {
			t.Fatal(err)
		}
		totalDeleted += d
		want := 0
		for _, op := range ops {
			if op.Kind == OpDelete {
				ok, err := serial.Delete(op.Key)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					want++
				}
			} else if err := serial.Insert(op.Key, op.Val); err != nil {
				t.Fatal(err)
			}
		}
		if d != want {
			t.Fatalf("round %d: ApplyBatch deleted %d, serial deleted %d", round, d, want)
		}
	}
	if totalDeleted == 0 {
		t.Fatal("no delete ever landed; the test proves nothing")
	}
	if batched.Stats().BulkLoads == 0 {
		t.Fatal("ApplyBatch never took the bulk path")
	}

	if bs, ss := batched.Size(), serial.Size(); bs != ss {
		t.Fatalf("sizes diverge: batched %d, serial %d", bs, ss)
	}
	var got, want []int64
	batched.Scan(func(k, v int64) bool { got = append(got, k, v); return true })
	serial.Scan(func(k, v int64) bool { want = append(want, k, v); return true })
	if len(got) != len(want) {
		t.Fatalf("scan lengths diverge: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if err := batched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMergedIterationOrder checks global ordering and early termination
// of the merged iterators over a multi-shard population.
func TestMergedIterationOrder(t *testing.T) {
	m := mustNew(t, 8, QuantileSeps(8, sampleKeys(4096, 5)))
	keys := sampleKeys(4096, 6)
	for _, k := range keys {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	sorted := append([]int64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	i := 0
	for k := range m.IterAscend(minKey, maxKey) {
		if k != sorted[i] {
			t.Fatalf("ascend[%d] = %d, want %d", i, k, sorted[i])
		}
		i++
	}
	if i != len(sorted) {
		t.Fatalf("ascend yielded %d of %d", i, len(sorted))
	}
	i = 0
	for k := range m.IterDescend(minKey, maxKey) {
		if want := sorted[len(sorted)-1-i]; k != want {
			t.Fatalf("descend[%d] = %d, want %d", i, k, want)
		}
		i++
	}
	if i != len(sorted) {
		t.Fatalf("descend yielded %d of %d", i, len(sorted))
	}
	// Early break mid-shard and mid-map.
	for _, stop := range []int{1, len(sorted) / 2} {
		seen := 0
		for range m.IterAscend(minKey, maxKey) {
			seen++
			if seen == stop {
				break
			}
		}
		if seen != stop {
			t.Fatalf("early break visited %d, want %d", seen, stop)
		}
	}
	// Sum must agree with the merged contents.
	var wantSum int64
	for _, k := range sorted {
		wantSum += k
	}
	if cnt, sum := m.SumAll(); cnt != len(sorted) || sum != wantSum {
		t.Fatalf("SumAll = (%d,%d), want (%d,%d)", cnt, sum, len(sorted), wantSum)
	}
}

func sampleKeys(n int, seed uint64) []int64 {
	rng := workload.NewRNG(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(rng.Uint64n(100000))
	}
	return out
}

func TestStatsAggregation(t *testing.T) {
	m := mustNew(t, 4, QuantileSeps(4, sampleKeys(1024, 9)))
	for _, k := range sampleKeys(20000, 10) {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Inserts != 20000 {
		t.Fatalf("aggregated Inserts = %d, want 20000", st.Inserts)
	}
	if st.Rebalances == 0 || st.Grows == 0 {
		t.Fatalf("expected rebalances and grows across shards, got %+v", st)
	}
	if m.FootprintBytes() <= 0 {
		t.Fatal("FootprintBytes not positive")
	}
	sizes := m.ShardSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != m.Size() || total != 20000 {
		t.Fatalf("ShardSizes sum %d, Size %d, want 20000", total, m.Size())
	}
	// Quantile boundaries should spread a matching workload: no shard
	// should hold everything.
	for i, s := range sizes {
		if s == total {
			t.Fatalf("shard %d holds all %d elements; boundaries did not spread", i, s)
		}
	}
}
