package shard

import (
	"sync"

	"rma/internal/core"
	"rma/internal/wal"
)

// Batched writes: the serving layer's ingestion path. A batch is
// grouped per shard in one stable counting-sort pass, then each shard
// is locked exactly once and its group applied in arrival order —
// amortizing lock traffic over the whole group — with maximal runs of
// consecutive insertions riding the engine's bottom-up bulk-load path,
// which rebalances each touched window at most once.

// OpKind discriminates batch operations.
type OpKind uint8

const (
	// OpPut inserts Key/Val (multiset semantics, like Insert).
	OpPut OpKind = iota
	// OpDelete removes one occurrence of Key (Val ignored).
	OpDelete
)

// Op is one operation of a batch.
type Op struct {
	Kind     OpKind
	Key, Val int64
}

// bulkMin is the smallest put run worth the bulk loader's sort and
// multi-pass overhead; shorter runs go through point inserts.
const bulkMin = 32

// batchScratch holds one ApplyBatch call's grouping buffers, pooled so
// steady-state batch ingestion allocates nothing (concurrent callers
// each take their own scratch from the pool).
type batchScratch struct {
	counts, next []int
	homes        []int32
	grouped      []Op
	bulkK, bulkV []int64
	// WAL staging scratch: the encoded form of one shard group and the
	// commit-wave tickets collected across groups (waited on after the
	// last shard lock is released).
	walOps  []wal.Op
	tickets []wal.Ticket
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (b *batchScratch) size(nOps, k int) {
	if cap(b.counts) < k+1 {
		b.counts = make([]int, k+1)
		b.next = make([]int, k)
	}
	b.counts = b.counts[:k+1]
	b.next = b.next[:k]
	clear(b.counts)
	if cap(b.homes) < nOps {
		b.homes = make([]int32, nOps)
		b.grouped = make([]Op, nOps)
	}
	b.homes = b.homes[:nOps]
	b.grouped = b.grouped[:nOps]
}

// ApplyBatch applies the batch and returns how many deletions found
// their key. Operations on the same key keep their order (same key →
// same shard, and per-shard order is preserved); operations on
// different shards commute, so the result equals some serial execution
// of the batch. The batch is atomic per shard, not across shards:
// concurrent readers can observe a prefix of the batch.
//
// With a WAL, each shard group is logged as one record under its
// shard's lock once the whole group applied, and the call acknowledges
// only after every group's commit wave is durable — the waits overlap
// across groups, so a K-shard batch pays at most one group-commit
// round trip, not K.
func (m *Map) ApplyBatch(ops []Op) (deleted int, err error) {
	if len(ops) == 0 {
		return 0, nil
	}
	k := len(m.shards)
	b := batchPool.Get().(*batchScratch)
	defer batchPool.Put(b)
	b.size(len(ops), k)

	// Stable counting-sort of ops by shard.
	for i, op := range ops {
		h := m.shardOf(op.Key)
		b.homes[i] = int32(h)
		b.counts[h+1]++
	}
	for i := 1; i <= k; i++ {
		b.counts[i] += b.counts[i-1]
	}
	copy(b.next, b.counts[:k])
	for i, op := range ops {
		h := b.homes[i]
		b.grouped[b.next[h]] = op
		b.next[h]++
	}

	b.tickets = b.tickets[:0]
	for j := 0; j < k; j++ {
		group := b.grouped[b.counts[j]:b.counts[j+1]]
		if len(group) == 0 {
			continue
		}
		s := &m.shards[j]
		s.mu.Lock()
		// Flush-on-snapshot: the batch applies against a fully
		// rebalanced shard, so its bulk runs see policy-compliant
		// densities (a flush failure leaves the shard consistent).
		_ = flushDeferred(s)
		s.beginWrite()
		d, e := applyGroup(s.a, group, &b.bulkK, &b.bulkV)
		s.endWrite()
		if e == nil && m.wal != nil {
			var t wal.Ticket
			if t, e = m.logGroup(s, j, group, &b.walOps); t.Ok() {
				b.tickets = append(b.tickets, t)
			}
		}
		s.advanceEpoch()
		pending := s.a.PendingCount()
		s.mu.Unlock()
		m.maintenanceHint(pending)
		deleted += d
		if e != nil {
			err = e
			break
		}
	}
	for _, t := range b.tickets {
		if werr := m.wal.Wait(t); werr != nil && err == nil {
			err = werr
		}
	}
	return deleted, err
}

// applyGroup applies one shard's ops in order, batching maximal put
// runs of at least bulkMin through the bulk loader. bulkK/bulkV are
// reusable scratch owned by the caller.
func applyGroup(a *core.Array, group []Op, bulkK, bulkV *[]int64) (deleted int, err error) {
	i := 0
	for i < len(group) {
		if group[i].Kind == OpDelete {
			ok, e := a.Delete(group[i].Key)
			if e != nil {
				return deleted, e
			}
			if ok {
				deleted++
			}
			i++
			continue
		}
		// Maximal run of puts starting at i.
		j := i + 1
		for j < len(group) && group[j].Kind == OpPut {
			j++
		}
		if j-i >= bulkMin {
			*bulkK, *bulkV = (*bulkK)[:0], (*bulkV)[:0]
			for _, op := range group[i:j] {
				*bulkK = append(*bulkK, op.Key)
				*bulkV = append(*bulkV, op.Val)
			}
			if e := a.BulkLoad(core.Batch{Keys: *bulkK, Vals: *bulkV}); e != nil {
				return deleted, e
			}
		} else {
			for _, op := range group[i:j] {
				if e := a.Insert(op.Key, op.Val); e != nil {
					return deleted, e
				}
			}
		}
		i = j
	}
	return deleted, nil
}
