package staticindex

import (
	"testing"
	"testing/quick"

	"rma/internal/workload"
)

// refUB/refLB are the oracle implementations over the raw minima array.
func refUB(mins []int64, key int64) int {
	s := 0
	for j := 1; j < len(mins); j++ {
		if mins[j] <= key {
			s = j
		} else {
			break
		}
	}
	return s
}

func refLB(mins []int64, key int64) int {
	s := 0
	for j := 1; j < len(mins); j++ {
		if mins[j] < key {
			s = j
		} else {
			break
		}
	}
	return s
}

func sortedMins(n int, seed uint64) []int64 {
	g := workload.NewUniform(seed, 1000)
	mins := make([]int64, n)
	var acc int64
	for i := range mins {
		acc += g.Next() + 1 // strictly increasing
		mins[i] = acc
	}
	return mins
}

func TestStaticMatchesOracleAcrossShapes(t *testing.T) {
	// Cover: single segment, n < fanout, n == fanout^k exactly, partial
	// subtrees of every flavor, and the paper's fanout-4/518-segments
	// example shape (Fig 5).
	for _, n := range []int{1, 2, 3, 4, 5, 15, 16, 17, 63, 64, 65, 255, 256, 257, 518, 1024} {
		for _, fanout := range []int{2, 3, 4, 65} {
			mins := sortedMins(n, uint64(n*fanout))
			ix := NewStatic(mins, fanout)
			probes := []int64{mins[0] - 10, mins[0], mins[n-1], mins[n-1] + 10}
			for j := 0; j < n; j++ {
				probes = append(probes, mins[j], mins[j]-1, mins[j]+1)
			}
			for _, key := range probes {
				if got, want := ix.FindUB(key), refUB(mins, key); got != want {
					t.Fatalf("n=%d f=%d FindUB(%d): got %d want %d", n, fanout, key, got, want)
				}
				if got, want := ix.FindLB(key), refLB(mins, key); got != want {
					t.Fatalf("n=%d f=%d FindLB(%d): got %d want %d", n, fanout, key, got, want)
				}
			}
		}
	}
}

func TestStaticStoresEachSeparatorOnce(t *testing.T) {
	for _, n := range []int{2, 7, 64, 518} {
		mins := sortedMins(n, 42)
		ix := NewStatic(mins, 4)
		if len(ix.keys) != n-1 {
			t.Fatalf("n=%d: packed %d keys, want %d", n, len(ix.keys), n-1)
		}
		for j := 1; j < n; j++ {
			if ix.Key(j) != mins[j] {
				t.Fatalf("n=%d: Key(%d) = %d, want %d", n, j, ix.Key(j), mins[j])
			}
		}
	}
}

func TestStaticUpdate(t *testing.T) {
	mins := sortedMins(100, 7)
	ix := NewStatic(mins, 65)
	// Shift separator 50 up and verify searches respect the new value.
	newMin := mins[50] + 1
	ix.Update(50, newMin)
	if ix.Key(50) != newMin {
		t.Fatal("update not visible")
	}
	mins[50] = newMin
	for _, key := range []int64{newMin - 1, newMin, newMin + 1} {
		if got, want := ix.FindUB(key), refUB(mins, key); got != want {
			t.Fatalf("after update FindUB(%d): got %d want %d", key, got, want)
		}
	}
}

func TestStaticDuplicateSeparators(t *testing.T) {
	// Duplicate keys spanning segments: UB lands on the last duplicate
	// segment, LB on the segment before the first duplicate.
	mins := []int64{5, 10, 10, 10, 20}
	ix := NewStatic(mins, 3)
	if got := ix.FindUB(10); got != 3 {
		t.Fatalf("FindUB(10) = %d, want 3", got)
	}
	if got := ix.FindLB(10); got != 0 {
		t.Fatalf("FindLB(10) = %d, want 0", got)
	}
	if got := ix.FindLB(11); got != 3 {
		t.Fatalf("FindLB(11) = %d, want 3", got)
	}
}

func TestDynamicMatchesOracle(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%300) + 1
		mins := sortedMins(n, seed)
		d := NewDynamic(mins)
		g := workload.NewUniform(seed^1, uint64(mins[n-1]+10))
		for i := 0; i < 50; i++ {
			key := g.Next()
			if d.FindUB(key) != refUB(mins, key) || d.FindLB(key) != refLB(mins, key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticAgainstDynamicProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, fRaw uint8) bool {
		n := int(nRaw%1000) + 1
		fanout := int(fRaw%63) + 2
		mins := sortedMins(n, seed)
		s := NewStatic(mins, fanout)
		d := NewDynamic(mins)
		g := workload.NewUniform(seed^2, uint64(mins[n-1]+10))
		for i := 0; i < 30; i++ {
			key := g.Next()
			if s.FindUB(key) != d.FindUB(key) || s.FindLB(key) != d.FindLB(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprints(t *testing.T) {
	mins := sortedMins(1024, 3)
	s := NewStatic(mins, 65)
	d := NewDynamic(mins)
	if s.FootprintBytes() <= 0 || d.FootprintBytes() <= 0 {
		t.Fatal("footprints must be positive")
	}
	// The static index stores n-1 keys vs the dynamic one's n, both ~8B/key.
	if s.FootprintBytes() > 2*d.FootprintBytes() {
		t.Fatalf("static index unexpectedly large: %d vs %d", s.FootprintBytes(), d.FootprintBytes())
	}
}

func TestStaticPanicsOnBadArgs(t *testing.T) {
	mins := sortedMins(4, 1)
	for name, fn := range map[string]func(){
		"fanout<2":   func() { NewStatic(mins, 1) },
		"empty":      func() { NewStatic(nil, 4) },
		"update0":    func() { NewStatic(mins, 4).Update(0, 1) },
		"updateHigh": func() { NewStatic(mins, 4).Update(4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
