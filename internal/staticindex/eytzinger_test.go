package staticindex

import (
	"math"
	"testing"
	"testing/quick"

	"rma/internal/workload"
)

// dupMins builds a non-decreasing minima array with runs of duplicate
// separators and, when tail > 0, a suffix of MaxInt64 sentinels — the
// shape the engine hands the index when trailing segments are empty
// (unset separators route everything left).
func dupMins(n int, seed uint64, tail int) []int64 {
	g := workload.NewRNG(seed)
	mins := make([]int64, n)
	var acc int64
	for i := range mins {
		acc += int64(g.Uint64n(3)) // 0 steps create duplicate runs
		mins[i] = acc
	}
	for i := n - tail; i < n; i++ {
		if i >= 0 {
			mins[i] = math.MaxInt64
		}
	}
	return mins
}

func TestEytzingerMatchesOracleAcrossShapes(t *testing.T) {
	// Cover: the linear fast path (n-1 <= eytzLinearMax), the crossover,
	// perfect trees (n-1 = 2^k - 1), and off-by-one shapes around them.
	for _, n := range []int{1, 2, 3, 4, 15, 16, 17, 18, 31, 32, 33, 127, 128, 129, 518, 1024} {
		for _, tail := range []int{0, 1, n / 2} {
			mins := dupMins(n, uint64(n)*31+uint64(tail), tail)
			e := NewEytzinger(mins)
			if e.NumSegments() != n {
				t.Fatalf("n=%d: NumSegments = %d", n, e.NumSegments())
			}
			probes := []int64{mins[0] - 10, mins[0], mins[n-1], math.MaxInt64, math.MinInt64}
			for j := 0; j < n; j++ {
				probes = append(probes, mins[j], mins[j]-1, mins[j]+1)
			}
			for _, key := range probes {
				if got, want := e.FindUB(key), refUB(mins, key); got != want {
					t.Fatalf("n=%d tail=%d FindUB(%d): got %d want %d", n, tail, key, got, want)
				}
				if got, want := e.FindLB(key), refLB(mins, key); got != want {
					t.Fatalf("n=%d tail=%d FindLB(%d): got %d want %d", n, tail, key, got, want)
				}
			}
		}
	}
}

func TestEytzingerKeysAndUpdate(t *testing.T) {
	for _, n := range []int{2, 9, 17, 100, 518} { // both sides of the linear cutoff
		mins := sortedMins(n, uint64(n))
		e := NewEytzinger(mins)
		for j := 1; j < n; j++ {
			if e.Key(j) != mins[j] {
				t.Fatalf("n=%d: Key(%d) = %d, want %d", n, j, e.Key(j), mins[j])
			}
		}
		j := n / 2
		if j == 0 {
			j = 1
		}
		newMin := mins[j] + 1
		e.Update(j, newMin)
		mins[j] = newMin
		if e.Key(j) != newMin {
			t.Fatalf("n=%d: update not visible", n)
		}
		for _, key := range []int64{newMin - 1, newMin, newMin + 1} {
			if got, want := e.FindUB(key), refUB(mins, key); got != want {
				t.Fatalf("n=%d after update FindUB(%d): got %d want %d", n, key, got, want)
			}
			if got, want := e.FindLB(key), refLB(mins, key); got != want {
				t.Fatalf("n=%d after update FindLB(%d): got %d want %d", n, key, got, want)
			}
		}
	}
}

func TestEytzingerDuplicateSeparators(t *testing.T) {
	mins := []int64{5, 10, 10, 10, 20}
	// Both sides of the linear cutoff must agree on duplicate routing.
	for _, force := range []bool{false, true} {
		e := NewEytzinger(mins)
		if force {
			e.lin = nil // exercise the descent on the same shape
		}
		if got := e.FindUB(10); got != 3 {
			t.Fatalf("force=%v FindUB(10) = %d, want 3", force, got)
		}
		if got := e.FindLB(10); got != 0 {
			t.Fatalf("force=%v FindLB(10) = %d, want 0", force, got)
		}
		if got := e.FindLB(11); got != 3 {
			t.Fatalf("force=%v FindLB(11) = %d, want 3", force, got)
		}
	}
}

func TestEytzingerPanicsOnBadArgs(t *testing.T) {
	mins := sortedMins(4, 1)
	for name, fn := range map[string]func(){
		"empty":      func() { NewEytzinger(nil) },
		"update0":    func() { NewEytzinger(mins).Update(0, 1) },
		"updateHigh": func() { NewEytzinger(mins).Update(4, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestEytzingerAgainstDescentsProperty pins the tentpole equivalence:
// the Eytzinger descent answers exactly like the paper's static index
// and the flat dynamic index on arbitrary shapes and probes.
func TestEytzingerAgainstDescentsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, tailRaw, fRaw uint8) bool {
		n := int(nRaw%1000) + 1
		tail := int(tailRaw) % n
		fanout := int(fRaw%63) + 2
		mins := dupMins(n, seed, tail)
		e := NewEytzinger(mins)
		s := NewStatic(mins, fanout)
		d := NewDynamic(mins)
		g := workload.NewRNG(seed ^ 0x9e3779b97f4a7c15)
		for i := 0; i < 40; i++ {
			key := int64(g.Uint64())
			if i%4 == 0 {
				key = mins[g.Uint64n(uint64(n))] + int64(g.Uint64n(3)) - 1
			}
			if e.FindUB(key) != s.FindUB(key) || e.FindLB(key) != s.FindLB(key) {
				return false
			}
			if e.FindUB(key) != d.FindUB(key) || e.FindLB(key) != d.FindLB(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzIndexDescent cross-checks all three index kinds and the naive
// oracle on fuzzer-chosen shapes (duplicate runs, unset-separator
// tails) and probe keys.
func FuzzIndexDescent(f *testing.F) {
	f.Add(uint64(1), uint16(1), uint8(0), int64(0))
	f.Add(uint64(7), uint16(17), uint8(3), int64(math.MaxInt64))
	f.Add(uint64(42), uint16(518), uint8(0), int64(-1))
	f.Add(uint64(3), uint16(64), uint8(63), int64(12))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, tailRaw uint8, key int64) {
		n := int(nRaw%1024) + 1
		tail := int(tailRaw) % n
		mins := dupMins(n, seed, tail)
		e := NewEytzinger(mins)
		s := NewStatic(mins, 65)
		d := NewDynamic(mins)
		wantUB, wantLB := refUB(mins, key), refLB(mins, key)
		if got := e.FindUB(key); got != wantUB {
			t.Fatalf("eytzinger FindUB(%d) = %d, want %d (n=%d tail=%d)", key, got, wantUB, n, tail)
		}
		if got := e.FindLB(key); got != wantLB {
			t.Fatalf("eytzinger FindLB(%d) = %d, want %d (n=%d tail=%d)", key, got, wantLB, n, tail)
		}
		if got := s.FindUB(key); got != wantUB {
			t.Fatalf("static FindUB(%d) = %d, want %d", key, got, wantUB)
		}
		if got := d.FindUB(key); got != wantUB {
			t.Fatalf("dynamic FindUB(%d) = %d, want %d", key, got, wantUB)
		}
		if got := s.FindLB(key); got != wantLB {
			t.Fatalf("static FindLB(%d) = %d, want %d", key, got, wantLB)
		}
		if got := d.FindLB(key); got != wantLB {
			t.Fatalf("dynamic FindLB(%d) = %d, want %d", key, got, wantLB)
		}
	})
}
