package staticindex

// This file implements the Eytzinger index: the cache-optimal evolution
// of the packed static index. Where Fig 5's layout packs each node's
// keys contiguously and binary-searches inside the node, the Eytzinger
// (BFS) layout places the j-th-level separators at array indices
// 2^j..2^(j+1)-1, so a descent is a single branchless loop — one
// compare, one shift-or per level, no inner binary search, no
// arithmetic over subtree shapes — and the next level's candidates are
// always at predictable indices that can be touched ahead of the
// compare (software prefetch). Like Static it is rebuilt only at resize
// points and supports O(1) single-separator updates through a position
// map.

import (
	"math/bits"
	"runtime"
)

// eytzLinearMax is the largest separator count served by the shallow
// linear-probe fast path: small arrays fit their whole separator set in
// a couple of cache lines, where a fixed branchless count beats even a
// branchless descent.
const eytzLinearMax = 16

// Eytzinger indexes n segments through the n-1 separator keys
// sep[1..n-1] (sep[j] = minimum key of segment j), stored in BFS order.
type Eytzinger struct {
	n int // number of indexed segments
	m int // separators = n-1
	// t is the 1-based Eytzinger array: t[0] unused, t[1..m] the
	// separators in BFS order.
	t []int64
	// ord[k] is the 0-based sorted rank of the separator at Eytzinger
	// slot k: the descent's exit slot maps back to a segment through it.
	ord []int32
	// pos[j] is the Eytzinger slot of separator ordinal j (1..m), for
	// O(1) Update/Key.
	pos []int32
	// lin mirrors the separators in sorted order when m <= eytzLinearMax
	// (nil otherwise): the linear fast path scans it branchlessly.
	lin []int64
}

// NewEytzinger builds the index from segment minima (mins[0] is ignored,
// as in a B+-tree the leftmost child needs no separator).
func NewEytzinger(mins []int64) *Eytzinger {
	n := len(mins)
	if n == 0 {
		panic("staticindex: no segments")
	}
	m := n - 1
	e := &Eytzinger{
		n:   n,
		m:   m,
		t:   make([]int64, m+1),
		ord: make([]int32, m+1),
		pos: make([]int32, n),
	}
	e.fill(mins, 1, 0)
	if m <= eytzLinearMax {
		e.lin = make([]int64, m)
		copy(e.lin, mins[1:])
	}
	return e
}

// fill lays out the subtree rooted at Eytzinger slot k from the sorted
// separators, consuming mins[1..] in order (in-order traversal of the
// BFS-indexed tree visits slots in sorted-key order). It returns the
// next sorted rank to place.
func (e *Eytzinger) fill(mins []int64, k, next int) int {
	if k > e.m {
		return next
	}
	next = e.fill(mins, 2*k, next)
	e.t[k] = mins[next+1] // separator ordinal next+1 has sorted rank next
	e.ord[k] = int32(next)
	e.pos[next+1] = int32(k)
	next++
	return e.fill(mins, 2*k+1, next)
}

// NumSegments returns the number of indexed segments.
func (e *Eytzinger) NumSegments() int { return e.n }

// FindUB returns the rightmost segment whose separator is <= key: the
// segment where key must reside (for lookups) or be inserted.
func (e *Eytzinger) FindUB(key int64) int {
	if e.lin != nil {
		c := 0
		for _, s := range e.lin {
			if s <= key {
				c++
			}
		}
		return c
	}
	return e.descend(key, false)
}

// FindLB returns the rightmost segment whose separator is < key. Range
// scans start here so that duplicates of the range's lower bound sitting
// in an earlier segment are not skipped.
func (e *Eytzinger) FindLB(key int64) int {
	if e.lin != nil {
		c := 0
		for _, s := range e.lin {
			if s < key {
				c++
			}
		}
		return c
	}
	return e.descend(key, true)
}

// descend is the branchless Eytzinger search: at each level the next
// slot is 2k (key routes left) or 2k+1 (right), encoded as a shift plus
// the comparison bit — no branches, no node arithmetic. The exit slot's
// trailing one-bits encode the last left turn; shifting them (plus one)
// away recovers the slot of the first separator right of the key, whose
// sorted rank is the answer. Before each compare the two cache lines
// holding the grandchildren span (slots 4k..4k+3) are touched, so the
// loads two levels down are in flight while the compare chain resolves;
// runtime.KeepAlive makes the touch accumulator load-bearing without a
// store, keeping the descent genuinely read-only (callers may share the
// index across readers).
func (e *Eytzinger) descend(key int64, strict bool) int {
	t := e.t
	m := uint(e.m)
	k := uint(1)
	var pf int64
	if strict {
		for k <= m {
			if g := k << 2; g < uint(len(t)) {
				pf += t[g]
				if g3 := g | 3; g3 < uint(len(t)) {
					pf += t[g3]
				}
			}
			b := uint(0)
			if t[k] < key {
				b = 1
			}
			k = k<<1 | b
		}
	} else {
		for k <= m {
			if g := k << 2; g < uint(len(t)) {
				pf += t[g]
				if g3 := g | 3; g3 < uint(len(t)) {
					pf += t[g3]
				}
			}
			b := uint(0)
			if t[k] <= key {
				b = 1
			}
			k = k<<1 | b
		}
	}
	runtime.KeepAlive(pf)
	k >>= uint(bits.TrailingZeros(^k) + 1)
	if k == 0 {
		return int(m) // every separator routes left of the key
	}
	return int(e.ord[k])
}

// Update replaces the separator of segment j (1 <= j < n) in O(1).
func (e *Eytzinger) Update(j int, newMin int64) {
	if j <= 0 || j >= e.n {
		panic("staticindex: Eytzinger Update out of range")
	}
	e.t[e.pos[j]] = newMin
	if e.lin != nil {
		e.lin[j-1] = newMin
	}
}

// Key returns the current separator of segment j (1 <= j < n).
func (e *Eytzinger) Key(j int) int64 { return e.t[e.pos[j]] }

// FootprintBytes returns the memory held by the index.
func (e *Eytzinger) FootprintBytes() int64 {
	return int64(cap(e.t)+cap(e.lin))*8 + int64(cap(e.ord)+cap(e.pos))*4 + 64
}
