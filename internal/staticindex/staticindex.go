// Package staticindex implements the RMA's static, pointer-free index
// over segments (Section III "Index", Fig 5), plus the dynamic side index
// of separator keys that traditional PMA implementations keep.
//
// The static index stores only separator keys, packed in one contiguous
// array; traversal computes child offsets arithmetically from the subtree
// shape (r full subtrees of height h-1 followed by one partial subtree),
// so there are no pointers to chase and the footprint is minimal. It is
// "static" because the number of entries is fixed between resizes; single
// entries still change in O(1) during rebalances via a position map.
package staticindex

import "fmt"

// Static is the pointer-elimination index of Fig 5. It indexes n segments
// through the n-1 separator keys sep[1..n-1], where sep[j] is the minimum
// key of segment j; all keys of segments < j are <= sep[j].
type Static struct {
	fanout int     // maximum children per node; keys per node <= fanout-1
	n      int     // number of indexed segments
	keys   []int64 // packed separator keys, preorder node layout
	pos    []int32 // separator ordinal j (1..n-1) -> offset in keys
}

// NewStatic builds the index for the given segment minima (mins[s] is the
// minimum key of segment s; mins[0] is ignored, as in a B+-tree the
// leftmost child needs no separator). fanout must be at least 2; the
// paper uses 65 (64 separator keys per node).
func NewStatic(mins []int64, fanout int) *Static {
	if fanout < 2 {
		panic(fmt.Sprintf("staticindex: fanout %d < 2", fanout))
	}
	n := len(mins)
	if n == 0 {
		panic("staticindex: no segments")
	}
	ix := &Static{
		fanout: fanout,
		n:      n,
		keys:   make([]int64, 0, n-1),
		pos:    make([]int32, n),
	}
	ix.build(mins, 0, n)
	return ix
}

// build lays out the subtree covering segments [lo, hi) and records key
// positions. Node keys come first, then each child subtree in order; a
// subtree covering m segments occupies exactly m-1 key slots.
func (ix *Static) build(mins []int64, lo, hi int) {
	m := hi - lo
	if m <= 1 {
		return
	}
	full, nkeys, _ := ix.shape(m)
	// Emit this node's keys: separators at the full-child boundaries.
	for c := 1; c <= nkeys; c++ {
		j := lo + c*full
		ix.pos[j] = int32(len(ix.keys))
		ix.keys = append(ix.keys, mins[j])
	}
	// Emit children left to right.
	for base := lo; base < hi; base += full {
		end := base + full
		if end > hi {
			end = hi
		}
		ix.build(mins, base, end)
	}
}

// shape computes, for a node covering m > 1 segments, the number of
// segments under each full child (full = fanout^(height-1)), the number
// of separator keys in the node, and whether a partial child exists.
func (ix *Static) shape(m int) (full, nkeys int, hasPartial bool) {
	full = 1
	for full*ix.fanout < m {
		full *= ix.fanout
	}
	// full < m <= full*fanout
	fullChildren := m / full
	rem := m % full
	if rem > 0 {
		return full, fullChildren, true
	}
	return full, fullChildren - 1, false
}

// NumSegments returns the number of indexed segments.
func (ix *Static) NumSegments() int { return ix.n }

// FindUB returns the rightmost segment whose separator is <= key: the
// segment where key must reside (for lookups) or be inserted.
func (ix *Static) FindUB(key int64) int { return ix.find(key, false) }

// FindLB returns the rightmost segment whose separator is < key. Range
// scans start here so that duplicates of the range's lower bound sitting
// in an earlier segment are not skipped.
func (ix *Static) FindLB(key int64) int { return ix.find(key, true) }

func (ix *Static) find(key int64, strict bool) int {
	lo, m, off := 0, ix.n, 0
	for m > 1 {
		full, nkeys, _ := ix.shape(m)
		// Binary search for the number of node keys <= key (or < key when
		// strict): that count is the child to descend into.
		a, b := 0, nkeys
		for a < b {
			mid := (a + b) / 2
			k := ix.keys[off+mid]
			if k < key || (!strict && k == key) {
				a = mid + 1
			} else {
				b = mid
			}
		}
		c := a
		// Child c covers segments [lo + c*full, ...); its packed keys
		// start after this node's keys plus the preceding full subtrees
		// (each full subtree of `full` segments holds full-1 keys).
		off += nkeys + c*(full-1)
		lo += c * full
		if c*full+full <= m {
			m = full
		} else {
			m -= c * full
		}
	}
	return lo
}

// Update replaces the separator of segment j (1 <= j < n) in O(1).
func (ix *Static) Update(j int, newMin int64) {
	if j <= 0 || j >= ix.n {
		panic(fmt.Sprintf("staticindex: Update(%d) out of (0,%d)", j, ix.n))
	}
	ix.keys[ix.pos[j]] = newMin
}

// Key returns the current separator of segment j (1 <= j < n).
func (ix *Static) Key(j int) int64 { return ix.keys[ix.pos[j]] }

// FootprintBytes returns the memory held by the index.
func (ix *Static) FootprintBytes() int64 {
	return int64(cap(ix.keys))*8 + int64(cap(ix.pos))*4 + 32
}

// Dynamic is the plain side index of traditional PMAs: one separator per
// segment in a flat sorted array, binary searched. Unlike Static it is
// cheap to build but every rebalance that moves minima must rewrite a
// span of entries, and its footprint is a full-width array.
type Dynamic struct {
	mins []int64 // mins[s] = separator of segment s (mins[0] unused sentinel)
}

// NewDynamic builds the side index from segment minima.
func NewDynamic(mins []int64) *Dynamic {
	d := &Dynamic{mins: make([]int64, len(mins))}
	copy(d.mins, mins)
	return d
}

// NumSegments returns the number of indexed segments.
func (d *Dynamic) NumSegments() int { return len(d.mins) }

// FindUB returns the rightmost segment whose separator is <= key: the
// strict bound of the next key up, saturating at the domain maximum
// (every separator is <= MaxInt64).
func (d *Dynamic) FindUB(key int64) int {
	if key == int64(^uint64(0)>>1) {
		return len(d.mins) - 1
	}
	return LowerBound(d.mins[1:], key+1)
}

// FindLB returns the rightmost segment whose separator is < key.
func (d *Dynamic) FindLB(key int64) int { return LowerBound(d.mins[1:], key) }

// LowerBound returns the number of elements of the sorted slice
// strictly below x — equivalently the first index holding a value
// >= x. It is the one branchless search primitive shared by the
// Dynamic index routings and the engine's in-segment run probes:
// fixed-iteration halving where each step's decision is a conditional
// move, never a mispredictable jump, so a w-element search always
// costs exactly ceil(log2 w) predictable steps.
func LowerBound(sorted []int64, x int64) int {
	base, n := 0, len(sorted)
	for n > 1 {
		half := n >> 1
		if sorted[base+half-1] < x {
			base += half
		}
		n -= half
	}
	if n == 1 && sorted[base] < x {
		base++
	}
	return base
}

// Update replaces the separator of segment j.
func (d *Dynamic) Update(j int, newMin int64) { d.mins[j] = newMin }

// Key returns the separator of segment j.
func (d *Dynamic) Key(j int) int64 { return d.mins[j] }

// FootprintBytes returns the memory held by the index.
func (d *Dynamic) FootprintBytes() int64 { return int64(cap(d.mins))*8 + 24 }
