package staticindex

import (
	"fmt"
	"iter"
)

// Column is the static-index baseline: an immutable sorted column cut
// into fixed-size blocks whose minima are routed by the pointer-free
// Static index of Fig 5. Point, navigation and order-statistic queries
// descend the packed index to one block and binary search only inside
// it — the same access pattern an RMA segment lookup pays, but over a
// perfectly dense column. Because every block except the last holds
// exactly `block` elements, ranks are exact: blockIdx*block plus one
// in-block bound.
type Column struct {
	keys, vals []int64
	block      int
	ix         *Static // nil when the column is empty
}

// NewColumn builds the baseline from sorted parallel slices (not
// copied). block is the elements-per-block capacity (>= 2); fanout is
// the index node fanout (the paper uses 65).
func NewColumn(keys, vals []int64, block, fanout int) *Column {
	if len(keys) != len(vals) {
		panic("staticindex: NewColumn length mismatch")
	}
	if block < 2 {
		panic(fmt.Sprintf("staticindex: block %d < 2", block))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			panic(fmt.Sprintf("staticindex: NewColumn input not sorted at %d", i))
		}
	}
	c := &Column{keys: keys, vals: vals, block: block}
	if n := len(keys); n > 0 {
		nb := (n + block - 1) / block
		mins := make([]int64, nb)
		for b := range mins {
			mins[b] = keys[b*block]
		}
		c.ix = NewStatic(mins, fanout)
	}
	return c
}

// Size returns the number of elements.
func (c *Column) Size() int { return len(c.keys) }

// blockBounds returns the element interval [lo, hi) of block b.
func (c *Column) blockBounds(b int) (lo, hi int) {
	lo = b * c.block
	hi = lo + c.block
	if hi > len(c.keys) {
		hi = len(c.keys)
	}
	return lo, hi
}

func boundIn(a []int64, x int64, inclusive bool) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x || (inclusive && a[mid] == x) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Find returns a value stored under key: one index descent plus one
// in-block binary search.
func (c *Column) Find(key int64) (int64, bool) {
	if c.ix == nil {
		return 0, false
	}
	lo, hi := c.blockBounds(c.ix.FindUB(key))
	i := lo + boundIn(c.keys[lo:hi], key, false)
	if i < hi && c.keys[i] == key {
		return c.vals[i], true
	}
	return 0, false
}

// position returns the number of elements with key < x (inclusive=false)
// or <= x (inclusive=true).
func (c *Column) position(x int64, inclusive bool) int {
	if c.ix == nil {
		return 0
	}
	var b int
	if inclusive {
		b = c.ix.FindUB(x)
	} else {
		b = c.ix.FindLB(x)
	}
	lo, hi := c.blockBounds(b)
	return lo + boundIn(c.keys[lo:hi], x, inclusive)
}

// Rank returns the number of elements with key strictly less than x.
func (c *Column) Rank(x int64) int { return c.position(x, false) }

// CountRange returns the number of elements with lo <= key <= hi.
func (c *Column) CountRange(lo, hi int64) int {
	if lo > hi {
		return 0
	}
	return c.position(hi, true) - c.position(lo, false)
}

// Select returns the i-th smallest element (0-based).
func (c *Column) Select(i int) (key, val int64, ok bool) {
	if i < 0 || i >= len(c.keys) {
		return 0, 0, false
	}
	return c.keys[i], c.vals[i], true
}

// Floor returns the greatest element with key <= x.
func (c *Column) Floor(x int64) (key, val int64, ok bool) {
	if i := c.position(x, true) - 1; i >= 0 {
		return c.keys[i], c.vals[i], true
	}
	return 0, 0, false
}

// Ceiling returns the smallest element with key >= x.
func (c *Column) Ceiling(x int64) (key, val int64, ok bool) {
	if i := c.position(x, false); i < len(c.keys) {
		return c.keys[i], c.vals[i], true
	}
	return 0, 0, false
}

// Min returns the smallest key.
func (c *Column) Min() (int64, bool) {
	if len(c.keys) == 0 {
		return 0, false
	}
	return c.keys[0], true
}

// Max returns the largest key.
func (c *Column) Max() (int64, bool) {
	if len(c.keys) == 0 {
		return 0, false
	}
	return c.keys[len(c.keys)-1], true
}

// IterAscend returns a lazy ascending iterator over [lo, hi], entered
// through one index descent.
func (c *Column) IterAscend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if lo > hi {
			return
		}
		for i := c.position(lo, false); i < len(c.keys); i++ {
			if c.keys[i] > hi {
				return
			}
			if !yield(c.keys[i], c.vals[i]) {
				return
			}
		}
	}
}

// IterDescend returns a lazy descending iterator over [lo, hi].
func (c *Column) IterDescend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if lo > hi {
			return
		}
		for i := c.position(hi, true) - 1; i >= 0; i-- {
			if c.keys[i] < lo {
				return
			}
			if !yield(c.keys[i], c.vals[i]) {
				return
			}
		}
	}
}

// ScanRange calls yield for every element with lo <= key <= hi.
func (c *Column) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	for k, v := range c.IterAscend(lo, hi) {
		if !yield(k, v) {
			return
		}
	}
}

// Sum aggregates elements in [lo, hi]: count and value sum.
func (c *Column) Sum(lo, hi int64) (count int, sum int64) {
	if lo > hi {
		return 0, 0
	}
	i := c.position(lo, false)
	j := c.position(hi, true)
	for k := i; k < j; k++ {
		sum += c.vals[k]
	}
	return j - i, sum
}

// SumAll aggregates the whole column.
func (c *Column) SumAll() (count int, sum int64) {
	var s int64
	for _, v := range c.vals {
		s += v
	}
	return len(c.keys), s
}

// FootprintBytes returns the memory held: the column plus the packed
// index.
func (c *Column) FootprintBytes() int64 {
	f := int64(cap(c.keys))*8 + int64(cap(c.vals))*8 + 64
	if c.ix != nil {
		f += c.ix.FootprintBytes()
	}
	return f
}
