package vmem

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDirtyTracking(t *testing.T) {
	p := New(8)
	if err := p.Grow(4); err != nil {
		t.Fatal(err)
	}
	if p.DirtyTracking() || p.DirtyCount() != 0 {
		t.Fatal("tracking should be off before enable")
	}
	p.EnableDirtyTracking()
	if !p.DirtyTracking() || p.DirtyCount() != 4 {
		t.Fatalf("enable must mark all mapped pages dirty, got %d", p.DirtyCount())
	}
	p.ClearDirty()
	if p.DirtyCount() != 0 {
		t.Fatal("clear left dirty bits")
	}
	// Set marks its page.
	p.Set(9, 7) // page 1
	if p.DirtyCount() != 1 || !p.IsDirty(1) || p.IsDirty(0) {
		t.Fatalf("Set did not mark page 1: count=%d", p.DirtyCount())
	}
	// Swap marks the rewired page.
	sp, err := p.AcquireSpare()
	if err != nil {
		t.Fatal(err)
	}
	p.Swap(3, sp)
	if !p.IsDirty(3) {
		t.Fatal("Swap did not mark the rewired page")
	}
	// Grow marks the new pages (recycled spares carry stale content).
	p.ClearDirty()
	if err := p.Grow(2); err != nil {
		t.Fatal(err)
	}
	if p.DirtyCount() != 2 || !p.IsDirty(4) || !p.IsDirty(5) {
		t.Fatalf("Grow did not mark new pages: count=%d", p.DirtyCount())
	}
	// Truncate clears the bits of unmapped pages.
	p.Truncate(4)
	if p.DirtyCount() != 0 {
		t.Fatalf("Truncate left dirty bits on unmapped pages: %d", p.DirtyCount())
	}
	// ForEachDirty visits in ascending order.
	p.MarkDirty(2)
	p.MarkDirty(0)
	var got []int
	p.ForEachDirty(func(v int) { got = append(got, v) })
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("ForEachDirty order: %v", got)
	}
	// With tracking off, every page is conservatively dirty.
	q := New(8)
	_ = q.Grow(1)
	if !q.IsDirty(0) {
		t.Fatal("untracked pages must be conservatively dirty")
	}
}

// fillSeq fills every slot of p with a per-generation pattern.
func fillSeq(p *Pages, gen int64) {
	for i := 0; i < p.Slots(); i++ {
		p.Set(i, gen*1_000_000+int64(i))
	}
}

func checkSeq(t *testing.T, p *Pages, gen int64) {
	t.Helper()
	for i := 0; i < p.Slots(); i++ {
		if got := p.Get(i); got != gen*1_000_000+int64(i) {
			t.Fatalf("slot %d: got %d, want %d", i, got, gen*1_000_000+int64(i))
		}
	}
}

func TestFileRegionCheckpointRecover(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys, vals := New(8), New(8)
	for _, p := range []*Pages{keys, vals} {
		if err := p.Grow(4); err != nil {
			t.Fatal(err)
		}
		p.EnableDirtyTracking()
	}
	fillSeq(keys, 1)
	fillSeq(vals, 2)

	epoch, err := r.Checkpoint([]byte("meta-1"), 0, keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || r.Epoch() != 1 {
		t.Fatalf("epoch %d", epoch)
	}
	if keys.DirtyCount() != 0 || vals.DirtyCount() != 0 {
		t.Fatal("checkpoint must clear dirty bits")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and recover the latest epoch.
	r2, err := OpenFileRegion(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	spaces, meta, e, err := r2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 || string(meta) != "meta-1" {
		t.Fatalf("recovered epoch %d meta %q", e, meta)
	}
	if len(spaces) != 2 {
		t.Fatalf("recovered %d spaces", len(spaces))
	}
	checkSeq(t, spaces[0], 1)
	checkSeq(t, spaces[1], 2)
	if !spaces[0].DirtyTracking() || spaces[0].DirtyCount() != 0 {
		t.Fatal("recovered spaces must be tracked and clean")
	}
}

func TestFileRegionIncrementalCheckpointWritesOnlyDirty(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := New(8)
	if err := p.Grow(16); err != nil {
		t.Fatal(err)
	}
	p.EnableDirtyTracking()
	fillSeq(p, 1)
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	w0 := r.Stats().PagesWritten
	if w0 != 16 {
		t.Fatalf("first checkpoint wrote %d pages, want 16", w0)
	}
	// Touch two pages; the next checkpoint must write exactly two.
	p.Set(0, 42)  // page 0
	p.Set(80, 43) // page 10
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	if d := r.Stats().PagesWritten - w0; d != 2 {
		t.Fatalf("incremental checkpoint wrote %d pages, want 2", d)
	}
	// Recover and verify both generations of content merged correctly.
	spaces, _, _, err := r.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	q := spaces[0]
	for i := 0; i < q.Slots(); i++ {
		want := int64(1_000_000 + i)
		if i == 0 {
			want = 42
		}
		if i == 80 {
			want = 43
		}
		if q.Get(i) != want {
			t.Fatalf("slot %d: got %d want %d", i, q.Get(i), want)
		}
	}
}

func TestFileRegionKeepEpochRetention(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := New(8)
	_ = p.Grow(2)
	p.EnableDirtyTracking()

	fillSeq(p, 1)
	e1, _ := r.Checkpoint(nil, 0, p)
	fillSeq(p, 2)
	e2, err := r.Checkpoint(nil, e1, p)
	if err != nil {
		t.Fatal(err)
	}
	fillSeq(p, 3)
	e3, err := r.Checkpoint(nil, e1, p)
	if err != nil {
		t.Fatal(err)
	}
	// Retained: e1 (kept) and e3 (latest); e2 retired.
	eps := r.Epochs()
	if len(eps) != 2 || eps[0] != e1 || eps[1] != e3 {
		t.Fatalf("retained epochs %v, want [%d %d]", eps, e1, e3)
	}
	if _, _, _, err := r.Recover(e2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("recovering retired epoch: %v", err)
	}
	// Both retained epochs recover with the right content.
	s1, _, _, err := r.Recover(e1)
	if err != nil {
		t.Fatal(err)
	}
	checkSeq(t, s1[0], 1)
	s3, _, _, err := r.Recover(e3)
	if err != nil {
		t.Fatal(err)
	}
	checkSeq(t, s3[0], 3)
}

func TestFileRegionSlotReuseAfterRetire(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := New(8)
	_ = p.Grow(4)
	p.EnableDirtyTracking()
	// Full-rewrite checkpoints with no keep epoch: the file must not grow
	// beyond 2x the page count (shadow copy + live copy).
	for gen := int64(1); gen <= 20; gen++ {
		fillSeq(p, gen)
		p.MarkDirtyRange(0, p.NumPages())
		if _, err := r.Checkpoint(nil, 0, p); err != nil {
			t.Fatal(err)
		}
	}
	if r.FileSlots() > 8 {
		t.Fatalf("slot reuse broken: high-water %d for 4 live pages", r.FileSlots())
	}
	s, _, _, err := r.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	checkSeq(t, s[0], 20)
}

func TestFileRegionFaultInjectionLeavesRegionConsistent(t *testing.T) {
	for _, op := range []FaultOp{FaultPageWrite, FaultDataSync, FaultManifestWrite, FaultManifestSync, FaultRename} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			r, err := CreateFileRegion(dir, 8)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			p := New(8)
			_ = p.Grow(3)
			p.EnableDirtyTracking()
			fillSeq(p, 1)
			if _, err := r.Checkpoint(nil, 0, p); err != nil {
				t.Fatal(err)
			}

			fillSeq(p, 2)
			r.InjectFault(op, 0)
			if _, err := r.Checkpoint(nil, 0, p); !errors.Is(err, ErrFaultInjected) {
				t.Fatalf("want injected fault, got %v", err)
			}
			// The region still serves epoch 1, the in-memory space is
			// untouched, and the dirty bits survive for the retry.
			if r.Epoch() != 1 {
				t.Fatalf("failed checkpoint moved epoch to %d", r.Epoch())
			}
			checkSeq(t, p, 2)
			if p.DirtyCount() == 0 {
				t.Fatal("failed checkpoint cleared dirty bits")
			}
			s, _, _, err := r.Recover(0)
			if err != nil {
				t.Fatal(err)
			}
			checkSeq(t, s[0], 1)
			// The retry succeeds and persists generation 2.
			if _, err := r.Checkpoint(nil, 0, p); err != nil {
				t.Fatalf("retry after injected fault: %v", err)
			}
			s, _, _, err = r.Recover(0)
			if err != nil {
				t.Fatal(err)
			}
			checkSeq(t, s[0], 2)

			// A crash-like reopen also lands on the last published epoch.
			r.Close()
			r2, err := OpenFileRegion(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			s, _, e, err := r2.Recover(0)
			if err != nil {
				t.Fatal(err)
			}
			if e != 2 {
				t.Fatalf("reopened epoch %d", e)
			}
			checkSeq(t, s[0], 2)
		})
	}
}

func TestFileRegionTornManifestIgnored(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := New(8)
	_ = p.Grow(2)
	p.EnableDirtyTracking()
	fillSeq(p, 1)
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	fillSeq(p, 2)
	if _, err := r.Checkpoint(nil, 1, p); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Corrupt the latest manifest (simulates a torn write) and drop a
	// stray tmp file; recovery must fall back to epoch 1 and purge the
	// tmp.
	raw, err := os.ReadFile(filepath.Join(dir, manifestName(2)))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, manifestName(2)), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName(3)+".tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenFileRegion(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	s, _, e, err := r2.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 {
		t.Fatalf("recovered epoch %d, want fallback to 1", e)
	}
	checkSeq(t, s[0], 1)
	ents, _ := os.ReadDir(dir)
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			t.Fatalf("stray tmp %s not purged", ent.Name())
		}
	}
}

func TestFileRegionTornPageDetected(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := New(8)
	_ = p.Grow(2)
	p.EnableDirtyTracking()
	fillSeq(p, 1)
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	r.Close()

	// Flip a byte inside a checkpointed page: recovery must fail the
	// checksum, not return silently corrupt data.
	f, err := os.OpenFile(filepath.Join(dir, dataFileName), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAA}, 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r2, err := OpenFileRegion(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, _, _, err := r2.Recover(0); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("want checksum error, got %v", err)
	}
}

func TestOpenFileRegionEmpty(t *testing.T) {
	if _, err := OpenFileRegion(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}

func TestCreateFileRegionWipesHistory(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := New(8)
	_ = p.Grow(1)
	p.EnableDirtyTracking()
	fillSeq(p, 1)
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2.Close()
	if _, err := OpenFileRegion(dir); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("create did not wipe old manifests: %v", err)
	}
}

func TestFileRegionGeometryChangeAcrossCheckpoints(t *testing.T) {
	dir := t.TempDir()
	r, err := CreateFileRegion(dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p := New(8)
	_ = p.Grow(2)
	p.EnableDirtyTracking()
	fillSeq(p, 1)
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	// Grow, checkpoint, recover.
	if err := p.Grow(3); err != nil {
		t.Fatal(err)
	}
	fillSeq(p, 2)
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	s, _, _, err := r.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if s[0].NumPages() != 5 {
		t.Fatalf("recovered %d pages", s[0].NumPages())
	}
	checkSeq(t, s[0], 2)
	// Shrink, checkpoint, recover.
	p.Truncate(1)
	fillSeq(p, 3)
	if _, err := r.Checkpoint(nil, 0, p); err != nil {
		t.Fatal(err)
	}
	s, _, _, err = r.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if s[0].NumPages() != 1 {
		t.Fatalf("recovered %d pages after shrink", s[0].NumPages())
	}
	checkSeq(t, s[0], 3)
}
