// File-backed region: the durable counterpart of the memfd MmapRegion.
//
// A FileRegion stores physical pages in one named data file (pages.dat)
// and the virtual→physical mapping in epoch-stamped, checksummed
// manifest files — shadow paging at page granularity. A checkpoint
// writes only the dirty pages, to file slots no retained manifest
// references, fsyncs the data file, and then publishes the new mapping
// atomically (write manifest-<epoch>.tmp, fsync, rename, fsync the
// directory). A crash at any point leaves the previously published
// manifest — and every file slot it references — untouched, so recovery
// always finds a complete, self-consistent snapshot. This is the
// paper's rewiring economy carried to storage: Swap stays a
// metadata-only operation in memory, and on disk a checkpoint costs
// exactly the pages that changed plus one small manifest.
//
// Epoch retention follows the caller's two-level checkpoint scheme: the
// keep argument of Checkpoint names one older epoch that must stay
// recoverable (the shard layer passes the epoch its map-level
// checkpoint last published), and the region retains {keep, latest} —
// a slot is reclaimed only when no retained manifest references it.
//
// A FileRegion is not safe for concurrent use; callers serialize access
// (the shard layer does so under the shard lock).
package vmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoCheckpoint reports that a region directory holds no valid,
// completely published checkpoint manifest.
var ErrNoCheckpoint = errors.New("vmem: no valid checkpoint manifest")

// ErrFaultInjected is the error every injected FileRegion fault wraps.
// Testing hook only.
var ErrFaultInjected = errors.New("vmem: injected fault")

// errTorn reports a manifest that fails structural or checksum
// validation — a torn or corrupt file, skipped during recovery.
var errTorn = errors.New("vmem: torn or corrupt manifest")

// castagnoli is the CRC-32C polynomial table used for both per-page and
// whole-manifest checksums (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	manifestMagic  = "RMAFREG1"
	dataFileName   = "pages.dat"
	manifestPrefix = "manifest-"
)

// FaultOp names an injectable failure point in the checkpoint path.
type FaultOp string

const (
	// FaultPageWrite fails a dirty-page write to the data file.
	FaultPageWrite FaultOp = "pagewrite"
	// FaultDataSync fails the data-file fsync before publish.
	FaultDataSync FaultOp = "datasync"
	// FaultManifestWrite fails writing the manifest temp file.
	FaultManifestWrite FaultOp = "manifestwrite"
	// FaultManifestSync fails the manifest fsync before rename.
	FaultManifestSync FaultOp = "manifestsync"
	// FaultRename fails the atomic rename that publishes the manifest.
	FaultRename FaultOp = "rename"
)

// pageRef locates one virtual page's content: a data-file slot plus the
// CRC-32C of its encoded bytes.
type pageRef struct {
	slot uint64
	crc  uint32
}

// manifest is one published checkpoint: an epoch, an opaque caller meta
// blob, and the complete slot mapping of every space.
type manifest struct {
	epoch     uint64
	pageSlots int
	slots     uint64 // data-file slot high-water at publish time
	meta      []byte
	spaces    [][]pageRef
}

// FileRegionStats counts the region's I/O work.
type FileRegionStats struct {
	Checkpoints      uint64 // successfully published checkpoints
	PagesWritten     uint64 // dirty pages persisted
	BytesWritten     uint64 // page bytes written to the data file
	ManifestsRetired uint64 // manifests retired by retention
}

// FileRegion is a durable page store for one or more Pages spaces.
type FileRegion struct {
	dir       string
	pageSlots int
	data      *os.File

	epoch     uint64               // highest published epoch
	current   [][]pageRef          // mapping the next checkpoint builds on
	manifests map[uint64]*manifest // retained checkpoints, by epoch
	refcnt    map[uint64]int       // data-file slot -> retaining manifests
	freeSlots []uint64             // slots below the high-water with no references
	fileSlots uint64               // data-file slot high-water

	pageBuf []byte // one page of encoded bytes, reused
	faults  map[FaultOp]int
	stats   FileRegionStats
	closed  bool
}

// CreateFileRegion initializes a fresh region at dir (created if
// missing). Any previous manifests at dir are removed so stale epochs
// cannot be recovered over the new history; the data file is truncated.
func CreateFileRegion(dir string, pageSlots int) (*FileRegion, error) {
	if pageSlots <= 0 {
		return nil, fmt.Errorf("vmem: invalid pageSlots %d", pageSlots)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("vmem: create region dir: %w", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vmem: create region: %w", err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), manifestPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, dataFileName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vmem: create region data file: %w", err)
	}
	return &FileRegion{
		dir:       dir,
		pageSlots: pageSlots,
		data:      f,
		manifests: make(map[uint64]*manifest),
		refcnt:    make(map[uint64]int),
		pageBuf:   make([]byte, pageSlots*8),
		faults:    make(map[FaultOp]int),
	}, nil
}

// OpenFileRegion opens an existing region, locating every valid
// manifest at dir (torn ones — which the atomic publish should never
// produce — are tolerated and ignored). Returns ErrNoCheckpoint when no
// valid manifest exists.
func OpenFileRegion(dir string) (*FileRegion, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("vmem: open region: %w", err)
	}
	var ms []*manifest
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // unpublished leftovers of a crash
			continue
		}
		if !strings.HasPrefix(name, manifestPrefix) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		m, err := decodeManifest(raw)
		if err != nil {
			continue
		}
		ms = append(ms, m)
	}
	if len(ms) == 0 {
		return nil, ErrNoCheckpoint
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].epoch < ms[j].epoch })
	latest := ms[len(ms)-1]

	f, err := os.OpenFile(filepath.Join(dir, dataFileName), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vmem: open region data file: %w", err)
	}
	r := &FileRegion{
		dir:       dir,
		pageSlots: latest.pageSlots,
		data:      f,
		epoch:     latest.epoch,
		current:   latest.spaces,
		manifests: make(map[uint64]*manifest),
		refcnt:    make(map[uint64]int),
		pageBuf:   make([]byte, latest.pageSlots*8),
		faults:    make(map[FaultOp]int),
	}
	for _, m := range ms {
		if m.pageSlots != latest.pageSlots {
			continue
		}
		r.manifests[m.epoch] = m
		if m.slots > r.fileSlots {
			r.fileSlots = m.slots
		}
		for _, refs := range m.spaces {
			for _, pr := range refs {
				r.refcnt[pr.slot]++
				if pr.slot >= r.fileSlots {
					r.fileSlots = pr.slot + 1
				}
			}
		}
	}
	for s := uint64(0); s < r.fileSlots; s++ {
		if r.refcnt[s] == 0 {
			r.freeSlots = append(r.freeSlots, s)
		}
	}
	return r, nil
}

// Dir returns the region directory.
func (r *FileRegion) Dir() string { return r.dir }

// PageSlots returns the page size in int64 slots.
func (r *FileRegion) PageSlots() int { return r.pageSlots }

// Epoch returns the highest published checkpoint epoch (0 when none).
func (r *FileRegion) Epoch() uint64 { return r.epoch }

// Epochs returns the retained checkpoint epochs in ascending order.
func (r *FileRegion) Epochs() []uint64 {
	out := make([]uint64, 0, len(r.manifests))
	for e := range r.manifests {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns the accumulated I/O counters.
func (r *FileRegion) Stats() FileRegionStats { return r.stats }

// FileSlots returns the data-file slot high-water (for inspection).
func (r *FileRegion) FileSlots() uint64 { return r.fileSlots }

// Close releases the data file. The region stays recoverable on disk.
// Idempotent: the serving layer composes Sharded.Close from pieces
// that callers may legitimately re-run (shutdown paths race a SHUTDOWN
// command against signal handlers), so a second Close is a no-op
// rather than an os.ErrClosed.
func (r *FileRegion) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	return r.data.Close()
}

// InjectFault makes the n-th next operation of kind op fail (n == 0
// fails the very next one). Pass a negative n to disable. Testing hook
// only.
func (r *FileRegion) InjectFault(op FaultOp, n int) {
	if n < 0 {
		delete(r.faults, op)
		return
	}
	r.faults[op] = n
}

func (r *FileRegion) faultOn(op FaultOp) error {
	n, ok := r.faults[op]
	if !ok {
		return nil
	}
	if n == 0 {
		delete(r.faults, op)
		return fmt.Errorf("%w: %s", ErrFaultInjected, op)
	}
	r.faults[op] = n - 1
	return nil
}

// Checkpoint persists the given spaces at a new epoch and publishes it
// atomically. Only dirty pages are written (clean pages keep the slots
// the previous manifest assigned them); meta is an opaque caller blob
// stored in the manifest; keep names one older epoch that must remain
// recoverable (0 for none). On success the spaces' dirty bitmaps are
// cleared and the new epoch is returned.
//
// On any failure — injected or real — the region and the spaces are
// unchanged: the previous epoch remains the published checkpoint, the
// dirty bits stay set, and the next Checkpoint retries the same work.
func (r *FileRegion) Checkpoint(meta []byte, keep uint64, spaces ...*Pages) (uint64, error) {
	for i, sp := range spaces {
		if sp.PageSlots() != r.pageSlots {
			return 0, fmt.Errorf("vmem: checkpoint space %d: pageSlots %d != region %d",
				i, sp.PageSlots(), r.pageSlots)
		}
	}
	newEpoch := r.epoch + 1
	m := &manifest{
		epoch:     newEpoch,
		pageSlots: r.pageSlots,
		meta:      append([]byte(nil), meta...),
		spaces:    make([][]pageRef, len(spaces)),
	}

	// Slot allocations roll back wholesale on failure: popped free slots
	// return to the free list, extensions reset the high-water. Pages
	// already written to those slots are garbage no manifest references.
	fileSlots0 := r.fileSlots
	var taken []uint64
	rollback := func() {
		r.freeSlots = append(r.freeSlots, taken...)
		r.fileSlots = fileSlots0
	}

	for i, sp := range spaces {
		var prior []pageRef
		if i < len(r.current) {
			prior = r.current[i]
		}
		refs := make([]pageRef, sp.NumPages())
		for v := 0; v < sp.NumPages(); v++ {
			if v < len(prior) && !sp.IsDirty(v) {
				refs[v] = prior[v]
				continue
			}
			slot := r.allocSlot(&taken)
			pr, err := r.writePage(slot, sp.Page(v))
			if err != nil {
				rollback()
				return 0, err
			}
			refs[v] = pr
		}
		m.spaces[i] = refs
	}

	if err := r.faultOn(FaultDataSync); err != nil {
		rollback()
		return 0, err
	}
	if err := r.data.Sync(); err != nil {
		rollback()
		return 0, fmt.Errorf("vmem: checkpoint data sync: %w", err)
	}
	m.slots = r.fileSlots
	if err := r.publish(m); err != nil {
		rollback()
		return 0, err
	}

	// Published: install the new mapping, retire everything retention
	// does not cover, and mark the spaces clean.
	r.manifests[newEpoch] = m
	for _, refs := range m.spaces {
		for _, pr := range refs {
			r.refcnt[pr.slot]++
		}
	}
	r.epoch = newEpoch
	r.current = m.spaces
	r.retireExcept(keep, newEpoch)
	for _, sp := range spaces {
		sp.ClearDirty()
	}
	r.stats.Checkpoints++
	return newEpoch, nil
}

// Recover loads the spaces of the checkpoint at the given epoch (0 for
// the latest), verifying every page checksum. The returned Pages have
// dirty tracking enabled and clean (their content equals the recovered
// checkpoint), and the region's working mapping is reset to that epoch
// so subsequent checkpoints build on it.
func (r *FileRegion) Recover(epoch uint64) ([]*Pages, []byte, uint64, error) {
	if epoch == 0 {
		epoch = r.epoch
	}
	m := r.manifests[epoch]
	if m == nil {
		return nil, nil, 0, fmt.Errorf("%w (epoch %d)", ErrNoCheckpoint, epoch)
	}
	out := make([]*Pages, len(m.spaces))
	for i, refs := range m.spaces {
		p := New(r.pageSlots)
		if err := p.Grow(len(refs)); err != nil {
			return nil, nil, 0, err
		}
		for v, pr := range refs {
			if err := r.readPage(pr, p.Page(v)); err != nil {
				return nil, nil, 0, fmt.Errorf("vmem: recover space %d page %d: %w", i, v, err)
			}
		}
		p.EnableDirtyTracking()
		p.ClearDirty()
		out[i] = p
	}
	r.current = m.spaces
	return out, append([]byte(nil), m.meta...), m.epoch, nil
}

// allocSlot returns a data-file slot no retained manifest references,
// recording popped free slots in taken for rollback.
func (r *FileRegion) allocSlot(taken *[]uint64) uint64 {
	if n := len(r.freeSlots); n > 0 {
		s := r.freeSlots[n-1]
		r.freeSlots = r.freeSlots[:n-1]
		*taken = append(*taken, s)
		return s
	}
	s := r.fileSlots
	r.fileSlots++
	return s
}

// writePage encodes pg at the given data-file slot and returns its ref.
func (r *FileRegion) writePage(slot uint64, pg []int64) (pageRef, error) {
	if err := r.faultOn(FaultPageWrite); err != nil {
		return pageRef{}, err
	}
	buf := r.pageBuf
	for i, x := range pg {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(x))
	}
	if _, err := r.data.WriteAt(buf, int64(slot)*int64(len(buf))); err != nil {
		return pageRef{}, fmt.Errorf("vmem: write page to slot %d: %w", slot, err)
	}
	r.stats.PagesWritten++
	r.stats.BytesWritten += uint64(len(buf))
	return pageRef{slot: slot, crc: crc32.Checksum(buf, castagnoli)}, nil
}

// readPage loads the page at pr into out, verifying the checksum.
func (r *FileRegion) readPage(pr pageRef, out []int64) error {
	buf := r.pageBuf
	if _, err := r.data.ReadAt(buf, int64(pr.slot)*int64(len(buf))); err != nil {
		return fmt.Errorf("read slot %d: %w", pr.slot, err)
	}
	if crc := crc32.Checksum(buf, castagnoli); crc != pr.crc {
		return fmt.Errorf("slot %d checksum mismatch (got %08x, manifest %08x)", pr.slot, crc, pr.crc)
	}
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// publish writes m's manifest file and makes it visible atomically:
// write to a .tmp, fsync, rename into place, fsync the directory. A
// crash before the rename leaves only the previous manifest; after it,
// only a complete new one.
func (r *FileRegion) publish(m *manifest) error {
	raw := encodeManifest(m)
	tmp := filepath.Join(r.dir, manifestName(m.epoch)+".tmp")
	final := filepath.Join(r.dir, manifestName(m.epoch))
	if err := r.faultOn(FaultManifestWrite); err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("vmem: publish manifest: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("vmem: publish manifest: %w", err)
	}
	if err := r.faultOn(FaultManifestSync); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("vmem: publish manifest sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vmem: publish manifest close: %w", err)
	}
	if err := r.faultOn(FaultRename); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("vmem: publish manifest rename: %w", err)
	}
	if err := syncDir(r.dir); err != nil {
		os.Remove(final)
		return fmt.Errorf("vmem: publish manifest dir sync: %w", err)
	}
	return nil
}

// retireExcept drops every retained manifest whose epoch is not listed,
// reclaiming data-file slots whose reference count reaches zero and
// removing the manifest files.
func (r *FileRegion) retireExcept(keep ...uint64) {
	for e, m := range r.manifests {
		retained := false
		for _, k := range keep {
			if e == k {
				retained = true
				break
			}
		}
		if retained {
			continue
		}
		for _, refs := range m.spaces {
			for _, pr := range refs {
				r.refcnt[pr.slot]--
				if r.refcnt[pr.slot] == 0 {
					delete(r.refcnt, pr.slot)
					r.freeSlots = append(r.freeSlots, pr.slot)
				}
			}
		}
		delete(r.manifests, e)
		os.Remove(filepath.Join(r.dir, manifestName(e)))
		r.stats.ManifestsRetired++
	}
}

func manifestName(epoch uint64) string {
	return fmt.Sprintf("%s%016x", manifestPrefix, epoch)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- manifest encoding ------------------------------------------------------
//
// Little-endian throughout. Layout:
//
//	magic "RMAFREG1"                        8 bytes
//	pageSlots                               u32
//	epoch                                   u64
//	fileSlots (data-file high-water)        u64
//	metaLen, meta                           u32 + bytes
//	numSpaces                               u32
//	per space: numPages, then numPages ×    u32
//	  { slot u64, crc u32 }                 12 bytes each
//	CRC-32C of everything above             u32

func le32(b []byte, x uint32) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func le64(b []byte, x uint64) []byte {
	b = le32(b, uint32(x))
	return le32(b, uint32(x>>32))
}

func encodeManifest(m *manifest) []byte {
	n := len(manifestMagic) + 4 + 8 + 8 + 4 + len(m.meta) + 4 + 4
	for _, refs := range m.spaces {
		n += 4 + len(refs)*12
	}
	raw := make([]byte, 0, n)
	raw = append(raw, manifestMagic...)
	raw = le32(raw, uint32(m.pageSlots))
	raw = le64(raw, m.epoch)
	raw = le64(raw, m.slots)
	raw = le32(raw, uint32(len(m.meta)))
	raw = append(raw, m.meta...)
	raw = le32(raw, uint32(len(m.spaces)))
	for _, refs := range m.spaces {
		raw = le32(raw, uint32(len(refs)))
		for _, pr := range refs {
			raw = le64(raw, pr.slot)
			raw = le32(raw, pr.crc)
		}
	}
	return le32(raw, crc32.Checksum(raw, castagnoli))
}

// cursor is a bounds-checked little-endian reader for decodeManifest.
type cursor struct {
	b   []byte
	bad bool
}

func (c *cursor) u32() uint32 {
	if len(c.b) < 4 {
		c.bad = true
		return 0
	}
	x := binary.LittleEndian.Uint32(c.b)
	c.b = c.b[4:]
	return x
}

func (c *cursor) u64() uint64 {
	if len(c.b) < 8 {
		c.bad = true
		return 0
	}
	x := binary.LittleEndian.Uint64(c.b)
	c.b = c.b[8:]
	return x
}

func (c *cursor) bytes(n int) []byte {
	if n < 0 || len(c.b) < n {
		c.bad = true
		return nil
	}
	x := c.b[:n:n]
	c.b = c.b[n:]
	return x
}

func decodeManifest(raw []byte) (*manifest, error) {
	if len(raw) < len(manifestMagic)+4 {
		return nil, errTorn
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, errTorn
	}
	if string(body[:len(manifestMagic)]) != manifestMagic {
		return nil, errTorn
	}
	c := &cursor{b: body[len(manifestMagic):]}
	m := &manifest{}
	m.pageSlots = int(c.u32())
	m.epoch = c.u64()
	m.slots = c.u64()
	m.meta = append([]byte(nil), c.bytes(int(c.u32()))...)
	numSpaces := int(c.u32())
	if c.bad || numSpaces < 0 || numSpaces > len(c.b)/4 {
		return nil, errTorn
	}
	m.spaces = make([][]pageRef, numSpaces)
	for i := range m.spaces {
		numPages := int(c.u32())
		if c.bad || numPages < 0 || numPages > len(c.b)/12 {
			return nil, errTorn
		}
		refs := make([]pageRef, numPages)
		for v := range refs {
			refs[v] = pageRef{slot: c.u64(), crc: c.u32()}
		}
		m.spaces[i] = refs
	}
	if c.bad || len(c.b) != 0 || m.pageSlots <= 0 || m.epoch == 0 {
		return nil, errTorn
	}
	return m, nil
}
