package vmem

import (
	"sync"
	"testing"
)

// Unit tests for the epoch gate: the parity-bucket advance rule, limbo
// retention while readers are pinned, reclamation ordering back into the
// spare pool, and the Swap/Truncate retirement routing.

func TestEpochGateAdvanceRequiresEmptyNextBucket(t *testing.T) {
	g := NewEpochGate()
	p := New(8)
	if err := p.Grow(1); err != nil {
		t.Fatal(err)
	}
	pg := p.Page(0)
	g.Retire(p, pg)
	if n := g.LimboPages(); n != 1 {
		t.Fatalf("LimboPages = %d, want 1", n)
	}

	// A reader pinned in the NEXT epoch's parity bucket blocks the
	// advance (epoch 0 → 1 needs bucket 1 empty).
	e0 := g.Enter() // bucket 0 — does not block 0→1
	if !g.TryAdvance() {
		t.Fatal("advance 0→1 blocked by a bucket-0 reader; the gate checks the wrong bucket")
	}
	// Now epoch 1: the bucket-0 reader from epoch 0 blocks 1→2.
	if g.TryAdvance() {
		t.Fatal("advance 1→2 succeeded with an epoch-0 reader still pinned")
	}
	g.Exit(e0)
	if !g.TryAdvance() {
		t.Fatal("advance 1→2 still blocked after the reader exited")
	}
	if got := g.Advances(); got != 2 {
		t.Fatalf("Advances = %d, want 2", got)
	}
}

func TestEpochGateFreesOnlyTwoEpochsBack(t *testing.T) {
	g := NewEpochGate()
	p := New(8)
	if err := p.Grow(2); err != nil {
		t.Fatal(err)
	}
	p.TrimSpares(0)
	g.Retire(p, p.Page(0)) // retired at epoch 0
	if !g.TryAdvance() {   // epoch 1: entries from epoch <= -1 freed, i.e. none
		t.Fatal("advance failed")
	}
	if n := g.LimboPages(); n != 1 {
		t.Fatalf("epoch-0 page freed after one advance; limbo %d, want 1", n)
	}
	if p.SparePages() != 0 {
		t.Fatalf("spare pool got a page too early")
	}
	g.Retire(p, p.Page(1)) // retired at epoch 1
	if !g.TryAdvance() {   // epoch 2: frees entries with epoch <= 0
		t.Fatal("advance failed")
	}
	if n := g.LimboPages(); n != 1 {
		t.Fatalf("limbo %d after second advance, want 1 (only the epoch-0 page freed)", n)
	}
	if p.SparePages() != 1 {
		t.Fatalf("spare pool %d, want 1", p.SparePages())
	}
	if !g.TryAdvance() { // epoch 3: frees the epoch-1 page
		t.Fatal("advance failed")
	}
	if n := g.LimboPages(); n != 0 {
		t.Fatalf("limbo %d after third advance, want 0", n)
	}
	if p.SparePages() != 2 {
		t.Fatalf("spare pool %d, want 2", p.SparePages())
	}
}

// TestEpochGateSwapRoutesThroughLimbo: with a gate attached, Swap must
// send the displaced page to limbo instead of the spare pool — an
// optimistic reader may still be probing it.
func TestEpochGateSwapRoutesThroughLimbo(t *testing.T) {
	p := New(8)
	if err := p.Grow(1); err != nil {
		t.Fatal(err)
	}
	p.TrimSpares(0)
	g := NewEpochGate()
	p.AttachEpochGate(g)
	old := p.Page(0)
	fresh, err := p.AcquireSpare()
	if err != nil {
		t.Fatal(err)
	}
	p.Swap(0, fresh)
	if p.SparePages() != 0 {
		t.Fatal("Swap returned the displaced page straight to the spare pool despite the gate")
	}
	if g.LimboPages() != 1 {
		t.Fatalf("limbo %d after gated Swap, want 1", g.LimboPages())
	}
	// Two advances later the old page is spare again and reusable.
	g.TryAdvance()
	g.TryAdvance()
	g.TryAdvance()
	if p.SparePages() != 1 {
		t.Fatalf("spare pool %d after advances, want 1", p.SparePages())
	}
	reused, err := p.AcquireSpare()
	if err != nil {
		t.Fatal(err)
	}
	if &reused[0] != &old[0] {
		t.Error("reclaimed page was not recycled through the spare pool")
	}
}

// TestEpochGateTruncateRoutesThroughLimbo mirrors the Swap test for the
// shrink path.
func TestEpochGateTruncateRoutesThroughLimbo(t *testing.T) {
	p := New(8)
	if err := p.Grow(4); err != nil {
		t.Fatal(err)
	}
	p.TrimSpares(0)
	g := NewEpochGate()
	p.AttachEpochGate(g)
	p.Truncate(1)
	if p.SparePages() != 0 {
		t.Fatal("Truncate bypassed the gate")
	}
	if g.LimboPages() != 3 {
		t.Fatalf("limbo %d after gated Truncate(1), want 3", g.LimboPages())
	}
}

// TestEpochGateConcurrentEnterExit hammers Enter/Exit from many
// goroutines against an advancing writer; the gate must never advance
// past a pinned parity bucket (checked implicitly: -race plus the
// bucket counters never going negative).
func TestEpochGateConcurrentEnterExit(t *testing.T) {
	g := NewEpochGate()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := g.Enter()
				g.Exit(p)
			}
		}()
	}
	var mu sync.Mutex // stands in for the owning shard's lock
	for i := 0; i < 100_000; i++ {
		mu.Lock()
		g.TryAdvance()
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
	if g.Advances() == 0 {
		t.Fatal("the gate never advanced under concurrent readers")
	}
}
