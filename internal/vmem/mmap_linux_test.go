//go:build linux

package vmem

import "testing"

func newRegionOrSkip(t *testing.T, pageBytes, maxPages int) *MmapRegion {
	t.Helper()
	r, err := NewMmapRegion(pageBytes, maxPages)
	if err != nil {
		t.Skipf("real rewiring unavailable here: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestMmapGrowAndAccess(t *testing.T) {
	ps := 4096
	r := newRegionOrSkip(t, ps, 16)
	if err := r.Grow(4); err != nil {
		t.Fatal(err)
	}
	s := r.Slots()
	if len(s) != 4*ps/8 {
		t.Fatalf("slots %d", len(s))
	}
	for i := range s {
		s[i] = int64(i)
	}
	for i := range s {
		if s[i] != int64(i) {
			t.Fatalf("readback at %d", i)
		}
	}
}

// TestMmapSwapIsRealRewiring is the point of the whole technique: after
// Swap, the data previously visible at page A appears at page B's
// addresses, with zero element copies.
func TestMmapSwapIsRealRewiring(t *testing.T) {
	ps := 4096
	r := newRegionOrSkip(t, ps, 8)
	if err := r.Grow(2); err != nil {
		t.Fatal(err)
	}
	a := r.Page(0)
	b := r.Page(1)
	for i := range a {
		a[i] = 111
		b[i] = 222
	}
	if err := r.Swap(0, 1); err != nil {
		t.Fatal(err)
	}
	// The same virtual addresses now show the other page's contents.
	if a[0] != 222 || b[0] != 111 {
		t.Fatalf("swap did not rewire: a[0]=%d b[0]=%d", a[0], b[0])
	}
	// Writes through the rewired mapping land on the right physical page.
	a[1] = 333
	if err := r.Swap(0, 1); err != nil {
		t.Fatal(err)
	}
	if b[1] != 333 {
		t.Fatalf("write after rewire lost: b[1]=%d", b[1])
	}
}

func TestMmapGrowBeyondReservationFails(t *testing.T) {
	r := newRegionOrSkip(t, 4096, 2)
	if err := r.Grow(2); err != nil {
		t.Fatal(err)
	}
	if err := r.Grow(1); err == nil {
		t.Fatal("grow beyond reservation succeeded")
	}
}

func TestMmapRejectsUnalignedPage(t *testing.T) {
	if _, err := NewMmapRegion(1000, 4); err == nil {
		t.Fatal("unaligned page size accepted")
	}
}

// BenchmarkMmapSwapVsSimSwap compares the kernel rewiring cost against
// the page-table substrate's O(1) pointer swap.
func BenchmarkMmapSwapVsSimSwap(b *testing.B) {
	r, err := NewMmapRegion(4096, 4)
	if err != nil {
		b.Skipf("real rewiring unavailable: %v", err)
	}
	defer r.Close()
	if err := r.Grow(2); err != nil {
		b.Fatal(err)
	}
	b.Run("mmap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := r.Swap(0, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sim", func(b *testing.B) {
		p := New(512)
		_ = p.Grow(2)
		for i := 0; i < b.N; i++ {
			sp, _ := p.AcquireSpare()
			p.Swap(0, sp)
		}
	})
}
