//go:build linux

package vmem

import (
	"fmt"
	"runtime"
	"syscall"
	"unsafe"
)

// MmapRegion is the real memory-rewiring substrate: a reserved virtual
// address range whose pages are backed by a memfd, so the
// virtual-to-physical mapping can be changed with mmap(MAP_FIXED) —
// exactly the RUMA technique the paper builds on (Schuhknecht et al.,
// PVLDB 2016).
//
// The engine does not use it by default: Go's garbage collector and
// runtime know nothing about manually remapped memory, so every object
// referencing it must be kept off the Go heap (the region is accessed
// through unsafe slices over non-Go memory). The portable page-table
// substrate (Pages) preserves the same cost structure GC-safely; this
// type exists to demonstrate the real mechanism and to benchmark the
// kernel-level swap cost against the simulated one.
//
// Not safe for concurrent use.
type MmapRegion struct {
	region    []byte // reserved virtual range (PROT_NONE until mapped)
	fd        int    // memfd backing the physical pages
	pageBytes int
	mapped    int   // virtual pages currently mapped
	filePages int   // physical pages allocated in the memfd
	table     []int // virtual page -> memfd page (for bookkeeping)
}

// memfdCreateSysno returns the memfd_create syscall number for the
// architecture this binary was compiled for, or ok=false on an
// architecture whose number is not wired up (the old code hardcoded the
// x86-64 number 319 and would have invoked an arbitrary syscall
// elsewhere). The switch resolves at build time — runtime.GOARCH is a
// per-build constant.
func memfdCreateSysno() (uintptr, bool) {
	switch runtime.GOARCH {
	case "amd64":
		return 319, true
	case "arm64", "riscv64", "loong64":
		return 279, true
	case "386":
		return 356, true
	case "arm":
		return 385, true
	case "s390x":
		return 350, true
	case "ppc64", "ppc64le":
		return 360, true
	}
	return 0, false
}

// MmapSupported reports whether kernel memory rewiring is available on
// this platform (Linux with a known memfd_create syscall number).
func MmapSupported() bool {
	_, ok := memfdCreateSysno()
	return ok
}

// NewMmapRegion reserves maxPages*pageBytes of virtual address space and
// creates the backing memfd. pageBytes must be a multiple of the OS page
// size. Returns ErrRewireUnsupported on architectures without a wired-up
// memfd_create number, and an ErrRewireFailed-wrapped error on kernels
// that reject the syscall.
func NewMmapRegion(pageBytes, maxPages int) (*MmapRegion, error) {
	if pageBytes%syscall.Getpagesize() != 0 {
		return nil, fmt.Errorf("vmem: pageBytes %d not a multiple of the OS page size %d",
			pageBytes, syscall.Getpagesize())
	}
	sysno, ok := memfdCreateSysno()
	if !ok {
		return nil, fmt.Errorf("%w (linux/%s)", ErrRewireUnsupported, runtime.GOARCH)
	}
	name := append([]byte("rma-rewire"), 0)
	fd, _, errno := syscall.Syscall(sysno, uintptr(unsafe.Pointer(&name[0])), 0, 0)
	if errno != 0 {
		return nil, fmt.Errorf("%w: memfd_create: %v", ErrRewireFailed, errno)
	}
	size := pageBytes * maxPages
	// Reserve address space without physical backing.
	region, err := syscall.Mmap(-1, 0, size, syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS)
	if err != nil {
		syscall.Close(int(fd))
		return nil, fmt.Errorf("%w: reserve mmap: %v", ErrRewireFailed, err)
	}
	return &MmapRegion{
		region:    region,
		fd:        int(fd),
		pageBytes: pageBytes,
	}, nil
}

// Grow maps n additional virtual pages, each backed by a fresh memfd
// page. On failure the region is unchanged: already-mapped new pages are
// re-protected and the memfd is truncated back, so a failed grow leaves
// the caller exactly where it started.
func (r *MmapRegion) Grow(n int) error {
	need := (r.mapped + n) * r.pageBytes
	if need > len(r.region) {
		return fmt.Errorf("%w: grow beyond reservation (%d > %d)", ErrRewireFailed, need, len(r.region))
	}
	if err := syscall.Ftruncate(r.fd, int64((r.filePages+n)*r.pageBytes)); err != nil {
		return fmt.Errorf("%w: ftruncate: %v", ErrRewireFailed, err)
	}
	for i := 0; i < n; i++ {
		v := r.mapped + i
		phys := r.filePages + i
		if err := r.mapAt(v, phys); err != nil {
			// Roll back: unmap what this call mapped (back to PROT_NONE
			// reservation) and shrink the memfd to its old size.
			for j := r.mapped; j < v; j++ {
				r.unmapAt(j)
			}
			r.table = r.table[:r.mapped]
			syscall.Ftruncate(r.fd, int64(r.filePages*r.pageBytes))
			return err
		}
		r.table = append(r.table, phys)
	}
	r.mapped += n
	r.filePages += n
	return nil
}

// mapAt maps memfd page phys at virtual page v with MAP_FIXED.
func (r *MmapRegion) mapAt(v, phys int) error {
	_, _, errno := syscall.Syscall6(syscall.SYS_MMAP,
		uintptr(unsafe.Pointer(&r.region[v*r.pageBytes])), uintptr(r.pageBytes),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_SHARED|syscall.MAP_FIXED, uintptr(r.fd), uintptr(phys*r.pageBytes))
	if errno != 0 {
		return fmt.Errorf("%w: fixed mmap of page %d: %v", ErrRewireFailed, v, errno)
	}
	return nil
}

// unmapAt returns virtual page v to the PROT_NONE reservation
// (best-effort, used only on rollback paths).
func (r *MmapRegion) unmapAt(v int) {
	syscall.Syscall6(syscall.SYS_MMAP,
		uintptr(unsafe.Pointer(&r.region[v*r.pageBytes])), uintptr(r.pageBytes),
		syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS|syscall.MAP_FIXED, ^uintptr(0), 0)
}

// Swap rewires two virtual pages: after it returns, the contents visible
// at va and vb have exchanged places without copying a single element —
// two mmap calls change only the page tables. On failure the mapping is
// restored (the first remap is undone), so the region never holds a
// half-swapped state.
func (r *MmapRegion) Swap(va, vb int) error {
	pa, pb := r.table[va], r.table[vb]
	if err := r.mapAt(va, pb); err != nil {
		return err
	}
	if err := r.mapAt(vb, pa); err != nil {
		// Undo the first remap; mapping an already-backed memfd page at
		// an already-mapped address cannot run out of resources the way
		// the forward call can, but stay defensive and surface both.
		if err2 := r.mapAt(va, pa); err2 != nil {
			return fmt.Errorf("vmem: swap rollback failed: %v (after %w)", err2, err)
		}
		return err
	}
	r.table[va], r.table[vb] = pb, pa
	return nil
}

// NumPages returns the number of mapped virtual pages.
func (r *MmapRegion) NumPages() int { return r.mapped }

// PageSlots returns the number of int64 slots per page.
func (r *MmapRegion) PageSlots() int { return r.pageBytes / 8 }

// Slots returns a view over all mapped slots. The memory is outside the
// Go heap: the view stays valid until Close, and remapping pages under
// it is safe because the addresses do not change.
func (r *MmapRegion) Slots() []int64 {
	return unsafe.Slice((*int64)(unsafe.Pointer(&r.region[0])), r.mapped*r.pageBytes/8)
}

// Page returns the slots of virtual page v.
func (r *MmapRegion) Page(v int) []int64 {
	s := r.Slots()
	ps := r.PageSlots()
	return s[v*ps : (v+1)*ps]
}

// Close unmaps the region and closes the memfd.
func (r *MmapRegion) Close() error {
	if r.region != nil {
		syscall.Munmap(r.region)
		r.region = nil
	}
	if r.fd > 0 {
		syscall.Close(r.fd)
		r.fd = -1
	}
	return nil
}
