//go:build !linux

package vmem

import "fmt"

// MmapRegion is unavailable off Linux: memfd_create plus MAP_FIXED
// remapping is a Linux-specific mechanism. The type exists so callers
// compile everywhere and can probe availability with MmapSupported;
// every constructor call fails with ErrRewireUnsupported, and the
// portable Pages substrate (which preserves the same cost structure)
// is the fallback.
type MmapRegion struct{}

// MmapSupported reports whether kernel memory rewiring is available on
// this platform. Always false off Linux.
func MmapSupported() bool { return false }

// NewMmapRegion always fails off Linux with ErrRewireUnsupported.
func NewMmapRegion(pageBytes, maxPages int) (*MmapRegion, error) {
	return nil, fmt.Errorf("%w (non-linux)", ErrRewireUnsupported)
}

func (r *MmapRegion) Grow(n int) error      { return ErrRewireUnsupported }
func (r *MmapRegion) Swap(va, vb int) error { return ErrRewireUnsupported }
func (r *MmapRegion) NumPages() int         { return 0 }
func (r *MmapRegion) PageSlots() int        { return 0 }
func (r *MmapRegion) Slots() []int64        { return nil }
func (r *MmapRegion) Page(v int) []int64    { return nil }
func (r *MmapRegion) Close() error          { return nil }
