// Package vmem provides the memory-rewiring substrate of the RMA.
//
// The paper implements rebalances and resizes with "memory rewiring"
// (RUMA, Schuhknecht et al., PVLDB 2016): the array occupies a range of
// virtual pages, spare physical pages are kept on the side, elements are
// redistributed by writing them once into the spare pages, and then the
// virtual addresses of the old and new pages are swapped — an O(1)
// page-table operation instead of a second copy per element.
//
// This package reproduces that cost structure in a GC-safe way: a virtual
// address space is a table of physical pages (Go slices), and "rewiring"
// swaps table entries. The properties the algorithms rely on are
// preserved exactly:
//
//   - one copy per element during a rebalance (writes go straight to the
//     spare page; installation is a pointer swap);
//   - spare pages are recycled without zeroing, so resizes avoid the cost
//     of acquiring zeroed memory (the analog of the paper's observation
//     that rewiring "alleviates the overhead in acquiring new zeroed
//     physical pages from the operating system" — in Go, a fresh
//     make([]int64, n) is always zeroed by the runtime, and the pool
//     skips it);
//   - growing the address space absorbs the existing spare buffers first,
//     as the paper does when expanding the RMA.
//
// The package counts copies, swaps, fresh allocations and zeroed slots so
// benchmarks can expose the one-copy-vs-two-copy asymmetry that the
// paper's Figure 14 ("Memory rewiring") measures.
package vmem

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrAllocFailed reports that a physical page allocation failed. It is
// returned only under failure injection (production Go surfaces memory
// exhaustion as a runtime panic); the data structure must remain intact
// and consistent when it is returned.
var ErrAllocFailed = errors.New("vmem: physical page allocation failed")

// ErrRewireFailed wraps every errno failure of the kernel rewiring
// substrate (MmapRegion): memfd_create, mmap, ftruncate. Callers match
// it with errors.Is; the wrapped message carries the specific syscall
// and errno.
var ErrRewireFailed = errors.New("vmem: kernel rewiring syscall failed")

// ErrRewireUnsupported reports that kernel memory rewiring is not
// available on this platform (non-Linux, or a Linux architecture whose
// memfd_create syscall number is not wired up). The portable Pages
// substrate is the fallback and is always available.
var ErrRewireUnsupported = errors.New("vmem: kernel memory rewiring not supported on this platform")

// Pages is a virtual address space of int64 slots organized in fixed-size
// pages with an explicit virtual-to-physical mapping.
//
// Virtual page v of a Pages p is the slice p.Page(v); slot i of the space
// lives at p.Page(i/p.PageSlots())[i%p.PageSlots()]. The zero value is not
// usable; call New.
type Pages struct {
	pageSlots int
	table     [][]int64 // virtual page id -> physical page
	spares    [][]int64 // pool of detached physical pages

	// acquireBuf backs AcquireSpares results so steady-state rebalances
	// acquire their spare pages without allocating a fresh [][]int64.
	acquireBuf [][]int64

	// dirty is the page-granular dirty bitmap for checkpointing: bit v is
	// set when virtual page v's content may have changed since the last
	// FileRegion checkpoint. nil until EnableDirtyTracking — marking is a
	// nil-check plus a bit set, so the hot write paths stay branch-cheap
	// and allocation-free whether durability is attached or not. Swap and
	// Grow mark automatically (a rewired page always carries new content);
	// in-place writes through Page slices are invisible here, so callers
	// that mutate page content directly mark via MarkDirty/MarkDirtyRange
	// (internal/core does so in cardAdd and applyCards, which every
	// content-changing path passes through).
	dirty []uint64

	// gate, when non-nil, intercepts page retirement: Swap and Truncate
	// route detached pages through the epoch gate's limbo list instead
	// of straight back to the spare pool, so lock-free readers holding a
	// stale table entry never see a retired page recycled under them
	// (see epoch.go). Attached once before the owning shard is shared.
	gate *EpochGate

	stats Stats

	failAfter int // fail the n-th next physical allocation; -1 = disabled
}

// Stats aggregates the substrate's operation counters.
type Stats struct {
	Swaps       uint64 // virtual page-table entry swaps (rewiring operations)
	FreshAllocs uint64 // physical pages allocated from the Go runtime
	PoolReuses  uint64 // physical pages taken from the spare pool (no zeroing)
	ZeroedSlots uint64 // slots zeroed by fresh allocations
}

// New returns an empty address space with the given page size in slots.
func New(pageSlots int) *Pages {
	if pageSlots <= 0 {
		panic(fmt.Sprintf("vmem: invalid pageSlots %d", pageSlots))
	}
	return &Pages{pageSlots: pageSlots, failAfter: -1}
}

// PageSlots returns the number of int64 slots per page.
func (p *Pages) PageSlots() int { return p.pageSlots }

// NumPages returns the number of virtual pages currently mapped.
func (p *Pages) NumPages() int { return len(p.table) }

// Slots returns the total number of addressable slots.
func (p *Pages) Slots() int { return len(p.table) * p.pageSlots }

// SparePages returns the current size of the spare pool.
func (p *Pages) SparePages() int { return len(p.spares) }

// Page returns the physical page currently mapped at virtual page v.
func (p *Pages) Page(v int) []int64 { return p.table[v] }

// Get returns the value at slot i. Convenience accessor for tests and
// cold paths; hot paths should hold a Page slice.
func (p *Pages) Get(i int) int64 {
	return p.table[i/p.pageSlots][i%p.pageSlots]
}

// Set stores x at slot i. Convenience accessor for tests and cold paths.
func (p *Pages) Set(i int, x int64) {
	v := i / p.pageSlots
	p.table[v][i%p.pageSlots] = x
	if p.dirty != nil {
		p.dirty[v>>6] |= 1 << (uint(v) & 63)
	}
}

// EnableDirtyTracking switches on the page-granular dirty bitmap and
// marks every currently mapped page dirty (nothing is known to be
// checkpointed yet). Idempotent; called when durability is attached.
func (p *Pages) EnableDirtyTracking() {
	if p.dirty != nil {
		return
	}
	p.dirty = make([]uint64, (len(p.table)+63)/64+1) //rma:alloc-ok — durability attach is a cold path
	p.MarkDirtyRange(0, len(p.table))
}

// DirtyTracking reports whether the dirty bitmap is enabled.
func (p *Pages) DirtyTracking() bool { return p.dirty != nil }

// growDirty extends the dirty bitmap to cover the current table length.
func (p *Pages) growDirty() {
	need := (len(p.table)+63)/64 + 1
	if need <= len(p.dirty) {
		return
	}
	d := make([]uint64, need) //rma:alloc-ok — bitmap growth rides the cold resize machinery
	copy(d, p.dirty)
	p.dirty = d
}

// MarkDirty records that virtual page v's content may have changed
// since the last checkpoint. No-op when tracking is off; never
// allocates.
func (p *Pages) MarkDirty(v int) {
	if p.dirty != nil {
		p.dirty[v>>6] |= 1 << (uint(v) & 63)
	}
}

// MarkDirtyRange marks virtual pages [lo, hi) dirty. No-op when
// tracking is off; never allocates.
func (p *Pages) MarkDirtyRange(lo, hi int) {
	if p.dirty == nil {
		return
	}
	for v := lo; v < hi; v++ {
		p.dirty[v>>6] |= 1 << (uint(v) & 63)
	}
}

// IsDirty reports whether page v must be persisted by the next
// checkpoint. With tracking off every page is conservatively dirty.
func (p *Pages) IsDirty(v int) bool {
	if p.dirty == nil {
		return true
	}
	return p.dirty[v>>6]&(1<<(uint(v)&63)) != 0
}

// ClearDirty resets the whole bitmap; called after a successful
// checkpoint has persisted every dirty page.
func (p *Pages) ClearDirty() {
	for i := range p.dirty {
		p.dirty[i] = 0
	}
}

// DirtyCount returns the number of pages currently marked dirty.
func (p *Pages) DirtyCount() int {
	n := 0
	for _, w := range p.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEachDirty calls fn for every dirty virtual page in ascending
// order. fn must not mutate the bitmap.
func (p *Pages) ForEachDirty(fn func(v int)) {
	for i, w := range p.dirty {
		for w != 0 {
			v := i<<6 + bits.TrailingZeros64(w)
			if v < len(p.table) {
				fn(v)
			}
			w &= w - 1
		}
	}
}

// alloc produces one physical page, preferring the spare pool (recycled
// without zeroing) over a fresh, runtime-zeroed allocation.
func (p *Pages) alloc() ([]int64, error) {
	if p.failAfter == 0 {
		return nil, ErrAllocFailed
	}
	if p.failAfter > 0 {
		p.failAfter--
	}
	if n := len(p.spares); n > 0 {
		pg := p.spares[n-1]
		p.spares = p.spares[:n-1]
		p.stats.PoolReuses++
		return pg, nil
	}
	p.stats.FreshAllocs++
	p.stats.ZeroedSlots += uint64(p.pageSlots)
	return make([]int64, p.pageSlots), nil //rma:alloc-ok — fresh page when the pool is dry (Stats.FreshAllocs)
}

// allocAppend appends n physical pages to out, preferring the spare pool
// (recycled without zeroing); the fresh remainder is carved from a single
// backing allocation, so growing by many pages costs one make instead of
// one per page. On failure the already-taken pages return to the pool and
// out is restored to its original length.
//
// Note the batching trade-off: pages carved from one backing share it,
// so the garbage collector reclaims the batch only once every page of it
// has been dropped. Pages in the live table are retained anyway; only a
// trimmed pool can briefly over-retain.
func (p *Pages) allocAppend(out [][]int64, n int) ([][]int64, error) {
	base := len(out)
	for n > 0 && len(p.spares) > 0 {
		if p.failAfter == 0 {
			p.spares = append(p.spares, out[base:]...) //rma:cap-ok — spare-pool capacity is amortized
			return out[:base], ErrAllocFailed
		}
		if p.failAfter > 0 {
			p.failAfter--
		}
		m := len(p.spares)
		pg := p.spares[m-1]
		p.spares = p.spares[:m-1]
		p.stats.PoolReuses++
		out = append(out, pg) //rma:cap-ok — out is pre-sized by AcquireSpares
		n--
	}
	if n == 0 {
		return out, nil
	}
	if p.failAfter >= 0 && p.failAfter < n {
		// The injected failure lands inside the fresh batch: fall back to
		// page-by-page allocation for exact failure semantics.
		for ; n > 0; n-- {
			pg, err := p.alloc()
			if err != nil {
				p.spares = append(p.spares, out[base:]...) //rma:cap-ok — spare-pool capacity is amortized
				return out[:base], err
			}
			out = append(out, pg) //rma:cap-ok — out is pre-sized by AcquireSpares
		}
		return out, nil
	}
	if p.failAfter > 0 {
		p.failAfter -= n
	}
	backing := make([]int64, n*p.pageSlots) //rma:alloc-ok — fresh batch when the pool is dry (Stats.FreshAllocs)
	p.stats.FreshAllocs += uint64(n)
	p.stats.ZeroedSlots += uint64(n * p.pageSlots)
	for i := 0; i < n; i++ {
		out = append(out, backing[i*p.pageSlots:(i+1)*p.pageSlots:(i+1)*p.pageSlots]) //rma:cap-ok — out is pre-sized by AcquireSpares
	}
	return out, nil
}

// Grow extends the address space by n virtual pages, absorbing spare
// buffers first as the paper does when expanding the RMA. On failure the
// address space is unchanged. With dirty tracking on, the new pages are
// born dirty: recycled spare pages carry stale content and fresh pages
// are not yet in any checkpoint.
func (p *Pages) Grow(n int) error {
	table, err := p.allocAppend(p.table, n)
	if err != nil {
		return err
	}
	old := len(p.table)
	p.table = table
	if p.dirty != nil {
		p.growDirty()
		p.MarkDirtyRange(old, len(p.table))
	}
	return nil
}

// Truncate shrinks the address space to n virtual pages; the unmapped
// physical pages return to the spare pool (or, with an epoch gate
// attached, to its limbo list until readers quiesce).
func (p *Pages) Truncate(n int) {
	if n > len(p.table) {
		panic(fmt.Sprintf("vmem: Truncate(%d) beyond %d pages", n, len(p.table)))
	}
	if p.gate != nil {
		for i := n; i < len(p.table); i++ {
			p.gate.Retire(p, p.table[i])
		}
	} else {
		p.spares = append(p.spares, p.table[n:]...) //rma:cap-ok — spare-pool capacity is amortized
	}
	for i := n; i < len(p.table); i++ {
		p.table[i] = nil
		if p.dirty != nil {
			p.dirty[i>>6] &^= 1 << (uint(i) & 63)
		}
	}
	p.table = p.table[:n]
}

// AcquireSpare detaches one spare physical page for the caller to fill.
// Pair with Swap or ReleaseSpare.
func (p *Pages) AcquireSpare() ([]int64, error) { return p.alloc() }

// AcquireSpares detaches n spare pages at once, or none on failure —
// callers pre-acquire everything a rebalance needs so that a failure
// cannot leave the structure half-rewired.
//
// The returned slice aliases an internal reusable buffer: it is valid
// only until the next AcquireSpares call on this Pages, which is exactly
// the lifetime a rebalance needs (acquire, fill, Swap) and keeps the
// steady-state rebalance path allocation-free.
func (p *Pages) AcquireSpares(n int) ([][]int64, error) {
	if cap(p.acquireBuf) < n {
		p.acquireBuf = make([][]int64, 0, n) //rma:alloc-ok — scratch grows to the largest acquisition seen
	}
	out, err := p.allocAppend(p.acquireBuf[:0], n)
	if err != nil {
		return nil, err
	}
	p.acquireBuf = out
	return out, nil
}

// ReleaseSpare returns a detached page to the pool unused.
func (p *Pages) ReleaseSpare(pg []int64) {
	if len(pg) != p.pageSlots {
		panic("vmem: ReleaseSpare of foreign page")
	}
	p.spares = append(p.spares, pg) //rma:cap-ok — spare-pool capacity is amortized
}

// Swap installs pg as the physical page of virtual page v and returns the
// previously mapped physical page to the spare pool. This is the rewiring
// operation: O(1), no element copies.
func (p *Pages) Swap(v int, pg []int64) {
	if len(pg) != p.pageSlots {
		panic("vmem: Swap with foreign page")
	}
	old := p.table[v]
	p.table[v] = pg
	if p.gate != nil {
		p.gate.Retire(p, old)
	} else {
		p.spares = append(p.spares, old) //rma:cap-ok — spare-pool capacity is amortized
	}
	p.stats.Swaps++
	if p.dirty != nil {
		p.dirty[v>>6] |= 1 << (uint(v) & 63)
	}
}

// TrimSpares caps the spare pool at max pages, dropping the excess for
// the garbage collector to reclaim. The paper applies the same cap: the
// buffer space may not exceed the memory used by the array itself.
func (p *Pages) TrimSpares(max int) {
	if len(p.spares) <= max {
		return
	}
	for i := max; i < len(p.spares); i++ {
		p.spares[i] = nil
	}
	p.spares = p.spares[:max]
}

// AttachEpochGate routes this space's page retirement (Swap, Truncate)
// through g's limbo list. Attach once, before the owning shard is
// shared; the field is immutable afterwards, so hot paths read it
// without synchronization.
func (p *Pages) AttachEpochGate(g *EpochGate) { p.gate = g }

// Gate returns the attached epoch gate, or nil.
func (p *Pages) Gate() *EpochGate { return p.gate }

// Table returns the live virtual-to-physical page table. Lock-free
// readers capture this slice header in their published view; within an
// epoch only single-word entry stores mutate it (Swap), which is what
// the seqlock revalidation protocol tolerates. Callers must not modify
// the returned slice.
func (p *Pages) Table() [][]int64 { return p.table }

// Stats returns the operation counters accumulated so far.
func (p *Pages) Stats() Stats { return p.stats }

// FootprintBytes returns the physical memory held: mapped pages, spare
// pages, and the page table itself.
func (p *Pages) FootprintBytes() int64 {
	pages := int64(len(p.table) + len(p.spares))
	return pages*int64(p.pageSlots)*8 + int64(cap(p.table)+cap(p.spares)+cap(p.acquireBuf))*24
}

// InjectAllocFailure makes the n-th next physical allocation fail
// (n == 0 fails the very next one). Pass a negative n to disable.
// Testing hook only.
func (p *Pages) InjectAllocFailure(n int) { p.failAfter = n }
