package vmem

import "sync/atomic"

// Epoch-based reclamation for rewired pages.
//
// A page-table Swap is the RCU publish point of a rebalance: the new
// page is installed with one pointer store, and the old page would
// normally return to the spare pool immediately. With lock-free readers
// that is too early — a seqlock reader that captured the old table entry
// may still be scanning the old page, and a later rebalance recycling it
// as a spare would scribble over the slots mid-read. The reader's
// version revalidation rejects any value read from such a page, so this
// is a retry-storm problem rather than a safety problem; the gate turns
// the storm back into quiet: retired pages sit in a limbo list until
// every reader that could have seen the old mapping has provably left,
// and only then rejoin the spare pool.
//
// The scheme is the classic two-bucket parity EBR:
//
//   - The gate keeps a global epoch counter E and two reader counters,
//     indexed by epoch parity. A reader entering pins bucket E&1; it
//     exits the same bucket it entered.
//   - Retiring a page tags it with the current epoch.
//   - Advancing from E to E+1 requires bucket (E+1)&1 — the bucket new
//     readers would reuse — to be empty. After the advance, pages
//     retired at epoch <= E-1 are freed: every reader that could hold
//     their old mapping entered at epoch <= E-1, i.e. in a bucket that
//     has since been observed empty at an advance.
//
// Enter is a load plus one counter increment; the load-then-increment
// window is benign: a reader that loads E right before an advance lands
// its increment in the old bucket, which conservatively blocks the
// *next* advance rather than the one in flight, and the reader has read
// no table state before its increment is visible.
//
// Locking discipline: Enter/Exit and the diagnostic accessors are
// atomics, callable from anywhere. Retire and TryAdvance touch the
// limbo list and must run under the owning shard's write lock — the
// same lock that serializes the Swaps that feed Retire — so the gate
// adds no mutex and no lock-order edge (lockcheck sees nothing new).
type EpochGate struct {
	epoch atomic.Uint64

	// readers counts in-flight readers per epoch parity, padded so the
	// two buckets (and the epoch word above) do not share a cache line
	// under concurrent Enter/Exit traffic.
	readers [2]struct {
		n atomic.Int64
		_ [56]byte
	}

	limboLen atomic.Int64  // pages currently in limbo (lock-free peek)
	advances atomic.Uint64 // successful epoch advances

	// limbo holds retired pages not yet returned to their spare pools.
	// Guarded by the owning shard's write lock (see above), not by any
	// lock of its own.
	limbo []limboPage
}

// limboPage is one retired physical page awaiting reclamation.
type limboPage struct {
	owner *Pages
	pg    []int64
	epoch uint64
}

// NewEpochGate returns a gate at epoch 0 with no readers and an empty
// limbo list.
func NewEpochGate() *EpochGate { return &EpochGate{} }

// Enter pins the current epoch for a reader and returns the parity
// bucket to hand back to Exit. Wait-free; never blocks writers.
func (g *EpochGate) Enter() uint32 {
	p := uint32(g.epoch.Load() & 1)
	g.readers[p].n.Add(1)
	return p
}

// Exit releases a reader's epoch pin. p must be the value Enter
// returned.
func (g *EpochGate) Exit(p uint32) {
	g.readers[p].n.Add(-1)
}

// Retire moves a page detached by a Swap or Truncate into limbo, tagged
// with the current epoch. Must run under the owning shard's write lock.
func (g *EpochGate) Retire(owner *Pages, pg []int64) {
	g.limbo = append(g.limbo, limboPage{owner: owner, pg: pg, epoch: g.epoch.Load()}) //rma:cap-ok — limbo capacity is amortized like the spare pool's
	g.limboLen.Add(1)
}

// TryAdvance attempts one epoch advance, freeing every limbo page whose
// retirement epoch is at least two advances old (see the type comment
// for the safety argument). It fails — harmlessly, to be retried at the
// next quiesce point — while a reader still pins the bucket the next
// epoch would reuse. Must run under the same shard write lock that
// serializes Retire.
func (g *EpochGate) TryAdvance() bool {
	e := g.epoch.Load()
	if g.readers[(e+1)&1].n.Load() != 0 {
		return false
	}
	g.epoch.Store(e + 1)
	g.advances.Add(1)
	if e == 0 || len(g.limbo) == 0 {
		return true
	}
	keep := g.limbo[:0]
	freed := 0
	for _, lp := range g.limbo {
		if lp.epoch <= e-1 {
			lp.owner.ReleaseSpare(lp.pg)
			freed++
		} else {
			keep = append(keep, lp)
		}
	}
	for i := len(keep); i < len(g.limbo); i++ {
		g.limbo[i] = limboPage{} // drop page references for the GC
	}
	g.limbo = keep
	g.limboLen.Add(int64(-freed))
	return true
}

// LimboPages returns the number of retired pages awaiting reclamation.
// Lock-free diagnostic; writers use it to decide whether an advance is
// worth attempting.
func (g *EpochGate) LimboPages() int { return int(g.limboLen.Load()) }

// Advances returns the number of successful epoch advances.
func (g *EpochGate) Advances() uint64 { return g.advances.Load() }

// FootprintBytes returns the memory held by limbo pages and the limbo
// list itself (the spare-pool share that moved here). Call under the
// owning shard's write lock.
func (g *EpochGate) FootprintBytes() int64 {
	var slots int64
	for _, lp := range g.limbo {
		slots += int64(cap(lp.pg))
	}
	return slots*8 + int64(cap(g.limbo))*40
}
