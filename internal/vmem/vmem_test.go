package vmem

import (
	"testing"
	"testing/quick"
)

func TestGrowAndAccess(t *testing.T) {
	p := New(16)
	if err := p.Grow(4); err != nil {
		t.Fatal(err)
	}
	if p.NumPages() != 4 || p.Slots() != 64 {
		t.Fatalf("got %d pages / %d slots", p.NumPages(), p.Slots())
	}
	for i := 0; i < p.Slots(); i++ {
		p.Set(i, int64(i*3))
	}
	for i := 0; i < p.Slots(); i++ {
		if got := p.Get(i); got != int64(i*3) {
			t.Fatalf("slot %d: got %d", i, got)
		}
	}
	// Fresh pages must be zeroed.
	if err := p.Grow(1); err != nil {
		t.Fatal(err)
	}
	for i := 64; i < 80; i++ {
		if p.Get(i) != 0 {
			t.Fatalf("fresh page not zeroed at %d", i)
		}
	}
}

func TestSwapIsRewiringNotCopying(t *testing.T) {
	p := New(8)
	if err := p.Grow(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.Set(i, 100+int64(i))
	}
	spare, err := p.AcquireSpare()
	if err != nil {
		t.Fatal(err)
	}
	for i := range spare {
		spare[i] = 200 + int64(i)
	}
	before := p.Stats()
	p.Swap(0, spare)
	after := p.Stats()
	if after.Swaps != before.Swaps+1 {
		t.Fatalf("swap not counted")
	}
	for i := 0; i < 8; i++ {
		if got := p.Get(i); got != 200+int64(i) {
			t.Fatalf("virtual page 0 slot %d: got %d", i, got)
		}
	}
	// The old physical page went back to the pool and is handed out next,
	// with its old contents intact (no zeroing on reuse).
	reused, err := p.AcquireSpare()
	if err != nil {
		t.Fatal(err)
	}
	if reused[0] != 100 {
		t.Fatalf("expected pooled page with stale contents, got %d", reused[0])
	}
	if s := p.Stats(); s.PoolReuses == 0 {
		t.Fatal("pool reuse not counted")
	}
}

func TestGrowAbsorbsSpares(t *testing.T) {
	p := New(8)
	if err := p.Grow(4); err != nil {
		t.Fatal(err)
	}
	p.Truncate(2) // two pages to the pool
	if p.SparePages() != 2 {
		t.Fatalf("expected 2 spares, got %d", p.SparePages())
	}
	before := p.Stats().FreshAllocs
	if err := p.Grow(3); err != nil { // should take 2 from pool + 1 fresh
		t.Fatal(err)
	}
	if got := p.Stats().FreshAllocs - before; got != 1 {
		t.Fatalf("expected 1 fresh alloc, got %d", got)
	}
	if p.SparePages() != 0 {
		t.Fatalf("spares not absorbed: %d left", p.SparePages())
	}
}

func TestTruncatePanicsBeyondSize(t *testing.T) {
	p := New(8)
	_ = p.Grow(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Truncate(2)
}

func TestTrimSpares(t *testing.T) {
	p := New(8)
	_ = p.Grow(10)
	p.Truncate(2)
	if p.SparePages() != 8 {
		t.Fatalf("want 8 spares, got %d", p.SparePages())
	}
	p.TrimSpares(3)
	if p.SparePages() != 3 {
		t.Fatalf("want 3 spares after trim, got %d", p.SparePages())
	}
	p.TrimSpares(5) // no-op when already below cap
	if p.SparePages() != 3 {
		t.Fatalf("trim below cap should be a no-op")
	}
}

func TestAllocFailureLeavesSpaceIntact(t *testing.T) {
	p := New(8)
	if err := p.Grow(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		p.Set(i, int64(i))
	}
	p.InjectAllocFailure(0)
	if err := p.Grow(3); err != ErrAllocFailed {
		t.Fatalf("want ErrAllocFailed, got %v", err)
	}
	if p.NumPages() != 2 {
		t.Fatalf("failed Grow changed page count to %d", p.NumPages())
	}
	for i := 0; i < 16; i++ {
		if p.Get(i) != int64(i) {
			t.Fatalf("data corrupted at %d after failed grow", i)
		}
	}
	p.InjectAllocFailure(-1)
	if err := p.Grow(3); err != nil {
		t.Fatalf("recovery grow failed: %v", err)
	}
}

func TestAllocFailureMidBatchReturnsPartialToPool(t *testing.T) {
	p := New(8)
	_ = p.Grow(4)
	p.Truncate(0) // 4 spares
	p.InjectAllocFailure(2)
	if _, err := p.AcquireSpares(4); err != ErrAllocFailed {
		t.Fatalf("want ErrAllocFailed, got %v", err)
	}
	// The two pages taken before the failure must be back in the pool.
	if p.SparePages() != 4 {
		t.Fatalf("pool leaked: %d spares", p.SparePages())
	}
}

func TestFootprintAccountsSpares(t *testing.T) {
	p := New(128)
	_ = p.Grow(8)
	full := p.FootprintBytes()
	p.Truncate(4)
	if p.FootprintBytes() < full {
		t.Fatal("truncate must not shrink physical footprint (pages pooled)")
	}
	p.TrimSpares(0)
	if p.FootprintBytes() >= full {
		t.Fatal("trimming spares must shrink the footprint")
	}
}

// Property: any sequence of grow/truncate/swap operations preserves the
// invariant that every virtual page is a distinct physical page of the
// right size.
func TestPageTableInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		p := New(4)
		for _, op := range ops {
			switch op % 4 {
			case 0:
				_ = p.Grow(int(op%3) + 1)
			case 1:
				n := p.NumPages() / 2
				p.Truncate(n)
			case 2:
				if p.NumPages() > 0 {
					sp, err := p.AcquireSpare()
					if err != nil {
						return false
					}
					p.Swap(int(op)%p.NumPages(), sp)
				}
			case 3:
				p.TrimSpares(int(op % 8))
			}
		}
		seen := map[*int64]bool{}
		for v := 0; v < p.NumPages(); v++ {
			pg := p.Page(v)
			if len(pg) != 4 {
				return false
			}
			if seen[&pg[0]] {
				return false // two virtual pages share a physical page
			}
			seen[&pg[0]] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
