// Package abtree implements the paper's main competitor: an (a,b)-tree —
// a B+-tree whose node capacities are tuned for CPU cache lines rather
// than disk blocks (Section I). Leaves hold up to B key/value pairs in
// two parallel sorted arrays (the same layout as an RMA segment, Fig 3);
// inner nodes hold up to 64 separator keys, the optimum the paper
// determined by micro-benchmarks. Leaves are linked for range scans and
// allocated from slabs, so a freshly bulk-loaded tree enjoys the same
// physical locality the paper observes — and loses it as updates allocate
// new leaves elsewhere, which is exactly the "aging" effect of Fig 13a.
package abtree

import "fmt"

// InnerKeys is the maximum number of separator keys per inner node
// (fanout 65), as fixed in the paper's evaluation.
const InnerKeys = 64

const minKids = (InnerKeys + 1) / 2 // minimum children of a non-root inner node

// leaf is a tree leaf: parallel sorted key/value arrays plus the scan
// chain.
type leaf struct {
	keys []int64
	vals []int64
	next *leaf
}

// inner is an internal node: n children and n-1 separator keys, where
// keys[i] is the minimum key of child i+1. Exactly one of kids/leaves is
// non-nil, so child access needs no interface dispatch.
type inner struct {
	keys   []int64
	kids   []*inner
	leaves []*leaf
}

// Tree is a sequential (a,b)-tree storing int64 key/value pairs with
// multiset key semantics, mirroring the engine's API.
type Tree struct {
	leafCap int
	minLeaf int

	rootInner *inner
	rootLeaf  *leaf // used while the tree has a single leaf

	n      int
	height int // number of inner levels (0 = root is a leaf)

	// Slab allocation of leaf storage: sequentially created leaves get
	// adjacent key/value memory, giving bulk-loaded trees their initial
	// scan locality.
	slabK, slabV []int64
	slabLeaves   []leaf
	slabBytes    int64

	stats Stats
}

// Stats counts structural operations.
type Stats struct {
	Splits, Merges, Borrows uint64
}

// New returns an empty tree with the given leaf capacity (>= 2).
func New(leafCap int) *Tree {
	if leafCap < 2 {
		panic(fmt.Sprintf("abtree: leaf capacity %d < 2", leafCap))
	}
	t := &Tree{leafCap: leafCap, minLeaf: leafCap / 2}
	t.rootLeaf = t.newLeaf()
	return t
}

// LeafCap returns the configured leaf capacity B.
func (t *Tree) LeafCap() int { return t.leafCap }

// Size returns the number of stored elements.
func (t *Tree) Size() int { return t.n }

// Stats returns the structural operation counters.
func (t *Tree) Stats() Stats { return t.stats }

const slabLeafCount = 128

// newLeaf allocates a leaf with storage carved from the current slab.
func (t *Tree) newLeaf() *leaf {
	if len(t.slabLeaves) == 0 {
		t.slabLeaves = make([]leaf, slabLeafCount)
		t.slabK = make([]int64, slabLeafCount*t.leafCap)
		t.slabV = make([]int64, slabLeafCount*t.leafCap)
		t.slabBytes += int64(slabLeafCount)*int64(t.leafCap)*16 + slabLeafCount*48
	}
	l := &t.slabLeaves[0]
	t.slabLeaves = t.slabLeaves[1:]
	l.keys = t.slabK[:0:t.leafCap]
	l.vals = t.slabV[:0:t.leafCap]
	t.slabK = t.slabK[t.leafCap:]
	t.slabV = t.slabV[t.leafCap:]
	return l
}

// FootprintBytes estimates the memory held by the tree: leaf slabs plus
// inner nodes.
func (t *Tree) FootprintBytes() int64 {
	f := t.slabBytes
	var walk func(*inner)
	walk = func(nd *inner) {
		f += int64(cap(nd.keys))*8 + int64(cap(nd.kids)+cap(nd.leaves))*8 + 80
		for _, c := range nd.kids {
			walk(c)
		}
	}
	if t.rootInner != nil {
		walk(t.rootInner)
	}
	return f
}

// --- search -----------------------------------------------------------------

// childIndex returns the index of the child of nd that covers key
// (number of separators <= key).
func childIndex(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeaf descends to the leaf that must contain key.
func (t *Tree) findLeaf(key int64) *leaf {
	if t.rootInner == nil {
		return t.rootLeaf
	}
	nd := t.rootInner
	for nd.kids != nil {
		nd = nd.kids[childIndex(nd.keys, key)]
	}
	return nd.leaves[childIndex(nd.keys, key)]
}

// childIndexLB is childIndex with strict comparison: the child holding
// the first element >= key. Range scans and duplicate-aware lookups
// descend this way so duplicates equal to a separator are not skipped.
func childIndexLB(keys []int64, key int64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// findLeafLB descends to the leaf holding the first element >= key (or
// the last leaf before it).
func (t *Tree) findLeafLB(key int64) *leaf {
	if t.rootInner == nil {
		return t.rootLeaf
	}
	nd := t.rootInner
	for nd.kids != nil {
		nd = nd.kids[childIndexLB(nd.keys, key)]
	}
	return nd.leaves[childIndexLB(nd.keys, key)]
}

// Find returns a value stored under key.
func (t *Tree) Find(key int64) (int64, bool) {
	l := t.findLeafLB(key)
	i := lowerBound(l.keys, key)
	if i < len(l.keys) && l.keys[i] == key {
		return l.vals[i], true
	}
	// The first occurrence may start exactly at the next leaf when every
	// key of this leaf is smaller.
	if i == len(l.keys) && l.next != nil && len(l.next.keys) > 0 && l.next.keys[0] == key {
		return l.next.vals[0], true
	}
	return 0, false
}

func lowerBound(a []int64, key int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func upperBound(a []int64, key int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// --- insert -----------------------------------------------------------------

// Insert adds the key/value pair.
func (t *Tree) Insert(key, val int64) {
	t.n++
	if t.rootInner == nil {
		l := t.rootLeaf
		if len(l.keys) < t.leafCap {
			leafInsert(l, key, val)
			return
		}
		right, sep := t.splitLeaf(l)
		t.rootInner = &inner{keys: []int64{sep}, leaves: []*leaf{l, right}}
		t.rootLeaf = nil
		t.height = 1
		if key < sep {
			leafInsert(l, key, val)
		} else {
			leafInsert(right, key, val)
		}
		return
	}
	if nn, sep, split := t.insertInner(t.rootInner, key, val); split {
		t.rootInner = &inner{keys: []int64{sep}, kids: []*inner{t.rootInner, nn}}
		t.height++
	}
}

func leafInsert(l *leaf, key, val int64) {
	i := upperBound(l.keys, key)
	l.keys = append(l.keys, 0)
	l.vals = append(l.vals, 0)
	copy(l.keys[i+1:], l.keys[i:])
	copy(l.vals[i+1:], l.vals[i:])
	l.keys[i] = key
	l.vals[i] = val
}

// splitLeaf moves the upper half of l into a fresh leaf, returning it and
// its separator (minimum) key.
func (t *Tree) splitLeaf(l *leaf) (*leaf, int64) {
	t.stats.Splits++
	mid := len(l.keys) / 2
	r := t.newLeaf()
	r.keys = append(r.keys, l.keys[mid:]...)
	r.vals = append(r.vals, l.vals[mid:]...)
	l.keys = l.keys[:mid]
	l.vals = l.vals[:mid]
	r.next = l.next
	l.next = r
	return r, r.keys[0]
}

// insertInner inserts under nd; if nd splits, the new right node and its
// separator are returned.
func (t *Tree) insertInner(nd *inner, key, val int64) (*inner, int64, bool) {
	ci := childIndex(nd.keys, key)
	if nd.leaves != nil {
		l := nd.leaves[ci]
		if len(l.keys) == t.leafCap {
			right, sep := t.splitLeaf(l)
			nd.insertChildLeaf(ci, sep, right)
			if key >= sep {
				l = right
			}
		}
		leafInsert(l, key, val)
	} else {
		child := nd.kids[ci]
		if nn, sep, split := t.insertInner(child, key, val); split {
			nd.insertChildInner(ci, sep, nn)
		}
	}
	if len(nd.keys) > InnerKeys {
		nn, sep := t.splitInner(nd)
		return nn, sep, true
	}
	return nil, 0, false
}

func (nd *inner) insertChildLeaf(ci int, sep int64, right *leaf) {
	nd.keys = append(nd.keys, 0)
	copy(nd.keys[ci+1:], nd.keys[ci:])
	nd.keys[ci] = sep
	nd.leaves = append(nd.leaves, nil)
	copy(nd.leaves[ci+2:], nd.leaves[ci+1:])
	nd.leaves[ci+1] = right
}

func (nd *inner) insertChildInner(ci int, sep int64, right *inner) {
	nd.keys = append(nd.keys, 0)
	copy(nd.keys[ci+1:], nd.keys[ci:])
	nd.keys[ci] = sep
	nd.kids = append(nd.kids, nil)
	copy(nd.kids[ci+2:], nd.kids[ci+1:])
	nd.kids[ci+1] = right
}

// splitInner splits an overfull inner node, promoting the middle key.
func (t *Tree) splitInner(nd *inner) (*inner, int64) {
	t.stats.Splits++
	mid := len(nd.keys) / 2
	sep := nd.keys[mid]
	r := &inner{}
	r.keys = append(r.keys, nd.keys[mid+1:]...)
	nd.keys = nd.keys[:mid]
	if nd.leaves != nil {
		r.leaves = append(r.leaves, nd.leaves[mid+1:]...)
		nd.leaves = nd.leaves[:mid+1]
	} else {
		r.kids = append(r.kids, nd.kids[mid+1:]...)
		nd.kids = nd.kids[:mid+1]
	}
	return r, sep
}

// --- delete -----------------------------------------------------------------

// Delete removes one occurrence of key, reporting whether it existed.
func (t *Tree) Delete(key int64) bool {
	if t.rootInner == nil {
		l := t.rootLeaf
		i := lowerBound(l.keys, key)
		if i >= len(l.keys) || l.keys[i] != key {
			return false
		}
		leafRemove(l, i)
		t.n--
		return true
	}
	if !t.deleteInner(t.rootInner, key) {
		return false
	}
	t.n--
	// Collapse a root with a single child.
	for t.rootInner != nil && len(t.rootInner.keys) == 0 {
		if t.rootInner.kids != nil {
			t.rootInner = t.rootInner.kids[0]
		} else {
			t.rootLeaf = t.rootInner.leaves[0]
			t.rootInner = nil
		}
		t.height--
	}
	return true
}

func leafRemove(l *leaf, i int) {
	copy(l.keys[i:], l.keys[i+1:])
	copy(l.vals[i:], l.vals[i+1:])
	l.keys = l.keys[:len(l.keys)-1]
	l.vals = l.vals[:len(l.vals)-1]
}

// deleteInner removes key under nd and repairs any child underflow.
func (t *Tree) deleteInner(nd *inner, key int64) bool {
	ci := childIndex(nd.keys, key)
	if nd.leaves != nil {
		l := nd.leaves[ci]
		i := lowerBound(l.keys, key)
		if i >= len(l.keys) || l.keys[i] != key {
			// Duplicates equal to the separator may sit in the left
			// sibling; check it once.
			if ci > 0 && i == 0 {
				sib := nd.leaves[ci-1]
				j := lowerBound(sib.keys, key)
				if j < len(sib.keys) && sib.keys[j] == key {
					leafRemove(sib, j)
					t.fixLeafUnderflow(nd, ci-1)
					return true
				}
			}
			return false
		}
		leafRemove(l, i)
		t.fixLeafUnderflow(nd, ci)
		return true
	}
	if !t.deleteInner(nd.kids[ci], key) {
		// Same duplicate-on-separator case one level up.
		if ci > 0 && t.deleteInner(nd.kids[ci-1], key) {
			t.fixInnerUnderflow(nd, ci-1)
			return true
		}
		return false
	}
	t.fixInnerUnderflow(nd, ci)
	return true
}

// fixLeafUnderflow rebalances leaf child ci of nd if it fell below the
// minimum fill, borrowing from or merging with a sibling.
func (t *Tree) fixLeafUnderflow(nd *inner, ci int) {
	l := nd.leaves[ci]
	if len(l.keys) >= t.minLeaf {
		return
	}
	if ci > 0 {
		left := nd.leaves[ci-1]
		if len(left.keys) > t.minLeaf {
			t.stats.Borrows++
			k := left.keys[len(left.keys)-1]
			v := left.vals[len(left.vals)-1]
			leafRemove(left, len(left.keys)-1)
			l.keys = append(l.keys, 0)
			l.vals = append(l.vals, 0)
			copy(l.keys[1:], l.keys)
			copy(l.vals[1:], l.vals)
			l.keys[0], l.vals[0] = k, v
			nd.keys[ci-1] = k
			return
		}
	}
	if ci < len(nd.leaves)-1 {
		right := nd.leaves[ci+1]
		if len(right.keys) > t.minLeaf {
			t.stats.Borrows++
			l.keys = append(l.keys, right.keys[0])
			l.vals = append(l.vals, right.vals[0])
			leafRemove(right, 0)
			nd.keys[ci] = right.keys[0]
			return
		}
	}
	// Merge with a sibling (prefer left).
	if ci > 0 {
		ci--
	}
	t.mergeLeaves(nd, ci)
}

// mergeLeaves merges leaf ci+1 into leaf ci and drops the separator.
func (t *Tree) mergeLeaves(nd *inner, ci int) {
	if ci+1 >= len(nd.leaves) {
		return
	}
	t.stats.Merges++
	l, r := nd.leaves[ci], nd.leaves[ci+1]
	l.keys = append(l.keys, r.keys...)
	l.vals = append(l.vals, r.vals...)
	l.next = r.next
	copy(nd.keys[ci:], nd.keys[ci+1:])
	nd.keys = nd.keys[:len(nd.keys)-1]
	copy(nd.leaves[ci+1:], nd.leaves[ci+2:])
	nd.leaves = nd.leaves[:len(nd.leaves)-1]
}

// fixInnerUnderflow rebalances inner child ci of nd if it has too few
// children.
func (t *Tree) fixInnerUnderflow(nd *inner, ci int) {
	c := nd.kids[ci]
	if c.childCount() >= minKids {
		return
	}
	if ci > 0 {
		left := nd.kids[ci-1]
		if left.childCount() > minKids {
			t.stats.Borrows++
			// Rotate the left sibling's last child through the parent.
			c.keys = append(c.keys, 0)
			copy(c.keys[1:], c.keys)
			c.keys[0] = nd.keys[ci-1]
			if c.kids != nil {
				moved := left.kids[len(left.kids)-1]
				left.kids = left.kids[:len(left.kids)-1]
				c.kids = append(c.kids, nil)
				copy(c.kids[1:], c.kids)
				c.kids[0] = moved
			} else {
				moved := left.leaves[len(left.leaves)-1]
				left.leaves = left.leaves[:len(left.leaves)-1]
				c.leaves = append(c.leaves, nil)
				copy(c.leaves[1:], c.leaves)
				c.leaves[0] = moved
			}
			nd.keys[ci-1] = left.keys[len(left.keys)-1]
			left.keys = left.keys[:len(left.keys)-1]
			return
		}
	}
	if ci < len(nd.kids)-1 {
		right := nd.kids[ci+1]
		if right.childCount() > minKids {
			t.stats.Borrows++
			c.keys = append(c.keys, nd.keys[ci])
			if c.kids != nil {
				c.kids = append(c.kids, right.kids[0])
				copy(right.kids, right.kids[1:])
				right.kids = right.kids[:len(right.kids)-1]
			} else {
				c.leaves = append(c.leaves, right.leaves[0])
				copy(right.leaves, right.leaves[1:])
				right.leaves = right.leaves[:len(right.leaves)-1]
			}
			nd.keys[ci] = right.keys[0]
			copy(right.keys, right.keys[1:])
			right.keys = right.keys[:len(right.keys)-1]
			return
		}
	}
	if ci > 0 {
		ci--
	}
	t.mergeInners(nd, ci)
}

// mergeInners merges inner child ci+1 into child ci, pulling the
// separator down.
func (t *Tree) mergeInners(nd *inner, ci int) {
	if ci+1 >= len(nd.kids) {
		return
	}
	t.stats.Merges++
	l, r := nd.kids[ci], nd.kids[ci+1]
	l.keys = append(l.keys, nd.keys[ci])
	l.keys = append(l.keys, r.keys...)
	if l.kids != nil {
		l.kids = append(l.kids, r.kids...)
	} else {
		l.leaves = append(l.leaves, r.leaves...)
	}
	copy(nd.keys[ci:], nd.keys[ci+1:])
	nd.keys = nd.keys[:len(nd.keys)-1]
	copy(nd.kids[ci+1:], nd.kids[ci+2:])
	nd.kids = nd.kids[:len(nd.kids)-1]
}

func (nd *inner) childCount() int {
	if nd.kids != nil {
		return len(nd.kids)
	}
	return len(nd.leaves)
}
