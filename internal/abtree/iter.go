package abtree

import "iter"

// Lazy iterators and navigation queries. Forward traversal rides the
// leaf chain; descending traversal keeps an explicit root-to-leaf path
// (the leaves are only forward-linked) and steps to the previous leaf by
// rewinding the deepest branch point. Order statistics hop the leaf
// chain whole-leaf at a time — O(n/B) without per-node subtree counts,
// the honest cost of an unaugmented (a,b)-tree.

// headLeaf returns the first leaf of the chain.
func (t *Tree) headLeaf() *leaf {
	if t.rootInner == nil {
		return t.rootLeaf
	}
	nd := t.rootInner
	for nd.kids != nil {
		nd = nd.kids[0]
	}
	return nd.leaves[0]
}

// rankOf counts elements with key < x (inclusive=false) or <= x.
func (t *Tree) rankOf(x int64, inclusive bool) int {
	cnt := 0
	for l := t.headLeaf(); l != nil; l = l.next {
		if len(l.keys) == 0 {
			continue
		}
		last := l.keys[len(l.keys)-1]
		if last < x || (inclusive && last == x) {
			cnt += len(l.keys)
			continue
		}
		if inclusive {
			cnt += upperBound(l.keys, x)
		} else {
			cnt += lowerBound(l.keys, x)
		}
		break
	}
	return cnt
}

// Rank returns the number of elements with key strictly less than x.
func (t *Tree) Rank(x int64) int { return t.rankOf(x, false) }

// CountRange returns the number of elements with lo <= key <= hi.
func (t *Tree) CountRange(lo, hi int64) int {
	if t.n == 0 || lo > hi {
		return 0
	}
	return t.rankOf(hi, true) - t.rankOf(lo, false)
}

// Select returns the i-th smallest element (0-based).
func (t *Tree) Select(i int) (key, val int64, ok bool) {
	if i < 0 || i >= t.n {
		return 0, 0, false
	}
	for l := t.headLeaf(); l != nil; l = l.next {
		if i < len(l.keys) {
			return l.keys[i], l.vals[i], true
		}
		i -= len(l.keys)
	}
	return 0, 0, false
}

// Floor returns the greatest element with key <= x: the first element of
// the descending iterator. A single downward descent is not enough —
// deletions leave separators stale below their right child's minimum, so
// the routed leaf may hold no element <= x while its left neighbour
// does; the iterator's path rewind covers that case.
func (t *Tree) Floor(x int64) (key, val int64, ok bool) {
	for k, v := range t.IterDescend(minInt64, x) {
		return k, v, true
	}
	return 0, 0, false
}

// Ceiling returns the smallest element with key >= x.
func (t *Tree) Ceiling(x int64) (key, val int64, ok bool) {
	if t.n == 0 {
		return 0, 0, false
	}
	l := t.findLeafLB(x)
	if i := lowerBound(l.keys, x); i < len(l.keys) {
		return l.keys[i], l.vals[i], true
	}
	// Every element of this leaf is < x; the next leaf's minimum is the
	// separator that routed us here, hence >= x.
	if l.next != nil && len(l.next.keys) > 0 {
		return l.next.keys[0], l.next.vals[0], true
	}
	return 0, 0, false
}

// IterAscend returns a lazy ascending iterator over elements with
// lo <= key <= hi, walking the leaf chain.
func (t *Tree) IterAscend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if t.n == 0 || lo > hi {
			return
		}
		l := t.findLeafLB(lo)
		i := lowerBound(l.keys, lo)
		for l != nil {
			for ; i < len(l.keys); i++ {
				k := l.keys[i]
				if k > hi {
					return
				}
				if !yield(k, l.vals[i]) {
					return
				}
			}
			l = l.next
			i = 0
		}
	}
}

// pathFrame is one level of the explicit descent path the descending
// iterator maintains in place of backward leaf links.
type pathFrame struct {
	nd *inner
	ci int
}

// IterDescend returns a lazy descending iterator over elements with
// lo <= key <= hi. State is the O(height) descent path plus one leaf.
func (t *Tree) IterDescend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if t.n == 0 || lo > hi {
			return
		}
		if t.rootInner == nil {
			l := t.rootLeaf
			for i := upperBound(l.keys, hi) - 1; i >= 0; i-- {
				if l.keys[i] < lo {
					return
				}
				if !yield(l.keys[i], l.vals[i]) {
					return
				}
			}
			return
		}
		// Descend to the leaf covering hi, recording the path.
		var path []pathFrame
		nd := t.rootInner
		var l *leaf
		for {
			ci := childIndex(nd.keys, hi)
			path = append(path, pathFrame{nd, ci})
			if nd.leaves != nil {
				l = nd.leaves[ci]
				break
			}
			nd = nd.kids[ci]
		}
		start := upperBound(l.keys, hi) - 1
		for {
			for i := start; i >= 0; i-- {
				if l.keys[i] < lo {
					return
				}
				if !yield(l.keys[i], l.vals[i]) {
					return
				}
			}
			// Step to the previous leaf: rewind to the deepest branch
			// point with a left sibling, then descend its rightmost spine.
			d := len(path) - 1
			for d >= 0 && path[d].ci == 0 {
				d--
			}
			if d < 0 {
				return
			}
			path = path[:d+1]
			path[d].ci--
			if path[d].nd.leaves != nil {
				l = path[d].nd.leaves[path[d].ci]
			} else {
				child := path[d].nd.kids[path[d].ci]
				for child.kids != nil {
					path = append(path, pathFrame{child, len(child.kids) - 1})
					child = child.kids[len(child.kids)-1]
				}
				path = append(path, pathFrame{child, len(child.leaves) - 1})
				l = child.leaves[len(child.leaves)-1]
			}
			// Earlier leaves hold keys <= the first leaf's minimum <= hi.
			start = len(l.keys) - 1
		}
	}
}
