package abtree

import (
	"sort"
	"testing"

	"rma/internal/workload"
)

func TestInsertFindSmall(t *testing.T) {
	for _, b := range []int{4, 8, 128} {
		tr := New(b)
		keys := []int64{10, 5, 30, 20, 25, 1, 100, 50, 7, 3}
		for _, k := range keys {
			tr.Insert(k, k*2)
		}
		if tr.Size() != len(keys) {
			t.Fatalf("B=%d: size %d", b, tr.Size())
		}
		for _, k := range keys {
			v, ok := tr.Find(k)
			if !ok || v != k*2 {
				t.Fatalf("B=%d: Find(%d) = (%d,%v)", b, k, v, ok)
			}
		}
		if _, ok := tr.Find(999); ok {
			t.Fatal("found absent key")
		}
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestInsertManySplitLevels(t *testing.T) {
	tr := New(4) // tiny leaves force deep trees quickly
	const n = 20000
	g := workload.NewUniform(1, 1<<40)
	for i := 0; i < n; i++ {
		tr.Insert(g.Next(), int64(i))
	}
	if tr.Size() != n {
		t.Fatalf("size %d", tr.Size())
	}
	if tr.height < 3 {
		t.Fatalf("expected a deep tree, height %d", tr.height)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAndDescending(t *testing.T) {
	for _, b := range []int{4, 16} {
		up := New(b)
		down := New(b)
		for i := 0; i < 5000; i++ {
			up.Insert(int64(i), 0)
			down.Insert(int64(5000-i), 0)
		}
		if err := up.Validate(); err != nil {
			t.Fatalf("ascending: %v", err)
		}
		if err := down.Validate(); err != nil {
			t.Fatalf("descending: %v", err)
		}
	}
}

func TestDeleteWithBorrowAndMerge(t *testing.T) {
	tr := New(4)
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), int64(i))
	}
	// Delete every other key, then everything: exercises borrows, leaf
	// merges, inner merges and root collapse.
	for i := 0; i < n; i += 2 {
		if !tr.Delete(int64(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Stats().Merges == 0 || tr.Stats().Borrows == 0 {
		t.Fatalf("expected merges and borrows, got %+v", tr.Stats())
	}
	for i := 1; i < n; i += 2 {
		if !tr.Delete(int64(i)) {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Size() != 0 {
		t.Fatalf("size %d after deleting all", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Still usable.
	tr.Insert(42, 420)
	if v, ok := tr.Find(42); !ok || v != 420 {
		t.Fatal("tree unusable after emptying")
	}
}

func TestDuplicatesAcrossLeaves(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(7, int64(i))
	}
	tr.Insert(3, 0)
	tr.Insert(9, 0)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := tr.Sum(7, 7)
	if cnt != 100 {
		t.Fatalf("dup count %d", cnt)
	}
	for i := 0; i < 100; i++ {
		if !tr.Delete(7) {
			t.Fatalf("Delete #%d of duplicate missed", i)
		}
	}
	if tr.Delete(7) {
		t.Fatal("deleted a 101st duplicate")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 2 {
		t.Fatalf("size %d", tr.Size())
	}
}

func TestDifferentialAgainstOracle(t *testing.T) {
	tr := New(8)
	var model []int64
	rng := workload.NewRNG(3)
	for op := 0; op < 20000; op++ {
		k := int64(rng.Uint64n(500))
		if rng.Uint64n(3) == 0 && len(model) > 0 {
			got := tr.Delete(k)
			i := sort.Search(len(model), func(i int) bool { return model[i] >= k })
			want := i < len(model) && model[i] == k
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", op, k, got, want)
			}
			if want {
				model = append(model[:i], model[i+1:]...)
			}
		} else {
			tr.Insert(k, k)
			i := sort.Search(len(model), func(i int) bool { return model[i] > k })
			model = append(model, 0)
			copy(model[i+1:], model[i:])
			model[i] = k
		}
		if tr.Size() != len(model) {
			t.Fatalf("op %d: size %d want %d", op, tr.Size(), len(model))
		}
		if op%2500 == 2499 {
			if err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			var got []int64
			tr.Scan(func(k, _ int64) bool { got = append(got, k); return true })
			if len(got) != len(model) {
				t.Fatalf("op %d: scan %d vs model %d", op, len(got), len(model))
			}
			for i := range got {
				if got[i] != model[i] {
					t.Fatalf("op %d: content mismatch at %d", op, i)
				}
			}
		}
	}
}

func TestScanRangeAndSum(t *testing.T) {
	tr := New(16)
	for i := 0; i < 1000; i++ {
		tr.Insert(int64(i*3), int64(i))
	}
	cnt, sum := tr.Sum(300, 600)
	wantCnt, wantSum := 0, int64(0)
	for i := 0; i < 1000; i++ {
		if k := int64(i * 3); k >= 300 && k <= 600 {
			wantCnt++
			wantSum += int64(i)
		}
	}
	if cnt != wantCnt || sum != wantSum {
		t.Fatalf("Sum = (%d,%d), want (%d,%d)", cnt, sum, wantCnt, wantSum)
	}
	// Early-terminating scan.
	seen := 0
	tr.ScanRange(0, maxInt64, func(_, _ int64) bool { seen++; return seen < 10 })
	if seen != 10 {
		t.Fatalf("early stop visited %d", seen)
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	for _, n := range []int{0, 1, 3, 64, 65, 1000, 12345} {
		g := workload.NewUniform(uint64(n)+1, 1<<30)
		keys := workload.Keys(g, n)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = workload.ValueFor(keys[i])
		}
		bl := New(128)
		bl.BulkLoad(keys, vals)
		if bl.Size() != n {
			t.Fatalf("n=%d: size %d", n, bl.Size())
		}
		if err := bl.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i += 101 {
			if v, ok := bl.Find(keys[i]); !ok || v != vals[i] {
				t.Fatalf("n=%d: Find(%d) failed", n, keys[i])
			}
		}
		// The loaded tree must keep working under subsequent updates.
		for i := 0; i < 500; i++ {
			bl.Insert(g.Next(), 0)
		}
		if err := bl.Validate(); err != nil {
			t.Fatalf("n=%d post-insert: %v", n, err)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New(8)
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty")
	}
	for _, k := range []int64{50, 10, 90, 30} {
		tr.Insert(k, 0)
	}
	mn, _ := tr.Min()
	mx, _ := tr.Max()
	if mn != 10 || mx != 90 {
		t.Fatalf("Min/Max = %d/%d", mn, mx)
	}
}

func TestFootprintGrows(t *testing.T) {
	tr := New(64)
	before := tr.FootprintBytes()
	for i := 0; i < 50000; i++ {
		tr.Insert(int64(i), 0)
	}
	if after := tr.FootprintBytes(); after <= before {
		t.Fatalf("footprint %d -> %d", before, after)
	}
}

func TestSlabLocalityOfSequentialLeaves(t *testing.T) {
	// Leaves created back-to-back must carve adjacent storage from the
	// same slab: the physical-locality property behind the paper's
	// young-tree scans (and its loss, the Fig 13a aging).
	tr := New(8)
	orig := tr.slabK // remaining slab after the root leaf
	before := len(orig)
	a := tr.newLeaf()
	b := tr.newLeaf()
	if got := before - len(tr.slabK); got != 2*tr.leafCap {
		t.Fatalf("two leaves consumed %d slab slots, want %d", got, 2*tr.leafCap)
	}
	// Adjacency: the two leaves' storage must be consecutive regions of
	// the same slab.
	a.keys = a.keys[:tr.leafCap]
	b.keys = b.keys[:1]
	a.keys[0] = 111
	b.keys[0] = 222
	if orig[0] != 111 || orig[tr.leafCap] != 222 {
		t.Fatal("sequential leaves are not adjacent in the slab")
	}
}
