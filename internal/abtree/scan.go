package abtree

import "fmt"

// ScanRange calls yield for every element with lo <= key <= hi in key
// order, walking the leaf chain — the Theta(R/B) pointer jumps the paper
// contrasts with the RMA's purely sequential scan.
func (t *Tree) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	if lo > hi || t.n == 0 {
		return
	}
	l := t.findLeafLB(lo)
	i := lowerBound(l.keys, lo)
	for l != nil {
		for ; i < len(l.keys); i++ {
			k := l.keys[i]
			if k > hi {
				return
			}
			if !yield(k, l.vals[i]) {
				return
			}
		}
		l = l.next
		i = 0
	}
}

// Scan iterates every element in key order.
func (t *Tree) Scan(yield func(key, val int64) bool) {
	t.ScanRange(minInt64, maxInt64, yield)
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// Sum aggregates elements with lo <= key <= hi: count and value sum.
func (t *Tree) Sum(lo, hi int64) (count int, sum int64) {
	if lo > hi || t.n == 0 {
		return 0, 0
	}
	l := t.findLeafLB(lo)
	i := lowerBound(l.keys, lo)
	for l != nil {
		start := i
		end := len(l.keys)
		if end > 0 && l.keys[end-1] > hi {
			end = upperBound(l.keys, hi)
		}
		for ; i < end; i++ {
			sum += l.vals[i]
		}
		count += end - start
		if end < len(l.keys) {
			return count, sum
		}
		l = l.next
		i = 0
	}
	return count, sum
}

// SumAll aggregates the whole tree.
func (t *Tree) SumAll() (count int, sum int64) { return t.Sum(minInt64, maxInt64) }

// Min returns the smallest key.
func (t *Tree) Min() (int64, bool) {
	if t.n == 0 {
		return 0, false
	}
	nd := t.rootInner
	if nd == nil {
		return t.rootLeaf.keys[0], true
	}
	for nd.kids != nil {
		nd = nd.kids[0]
	}
	l := nd.leaves[0]
	for len(l.keys) == 0 && l.next != nil {
		l = l.next
	}
	return l.keys[0], true
}

// Max returns the largest key.
func (t *Tree) Max() (int64, bool) {
	if t.n == 0 {
		return 0, false
	}
	nd := t.rootInner
	if nd == nil {
		return t.rootLeaf.keys[len(t.rootLeaf.keys)-1], true
	}
	for nd.kids != nil {
		nd = nd.kids[len(nd.kids)-1]
	}
	l := nd.leaves[len(nd.leaves)-1]
	return l.keys[len(l.keys)-1], true
}

// BulkLoad builds the tree from sorted key/value slices, replacing its
// content. Leaves are filled to capacity and allocated sequentially, so a
// fresh bulk-loaded tree scans with near-dense locality (the young state
// of Fig 13a).
func (t *Tree) BulkLoad(keys, vals []int64) {
	if len(keys) != len(vals) {
		panic("abtree: BulkLoad length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			panic("abtree: BulkLoad input not sorted")
		}
	}
	t.rootInner = nil
	t.rootLeaf = nil
	t.height = 0
	t.n = len(keys)

	if len(keys) == 0 {
		t.rootLeaf = t.newLeaf()
		return
	}

	// Build the leaf level.
	var leaves []*leaf
	var prev *leaf
	for pos := 0; pos < len(keys); pos += t.leafCap {
		end := pos + t.leafCap
		if end > len(keys) {
			end = len(keys)
		}
		l := t.newLeaf()
		l.keys = append(l.keys, keys[pos:end]...)
		l.vals = append(l.vals, vals[pos:end]...)
		if prev != nil {
			prev.next = l
		}
		prev = l
		leaves = append(leaves, l)
	}
	// Avoid an undersized trailing leaf (would violate the fill invariant).
	if n := len(leaves); n > 1 && len(leaves[n-1].keys) < t.minLeaf {
		last, before := leaves[n-1], leaves[n-2]
		move := t.minLeaf - len(last.keys)
		cut := len(before.keys) - move
		// Prepend the tail of the previous leaf.
		last.keys = append(append(make([]int64, 0, t.leafCap), before.keys[cut:]...), last.keys...)
		last.vals = append(append(make([]int64, 0, t.leafCap), before.vals[cut:]...), last.vals...)
		before.keys = before.keys[:cut]
		before.vals = before.vals[:cut]
	}

	if len(leaves) == 1 {
		t.rootLeaf = leaves[0]
		return
	}

	// Build the first inner level over the leaves.
	fan := InnerKeys + 1
	var level []*inner
	for pos := 0; pos < len(leaves); pos += fan {
		end := pos + fan
		if end > len(leaves) {
			end = len(leaves)
		}
		nd := &inner{leaves: leaves[pos:end:end]}
		for i := pos + 1; i < end; i++ {
			nd.keys = append(nd.keys, leaves[i].keys[0])
		}
		level = append(level, nd)
	}
	t.fixTrailingInner(level, leaves, nil)
	t.height = 1

	// Build the remaining levels.
	for len(level) > 1 {
		var up []*inner
		for pos := 0; pos < len(level); pos += fan {
			end := pos + fan
			if end > len(level) {
				end = len(level)
			}
			nd := &inner{kids: level[pos:end:end]}
			for i := pos + 1; i < end; i++ {
				nd.keys = append(nd.keys, subtreeMin(level[i]))
			}
			up = append(up, nd)
		}
		t.fixTrailingInner(up, nil, level)
		level = up
		t.height++
	}
	t.rootInner = level[0]
}

// fixTrailingInner rebalances the last node of a freshly built level if
// it has fewer than minKids children (root excepted).
func (t *Tree) fixTrailingInner(level []*inner, _ []*leaf, _ []*inner) {
	n := len(level)
	if n < 2 {
		return
	}
	last, before := level[n-1], level[n-2]
	if last.childCount() >= minKids {
		return
	}
	move := minKids - last.childCount()
	if last.kids != nil {
		cut := len(before.kids) - move
		moved := append([]*inner{}, before.kids[cut:]...)
		before.kids = before.kids[:cut]
		last.kids = append(moved, last.kids...)
	} else {
		cut := len(before.leaves) - move
		moved := append([]*leaf{}, before.leaves[cut:]...)
		before.leaves = before.leaves[:cut]
		last.leaves = append(moved, last.leaves...)
	}
	// Rebuild both nodes' separator keys from scratch.
	rebuildKeys := func(nd *inner) {
		nd.keys = nd.keys[:0]
		if nd.kids != nil {
			for i := 1; i < len(nd.kids); i++ {
				nd.keys = append(nd.keys, subtreeMin(nd.kids[i]))
			}
		} else {
			for i := 1; i < len(nd.leaves); i++ {
				nd.keys = append(nd.keys, nd.leaves[i].keys[0])
			}
		}
	}
	rebuildKeys(before)
	rebuildKeys(last)
}

func subtreeMin(nd *inner) int64 {
	for nd.kids != nil {
		nd = nd.kids[0]
	}
	return nd.leaves[0].keys[0]
}

// Validate checks the tree's structural invariants (tests only).
func (t *Tree) Validate() error {
	if t.rootInner == nil {
		if t.rootLeaf == nil {
			return fmt.Errorf("abtree: no root")
		}
		if len(t.rootLeaf.keys) != t.n {
			return fmt.Errorf("abtree: size %d != root leaf %d", t.n, len(t.rootLeaf.keys))
		}
		return validateSorted(t.rootLeaf.keys)
	}
	count := 0
	var walk func(nd *inner, lo, hi int64, root bool, depth int) error
	leafDepth := -1
	walk = func(nd *inner, lo, hi int64, root bool, depth int) error {
		cc := nd.childCount()
		if len(nd.keys) != cc-1 {
			return fmt.Errorf("abtree: node with %d keys, %d children", len(nd.keys), cc)
		}
		if !root && nd.kids != nil && cc < minKids {
			return fmt.Errorf("abtree: inner underflow: %d children", cc)
		}
		if len(nd.keys) > InnerKeys {
			return fmt.Errorf("abtree: node overflow: %d keys", len(nd.keys))
		}
		for i := 1; i < len(nd.keys); i++ {
			if nd.keys[i-1] > nd.keys[i] {
				return fmt.Errorf("abtree: unsorted separators")
			}
		}
		if nd.leaves != nil {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("abtree: leaves at depths %d and %d", leafDepth, depth)
			}
			for i, l := range nd.leaves {
				count += len(l.keys)
				if len(l.keys) > t.leafCap {
					return fmt.Errorf("abtree: leaf overflow")
				}
				if len(l.keys) < t.minLeaf {
					return fmt.Errorf("abtree: leaf underflow: %d < %d", len(l.keys), t.minLeaf)
				}
				if err := validateSorted(l.keys); err != nil {
					return err
				}
				clo := lo
				if i > 0 {
					clo = nd.keys[i-1]
				}
				chi := hi
				if i < len(nd.keys) {
					chi = nd.keys[i]
				}
				for _, k := range l.keys {
					if k < clo || k > chi {
						return fmt.Errorf("abtree: leaf key %d outside [%d,%d]", k, clo, chi)
					}
				}
				if i > 0 && len(l.keys) > 0 && l.keys[0] != nd.keys[i-1] {
					// Separator must equal the right child's minimum
					// unless duplicates straddle (then it may be <=).
					if l.keys[0] < nd.keys[i-1] {
						return fmt.Errorf("abtree: separator above child min")
					}
				}
			}
			return nil
		}
		for i, c := range nd.kids {
			clo := lo
			if i > 0 {
				clo = nd.keys[i-1]
			}
			chi := hi
			if i < len(nd.keys) {
				chi = nd.keys[i]
			}
			if err := walk(c, clo, chi, false, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.rootInner, minInt64, maxInt64, true, 0); err != nil {
		return err
	}
	if count != t.n {
		return fmt.Errorf("abtree: counted %d elements, size says %d", count, t.n)
	}
	// Leaf chain must visit all elements in order.
	nd := t.rootInner
	for nd.kids != nil {
		nd = nd.kids[0]
	}
	chain := 0
	prev := int64(minInt64)
	for l := nd.leaves[0]; l != nil; l = l.next {
		for _, k := range l.keys {
			if k < prev {
				return fmt.Errorf("abtree: leaf chain out of order")
			}
			prev = k
			chain++
		}
	}
	if chain != t.n {
		return fmt.Errorf("abtree: leaf chain has %d elements, size says %d", chain, t.n)
	}
	return nil
}

func validateSorted(a []int64) error {
	for i := 1; i < len(a); i++ {
		if a[i-1] > a[i] {
			return fmt.Errorf("abtree: unsorted keys")
		}
	}
	return nil
}
