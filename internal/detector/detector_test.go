package detector

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{QueueLen: 0, SC: 8, ThetaSC: 3, Alpha: 0.9, Phi: 0.75},
		{QueueLen: 8, SC: 0, ThetaSC: 3, Alpha: 0.9, Phi: 0.75},
		{QueueLen: 8, SC: 8, ThetaSC: 9, Alpha: 0.9, Phi: 0.75}, // theta > SC
		{QueueLen: 8, SC: 8, ThetaSC: 3, Alpha: 1.0, Phi: 0.75},
		{QueueLen: 8, SC: 8, ThetaSC: 3, Alpha: 0.9, Phi: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// Algorithm 1 trace: an ascending run toward a fixed successor must grow
// the k_bwd counter; a random insert must decay both counters.
func TestAlgorithm1CounterTrace(t *testing.T) {
	d := New(4, DefaultConfig())
	// Fig 8's scenario: the successor of each inserted key is 19.
	// First insert: counters are 0, so k_bwd adopts succ=19.
	d.RecordInsert(1, 14, 19, true, true, 1)
	if d.bwdVal[1] != 19 {
		t.Fatalf("k_bwd.value = %d, want 19", d.bwdVal[1])
	}
	for i := 0; i < 3; i++ {
		d.RecordInsert(1, 14+int64(i), 19, true, true, uint64(2+i))
	}
	if got := d.bwdCnt[1]; got != 3 {
		t.Fatalf("k_bwd.counter = %d, want 3 (as in Fig 8)", got)
	}
	// A non-matching insert decrements both counters.
	d.RecordInsert(1, 100, 200, true, true, 10)
	if got := d.bwdCnt[1]; got != 2 {
		t.Fatalf("after mismatch k_bwd.counter = %d, want 2", got)
	}
}

func TestCounterSaturatesAtSC(t *testing.T) {
	cfg := DefaultConfig()
	d := New(2, cfg)
	for i := 0; i < cfg.SC*3; i++ {
		d.RecordInsert(0, 5, 9, true, true, uint64(i+1))
	}
	if got := int(d.bwdCnt[0]); got != cfg.SC {
		t.Fatalf("counter = %d, want saturation at %d", got, cfg.SC)
	}
	if got := int(d.sc[0]); got != cfg.SC {
		t.Fatalf("sc = %d, want saturation at %d", got, cfg.SC)
	}
}

func TestCounterReplacementAtZero(t *testing.T) {
	d := New(1, DefaultConfig())
	d.RecordInsert(0, 1, 9, true, true, 1) // adopt k_bwd=9, k_fwd=1
	d.RecordInsert(0, 1, 9, true, true, 2) // k_bwd -> 1
	// Now mismatch until the counter hits zero and the value is replaced.
	d.RecordInsert(0, 50, 60, true, true, 3)
	if d.bwdVal[0] != 60 || d.fwdVal[0] != 50 {
		t.Fatalf("values not replaced at zero: bwd=%d fwd=%d", d.bwdVal[0], d.fwdVal[0])
	}
}

func TestScGoesNegativeOnDeleteHammering(t *testing.T) {
	d := New(2, DefaultConfig())
	for i := 0; i < 10; i++ {
		d.RecordDelete(1, uint64(i+1))
	}
	if got := int(d.sc[1]); got != -DefaultConfig().SC {
		t.Fatalf("sc = %d, want %d", got, -DefaultConfig().SC)
	}
}

// A hammered segment among cold ones must be the only marked segment, and
// sequential hammering must produce a pair-granular mark with the
// predicted frontier key.
func TestMarksIdentifySequentialHammering(t *testing.T) {
	d := New(8, DefaultConfig())
	now := uint64(0)
	tick := func() uint64 { now++; return now }
	// Cold history everywhere.
	for s := 0; s < 8; s++ {
		for i := 0; i < 8; i++ {
			d.RecordInsert(s, int64(s*100+i), int64(s*100+i+2), true, true, tick())
		}
	}
	// Hammer segment 3 with an ascending run approaching key 399.
	for i := 0; i < 8; i++ {
		d.RecordInsert(3, int64(340+i), 399, true, true, tick())
	}
	marks := d.Marks(0, 8)
	if len(marks) != 1 {
		t.Fatalf("got %d marks, want 1: %+v", len(marks), marks)
	}
	m := marks[0]
	if m.Seg != 3 || m.Kind != MarkPairBwd || m.Key != 399 || m.Score != 1 {
		t.Fatalf("unexpected mark %+v", m)
	}
}

func TestMarksWholeSegmentWhenNoSequentialPattern(t *testing.T) {
	d := New(4, DefaultConfig())
	now := uint64(0)
	tick := func() uint64 { now++; return now }
	for s := 0; s < 4; s++ {
		for i := 0; i < 8; i++ {
			// Scatter keys so no pair counter accumulates.
			d.RecordInsert(s, int64(i*17+s), int64(i*31+s+1), true, true, tick())
		}
	}
	// Hammer segment 2 with random (non-sequential) keys.
	for i := 0; i < 8; i++ {
		d.RecordInsert(2, int64(i*997), int64(i*1003+1), true, true, tick())
	}
	marks := d.Marks(0, 4)
	if len(marks) != 1 || marks[0].Seg != 2 || marks[0].Kind != MarkSegment {
		t.Fatalf("want whole-segment mark on seg 2, got %+v", marks)
	}
}

func TestMarksDeleteHammeringScoresNegative(t *testing.T) {
	d := New(4, DefaultConfig())
	now := uint64(0)
	tick := func() uint64 { now++; return now }
	for s := 0; s < 4; s++ {
		for i := 0; i < 8; i++ {
			d.RecordInsert(s, int64(i), int64(i+2), true, true, tick())
		}
	}
	for i := 0; i < 12; i++ {
		d.RecordDelete(1, tick())
	}
	marks := d.Marks(0, 4)
	if len(marks) != 1 || marks[0].Seg != 1 || marks[0].Score != -1 {
		t.Fatalf("want negative-score mark on seg 1, got %+v", marks)
	}
}

func TestMarksUniformHistoryProducesNone(t *testing.T) {
	d := New(8, DefaultConfig())
	now := uint64(0)
	// Perfectly interleaved updates: no segment owns the recent past.
	for round := 0; round < 16; round++ {
		for s := 0; s < 8; s++ {
			now++
			d.RecordInsert(s, int64(round*31+s), int64(round*37+s+1), true, true, now)
		}
	}
	if marks := d.Marks(0, 8); len(marks) != 0 {
		t.Fatalf("uniform history produced marks: %+v", marks)
	}
}

func TestMarksEmptyWindow(t *testing.T) {
	d := New(8, DefaultConfig())
	if marks := d.Marks(2, 6); marks != nil {
		t.Fatalf("empty window produced marks: %+v", marks)
	}
}

func TestResetClearsState(t *testing.T) {
	d := New(4, DefaultConfig())
	for i := 0; i < 20; i++ {
		d.RecordInsert(1, 5, 9, true, true, uint64(i+1))
	}
	d.Reset(16)
	if d.NumSegments() != 16 {
		t.Fatalf("NumSegments = %d", d.NumSegments())
	}
	if marks := d.Marks(0, 16); len(marks) != 0 {
		t.Fatalf("reset detector still marks: %+v", marks)
	}
}

// Property: counters never escape their documented bounds under any
// operation sequence.
func TestCounterBoundsProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(ops []uint16) bool {
		d := New(4, cfg)
		now := uint64(0)
		for _, op := range ops {
			now++
			seg := int(op % 4)
			if op%3 == 0 {
				d.RecordDelete(seg, now)
			} else {
				d.RecordInsert(seg, int64(op%50), int64(op%50+2), op%5 > 0, op%7 > 0, now)
			}
			for s := 0; s < 4; s++ {
				if d.bwdCnt[s] < 0 || int(d.bwdCnt[s]) > cfg.SC ||
					d.fwdCnt[s] < 0 || int(d.fwdCnt[s]) > cfg.SC ||
					int(d.sc[s]) > cfg.SC || int(d.sc[s]) < -cfg.SC {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFootprintPositive(t *testing.T) {
	if New(64, DefaultConfig()).FootprintBytes() <= 0 {
		t.Fatal("footprint must be positive")
	}
}
