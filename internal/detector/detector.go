// Package detector implements the Detector of the RMA's adaptive
// rebalancing (Section IV, Fig 8, Algorithm 1): per-segment metadata that
// identifies hammered regions of the array and predicts where the next
// updates will land.
//
// Per segment it keeps:
//   - a fixed-length queue of the timestamps of the most recent updates;
//   - two predicted keys k_bwd and k_fwd with saturating counters, which
//     recognize descending and ascending sequential insertion runs; and
//   - a signed counter sc, incremented on inserts and decremented on
//     deletes, which decides whether a hammered segment should attract
//     gaps (insert hammering, score +1) or elements (delete hammering,
//     score -1).
//
// Timestamps are logical: the caller passes a monotonically increasing
// operation counter. The paper reads the CPU timestamp counter, but only
// order and recency percentiles are ever used, so a logical clock
// preserves the algorithm and keeps tests deterministic.
package detector

import (
	"fmt"
	"math"
	"slices"
)

// Config holds the Detector tuning knobs.
type Config struct {
	// QueueLen is the per-segment timestamp queue capacity.
	QueueLen int
	// SC is the saturation cap of the k_bwd/k_fwd counters and of |sc|.
	SC int
	// ThetaSC is the counter threshold above which a pair-granular marked
	// interval is emitted instead of a whole-segment one, and the minimum
	// |sc| for a segment to be marked at all.
	ThetaSC int
	// Alpha is the timestamp percentile of the preprocessing phase
	// (paper: 0.999).
	Alpha float64
	// Phi is the fraction of a segment's timestamps that must exceed the
	// percentile for the segment to be marked (paper: 0.75).
	Phi float64
}

// DefaultConfig returns the defaults recorded in DESIGN.md.
func DefaultConfig() Config {
	return Config{QueueLen: 8, SC: 8, ThetaSC: 3, Alpha: 0.999, Phi: 0.75}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.QueueLen <= 0 || c.SC <= 0 || c.ThetaSC <= 0 || c.ThetaSC > c.SC {
		return fmt.Errorf("detector: invalid queue/counter config %+v", c)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 || c.Phi <= 0 || c.Phi > 1 {
		return fmt.Errorf("detector: alpha/phi out of range %+v", c)
	}
	return nil
}

// MarkKind discriminates the granularity of a marked interval.
type MarkKind int

const (
	// MarkSegment marks the whole content of the segment.
	MarkSegment MarkKind = iota
	// MarkPairBwd marks the pair (predecessor(Key), Key): an ascending
	// run is approaching Key from below.
	MarkPairBwd
	// MarkPairFwd marks the pair (Key, successor(Key)): a descending run
	// is approaching Key from above.
	MarkPairFwd
)

// Mark is one marked segment produced by the preprocessing phase.
type Mark struct {
	Seg   int
	Kind  MarkKind
	Key   int64 // predicted frontier key for pair-granular marks
	Score int   // +1 insert hammering, -1 delete hammering
}

// Detector holds the metadata for every segment of the array.
type Detector struct {
	cfg Config

	// Ring buffers, QueueLen entries per segment.
	ts     []uint64
	head   []uint16
	count  []uint16
	bwdVal []int64
	bwdCnt []int16
	fwdVal []int64
	fwdCnt []int16
	sc     []int16

	scratch  []uint64 // reused by Marks
	marksBuf []Mark   // reused by Marks; the rebalance path must not allocate
}

// New returns a Detector for numSegs segments.
func New(numSegs int, cfg Config) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Detector{cfg: cfg}
	d.Reset(numSegs)
	return d
}

// Config returns the active configuration.
func (d *Detector) Config() Config { return d.cfg }

// Reset re-dimensions the detector for numSegs segments, clearing all
// metadata. Called when the array is resized, since segment identities
// change wholesale. The Marks scratch buffers are pre-sized to their
// worst case here, so mark processing never allocates between resizes
// (see PERFORMANCE.md and TestAdaptiveInsertAllocationFree).
func (d *Detector) Reset(numSegs int) {
	q := d.cfg.QueueLen
	d.ts = make([]uint64, numSegs*q)
	d.head = make([]uint16, numSegs)
	d.count = make([]uint16, numSegs)
	d.bwdVal = make([]int64, numSegs)
	d.bwdCnt = make([]int16, numSegs)
	d.fwdVal = make([]int64, numSegs)
	d.fwdCnt = make([]int16, numSegs)
	d.sc = make([]int16, numSegs)
	if cap(d.scratch) < numSegs*q {
		d.scratch = make([]uint64, 0, numSegs*q)
	}
	if cap(d.marksBuf) < numSegs {
		d.marksBuf = make([]Mark, 0, numSegs)
	}
}

// NumSegments returns the number of tracked segments.
func (d *Detector) NumSegments() int { return len(d.head) }

func (d *Detector) push(seg int, now uint64) {
	q := d.cfg.QueueLen
	h := int(d.head[seg])
	d.ts[seg*q+h] = now
	d.head[seg] = uint16((h + 1) % q)
	if int(d.count[seg]) < q {
		d.count[seg]++
	}
}

// RecordInsert updates segment metadata after inserting key k whose
// in-array predecessor and successor are pred/succ (Algorithm 1).
// hasPred/hasSucc are false at the array boundaries.
func (d *Detector) RecordInsert(seg int, pred, succ int64, hasPred, hasSucc bool, now uint64) {
	d.push(seg, now)
	if d.sc[seg] < int16(d.cfg.SC) {
		d.sc[seg]++
	}
	switch {
	case hasSucc && succ == d.bwdVal[seg]:
		if d.bwdCnt[seg] < int16(d.cfg.SC) {
			d.bwdCnt[seg]++
		}
	case hasPred && pred == d.fwdVal[seg]:
		if d.fwdCnt[seg] < int16(d.cfg.SC) {
			d.fwdCnt[seg]++
		}
	default:
		if d.bwdCnt[seg] > 0 {
			d.bwdCnt[seg]--
		}
		if d.fwdCnt[seg] > 0 {
			d.fwdCnt[seg]--
		}
		if d.bwdCnt[seg] == 0 && hasSucc {
			d.bwdVal[seg] = succ
		}
		if d.fwdCnt[seg] == 0 && hasPred {
			d.fwdVal[seg] = pred
		}
	}
}

// RecordDelete updates segment metadata after a deletion in seg.
func (d *Detector) RecordDelete(seg int, now uint64) {
	d.push(seg, now)
	if d.sc[seg] > -int16(d.cfg.SC) {
		d.sc[seg]--
	}
}

// Marks runs the preprocessing phase (Section IV) over the window of
// segments [lo, hi) and returns the marked segments in order. The
// returned slice aliases a buffer reused by the next Marks call: the
// caller must consume it before calling Marks again. Steady-state mark
// processing is allocation-free (see PERFORMANCE.md).
//
// The percentile cutoff follows the paper with one robustness fix
// (documented in DESIGN.md): the cutoff rank is
// K = max(ceil((1-Alpha)*|T|), ceil(Phi*QueueLen)), so that on small
// windows — where the top 0.1% of |T| timestamps is less than one entry —
// a segment holding the most recent Phi*QueueLen updates can still be
// recognized as hammered.
//
// Mark processing runs inside the adaptive rebalance hot path: after
// the scratch warms up it is allocation-free.
//
//rma:noalloc
func (d *Detector) Marks(lo, hi int) []Mark {
	q := d.cfg.QueueLen
	total := 0
	for s := lo; s < hi; s++ {
		total += int(d.count[s])
	}
	if total == 0 {
		return nil
	}
	d.scratch = d.scratch[:0]
	for s := lo; s < hi; s++ {
		base := s * q
		for i := 0; i < int(d.count[s]); i++ {
			d.scratch = append(d.scratch, d.ts[base+i]) //rma:cap-ok — pre-sized to numSegs*QueueLen in Reset
		}
	}
	slices.Sort(d.scratch)

	k := int(math.Ceil((1 - d.cfg.Alpha) * float64(total)))
	if minK := int(math.Ceil(d.cfg.Phi * float64(q))); k < minK {
		k = minK
	}
	if k >= total {
		// Every timestamp would be above the cutoff: with so little
		// history there is no evidence of hammering.
		return nil
	}
	p := d.scratch[total-k-1] // strictly-greater cutoff

	marks := d.marksBuf[:0]
	for s := lo; s < hi; s++ {
		cnt := int(d.count[s])
		if cnt == 0 {
			continue
		}
		if absInt(int(d.sc[s])) < d.cfg.ThetaSC {
			continue
		}
		recent := 0
		base := s * q
		for i := 0; i < cnt; i++ {
			if d.ts[base+i] > p {
				recent++
			}
		}
		if float64(recent) < d.cfg.Phi*float64(cnt) {
			continue
		}
		m := Mark{Seg: s, Score: 1}
		if d.sc[s] < 0 {
			m.Score = -1
		}
		switch {
		case int(d.bwdCnt[s]) >= d.cfg.ThetaSC:
			m.Kind = MarkPairBwd
			m.Key = d.bwdVal[s]
		case int(d.fwdCnt[s]) >= d.cfg.ThetaSC:
			m.Kind = MarkPairFwd
			m.Key = d.fwdVal[s]
		default:
			m.Kind = MarkSegment
		}
		marks = append(marks, m) //rma:cap-ok — pre-sized to numSegs in Reset
	}
	d.marksBuf = marks
	return marks
}

// FootprintBytes returns the memory held by the detector.
func (d *Detector) FootprintBytes() int64 {
	return int64(cap(d.ts))*8 +
		int64(cap(d.head))*2 + int64(cap(d.count))*2 +
		int64(cap(d.bwdVal))*8 + int64(cap(d.bwdCnt))*2 +
		int64(cap(d.fwdVal))*8 + int64(cap(d.fwdCnt))*2 +
		int64(cap(d.sc))*2 + int64(cap(d.scratch))*8 +
		int64(cap(d.marksBuf))*32
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
