// Package wal is the store's write-ahead log: a segmented append-only
// log with CRC-32C-protected records, monotone LSNs, and a group-commit
// core that amortizes one write+fsync over every writer staged during a
// commit wave.
//
// Writers call Append, which assigns the next LSN and stages the
// encoded record into a lock-striped ring (allocation-free in steady
// state — the path is //rma:noalloc-annotated and checked by rmavet),
// then block in Wait until a single syncer goroutine has collected the
// staged bytes of every stripe, written them with one write, and — per
// the SyncPolicy — fsynced. Acknowledging a write after Wait returns
// under SyncAlways therefore promises it survives kill -9.
//
// Recovery reads segments in sequence order and stops at the first
// record that fails validation: a torn tail (the crash-normal case) is
// physically truncated on Open so the log is fully intact afterwards,
// and anything after a mid-log corruption (media damage, outside the
// crash contract) is conservatively dropped — replay never applies a
// record whose checksum does not match, so mutated bytes cannot
// resurrect writes that were never made. DURABILITY.md documents the
// formats, the ack contract, and the crash matrix.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rma/internal/vmem"
)

// Errors returned by the log. Fault-injection errors wrap the vmem
// sentinels so callers test them uniformly with errors.Is.
var (
	// ErrClosed is returned by Append/Wait after Close.
	ErrClosed = errors.New("wal: log closed")
	// ErrNoLog is returned by Open when dir holds no log segments.
	ErrNoLog = errors.New("wal: no log")

	errBadOp       = errors.New("wal: unknown op kind")
	errEmptyAppend = errors.New("wal: empty append")

	errAppendFault   = fmt.Errorf("wal: append: %w", vmem.ErrFaultInjected)
	errSyncFault     = fmt.Errorf("wal: sync: %w", vmem.ErrFaultInjected)
	errTruncateFault = fmt.Errorf("wal: truncate: %w", vmem.ErrFaultInjected)
	errAllocFault    = fmt.Errorf("wal: staging buffer: %w", vmem.ErrAllocFailed)
)

// SyncPolicy selects when commit waves fsync.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs every commit wave before Wait returns: an acked
	// write survives kill -9. The default.
	SyncAlways SyncPolicy = iota
	// SyncEverySec fsyncs at most a few times per second; Wait returns
	// after the wave's write. A crash can lose the last ~second.
	SyncEverySec
	// SyncNever leaves flushing to the OS; Wait returns after the
	// wave's write. A crash can lose anything not yet flushed.
	SyncNever
)

// FaultOp names a deterministic fault-injection point (InjectFault).
type FaultOp string

const (
	// FaultAppend fails the n-th next Append at staging time.
	FaultAppend FaultOp = "append"
	// FaultSync fails the n-th next commit wave's write+fsync step.
	FaultSync FaultOp = "sync"
	// FaultRotate fails the n-th next segment rotation.
	FaultRotate FaultOp = "rotate"
	// FaultTruncate fails the n-th next segment removal in TruncateBelow.
	FaultTruncate FaultOp = "truncate"
)

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes is the rotation threshold (default 4 MiB): a commit
	// wave that finds the active segment at or past it opens the next
	// segment first.
	SegmentBytes int
	// Stripes is the number of staging stripes (default 8). Shard i
	// stages into stripe i%Stripes, so per-shard record order in the
	// file is LSN order.
	Stripes int
	// StripeBytes is each stripe's staging capacity (default 256 KiB).
	// A writer that finds its stripe full waits for the syncer to
	// drain it; a single record larger than the stripe grows it (a
	// documented cold-path allocation).
	StripeBytes int
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SegmentBytes < segHeaderBytes+1 {
		o.SegmentBytes = segHeaderBytes + 1
	}
	if o.Stripes <= 0 {
		o.Stripes = 8
	}
	if o.StripeBytes <= 0 {
		o.StripeBytes = 256 << 10
	}
	return o
}

// Stats are the log's operation counters. Every injected or organic
// failure increments exactly one failure counter, so tests can assert
// that a fault was observed and absorbed.
type Stats struct {
	// Records counts staged records; Waves counts commit waves (the
	// write+fsync batches); Syncs counts fsyncs actually issued.
	Records, Waves, Syncs uint64
	// Rotations and Truncations count segments opened and removed.
	Rotations, Truncations uint64
	// Failure counters, one per fault point.
	AppendFailures, SyncFailures     uint64
	RotateFailures, TruncateFailures uint64
	// BytesWritten counts record bytes written to segments.
	BytesWritten uint64
	// Segments is the live segment-file count; LiveBytes their total
	// size; LastLSN the highest LSN assigned so far.
	Segments  int
	LiveBytes int64
	LastLSN   uint64
}

// segInfo describes one sealed (non-active) segment.
type segInfo struct {
	seq    uint64
	path   string
	bytes  int64
	maxLSN uint64
}

// Log is a segmented write-ahead log. Create/Open start the syncer
// goroutine; Close drains and stops it. Append/Wait are safe for
// concurrent use; Replay and TruncateBelow are recovery/maintenance
// surfaces (Replay must run before concurrent appends begin).
type Log struct {
	dir  string
	opts Options

	lsn    atomic.Uint64 // last assigned LSN
	closed atomic.Bool

	stripes []stripe

	wake   chan struct{}
	done   chan struct{}
	exited chan struct{}

	// Syncer-owned segment state (segOff is atomic only so LiveBytes
	// can read it without joining the syncer).
	f         *os.File
	segSeq    uint64
	segOff    atomic.Int64
	segMaxLSN uint64
	unsynced  bool
	lastSync  time.Time
	writeBuf  []byte
	collected []int

	// Sealed segments, oldest first; guarded by segLk (the syncer
	// appends on rotation, TruncateBelow removes a prefix).
	segLk    sync.Mutex
	segments []segInfo

	seps []int64 // from the genesis record, when still present

	records, waves, syncs            atomic.Uint64
	rotations, truncations           atomic.Uint64
	appendFailures, syncFailures     atomic.Uint64
	rotateFailures, truncateFailures atomic.Uint64
	bytesWritten                     atomic.Uint64
	faultAppend, faultSync           atomic.Int64
	faultRotate, faultTruncate       atomic.Int64
	faultAlloc                       atomic.Int64
}

func segPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", seq))
}

func newLog(dir string, o Options) *Log {
	l := &Log{
		dir:    dir,
		opts:   o,
		wake:   make(chan struct{}, 1),
		done:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	l.stripes = make([]stripe, o.Stripes)
	for i := range l.stripes {
		l.stripes[i].init(o.StripeBytes)
	}
	return l
}

// Create starts a fresh log in dir (created if needed; stale segments
// from an abandoned log are removed). The genesis record carries seps —
// the map's shard separators — so recovery can rebuild an equivalent
// empty map before any checkpoint exists. startLSN seeds the LSN
// counter: a log re-created under an existing checkpoint must start
// above the checkpoint's published floors or replay would skip fresh
// records.
func Create(dir string, seps []int64, startLSN uint64, o Options) (*Log, error) {
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	old, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range old {
		if err := os.Remove(s.path); err != nil {
			return nil, fmt.Errorf("wal: create: removing stale segment: %w", err)
		}
	}

	l := newLog(dir, o)
	l.lsn.Store(startLSN)
	l.seps = append([]int64(nil), seps...)

	path := segPath(dir, 1)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	buf := make([]byte, segHeaderBytes)
	copy(buf, segMagic[:])
	putLE64(buf[8:], 1)
	genesisLSN := l.lsn.Add(1)
	buf = appendRawRecord(buf, genesisLSN, genesisShard, encodeGenesis(seps))
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: create: %w", err)
	}
	l.f = f
	l.segSeq = 1
	l.segOff.Store(int64(len(buf)))
	l.segMaxLSN = genesisLSN
	l.lastSync = time.Now()
	go l.run()
	return l, nil
}

// Open recovers the log in dir. The last segment's torn tail (a crash
// mid-write) is truncated away; a mid-log corruption conservatively
// ends the log there — the damaged segment is cut at its last intact
// record and later segments are dropped. After Open the on-disk log is
// fully valid and appends continue at the tail. Returns ErrNoLog when
// dir holds no intact segments.
func Open(dir string, o Options) (*Log, error) {
	o = o.withDefaults()
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, ErrNoLog
	}

	l := newLog(dir, o)
	keep := 0
	for i := range segs {
		s := &segs[i]
		res, err := scanSegment(s.path, s.seq)
		if err != nil {
			return nil, err
		}
		if !res.headerOK {
			// The segment never got an intact header: the log ends at
			// the previous segment. Drop this file and everything after.
			break
		}
		if i == 0 && res.seps != nil {
			l.seps = res.seps
		}
		if res.maxLSN > l.lsn.Load() {
			l.lsn.Store(res.maxLSN)
		}
		s.maxLSN = res.maxLSN
		s.bytes = res.validLen
		keep = i + 1
		if res.validLen < res.fileLen {
			// Torn or corrupt suffix: make physical = logical so appends
			// and replay agree on the tail.
			if err := os.Truncate(s.path, res.validLen); err != nil {
				return nil, fmt.Errorf("wal: open: truncating torn tail: %w", err)
			}
			break
		}
	}
	if keep == 0 {
		return nil, ErrNoLog
	}
	for _, s := range segs[keep:] {
		if err := os.Remove(s.path); err != nil {
			return nil, fmt.Errorf("wal: open: dropping segment past corruption: %w", err)
		}
	}
	if err := syncDir(dir); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}

	active := segs[keep-1]
	f, err := os.OpenFile(active.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l.f = f
	l.segSeq = active.seq
	l.segOff.Store(active.bytes)
	l.segMaxLSN = active.maxLSN
	l.segments = append(l.segments, segs[:keep-1]...)
	l.lastSync = time.Now()
	go l.run()
	return l, nil
}

// listSegments returns dir's wal-*.seg files sorted by sequence.
func listSegments(dir string) ([]segInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segInfo
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%016x.seg", &seq); n != 1 || err != nil {
			continue
		}
		segs = append(segs, segInfo{seq: seq, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// scanResult is one segment's validation outcome.
type scanResult struct {
	headerOK bool
	validLen int64 // header + intact record prefix
	fileLen  int64
	maxLSN   uint64
	seps     []int64 // genesis separators, when the segment opens with one
}

// scanSegment validates path's header and record prefix.
func scanSegment(path string, wantSeq uint64) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("wal: scan: %w", err)
	}
	res := scanResult{fileLen: int64(len(data))}
	if len(data) < segHeaderBytes ||
		string(data[:8]) != string(segMagic[:]) ||
		le64(data[8:]) != wantSeq {
		return res, nil
	}
	res.headerOK = true
	off := segHeaderBytes
	first := true
	for off < len(data) {
		lsn, shard, payload, end, ok := parseRecord(data, off)
		if !ok {
			break
		}
		if first && shard == genesisShard {
			res.seps, _ = decodeGenesis(payload)
		}
		first = false
		if lsn > res.maxLSN {
			res.maxLSN = lsn
		}
		off = end
	}
	res.validLen = int64(off)
	return res, nil
}

// Seps returns the shard separators from the genesis record, or nil if
// the genesis segment has been truncated away (the map manifest is the
// source of truth then).
func (l *Log) Seps() []int64 { return l.seps }

// LastLSN returns the highest LSN assigned so far.
func (l *Log) LastLSN() uint64 { return l.lsn.Load() }

// EnsureLSNAtLeast raises the LSN counter to at least floor. Recovery
// calls it after Open when the store's persisted checkpoint floors
// exceed the highest LSN surviving in the log: once a publish has
// truncated every record-bearing sealed segment and a forced wave has
// rotated in a fresh one, the reopened log can be header-only, and
// seeding the counter from surviving records alone would hand fresh
// appends LSNs at or below the floors — records the next recovery
// would silently skip. Must run before concurrent appends begin
// (recovery time), like Replay.
func (l *Log) EnsureLSNAtLeast(floor uint64) {
	for {
		cur := l.lsn.Load()
		if cur >= floor || l.lsn.CompareAndSwap(cur, floor) {
			return
		}
	}
}

// LiveBytes returns the total on-disk size of live segments.
func (l *Log) LiveBytes() int64 {
	l.segLk.Lock()
	n := int64(0)
	for _, s := range l.segments {
		n += s.bytes
	}
	l.segLk.Unlock()
	return n + l.segOff.Load()
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	l.segLk.Lock()
	segs := len(l.segments)
	l.segLk.Unlock()
	return Stats{
		Records:          l.records.Load(),
		Waves:            l.waves.Load(),
		Syncs:            l.syncs.Load(),
		Rotations:        l.rotations.Load(),
		Truncations:      l.truncations.Load(),
		AppendFailures:   l.appendFailures.Load(),
		SyncFailures:     l.syncFailures.Load(),
		RotateFailures:   l.rotateFailures.Load(),
		TruncateFailures: l.truncateFailures.Load(),
		BytesWritten:     l.bytesWritten.Load(),
		Segments:         segs + 1,
		LiveBytes:        l.LiveBytes(),
		LastLSN:          l.lsn.Load(),
	}
}

// InjectFault arms deterministic failure of the n-th next operation at
// the given fault point (n=1 fails the very next one). Testing hook,
// mirroring vmem.FileRegion's matrix: every injected failure surfaces
// an error or a Stats counter and leaves the log (and the store above
// it) serving.
func (l *Log) InjectFault(op FaultOp, n int) {
	c := l.faultCounter(op)
	if c != nil {
		c.Store(int64(n))
	}
}

// InjectAllocFailure arms failure of the n-th next staging-buffer
// growth (the oversized-record cold path). Testing hook.
func (l *Log) InjectAllocFailure(n int) { l.faultAlloc.Store(int64(n)) }

func (l *Log) faultCounter(op FaultOp) *atomic.Int64 {
	switch op {
	case FaultAppend:
		return &l.faultAppend
	case FaultSync:
		return &l.faultSync
	case FaultRotate:
		return &l.faultRotate
	case FaultTruncate:
		return &l.faultTruncate
	}
	return nil
}

// faultTrip consumes one armed count; it reports true on the arming
// call's n-th next operation.
func faultTrip(c *atomic.Int64) bool {
	if c.Load() <= 0 {
		return false
	}
	return c.Add(-1) == 0
}

// Replay calls fn for every logged operation record in log order —
// which, per shard, is LSN order (shards pin to stripes and waves are
// collected in sequence). The genesis record is skipped. Replay must
// run before concurrent appends begin (recovery time); fn's ops slice
// is reused between calls.
func (l *Log) Replay(fn func(shard int, lsn uint64, ops []Op) error) error {
	l.segLk.Lock()
	paths := make([]string, 0, len(l.segments)+1)
	for _, s := range l.segments {
		paths = append(paths, s.path)
	}
	l.segLk.Unlock()
	paths = append(paths, segPath(l.dir, l.segSeq))

	var ops []Op
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("wal: replay: %w", err)
		}
		if len(data) < segHeaderBytes {
			return nil
		}
		off := segHeaderBytes
		for off < len(data) {
			lsn, shard, payload, end, ok := parseRecord(data, off)
			if !ok {
				// Conservative end of log: nothing past an invalid
				// record is replayed.
				return nil
			}
			off = end
			if shard == genesisShard {
				continue
			}
			ops = ops[:0]
			ops, ok = decodeOps(payload, ops)
			if !ok {
				return nil
			}
			if err := fn(int(shard), lsn, ops); err != nil {
				return err
			}
		}
	}
	return nil
}

// TruncateBelow removes sealed segments whose records all have
// LSN <= floor — called after a checkpoint round publishes floor as its
// recovery point, so the removed records are covered by checkpoint
// pages. The active segment is never removed. Failures (including
// injected FaultTruncate) leave the log serving with the remaining
// segments intact.
func (l *Log) TruncateBelow(floor uint64) error {
	l.segLk.Lock()
	defer l.segLk.Unlock()
	removed := false
	for len(l.segments) > 0 {
		s := l.segments[0]
		if s.maxLSN == 0 || s.maxLSN > floor {
			break
		}
		if faultTrip(&l.faultTruncate) {
			l.truncateFailures.Add(1)
			return errTruncateFault
		}
		if err := os.Remove(s.path); err != nil {
			l.truncateFailures.Add(1)
			return fmt.Errorf("wal: truncate: %w", err)
		}
		l.segments = l.segments[1:]
		l.truncations.Add(1)
		removed = true
	}
	if removed {
		if err := syncDir(l.dir); err != nil {
			l.truncateFailures.Add(1)
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return nil
}

// Close drains staged records through one final commit wave, stops the
// syncer, and closes the active segment. Appends that began before
// Close are collected and their Waits return; appends after Close
// return ErrClosed. Idempotent.
func (l *Log) Close() error {
	if l.closed.Swap(true) {
		<-l.exited
		return nil
	}
	// Wake writers blocked on stripe space so they observe closed.
	for i := range l.stripes {
		s := &l.stripes[i]
		s.lk.Lock()
		s.cond.Broadcast()
		s.lk.Unlock()
	}
	close(l.done)
	<-l.exited
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
