package wal

import "hash/crc32"

// On-disk layout (all integers little-endian).
//
// Segment files are named wal-%016x.seg by a monotone segment sequence
// number and start with a 16-byte header:
//
//	offset 0  magic "RMAWAL01"
//	offset 8  u64 segment sequence (must match the filename)
//
// Records follow back to back. A record is:
//
//	offset 0   u32 crc    CRC-32C (Castagnoli) of bytes [4, 20+len)
//	offset 4   u32 len    payload length in bytes
//	offset 8   u64 lsn    log sequence number (monotone across the log)
//	offset 16  u32 shard  owning shard, or genesisShard for the genesis
//	offset 20  payload
//
// A normal payload is a run of operations: kind byte (0 = put,
// 1 = delete), key as 8 bytes, and — for puts only — value as 8 bytes.
// The genesis record (shard = genesisShard, written once at Create as
// the first record of segment 1) instead carries the map's shard
// separators: u32 count, then count separators of 8 bytes each. It
// exists so a log can rebuild an equivalent empty map even before the
// first checkpoint has published.
//
// The CRC covers length, LSN, shard and payload, so a torn tail — a
// record cut short by a crash mid-write — fails validation and replay
// stops cleanly at the last intact record.
const (
	recordHeaderBytes = 20
	segHeaderBytes    = 16

	// maxRecordPayload bounds the length field during validation so a
	// corrupt length cannot make the scanner index far past the buffer.
	maxRecordPayload = 1 << 27

	opPutBytes    = 17
	opDeleteBytes = 9
)

// genesisShard marks the genesis record; it is never a real shard index.
const genesisShard = ^uint32(0)

var segMagic = [8]byte{'R', 'M', 'A', 'W', 'A', 'L', '0', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// OpKind selects a logged operation. The values are the on-disk
// encoding and mirror the shard layer's batch op kinds.
type OpKind uint8

const (
	// OpPut logs an insert of (Key, Val).
	OpPut OpKind = 0
	// OpDelete logs the removal of one occurrence of Key; Val is unused.
	OpDelete OpKind = 1
)

// Op is one logged operation.
type Op struct {
	Kind     OpKind
	Key, Val int64
}

func putLE32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func putLE64(b []byte, v uint64) {
	putLE32(b, uint32(v))
	putLE32(b[4:], uint32(v>>32))
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func le64(b []byte) uint64 {
	return uint64(le32(b)) | uint64(le32(b[4:]))<<32
}

// opsBytes returns the encoded payload size of ops, or -1 if any op has
// an unknown kind.
func opsBytes(ops []Op) int {
	n := 0
	for i := range ops {
		switch ops[i].Kind {
		case OpPut:
			n += opPutBytes
		case OpDelete:
			n += opDeleteBytes
		default:
			return -1
		}
	}
	return n
}

// appendOpsRecord encodes one record holding ops into dst, which the
// caller has already sized: cap(dst)-len(dst) must be at least
// recordHeaderBytes+opsBytes(ops). It never grows dst, so the group
// commit fast path stays allocation-free.
func appendOpsRecord(dst []byte, lsn uint64, shard uint32, ops []Op) []byte {
	base := len(dst)
	need := recordHeaderBytes + opsBytes(ops)
	dst = dst[:base+need]
	b := dst[base:]
	off := recordHeaderBytes
	for i := range ops {
		b[off] = byte(ops[i].Kind)
		off++
		putLE64(b[off:], uint64(ops[i].Key))
		off += 8
		if ops[i].Kind == OpPut {
			putLE64(b[off:], uint64(ops[i].Val))
			off += 8
		}
	}
	putLE32(b[4:], uint32(off-recordHeaderBytes))
	putLE64(b[8:], lsn)
	putLE32(b[16:], shard)
	putLE32(b, crc32.Checksum(b[4:off], castagnoli))
	return dst
}

// appendRawRecord encodes one record with an opaque payload (the
// genesis record). Cold path: may grow dst.
func appendRawRecord(dst []byte, lsn uint64, shard uint32, payload []byte) []byte {
	base := len(dst)
	b := make([]byte, recordHeaderBytes+len(payload))
	copy(b[recordHeaderBytes:], payload)
	putLE32(b[4:], uint32(len(payload)))
	putLE64(b[8:], lsn)
	putLE32(b[16:], shard)
	putLE32(b, crc32.Checksum(b[4:], castagnoli))
	return append(dst[:base], b...)
}

// parseRecord validates the record starting at data[off]. ok is false
// when the bytes there are not an intact record (torn tail, corrupt
// CRC, malformed payload) — the scanner treats that as end of log.
func parseRecord(data []byte, off int) (lsn uint64, shard uint32, payload []byte, end int, ok bool) {
	if off+recordHeaderBytes > len(data) {
		return 0, 0, nil, 0, false
	}
	ln := le32(data[off+4:])
	if ln > maxRecordPayload {
		return 0, 0, nil, 0, false
	}
	end = off + recordHeaderBytes + int(ln)
	if end > len(data) {
		return 0, 0, nil, 0, false
	}
	if le32(data[off:]) != crc32.Checksum(data[off+4:end], castagnoli) {
		return 0, 0, nil, 0, false
	}
	lsn = le64(data[off+8:])
	shard = le32(data[off+16:])
	payload = data[off+recordHeaderBytes : end]
	if shard == genesisShard {
		if _, ok := decodeGenesis(payload); !ok {
			return 0, 0, nil, 0, false
		}
	} else if !validOps(payload) {
		return 0, 0, nil, 0, false
	}
	return lsn, shard, payload, end, true
}

// validOps checks that payload is a well-formed op run.
func validOps(payload []byte) bool {
	for off := 0; off < len(payload); {
		switch OpKind(payload[off]) {
		case OpPut:
			off += opPutBytes
		case OpDelete:
			off += opDeleteBytes
		default:
			return false
		}
		if off > len(payload) {
			return false
		}
	}
	return true
}

// decodeOps appends payload's operations to dst (validated by
// validOps first; a malformed run returns ok=false).
func decodeOps(payload []byte, dst []Op) ([]Op, bool) {
	for off := 0; off < len(payload); {
		kind := OpKind(payload[off])
		switch kind {
		case OpPut:
			if off+opPutBytes > len(payload) {
				return dst, false
			}
			dst = append(dst, Op{
				Kind: OpPut,
				Key:  int64(le64(payload[off+1:])),
				Val:  int64(le64(payload[off+9:])),
			})
			off += opPutBytes
		case OpDelete:
			if off+opDeleteBytes > len(payload) {
				return dst, false
			}
			dst = append(dst, Op{Kind: OpDelete, Key: int64(le64(payload[off+1:]))})
			off += opDeleteBytes
		default:
			return dst, false
		}
	}
	return dst, true
}

func encodeGenesis(seps []int64) []byte {
	b := make([]byte, 4+8*len(seps))
	putLE32(b, uint32(len(seps)))
	for i, s := range seps {
		putLE64(b[4+8*i:], uint64(s))
	}
	return b
}

func decodeGenesis(payload []byte) ([]int64, bool) {
	if len(payload) < 4 {
		return nil, false
	}
	n := int(le32(payload))
	if n > 1<<20 || len(payload) != 4+8*n {
		return nil, false
	}
	seps := make([]int64, n)
	for i := range seps {
		seps[i] = int64(le64(payload[4+8*i:]))
	}
	return seps, true
}
