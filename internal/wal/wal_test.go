package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"rma/internal/vmem"
)

// rec is one replayed record, flattened for comparison.
type rec struct {
	shard int
	lsn   uint64
	ops   string
}

func replayAll(t *testing.T, l *Log) []rec {
	t.Helper()
	var out []rec
	err := l.Replay(func(shard int, lsn uint64, ops []Op) error {
		s := ""
		for _, op := range ops {
			s += fmt.Sprintf("%d:%d:%d;", op.Kind, op.Key, op.Val)
		}
		out = append(out, rec{shard: shard, lsn: lsn, ops: s})
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

// mustAppend appends and waits, failing the test on either error.
func mustAppend(t *testing.T, l *Log, shard int, ops ...Op) Ticket {
	t.Helper()
	tk, err := l.Append(shard, ops)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Wait(tk); err != nil {
		t.Fatalf("wait: %v", err)
	}
	return tk
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	seps := []int64{100, 200, 300}
	l, err := Create(dir, seps, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want []rec
	for i := 0; i < 100; i++ {
		sh := i % 4
		var ops []Op
		if i%5 == 4 {
			ops = []Op{{Kind: OpDelete, Key: int64(i - 3)}}
		} else {
			ops = []Op{{Kind: OpPut, Key: int64(i), Val: int64(i * 10)}}
		}
		tk := mustAppend(t, l, sh, ops...)
		s := ""
		for _, op := range ops {
			s += fmt.Sprintf("%d:%d:%d;", op.Kind, op.Key, op.Val)
		}
		want = append(want, rec{shard: sh, lsn: tk.LSN(), ops: s})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Seps(); len(got) != len(seps) || got[0] != 100 || got[2] != 300 {
		t.Fatalf("seps = %v, want %v", got, seps)
	}
	if l2.LastLSN() != uint64(len(want))+1 { // +1: genesis
		t.Fatalf("LastLSN = %d, want %d", l2.LastLSN(), len(want)+1)
	}
	got := replayAll(t, l2)
	checkPerShardOrder(t, got)
	sortByLSN(want)
	sortByLSN(got)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// The log keeps serving after recovery.
	mustAppend(t, l2, 1, Op{Kind: OpPut, Key: 7, Val: 8})
	if n := len(replayAll(t, l2)); n != len(want)+1 {
		t.Fatalf("post-recovery replay has %d records, want %d", n, len(want)+1)
	}
}

func sortByLSN(rs []rec) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].lsn < rs[j-1].lsn; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// checkPerShardOrder asserts replay file order is LSN order per shard —
// the property that makes floor-filtered re-application idempotent.
func checkPerShardOrder(t *testing.T, rs []rec) {
	t.Helper()
	last := map[int]uint64{}
	for _, r := range rs {
		if r.lsn <= last[r.shard] {
			t.Fatalf("shard %d: replay order violates LSN order (%d after %d)",
				r.shard, r.lsn, last[r.shard])
		}
		last[r.shard] = r.lsn
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tk, err := l.Append(w, []Op{{Kind: OpPut, Key: int64(w*perWriter + i), Val: int64(i)}})
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := l.Wait(tk); err != nil {
					t.Errorf("wait: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Records != writers*perWriter {
		t.Fatalf("Records = %d, want %d", st.Records, writers*perWriter)
	}
	if st.Waves == 0 || st.Syncs == 0 {
		t.Fatalf("no commit waves recorded: %+v", st)
	}
	got := replayAll(t, l)
	checkPerShardOrder(t, got)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// buildLogBytes creates a single-segment log with n records and returns
// the segment's bytes plus the pristine replay.
func buildLogBytes(t *testing.T, n int) ([]byte, []rec) {
	t.Helper()
	dir := t.TempDir()
	l, err := Create(dir, []int64{10, 20}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustAppend(t, l, i%3, Op{Kind: OpPut, Key: int64(i), Val: int64(i)})
	}
	pristine := replayAll(t, l)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	return data, pristine
}

// openBytes writes data as segment 1 in a fresh dir and opens it.
func openBytes(t *testing.T, data []byte) (*Log, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return Open(dir, Options{})
}

// checkPrefix asserts got is a prefix of want.
func checkPrefix(t *testing.T, got, want []rec, what string) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("%s: replay yielded %d records, more than the %d written", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: record %d = %+v, want %+v (not a prefix)", what, i, got[i], want[i])
		}
	}
}

func TestWALTornTail(t *testing.T) {
	data, pristine := buildLogBytes(t, 40)
	stride := 1
	if testing.Short() {
		stride = 13
	}
	for cut := segHeaderBytes; cut < len(data); cut += stride {
		l, err := openBytes(t, data[:cut])
		if errors.Is(err, ErrNoLog) {
			continue // cut inside the genesis record
		}
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		got := replayAll(t, l)
		checkPrefix(t, got, pristine, fmt.Sprintf("cut %d", cut))
		// The torn tail was truncated: the log must accept new appends
		// and replay them after the surviving prefix.
		mustAppend(t, l, 0, Op{Kind: OpPut, Key: -1, Val: -1})
		if n := len(replayAll(t, l)); n != len(got)+1 {
			t.Fatalf("cut %d: post-truncation append not replayed (%d vs %d)", cut, n, len(got)+1)
		}
		l.Close()
	}
}

func TestWALBitFlip(t *testing.T) {
	data, pristine := buildLogBytes(t, 30)
	stride := 3
	if testing.Short() {
		stride = 41
	}
	for off := 0; off < len(data); off += stride {
		mut := bytes.Clone(data)
		mut[off] ^= 0x40
		l, err := openBytes(t, mut)
		if errors.Is(err, ErrNoLog) {
			continue // flip landed in the segment header
		}
		if err != nil {
			t.Fatalf("flip at %d: open: %v", off, err)
		}
		got := replayAll(t, l)
		checkPrefix(t, got, pristine, fmt.Sprintf("flip at %d", off))
		l.Close()
	}
}

func TestWALShortSegment(t *testing.T) {
	data, pristine := buildLogBytes(t, 10)

	// A lone segment shorter than its header is no log at all.
	if _, err := openBytes(t, data[:segHeaderBytes-4]); !errors.Is(err, ErrNoLog) {
		t.Fatalf("short lone segment: err = %v, want ErrNoLog", err)
	}

	// A short trailing segment after an intact one is dropped; the
	// intact segment's records survive.
	dir := t.TempDir()
	if err := os.WriteFile(segPath(dir, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath(dir, 2), data[:7], 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	checkPrefix(t, replayAll(t, l), pristine, "short trailing segment")
	if got := len(replayAll(t, l)); got != len(pristine) {
		t.Fatalf("replayed %d records, want all %d", got, len(pristine))
	}
	if _, err := os.Stat(segPath(dir, 2)); !os.IsNotExist(err) {
		t.Fatalf("short trailing segment not dropped: %v", err)
	}
}

func TestWALRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for i := 0; i < 64; i++ {
		tk := mustAppend(t, l, 0, Op{Kind: OpPut, Key: int64(i), Val: int64(i)})
		lsns = append(lsns, tk.LSN())
	}
	st := l.Stats()
	if st.Rotations < 2 {
		t.Fatalf("Rotations = %d, want >= 2 with 256-byte segments", st.Rotations)
	}
	if st.Segments < 3 {
		t.Fatalf("Segments = %d, want >= 3", st.Segments)
	}

	floor := lsns[len(lsns)/2]
	before := l.LiveBytes()
	if err := l.TruncateBelow(floor); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	st = l.Stats()
	if st.Truncations == 0 {
		t.Fatalf("Truncations = 0 after TruncateBelow(%d)", floor)
	}
	if after := l.LiveBytes(); after >= before {
		t.Fatalf("LiveBytes %d not reduced from %d", after, before)
	}
	// Every record above the floor must still replay.
	got := replayAll(t, l)
	want := 0
	for _, lsn := range lsns {
		if lsn > floor {
			want++
		}
	}
	above := 0
	for _, r := range got {
		if r.lsn > floor {
			above++
		}
	}
	if above != want {
		t.Fatalf("replay has %d records above floor %d, want %d", above, floor, want)
	}

	// Recovery across the truncated log: genesis is gone, Seps is nil,
	// records above the floor survive.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got2 := replayAll(t, l2)
	above = 0
	for _, r := range got2 {
		if r.lsn > floor {
			above++
		}
	}
	if above != want {
		t.Fatalf("post-reopen replay has %d records above floor, want %d", above, want)
	}
}

func TestWALFaultAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.InjectFault(FaultAppend, 1)
	if _, err := l.Append(0, []Op{{Kind: OpPut, Key: 1, Val: 1}}); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("err = %v, want fault injected", err)
	}
	if st := l.Stats(); st.AppendFailures != 1 {
		t.Fatalf("AppendFailures = %d, want 1", st.AppendFailures)
	}
	mustAppend(t, l, 0, Op{Kind: OpPut, Key: 2, Val: 2})
	if n := len(replayAll(t, l)); n != 1 {
		t.Fatalf("replay has %d records, want 1 (failed append must not be logged)", n)
	}
}

func TestWALFaultSync(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 0, Op{Kind: OpPut, Key: 1, Val: 1})
	l.InjectFault(FaultSync, 1)
	tk, err := l.Append(0, []Op{{Kind: OpPut, Key: 2, Val: 2}})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Wait(tk); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("wait err = %v, want fault injected", err)
	}
	if st := l.Stats(); st.SyncFailures != 1 {
		t.Fatalf("SyncFailures = %d, want 1", st.SyncFailures)
	}
	// The log keeps serving; the unacked record is gone, acked ones stay.
	mustAppend(t, l, 0, Op{Kind: OpPut, Key: 3, Val: 3})
	got := replayAll(t, l)
	keys := map[int64]bool{}
	for _, r := range got {
		var k int64
		fmt.Sscanf(r.ops, "0:%d:", &k)
		keys[k] = true
	}
	if !keys[1] || !keys[3] {
		t.Fatalf("acked records lost after sync fault: %+v", got)
	}
	if keys[2] {
		t.Fatalf("unacked record of the failed wave replayed: %+v", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWALFailedWaveOutlivesErrRing pins that a waiter can never observe
// success for a failed wave, even after its ring slot has been recycled
// by waveErrRing+ later collections: the failed-wave watermark survives
// indefinitely, so a scheduler-starved Wait still reports the error for
// a wave whose bytes never reached the log.
func TestWALFailedWaveOutlivesErrRing(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	l.InjectFault(FaultSync, 1)
	tk, err := l.Append(0, []Op{{Kind: OpPut, Key: 1, Val: 1}})
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	// Let the injected wave fail before staging anything else, so the
	// ticket's wave holds exactly the failure.
	deadline := time.Now().Add(10 * time.Second)
	for l.Stats().SyncFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("injected sync fault never fired")
		}
		runtime.Gosched()
	}
	// Recycle the ticket's ring slot: each Append+Wait pair forces at
	// least one further collection of the same stripe.
	for i := 0; i < waveErrRing+8; i++ {
		mustAppend(t, l, 0, Op{Kind: OpPut, Key: int64(100 + i), Val: 1})
	}
	if err := l.Wait(tk); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("recycled failed wave reported %v, want fault injected", err)
	}
	// The failed wave's record must not replay either.
	for _, r := range replayAll(t, l) {
		if r.ops == fmt.Sprintf("%d:1:1;", OpPut) {
			t.Fatal("failed wave's record resurfaced in replay")
		}
	}
}

// TestWALEnsureLSNAtLeast pins the recovery seeding hook: raising the
// counter is monotone and appends continue strictly above the floor.
func TestWALEnsureLSNAtLeast(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.EnsureLSNAtLeast(100)
	if got := l.LastLSN(); got != 100 {
		t.Fatalf("LastLSN = %d, want 100", got)
	}
	l.EnsureLSNAtLeast(50) // lowering is a no-op
	if got := l.LastLSN(); got != 100 {
		t.Fatalf("LastLSN after lower floor = %d, want 100", got)
	}
	if tk := mustAppend(t, l, 0, Op{Kind: OpPut, Key: 1, Val: 1}); tk.LSN() != 101 {
		t.Fatalf("append LSN = %d, want 101", tk.LSN())
	}
}

func TestWALFaultRotate(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.InjectFault(FaultRotate, 1)
	for i := 0; i < 32; i++ {
		mustAppend(t, l, 0, Op{Kind: OpPut, Key: int64(i), Val: int64(i)})
	}
	st := l.Stats()
	if st.RotateFailures != 1 {
		t.Fatalf("RotateFailures = %d, want 1", st.RotateFailures)
	}
	if st.Rotations == 0 {
		t.Fatalf("no rotation succeeded after the injected failure: %+v", st)
	}
	if n := len(replayAll(t, l)); n != 32 {
		t.Fatalf("replay has %d records, want 32 (rotation failure loses nothing)", n)
	}
}

func TestWALFaultTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var last uint64
	for i := 0; i < 32; i++ {
		last = mustAppend(t, l, 0, Op{Kind: OpPut, Key: int64(i), Val: int64(i)}).LSN()
	}
	l.InjectFault(FaultTruncate, 1)
	if err := l.TruncateBelow(last); !errors.Is(err, vmem.ErrFaultInjected) {
		t.Fatalf("truncate err = %v, want fault injected", err)
	}
	if st := l.Stats(); st.TruncateFailures != 1 {
		t.Fatalf("TruncateFailures = %d, want 1", st.TruncateFailures)
	}
	// Nothing was lost and the retry succeeds.
	if n := len(replayAll(t, l)); n != 32 {
		t.Fatalf("replay has %d records, want 32", n)
	}
	if err := l.TruncateBelow(last); err != nil {
		t.Fatalf("retry truncate: %v", err)
	}
	if st := l.Stats(); st.Truncations == 0 {
		t.Fatalf("retry removed no segments: %+v", st)
	}
}

func TestWALAllocFailure(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{StripeBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	big := make([]Op, 32) // ~550 payload bytes, larger than the stripe
	for i := range big {
		big[i] = Op{Kind: OpPut, Key: int64(i), Val: int64(i)}
	}
	l.InjectAllocFailure(1)
	if _, err := l.Append(0, big); !errors.Is(err, vmem.ErrAllocFailed) {
		t.Fatalf("err = %v, want ErrAllocFailed", err)
	}
	if st := l.Stats(); st.AppendFailures != 1 {
		t.Fatalf("AppendFailures = %d, want 1", st.AppendFailures)
	}
	// Without the fault the oversized record goes through.
	tk, err := l.Append(0, big)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Wait(tk); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if n := len(replayAll(t, l)); n != 1 {
		t.Fatalf("replay has %d records, want 1", n)
	}
}

func TestWALClosedAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, 0, Op{Kind: OpPut, Key: 1, Val: 1})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, []Op{{Kind: OpPut, Key: 2, Val: 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: err = %v, want ErrClosed", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestWALAppendAllocationFree pins the group-commit staging path at
// zero allocations — Append is a //rma:noalloc root and the escape
// gate checks the closure statically; this is the dynamic witness.
func TestWALAppendAllocationFree(t *testing.T) {
	dir := t.TempDir()
	l, err := Create(dir, []int64{0}, 0, Options{Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	ops := make([]Op, 1)
	// Warm the path (stripe buffers, syncer write buffer).
	for i := 0; i < 1024; i++ {
		ops[0] = Op{Kind: OpPut, Key: int64(i), Val: int64(i)}
		tk, err := l.Append(0, ops)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Wait(tk); err != nil {
			t.Fatal(err)
		}
	}
	n := int64(0)
	allocs := testing.AllocsPerRun(512, func() {
		ops[0] = Op{Kind: OpPut, Key: n, Val: n}
		n++
		tk, err := l.Append(0, ops)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Wait(tk); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Append+Wait allocates %.2f times per op, want 0", allocs)
	}
}

// FuzzWALReplay feeds mutated segment bytes through Open+Replay: no
// input may panic, and every replayed record must be structurally
// valid — a record that fails its checksum is never applied, so
// mutated bytes cannot resurrect writes that were never made.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real log so the fuzzer mutates valid structure.
	dir := f.TempDir()
	l, err := Create(dir, []int64{5, 10}, 0, Options{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tk, err := l.Append(i%3, []Op{{Kind: OpPut, Key: int64(i), Val: int64(i)}, {Kind: OpDelete, Key: int64(i - 1)}})
		if err != nil {
			f.Fatal(err)
		}
		if err := l.Wait(tk); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(segPath(dir, 1))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, "wal-0000000000000001.seg"), data, 0o644); err != nil {
			t.Skip()
		}
		l, err := Open(fdir, Options{})
		if err != nil {
			return // rejected cleanly
		}
		defer l.Close()
		err = l.Replay(func(shard int, lsn uint64, ops []Op) error {
			if shard < 0 {
				t.Fatalf("replayed record with negative shard %d", shard)
			}
			for _, op := range ops {
				if op.Kind != OpPut && op.Kind != OpDelete {
					t.Fatalf("replayed record with invalid op kind %d", op.Kind)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		// The recovered log must keep serving.
		tk, err := l.Append(0, []Op{{Kind: OpPut, Key: 1, Val: 1}})
		if err != nil {
			t.Fatalf("append after fuzzed recovery: %v", err)
		}
		if err := l.Wait(tk); err != nil {
			t.Fatalf("wait after fuzzed recovery: %v", err)
		}
	})
}
