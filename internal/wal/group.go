package wal

import (
	"os"
	"sync"
	"time"
)

// The group-commit core. Writers stage encoded records into one of a
// small number of stripes (shard i always stages into stripe
// i%Stripes), assign the record its LSN while the stripe lock is held,
// and block in Wait on the stripe's condition variable. The syncer
// goroutine collects every non-empty stripe's staged bytes under the
// stripe locks, concatenates them, and commits the wave with one
// write and — per SyncPolicy — one fsync, then publishes the wave's
// durability (and error, if any) back to the stripes and broadcasts.
//
// Correctness notes:
//
//   - LSNs come from one atomic counter read under the stripe lock, and
//     a stripe's staged bytes are collected in staging order, so the
//     file order of any one stripe's records — hence of any one
//     shard's records — is LSN order. Replay can therefore apply
//     records in file order and filter per shard by checkpoint floor.
//   - A wave's tickets are (stripe, collection sequence) pairs: a
//     record staged now belongs to collection seq+1, and Wait returns
//     once the stripe's durable sequence reaches it. Wave errors are
//     kept in a small per-stripe ring so every waiter of a failed wave
//     observes its error.

// waveErrRing bounds how many past wave outcomes a stripe remembers
// exactly. A waiter that sleeps through more collections than this
// reads a recycled slot and falls back to the stripe's failed-wave
// watermark: failures are recorded monotonically in failedWave, so a
// ticket at or below the watermark conservatively reports the recorded
// error (its own wave may have succeeded — acceptable, the caller just
// declines to ack), and a ticket above it genuinely succeeded. Success
// is never reported for a failed wave: a WriteAt-failed wave's bytes
// were never written, so acking it would breach the zero-lost-acks
// contract.
const waveErrRing = 64

type waveErr struct {
	wave uint64
	err  error
}

// stripe is one staging lane. All fields are guarded by lk; cond
// signals both "space freed by a collection" and "durability advanced".
type stripe struct {
	lk     sync.Mutex
	cond   *sync.Cond
	buf    []byte
	maxLSN uint64 // highest LSN staged in buf
	seq    uint64 // collections taken from this stripe
	dur    uint64 // collections made durable
	errs   [waveErrRing]waveErr

	// Failed-wave watermark: the highest collection whose wave failed,
	// and that wave's error. Monotone, so failedWave < t.wave proves
	// t's wave succeeded even after its ring slot is recycled.
	failedWave uint64
	failedErr  error
}

func (s *stripe) init(capBytes int) {
	s.cond = sync.NewCond(&s.lk)
	s.buf = make([]byte, 0, capBytes)
}

// Ticket identifies a staged record's commit wave; pass it to Wait.
// The zero Ticket is valid and waits for nothing (a no-op handle for
// paths that did not log).
type Ticket struct {
	st   *stripe
	wave uint64
	lsn  uint64
}

// Ok reports whether the ticket refers to a staged record.
func (t Ticket) Ok() bool { return t.st != nil }

// LSN returns the staged record's log sequence number (0 for the zero
// Ticket).
func (t Ticket) LSN() uint64 { return t.lsn }

// Append assigns the next LSN and stages one record holding ops for
// shard. It returns a Ticket for Wait; the record becomes durable with
// its commit wave. The caller holds the shard's lock, which makes the
// LSN/engine-application order exact per shard (see CONCURRENCY.md).
// A full stripe waits for the syncer to drain it; a record larger than
// the stripe grows it once (documented cold path).
//
//rma:noalloc
func (l *Log) Append(shard int, ops []Op) (Ticket, error) {
	if len(ops) == 0 {
		return Ticket{}, errEmptyAppend
	}
	n := opsBytes(ops)
	if n < 0 {
		return Ticket{}, errBadOp
	}
	need := recordHeaderBytes + n
	s := &l.stripes[uint(shard)%uint(len(l.stripes))]
	s.lk.Lock()
	if l.closed.Load() {
		s.lk.Unlock()
		return Ticket{}, ErrClosed
	}
	if faultTrip(&l.faultAppend) {
		s.lk.Unlock()
		l.appendFailures.Add(1)
		return Ticket{}, errAppendFault
	}
	for len(s.buf)+need > cap(s.buf) {
		if len(s.buf) == 0 {
			// Empty and still too small: a record larger than the
			// stripe. Grow once and carry on.
			if err := l.growStripe(s, need); err != nil { //rma:alloc-ok oversized-record growth, documented cold path
				s.lk.Unlock()
				l.appendFailures.Add(1)
				return Ticket{}, err
			}
			continue
		}
		l.nudge()
		s.cond.Wait()
		if l.closed.Load() {
			s.lk.Unlock()
			return Ticket{}, ErrClosed
		}
	}
	lsn := l.lsn.Add(1)
	s.buf = appendOpsRecord(s.buf, lsn, uint32(shard), ops) //rma:cap-ok capacity ensured by the staging loop above
	s.maxLSN = lsn
	t := Ticket{st: s, wave: s.seq + 1, lsn: lsn}
	s.lk.Unlock()
	l.records.Add(1)
	l.nudge()
	return t, nil
}

// growStripe replaces s.buf (empty) with one of at least need bytes.
func (l *Log) growStripe(s *stripe, need int) error {
	if faultTrip(&l.faultAlloc) {
		return errAllocFault
	}
	s.buf = make([]byte, 0, need)
	return nil
}

// Wait blocks until t's commit wave has been committed per the sync
// policy (written and, under SyncAlways, fsynced) and returns the
// wave's outcome. The zero Ticket returns nil immediately.
func (l *Log) Wait(t Ticket) error {
	if t.st == nil {
		return nil
	}
	s := t.st
	s.lk.Lock()
	for s.dur < t.wave {
		s.cond.Wait()
	}
	e := s.errs[t.wave%waveErrRing]
	var err error
	switch {
	case e.wave == t.wave:
		err = e.err
	case t.wave <= s.failedWave:
		// The slot was recycled by 64+ later collections and a wave at
		// or after t's failed since: t's own outcome is unknowable, so
		// report the recorded failure rather than risk acking a write
		// whose bytes never reached the log (see waveErrRing).
		err = s.failedErr
	}
	s.lk.Unlock()
	return err
}

// nudge wakes the syncer (coalescing; a pending wakeup is enough).
func (l *Log) nudge() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// run is the syncer goroutine: one commit wave per wakeup, a periodic
// fsync under SyncEverySec, and a final drain on Close.
func (l *Log) run() {
	defer close(l.exited)
	var tick <-chan time.Time
	if l.opts.Sync == SyncEverySec {
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-l.wake:
			l.commitWave(false)
		case <-tick:
			l.commitWave(true)
		case <-l.done:
			l.commitWave(true)
			l.f.Sync()
			l.f.Close()
			return
		}
	}
}

// commitWave rotates if the active segment is full, collects every
// non-empty stripe, writes the concatenation with one write, fsyncs
// per policy (force makes SyncEverySec sync now), and publishes the
// wave outcome back to the collected stripes.
func (l *Log) commitWave(force bool) {
	if l.segOff.Load() >= int64(l.opts.SegmentBytes) {
		l.rotate()
	}

	buf := l.writeBuf[:0]
	l.collected = l.collected[:0]
	var waveMax uint64
	for i := range l.stripes {
		s := &l.stripes[i]
		s.lk.Lock()
		if len(s.buf) > 0 {
			buf = append(buf, s.buf...)
			if s.maxLSN > waveMax {
				waveMax = s.maxLSN
			}
			s.buf = s.buf[:0]
			s.maxLSN = 0
			s.seq++
			l.collected = append(l.collected, i)
			s.cond.Broadcast() // space freed
		}
		s.lk.Unlock()
	}
	l.writeBuf = buf
	if len(l.collected) == 0 {
		if force && l.unsynced {
			l.syncFile()
		}
		return
	}

	var werr error
	switch {
	case faultTrip(&l.faultSync):
		werr = errSyncFault
		l.syncFailures.Add(1)
	default:
		if _, err := l.f.WriteAt(buf, l.segOff.Load()); err != nil {
			// The write offset does not advance: a later successful
			// wave overwrites whatever partial bytes landed, so the
			// failed wave cannot leave mid-log garbage.
			werr = err
			l.syncFailures.Add(1)
		} else {
			l.segOff.Add(int64(len(buf)))
			l.bytesWritten.Add(uint64(len(buf)))
			if waveMax > l.segMaxLSN {
				l.segMaxLSN = waveMax
			}
			l.unsynced = true
			if l.opts.Sync == SyncAlways || (l.opts.Sync == SyncEverySec && (force || time.Since(l.lastSync) >= time.Second)) {
				werr = l.syncFile()
			}
		}
	}
	l.waves.Add(1)

	for _, i := range l.collected {
		s := &l.stripes[i]
		s.lk.Lock()
		s.dur = s.seq
		s.errs[s.seq%waveErrRing] = waveErr{wave: s.seq, err: werr}
		if werr != nil {
			s.failedWave, s.failedErr = s.seq, werr
		}
		s.cond.Broadcast()
		s.lk.Unlock()
	}
}

// syncFile fsyncs the active segment, counting the outcome.
func (l *Log) syncFile() error {
	if err := l.f.Sync(); err != nil {
		l.syncFailures.Add(1)
		return err
	}
	l.syncs.Add(1)
	l.unsynced = false
	l.lastSync = time.Now()
	return nil
}

// rotate seals the active segment and opens the next one. Any failure
// (including injected FaultRotate) counts, keeps the current segment
// active — it simply grows past the threshold — and the next wave
// retries.
func (l *Log) rotate() {
	if faultTrip(&l.faultRotate) {
		l.rotateFailures.Add(1)
		return
	}
	seq := l.segSeq + 1
	path := segPath(l.dir, seq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		l.rotateFailures.Add(1)
		return
	}
	var hdr [segHeaderBytes]byte
	copy(hdr[:], segMagic[:])
	putLE64(hdr[8:], seq)
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		os.Remove(path)
		l.rotateFailures.Add(1)
		return
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		l.rotateFailures.Add(1)
		return
	}
	// Seal the old segment: flush it fully before it becomes immutable.
	if l.unsynced {
		if l.syncFile() != nil {
			f.Close()
			os.Remove(path)
			return
		}
	}
	old := segInfo{
		seq:    l.segSeq,
		path:   segPath(l.dir, l.segSeq),
		bytes:  l.segOff.Load(),
		maxLSN: l.segMaxLSN,
	}
	l.f.Close()
	l.segLk.Lock()
	l.segments = append(l.segments, old)
	l.segLk.Unlock()
	l.f = f
	l.segSeq = seq
	l.segOff.Store(segHeaderBytes)
	l.segMaxLSN = 0
	if err := syncDir(l.dir); err != nil {
		l.rotateFailures.Add(1)
	}
	l.rotations.Add(1)
}
