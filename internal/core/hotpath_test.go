package core

import (
	"testing"

	"rma/internal/workload"
)

// Hot-path regression tests: the steady-state write path must not
// allocate, and the interleaved resize reader must stay linear. See
// PERFORMANCE.md for the invariants these tests pin.

// TestTargetsScratchReuses pins the satellite fix: targetsScratch's doc
// comment always promised reuse, but the seed implementation allocated a
// fresh slice per call.
func TestTargetsScratchReuses(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t1 := a.targetsScratch(8)
	t1[0] = 42
	t2 := a.targetsScratch(8)
	if &t1[0] != &t2[0] {
		t.Fatal("targetsScratch allocated a fresh buffer for an equal-size request")
	}
	t3 := a.targetsScratch(4)
	if &t1[0] != &t3[0] {
		t.Fatal("targetsScratch allocated a fresh buffer for a smaller request")
	}
	if n := len(a.targetsScratch(16)); n != 16 {
		t.Fatalf("targetsScratch(16) has len %d", n)
	}
}

// TestInsertRebalanceAllocationFree proves the acceptance criterion: a
// steady-state Insert that triggers a (non-resizing) window rebalance
// performs zero heap allocations on the clustered layout, in both
// rebalance modes.
func TestInsertRebalanceAllocationFree(t *testing.T) {
	for _, mode := range []struct {
		name string
		m    RebalanceMode
	}{{"rewired", RebalanceRewired}, {"twopass", RebalanceTwoPass}} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := testConfig() // B=8, 32-slot pages: windows >= 4 segments rewire
			cfg.Adaptive = AdaptiveOff
			cfg.Rebalance = mode.m
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Reach a steady state: enough elements that rebalances and
			// resizes have warmed every scratch buffer and the spare
			// pool, stopping just after a grow so the measured inserts
			// have maximal headroom before the next resize.
			rng := workload.NewUniform(7, 0)
			for i := 0; i < 6000; i++ {
				if err := a.Insert(rng.Next(), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			for grows := a.Stats().Grows; a.Stats().Grows == grows; {
				if err := a.Insert(rng.Next(), 1); err != nil {
					t.Fatal(err)
				}
			}
			// Fill to 80% of the root threshold: dense enough that
			// segment overflows (hence rebalances) fire regularly during
			// the measured window, with ample headroom before the next
			// resize.
			_, tauRoot := a.cal.At(a.cal.Height())
			for float64(a.Size()) < 0.8*tauRoot*float64(a.Capacity()) {
				if err := a.Insert(rng.Next(), 1); err != nil {
					t.Fatal(err)
				}
			}
			headroom := int(tauRoot*float64(a.Capacity())) - a.Size()
			const perRun, runs = 64, 5
			if need := perRun * (runs + 2); headroom < need {
				t.Fatalf("test needs %d insert headroom, have %d (retune the build phase)", need, headroom)
			}

			before := a.Stats()
			allocs := testing.AllocsPerRun(runs, func() {
				for i := 0; i < perRun; i++ {
					if err := a.Insert(rng.Next(), 1); err != nil {
						t.Fatal(err)
					}
				}
			})
			after := a.Stats()
			if after.Resizes != before.Resizes {
				t.Fatalf("a resize fired during the measured window (%d -> %d); retune the test",
					before.Resizes, after.Resizes)
			}
			if after.Rebalances == before.Rebalances {
				t.Fatalf("no rebalance fired during %d measured inserts; the test proves nothing", perRun*(runs+1))
			}
			if allocs != 0 {
				t.Errorf("steady-state insert with rebalances: %.2f allocs/run, want 0 (%d rebalances measured)",
					allocs, after.Rebalances-before.Rebalances)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAdaptiveInsertAllocationFree pins the ROADMAP open item this PR
// closes: adaptive mark processing (Detector.Marks, marksToIntervals,
// the adaptive recursion's interval splits, APMA's marked flags) used
// to allocate on every adaptive rebalance. A steady-state insert under
// a hammered (sequential) pattern must now be allocation-free while
// adaptive rebalances demonstrably fire.
func TestAdaptiveInsertAllocationFree(t *testing.T) {
	for _, pol := range []struct {
		name string
		p    AdaptivePolicy
	}{{"rma", AdaptiveRMA}, {"apma", AdaptiveAPMA}} {
		t.Run(pol.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Adaptive = pol.p
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			// Sequential ascending inserts: the hammering pattern the
			// Detector is built to recognize, so rebalances take the
			// adaptive path with pair-granular marks.
			key := int64(0)
			ins := func() {
				if err := a.Insert(key, key); err != nil {
					t.Fatal(err)
				}
				key += 2
			}
			for i := 0; i < 6000; i++ {
				ins()
			}
			for grows := a.Stats().Grows; a.Stats().Grows == grows; {
				ins()
			}
			_, tauRoot := a.cal.At(a.cal.Height())
			for float64(a.Size()) < 0.8*tauRoot*float64(a.Capacity()) {
				ins()
			}
			headroom := int(tauRoot*float64(a.Capacity())) - a.Size()
			const perRun, runs = 64, 5
			if need := perRun * (runs + 2); headroom < need {
				t.Fatalf("test needs %d insert headroom, have %d (retune the build phase)", need, headroom)
			}

			before := a.Stats()
			allocs := testing.AllocsPerRun(runs, func() {
				for i := 0; i < perRun; i++ {
					ins()
				}
			})
			after := a.Stats()
			if after.Resizes != before.Resizes {
				t.Fatalf("a resize fired during the measured window (%d -> %d); retune the test",
					before.Resizes, after.Resizes)
			}
			if after.AdaptiveRebalances == before.AdaptiveRebalances {
				t.Fatalf("no adaptive rebalance fired during %d measured inserts; the test proves nothing",
					perRun*(runs+1))
			}
			if allocs != 0 {
				t.Errorf("steady-state insert with adaptive rebalances: %.2f allocs/run, want 0 (%d adaptive rebalances measured)",
					allocs, after.AdaptiveRebalances-before.AdaptiveRebalances)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestInterleavedResizeLinearSlotScans pins the mergedReader fix: during
// an interleaved resize the reader advances a slot cursor word-parallel,
// covering each slot of the old capacity at most once. The seed
// implementation called elemKey/elemVal per element — an O(B) rescan
// from the segment base per element, O(B²) per segment — which on this
// counter would have registered ~B/2 slots per element instead of ~1/d.
func TestInterleavedResizeLinearSlotScans(t *testing.T) {
	cfg := testConfig()
	cfg.Layout = LayoutInterleaved
	cfg.Rebalance = RebalanceTwoPass
	cfg.Adaptive = AdaptiveOff
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewUniform(11, 0)

	// Settle past the first few resizes, then watch exactly one.
	for i := 0; i < 2000; i++ {
		if err := a.Insert(rng.Next(), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	oldCap := a.Capacity()
	grows := a.Stats().Grows
	scans0 := a.Stats().SlotScans
	for a.Stats().Grows == grows {
		if err := a.Insert(rng.Next(), 1); err != nil {
			t.Fatal(err)
		}
	}
	delta := a.Stats().SlotScans - scans0
	if delta == 0 {
		t.Fatal("resize did not advance SlotScans; the linearity guard is dead")
	}
	if delta > uint64(oldCap) {
		t.Errorf("interleaved resize covered %d slots for an old capacity of %d: reader is super-linear",
			delta, oldCap)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWalkerSeekAllocationFree pins the walker buffer cache: on the
// interleaved layout each segment visit compacts into an O(B) scratch
// pair, and before the one-slot cache on Array every NewWalker call
// (one per IterAscend, one per seek) paid that allocation anew. After
// one warm-up walk, seek-and-scan must allocate nothing.
func TestWalkerSeekAllocationFree(t *testing.T) {
	cfg := testConfig()
	cfg.Layout = LayoutInterleaved
	cfg.Adaptive = AdaptiveOff
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewUniform(11, 0)
	keys := make([]int64, 0, 4096)
	for i := 0; i < 4096; i++ {
		k := rng.Next()
		keys = append(keys, k)
		if err := a.Insert(k, int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Warm the cache: the first walk allocates the compaction pair.
	for range a.IterAscend(keys[0], keys[0]) {
	}

	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		lo := keys[i%len(keys)]
		i++
		w := a.NewWalker(lo, maxInt64)
		for j := 0; j < 20; j++ {
			if _, _, ok := w.Next(); !ok {
				break
			}
		}
		w.Release()
	})
	if allocs != 0 {
		t.Fatalf("walker seek-and-scan allocated %.1f times per run; want 0", allocs)
	}

	// A full range-over-func pass, including an early break, must also
	// stay allocation-free... except the iter.Seq2 closure itself, which
	// Go allocates per IterAscend call; assert the walker adds nothing
	// beyond that fixed cost.
	base := testing.AllocsPerRun(200, func() {
		for range a.IterAscend(minInt64, maxInt64) {
			break
		}
	})
	if base > 2 {
		t.Fatalf("IterAscend early break allocated %.1f times per run; want <= 2 (closure wrappers only)", base)
	}
}
