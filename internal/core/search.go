package core

import "rma/internal/staticindex"

// Find returns the value stored under key and whether it exists. With
// duplicate keys any one match is returned. Cost: one index descent plus
// one in-segment search, exactly the paper's point-lookup path.
func (a *Array) Find(key int64) (int64, bool) {
	a.stats.Lookups++
	if a.n == 0 {
		return 0, false
	}
	return a.segFind(a.ix.FindUB(key), key)
}

// segFind probes segment seg for key: the in-segment half of a point
// lookup, shared by Find and the batched FindBatch (which amortizes the
// index-descent half across sorted probes).
func (a *Array) segFind(seg int, key int64) (int64, bool) {
	switch a.cfg.Layout {
	case LayoutClustered:
		kpg, off := a.segPage(a.keys, seg)
		lo, hi := a.runBounds(seg)
		r := searchRun(kpg[off+lo:off+hi], key)
		if r >= 0 {
			vpg, voff := a.segPage(a.vals, seg)
			return vpg[voff+lo+r], true
		}
	default:
		base := seg * a.segSlots
		kpg, off := a.segPage(a.keys, seg)
		s := swarFindEq(kpg[off:off+a.segSlots], a.bitmap, base, key)
		if s >= 0 {
			vpg, voff := a.segPage(a.vals, seg)
			return vpg[voff+s-base], true
		}
	}
	return 0, false
}

// Contains reports whether key is stored.
func (a *Array) Contains(key int64) bool {
	_, ok := a.Find(key)
	return ok
}

// lowerBoundRun returns the first index in the sorted run with
// run[i] >= key (== len(run) if none). It is the one in-run search
// primitive — searchRun and upperBoundRun are thin derivations — and it
// is the branchless conditional-move halving shared with the Dynamic
// index's routing (staticindex.LowerBound).
func lowerBoundRun(run []int64, key int64) int {
	return staticindex.LowerBound(run, key)
}

// searchRun returns the index of one occurrence of key in the sorted
// run (the first, with duplicates), or -1.
func searchRun(run []int64, key int64) int {
	if i := lowerBoundRun(run, key); i < len(run) && run[i] == key {
		return i
	}
	return -1
}

// upperBoundRun returns the first index in the sorted run with
// run[i] > key: the lower bound of the next key up (every key > K is
// >= K+1 on int64), saturating at the domain maximum.
func upperBoundRun(run []int64, key int64) int {
	if key == maxInt64 {
		return len(run)
	}
	return lowerBoundRun(run, key+1)
}

// Min returns the smallest key, or ok=false when empty. One Fenwick
// rank descent routes to the first non-empty segment — O(log S), where
// a linear cards walk would pay O(S) on a sparse front (a freshly
// grown array concentrates elements high).
func (a *Array) Min() (int64, bool) {
	if a.n == 0 {
		return 0, false
	}
	seg, _ := a.fen.find(0)
	return a.segMin(seg), true
}

// Max returns the largest key, or ok=false when empty: the Fenwick
// descent for the last global rank, then the in-segment offset it
// already knows. O(log S).
func (a *Array) Max() (int64, bool) {
	if a.n == 0 {
		return 0, false
	}
	seg, before := a.fen.find(int64(a.n) - 1)
	return a.elemKey(seg, a.n-1-int(before)), true
}

// neighborBefore returns the key preceding (seg, rank) in global order,
// with ok=false at the array start. rank counts elements within seg.
func (a *Array) neighborBefore(seg, rank int) (int64, bool) {
	if rank > 0 {
		return a.elemKey(seg, rank-1), true
	}
	for s := seg - 1; s >= 0; s-- {
		if c := int(a.cards[s]); c > 0 {
			return a.elemKey(s, c-1), true
		}
	}
	return 0, false
}

// neighborAfter returns the key following (seg, rank) in global order,
// with ok=false at the array end.
func (a *Array) neighborAfter(seg, rank int) (int64, bool) {
	if rank < int(a.cards[seg])-1 {
		return a.elemKey(seg, rank+1), true
	}
	for s := seg + 1; s < a.numSegs; s++ {
		if a.cards[s] > 0 {
			return a.elemKey(s, 0), true
		}
	}
	return 0, false
}

// elemKey returns the rank-th smallest key of segment seg. On the
// interleaved layout the slot is found with a word-parallel in-segment
// select — O(B/64) popcounts, not an O(B) bit-by-bit rescan.
func (a *Array) elemKey(seg, rank int) int64 {
	switch a.cfg.Layout {
	case LayoutClustered:
		pg, off := a.segPage(a.keys, seg)
		lo, _ := a.runBounds(seg)
		return pg[off+lo+rank]
	default:
		base := seg * a.segSlots
		s := bmSelect(a.bitmap, base, base+a.segSlots, rank)
		if s < 0 {
			panic("core: elemKey rank out of range")
		}
		pg, off := a.pageAt(a.keys, s)
		return pg[off]
	}
}
