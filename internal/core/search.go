package core

// Find returns the value stored under key and whether it exists. With
// duplicate keys any one match is returned. Cost: one index descent plus
// one in-segment search, exactly the paper's point-lookup path.
func (a *Array) Find(key int64) (int64, bool) {
	a.stats.Lookups++
	if a.n == 0 {
		return 0, false
	}
	seg := a.ix.FindUB(key)
	switch a.cfg.Layout {
	case LayoutClustered:
		kpg, off := a.segPage(a.keys, seg)
		lo, hi := a.runBounds(seg)
		r := searchRun(kpg[off+lo:off+hi], key)
		if r >= 0 {
			vpg, voff := a.segPage(a.vals, seg)
			return vpg[voff+lo+r], true
		}
	default:
		base := seg * a.segSlots
		end := base + a.segSlots
		kpg, off := a.segPage(a.keys, seg)
		for s := bmNext(a.bitmap, base, end); s != -1; s = bmNext(a.bitmap, s+1, end) {
			k := kpg[off+s-base]
			if k == key {
				vpg, voff := a.segPage(a.vals, seg)
				return vpg[voff+s-base], true
			}
			if k > key {
				break
			}
		}
	}
	return 0, false
}

// Contains reports whether key is stored.
func (a *Array) Contains(key int64) bool {
	_, ok := a.Find(key)
	return ok
}

// searchRun binary-searches a sorted dense run for key, returning the
// index of one occurrence or -1.
func searchRun(run []int64, key int64) int {
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if run[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(run) && run[lo] == key {
		return lo
	}
	return -1
}

// lowerBoundRun returns the first index in the sorted run with
// run[i] >= key (== len(run) if none).
func lowerBoundRun(run []int64, key int64) int {
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if run[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBoundRun returns the first index in the sorted run with
// run[i] > key.
func upperBoundRun(run []int64, key int64) int {
	lo, hi := 0, len(run)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if run[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Min returns the smallest key, or ok=false when empty.
func (a *Array) Min() (int64, bool) {
	if a.n == 0 {
		return 0, false
	}
	for s := 0; s < a.numSegs; s++ {
		if a.cards[s] > 0 {
			return a.segMin(s), true
		}
	}
	return 0, false
}

// Max returns the largest key, or ok=false when empty.
func (a *Array) Max() (int64, bool) {
	if a.n == 0 {
		return 0, false
	}
	for s := a.numSegs - 1; s >= 0; s-- {
		if a.cards[s] == 0 {
			continue
		}
		switch a.cfg.Layout {
		case LayoutClustered:
			pg, off := a.segPage(a.keys, s)
			_, hi := a.runBounds(s)
			return pg[off+hi-1], true
		default:
			base := s * a.segSlots
			if i := bmPrev(a.bitmap, base, base+a.segSlots); i >= 0 {
				pg, off := a.pageAt(a.keys, i)
				return pg[off], true
			}
		}
	}
	return 0, false
}

// neighborBefore returns the key preceding (seg, rank) in global order,
// with ok=false at the array start. rank counts elements within seg.
func (a *Array) neighborBefore(seg, rank int) (int64, bool) {
	if rank > 0 {
		return a.elemKey(seg, rank-1), true
	}
	for s := seg - 1; s >= 0; s-- {
		if c := int(a.cards[s]); c > 0 {
			return a.elemKey(s, c-1), true
		}
	}
	return 0, false
}

// neighborAfter returns the key following (seg, rank) in global order,
// with ok=false at the array end.
func (a *Array) neighborAfter(seg, rank int) (int64, bool) {
	if rank < int(a.cards[seg])-1 {
		return a.elemKey(seg, rank+1), true
	}
	for s := seg + 1; s < a.numSegs; s++ {
		if a.cards[s] > 0 {
			return a.elemKey(s, 0), true
		}
	}
	return 0, false
}

// elemKey returns the rank-th smallest key of segment seg. On the
// interleaved layout the slot is found with a word-parallel in-segment
// select — O(B/64) popcounts, not an O(B) bit-by-bit rescan.
func (a *Array) elemKey(seg, rank int) int64 {
	switch a.cfg.Layout {
	case LayoutClustered:
		pg, off := a.segPage(a.keys, seg)
		lo, _ := a.runBounds(seg)
		return pg[off+lo+rank]
	default:
		base := seg * a.segSlots
		s := bmSelect(a.bitmap, base, base+a.segSlots, rank)
		if s < 0 {
			panic("core: elemKey rank out of range")
		}
		pg, off := a.pageAt(a.keys, s)
		return pg[off]
	}
}
