package core

import (
	"testing"

	"rma/internal/workload"
)

// Differential test of the navigation, order-statistic and iterator
// surface across engine configurations the facade does not expose:
// interleaved layout, dynamic side index, log-sized segments, two-pass
// rebalances — the walker and rank paths all have layout-specific code.

func navConfigs() map[string]Config {
	rma := DefaultConfig()
	rma.SegmentSlots = 16
	rma.PageSlots = 64

	tpma := BaselineConfig()
	tpma.PageSlots = 64

	inter := DefaultConfig()
	inter.SegmentSlots = 16
	inter.PageSlots = 64
	inter.Layout = LayoutInterleaved
	inter.Rebalance = RebalanceTwoPass

	return map[string]Config{"rma": rma, "tpma": tpma, "interleaved-static": inter}
}

func navLB(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func navUB(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func TestNavigationDifferential(t *testing.T) {
	const keyRange = 3000
	val := func(k int64) int64 { return k*5 + 1 }
	for name, cfg := range navConfigs() {
		t.Run(name, func(t *testing.T) {
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := workload.NewRNG(13)
			var model []int64
			insert := func(k int64) {
				i := navUB(model, k)
				model = append(model, 0)
				copy(model[i+1:], model[i:])
				model[i] = k
				if err := a.Insert(k, val(k)); err != nil {
					t.Fatal(err)
				}
			}
			remove := func(k int64) {
				got, err := a.Delete(k)
				if err != nil {
					t.Fatal(err)
				}
				i := navLB(model, k)
				want := i < len(model) && model[i] == k
				if got != want {
					t.Fatalf("Delete(%d) = %v, want %v", k, got, want)
				}
				if want {
					model = append(model[:i], model[i+1:]...)
				}
			}
			check := func() {
				t.Helper()
				if err := a.Validate(); err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 25; trial++ {
					x := int64(rng.Uint64n(keyRange+400)) - 200
					if got, want := a.Rank(x), navLB(model, x); got != want {
						t.Fatalf("Rank(%d) = %d, want %d", x, got, want)
					}
					fk, fv, fok := a.Floor(x)
					if i := navUB(model, x) - 1; i >= 0 {
						if !fok || fk != model[i] || fv != val(model[i]) {
							t.Fatalf("Floor(%d) = (%d,%d,%v), want %d", x, fk, fv, fok, model[i])
						}
					} else if fok {
						t.Fatalf("Floor(%d) spurious", x)
					}
					ck, cv, cok := a.Ceiling(x)
					if i := navLB(model, x); i < len(model) {
						if !cok || ck != model[i] || cv != val(model[i]) {
							t.Fatalf("Ceiling(%d) = (%d,%d,%v), want %d", x, ck, cv, cok, model[i])
						}
					} else if cok {
						t.Fatalf("Ceiling(%d) spurious", x)
					}
					lo := x - int64(rng.Uint64n(500))
					hi := x + int64(rng.Uint64n(500))
					if got, want := a.CountRange(lo, hi), navUB(model, hi)-navLB(model, lo); got != want {
						t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
					}
					// Ascending walk over [lo, hi].
					i := navLB(model, lo)
					for k, v := range a.IterAscend(lo, hi) {
						if i >= len(model) || model[i] > hi || k != model[i] || v != val(k) {
							t.Fatalf("IterAscend(%d,%d) mismatch at %d: got %d", lo, hi, i, k)
						}
						i++
					}
					if i != navUB(model, hi) && navLB(model, lo) < navUB(model, hi) {
						t.Fatalf("IterAscend(%d,%d) stopped at %d, want %d", lo, hi, i, navUB(model, hi))
					}
					// Descending walk over [lo, hi].
					j := navUB(model, hi) - 1
					for k, v := range a.IterDescend(lo, hi) {
						if j < 0 || model[j] < lo || k != model[j] || v != val(k) {
							t.Fatalf("IterDescend(%d,%d) mismatch at %d: got %d", lo, hi, j, k)
						}
						j--
					}
				}
				for _, i := range []int{-1, 0, len(model) / 2, len(model) - 1, len(model)} {
					k, v, ok := a.Select(i)
					if i < 0 || i >= len(model) {
						if ok {
							t.Fatalf("Select(%d) spurious with n=%d", i, len(model))
						}
						continue
					}
					if !ok || k != model[i] || v != val(model[i]) {
						t.Fatalf("Select(%d) = (%d,%d,%v), want %d", i, k, v, ok, model[i])
					}
				}
				// Walker with SeekGE repositioning.
				w := a.NewWalker(minInt64, maxInt64)
				x := int64(rng.Uint64n(keyRange))
				w.SeekGE(x)
				if got, want := w.Remaining(), len(model)-navLB(model, x); got != want {
					t.Fatalf("Walker.Remaining after SeekGE(%d) = %d, want %d", x, got, want)
				}
				if i := navLB(model, x); i < len(model) {
					k, v, ok := w.Next()
					if !ok || k != model[i] || v != val(model[i]) {
						t.Fatalf("Walker.Next after SeekGE(%d) = (%d,%d,%v), want %d", x, k, v, ok, model[i])
					}
				}
			}

			check() // empty array
			for round := 0; round < 8; round++ {
				for op := 0; op < 300; op++ {
					k := int64(rng.Uint64n(keyRange))
					if round >= 5 && rng.Uint64n(100) < 70 || round < 5 && rng.Uint64n(100) < 25 {
						remove(k)
					} else {
						insert(k)
					}
				}
				check()
			}
			// Drain completely: navigation on the emptied array.
			for len(model) > 0 {
				remove(model[len(model)-1])
			}
			check()
		})
	}
}

// TestNavigationBulk checks that bulk loads and bulk updates keep the
// Fenwick prefix sums consistent (applyCards/reset paths).
func TestNavigationBulk(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SegmentSlots = 16
	cfg.PageSlots = 64
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(21)
	var model []int64
	for round := 0; round < 6; round++ {
		batch := make([]int64, 500)
		for i := range batch {
			batch[i] = int64(rng.Uint64n(5000))
		}
		var dels []int64
		if round > 2 {
			for i := 0; i < 300 && len(model) > 0; i++ {
				dels = append(dels, model[int(rng.Uint64n(uint64(len(model))))])
			}
		}
		if err := a.BulkUpdate(Batch{Keys: batch, Vals: batch}, dels); err != nil {
			t.Fatal(err)
		}
		for _, k := range dels {
			if i := navLB(model, k); i < len(model) && model[i] == k {
				model = append(model[:i], model[i+1:]...)
			}
		}
		for _, k := range batch {
			i := navUB(model, k)
			model = append(model, 0)
			copy(model[i+1:], model[i:])
			model[i] = k
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for trial := 0; trial < 20; trial++ {
			x := int64(rng.Uint64n(5200))
			if got, want := a.Rank(x), navLB(model, x); got != want {
				t.Fatalf("round %d: Rank(%d) = %d, want %d", round, x, got, want)
			}
			i := int(rng.Uint64n(uint64(len(model))))
			if k, _, ok := a.Select(i); !ok || k != model[i] {
				t.Fatalf("round %d: Select(%d) = %d, want %d", round, i, k, model[i])
			}
		}
	}
}
