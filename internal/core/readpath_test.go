package core

import (
	"testing"

	"rma/internal/workload"
)

// Differential tests for the optimistic read view: ReadFind, ReadFloor
// and ReadCeiling must agree exactly with their locked counterparts on
// a quiescent array across every layout/index configuration, keep
// agreeing across rebalances and resizes (view republication), and
// fail closed — valid=false, never garbage — when handed a stale view.

func readpathConfigs() map[string]Config {
	small := func(c Config) Config {
		c.SegmentSlots = 8
		c.PageSlots = 32
		return c
	}
	iv := small(DefaultConfig())
	iv.Layout = LayoutInterleaved
	st := small(DefaultConfig())
	st.Index = IndexStatic
	dyn := small(DefaultConfig())
	dyn.Index = IndexDynamic
	return map[string]Config{
		"clustered-eytzinger":   small(DefaultConfig()),
		"interleaved-eytzinger": iv,
		"clustered-static":      st,
		"clustered-dynamic":     dyn,
		"baseline":              small(BaselineConfig()),
	}
}

func TestReadPathDifferential(t *testing.T) {
	for name, cfg := range readpathConfigs() {
		t.Run(name, func(t *testing.T) {
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rng := workload.NewRNG(42)
			keys := make(map[int64]bool)
			for i := 0; i < 5_000; i++ {
				k := int64(rng.Uint64n(16_384))
				if rng.Uint64n(100) < 25 && len(keys) > 0 {
					if _, err := a.Delete(k); err != nil {
						t.Fatal(err)
					}
					delete(keys, k)
				} else {
					if err := a.Insert(k, k*3+1); err != nil {
						t.Fatal(err)
					}
					keys[k] = true
				}
				if i%500 != 499 {
					continue
				}
				// Mid-stream agreement: the view has survived however
				// many rebalances, spreads and resizes the stream forced.
				for p := 0; p < 200; p++ {
					x := int64(rng.Uint64n(17_000)) - 300
					checkReadAgainstLocked(t, a, x)
					if t.Failed() {
						t.FailNow()
					}
				}
			}
		})
	}
}

func checkReadAgainstLocked(t *testing.T, a *Array, x int64) {
	t.Helper()
	wantV, wantOK := a.Find(x)
	gotV, gotOK, valid := a.ReadFind(x)
	if !valid {
		t.Errorf("ReadFind(%d) invalid on a quiescent array", x)
		return
	}
	if gotOK != wantOK || (wantOK && gotV != wantV) {
		t.Errorf("ReadFind(%d) = (%d,%v), Find says (%d,%v)", x, gotV, gotOK, wantV, wantOK)
	}
	fk, fv, fok := a.Floor(x)
	gfk, gfv, gfok, fvalid := a.ReadFloor(x)
	if !fvalid {
		t.Errorf("ReadFloor(%d) invalid on a quiescent array", x)
		return
	}
	if gfok != fok || (fok && (gfk != fk || gfv != fv)) {
		t.Errorf("ReadFloor(%d) = (%d,%d,%v), Floor says (%d,%d,%v)", x, gfk, gfv, gfok, fk, fv, fok)
	}
	ck, cv, cok := a.Ceiling(x)
	gck, gcv, gcok, cvalid := a.ReadCeiling(x)
	if !cvalid {
		t.Errorf("ReadCeiling(%d) invalid on a quiescent array", x)
		return
	}
	if gcok != cok || (cok && (gck != ck || gcv != cv)) {
		t.Errorf("ReadCeiling(%d) = (%d,%d,%v), Ceiling says (%d,%d,%v)", x, gck, gcv, gcok, ck, cv, cok)
	}
}

// TestReadPathStaleViewFailsClosed pins the defensive contract: a view
// captured before a resize, probed against the post-resize array, must
// either answer correctly or report valid=false — never panic, never
// return a value that was not stored. The shard layer's version check
// would discard the answer either way; this test proves the view layer
// alone cannot crash on torn state.
func TestReadPathStaleViewFailsClosed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SegmentSlots = 8
	cfg.PageSlots = 32
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 64; i++ {
		if err := a.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	stale := a.view.Load()
	if stale == nil {
		t.Fatal("no view published")
	}
	// Force many resizes so the stale view's layout is thoroughly wrong.
	for i := int64(64); i < 50_000; i++ {
		if err := a.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(49_999); i >= 1_000; i-- {
		if _, err := a.Delete(i); err != nil {
			t.Fatal(err)
		}
	}
	for x := int64(-10); x < 1_100; x++ {
		if v, ok, valid := stale.find(x); valid && ok {
			// A stale-but-valid hit must still be a value that was stored
			// under some key at some point (all values equal their key
			// here modulo the two insert loops).
			if v != x {
				t.Fatalf("stale view returned fabricated value %d for key %d", v, x)
			}
		}
		stale.floor(x)   // must not panic
		stale.ceiling(x) // must not panic
	}
}

// TestReadPathAllocationFree pins the three view probes at zero
// allocations — they are //rma:noalloc roots, and the escape gate
// verifies the closure statically; this is the dynamic witness.
func TestReadPathAllocationFree(t *testing.T) {
	cfg := DefaultConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10_000; i++ {
		if err := a.Insert(i*2, i); err != nil {
			t.Fatal(err)
		}
	}
	var sink int64
	if allocs := testing.AllocsPerRun(50, func() {
		for x := int64(0); x < 64; x++ {
			v, _, _ := a.ReadFind(x * 37)
			fk, _, _, _ := a.ReadFloor(x * 37)
			ck, _, _, _ := a.ReadCeiling(x * 37)
			sink += v + fk + ck
		}
	}); allocs != 0 {
		t.Errorf("ReadFind/ReadFloor/ReadCeiling: %.1f allocs/run, want 0", allocs)
	}
	_ = sink
}
