package core

// Batched point lookups. A batch sorts its probe set once and walks the
// sorted probes left to right, remembering the last routed segment and
// the separator bounding it on the right: every probe that still falls
// under that separator skips the index descent entirely. On probe sets
// with any key locality (sorted streams, hot ranges, merge-join sides)
// most probes resolve with zero descents; on uniform random sets the
// sort buys page-ordered access to the key columns. The probe ordering
// is an allocation-free LSD radix sort — a comparison sort's indirect
// calls would cost more than the descents it saves.

// Lookup is one FindBatch/GetBatch result: the value found under the
// probed key, and whether the key was present.
type Lookup struct {
	Val int64
	OK  bool
}

// probe pairs a lookup key with its position in the caller's batch, so
// the probe set can be sorted without losing the output order.
type probe struct {
	k int64
	i int32
}

const (
	// batchSortMin is the smallest batch worth ordering at all; below it
	// the per-key descents are cheaper than any probe shuffling.
	batchSortMin = 8
	// batchRadixMin is the smallest batch worth the radix sort's fixed
	// histogram cost; smaller batches insertion-sort.
	batchRadixMin = 64
)

// FindBatch resolves every key of the batch, writing results into out
// (reused when its capacity suffices, grown otherwise) and returning it
// with len(out) == len(keys): out[i] answers keys[i]. Steady-state calls
// are allocation-free — the probe ordering lives in persistent scratch
// on the array, the same discipline as the rebalance buffers (see
// PERFORMANCE.md).
//
//rma:noalloc
func (a *Array) FindBatch(keys []int64, out []Lookup) []Lookup {
	if cap(out) < len(keys) {
		out = make([]Lookup, len(keys)) //rma:alloc-ok — grows the caller’s result buffer once
	}
	out = out[:len(keys)]
	a.stats.Lookups += uint64(len(keys))
	if len(keys) == 0 {
		return out
	}
	if a.n == 0 {
		for i := range out {
			out[i] = Lookup{}
		}
		return out
	}
	if len(keys) < batchSortMin {
		for i, k := range keys {
			v, ok := a.segFind(a.ix.FindUB(k), k)
			out[i] = Lookup{Val: v, OK: ok}
		}
		return out
	}

	// A pre-sorted batch — the streaming/merge-join case — resolves
	// straight off the caller's keys: no probe copy, no sort.
	sorted := true
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		cur := a.startBatch(keys[0])
		for i, k := range keys {
			out[i] = a.nextProbe(&cur, k)
		}
		return out
	}

	ps := a.probeScratch(len(keys))
	for i, k := range keys {
		ps[i] = probe{k: k, i: int32(i)}
	}
	sortProbes(ps, a.probeTmp)
	cur := a.startBatch(ps[0].k)
	for _, p := range ps {
		out[p.i] = a.nextProbe(&cur, p.k)
	}
	return out
}

// batchCursor is the memoized routing state of one ascending batch
// walk: the last routed segment and the separator bounding it on the
// right.
type batchCursor struct {
	seg   int
	upper int64
}

// startBatch routes the walk's first (smallest) probe with one full
// index descent.
func (a *Array) startBatch(first int64) batchCursor {
	seg := a.ix.FindUB(first)
	return batchCursor{seg: seg, upper: a.segUpperSep(seg)}
}

// nextProbe resolves one probe of an ascending walk: reuse the memoized
// segment while the probe stays under its right separator, otherwise
// gallop the cursor forward.
func (a *Array) nextProbe(c *batchCursor, k int64) Lookup {
	if k >= c.upper {
		c.seg = a.gallopSeg(c.seg, k)
		c.upper = a.segUpperSep(c.seg)
	}
	v, ok := a.segFind(c.seg, k)
	return Lookup{Val: v, OK: ok}
}

// gallopSeg advances the batch cursor from segment seg — whose
// separator is known to be <= k — to FindUB(k) by exponential search
// over the separator ordinals (ix.Key is O(1) on every index kind):
// O(log d) for a cursor that moves d segments, so a sorted batch pays
// for the distance it covers, not a full root descent per probe.
func (a *Array) gallopSeg(seg int, k int64) int {
	lo := seg
	hi := a.numSegs // exclusive: separators at (lo, hi) are candidates
	for step := 1; lo+step < hi; step <<= 1 {
		if a.ix.Key(lo+step) > k {
			hi = lo + step
			break
		}
		lo += step
	}
	// Invariant: sep(lo) <= k, and sep(hi) > k (or hi == numSegs).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.ix.Key(mid) <= k {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// segUpperSep returns the separator bounding segment seg on the right:
// the smallest key that can no longer live in seg. Probes below it reuse
// seg without a descent — separators are non-decreasing, so every
// segment right of seg routes only keys >= this bound.
func (a *Array) segUpperSep(seg int) int64 {
	if seg+1 < a.numSegs {
		return a.ix.Key(seg + 1)
	}
	return maxInt64
}

// probeScratch returns the persistent probe buffers at length n, growing
// them only when a larger batch than ever before arrives.
func (a *Array) probeScratch(n int) []probe {
	if cap(a.probeBuf) < n {
		a.probeBuf = make([]probe, n) //rma:alloc-ok — scratch grows to the largest batch seen
		a.probeTmp = make([]probe, n) //rma:alloc-ok — scratch grows to the largest batch seen
	}
	a.probeTmp = a.probeTmp[:n]
	return a.probeBuf[:n]
}

// sortProbes orders ps by key ascending, stably, without allocating:
// insertion sort for small batches, LSD radix sort (8-bit digits over
// the sign-flipped key) through tmp for the rest. tmp must be at least
// len(ps) long.
func sortProbes(ps, tmp []probe) {
	n := len(ps)
	if n < batchRadixMin {
		for i := 1; i < n; i++ {
			p := ps[i]
			j := i - 1
			for j >= 0 && ps[j].k > p.k {
				ps[j+1] = ps[j]
				j--
			}
			ps[j+1] = p
		}
		return
	}

	// One pass builds all eight digit histograms; passes whose digit is
	// constant across the batch (common in clustered key ranges) are
	// skipped outright.
	const signFlip = uint64(1) << 63
	var hist [8][256]int32
	for _, p := range ps {
		u := uint64(p.k) ^ signFlip
		hist[0][u&0xff]++
		hist[1][(u>>8)&0xff]++
		hist[2][(u>>16)&0xff]++
		hist[3][(u>>24)&0xff]++
		hist[4][(u>>32)&0xff]++
		hist[5][(u>>40)&0xff]++
		hist[6][(u>>48)&0xff]++
		hist[7][(u>>56)&0xff]++
	}
	src, dst := ps, tmp[:n]
	for b := 0; b < 8; b++ {
		h := &hist[b]
		shift := uint(b * 8)
		if h[(uint64(src[0].k)^signFlip)>>shift&0xff] == int32(n) {
			continue // every key shares this digit
		}
		var pos [256]int32
		var sum int32
		for d := 0; d < 256; d++ {
			pos[d] = sum
			sum += h[d]
		}
		for _, p := range src {
			d := (uint64(p.k) ^ signFlip) >> shift & 0xff
			dst[pos[d]] = p
			pos[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &ps[0] {
		copy(ps, src)
	}
}
