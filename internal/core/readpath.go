package core

import (
	"sync/atomic"

	"rma/internal/vmem"
)

// The lock-free read path (see CONCURRENCY.md, "Lock-free reads").
//
// A seqlock reader cannot touch the Array's working fields directly:
// a resize replaces whole slice headers (cards, bitmap, the page
// tables), and a torn read of a slice header — pointer from one epoch,
// length from another — is undefined behavior territory, unlike a torn
// read of an int64 element, which the version revalidation simply
// rejects. The split is therefore:
//
//   - readView captures every reader-reachable header (geometry, cards,
//     bitmap, index, page tables) in one immutable struct published
//     through an atomic pointer. It is republished only at the cold
//     points where geometry changes — resetDerived, the resizeTo tail,
//     durable Open — all of which run under the shard's write lock.
//   - Between publishes, writers mutate only word-sized values
//     reachable from the view: int64 elements and int32 cards in place,
//     page-table entries via Swap's single pointer store, separator
//     words via ix.Update. Word-sized loads are atomic on every
//     supported 64-bit platform, so a racing reader sees either the old
//     or the new word, never a blend — and either way the shard's
//     seqlock version has changed, so the value is discarded and the
//     read retried.
//   - A reader holding a stale view (captured just before a publish)
//     reads from the *old* headers: the old cards/bitmap/pages are kept
//     alive by the view itself (Go's GC is the RCU grace period for
//     headers), and the retired physical pages behind a stale page
//     table are kept unscribbled by the vmem epoch gate until the
//     reader's epoch passes. Values read this way still fail the
//     version check and are discarded; what the view+gate guarantee is
//     memory safety and bounded garbage, not freshness.
//
// Every Read* method is defensive: garbage geometry (a card beyond the
// segment size, a bitmap shorter than the capacity, a rank with no
// matching occupied slot) returns valid=false instead of panicking,
// because a reader racing a publish can observe any mix of old and new
// words. The shard layer retries on valid=false exactly as it does on a
// version mismatch.

// readView is one immutable snapshot of the Array's reader-reachable
// headers. Fields are never mutated after publish; the slices they
// point at are mutated word-by-word by writers (see above).
type readView struct {
	layout    Layout
	numSegs   int
	segSlots  int
	pageShift uint
	pageSlots int
	cards     []int32
	bitmap    []uint64
	ix        segIndex
	keysTab   [][]int64
	valsTab   [][]int64
}

// publishView captures the current headers into a fresh readView and
// publishes it. Called at every geometry change, under the shard's
// write lock; the allocation is part of the (already allocating)
// resize/build machinery.
func (a *Array) publishView() {
	v := &readView{
		layout:    a.cfg.Layout,
		numSegs:   a.numSegs,
		segSlots:  a.segSlots,
		pageShift: a.pageShift,
		pageSlots: a.cfg.PageSlots,
		cards:     a.cards,
		bitmap:    a.bitmap,
		ix:        a.ix,
		keysTab:   a.keys.Table(),
		valsTab:   a.vals.Table(),
	}
	a.view.Store(v)
}

// AttachEpochGate routes both page spaces' retirement through g, so
// rebalance page swaps defer recycling until readers quiesce. Called
// once before the owning shard is shared.
func (a *Array) AttachEpochGate(g *vmem.EpochGate) {
	a.keys.AttachEpochGate(g)
	a.vals.AttachEpochGate(g)
}

// ReadFind is the lock-free counterpart of Find: it resolves key
// against the published view without touching the Array's mutable
// state (no stats, no scratch). valid=false means the view was torn by
// a concurrent writer and the caller must retry (or fall back to the
// locked path); ok is meaningful only when valid is true.
//
//rma:noalloc
func (a *Array) ReadFind(key int64) (val int64, ok, valid bool) {
	v := a.view.Load()
	if v == nil {
		return 0, false, false
	}
	return v.find(key)
}

// ReadFloor is the lock-free counterpart of Floor (same contract as
// ReadFind).
//
//rma:noalloc
func (a *Array) ReadFloor(x int64) (key, val int64, ok, valid bool) {
	v := a.view.Load()
	if v == nil {
		return 0, 0, false, false
	}
	return v.floor(x)
}

// ReadCeiling is the lock-free counterpart of Ceiling (same contract
// as ReadFind).
//
//rma:noalloc
func (a *Array) ReadCeiling(x int64) (key, val int64, ok, valid bool) {
	v := a.view.Load()
	if v == nil {
		return 0, 0, false, false
	}
	return v.ceiling(x)
}

// card returns segment seg's cardinality clamped to the view's
// geometry; ok=false flags a torn value.
func (v *readView) card(seg int) (int, bool) {
	if seg < 0 || seg >= len(v.cards) {
		return 0, false
	}
	c := int(v.cards[seg])
	if c < 0 || c > v.segSlots {
		return 0, false
	}
	return c, true
}

// runBounds mirrors Array.runBounds with an explicit cardinality.
func (v *readView) runBounds(seg, c int) (lo, hi int) {
	if seg&1 == 0 {
		return v.segSlots - c, v.segSlots
	}
	return 0, c
}

// segAt fetches segment seg's key and value pages defensively: every
// bound is validated against the captured headers, so a reader racing a
// resize gets ok=false instead of an out-of-range panic.
func (v *readView) segAt(seg int) (kpg, vpg []int64, off int, ok bool) {
	slot := seg * v.segSlots
	p := slot >> v.pageShift
	if p < 0 || p >= len(v.keysTab) || p >= len(v.valsTab) {
		return nil, nil, 0, false
	}
	kpg, vpg = v.keysTab[p], v.valsTab[p]
	off = slot & (v.pageSlots - 1)
	if off+v.segSlots > len(kpg) || off+v.segSlots > len(vpg) {
		return nil, nil, 0, false
	}
	if v.layout == LayoutInterleaved && (slot+v.segSlots+63)>>6 > len(v.bitmap) {
		return nil, nil, 0, false
	}
	return kpg, vpg, off, true
}

// find resolves one point lookup against the view. The last result is
// the validity flag; the first two mirror Find's (value, found).
func (v *readView) find(key int64) (int64, bool, bool) {
	seg := v.ix.FindUB(key)
	if seg < 0 || seg >= v.numSegs {
		return 0, false, false
	}
	c, cok := v.card(seg)
	if !cok {
		return 0, false, false
	}
	kpg, vpg, off, ok := v.segAt(seg)
	if !ok {
		return 0, false, false
	}
	if v.layout == LayoutClustered {
		lo, hi := v.runBounds(seg, c)
		r := searchRun(kpg[off+lo:off+hi], key)
		if r < 0 {
			return 0, false, true
		}
		return vpg[off+lo+r], true, true
	}
	base := seg * v.segSlots
	s := swarFindEq(kpg[off:off+v.segSlots], v.bitmap, base, key)
	if s < 0 {
		return 0, false, true
	}
	return vpg[off+s-base], true, true
}

// elem returns the rank-th element of segment seg, defensively.
func (v *readView) elem(seg, rank int) (key, val int64, ok bool) {
	if rank < 0 {
		return 0, 0, false
	}
	kpg, vpg, off, segOK := v.segAt(seg)
	if !segOK {
		return 0, 0, false
	}
	if v.layout == LayoutClustered {
		c, cok := v.card(seg)
		if !cok || rank >= c {
			return 0, 0, false
		}
		lo, _ := v.runBounds(seg, c)
		return kpg[off+lo+rank], vpg[off+lo+rank], true
	}
	base := seg * v.segSlots
	s := bmSelect(v.bitmap, base, base+v.segSlots, rank)
	if s < 0 {
		return 0, 0, false
	}
	return kpg[off+s-base], vpg[off+s-base], true
}

// segUpperBound counts elements of seg with key <= x (view mirror of
// Array.segUpperBound).
func (v *readView) segUpperBound(seg, c int, x int64) (int, bool) {
	kpg, _, off, ok := v.segAt(seg)
	if !ok {
		return 0, false
	}
	if v.layout == LayoutClustered {
		lo, hi := v.runBounds(seg, c)
		return upperBoundRun(kpg[off+lo:off+hi], x), true
	}
	base := seg * v.segSlots
	return swarUpperBound(kpg[off:off+v.segSlots], v.bitmap, base, x), true
}

// segLowerBound counts elements of seg with key < x.
func (v *readView) segLowerBound(seg, c int, x int64) (int, bool) {
	kpg, _, off, ok := v.segAt(seg)
	if !ok {
		return 0, false
	}
	if v.layout == LayoutClustered {
		lo, hi := v.runBounds(seg, c)
		return lowerBoundRun(kpg[off+lo:off+hi], x), true
	}
	base := seg * v.segSlots
	return swarLowerBound(kpg[off:off+v.segSlots], v.bitmap, base, x), true
}

// floor mirrors Array.Floor against the view.
func (v *readView) floor(x int64) (key, val int64, ok, valid bool) {
	seg := v.ix.FindUB(x)
	if seg < 0 || seg >= v.numSegs {
		return 0, 0, false, false
	}
	c, cok := v.card(seg)
	if !cok {
		return 0, 0, false, false
	}
	if c > 0 {
		r, rok := v.segUpperBound(seg, c, x)
		if !rok {
			return 0, 0, false, false
		}
		if r > 0 {
			k, vv, eok := v.elem(seg, r-1)
			if !eok {
				return 0, 0, false, false
			}
			return k, vv, true, true
		}
	}
	for s := seg - 1; s >= 0; s-- {
		sc, sok := v.card(s)
		if !sok {
			return 0, 0, false, false
		}
		if sc > 0 {
			k, vv, eok := v.elem(s, sc-1)
			if !eok {
				return 0, 0, false, false
			}
			return k, vv, true, true
		}
	}
	return 0, 0, false, true
}

// ceiling mirrors Array.Ceiling against the view.
func (v *readView) ceiling(x int64) (key, val int64, ok, valid bool) {
	seg := v.ix.FindLB(x)
	if seg < 0 || seg >= v.numSegs {
		return 0, 0, false, false
	}
	c, cok := v.card(seg)
	if !cok {
		return 0, 0, false, false
	}
	if c > 0 {
		r, rok := v.segLowerBound(seg, c, x)
		if !rok {
			return 0, 0, false, false
		}
		if r < c {
			k, vv, eok := v.elem(seg, r)
			if !eok {
				return 0, 0, false, false
			}
			return k, vv, true, true
		}
	}
	for s := seg + 1; s < v.numSegs; s++ {
		sc, sok := v.card(s)
		if !sok {
			return 0, 0, false, false
		}
		if sc > 0 {
			k, vv, eok := v.elem(s, 0)
			if !eok {
				return 0, 0, false, false
			}
			return k, vv, true, true
		}
	}
	return 0, 0, false, true
}

// viewPtr is a named alias so Array's field declaration stays tidy.
type viewPtr = atomic.Pointer[readView]
