package core

import "fmt"

// Validate checks every structural invariant of the array. Tests call it
// after operation sequences; it is deliberately exhaustive and O(n).
//
// Invariants:
//  1. cards sum to n; every card in [0, B].
//  2. Clustered: each segment's run packs to the correct end (parity).
//     Interleaved: bitmap popcount per segment matches cards.
//  3. Keys are globally sorted across the traversal order.
//  4. Separators: for every segment j >= 1, all keys in segments < j are
//     <= sep(j) and all keys in segments >= j are >= sep(j); for a
//     non-empty segment sep(j) equals its minimum, for an empty one it
//     equals the minimum of the nearest non-empty segment to the right
//     (or unsetSep).
//  5. Values travel with keys: Find on every stored key succeeds.
//  6. Geometry: capacity = numSegs * B, both powers of two, capacity a
//     multiple of PageSlots.
func (a *Array) Validate() error {
	if got := a.numSegs * a.segSlots; got != a.Capacity() {
		return fmt.Errorf("capacity mismatch: %d", got)
	}
	if a.Capacity()%a.cfg.PageSlots != 0 {
		return fmt.Errorf("capacity %d not page-aligned", a.Capacity())
	}
	if a.segSlots&(a.segSlots-1) != 0 {
		return fmt.Errorf("segment size not a power of two: B=%d", a.segSlots)
	}

	total := 0
	for s := 0; s < a.numSegs; s++ {
		c := int(a.cards[s])
		if c < 0 || c > a.segSlots {
			return fmt.Errorf("segment %d: card %d out of [0,%d]", s, c, a.segSlots)
		}
		total += c
	}
	if total != a.n {
		return fmt.Errorf("cards sum %d != n %d", total, a.n)
	}

	// Fenwick prefix sums must agree with cards at every segment.
	run := int64(0)
	for s := 0; s < a.numSegs; s++ {
		if got := a.fen.prefix(s); got != run {
			return fmt.Errorf("fenwick prefix(%d) = %d, cards say %d", s, got, run)
		}
		run += int64(a.cards[s])
	}
	if got := a.fen.prefix(a.numSegs); got != int64(a.n) {
		return fmt.Errorf("fenwick total %d != n %d", got, a.n)
	}

	if a.cfg.Layout == LayoutInterleaved {
		for s := 0; s < a.numSegs; s++ {
			pop := bmRank(a.bitmap, s*a.segSlots, (s+1)*a.segSlots)
			if pop != int(a.cards[s]) {
				return fmt.Errorf("segment %d: bitmap %d != card %d", s, pop, a.cards[s])
			}
		}
	}

	// Global sortedness.
	prev := int64(minInt64)
	for s := 0; s < a.numSegs; s++ {
		for r := 0; r < int(a.cards[s]); r++ {
			k := a.elemKey(s, r)
			if k < prev {
				return fmt.Errorf("order violation at segment %d rank %d: %d < %d", s, r, k, prev)
			}
			prev = k
		}
	}

	// Separator invariants.
	carry := unsetSep
	for j := a.numSegs - 1; j >= 1; j-- {
		if a.cards[j] > 0 {
			carry = a.segMin(j)
		}
		if got := a.ix.Key(j); got != carry {
			return fmt.Errorf("separator %d: index has %d, want %d", j, got, carry)
		}
	}

	// Every stored key is findable with its value.
	for s := 0; s < a.numSegs; s++ {
		for r := 0; r < int(a.cards[s]); r++ {
			k := a.elemKey(s, r)
			if _, ok := a.Find(k); !ok {
				return fmt.Errorf("stored key %d (seg %d rank %d) not findable", k, s, r)
			}
		}
	}
	return nil
}
