package core

import "iter"

// This file implements lazy, pull-style traversal over the array: a
// Walker holding O(1) state (current segment + offset into its run) and
// the range-over-func iterators built on it. On the clustered layout the
// walker borrows each segment's dense run directly from the page space —
// no per-slot gap checks, no copies; on the interleaved layout it
// compacts one segment at a time into a reusable O(B) scratch buffer.
//
// Walkers are snapshot-free, like the rest of the structure: mutating
// the array invalidates every walker and iterator derived from it.

// Walker is a lazy cursor over the elements with key in [lo, hi]. Its
// state is one segment index, one offset and two borrowed run slices —
// independent of the range size. Obtain one with NewWalker; reposition
// with SeekGE.
type Walker struct {
	a    *Array
	hi   int64 // inclusive upper bound
	seg  int
	idx  int // next element's rank within the current run
	runK []int64
	runV []int64
	// Interleaved layout only: per-segment compaction buffers.
	bufK, bufV []int64
}

// NewWalker returns a walker positioned before the first element with
// key >= lo, bounded above by hi (inclusive). The walker borrows the
// array's cached compaction buffers, so steady-state seek-and-scan over
// the interleaved layout allocates nothing; a nested walker finds the
// cache empty and allocates its own pair.
func (a *Array) NewWalker(lo, hi int64) Walker {
	w := Walker{a: a, hi: hi}
	w.attach()
	w.SeekGE(lo)
	return w
}

// SeekGE repositions the walker before the first element with key >= lo,
// using one static-index descent — the same O(log S) routing as a point
// lookup. The upper bound is unchanged.
//
//rma:noalloc
func (w *Walker) SeekGE(lo int64) {
	a := w.a
	if a.n == 0 {
		w.exhaust()
		return
	}
	if w.bufK == nil {
		w.attach() // re-seek after exhaustion: take the cache back
	}
	w.seg = a.ix.FindLB(lo)
	w.loadSeg()
	w.idx = lowerBoundRun(w.runK, lo)
}

// attach takes the array's one-slot compaction-buffer cache (empty
// hands mean compactSeg allocates lazily, exactly once per nesting
// depth).
func (w *Walker) attach() {
	w.bufK, w.bufV = w.a.walkK, w.a.walkV
	w.a.walkK, w.a.walkV = nil, nil
}

// Release returns the walker's compaction buffers to the array's cache
// so the next walker starts allocation-free. It runs automatically when
// the walker exhausts its range; call it yourself only when abandoning
// a walker early. The walker must be re-seeked before further use.
func (w *Walker) Release() {
	if w.bufK != nil {
		w.a.walkK, w.a.walkV = w.bufK, w.bufV
		w.bufK, w.bufV = nil, nil
	}
	w.runK, w.runV = nil, nil
}

// exhaust parks the walker past the last segment.
//
//rma:noalloc
func (w *Walker) exhaust() {
	w.seg = w.a.numSegs
	w.idx = 0
	w.Release()
}

// loadSeg points runK/runV at the current segment's elements in key
// order: a borrowed page slice on the clustered layout, a compacted copy
// on the interleaved one.
func (w *Walker) loadSeg() {
	a := w.a
	if w.seg >= a.numSegs || a.cards[w.seg] == 0 {
		w.runK, w.runV = nil, nil
		return
	}
	if a.cfg.Layout == LayoutClustered {
		w.runK, w.runV = a.segRun(w.seg)
		return
	}
	w.bufK, w.bufV = a.compactSeg(w.seg, w.bufK, w.bufV)
	w.runK, w.runV = w.bufK, w.bufV
}

// compactSeg gathers interleaved segment seg's occupied elements in key
// order into the given buffers (reused across calls; grown only on
// first use or after a resize enlarged the segments).
//
//rma:noalloc
func (a *Array) compactSeg(seg int, bufK, bufV []int64) ([]int64, []int64) {
	if cap(bufK) < a.segSlots {
		bufK = make([]int64, 0, a.segSlots) //rma:alloc-ok — first-use or post-resize growth
		bufV = make([]int64, 0, a.segSlots) //rma:alloc-ok — first-use or post-resize growth
	}
	bufK, bufV = bufK[:0], bufV[:0]
	base := seg * a.segSlots
	end := base + a.segSlots
	kpg, off := a.segPage(a.keys, seg)
	vpg, voff := a.segPage(a.vals, seg)
	for s := bmNext(a.bitmap, base, end); s != -1; s = bmNext(a.bitmap, s+1, end) {
		bufK = append(bufK, kpg[off+s-base])  //rma:cap-ok — sized to segSlots above
		bufV = append(bufV, vpg[voff+s-base]) //rma:cap-ok — sized to segSlots above
	}
	return bufK, bufV
}

// Next returns the next element and advances, or ok=false when the
// range is exhausted.
//
//rma:noalloc
func (w *Walker) Next() (key, val int64, ok bool) {
	for {
		if w.idx < len(w.runK) {
			key = w.runK[w.idx]
			if key > w.hi {
				w.exhaust()
				return 0, 0, false
			}
			val = w.runV[w.idx]
			w.idx++
			return key, val, true
		}
		w.seg++
		if w.seg >= w.a.numSegs {
			w.exhaust()
			return 0, 0, false
		}
		w.loadSeg()
		w.idx = 0
	}
}

// Remaining returns the number of elements not yet returned that lie
// within the walker's bound: one Fenwick prefix sum plus one in-segment
// search, O(log S + log B).
func (w *Walker) Remaining() int {
	a := w.a
	if w.seg >= a.numSegs || a.n == 0 {
		return 0
	}
	consumed := int(a.fen.prefix(w.seg)) + w.idx
	// The position can sit past the bound (SeekGE beyond hi, or an
	// inverted range): nothing remains then.
	if rem := a.rankOf(w.hi, true) - consumed; rem > 0 {
		return rem
	}
	return 0
}

// segRun returns segment seg's dense key and value runs (clustered
// layout only).
func (a *Array) segRun(seg int) (runK, runV []int64) {
	kpg, off := a.segPage(a.keys, seg)
	vpg, voff := a.segPage(a.vals, seg)
	rl, rh := a.runBounds(seg)
	return kpg[off+rl : off+rh], vpg[voff+rl : voff+rh]
}

// IterAscend returns a lazy key-ascending iterator over the elements
// with lo <= key <= hi.
func (a *Array) IterAscend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if lo > hi {
			return
		}
		w := a.NewWalker(lo, hi)
		defer w.Release() // return buffers on early break; no-op after exhaustion
		for {
			k, v, ok := w.Next()
			if !ok {
				return
			}
			if !yield(k, v) {
				return
			}
		}
	}
}

// IterDescend returns a lazy key-descending iterator over the elements
// with lo <= key <= hi, hopping segments right to left.
func (a *Array) IterDescend(lo, hi int64) iter.Seq2[int64, int64] {
	return func(yield func(int64, int64) bool) {
		if a.n == 0 || lo > hi {
			return
		}
		// Borrow the array's compaction-buffer cache, like NewWalker.
		bufK, bufV := a.walkK, a.walkV
		a.walkK, a.walkV = nil, nil
		defer func() { a.walkK, a.walkV = bufK, bufV }()
		for seg := a.ix.FindUB(hi); seg >= 0; seg-- {
			if a.cards[seg] == 0 {
				continue
			}
			var runK, runV []int64
			if a.cfg.Layout == LayoutClustered {
				runK, runV = a.segRun(seg)
			} else {
				bufK, bufV = a.compactSeg(seg, bufK, bufV)
				runK, runV = bufK, bufV
			}
			for i := upperBoundRun(runK, hi) - 1; i >= 0; i-- {
				k := runK[i]
				if k < lo {
					return
				}
				if !yield(k, runV[i]) {
					return
				}
			}
		}
	}
}
