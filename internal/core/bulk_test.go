package core

import (
	"testing"

	"rma/internal/workload"
)

func batchOf(keys []int64) Batch {
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = workload.ValueFor(k)
	}
	return Batch{Keys: keys, Vals: vals}
}

// TestBulkLoadEquivalentToInserts: bulk loading any batch must leave the
// array with exactly the content repeated Insert calls would produce.
func TestBulkLoadEquivalentToInserts(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			g := workload.NewUniform(99, 1<<20)
			keys := workload.Keys(g, 1200)

			bulk := mustNew(t, cfg)
			if err := bulk.BulkLoad(batchOf(keys)); err != nil {
				t.Fatal(err)
			}
			single := mustNew(t, cfg)
			for _, k := range keys {
				mustInsert(t, single, k, workload.ValueFor(k))
			}

			if bulk.Size() != single.Size() {
				t.Fatalf("sizes differ: bulk %d vs single %d", bulk.Size(), single.Size())
			}
			if err := bulk.Validate(); err != nil {
				t.Fatalf("bulk: %v", err)
			}
			var bk, sk []int64
			bulk.Scan(func(k, v int64) bool {
				if v != workload.ValueFor(k) {
					t.Fatalf("value did not travel with key %d", k)
				}
				bk = append(bk, k)
				return true
			})
			single.Scan(func(k, v int64) bool { sk = append(sk, k); return true })
			for i := range bk {
				if bk[i] != sk[i] {
					t.Fatalf("content mismatch at %d: %d vs %d", i, bk[i], sk[i])
				}
			}
		})
	}
}

// TestBulkLoadIncremental loads repeated batches into a non-empty array
// (the Fig 13b pattern) and validates after each.
func TestBulkLoadIncremental(t *testing.T) {
	for _, scheme := range []string{"bottomup", "topdown"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := testConfig()
			a := mustNew(t, cfg)
			g := workload.NewUniform(5, 1<<20)
			for i := 0; i < 1000; i++ {
				mustInsert(t, a, g.Next(), 0)
			}
			for b := 0; b < 10; b++ {
				keys := workload.Keys(g, 300)
				var err error
				if scheme == "bottomup" {
					err = a.BulkLoad(batchOf(keys))
				} else {
					err = a.BulkLoadTopDown(batchOf(keys))
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := a.Validate(); err != nil {
					t.Fatalf("batch %d: %v", b, err)
				}
			}
			if a.Size() != 4000 {
				t.Fatalf("size %d, want 4000", a.Size())
			}
		})
	}
}

// TestBulkLoadSkewed exercises batch loads drawn from high-skew Zipf, the
// regime Fig 13b sweeps.
func TestBulkLoadSkewed(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.5, 3.0} {
		cfg := testConfig()
		a := mustNew(t, cfg)
		z := workload.NewZipf(7, alpha, 1<<20, true)
		for b := 0; b < 8; b++ {
			if err := a.BulkLoad(batchOf(workload.Keys(z, 500))); err != nil {
				t.Fatal(err)
			}
			if err := a.Validate(); err != nil {
				t.Fatalf("alpha=%v batch %d: %v", alpha, b, err)
			}
		}
	}
}

// TestBulkLoadIntoEmpty: the degenerate case must work and the resulting
// density must respect the root threshold.
func TestBulkLoadIntoEmpty(t *testing.T) {
	cfg := testConfig()
	a := mustNew(t, cfg)
	keys := make([]int64, 5000)
	for i := range keys {
		keys[i] = int64(i)
	}
	if err := a.BulkLoad(batchOf(keys)); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 5000 {
		t.Fatalf("size %d", a.Size())
	}
	if d := a.Density(); d > a.cfg.Thresholds.TauH+0.01 {
		t.Fatalf("density %v exceeds tauH after bulk load", d)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadEmptyBatch(t *testing.T) {
	a := mustNew(t, testConfig())
	if err := a.BulkLoad(Batch{}); err != nil {
		t.Fatal(err)
	}
	if err := a.BulkLoadTopDown(Batch{}); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 0 {
		t.Fatal("empty batch changed size")
	}
}

// TestBulkUpdate: the streaming scenario — equal numbers of deletions and
// insertions at constant cardinality (Section III "Bulk loading").
func TestBulkUpdate(t *testing.T) {
	cfg := testConfig()
	a := mustNew(t, cfg)
	ins := workload.NewUniform(1, 1<<16)
	live := map[int64]int{}
	var keys []int64
	for i := 0; i < 3000; i++ {
		k := ins.Next()
		mustInsert(t, a, k, workload.ValueFor(k))
		live[k]++
		keys = append(keys, k)
	}
	rng := workload.NewRNG(2)
	for round := 0; round < 6; round++ {
		// Delete 200 existing keys, insert 200 new ones.
		var dels []int64
		for i := 0; i < 200; i++ {
			k := keys[int(rng.Uint64n(uint64(len(keys))))]
			if live[k] > 0 {
				dels = append(dels, k)
				live[k]--
			}
		}
		newKeys := workload.Keys(ins, 200)
		for _, k := range newKeys {
			live[k]++
		}
		keys = append(keys, newKeys...)
		if err := a.BulkUpdate(batchOf(newKeys), dels); err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		want := 0
		for _, c := range live {
			want += c
		}
		if a.Size() != want {
			t.Fatalf("round %d: size %d, want %d", round, a.Size(), want)
		}
	}
}

// TestBulkLoadDuplicateHeavyBatch: batches full of one key must not break
// the window assignment.
func TestBulkLoadDuplicateHeavyBatch(t *testing.T) {
	cfg := testConfig()
	a := mustNew(t, cfg)
	for i := 0; i < 500; i++ {
		mustInsert(t, a, int64(i), 0)
	}
	keys := make([]int64, 600)
	for i := range keys {
		keys[i] = 250
	}
	if err := a.BulkLoad(batchOf(keys)); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	cnt, _ := a.Sum(250, 250)
	if cnt != 601 {
		t.Fatalf("duplicate count %d, want 601", cnt)
	}
}

// TestTopDownMatchesBottomUpContent: both schemes must produce identical
// logical content (physical layout may differ).
func TestTopDownMatchesBottomUpContent(t *testing.T) {
	cfg := testConfig()
	g := workload.NewUniform(13, 1<<18)
	base := workload.Keys(g, 800)
	batch := workload.Keys(g, 800)

	bu := mustNew(t, cfg)
	td := mustNew(t, cfg)
	for _, k := range base {
		mustInsert(t, bu, k, workload.ValueFor(k))
		mustInsert(t, td, k, workload.ValueFor(k))
	}
	if err := bu.BulkLoad(batchOf(batch)); err != nil {
		t.Fatal(err)
	}
	if err := td.BulkLoadTopDown(batchOf(batch)); err != nil {
		t.Fatal(err)
	}
	if err := bu.Validate(); err != nil {
		t.Fatalf("bottom-up: %v", err)
	}
	if err := td.Validate(); err != nil {
		t.Fatalf("top-down: %v", err)
	}
	var a, b []int64
	bu.Scan(func(k, _ int64) bool { a = append(a, k); return true })
	td.Scan(func(k, _ int64) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatalf("sizes %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("content diverges at %d", i)
		}
	}
}

// TestTopDownRebalancesWiderThanBottomUp is the paper's motivation for
// the bottom-up scheme: top-down triggers wider rebalances because the
// thresholds near the root are tighter.
func TestTopDownRebalancesWiderThanBottomUp(t *testing.T) {
	mkLoaded := func() *Array {
		cfg := testConfig()
		cfg.Adaptive = AdaptiveOff
		a := mustNew(t, cfg)
		g := workload.NewUniform(21, 1<<20)
		for i := 0; i < 4000; i++ {
			mustInsert(t, a, g.Next(), 0)
		}
		return a
	}
	g := workload.NewUniform(22, 1<<20)
	batches := make([][]int64, 12)
	for i := range batches {
		batches[i] = workload.Keys(g, 128)
	}

	bu := mkLoaded()
	buBase := bu.Stats().RebalancedSegments
	for _, b := range batches {
		if err := bu.BulkLoad(batchOf(b)); err != nil {
			t.Fatal(err)
		}
	}
	buWork := bu.Stats().RebalancedSegments - buBase

	td := mkLoaded()
	tdBase := td.Stats().RebalancedSegments
	for _, b := range batches {
		if err := td.BulkLoadTopDown(batchOf(b)); err != nil {
			t.Fatal(err)
		}
	}
	tdWork := td.Stats().RebalancedSegments - tdBase

	if buWork > tdWork {
		t.Fatalf("bottom-up rebalanced %d segments vs top-down's %d; expected bottom-up <= top-down",
			buWork, tdWork)
	}
}
