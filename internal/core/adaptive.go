package core

import "rma/internal/detector"

// interval is a marked interval <s, l> of Section IV: a range of l
// positions starting at position s in the sorted sequence of the window's
// keys, where new updates are predicted to land. Score is +1 for insert
// hammering (the interval should attract gaps) and -1 for delete
// hammering (it should attract elements).
type interval struct {
	pos, length int
	score       int
}

// marksToIntervals converts the Detector's per-segment marks into
// position intervals within the window [lo, hi) (the preprocessing
// phase's final output). The returned slice aliases reusable scratch,
// valid until the next call: steady-state mark processing must not
// allocate (see PERFORMANCE.md and TestAdaptiveInsertAllocationFree).
func (a *Array) marksToIntervals(lo, hi int, marks []detector.Mark) []interval {
	total := a.windowCard(lo, hi)
	if total == 0 {
		return nil
	}
	// Prefix cardinalities to turn (segment, rank) into window positions.
	if cap(a.prefixBuf) < hi-lo+1 {
		a.prefixBuf = make([]int, hi-lo+1) //rma:alloc-ok — scratch grows to the widest window seen
	}
	prefix := a.prefixBuf[:hi-lo+1]
	prefix[0] = 0
	for s := lo; s < hi; s++ {
		prefix[s-lo+1] = prefix[s-lo] + int(a.cards[s])
	}

	iv := a.ivBuf[:0]
	for _, m := range marks {
		switch m.Kind {
		case detector.MarkSegment:
			c := int(a.cards[m.Seg])
			if c == 0 {
				continue
			}
			iv = append(iv, interval{pos: prefix[m.Seg-lo], length: c, score: m.Score}) //rma:cap-ok — ivBuf capacity is retained across calls
		case detector.MarkPairBwd:
			// An ascending run approaches m.Key: mark (pred(Key), Key).
			r := a.windowRank(lo, hi, prefix, m.Key, false)
			p := r - 1
			if p < 0 {
				p = 0
			}
			l := 2
			if p+l > total {
				l = total - p
			}
			if l > 0 {
				iv = append(iv, interval{pos: p, length: l, score: m.Score}) //rma:cap-ok — ivBuf capacity is retained across calls
			}
		case detector.MarkPairFwd:
			// A descending run approaches m.Key: mark (Key, succ(Key)).
			r := a.windowRank(lo, hi, prefix, m.Key, false)
			l := 2
			if r+l > total {
				l = total - r
			}
			if r < total && l > 0 {
				iv = append(iv, interval{pos: r, length: l, score: m.Score}) //rma:cap-ok — ivBuf capacity is retained across calls
			}
		}
	}
	a.ivBuf = iv // keep the grown capacity for the next call
	if len(iv) == 0 {
		return nil
	}
	// Insertion sort by position: mark counts are tiny (bounded by the
	// window's segments) and this avoids sort.Slice's closure allocation.
	for i := 1; i < len(iv); i++ {
		for j := i; j > 0 && iv[j].pos < iv[j-1].pos; j-- {
			iv[j], iv[j-1] = iv[j-1], iv[j]
		}
	}
	// Merge overlaps so the adaptive algorithm sees disjoint intervals.
	out := iv[:1]
	for _, cur := range iv[1:] {
		last := &out[len(out)-1]
		if cur.pos <= last.pos+last.length {
			if end := cur.pos + cur.length; end > last.pos+last.length {
				last.length = end - last.pos
			}
			last.score += cur.score
		} else {
			out = append(out, cur) //rma:cap-ok — out aliases iv and never outgrows it
		}
	}
	for i := range out {
		if out[i].score >= 0 {
			out[i].score = 1
		} else {
			out[i].score = -1
		}
	}
	return out
}

// windowRank returns the number of window keys < key (strict=false gives
// lower-bound semantics, which is what the marked-pair placement needs).
func (a *Array) windowRank(lo, hi int, prefix []int, key int64, _ bool) int {
	seg := a.ix.FindUB(key)
	if seg < lo {
		return 0
	}
	if seg >= hi {
		return prefix[hi-lo]
	}
	kpg, off := a.segPage(a.keys, seg)
	rl, rh := a.runBounds(seg)
	return prefix[seg-lo] + lowerBoundRun(kpg[off+rl:off+rh], key)
}

// adaptiveTargets runs the paper's adaptive algorithm (Algorithm 2): a
// top-down traversal of the calibrator subtree rooted at the window,
// splitting the element run R and its marked intervals between children,
// pushing marked intervals toward the less-loaded side, and clamping the
// split so every level's density thresholds hold. The result aliases the
// shared targets scratch, like evenTargets.
func (a *Array) adaptiveTargets(lo, hi, cnt int, marks []interval) []int {
	nseg := hi - lo
	out := a.targetsScratch(nseg)
	a.adaptiveRec(lo, nseg, cnt, marks, out, 0)
	return out
}

// ivSplitScratch returns the reusable left/right interval buffers for
// one depth of the adaptive recursion (each depth needs its own pair,
// alive across the recursive calls below it).
func (a *Array) ivSplitScratch(depth int) (lm, rm []interval) {
	for depth >= len(a.ivSplit) {
		a.ivSplit = append(a.ivSplit, [2][]interval{}) //rma:alloc-ok — per-depth scratch created on first descent
	}
	return a.ivSplit[depth][0][:0], a.ivSplit[depth][1][:0]
}

func (a *Array) adaptiveRec(segLo, nseg, r int, marks []interval, out []int, depth int) {
	if nseg == 1 {
		out[0] = r
		return
	}
	// "Too big" guard (Algorithm 2 line 3): a single marked interval
	// covering the whole run cannot be pushed anywhere; split evenly.
	if nseg == 2 && len(marks) == 1 && marks[0].length*2 >= r {
		out[0] = r / 2
		out[1] = r - r/2
		return
	}

	half := nseg / 2
	childLevel := log2(half) + 1
	rho, tau := a.cal.At(childLevel)
	childCap := half * a.segSlots

	childMax := int(tau * float64(childCap))
	childMin := ceilMul(rho, childCap)
	// Reserve one free slot per segment when feasible, so a pending
	// insert cannot land in a full segment right after the rebalance.
	if reserved := childCap - half; reserved < childMax && r <= 2*reserved {
		childMax = reserved
	}

	minL := maxInt(childMin, r-childMax)
	maxL := minInt(childMax, r-childMin)
	if minL > maxL {
		// Thresholds are infeasible for this run size (tiny windows);
		// fall back to a pure capacity clamp.
		minL = maxInt(0, r-childCap)
		maxL = minInt(childCap, r)
	}

	left := a.objective(r, marks, minL, maxL)

	// Split the marked intervals at the boundary, into this depth's
	// reusable buffers (deeper recursion levels use their own pair).
	lm, rm := a.ivSplitScratch(depth)
	for _, iv := range marks {
		switch {
		case iv.pos+iv.length <= left:
			lm = append(lm, iv) //rma:cap-ok — per-depth buffers retained across calls
		case iv.pos >= left:
			rm = append(rm, interval{pos: iv.pos - left, length: iv.length, score: iv.score}) //rma:cap-ok — per-depth buffers retained across calls
		default:
			lm = append(lm, interval{pos: iv.pos, length: left - iv.pos, score: iv.score})        //rma:cap-ok — per-depth buffers retained across calls
			rm = append(rm, interval{pos: 0, length: iv.pos + iv.length - left, score: iv.score}) //rma:cap-ok — per-depth buffers retained across calls
		}
	}
	a.ivSplit[depth][0], a.ivSplit[depth][1] = lm, rm
	a.adaptiveRec(segLo, half, left, lm, out[:half], depth+1)
	a.adaptiveRec(segLo+half, half, r-left, rm, out[half:], depth+1)
}

// objective picks the boundary position (the number of elements going to
// the left child). With no marks it is an even split. With marks, the
// marked intervals are partitioned between the children to balance first
// cumulative score (the deletions extension of Section IV), then interval
// count; a remaining odd interval goes to the child that ends up with the
// least cardinality, and elements outside the marks stay on their side of
// the mark group — exactly the behaviour of the paper's worked example
// (Fig 7: run of 16 with one mark at positions [4,6) splits 6/10, then
// 4/2 in the left child).
func (a *Array) objective(r int, marks []interval, minL, maxL int) int {
	if len(marks) == 0 {
		return clampInt(r/2, minL, maxL)
	}
	m := len(marks)
	totalScore := 0
	for _, iv := range marks {
		totalScore += iv.score
	}
	// Intent: insert-hammered intervals (positive score) belong in the
	// child with the fewest elements — room for gaps where the inserts
	// will land. Delete-hammered intervals (negative total score) belong
	// in the child with the most elements, pushing elements where the
	// deletions will land (Section IV, "Deletions").
	intent := 1
	if totalScore < 0 {
		intent = -1
	}
	const big = 1 << 30
	bestScore, bestCount, bestStraddle, bestMark, bestSize := big, big, big, big, big
	bestBoundary := clampInt(r/2, minL, maxL)
	scoreL := 0
	for k := 0; k <= m; k++ {
		if k > 0 {
			scoreL += marks[k-1].score
		}
		// Boundary freedom for this partition: between the end of the
		// left mark group and the start of the right one.
		loB := 0
		if k > 0 {
			loB = marks[k-1].pos + marks[k-1].length
		}
		hiB := r
		if k < m {
			hiB = marks[k].pos
		}
		if loB > hiB {
			continue
		}
		// Candidate boundary, stretched per intent and then clamped to
		// the feasible range (the clamp is what actually executes, so
		// all metrics below are computed on the clamped value).
		var b int
		switch {
		case k > m-k: // marks mostly left
			if intent > 0 {
				b = loB
			} else {
				b = hiB
			}
		case k < m-k: // marks mostly right
			if intent > 0 {
				b = hiB
			} else {
				b = loB
			}
		default:
			b = clampInt(r/2, loB, hiB)
		}
		b = clampInt(b, minL, maxL)

		// Outcome metrics at the clamped boundary: marked length per
		// side, straddles, and the cardinality of the side holding the
		// majority of the marked positions.
		markedL, markedR, straddles := 0, 0, 0
		for _, iv := range marks {
			switch {
			case iv.pos+iv.length <= b:
				markedL += iv.length
			case iv.pos >= b:
				markedR += iv.length
			default:
				straddles++
				markedL += b - iv.pos
				markedR += iv.pos + iv.length - b
			}
		}
		markChild := 0
		if markedL > markedR {
			markChild = b * intent
		} else if markedR > markedL {
			markChild = (r - b) * intent
		}
		sImb := absDiff(scoreL, totalScore-scoreL)
		cImb := absDiff(k, m-k)
		zImb := absDiff(2*b, r)
		better := sImb < bestScore ||
			(sImb == bestScore && cImb < bestCount) ||
			(sImb == bestScore && cImb == bestCount && straddles < bestStraddle) ||
			(sImb == bestScore && cImb == bestCount && straddles == bestStraddle && markChild < bestMark) ||
			(sImb == bestScore && cImb == bestCount && straddles == bestStraddle && markChild == bestMark && zImb < bestSize)
		if better {
			bestScore, bestCount, bestStraddle, bestMark, bestSize = sImb, cImb, straddles, markChild, zImb
			bestBoundary = b
		}
	}
	return bestBoundary
}

// apmaTargets mimics the APMA rebalancing policy: hammered segments are
// identified positionally and keep their array region, which receives as
// many gaps as the thresholds allow; elements move to the other side.
// Under sorted sequential insertion the hammered *keys* then migrate away
// from the gap-rich region — the ping-pong effect of Section II.
func (a *Array) apmaTargets(lo, hi, cnt int, marks []detector.Mark) []int {
	nseg := hi - lo
	if cap(a.markedBuf) < nseg {
		a.markedBuf = make([]bool, nseg) //rma:alloc-ok — scratch grows to the widest window seen
	}
	markedSegs := a.markedBuf[:nseg]
	clear(markedSegs)
	any := false
	for _, m := range marks {
		if m.Seg >= lo && m.Seg < hi {
			markedSegs[m.Seg-lo] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	out := a.targetsScratch(nseg)
	a.apmaRec(markedSegs, cnt, out)
	return out
}

func (a *Array) apmaRec(marked []bool, r int, out []int) {
	nseg := len(marked)
	if nseg == 1 {
		out[0] = r
		return
	}
	half := nseg / 2
	childLevel := log2(half) + 1
	rho, tau := a.cal.At(childLevel)
	childCap := half * a.segSlots

	childMax := int(tau * float64(childCap))
	childMin := ceilMul(rho, childCap)
	if reserved := childCap - half; reserved < childMax && r <= 2*reserved {
		childMax = reserved
	}
	minL := maxInt(childMin, r-childMax)
	maxL := minInt(childMax, r-childMin)
	if minL > maxL {
		minL = maxInt(0, r-childCap)
		maxL = minInt(childCap, r)
	}

	lMarked := anyTrue(marked[:half])
	rMarked := anyTrue(marked[half:])
	var left int
	switch {
	case lMarked && !rMarked:
		left = minL // maximize gaps where the hammering is
	case rMarked && !lMarked:
		left = maxL
	default:
		left = clampInt(r/2, minL, maxL)
	}
	a.apmaRec(marked[:half], left, out[:half])
	a.apmaRec(marked[half:], r-left, out[half:])
}

func anyTrue(b []bool) bool {
	for _, v := range b {
		if v {
			return true
		}
	}
	return false
}

func ceilMul(f float64, x int) int {
	v := f * float64(x)
	i := int(v)
	if float64(i) < v {
		i++
	}
	return i
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
