package core

// fenwick is a binary indexed tree over the per-segment cardinalities,
// giving O(log S) prefix counts and rank descents over the S segments.
// It powers the order-statistic queries (Rank, Select, CountRange) and
// Cursor.Remaining: the clustered layout makes per-segment counts exact,
// so a prefix sum plus one in-segment binary search answers any rank
// query without touching element storage.
//
// Point updates (insert/delete) cost O(log S); window rebalances apply
// one delta per changed segment; resizes rebuild in O(S).
type fenwick struct {
	t []int64 // 1-based: t[i] covers cards[i-(i&-i) .. i-1]
}

// reset rebuilds the tree from the cardinality array in O(S).
func (f *fenwick) reset(cards []int32) {
	n := len(cards)
	if cap(f.t) < n+1 {
		f.t = make([]int64, n+1)
	} else {
		f.t = f.t[:n+1]
		clear(f.t)
	}
	for i, c := range cards {
		f.t[i+1] = int64(c)
	}
	for i := 1; i <= n; i++ {
		if j := i + (i & -i); j <= n {
			f.t[j] += f.t[i]
		}
	}
}

// add adjusts segment seg's count by d.
func (f *fenwick) add(seg int, d int64) {
	for i := seg + 1; i < len(f.t); i += i & -i {
		f.t[i] += d
	}
}

// prefix returns the total count of segments [0, seg).
func (f *fenwick) prefix(seg int) int64 {
	var s int64
	for i := seg; i > 0; i -= i & -i {
		s += f.t[i]
	}
	return s
}

// find locates the segment containing the element of global rank r
// (0-based): the unique seg with prefix(seg) <= r < prefix(seg+1).
// It returns that segment and prefix(seg). r must be < the total count.
func (f *fenwick) find(r int64) (seg int, before int64) {
	pos := 0
	bit := 1
	for bit<<1 < len(f.t) {
		bit <<= 1
	}
	var acc int64
	for ; bit > 0; bit >>= 1 {
		if next := pos + bit; next < len(f.t) && acc+f.t[next] <= r {
			pos = next
			acc += f.t[next]
		}
	}
	return pos, acc
}

// footprintBytes returns the memory held by the tree.
func (f *fenwick) footprintBytes() int64 { return int64(cap(f.t)) * 8 }
