package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"rma/internal/vmem"
)

func durableArray(t *testing.T, cfg Config) (*Array, string) {
	t.Helper()
	dir := t.TempDir()
	r, err := vmem.CreateFileRegion(dir, cfg.PageSlots)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AttachDurability(r); err != nil {
		t.Fatal(err)
	}
	return a, dir
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.SegmentSlots = 8
	cfg.PageSlots = 32
	return cfg
}

// collect returns every (key, value) pair in order.
func collect(t *testing.T, a *Array) map[int64]int64 {
	t.Helper()
	out := make(map[int64]int64, a.Size())
	w := a.NewWalker(math.MinInt64, math.MaxInt64)
	for {
		k, v, ok := w.Next()
		if !ok {
			break
		}
		out[k] = v
	}
	w.Release()
	return out
}

func reopen(t *testing.T, dir string, cfg Config) *Array {
	t.Helper()
	r, err := vmem.OpenFileRegion(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	a, err := Open(r, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testCheckpointOpenRoundTrip(t *testing.T, cfg Config) {
	a, dir := durableArray(t, cfg)
	rng := rand.New(rand.NewSource(7))
	want := make(map[int64]int64)
	for i := 0; i < 5000; i++ {
		k := int64(rng.Intn(100_000))
		v := k * 3
		if err := a.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Duplicate keys are allowed; track multiset via collect comparison
	// against the array itself instead: checkpoint, reopen, diff.
	if _, err := a.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	before := collect(t, a)
	sizeBefore := a.Size()
	a.Region().Close()

	b := reopen(t, dir, cfg)
	if b.Size() != sizeBefore {
		t.Fatalf("recovered size %d, want %d", b.Size(), sizeBefore)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("recovered array invalid: %v", err)
	}
	after := collect(t, b)
	if len(after) != len(before) {
		t.Fatalf("recovered %d distinct keys, want %d", len(after), len(before))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatalf("key %d: recovered %d, want %d", k, after[k], v)
		}
	}
	// The recovered array keeps serving writes and further checkpoints.
	for i := 0; i < 2000; i++ {
		if err := b.Insert(int64(200_000+i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointOpenRoundTripClustered(t *testing.T) {
	testCheckpointOpenRoundTrip(t, smallConfig())
}

func TestCheckpointOpenRoundTripInterleaved(t *testing.T) {
	cfg := BaselineConfig()
	cfg.PageSlots = 64
	testCheckpointOpenRoundTrip(t, cfg)
}

func TestCheckpointOpenRoundTripTwoPass(t *testing.T) {
	cfg := smallConfig()
	cfg.Rebalance = RebalanceTwoPass
	cfg.Adaptive = AdaptiveOff
	testCheckpointOpenRoundTrip(t, cfg)
}

func TestCheckpointIncremental(t *testing.T) {
	cfg := DefaultConfig() // real page size: many pages per checkpoint
	a, _ := durableArray(t, cfg)
	for i := 0; i < 200_000; i++ {
		if err := a.Insert(int64(i*7%1_000_000), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	full := a.Stats().CheckpointPages
	// A handful of localized inserts must not rewrite the whole array.
	for i := 0; i < 10; i++ {
		if err := a.Insert(int64(500_000+i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	delta := a.Stats().CheckpointPages - full
	if delta == 0 || delta >= full/4 {
		t.Fatalf("incremental checkpoint wrote %d pages after full %d — dirty tracking not incremental", delta, full)
	}
	if a.Stats().Checkpoints != 2 {
		t.Fatalf("Checkpoints stat %d", a.Stats().Checkpoints)
	}
}

// TestAllocFailureMidRebalanceLeavesArrayConsistent pins the satellite
// contract: a vmem allocation failure during a window rebalance or a
// grow mid-insert surfaces as an error, leaves the array structurally
// valid with all its data, records AllocFailures, and the array keeps
// serving once the injection is lifted.
func TestAllocFailureMidRebalanceLeavesArrayConsistent(t *testing.T) {
	for _, name := range []string{"keys", "vals"} {
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig()
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := make(map[int64]int64)
			insertUntilErr := func() error {
				for i := 0; i < 100_000; i++ {
					k, v := int64(i), int64(i*2)
					if err := a.Insert(k, v); err != nil {
						return err
					}
					want[k] = v
				}
				return nil
			}
			if err := insertUntilErr(); err != nil {
				t.Fatal(err)
			}
			// Arm: every next allocation on one space fails, so the very
			// next grow or rewired rebalance trips mid-flight.
			if name == "keys" {
				a.InjectAllocFailure(0, -1)
			} else {
				a.InjectAllocFailure(-1, 0)
			}
			sizeAt := a.Size()
			err = insertUntilErr()
			if !errors.Is(err, vmem.ErrAllocFailed) {
				t.Fatalf("want ErrAllocFailed, got %v", err)
			}
			if a.Stats().AllocFailures == 0 {
				t.Fatal("AllocFailures not recorded")
			}
			// The failed operation must not have lost or corrupted anything.
			if err := a.Validate(); err != nil {
				t.Fatalf("array invalid after alloc failure: %v", err)
			}
			if a.Size() < sizeAt {
				t.Fatalf("size regressed: %d < %d", a.Size(), sizeAt)
			}
			got := collect(t, a)
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %d: got %d want %d after alloc failure", k, got[k], v)
				}
			}
			// Reads still serve.
			for k, v := range want {
				fv, ok := a.Find(k)
				if !ok || fv != v {
					t.Fatalf("Find(%d) = %d,%v after alloc failure", k, fv, ok)
				}
				break
			}
			// Lift the injection: the array resumes growing.
			a.InjectAllocFailure(-1, -1)
			if err := insertUntilErr(); err != nil {
				t.Fatalf("insert after lifting injection: %v", err)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckpointFaultDegradesToInMemory pins graceful degradation: a
// checkpoint that fails (any injected vmem fault) leaves the array
// serving and consistent, records CheckpointFailures, and a later
// checkpoint succeeds and persists everything.
func TestCheckpointFaultDegradesToInMemory(t *testing.T) {
	for _, op := range []vmem.FaultOp{vmem.FaultPageWrite, vmem.FaultDataSync,
		vmem.FaultManifestWrite, vmem.FaultManifestSync, vmem.FaultRename} {
		t.Run(string(op), func(t *testing.T) {
			cfg := smallConfig()
			a, dir := durableArray(t, cfg)
			for i := 0; i < 3000; i++ {
				if err := a.Insert(int64(i), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := a.Checkpoint(0); err != nil {
				t.Fatal(err)
			}
			for i := 3000; i < 4000; i++ {
				if err := a.Insert(int64(i), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			a.Region().InjectFault(op, 0)
			if _, err := a.Checkpoint(0); !errors.Is(err, vmem.ErrFaultInjected) {
				t.Fatalf("want injected fault, got %v", err)
			}
			if a.Stats().CheckpointFailures != 1 {
				t.Fatalf("CheckpointFailures %d", a.Stats().CheckpointFailures)
			}
			// Still serving and consistent in memory.
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			for i := 4000; i < 4100; i++ {
				if err := a.Insert(int64(i), int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			// The retry persists everything written so far.
			if _, err := a.Checkpoint(0); err != nil {
				t.Fatalf("retry checkpoint: %v", err)
			}
			a.Region().Close()
			b := reopen(t, dir, cfg)
			if b.Size() != 4100 {
				t.Fatalf("recovered %d elements, want 4100", b.Size())
			}
			if err := b.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCheckpointSurvivesResize pins that both resize paths (rewired
// in-place and fresh-space replacement) keep dirty tracking alive, so a
// checkpoint after a resize persists the full new geometry.
func TestCheckpointSurvivesResize(t *testing.T) {
	for _, mode := range []RebalanceMode{RebalanceRewired, RebalanceTwoPass} {
		cfg := smallConfig()
		cfg.Rebalance = mode
		if mode == RebalanceTwoPass {
			cfg.Adaptive = AdaptiveOff
		}
		a, dir := durableArray(t, cfg)
		if _, err := a.Checkpoint(0); err != nil {
			t.Fatal(err)
		}
		grows := a.Stats().Grows
		for i := 0; i < 20_000; i++ {
			if err := a.Insert(int64(i), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if a.Stats().Grows == grows {
			t.Fatal("test did not exercise a resize")
		}
		if _, err := a.Checkpoint(0); err != nil {
			t.Fatal(err)
		}
		a.Region().Close()
		b := reopen(t, dir, cfg)
		if b.Size() != 20_000 {
			t.Fatalf("mode %v: recovered %d, want 20000", mode, b.Size())
		}
		if err := b.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCheckpointWithoutRegionErrors(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Checkpoint(0); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("want ErrNotDurable, got %v", err)
	}
}

func TestOpenRejectsMismatchedConfig(t *testing.T) {
	cfg := smallConfig()
	a, dir := durableArray(t, cfg)
	for i := 0; i < 100; i++ {
		if err := a.Insert(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	a.Region().Close()

	r, err := vmem.OpenFileRegion(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	bad := cfg
	bad.Layout = LayoutInterleaved
	bad.Rebalance = RebalanceTwoPass
	bad.Adaptive = AdaptiveOff
	if _, err := Open(r, bad, 0); err == nil {
		t.Fatal("Open accepted a layout mismatch")
	}
	// The right config still opens after the failed attempt.
	if _, err := Open(r, cfg, 0); err != nil {
		t.Fatalf("Open with matching config: %v", err)
	}
}

func TestDeleteThenCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig()
	a, dir := durableArray(t, cfg)
	for i := 0; i < 10_000; i++ {
		if err := a.Insert(int64(i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10_000; i += 2 {
		if ok, err := a.Delete(int64(i)); err != nil || !ok {
			t.Fatalf("Delete(%d) = %v, %v", i, ok, err)
		}
	}
	if _, err := a.Checkpoint(0); err != nil {
		t.Fatal(err)
	}
	a.Region().Close()
	b := reopen(t, dir, cfg)
	if b.Size() != 5000 {
		t.Fatalf("recovered %d, want 5000", b.Size())
	}
	for i := 0; i < 10_000; i++ {
		_, ok := b.Find(int64(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Find(%d) = %v, want %v", i, ok, want)
		}
	}
}
