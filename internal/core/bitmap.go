package core

import "math/bits"

// Word-parallel primitives over the interleaved layout's occupancy
// bitmap. Every interleaved hot path iterates occupancy through these
// instead of per-slot single-bit probes: a 64-slot stretch of gaps costs
// one word test, and in-segment rank/select cost O(B/64) popcounts.
//
// All functions take half-open slot ranges [from, to) and assume
// 0 <= from, to <= 64*len(bm). Bits outside the range never influence
// the result, so the bitmap's unused tail bits (capacity not a multiple
// of 64) are harmless as long as they are zero — which setOccupied
// maintains.

// bmNext returns the lowest set bit in [from, to), or -1.
func bmNext(bm []uint64, from, to int) int {
	if from >= to {
		return -1
	}
	wi := from >> 6
	w := bm[wi] &^ (1<<(uint(from)&63) - 1)
	for {
		if w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			if s >= to {
				return -1
			}
			return s
		}
		wi++
		if wi<<6 >= to {
			return -1
		}
		w = bm[wi]
	}
}

// bmPrev returns the highest set bit in [from, to), or -1.
func bmPrev(bm []uint64, from, to int) int {
	if from >= to {
		return -1
	}
	wi := (to - 1) >> 6
	w := bm[wi] & (^uint64(0) >> (63 - uint(to-1)&63))
	for {
		if w != 0 {
			s := wi<<6 + 63 - bits.LeadingZeros64(w)
			if s < from {
				return -1
			}
			return s
		}
		if wi<<6 <= from {
			return -1
		}
		wi--
		w = bm[wi]
	}
}

// bmNextZero returns the lowest clear bit in [from, to), or -1.
func bmNextZero(bm []uint64, from, to int) int {
	if from >= to {
		return -1
	}
	wi := from >> 6
	w := ^bm[wi] &^ (1<<(uint(from)&63) - 1)
	for {
		if w != 0 {
			s := wi<<6 + bits.TrailingZeros64(w)
			if s >= to {
				return -1
			}
			return s
		}
		wi++
		if wi<<6 >= to {
			return -1
		}
		w = ^bm[wi]
	}
}

// bmPrevZero returns the highest clear bit in [from, to), or -1.
func bmPrevZero(bm []uint64, from, to int) int {
	if from >= to {
		return -1
	}
	wi := (to - 1) >> 6
	w := ^bm[wi] & (^uint64(0) >> (63 - uint(to-1)&63))
	for {
		if w != 0 {
			s := wi<<6 + 63 - bits.LeadingZeros64(w)
			if s < from {
				return -1
			}
			return s
		}
		if wi<<6 <= from {
			return -1
		}
		wi--
		w = ^bm[wi]
	}
}

// bmRank returns the number of set bits in [from, to).
func bmRank(bm []uint64, from, to int) int {
	if from >= to {
		return 0
	}
	wi := from >> 6
	last := (to - 1) >> 6
	w := bm[wi] &^ (1<<(uint(from)&63) - 1)
	if wi == last {
		if r := uint(to) & 63; r != 0 {
			w &= 1<<r - 1
		}
		return bits.OnesCount64(w)
	}
	n := bits.OnesCount64(w)
	for wi++; wi < last; wi++ {
		n += bits.OnesCount64(bm[wi])
	}
	w = bm[last]
	if r := uint(to) & 63; r != 0 {
		w &= 1<<r - 1
	}
	return n + bits.OnesCount64(w)
}

// bmSelect returns the position of the rank-th (0-based) set bit in
// [from, to), or -1 when fewer than rank+1 bits are set.
func bmSelect(bm []uint64, from, to, rank int) int {
	if from >= to || rank < 0 {
		return -1
	}
	wi := from >> 6
	w := bm[wi] &^ (1<<(uint(from)&63) - 1)
	for {
		c := bits.OnesCount64(w)
		if rank < c {
			for ; rank > 0; rank-- {
				w &= w - 1 // drop the lowest set bit
			}
			s := wi<<6 + bits.TrailingZeros64(w)
			if s >= to {
				return -1
			}
			return s
		}
		rank -= c
		wi++
		if wi<<6 >= to {
			return -1
		}
		w = bm[wi]
	}
}

// bmClearRange clears every bit in [from, to).
func bmClearRange(bm []uint64, from, to int) {
	if from >= to {
		return
	}
	wf := from >> 6
	wt := (to - 1) >> 6
	head := uint64(1)<<(uint(from)&63) - 1 // bits below from survive
	var tail uint64
	if r := uint(to) & 63; r != 0 {
		tail = ^(uint64(1)<<r - 1) // bits at and above to survive
	}
	if wf == wt {
		bm[wf] &= head | tail
		return
	}
	bm[wf] &= head
	for i := wf + 1; i < wt; i++ {
		bm[i] = 0
	}
	bm[wt] &= tail
}
