package core

// Delete removes one occurrence of key, reporting whether it existed.
// Underflowing segments trigger window rebalances; a too-sparse array
// shrinks. The returned error is only non-nil on storage allocation
// failure (shrink rebalances may allocate spare pages); the element is
// removed regardless.
//
// Steady-state deletes are allocation-free; shrinks are the documented
// escape hatch.
//
//rma:noalloc
func (a *Array) Delete(key int64) (bool, error) {
	if a.n == 0 {
		return false, nil
	}
	a.clock++
	seg := a.ix.FindUB(key)
	var rank int
	switch a.cfg.Layout {
	case LayoutClustered:
		rank = a.deleteClustered(seg, key)
	default:
		rank = a.deleteInterleaved(seg, key)
	}
	if rank < 0 {
		return false, nil
	}
	a.n--
	a.stats.Deletes++

	// Separator upkeep.
	if a.cards[seg] == 0 {
		a.clearSegMin(seg)
	} else if rank == 0 {
		a.setSegMin(seg, a.elemKey(seg, 0))
	}

	if a.det != nil && a.cfg.Adaptive == AdaptiveRMA {
		a.det.RecordDelete(seg, a.clock)
	}

	// The scan-oriented special rule: force a resize when the fill factor
	// drops below the configured bound (Section III).
	if f := a.cfg.Thresholds.ForceShrinkFill; f > 0 && a.Capacity() > a.cfg.PageSlots {
		if float64(a.n) < f*float64(a.Capacity()) {
			return true, a.shrink() //rma:alloc-ok — shrinks rebuild storage by design
		}
	}

	// Density walk: if the segment underflows rho1, rebalance the
	// smallest window that satisfies its lower threshold; if even the
	// root window fails, shrink.
	rho1 := a.cfg.Thresholds.Rho1
	if float64(a.cards[seg]) >= rho1*float64(a.segSlots) {
		return true, nil
	}
	for l := 2; l <= a.cal.Height(); l++ {
		lo, hi := a.cal.Window(seg, l)
		rho, _ := a.cal.At(l)
		capW := (hi - lo) * a.segSlots
		if float64(a.windowCard(lo, hi)) >= rho*float64(capW) {
			return true, a.rebalance(lo, hi, l)
		}
	}
	if a.Capacity() > a.cfg.PageSlots {
		return true, a.shrink() //rma:alloc-ok — shrinks rebuild storage by design
	}
	return true, nil
}

// deleteClustered removes one occurrence of key from a clustered segment,
// returning its former rank or -1 when absent.
func (a *Array) deleteClustered(seg int, key int64) int {
	kpg, off := a.segPage(a.keys, seg)
	vpg, voff := a.segPage(a.vals, seg)
	lo, hi := a.runBounds(seg)
	run := kpg[off+lo : off+hi]
	r := searchRun(run, key)
	if r < 0 {
		return -1
	}
	if seg&1 == 0 {
		// Right-packed: close the hole by shifting the prefix right.
		copy(kpg[off+lo+1:off+lo+r+1], kpg[off+lo:off+lo+r])
		copy(vpg[voff+lo+1:voff+lo+r+1], vpg[voff+lo:voff+lo+r])
	} else {
		// Left-packed: shift the suffix left.
		copy(kpg[off+lo+r:off+hi-1], kpg[off+lo+r+1:off+hi])
		copy(vpg[voff+lo+r:voff+hi-1], vpg[voff+lo+r+1:voff+hi])
	}
	a.cardAdd(seg, -1)
	return r
}

// deleteInterleaved removes one occurrence of key from an interleaved
// segment, returning its former rank or -1. The probe is the same SWAR
// comparator as Find; the rank falls out of a word-parallel occupancy
// rank over the slots before the hit.
func (a *Array) deleteInterleaved(seg int, key int64) int {
	base := seg * a.segSlots
	kpg, off := a.segPage(a.keys, seg)
	s := swarFindEq(kpg[off:off+a.segSlots], a.bitmap, base, key)
	if s < 0 {
		return -1
	}
	rank := bmRank(a.bitmap, base, s)
	a.setOccupied(s, false)
	a.cardAdd(seg, -1)
	return rank
}
