package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"rma/internal/calibrator"
	"rma/internal/detector"
	"rma/internal/vmem"
)

// Durability: crash-consistent checkpoints of one array into a
// vmem.FileRegion.
//
// The division of labor: vmem owns pages (dirty tracking, shadow-paged
// slot allocation, the epoch manifest); this file owns the array's
// logical state — geometry, cardinalities, the interleaved occupancy
// bitmap — serialized as the manifest's opaque meta blob. Everything
// else the array keeps in memory (Fenwick tree, calibrator, index,
// detector, scratch) is derived state, rebuilt on Open exactly the way
// a resize rebuilds it.
//
// A checkpoint never blocks correctness on timing: it persists whatever
// the array holds at the call, writing only pages whose content may
// have changed since the previous checkpoint (cardAdd and applyCards
// mark them; vmem's Swap and Grow mark their own). On any failure the
// array keeps serving from memory with its dirty bits intact, and the
// next Checkpoint retries the same work — graceful degradation to
// in-memory mode, pinned by the fault-injection tests.

// ErrNotDurable reports a Checkpoint call on an array without an
// attached durability region.
var ErrNotDurable = errors.New("core: array has no attached durability region")

const coreMetaMagic = "RMACORE1"

// AttachDurability binds the array to a file region and starts
// dirty-page tracking. Every currently mapped page is marked dirty, so
// the first checkpoint persists the array wholesale; later ones write
// only changed pages.
func (a *Array) AttachDurability(r *vmem.FileRegion) error {
	if r.PageSlots() != a.cfg.PageSlots {
		return fmt.Errorf("core: region pageSlots %d != config PageSlots %d",
			r.PageSlots(), a.cfg.PageSlots)
	}
	a.dur = r
	a.keys.EnableDirtyTracking()
	a.vals.EnableDirtyTracking()
	return nil
}

// Durable reports whether a durability region is attached.
func (a *Array) Durable() bool { return a.dur != nil }

// PageSlots returns the configured vmem page size in slots.
func (a *Array) PageSlots() int { return a.cfg.PageSlots }

// Region returns the attached durability region, nil when in-memory.
func (a *Array) Region() *vmem.FileRegion { return a.dur }

// Checkpoint persists the array's current state as a new epoch and
// returns it. keep names one older epoch that must stay recoverable
// (the shard layer passes the epoch its map-level checkpoint last
// published; 0 for none). On failure the array is unchanged and keeps
// serving from memory; the dirty bits survive, so the next call
// retries the same pages.
func (a *Array) Checkpoint(keep uint64) (uint64, error) {
	if a.dur == nil {
		return 0, ErrNotDurable
	}
	before := a.dur.Stats().PagesWritten
	epoch, err := a.dur.Checkpoint(a.encodeMeta(), keep, a.keys, a.vals)
	if err != nil {
		a.stats.CheckpointFailures++
		return 0, err
	}
	a.stats.Checkpoints++
	a.stats.CheckpointPages += a.dur.Stats().PagesWritten - before
	return epoch, nil
}

// Open rebuilds an array from the checkpoint at the given epoch (0 for
// the latest) of an opened file region, leaving the region attached so
// the array continues checkpointing incrementally. cfg must describe
// the same engine the checkpoint was taken with (layout and page size
// are verified against the stored meta; the rest — thresholds, index
// kind, adaptivity — are free to differ, like a config change across a
// restart).
func Open(r *vmem.FileRegion, cfg Config, epoch uint64) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	spaces, meta, _, err := r.Recover(epoch)
	if err != nil {
		return nil, err
	}
	if len(spaces) != 2 {
		return nil, fmt.Errorf("core: checkpoint holds %d spaces, want 2 (keys, vals)", len(spaces))
	}
	md, err := decodeCoreMeta(meta)
	if err != nil {
		return nil, err
	}
	if md.pageSlots != cfg.PageSlots {
		return nil, fmt.Errorf("core: checkpoint pageSlots %d != config PageSlots %d", md.pageSlots, cfg.PageSlots)
	}
	if Layout(md.layout) != cfg.Layout {
		return nil, fmt.Errorf("core: checkpoint layout %d != config layout %d", md.layout, cfg.Layout)
	}

	a := &Array{cfg: cfg}
	a.pageShift = uint(log2(cfg.PageSlots))
	a.keys, a.vals = spaces[0], spaces[1]
	a.segSlots, a.numSegs, a.n = md.segSlots, md.numSegs, md.n

	// Structural cross-checks: the meta must describe exactly the pages
	// recovered, and the cardinalities must be internally consistent —
	// a checkpoint that fails these is corrupt despite valid checksums
	// (which should be impossible; fail loudly rather than serve it).
	if md.numSegs <= 0 || md.segSlots <= 0 || md.numSegs*md.segSlots != a.keys.Slots() ||
		a.keys.Slots() != a.vals.Slots() {
		return nil, fmt.Errorf("core: checkpoint geometry %d segs x %d slots does not match %d recovered slots",
			md.numSegs, md.segSlots, a.keys.Slots())
	}
	sum := 0
	for _, c := range md.cards {
		if c < 0 || int(c) > md.segSlots {
			return nil, fmt.Errorf("core: checkpoint segment cardinality %d out of range", c)
		}
		sum += int(c)
	}
	if sum != md.n {
		return nil, fmt.Errorf("core: checkpoint cardinalities sum to %d, meta says n=%d", sum, md.n)
	}
	a.cards = md.cards
	a.fen.reset(a.cards)
	if cfg.Layout == LayoutInterleaved {
		if len(md.bitmap) != (a.Capacity()+63)/64 {
			return nil, fmt.Errorf("core: checkpoint bitmap has %d words, want %d",
				len(md.bitmap), (a.Capacity()+63)/64)
		}
		a.bitmap = md.bitmap
	}

	// Derived state, rebuilt the way resizeTo rebuilds it.
	a.cal = calibrator.NewTree(a.numSegs, cfg.Thresholds)
	a.rebuildIndexFromLayout()
	a.warmRebalanceScratch()
	if cfg.Adaptive != AdaptiveOff {
		a.det = detector.New(a.numSegs, cfg.Detector)
		a.warmAdaptiveScratch()
	}
	a.dur = r
	a.walLSN = md.walLSN
	a.publishView()
	return a, nil
}

// SetWALLSN records the LSN of the last WAL record applied to this
// array. The shard layer calls it under the shard lock at every logged
// write, so the value a checkpoint captures is exactly the replay
// floor: recovery re-applies only records above it.
func (a *Array) SetWALLSN(lsn uint64) { a.walLSN = lsn }

// WALLSN returns the last applied WAL record's LSN (0 before any).
func (a *Array) WALLSN() uint64 { return a.walLSN }

// DirtyPages returns the number of pages the next checkpoint would
// write (0 without dirty tracking) — the checkpoint scheduler's
// dirty-page signal.
func (a *Array) DirtyPages() int {
	if a.dur == nil {
		return 0
	}
	return a.keys.DirtyCount() + a.vals.DirtyCount()
}

// InjectAllocFailure arms failure injection on both page spaces: the
// keysN-th next keys allocation and valsN-th next vals allocation fail
// (negative disables). Testing hook only.
func (a *Array) InjectAllocFailure(keysN, valsN int) {
	a.keys.InjectAllocFailure(keysN)
	a.vals.InjectAllocFailure(valsN)
}

// --- meta encoding ----------------------------------------------------------
//
// The manifest meta blob carries the array state pages cannot:
//
//	magic "RMACORE1"          8 bytes
//	version                   u32 (currently 2)
//	pageSlots                 u32
//	segSlots                  u32
//	numSegs                   u32
//	layout                    u32
//	n                         u64
//	cards                     numSegs × u32
//	bitmapWords               u32 (0 for clustered)
//	bitmap                    bitmapWords × u64
//	walLSN                    u64 (version >= 2; the shard's WAL floor)
//
// Version 1 blobs (pre-WAL checkpoints) decode with walLSN = 0: replay
// re-applies the whole log, which is safe — the floor only prunes work.
//
// Integrity is the manifest's job (whole-manifest CRC-32C); this blob
// adds structural validation only.

type coreMeta struct {
	pageSlots int
	segSlots  int
	numSegs   int
	layout    int
	n         int
	cards     []int32
	bitmap    []uint64
	walLSN    uint64
}

func cle32(b []byte, x uint32) []byte {
	return append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
}

func cle64(b []byte, x uint64) []byte {
	b = cle32(b, uint32(x))
	return cle32(b, uint32(x>>32))
}

func (a *Array) encodeMeta() []byte {
	n := len(coreMetaMagic) + 4*5 + 8 + len(a.cards)*4 + 4 + len(a.bitmap)*8 + 8
	b := make([]byte, 0, n)
	b = append(b, coreMetaMagic...)
	b = cle32(b, 2)
	b = cle32(b, uint32(a.cfg.PageSlots))
	b = cle32(b, uint32(a.segSlots))
	b = cle32(b, uint32(a.numSegs))
	b = cle32(b, uint32(a.cfg.Layout))
	b = cle64(b, uint64(a.n))
	for _, c := range a.cards {
		b = cle32(b, uint32(c))
	}
	b = cle32(b, uint32(len(a.bitmap)))
	for _, w := range a.bitmap {
		b = cle64(b, w)
	}
	b = cle64(b, a.walLSN)
	return b
}

func decodeCoreMeta(meta []byte) (*coreMeta, error) {
	bad := fmt.Errorf("core: malformed checkpoint meta (%d bytes)", len(meta))
	if len(meta) < len(coreMetaMagic)+4*5+8 || string(meta[:len(coreMetaMagic)]) != coreMetaMagic {
		return nil, bad
	}
	b := meta[len(coreMetaMagic):]
	u32 := func() uint32 { x := binary.LittleEndian.Uint32(b); b = b[4:]; return x }
	version := u32()
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("core: unsupported checkpoint meta version %d", version)
	}
	md := &coreMeta{}
	md.pageSlots = int(u32())
	md.segSlots = int(u32())
	md.numSegs = int(u32())
	md.layout = int(u32())
	md.n = int(binary.LittleEndian.Uint64(b))
	b = b[8:]
	if md.numSegs < 0 || len(b) < md.numSegs*4+4 {
		return nil, bad
	}
	md.cards = make([]int32, md.numSegs)
	for i := range md.cards {
		md.cards[i] = int32(u32())
	}
	words := int(u32())
	tail := 0
	if version >= 2 {
		tail = 8 // trailing walLSN
	}
	if words < 0 || len(b) != words*8+tail {
		return nil, bad
	}
	if words > 0 {
		md.bitmap = make([]uint64, words)
		for i := range md.bitmap {
			md.bitmap[i] = binary.LittleEndian.Uint64(b)
			b = b[8:]
		}
	}
	if version >= 2 {
		md.walLSN = binary.LittleEndian.Uint64(b)
	}
	return md, nil
}
