package core

import "math/bits"

// Word-parallel key probes over the interleaved layout, the companion
// of bitmap.go: where the bm* helpers make occupancy word-parallel,
// these make the key comparisons themselves word-parallel. Each logical
// step covers four slots — 256 bits of key data — comparing all four
// keys branchlessly and merging the per-key result bits through two
// uint64 lanes (equality via the XOR + nonzero-sign trick, the 64-bit
// analogue of the zero-byte trick) before a single masked test against
// the occupancy nibble decides the step. Gap slots hold stale keys;
// masking with occupancy is what makes reading them safe.
//
// All helpers take the segment's key slice kseg (kseg[j] is slot
// base+j), the occupancy bitmap and the segment's absolute base slot,
// which callers guarantee is 4-aligned (segments are power-of-two sized
// and aligned, B >= 4). Occupied keys ascend with slot order within a
// segment — the invariant behind every early exit here.

// occNibble returns the four occupancy bits of slots s..s+3 (s must be
// 4-aligned, so the nibble never straddles a bitmap word).
func occNibble(bm []uint64, s int) uint {
	return uint(bm[s>>6]>>(uint(s)&63)) & 0xF
}

// occBit returns slot s's occupancy bit.
func occBit(bm []uint64, s int) uint {
	return uint(bm[s>>6]>>(uint(s)&63)) & 1
}

// b2u converts a comparison to its SWAR lane bit without a branch (the
// compiler lowers this to a flag materialization, not a jump).
func b2u(b bool) uint {
	if b {
		return 1
	}
	return 0
}

// swarFindEq returns the first occupied slot in the segment holding
// exactly key, or -1. A quad with no occupied slot costs one nibble
// test; otherwise the four XOR words decide equality and the
// greater-than lane ends the probe as soon as an occupied key passes
// the target.
//
//rma:noalloc
func swarFindEq(kseg []int64, bm []uint64, base int, key int64) int {
	n := len(kseg)
	j := 0
	for ; j+4 <= n; j += 4 {
		occ := occNibble(bm, base+j)
		if occ == 0 {
			continue
		}
		x0 := uint64(kseg[j] ^ key)
		x1 := uint64(kseg[j+1] ^ key)
		x2 := uint64(kseg[j+2] ^ key)
		x3 := uint64(kseg[j+3] ^ key)
		lane0 := (x0|-x0)>>63 | (x1|-x1)>>63<<1 // nonzero bits of keys 0,1
		lane1 := (x2|-x2)>>63 | (x3|-x3)>>63<<1 // nonzero bits of keys 2,3
		ne := uint(lane0 | lane1<<2)
		if hit := ^ne & occ; hit != 0 {
			return base + j + bits.TrailingZeros(hit)
		}
		gt := b2u(kseg[j] > key) | b2u(kseg[j+1] > key)<<1 |
			b2u(kseg[j+2] > key)<<2 | b2u(kseg[j+3] > key)<<3
		if gt&occ != 0 {
			return -1
		}
	}
	for ; j < n; j++ {
		if occBit(bm, base+j) == 0 {
			continue
		}
		if kseg[j] == key {
			return base + j
		}
		if kseg[j] > key {
			return -1
		}
	}
	return -1
}

// swarLowerBound returns the number of occupied slots in the segment
// holding keys strictly below x.
//
//rma:noalloc
func swarLowerBound(kseg []int64, bm []uint64, base int, x int64) int {
	return swarBound(kseg, bm, base, x, false)
}

// swarUpperBound returns the number of occupied slots in the segment
// holding keys at most x.
//
//rma:noalloc
func swarUpperBound(kseg []int64, bm []uint64, base int, x int64) int {
	return swarBound(kseg, bm, base, x, true)
}

//rma:noalloc
func swarBound(kseg []int64, bm []uint64, base int, x int64, inclusive bool) int {
	n := len(kseg)
	cnt := 0
	j := 0
	for ; j+4 <= n; j += 4 {
		occ := occNibble(bm, base+j)
		if occ == 0 {
			continue
		}
		var in uint
		if inclusive {
			in = b2u(kseg[j] <= x) | b2u(kseg[j+1] <= x)<<1 |
				b2u(kseg[j+2] <= x)<<2 | b2u(kseg[j+3] <= x)<<3
		} else {
			in = b2u(kseg[j] < x) | b2u(kseg[j+1] < x)<<1 |
				b2u(kseg[j+2] < x)<<2 | b2u(kseg[j+3] < x)<<3
		}
		cnt += bits.OnesCount(in & occ)
		if ^in&occ != 0 {
			return cnt // an occupied key past the bound: the rest are too
		}
	}
	for ; j < n; j++ {
		if occBit(bm, base+j) == 0 {
			continue
		}
		if kseg[j] < x || (inclusive && kseg[j] == x) {
			cnt++
		} else {
			break
		}
	}
	return cnt
}

// swarSeekGE returns the first occupied slot in the segment holding a
// key >= x, or -1: the range-scan entry probe.
//
//rma:noalloc
func swarSeekGE(kseg []int64, bm []uint64, base int, x int64) int {
	n := len(kseg)
	j := 0
	for ; j+4 <= n; j += 4 {
		occ := occNibble(bm, base+j)
		if occ == 0 {
			continue
		}
		ge := b2u(kseg[j] >= x) | b2u(kseg[j+1] >= x)<<1 |
			b2u(kseg[j+2] >= x)<<2 | b2u(kseg[j+3] >= x)<<3
		if m := ge & occ; m != 0 {
			return base + j + bits.TrailingZeros(m)
		}
	}
	for ; j < n; j++ {
		if occBit(bm, base+j) == 1 && kseg[j] >= x {
			return base + j
		}
	}
	return -1
}
