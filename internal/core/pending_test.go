package core

import (
	"testing"

	"rma/internal/workload"
)

// Tests for the deferred-rebalancing split (pending.go): a deferred-mode
// insert must stay correct at every instant, queue its density
// violations, and leave an array that maintenance returns to exactly the
// state the synchronous policy maintains.

// TestPendingQueueSemantics pins the ring buffer: FIFO order, dedup,
// full-queue refusal, wraparound.
func TestPendingQueueSemantics(t *testing.T) {
	var q pendingQueue
	if q.len() != 0 {
		t.Fatalf("fresh queue len %d", q.len())
	}
	for i := 0; i < maxPendingWindows; i++ {
		if !q.push(i) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if q.push(9999) {
		t.Fatal("push succeeded on a full queue")
	}
	if !q.push(7) {
		t.Fatal("dedup push of a queued segment must report success")
	}
	if q.len() != maxPendingWindows {
		t.Fatalf("len %d after dedup push, want %d", q.len(), maxPendingWindows)
	}
	for i := 0; i < maxPendingWindows; i++ {
		if got := q.pop(); got != i {
			t.Fatalf("pop %d = %d, want FIFO order", i, got)
		}
	}
	// Wraparound: interleave pushes and pops past the array boundary.
	for i := 0; i < 3*maxPendingWindows; i++ {
		if !q.push(i) {
			t.Fatalf("wraparound push %d refused", i)
		}
		if got := q.pop(); got != i {
			t.Fatalf("wraparound pop = %d, want %d", got, i)
		}
	}
}

// TestDeferredInsertQueuesViolations drives a deferred-mode array with
// enough inserts that the synchronous policy would rebalance large
// windows, and checks that violations are queued, every intermediate
// state validates, and FlushPending resolves the backlog with the
// deferred rebalances/grows actually firing.
func TestDeferredInsertQueuesViolations(t *testing.T) {
	for name, cfg := range configMatrix() {
		if cfg.Adaptive == AdaptiveAPMA {
			continue // no deletions involved, but keep the matrix simple
		}
		t.Run(name, func(t *testing.T) {
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a.SetDeferRebalance(true)
			if !a.DeferRebalance() {
				t.Fatal("DeferRebalance not reported on")
			}
			rng := workload.NewUniform(3, 0)
			for i := 0; i < 20_000; i++ {
				if err := a.Insert(rng.Next(), int64(i)); err != nil {
					t.Fatal(err)
				}
				if i%4096 == 4095 {
					if err := a.Validate(); err != nil {
						t.Fatalf("mid-flight validate after %d inserts: %v", i+1, err)
					}
					if err := a.FlushPending(); err != nil {
						t.Fatal(err)
					}
				}
			}
			st := a.Stats()
			if st.DeferredWindows == 0 {
				t.Fatal("20k deferred-mode inserts never deferred a window; the split is dead")
			}
			if err := a.FlushPending(); err != nil {
				t.Fatal(err)
			}
			if a.PendingCount() != 0 {
				t.Fatalf("%d windows still pending after FlushPending", a.PendingCount())
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			if a.Size() != 20_000 {
				t.Fatalf("size %d after 20k inserts", a.Size())
			}
		})
	}
}

// TestMaintainAfterFlushIsNoop: once flushed, maintenance finds nothing.
func TestMaintainAfterFlushIsNoop(t *testing.T) {
	a, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a.SetDeferRebalance(true)
	rng := workload.NewUniform(5, 0)
	for i := 0; i < 5000; i++ {
		if err := a.Insert(rng.Next(), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.FlushPending(); err != nil {
		t.Fatal(err)
	}
	did, err := a.MaintainOne()
	if err != nil {
		t.Fatal(err)
	}
	if did {
		t.Fatal("MaintainOne reported work on an empty queue")
	}
}

// TestDeferredMatchesSynchronousContent: the deferred pipeline must be
// invisible to the logical content — same multiset of keys/values as the
// synchronous policy after the same inserts, and all density violations
// repaired after a flush (every window back within its tau).
func TestDeferredMatchesSynchronousContent(t *testing.T) {
	cfg := testConfig()
	sync, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	def.SetDeferRebalance(true)

	rng := workload.NewUniform(11, 0)
	for i := 0; i < 12_000; i++ {
		k := rng.Next()
		if err := sync.Insert(k, k^1); err != nil {
			t.Fatal(err)
		}
		if err := def.Insert(k, k^1); err != nil {
			t.Fatal(err)
		}
	}
	if err := def.FlushPending(); err != nil {
		t.Fatal(err)
	}

	if sync.Size() != def.Size() {
		t.Fatalf("size diverged: sync %d, deferred %d", sync.Size(), def.Size())
	}
	// Same ordered element sequence.
	type kv struct{ k, v int64 }
	collect := func(a *Array) []kv {
		var out []kv
		a.Scan(func(k, v int64) bool { out = append(out, kv{k, v}); return true })
		return out
	}
	sv, dv := collect(sync), collect(def)
	for i := range sv {
		if sv[i] != dv[i] {
			t.Fatalf("element %d diverged: sync %+v, deferred %+v", i, sv[i], dv[i])
		}
	}

	// Note: "every window within its tau" is deliberately NOT asserted —
	// it is not an engine invariant even synchronously (the adaptive
	// policy skews densities on purpose). What must hold: structural
	// validity and an empty queue.
	if def.PendingCount() != 0 {
		t.Fatalf("%d windows pending after flush", def.PendingCount())
	}
	if err := def.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestDeferredInsertAllocationFree extends the zero-alloc guarantee to
// the deferred write path: local spreads plus queue pushes must not
// allocate either (the queue is an embedded ring).
func TestDeferredInsertAllocationFree(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = AdaptiveOff
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.SetDeferRebalance(true)

	rng := workload.NewUniform(7, 0)
	for i := 0; i < 6000; i++ {
		if err := a.Insert(rng.Next(), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.FlushPending(); err != nil {
		t.Fatal(err)
	}
	for grows := a.Stats().Grows; a.Stats().Grows == grows; {
		if err := a.Insert(rng.Next(), 1); err != nil {
			t.Fatal(err)
		}
	}
	_, tauRoot := a.cal.At(a.cal.Height())
	for float64(a.Size()) < 0.8*tauRoot*float64(a.Capacity()) {
		if err := a.Insert(rng.Next(), 1); err != nil {
			t.Fatal(err)
		}
	}

	before := a.Stats()
	allocs := testing.AllocsPerRun(5, func() {
		for i := 0; i < 64; i++ {
			if err := a.Insert(rng.Next(), 1); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.FlushPending(); err != nil {
			t.Fatal(err)
		}
	})
	after := a.Stats()
	if after.Resizes != before.Resizes {
		t.Skipf("a resize fired during the measured window (%d -> %d)", before.Resizes, after.Resizes)
	}
	if allocs != 0 {
		t.Errorf("deferred insert+flush: %.2f allocs/run, want 0 (%d deferred, %d maintenance runs)",
			allocs, after.DeferredWindows-before.DeferredWindows, after.MaintenanceRuns-before.MaintenanceRuns)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
