package core

import (
	"testing"
	"testing/quick"

	"rma/internal/workload"
)

// TestRewiredMatchesTwoPassContent: the rewired and two-pass rebalance
// mechanisms must be observationally identical — same content, same
// order, same cards — differing only in copy/swap counts.
func TestRewiredMatchesTwoPassContent(t *testing.T) {
	mk := func(mode RebalanceMode) *Array {
		cfg := testConfig()
		cfg.Rebalance = mode
		cfg.Adaptive = AdaptiveOff
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	rw, tp := mk(RebalanceRewired), mk(RebalanceTwoPass)
	g := workload.NewUniform(77, 1<<24)
	for i := 0; i < 5000; i++ {
		k := g.Next()
		if err := rw.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		if err := tp.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	var a, b []int64
	rw.Scan(func(k, _ int64) bool { a = append(a, k); return true })
	tp.Scan(func(k, _ int64) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("content diverges at %d", i)
		}
	}
	// The rewired variant must have performed swaps; the two-pass variant
	// must have performed strictly more element copies.
	if rw.Stats().PageSwaps == 0 {
		t.Fatal("rewired array never swapped a page")
	}
	if tp.Stats().PageSwaps != 0 {
		t.Fatal("two-pass array swapped pages")
	}
	if tp.Stats().ElementCopies <= rw.Stats().ElementCopies {
		t.Fatalf("two-pass copies (%d) should exceed rewired copies (%d)",
			tp.Stats().ElementCopies, rw.Stats().ElementCopies)
	}
}

// TestPoolReuseAcrossResizes: after the first resize, rewired grows must
// recycle pooled physical pages instead of allocating fresh zeroed ones
// every time (the paper's resize benefit).
func TestPoolReuseAcrossResizes(t *testing.T) {
	cfg := testConfig()
	a := mustNew(t, cfg)
	for i := 0; i < 20000; i++ {
		mustInsert(t, a, int64(i), 0)
	}
	if a.Stats().Grows < 3 {
		t.Fatalf("expected several grows, got %d", a.Stats().Grows)
	}
	ks := a.keys.Stats()
	if ks.PoolReuses == 0 {
		t.Fatal("no physical pages were recycled across resizes")
	}
}

// TestAllocFailureDuringRebalanceLeavesArrayConsistent injects a failure
// into the spare-page acquisition of a rewired rebalance and verifies the
// array survives untouched and recovers.
func TestAllocFailureDuringRebalanceLeavesArrayConsistent(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = AdaptiveOff
	a := mustNew(t, cfg)
	for i := 0; i < 500; i++ {
		mustInsert(t, a, int64(i*2), int64(i))
	}
	sizeBefore := a.Size()

	// Make every key allocation fail until reset; insert keys until some
	// insert needs a rebalance/resize page and fails.
	a.keys.InjectAllocFailure(0)
	var failed bool
	k := int64(100001)
	for i := 0; i < 2000; i++ {
		if err := a.Insert(k, 0); err != nil {
			failed = true
			break
		}
		k += 2
		sizeBefore++
	}
	if !failed {
		t.Fatal("no insert failed under allocation-failure injection")
	}
	if a.Size() != sizeBefore {
		t.Fatalf("size drifted across failed insert: %d vs %d", a.Size(), sizeBefore)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("array inconsistent after failed rebalance: %v", err)
	}
	// Recovery: disable injection; the failed insert must now succeed.
	a.keys.InjectAllocFailure(-1)
	mustInsert(t, a, k, 0)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAllocFailureDuringValsAcquisition covers the second acquisition
// path (keys succeed, values fail).
func TestAllocFailureDuringValsAcquisition(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = AdaptiveOff
	a := mustNew(t, cfg)
	for i := 0; i < 500; i++ {
		mustInsert(t, a, int64(i*2), int64(i))
	}
	a.vals.InjectAllocFailure(0)
	failed := false
	size := a.Size()
	for i := 0; i < 2000; i++ {
		if err := a.Insert(int64(200000+i*2), 0); err != nil {
			failed = true
			break
		}
		size++
	}
	if !failed {
		t.Fatal("no failure triggered")
	}
	if a.Size() != size {
		t.Fatalf("size drifted: %d vs %d", a.Size(), size)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if k := a.keys.SparePages(); k > a.keys.NumPages() {
		t.Fatalf("keys spare pool leaked beyond cap: %d spares", k)
	}
	a.vals.InjectAllocFailure(-1)
	mustInsert(t, a, 999999, 0)
}

// TestEvenTargets property: conservation and max spread of one.
func TestEvenTargetsProperty(t *testing.T) {
	f := func(nsegRaw uint8, cntRaw uint16) bool {
		nseg := int(nsegRaw%63) + 1
		cnt := int(cntRaw)
		out := evenTargets(nseg, cnt, make([]int, nseg))
		sum, mn, mx := 0, 1<<30, 0
		for _, v := range out {
			sum += v
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		return sum == cnt && mx-mn <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCopySpansProperty: copySpans must be equivalent to concatenating
// sources and slicing into destinations.
func TestCopySpansProperty(t *testing.T) {
	f := func(lens []uint8, dstSplit uint8) bool {
		var src []span
		var flatK, flatV []int64
		x := int64(0)
		for _, l := range lens {
			n := int(l % 17)
			k := make([]int64, n)
			v := make([]int64, n)
			for i := range k {
				k[i] = x
				v[i] = -x
				x++
			}
			src = append(src, span{k, v})
			flatK = append(flatK, k...)
			flatV = append(flatV, v...)
		}
		total := len(flatK)
		// Split destination into two chunks at dstSplit%total.
		cut := 0
		if total > 0 {
			cut = int(dstSplit) % (total + 1)
		}
		d1k, d1v := make([]int64, cut), make([]int64, cut)
		d2k, d2v := make([]int64, total-cut), make([]int64, total-cut)
		copySpans([]span{{d1k, d1v}, {d2k, d2v}}, src)
		for i := 0; i < cut; i++ {
			if d1k[i] != flatK[i] || d1v[i] != flatV[i] {
				return false
			}
		}
		for i := cut; i < total; i++ {
			if d2k[i-cut] != flatK[i] || d2v[i-cut] != flatV[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestComplexityGrowthInsertUniform is the Fig 4 sanity check: the
// per-insert rebalance work under uniform keys must grow sub-linearly
// (amortized O(log^2 N) elements moved per insert).
func TestComplexityGrowthInsertUniform(t *testing.T) {
	cfg := testConfig()
	cfg.SegmentSlots = 32
	cfg.PageSlots = 256
	work := func(n int) float64 {
		a := mustNew(t, cfg)
		g := workload.NewUniform(1, 0)
		for i := 0; i < n; i++ {
			mustInsert(t, a, g.Next(), 0)
		}
		return float64(a.Stats().RebalancedElements+a.Stats().ElementCopies) / float64(n)
	}
	small := work(4000)
	large := work(64000)
	// 16x the data must cost far less than 16x the per-insert work;
	// allow log^2 growth plus slack.
	if large > small*6 {
		t.Fatalf("per-insert work grew from %.1f to %.1f (x%.1f): super-polylog",
			small, large, large/small)
	}
}
