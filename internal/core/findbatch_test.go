package core

import (
	"sort"
	"testing"

	"rma/internal/workload"
)

// findBatchConfigs covers both layouts on every index kind at small
// segment sizes, so batches cross many segments and the memoized
// descent, the galloping advance and the SWAR probes all fire.
func findBatchConfigs() []Config {
	var out []Config
	for _, layout := range []Layout{LayoutClustered, LayoutInterleaved} {
		for _, ix := range []IndexKind{IndexEytzinger, IndexStatic, IndexDynamic} {
			cfg := DefaultConfig()
			cfg.Adaptive = AdaptiveOff
			cfg.SegmentSlots = 8
			cfg.PageSlots = 32
			cfg.Layout = layout
			cfg.Index = ix
			out = append(out, cfg)
		}
	}
	return out
}

// TestFindBatchMatchesFind is the batched-lookup differential: on every
// layout × index corner, FindBatch over unsorted, sorted, reversed and
// duplicate-laden probe sets (hits and misses) must answer exactly like
// per-key Find, at every batch size around the sort cutoffs.
func TestFindBatchMatchesFind(t *testing.T) {
	for _, cfg := range findBatchConfigs() {
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		g := workload.NewRNG(99)
		keys := make([]int64, 4096)
		for i := range keys {
			keys[i] = int64(g.Uint64n(1<<40))&^1 + 42
		}
		for _, k := range keys {
			if err := a.Insert(k, workload.ValueFor(k)); err != nil {
				t.Fatal(err)
			}
		}

		var out []Lookup
		for _, size := range []int{0, 1, 7, 8, 9, 63, 64, 65, 1024} {
			probes := make([]int64, size)
			for i := range probes {
				switch g.Uint64n(4) {
				case 0: // guaranteed miss (loaded keys are even+42, so odd misses)
					probes[i] = keys[g.Uint64n(uint64(len(keys)))] | 1
				case 1: // duplicate of an earlier probe
					if i > 0 {
						probes[i] = probes[g.Uint64n(uint64(i))]
						break
					}
					fallthrough
				default: // hit
					probes[i] = keys[g.Uint64n(uint64(len(keys)))]
				}
			}
			for _, order := range []string{"random", "sorted", "reversed"} {
				set := append([]int64(nil), probes...)
				switch order {
				case "sorted":
					sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
				case "reversed":
					sort.Slice(set, func(i, j int) bool { return set[i] > set[j] })
				}
				out = a.FindBatch(set, out)
				if len(out) != len(set) {
					t.Fatalf("cfg=%+v size=%d %s: len(out) = %d", cfg.Index, size, order, len(out))
				}
				for i, k := range set {
					v, ok := a.Find(k)
					if out[i].Val != v || out[i].OK != ok {
						t.Fatalf("layout=%d index=%d size=%d %s: FindBatch[%d] key %d = (%d,%v), Find = (%d,%v)",
							cfg.Layout, cfg.Index, size, order, i, k, out[i].Val, out[i].OK, v, ok)
					}
				}
			}
		}

		// An empty array answers all-miss at every batch size.
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out = e.FindBatch(keys[:100], out)
		for i := range out {
			if out[i].OK {
				t.Fatal("FindBatch on empty array reported a hit")
			}
		}
	}
}

// TestFindBatchCountsLookups pins the stats contract: one Lookups tick
// per probed key.
func TestFindBatchCountsLookups(t *testing.T) {
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := a.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	probes := make([]int64, 37)
	a.FindBatch(probes, nil)
	if got := a.Stats().Lookups; got != 37 {
		t.Fatalf("Lookups = %d after a 37-key batch, want 37", got)
	}
}

// TestFindBatchAllocationFree proves the satellite acceptance: once the
// probe scratch has seen the batch size, FindBatch performs zero heap
// allocations per call on both layouts — including the radix sort and
// the output reuse.
func TestFindBatchAllocationFree(t *testing.T) {
	for _, layout := range []struct {
		name string
		l    Layout
	}{{"clustered", LayoutClustered}, {"interleaved", LayoutInterleaved}} {
		t.Run(layout.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Adaptive = AdaptiveOff
			cfg.Layout = layout.l
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			g := workload.NewRNG(5)
			keys := make([]int64, 1<<15)
			for i := range keys {
				keys[i] = int64(g.Uint64())
				if err := a.Insert(keys[i], int64(i)); err != nil {
					t.Fatal(err)
				}
			}
			probes := make([]int64, 1024)
			for i := range probes {
				probes[i] = keys[g.Uint64n(uint64(len(keys)))]
			}
			out := a.FindBatch(probes, nil) // warm scratch and output once
			allocs := testing.AllocsPerRun(10, func() {
				out = a.FindBatch(probes, out)
				out = a.FindBatch(probes[:100], out) // smaller batches reuse too
			})
			if allocs > 0 {
				t.Errorf("steady-state FindBatch allocates %.1f per run, want 0", allocs)
			}
		})
	}
}
