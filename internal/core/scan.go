package core

// ScanRange calls yield for every element with lo <= key <= hi in key
// order, stopping early if yield returns false. On the clustered layout
// the loop body runs over dense runs — one tight loop per pair of
// segments, no gap checks; on the interleaved layout every slot pays the
// occupancy test (the cost the clustering feature removes).
func (a *Array) ScanRange(lo, hi int64, yield func(key, val int64) bool) {
	if a.n == 0 || lo > hi {
		return
	}
	if a.cfg.Layout == LayoutInterleaved {
		a.scanRangeInterleaved(lo, hi, yield)
		return
	}
	startSeg := a.ix.FindLB(lo)
	for seg := startSeg; seg < a.numSegs; seg++ {
		c := int(a.cards[seg])
		if c == 0 {
			continue
		}
		kpg, off := a.segPage(a.keys, seg)
		vpg, voff := a.segPage(a.vals, seg)
		rl, rh := a.runBounds(seg)
		runK := kpg[off+rl : off+rh]
		runV := vpg[voff+rl : voff+rh]
		start := 0
		if seg == startSeg {
			start = lowerBoundRun(runK, lo)
		}
		for i := start; i < len(runK); i++ {
			k := runK[i]
			if k > hi {
				return
			}
			if !yield(k, runV[i]) {
				return
			}
		}
	}
}

// scanRangeInterleaved walks occupied slots word-parallel, holding the
// current page's key and value slices across every slot it contains.
// The scan enters at the start segment's SWAR-probed first in-range
// slot, so the loop body never re-tests the lower bound: every slot
// from the entry point on holds a key >= lo (later segments' separators
// are >= lo by the index routing).
func (a *Array) scanRangeInterleaved(lo, hi int64, yield func(key, val int64) bool) {
	capSlots := a.Capacity()
	mask := a.cfg.PageSlots - 1
	s := a.seekSlotGE(a.ix.FindLB(lo), lo)
	for s != -1 {
		page := s >> a.pageShift
		kpg, vpg := a.keys.Page(page), a.vals.Page(page)
		pageEnd := (page + 1) << a.pageShift
		for s != -1 && s < pageEnd {
			k := kpg[s&mask]
			if k > hi {
				return
			}
			if !yield(k, vpg[s&mask]) {
				return
			}
			s = bmNext(a.bitmap, s+1, capSlots)
		}
	}
}

// seekSlotGE returns the first occupied slot at or after segment
// startSeg whose key is >= lo, assuming every element right of startSeg
// already satisfies the bound (startSeg = FindLB(lo)): one SWAR probe
// of the start segment, then the next occupied slot after it.
func (a *Array) seekSlotGE(startSeg int, lo int64) int {
	base := startSeg * a.segSlots
	kpg, off := a.segPage(a.keys, startSeg)
	if s := swarSeekGE(kpg[off:off+a.segSlots], a.bitmap, base, lo); s != -1 {
		return s
	}
	return bmNext(a.bitmap, base+a.segSlots, a.Capacity())
}

// Scan iterates every element in key order.
func (a *Array) Scan(yield func(key, val int64) bool) {
	a.ScanRange(minInt64, maxInt64, yield)
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// Sum aggregates the elements with lo <= key <= hi, returning their count
// and the sum of their values: the paper's range-scan measurement
// (Fig 10c sums the values in a contiguous region). It is the fastest
// scan path: no callback, dense inner loops per segment pair.
func (a *Array) Sum(lo, hi int64) (count int, sum int64) {
	if a.n == 0 || lo > hi {
		return 0, 0
	}
	if a.cfg.Layout == LayoutInterleaved {
		return a.sumInterleaved(lo, hi)
	}
	startSeg := a.ix.FindLB(lo)
	for seg := startSeg; seg < a.numSegs; seg++ {
		c := int(a.cards[seg])
		if c == 0 {
			continue
		}
		kpg, off := a.segPage(a.keys, seg)
		vpg, voff := a.segPage(a.vals, seg)
		rl, rh := a.runBounds(seg)
		runK := kpg[off+rl : off+rh]
		runV := vpg[voff+rl : voff+rh]

		start := 0
		if seg == startSeg {
			start = lowerBoundRun(runK, lo)
		}
		end := len(runK)
		last := runK[len(runK)-1]
		if last > hi {
			end = upperBoundRun(runK, hi)
		}
		for i := start; i < end; i++ {
			sum += runV[i]
		}
		count += end - start
		if end < len(runK) {
			return count, sum
		}
	}
	return count, sum
}

func (a *Array) sumInterleaved(lo, hi int64) (count int, sum int64) {
	capSlots := a.Capacity()
	mask := a.cfg.PageSlots - 1
	s := a.seekSlotGE(a.ix.FindLB(lo), lo)
	for s != -1 {
		page := s >> a.pageShift
		kpg, vpg := a.keys.Page(page), a.vals.Page(page)
		pageEnd := (page + 1) << a.pageShift
		for s != -1 && s < pageEnd {
			k := kpg[s&mask]
			if k > hi {
				return count, sum
			}
			sum += vpg[s&mask]
			count++
			s = bmNext(a.bitmap, s+1, capSlots)
		}
	}
	return count, sum
}

// SumAll aggregates the whole array (full column scan).
func (a *Array) SumAll() (count int, sum int64) {
	return a.Sum(minInt64, maxInt64)
}
