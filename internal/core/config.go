// Package core implements the paper's sparse arrays: one configurable
// engine that spans the whole design space from the Traditional PMA
// (TPMA) baseline of Section II to the full Rewired Memory Array (RMA) of
// Sections III-IV. Every feature the paper ablates in Fig 14 —
// clustering, fixed-size segments, the static index, memory rewiring,
// adaptive rebalancing — is a configuration axis that switches a real
// code path, so the cumulative-contributions experiment toggles exactly
// the mechanisms the paper describes.
package core

import (
	"fmt"

	"rma/internal/calibrator"
	"rma/internal/detector"
)

// Layout selects how elements sit inside segments.
type Layout int

const (
	// LayoutClustered packs the elements of each segment toward one end —
	// the right end for the first segment of every pair and the left end
	// for the second — so every pair of segments exposes one contiguous
	// run and scans need no per-slot gap test (Section III "Segments").
	LayoutClustered Layout = iota
	// LayoutInterleaved spreads elements across the segment's slots with
	// gaps in between, tracked by an occupancy bitmap: the classic PMA
	// layout whose per-slot emptiness check costs a branch misprediction
	// per element scanned (Section I).
	LayoutInterleaved
)

// SegmentSizing selects how the segment capacity evolves.
type SegmentSizing int

const (
	// SizingFixed keeps the segment size constant at Config.SegmentSlots,
	// tuned to the I/O-model block size like an (a,b)-tree leaf
	// (Section III).
	SizingFixed SegmentSizing = iota
	// SizingLogCap recomputes the segment size as Theta(log2 C) on every
	// resize: the RAM-model remnant used by traditional PMAs, which the
	// paper shows produces segments too small for scans and updates.
	SizingLogCap
)

// IndexKind selects the structure that routes keys to segments.
type IndexKind int

const (
	// IndexStatic is the RMA's pointer-free packed index (Fig 5):
	// fanout-65 nodes, O(1) single-entry updates, rebuilt only on resize.
	IndexStatic IndexKind = iota
	// IndexDynamic is the flat sorted array of segment minima that
	// traditional PMAs keep on the side, binary searched on every lookup.
	IndexDynamic
	// IndexEytzinger is the branchless evolution of the static index:
	// separators in BFS (Eytzinger) order, descended with one compare
	// and one shift-or per level — no inner binary search — with the
	// grandchild cache lines touched ahead of the compare chain, plus a
	// linear fast path for shallow arrays. Same O(1) separator updates
	// and resize-only rebuilds as IndexStatic; the default.
	IndexEytzinger
)

// RebalanceMode selects the physical redistribution mechanism.
type RebalanceMode int

const (
	// RebalanceRewired writes each element once into spare physical pages
	// and swaps virtual page-table entries (Fig 6); windows smaller than
	// a page fall back to the two-pass scheme, as in the paper.
	RebalanceRewired RebalanceMode = iota
	// RebalanceTwoPass is the classic scheme: compact every element into
	// auxiliary storage, then copy it again to its final position — two
	// copies per element.
	RebalanceTwoPass
)

// AdaptivePolicy selects the rebalancing policy.
type AdaptivePolicy int

const (
	// AdaptiveOff rebalances evenly (TPMA).
	AdaptiveOff AdaptivePolicy = iota
	// AdaptiveRMA is the paper's adaptive algorithm (Section IV): marked
	// intervals follow the predicted key frontier and move to the
	// least-loaded child.
	AdaptiveRMA
	// AdaptiveAPMA mimics Bender & Hu's APMA policy: whole-segment marks
	// pinned to their original side of the window. Under sorted
	// sequential insertions this is the policy whose "ping-pong" failure
	// mode Section II describes. It does not support deletions, like the
	// original.
	AdaptiveAPMA
)

// Config assembles an engine configuration. The zero value is not valid;
// start from DefaultConfig.
type Config struct {
	// SegmentSlots is the segment capacity B in elements (power of two,
	// >= 4). Ignored when Sizing == SizingLogCap, which derives it from
	// the capacity.
	SegmentSlots int
	Sizing       SegmentSizing
	Layout       Layout
	Index        IndexKind
	Rebalance    RebalanceMode
	Adaptive     AdaptivePolicy
	Thresholds   calibrator.Thresholds
	// IndexFanout is the static index node fanout (children per node);
	// the paper fixes 64 separator keys per node, i.e. fanout 65.
	IndexFanout int
	// PageSlots is the vmem page size in slots (power of two). It must
	// be at least 2*SegmentSlots so a segment pair never crosses a page.
	PageSlots int
	// Detector configures adaptive rebalancing; ignored when
	// Adaptive == AdaptiveOff.
	Detector detector.Config
}

// DefaultConfig returns the paper's RMA configuration — B=128 clustered
// fixed-size segments, rewired rebalances on 2048-slot (16 KB) pages,
// adaptive rebalancing, update-oriented thresholds (the defaults of
// Section V) — with one upgrade over the paper: the segment index
// defaults to the branchless Eytzinger descent (IndexEytzinger). Set
// Index to IndexStatic for the paper's exact Fig 5 structure.
func DefaultConfig() Config {
	return Config{
		SegmentSlots: 128,
		Sizing:       SizingFixed,
		Layout:       LayoutClustered,
		Index:        IndexEytzinger,
		Rebalance:    RebalanceRewired,
		Adaptive:     AdaptiveRMA,
		Thresholds:   calibrator.UpdateOriented(),
		IndexFanout:  65,
		PageSlots:    2048,
		Detector:     detector.DefaultConfig(),
	}
}

// BaselineConfig returns the TPMA baseline of Fig 1a / Fig 14:
// interleaved layout, log-sized segments, dynamic side index, two-pass
// rebalances, even rebalancing, literature thresholds.
func BaselineConfig() Config {
	cfg := DefaultConfig()
	cfg.Sizing = SizingLogCap
	cfg.Layout = LayoutInterleaved
	cfg.Index = IndexDynamic
	cfg.Rebalance = RebalanceTwoPass
	cfg.Adaptive = AdaptiveOff
	cfg.Thresholds = calibrator.Baseline()
	return cfg
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Sizing == SizingFixed {
		if c.SegmentSlots < 4 || c.SegmentSlots&(c.SegmentSlots-1) != 0 {
			return fmt.Errorf("core: SegmentSlots must be a power of two >= 4, got %d", c.SegmentSlots)
		}
		if c.PageSlots < 2*c.SegmentSlots {
			return fmt.Errorf("core: PageSlots %d < 2*SegmentSlots %d (a segment pair must fit in a page)",
				c.PageSlots, c.SegmentSlots)
		}
	}
	if c.PageSlots < 8 || c.PageSlots&(c.PageSlots-1) != 0 {
		return fmt.Errorf("core: PageSlots must be a power of two >= 8, got %d", c.PageSlots)
	}
	if c.IndexFanout < 2 {
		return fmt.Errorf("core: IndexFanout must be >= 2, got %d", c.IndexFanout)
	}
	if err := c.Thresholds.Validate(); err != nil {
		return err
	}
	if c.Sizing == SizingLogCap && c.Thresholds.Strategy != calibrator.ResizeDouble {
		// Log-sized segments are recomputed from the capacity; the
		// proportional strategy's arbitrary capacities would break the
		// power-of-two segment size.
		return fmt.Errorf("core: SizingLogCap requires the doubling resize strategy")
	}
	if c.Adaptive != AdaptiveOff {
		if err := c.Detector.Validate(); err != nil {
			return err
		}
	}
	if c.Adaptive == AdaptiveAPMA && c.Thresholds.ForceShrinkFill > 0 {
		// APMA has no deletion support; the forced-shrink rule is a
		// deletion feature and would never fire, but reject the
		// combination to keep configurations honest.
		return fmt.Errorf("core: APMA policy does not support deletions (ForceShrinkFill set)")
	}
	return nil
}

// Stats aggregates the engine's operation counters, exposed so the
// benchmark harness can attribute costs the way the paper does (e.g.
// "rebalances are responsible for between 2%% and 50%% of the cost of
// insertions").
type Stats struct {
	Inserts, Deletes, Lookups uint64
	Rebalances                uint64 // windows rebalanced (excluding resizes)
	AdaptiveRebalances        uint64 // rebalances that used marked intervals
	RebalancedSegments        uint64 // total segments touched by rebalances
	RebalancedElements        uint64 // total elements moved by rebalances
	Resizes, Grows, Shrinks   uint64
	ElementCopies             uint64 // element copy operations performed
	PageSwaps                 uint64 // virtual page rewirings
	SlotScans                 uint64 // slots covered by interleaved stream readers (linearity guard)
	MaxWindowSegments         int    // largest window ever rebalanced
	BulkLoads                 uint64
	// DeferredWindows counts density violations a deferred-mode insert
	// queued instead of repairing synchronously; MaintenanceRuns counts
	// the maintenance passes that found a violation still standing and
	// executed the deferred rebalance or grow.
	DeferredWindows uint64
	MaintenanceRuns uint64
	// AllocFailures counts storage-substrate allocation failures
	// surfaced by rebalance/resize machinery (failure injection in
	// tests; a real allocator would return them under memory pressure).
	// The array stays consistent and serving after each one — the
	// operation that hit the failure reports an error and the structure
	// rolls back to its pre-operation state.
	AllocFailures uint64
	// Durability counters (zero unless AttachDurability): Checkpoints
	// and CheckpointFailures count published and failed checkpoint
	// attempts; CheckpointPages counts dirty pages persisted across all
	// published checkpoints (the incremental-write economy: steady-state
	// checkpoints write only what changed).
	Checkpoints        uint64
	CheckpointFailures uint64
	CheckpointPages    uint64
	// Lock-free read-path counters (zero unless the shard layer enables
	// seqlock reads; maintained there, merged into the shard-level
	// Stats): LockFreeReads counts point reads served without the shard
	// lock; ReadRetries counts seqlock attempts discarded by a version
	// change or a torn view; ReadFallbacks counts reads that exhausted
	// their retry budget and took the locked path; EpochAdvances counts
	// successful vmem epoch-gate advances (retired-page reclamation);
	// SnapshotBreaks counts cross-shard snapshot reads that lost
	// version-vector consistency and degraded to per-shard semantics.
	LockFreeReads  uint64
	ReadRetries    uint64
	ReadFallbacks  uint64
	EpochAdvances  uint64
	SnapshotBreaks uint64
	// Write-ahead-log counters (zero unless the shard layer enables a
	// WAL; maintained there, merged into the shard-level Stats).
	// WALRecords/WALWaves/WALSyncs count staged records, commit waves,
	// and fsyncs; the rotation/truncation pairs count segment lifecycle
	// events; the *Failures counters count injected or real faults on
	// each edge — after every one the store keeps serving with its last
	// recovery point intact. AutoCheckpoints counts checkpoints the
	// scheduler initiated on its own (dirty pages, WAL bytes, or elapsed
	// time crossed a threshold).
	WALRecords          uint64
	WALWaves            uint64
	WALSyncs            uint64
	WALRotations        uint64
	WALTruncations      uint64
	WALAppendFailures   uint64
	WALSyncFailures     uint64
	WALRotateFailures   uint64
	WALTruncateFailures uint64
	AutoCheckpoints     uint64
}
