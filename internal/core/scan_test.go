package core

import (
	"testing"
	"testing/quick"

	"rma/internal/workload"
)

func loadedArray(t *testing.T, cfg Config, n int, seed uint64) (*Array, []int64) {
	t.Helper()
	a := mustNew(t, cfg)
	g := workload.NewUniform(seed, 1<<24)
	keys := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		k := g.Next()
		mustInsert(t, a, k, workload.ValueFor(k))
		keys = append(keys, k)
	}
	return a, keys
}

func TestScanRangeMatchesSum(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a, _ := loadedArray(t, cfg, 3000, 5)
			rng := workload.NewRNG(6)
			for trial := 0; trial < 50; trial++ {
				lo := int64(rng.Uint64n(1 << 24))
				hi := lo + int64(rng.Uint64n(1<<22))
				wc, ws := 0, int64(0)
				a.ScanRange(lo, hi, func(k, v int64) bool {
					if k < lo || k > hi {
						t.Fatalf("yielded key %d outside [%d,%d]", k, lo, hi)
					}
					if v != workload.ValueFor(k) {
						t.Fatalf("value mismatch for %d", k)
					}
					wc++
					ws += v
					return true
				})
				gc, gs := a.Sum(lo, hi)
				if gc != wc || gs != ws {
					t.Fatalf("Sum(%d,%d)=(%d,%d) but scan saw (%d,%d)", lo, hi, gc, gs, wc, ws)
				}
			}
		})
	}
}

func TestScanOrderStrict(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a, _ := loadedArray(t, cfg, 2000, 9)
			prev := int64(minInt64)
			count := 0
			a.Scan(func(k, _ int64) bool {
				if k < prev {
					t.Fatalf("scan out of order: %d after %d", k, prev)
				}
				prev = k
				count++
				return true
			})
			if count != a.Size() {
				t.Fatalf("scan visited %d of %d", count, a.Size())
			}
		})
	}
}

func TestScanEarlyStop(t *testing.T) {
	a, _ := loadedArray(t, testConfig(), 1000, 1)
	seen := 0
	a.Scan(func(_, _ int64) bool { seen++; return seen < 7 })
	if seen != 7 {
		t.Fatalf("early stop visited %d", seen)
	}
}

func TestScanEmptyAndInverted(t *testing.T) {
	a := mustNew(t, testConfig())
	called := false
	a.Scan(func(_, _ int64) bool { called = true; return true })
	if called {
		t.Fatal("scan of empty array yielded")
	}
	mustInsert(t, a, 5, 5)
	a.ScanRange(10, 1, func(_, _ int64) bool { called = true; return true })
	if called {
		t.Fatal("inverted range yielded")
	}
	if c, _ := a.Sum(10, 1); c != 0 {
		t.Fatal("inverted Sum")
	}
}

func TestSumBoundaryConditions(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			for i := 0; i < 500; i++ {
				mustInsert(t, a, int64(i*10), int64(i))
			}
			// Exact-boundary hits, misses, single elements, full span.
			cases := []struct {
				lo, hi int64
				want   int
			}{
				{0, 4990, 500},
				{minInt64, maxInt64, 500},
				{10, 10, 1},
				{11, 19, 0},
				{-100, -1, 0},
				{4990, maxInt64, 1},
				{0, 0, 1},
			}
			for _, c := range cases {
				if got, _ := a.Sum(c.lo, c.hi); got != c.want {
					t.Fatalf("Sum(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
				}
			}
		})
	}
}

// Property: for any random op sequence, SumAll == (Size, sum of values
// per a parallel model), across a couple of configurations.
func TestSumAllProperty(t *testing.T) {
	cfgs := []Config{testConfig(), func() Config {
		c := BaselineConfig()
		c.PageSlots = 32
		c.SegmentSlots = 8
		return c
	}()}
	f := func(ops []uint16, pick uint8) bool {
		cfg := cfgs[int(pick)%len(cfgs)]
		a, err := New(cfg)
		if err != nil {
			return false
		}
		want := int64(0)
		n := 0
		for _, op := range ops {
			k := int64(op % 512)
			if op%5 == 0 && cfg.Adaptive != AdaptiveAPMA {
				if ok, _ := a.Delete(k); ok {
					want -= workload.ValueFor(k)
					n--
				}
			} else {
				if err := a.Insert(k, workload.ValueFor(k)); err != nil {
					return false
				}
				want += workload.ValueFor(k)
				n++
			}
		}
		c, s := a.SumAll()
		return c == n && s == want && a.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Find agrees with a map-based multiset count for membership.
func TestFindMembershipProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		a, err := New(testConfig())
		if err != nil {
			return false
		}
		counts := map[int64]int{}
		for _, op := range ops {
			k := int64(op % 256)
			if op%4 == 0 && counts[k] > 0 {
				if ok, _ := a.Delete(k); !ok {
					return false
				}
				counts[k]--
			} else {
				if err := a.Insert(k, k); err != nil {
					return false
				}
				counts[k]++
			}
		}
		for k := int64(0); k < 256; k++ {
			if _, ok := a.Find(k); ok != (counts[k] > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxAcrossConfigs(t *testing.T) {
	for name, cfg := range configMatrix() {
		if cfg.Adaptive == AdaptiveAPMA {
			continue
		}
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			keys := []int64{500, -3, 999, 17, 0}
			for _, k := range keys {
				mustInsert(t, a, k, k)
			}
			if mn, ok := a.Min(); !ok || mn != -3 {
				t.Fatalf("Min = %d", mn)
			}
			if mx, ok := a.Max(); !ok || mx != 999 {
				t.Fatalf("Max = %d", mx)
			}
			// Delete the extremes and re-check.
			if ok, _ := a.Delete(-3); !ok {
				t.Fatal("delete min")
			}
			if ok, _ := a.Delete(999); !ok {
				t.Fatal("delete max")
			}
			if mn, _ := a.Min(); mn != 0 {
				t.Fatalf("Min after delete = %d", mn)
			}
			if mx, _ := a.Max(); mx != 500 {
				t.Fatalf("Max after delete = %d", mx)
			}
		})
	}
}
