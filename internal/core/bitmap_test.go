package core

import (
	"testing"

	"rma/internal/workload"
)

// Naive reference implementations: bit-by-bit loops, exactly what the
// word-parallel helpers replaced on the hot paths.

func naiveBit(bm []uint64, s int) bool { return bm[s>>6]&(1<<(uint(s)&63)) != 0 }

func naiveNext(bm []uint64, from, to int, want bool) int {
	for s := from; s < to; s++ {
		if naiveBit(bm, s) == want {
			return s
		}
	}
	return -1
}

func naivePrev(bm []uint64, from, to int, want bool) int {
	for s := to - 1; s >= from; s-- {
		if naiveBit(bm, s) == want {
			return s
		}
	}
	return -1
}

func naiveRank(bm []uint64, from, to int) int {
	n := 0
	for s := from; s < to; s++ {
		if naiveBit(bm, s) {
			n++
		}
	}
	return n
}

func naiveSelect(bm []uint64, from, to, rank int) int {
	for s := from; s < to; s++ {
		if naiveBit(bm, s) {
			if rank == 0 {
				return s
			}
			rank--
		}
	}
	return -1
}

// checkBitmapOps cross-checks every helper against the naive loops on
// one bitmap over a set of (from, to) ranges.
func checkBitmapOps(t *testing.T, bm []uint64, slots int, ranges [][2]int) {
	t.Helper()
	for _, r := range ranges {
		from, to := r[0], r[1]
		if got, want := bmNext(bm, from, to), naiveNext(bm, from, to, true); got != want {
			t.Fatalf("bmNext(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmPrev(bm, from, to), naivePrev(bm, from, to, true); got != want {
			t.Fatalf("bmPrev(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmNextZero(bm, from, to), naiveNext(bm, from, to, false); got != want {
			t.Fatalf("bmNextZero(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmPrevZero(bm, from, to), naivePrev(bm, from, to, false); got != want {
			t.Fatalf("bmPrevZero(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmRank(bm, from, to), naiveRank(bm, from, to); got != want {
			t.Fatalf("bmRank(%d,%d) = %d, want %d", from, to, got, want)
		}
		count := naiveRank(bm, from, to)
		for _, rank := range []int{0, 1, count - 1, count, count / 2} {
			if got, want := bmSelect(bm, from, to, rank), naiveSelect(bm, from, to, rank); got != want {
				t.Fatalf("bmSelect(%d,%d,%d) = %d, want %d", from, to, rank, got, want)
			}
		}
	}
	_ = slots
}

// TestBitmapOpsRandom property-tests the word helpers on random bitmaps
// with densities from near-empty to near-full, over word-straddling,
// sub-word and full-range intervals.
func TestBitmapOpsRandom(t *testing.T) {
	rng := workload.NewRNG(1234)
	for trial := 0; trial < 200; trial++ {
		words := 1 + int(rng.Uint64n(6))
		slots := words * 64
		bm := make([]uint64, words)
		density := rng.Uint64n(65) // bits per word to set, 0..64
		for w := range bm {
			for b := uint64(0); b < density; b++ {
				bm[w] |= 1 << rng.Uint64n(64)
			}
		}
		var ranges [][2]int
		for i := 0; i < 20; i++ {
			from := int(rng.Uint64n(uint64(slots)))
			to := from + int(rng.Uint64n(uint64(slots-from+1)))
			ranges = append(ranges, [2]int{from, to})
		}
		ranges = append(ranges, [2]int{0, slots}, [2]int{0, 0}, [2]int{slots, slots},
			[2]int{0, 1}, [2]int{slots - 1, slots}, [2]int{1, 63})
		if slots >= 65 {
			ranges = append(ranges, [2]int{63, 65}) // word-straddling
		}
		checkBitmapOps(t, bm, slots, ranges)
	}
}

// TestBitmapClearRange property-tests bmClearRange against a per-bit
// clear loop.
func TestBitmapClearRange(t *testing.T) {
	rng := workload.NewRNG(99)
	for trial := 0; trial < 200; trial++ {
		words := 1 + int(rng.Uint64n(5))
		slots := words * 64
		bm := make([]uint64, words)
		for w := range bm {
			bm[w] = rng.Uint64()
		}
		want := append([]uint64(nil), bm...)
		from := int(rng.Uint64n(uint64(slots)))
		to := from + int(rng.Uint64n(uint64(slots-from+1)))
		for s := from; s < to; s++ {
			want[s>>6] &^= 1 << (uint(s) & 63)
		}
		bmClearRange(bm, from, to)
		for w := range bm {
			if bm[w] != want[w] {
				t.Fatalf("bmClearRange(%d,%d): word %d = %#x, want %#x", from, to, w, bm[w], want[w])
			}
		}
	}
}

// FuzzBitmapOps is the fuzz-shaped variant: arbitrary word patterns and
// range endpoints, cross-checked against the naive loops.
func FuzzBitmapOps(f *testing.F) {
	f.Add(uint64(0), uint64(0xffffffffffffffff), uint64(0x8000000000000001), 0, 192, 3)
	f.Add(uint64(0xaaaaaaaaaaaaaaaa), uint64(0x5555555555555555), uint64(0), 63, 129, 0)
	f.Fuzz(func(t *testing.T, w0, w1, w2 uint64, from, to, rank int) {
		bm := []uint64{w0, w1, w2}
		slots := 192
		if from < 0 || to < from || to > slots {
			t.Skip()
		}
		if got, want := bmNext(bm, from, to), naiveNext(bm, from, to, true); got != want {
			t.Fatalf("bmNext(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmPrev(bm, from, to), naivePrev(bm, from, to, true); got != want {
			t.Fatalf("bmPrev(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmNextZero(bm, from, to), naiveNext(bm, from, to, false); got != want {
			t.Fatalf("bmNextZero(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmPrevZero(bm, from, to), naivePrev(bm, from, to, false); got != want {
			t.Fatalf("bmPrevZero(%d,%d) = %d, want %d", from, to, got, want)
		}
		if got, want := bmRank(bm, from, to), naiveRank(bm, from, to); got != want {
			t.Fatalf("bmRank(%d,%d) = %d, want %d", from, to, got, want)
		}
		if rank >= 0 {
			if got, want := bmSelect(bm, from, to, rank), naiveSelect(bm, from, to, rank); got != want {
				t.Fatalf("bmSelect(%d,%d,%d) = %d, want %d", from, to, rank, got, want)
			}
		}
	})
}
