package core

// span is a contiguous (keys, values) chunk; rebalances move elements as
// block copies between source and destination spans wherever the layout
// is dense.
type span struct{ k, v []int64 }

// rebalance redistributes the elements of segments [lo, hi) (a calibrator
// window at the given level) according to the active policy: evenly, or
// following the adaptive algorithm when the Detector marks hammered
// intervals (Section IV).
func (a *Array) rebalance(lo, hi, level int) error {
	cnt := a.windowCard(lo, hi)
	return a.rebalanceTargets(lo, hi, a.computeTargets(lo, hi, cnt), cnt)
}

// rebalanceLocal is the deferred-mode writer's minimal make-room: an
// unconditional even spread of the window. Unlike the policy rebalance
// it never consults the adaptive detector — an adaptive allocation may
// leave the insert's own segment full (gaps go where the detector
// predicts the frontier), which would send the insert's retry loop
// straight back here forever. An even spread of a window with physical
// room provably leaves every segment at least one free slot, so the
// pending insert always completes.
func (a *Array) rebalanceLocal(lo, hi int) error {
	nseg := hi - lo
	cnt := a.windowCard(lo, hi)
	return a.rebalanceTargets(lo, hi, evenTargets(nseg, cnt, a.targetsScratch(nseg)), cnt)
}

// rebalanceTargets physically applies a rebalance with the given target
// cardinalities, maintaining counters and separators.
func (a *Array) rebalanceTargets(lo, hi int, targets []int, cnt int) error {
	nseg := hi - lo
	a.stats.Rebalances++
	a.stats.RebalancedSegments += uint64(nseg)
	a.stats.RebalancedElements += uint64(cnt)
	if nseg > a.stats.MaxWindowSegments {
		a.stats.MaxWindowSegments = nseg
	}
	if err := a.redistribute(lo, hi, targets, cnt); err != nil {
		return err
	}
	a.refreshSeparators(lo, hi)
	return nil
}

// computeTargets returns the per-segment cardinalities the rebalance
// should produce: an even spread, or the adaptive allocation when the
// policy is on and the Detector produced marks.
func (a *Array) computeTargets(lo, hi, cnt int) []int {
	nseg := hi - lo
	// Adaptive allocation assumes power-of-two windows (the recursive
	// halving of Algorithm 2); clipped windows at the end of a
	// non-power-of-two array rebalance evenly.
	if a.cfg.Adaptive != AdaptiveOff && a.det != nil && nseg&(nseg-1) == 0 {
		marks := a.det.Marks(lo, hi)
		if len(marks) > 0 {
			var t []int
			if a.cfg.Adaptive == AdaptiveAPMA {
				t = a.apmaTargets(lo, hi, cnt, marks)
			} else {
				iv := a.marksToIntervals(lo, hi, marks)
				if len(iv) > 0 {
					t = a.adaptiveTargets(lo, hi, cnt, iv)
				}
			}
			if t != nil {
				a.stats.AdaptiveRebalances++
				return t
			}
		}
	}
	return evenTargets(nseg, cnt, a.targetsScratch(nseg))
}

// targetsScratch returns a reusable int slice of the given length,
// growing the persistent buffer only when a wider window appears. The
// steady-state rebalance path must not allocate (see PERFORMANCE.md and
// TestInsertRebalanceAllocationFree).
func (a *Array) targetsScratch(n int) []int {
	if cap(a.targetsBuf) < n {
		a.targetsBuf = make([]int, n) //rma:alloc-ok — scratch grows to the widest window seen
	}
	a.targetsBuf = a.targetsBuf[:n]
	return a.targetsBuf
}

// evenTargets spreads cnt elements over nseg segments as evenly as
// possible (Fig 2b).
func evenTargets(nseg, cnt int, out []int) []int {
	base := cnt / nseg
	rem := cnt % nseg
	for i := 0; i < nseg; i++ {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}

// redistribute physically rearranges the window's elements to match the
// target cardinalities, choosing the rewired single-copy path for
// page-sized clustered windows and the classic two-pass path otherwise
// (Section III "Rebalancing").
func (a *Array) redistribute(lo, hi int, targets []int, cnt int) error {
	windowSlots := (hi - lo) * a.segSlots
	if a.cfg.Rebalance == RebalanceRewired &&
		a.cfg.Layout == LayoutClustered &&
		windowSlots >= a.cfg.PageSlots {
		return a.redistributeRewired(lo, hi, targets, cnt)
	}
	a.redistributeTwoPass(lo, hi, targets, cnt)
	return nil
}

// redistributeTwoPass gathers the window into scratch storage and writes
// it back: two copies per element.
func (a *Array) redistributeTwoPass(lo, hi int, targets []int, cnt int) {
	a.gatherWindow(lo, hi, cnt)
	a.stats.ElementCopies += uint64(cnt)
	if a.cfg.Layout == LayoutClustered {
		dst := a.destSpans(lo, targets, nil, nil, 0)
		a.srcSpans = append(a.srcSpans[:0], span{k: a.scratchK[:cnt], v: a.scratchV[:cnt]}) //rma:cap-ok — srcSpans capacity is retained across calls
		copySpans(dst, a.srcSpans)
	} else {
		a.writeInterleaved(lo, targets, cnt)
	}
	a.stats.ElementCopies += uint64(cnt)
	a.applyCards(lo, targets)
}

// redistributeRewired writes each element once into spare physical pages
// and swaps them in (Fig 6). The window is page-aligned because windows
// are power-of-two segment ranges of at least a page.
func (a *Array) redistributeRewired(lo, hi int, targets []int, cnt int) error {
	page0 := lo * a.segSlots >> a.pageShift
	npages := (hi - lo) * a.segSlots / a.cfg.PageSlots

	sparesK, err := a.keys.AcquireSpares(npages)
	if err != nil {
		a.stats.AllocFailures++
		return err
	}
	sparesV, err := a.vals.AcquireSpares(npages)
	if err != nil {
		for _, pg := range sparesK {
			a.keys.ReleaseSpare(pg)
		}
		a.stats.AllocFailures++
		return err
	}

	src := a.sourceSpans(lo, hi)
	dst := a.destSpans(lo, targets, sparesK, sparesV, page0)
	copySpans(dst, src)
	a.stats.ElementCopies += uint64(cnt)

	for i := 0; i < npages; i++ {
		a.keys.Swap(page0+i, sparesK[i])
		a.vals.Swap(page0+i, sparesV[i])
	}
	a.trimPool()

	a.applyCards(lo, targets)
	return nil
}

// gatherWindow copies the window's elements, in key order, into the
// scratch buffers.
func (a *Array) gatherWindow(lo, hi, cnt int) {
	a.ensureScratch(cnt)
	if a.cfg.Layout == LayoutClustered {
		pos := 0
		for _, s := range a.sourceSpans(lo, hi) {
			copy(a.scratchK[pos:], s.k)
			copy(a.scratchV[pos:], s.v)
			pos += len(s.k)
		}
		return
	}
	pos := 0
	end := hi * a.segSlots
	mask := a.cfg.PageSlots - 1
	s := bmNext(a.bitmap, lo*a.segSlots, end)
	for s != -1 {
		page := s >> a.pageShift
		kpg, vpg := a.keys.Page(page), a.vals.Page(page)
		pageEnd := (page + 1) << a.pageShift
		for s != -1 && s < pageEnd {
			a.scratchK[pos] = kpg[s&mask]
			a.scratchV[pos] = vpg[s&mask]
			pos++
			s = bmNext(a.bitmap, s+1, end)
		}
	}
}

func (a *Array) ensureScratch(n int) {
	if cap(a.scratchK) < n {
		a.scratchK = make([]int64, n) //rma:alloc-ok — scratch grows to the widest window seen
		a.scratchV = make([]int64, n) //rma:alloc-ok — scratch grows to the widest window seen
	}
	a.scratchK = a.scratchK[:n]
	a.scratchV = a.scratchV[:n]
}

// sourceSpans returns the window's current element runs in key order
// (clustered layout only): one run per segment, merging is not needed
// because segments are already ordered. The returned slice aliases the
// persistent scratch and is valid until the next sourceSpans call.
func (a *Array) sourceSpans(lo, hi int) []span {
	spans := a.srcSpans[:0]
	for s := lo; s < hi; s++ {
		c := int(a.cards[s])
		if c == 0 {
			continue
		}
		kpg, off := a.segPage(a.keys, s)
		vpg, voff := a.segPage(a.vals, s)
		rl, rh := a.runBounds(s)
		spans = append(spans, span{k: kpg[off+rl : off+rh], v: vpg[voff+rl : voff+rh]}) //rma:cap-ok — srcSpans capacity is retained across calls
	}
	a.srcSpans = spans
	return spans
}

// destSpans returns the destination runs for the given targets in the
// clustered layout. With sparesK/sparesV nil the spans point into the
// live pages (two-pass write-back); otherwise they point into the spare
// pages, indexed relative to page0 (rewired path). The returned slice
// aliases the persistent scratch and is valid until the next call.
func (a *Array) destSpans(lo int, targets []int, sparesK, sparesV [][]int64, page0 int) []span {
	spans := a.dstSpans[:0]
	for i, c := range targets {
		if c == 0 {
			continue
		}
		seg := lo + i
		var rl int
		if seg&1 == 0 {
			rl = a.segSlots - c
		}
		slot := seg*a.segSlots + rl
		page := slot >> a.pageShift
		off := slot & (a.cfg.PageSlots - 1)
		var kpg, vpg []int64
		if sparesK == nil {
			kpg, vpg = a.keys.Page(page), a.vals.Page(page)
		} else {
			kpg, vpg = sparesK[page-page0], sparesV[page-page0]
		}
		spans = append(spans, span{k: kpg[off : off+c], v: vpg[off : off+c]}) //rma:cap-ok — dstSpans capacity is retained across calls
	}
	a.dstSpans = spans
	return spans
}

// copySpans streams the source spans into the destination spans with
// block copies; total lengths must match.
func copySpans(dst, src []span) {
	di, si := 0, 0
	var d, s span
	for {
		if len(d.k) == 0 {
			if di == len(dst) {
				return
			}
			d = dst[di]
			di++
		}
		if len(s.k) == 0 {
			if si == len(src) {
				return
			}
			s = src[si]
			si++
		}
		m := len(d.k)
		if len(s.k) < m {
			m = len(s.k)
		}
		copy(d.k[:m], s.k[:m])
		copy(d.v[:m], s.v[:m])
		d.k, d.v = d.k[m:], d.v[m:]
		s.k, s.v = s.k[m:], s.v[m:]
	}
}

// writeInterleaved spreads cnt scratch elements back over segments
// [lo, lo+len(targets)) with evenly strided gaps inside each segment
// (the classic PMA layout after a rebalance).
func (a *Array) writeInterleaved(lo int, targets []int, cnt int) {
	// Clear the window's occupancy bits word-wise.
	bmClearRange(a.bitmap, lo*a.segSlots, (lo+len(targets))*a.segSlots)
	pos := 0
	for i, c := range targets {
		if c == 0 {
			continue
		}
		seg := lo + i
		base := seg * a.segSlots
		kpg, off := a.segPage(a.keys, seg)
		vpg, voff := a.segPage(a.vals, seg)
		for j := 0; j < c; j++ {
			slot := j * a.segSlots / c
			kpg[off+slot] = a.scratchK[pos]
			vpg[voff+slot] = a.scratchV[pos]
			a.setOccupied(base+slot, true)
			pos++
		}
	}
}

// trimPool caps the spare-page pool. The paper's hard bound is the size
// of the array itself; keeping the pool at 1/8 of the mapped pages keeps
// the steady-state footprint near the array's own size while still
// recycling pages across rebalances (resizes fall back to fresh, zeroed
// allocations for the part the pool cannot cover).
func (a *Array) trimPool() {
	maxSpares := a.keys.NumPages()/8 + 1
	a.keys.TrimSpares(maxSpares)
	a.vals.TrimSpares(maxSpares)
}

// refreshSeparators recomputes the separators of segments [lo, hi) after
// a rebalance, carrying the nearest non-empty minimum right-to-left into
// empty segments, and propagates into the empty chain left of lo.
func (a *Array) refreshSeparators(lo, hi int) {
	carry := unsetSep
	if hi < a.numSegs {
		carry = a.ix.Key(hi)
	}
	for j := hi - 1; j >= lo; j-- {
		if a.cards[j] > 0 {
			carry = a.segMin(j)
		}
		if j >= 1 {
			a.ix.Update(j, carry)
		}
	}
	for j := lo - 1; j >= 1 && a.cards[j] == 0; j-- {
		a.ix.Update(j, carry)
	}
}
