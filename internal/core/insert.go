package core

// Insert adds the key/value pair to the array, rebalancing or resizing as
// needed. It returns an error only when the storage substrate fails to
// allocate (failure injection in tests); the array stays consistent.
//
// Steady-state inserts — including window rebalances — are
// allocation-free; resizes and first-use scratch growth are the
// documented escape hatches (//rma:alloc-ok markers at the sites).
//
//rma:noalloc
func (a *Array) Insert(key, val int64) error {
	a.clock++
	for {
		seg := a.ix.FindUB(key)
		if int(a.cards[seg]) < a.segRoom(seg) {
			a.insertIntoSegment(seg, key, val)
			a.stats.Inserts++
			a.n++
			a.postInsertThreshold(seg)
			return nil
		}
		if err := a.makeRoom(seg); err != nil {
			return err
		}
	}
}

// segRoom returns the number of elements segment seg can physically hold.
func (a *Array) segRoom(int) int { return a.segSlots }

// postInsertThreshold triggers a rebalance when the segment exceeds the
// configured tau1 < 1 (traditional-PMA thresholds); with tau1 == 1
// (the RMA's "fill a segment until it is full") it never fires.
func (a *Array) postInsertThreshold(seg int) {
	t1 := a.cfg.Thresholds.Tau1
	if t1 >= 1 {
		return
	}
	if float64(a.cards[seg]) > t1*float64(a.segSlots) {
		// Ignore allocation errors here: the insert itself already
		// succeeded; a failed opportunistic rebalance only defers work.
		_ = a.makeRoom(seg)
	}
}

// makeRoom rebalances the smallest calibrator window around seg whose
// density thresholds admit one more element, or grows the array when
// even the root window is too dense (Section II).
//
// In deferred mode (SetDeferRebalance) a density violation does not
// stall the writer: the smallest window with *physical* room gets a
// minimal local spread so the insert can complete, and the violation is
// queued for the maintenance layer (MaintainOne) to repair with the
// policy rebalance — or the grow — later. Only when the queue is full,
// or no window short of a resize has physical room, does the writer
// fall back to the synchronous path.
func (a *Array) makeRoom(seg int) error {
	for l := 2; l <= a.cal.Height(); l++ {
		lo, hi := a.cal.Window(seg, l)
		_, tau := a.cal.At(l)
		capW := (hi - lo) * a.segSlots
		cardW := a.windowCard(lo, hi)
		// Physical room: an even spread leaves at least one free slot
		// per segment, so the pending insert cannot re-trigger at once.
		hasRoom := cardW <= capW-(hi-lo)
		// The window qualifies if, after the pending insertion, it is
		// also within tau.
		if hasRoom && float64(cardW+1) <= tau*float64(capW) {
			return a.rebalance(lo, hi, l)
		}
		if a.deferred && hasRoom && a.pending.push(seg) {
			a.stats.DeferredWindows++
			return a.rebalanceLocal(lo, hi)
		}
	}
	return a.grow() //rma:alloc-ok — grows rebuild storage by design
}

// windowCard returns the total cardinality of segments [lo, hi) as two
// Fenwick prefix sums — O(log S) instead of the O(hi-lo) linear sum, so
// the per-level density checks of makeRoom, Delete and the bulk loader
// cost O(log² S) per overflowing operation rather than O(S).
func (a *Array) windowCard(lo, hi int) int {
	return int(a.fen.prefix(hi) - a.fen.prefix(lo))
}

// insertIntoSegment places (key, val) in a segment that has room,
// keeping the layout invariants, the separator and the detector current.
func (a *Array) insertIntoSegment(seg int, key, val int64) {
	var rank int
	switch a.cfg.Layout {
	case LayoutClustered:
		rank = a.insertClustered(seg, key, val)
	default:
		rank = a.insertInterleaved(seg, key, val)
	}
	if rank == 0 {
		a.setSegMin(seg, key)
	}
	if a.det != nil && a.cfg.Adaptive != AdaptiveOff {
		if a.cfg.Adaptive == AdaptiveRMA {
			pred, hasPred := a.neighborBefore(seg, rank)
			succ, hasSucc := a.neighborAfter(seg, rank)
			a.det.RecordInsert(seg, pred, succ, hasPred, hasSucc, a.clock)
		} else {
			// APMA tracks only the update times per segment.
			a.det.RecordInsert(seg, 0, 0, false, false, a.clock)
		}
	}
}

// insertClustered inserts into a clustered segment, shifting the shorter
// flank of the run toward the gap side, and returns the element's rank.
func (a *Array) insertClustered(seg int, key, val int64) int {
	kpg, off := a.segPage(a.keys, seg)
	vpg, voff := a.segPage(a.vals, seg)
	lo, hi := a.runBounds(seg)
	run := kpg[off+lo : off+hi]
	r := upperBoundRun(run, key)

	if seg&1 == 0 {
		// Right-packed: gap on the left; shift the prefix [lo, lo+r) one
		// slot left and place at lo+r-1.
		copy(kpg[off+lo-1:off+lo+r-1], kpg[off+lo:off+lo+r])
		copy(vpg[voff+lo-1:voff+lo+r-1], vpg[voff+lo:voff+lo+r])
		kpg[off+lo+r-1] = key
		vpg[voff+lo+r-1] = val
	} else {
		// Left-packed: gap on the right; shift the suffix [lo+r, hi) one
		// slot right and place at lo+r.
		copy(kpg[off+lo+r+1:off+hi+1], kpg[off+lo+r:off+hi])
		copy(vpg[voff+lo+r+1:voff+hi+1], vpg[voff+lo+r:voff+hi])
		kpg[off+lo+r] = key
		vpg[voff+lo+r] = val
	}
	a.cardAdd(seg, 1)
	return r
}

// insertInterleaved inserts into an interleaved segment by shifting the
// run between the insertion point and the nearest gap, and returns the
// element's rank within the segment. Occupancy is walked word-parallel
// and keys are read through the segment's page slice — no per-slot bit
// probes or page-table lookups.
func (a *Array) insertInterleaved(seg int, key, val int64) int {
	base := seg * a.segSlots
	end := base + a.segSlots
	kpg, off := a.segPage(a.keys, seg)

	// Locate the target slot: the slot of the first element > key (we
	// insert before it), or one past the last occupied slot.
	target := -1
	rank := 0
	lastOcc := -1
	for s := bmNext(a.bitmap, base, end); s != -1; s = bmNext(a.bitmap, s+1, end) {
		if kpg[off+s-base] > key {
			target = s
			break
		}
		rank++
		lastOcc = s
	}

	if target == -1 {
		// Append after the last element (or anywhere when empty).
		slot := lastOcc + 1
		if lastOcc == -1 {
			slot = base
		}
		if slot < end && !a.occupied(slot) {
			a.placeInterleaved(slot, key, val, seg)
			return rank
		}
		// No gap after the run's end: shift left into the nearest gap.
		g := a.gapLeftOf(base, lastOcc)
		a.shiftLeftInterleaved(g, lastOcc)
		a.placeInterleaved(lastOcc, key, val, seg)
		return rank
	}

	// Prefer a gap to the right of target: shift [target, gap) right.
	if g := a.gapRightOf(target, end); g != -1 {
		a.shiftRightInterleaved(target, g)
		a.placeInterleaved(target, key, val, seg)
		return rank
	}
	// Otherwise shift the prefix left into a gap before target, freeing
	// slot target-1 for the new element (the first-greater element at
	// target stays put).
	g := a.gapLeftOf(base, target)
	a.shiftLeftInterleaved(g, target-1)
	a.placeInterleaved(target-1, key, val, seg)
	return rank
}

// gapRightOf returns the first free slot in [from, end), or -1.
func (a *Array) gapRightOf(from, end int) int {
	return bmNextZero(a.bitmap, from, end)
}

// gapLeftOf returns the last free slot in [base, before), or -1.
func (a *Array) gapLeftOf(base, before int) int {
	return bmPrevZero(a.bitmap, base, before)
}

// shiftRightInterleaved moves the fully-occupied run [from, gap) one slot
// right into the free slot gap with two block copies (the run never
// crosses a page: it lies within one segment). The callers guarantee the
// run is dense — gap is the nearest free slot — so the occupancy update
// is O(1): gap becomes occupied, from becomes free.
func (a *Array) shiftRightInterleaved(from, gap int) {
	kpg, off := a.pageAt(a.keys, from)
	vpg, voff := a.pageAt(a.vals, from)
	n := gap - from
	copy(kpg[off+1:off+1+n], kpg[off:off+n])
	copy(vpg[voff+1:voff+1+n], vpg[voff:voff+n])
	a.setOccupied(gap, true)
	a.setOccupied(from, false)
}

// shiftLeftInterleaved moves the fully-occupied run (gap, to] one slot
// left into the free slot gap; the mirror of shiftRightInterleaved.
func (a *Array) shiftLeftInterleaved(gap, to int) {
	kpg, off := a.pageAt(a.keys, gap)
	vpg, voff := a.pageAt(a.vals, gap)
	n := to - gap
	copy(kpg[off:off+n], kpg[off+1:off+1+n])
	copy(vpg[voff:voff+n], vpg[voff+1:voff+1+n])
	a.setOccupied(gap, true)
	a.setOccupied(to, false)
}

func (a *Array) placeInterleaved(slot int, key, val int64, seg int) {
	kpg, off := a.pageAt(a.keys, slot)
	vpg, voff := a.pageAt(a.vals, slot)
	kpg[off] = key
	vpg[voff] = val
	a.setOccupied(slot, true)
	a.cardAdd(seg, 1)
}
