package core

// Deferred rebalancing: the detection/execution split that keeps big
// rebalances off the writer's critical path.
//
// In deferred mode (SetDeferRebalance) an overflowing Insert no longer
// executes the density policy synchronously. The writer performs only
// the minimal local make-room — an even spread over the smallest
// calibrator window with physical room, ignoring the tau thresholds —
// records the violated window in a fixed-size per-array pending queue,
// and returns. A maintenance caller (internal/rebal's worker pool, via
// the shard layer) later drains the queue one entry at a time with
// MaintainOne, re-evaluating the thresholds from scratch and executing
// the policy rebalance — or the grow — the writer deferred.
//
// Invariants preserved in deferred mode:
//
//   - All structural invariants (Validate) hold at every instant: a
//     local spread is a normal window rebalance, just chosen by a
//     weaker predicate. Only the *density* thresholds may be violated
//     between a deferral and its maintenance.
//   - The steady-state write path stays allocation-free: the pending
//     queue is an embedded ring buffer, never grown.
//   - Deferral is lossy-safe: when the queue is full the writer falls
//     back to the synchronous policy (and a dropped entry would merely
//     postpone work until the next overflow re-detects the violation).

// maxPendingWindows bounds the per-array deferral backlog. Entries
// dedup by segment, and one maintenance rebalance typically clears a
// whole window's worth of entries, so the queue stays tiny; when it
// fills, writers simply fall back to synchronous rebalancing.
const maxPendingWindows = 64

// pendingQueue is a fixed-capacity FIFO of segment indices whose
// density thresholds were violated. Embedded in Array: no allocation.
type pendingQueue struct {
	buf  [maxPendingWindows]int32
	head int
	n    int
}

func (q *pendingQueue) len() int { return q.n }

// push enqueues seg, deduplicating; it reports false when the queue is
// full (the caller then rebalances synchronously).
func (q *pendingQueue) push(seg int) bool {
	for i := 0; i < q.n; i++ {
		if q.buf[(q.head+i)%maxPendingWindows] == int32(seg) {
			return true
		}
	}
	if q.n == maxPendingWindows {
		return false
	}
	q.buf[(q.head+q.n)%maxPendingWindows] = int32(seg)
	q.n++
	return true
}

func (q *pendingQueue) pop() int {
	seg := int(q.buf[q.head])
	q.head = (q.head + 1) % maxPendingWindows
	q.n--
	return seg
}

// SetDeferRebalance switches the array between synchronous and deferred
// rebalancing. Turning deferral off does not drain the queue; callers
// that need a fully rebalanced array call FlushPending first (the shard
// layer does). Only Insert defers; Delete's underflow handling and the
// bulk loader stay synchronous.
func (a *Array) SetDeferRebalance(on bool) { a.deferred = on }

// DeferRebalance reports whether deferred rebalancing is on.
func (a *Array) DeferRebalance() bool { return a.deferred }

// PendingCount returns the number of queued deferred windows.
func (a *Array) PendingCount() int { return a.pending.len() }

// MaintainOne pops one deferred entry and resolves it: if any window
// around the recorded segment still violates its density threshold, it
// executes the smallest admissible policy rebalance (or grows when even
// the root is too dense). It reports whether an entry was processed, so
// maintenance loops know when the queue is drained. Each call is one
// bounded slice of work — at most one rebalance or resize — sized to be
// held under a shard lock without stalling writers for long.
func (a *Array) MaintainOne() (bool, error) {
	if a.pending.len() == 0 {
		return false, nil
	}
	seg := a.pending.pop()
	// The geometry may have changed since the entry was queued (a grow
	// or shrink renumbers segments); clamp and re-evaluate from scratch.
	if seg >= a.numSegs {
		seg = a.numSegs - 1
	}
	return true, a.maintainSeg(seg)
}

// FlushPending drains the whole deferral queue synchronously. Iterators
// and batch appliers in the shard layer call this under the shard lock
// so snapshots observe a fully rebalanced shard.
func (a *Array) FlushPending() error {
	for a.pending.len() > 0 {
		if _, err := a.MaintainOne(); err != nil {
			return err
		}
	}
	return nil
}

// maintainSeg executes the policy work a deferred insert skipped: the
// same calibrator walk as makeRoom, minus the pending insert. If the
// smallest window around seg is back within its tau — an earlier
// maintenance pass, a resize or deletes resolved the violation — this
// is a no-op. Otherwise it rebalances the smallest window that
// satisfies its threshold with spread room, or grows when none does
// (the resize the writer deferred).
//
// Deliberately NOT enforced: "every window within its tau". That is
// not an engine invariant — the adaptive policy skews densities on
// purpose, packing cold windows dense to concentrate gaps where the
// next inserts land — so maintenance only ever repairs what would
// block insert admission, exactly like the synchronous path. (An
// earlier version repaired the highest violating level and fought the
// adaptive skew with endless near-root rebalances.)
func (a *Array) maintainSeg(seg int) error {
	// A root-window violation is unambiguous deferred work: the
	// adaptive policy never intends root density above tauH, and only a
	// grow repairs it. Without this check a run of wide local spreads
	// can keep every small window individually admissible while the
	// array densifies toward physically full — where writers would pay
	// the grow synchronously after ever-widening local spreads.
	_, tauRoot := a.cal.At(a.cal.Height())
	if float64(a.n) > tauRoot*float64(a.Capacity()) {
		a.stats.MaintenanceRuns++
		return a.grow()
	}
	height := a.cal.Height()
	violated := false
	for l := 2; l <= height; l++ {
		lo, hi := a.cal.Window(seg, l)
		_, tau := a.cal.At(l)
		capW := (hi - lo) * a.segSlots
		cardW := a.windowCard(lo, hi)
		if float64(cardW) > tau*float64(capW) {
			violated = true
			continue // too dense at this level: need a bigger window
		}
		if !violated {
			return nil // smallest window already admissible: nothing deferred remains
		}
		if cardW <= capW-(hi-lo) {
			a.stats.MaintenanceRuns++
			return a.rebalance(lo, hi, l)
		}
		// Within tau but no spread room — keep walking up.
	}
	if !violated {
		return nil
	}
	a.stats.MaintenanceRuns++
	return a.grow()
}
