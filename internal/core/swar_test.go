package core

import (
	"math"
	"testing"
	"testing/quick"

	"rma/internal/workload"
)

// Naive scalar references for the SWAR probes: the element-at-a-time
// loops the word-parallel comparators replaced.

func naiveFindEq(kseg []int64, bm []uint64, base int, key int64) int {
	for j := range kseg {
		if occBit(bm, base+j) == 0 {
			continue
		}
		if kseg[j] == key {
			return base + j
		}
		if kseg[j] > key {
			return -1
		}
	}
	return -1
}

func naiveBound(kseg []int64, bm []uint64, base int, x int64, inclusive bool) int {
	n := 0
	for j := range kseg {
		if occBit(bm, base+j) == 0 {
			continue
		}
		if kseg[j] < x || (inclusive && kseg[j] == x) {
			n++
		} else {
			break
		}
	}
	return n
}

func naiveSeekGE(kseg []int64, bm []uint64, base int, x int64) int {
	for j := range kseg {
		if occBit(bm, base+j) == 1 && kseg[j] >= x {
			return base + j
		}
	}
	return -1
}

// buildSwarSeg materializes a fuzzed segment: occupancy from the word
// pattern, sorted keys in occupied slots, arbitrary stale garbage in the
// gaps (gap contents must never influence a probe).
func buildSwarSeg(seed uint64, occPattern uint64, n, base int) (kseg []int64, bm []uint64) {
	g := workload.NewRNG(seed)
	bm = make([]uint64, (base+n+63)/64)
	kseg = make([]int64, n)
	acc := int64(g.Uint64n(64)) - 32
	for j := 0; j < n; j++ {
		if occPattern>>(uint(j)&63)&1 == 1 {
			s := base + j
			bm[s>>6] |= 1 << (uint(s) & 63)
			acc += int64(g.Uint64n(3)) // duplicates when the step is 0
			kseg[j] = acc
		} else {
			switch g.Uint64n(4) {
			case 0:
				kseg[j] = math.MaxInt64
			case 1:
				kseg[j] = math.MinInt64
			default:
				kseg[j] = int64(g.Uint64())
			}
		}
	}
	return kseg, bm
}

func checkSwarSeg(t *testing.T, kseg []int64, bm []uint64, base int, key int64) {
	t.Helper()
	if got, want := swarFindEq(kseg, bm, base, key), naiveFindEq(kseg, bm, base, key); got != want {
		t.Fatalf("swarFindEq(base=%d, key=%d) = %d, want %d (occ=%x keys=%v)",
			base, key, got, want, bm, kseg)
	}
	if got, want := swarLowerBound(kseg, bm, base, key), naiveBound(kseg, bm, base, key, false); got != want {
		t.Fatalf("swarLowerBound(base=%d, key=%d) = %d, want %d", base, key, got, want)
	}
	if got, want := swarUpperBound(kseg, bm, base, key), naiveBound(kseg, bm, base, key, true); got != want {
		t.Fatalf("swarUpperBound(base=%d, key=%d) = %d, want %d", base, key, got, want)
	}
	if got, want := swarSeekGE(kseg, bm, base, key), naiveSeekGE(kseg, bm, base, key); got != want {
		t.Fatalf("swarSeekGE(base=%d, key=%d) = %d, want %d", base, key, got, want)
	}
}

// TestSwarProbesProperty drives the comparators against the scalar
// loops over random occupancy patterns, bases and probe keys, including
// segment lengths that are not quad multiples (the scalar tail).
func TestSwarProbesProperty(t *testing.T) {
	f := func(seed, occPattern uint64, nRaw, baseRaw uint8, probeRaw uint16) bool {
		n := int(nRaw) % 97           // 0..96: covers empty, tails, full quads
		base := int(baseRaw) % 16 * 4 // 4-aligned, crossing word boundaries
		kseg, bm := buildSwarSeg(seed, occPattern, n, base)
		g := workload.NewRNG(uint64(probeRaw) ^ seed)
		probes := []int64{math.MinInt64, math.MaxInt64, int64(g.Uint64())}
		for j := 0; j < n; j++ {
			if occBit(bm, base+j) == 1 {
				probes = append(probes, kseg[j], kseg[j]-1, kseg[j]+1)
			}
		}
		for _, key := range probes {
			if swarFindEq(kseg, bm, base, key) != naiveFindEq(kseg, bm, base, key) ||
				swarLowerBound(kseg, bm, base, key) != naiveBound(kseg, bm, base, key, false) ||
				swarUpperBound(kseg, bm, base, key) != naiveBound(kseg, bm, base, key, true) ||
				swarSeekGE(kseg, bm, base, key) != naiveSeekGE(kseg, bm, base, key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSwarGapGarbageIgnored pins the masking contract directly: a gap
// slot holding exactly the probed key (or a larger key) must not
// produce a hit or an early exit.
func TestSwarGapGarbageIgnored(t *testing.T) {
	// Slots: [gap=42, occ=10, gap=MaxInt64, occ=42]
	kseg := []int64{42, 10, math.MaxInt64, 42}
	bm := []uint64{0b1010}
	if got := swarFindEq(kseg, bm, 0, 42); got != 3 {
		t.Fatalf("swarFindEq hit the gap decoy: got %d, want 3", got)
	}
	if got := swarLowerBound(kseg, bm, 0, 42); got != 1 {
		t.Fatalf("swarLowerBound counted a gap: got %d, want 1", got)
	}
	if got := swarSeekGE(kseg, bm, 0, 11); got != 3 {
		t.Fatalf("swarSeekGE landed on a gap: got %d, want 3", got)
	}
}

// TestRunBoundPrimitives pins the collapsed branchless triplet against
// the textbook definitions on random sorted runs.
func TestRunBoundPrimitives(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) % 130
		g := workload.NewRNG(seed)
		run := make([]int64, n)
		acc := int64(0)
		for i := range run {
			acc += int64(g.Uint64n(3))
			run[i] = acc
		}
		probes := []int64{-1, 0, acc, acc + 1, math.MaxInt64, math.MinInt64}
		for i := 0; i < n; i += 7 {
			probes = append(probes, run[i], run[i]-1, run[i]+1)
		}
		for _, key := range probes {
			lb := 0
			for lb < n && run[lb] < key {
				lb++
			}
			ub := lb
			for ub < n && run[ub] == key {
				ub++
			}
			if lowerBoundRun(run, key) != lb || upperBoundRun(run, key) != ub {
				return false
			}
			wantEq := -1
			if lb < n && run[lb] == key {
				wantEq = lb
			}
			if searchRun(run, key) != wantEq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// FuzzSwarProbes is the fuzz-shaped variant of the property test.
func FuzzSwarProbes(f *testing.F) {
	f.Add(uint64(1), uint64(0xffffffffffffffff), uint8(64), uint8(0), int64(0))
	f.Add(uint64(2), uint64(0xaaaaaaaaaaaaaaaa), uint8(96), uint8(15), int64(33))
	f.Add(uint64(3), uint64(0), uint8(17), uint8(3), int64(-5))
	f.Add(uint64(4), uint64(0x8000000000000001), uint8(13), uint8(7), int64(9223372036854775807))
	f.Fuzz(func(t *testing.T, seed, occPattern uint64, nRaw, baseRaw uint8, key int64) {
		n := int(nRaw) % 97
		base := int(baseRaw) % 16 * 4
		kseg, bm := buildSwarSeg(seed, occPattern, n, base)
		checkSwarSeg(t, kseg, bm, base, key)
		for j := 0; j < n; j++ {
			if occBit(bm, base+j) == 1 {
				checkSwarSeg(t, kseg, bm, base, kseg[j])
				checkSwarSeg(t, kseg, bm, base, kseg[j]-1)
				checkSwarSeg(t, kseg, bm, base, kseg[j]+1)
			}
		}
	})
}
