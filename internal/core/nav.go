package core

// Navigation and order-statistic queries. All of them combine one index
// descent (O(log S)) with one in-segment binary search (O(log B)); the
// rank-based ones additionally use the Fenwick tree over segment
// cardinalities, so Rank, Select and CountRange run in O(log S + log B)
// without touching more than one segment.

// segLowerBound returns the number of elements of segment seg with key
// strictly below x.
func (a *Array) segLowerBound(seg int, x int64) int {
	if a.cfg.Layout == LayoutClustered {
		runK, _ := a.segRun(seg)
		return lowerBoundRun(runK, x)
	}
	base := seg * a.segSlots
	kpg, off := a.segPage(a.keys, seg)
	return swarLowerBound(kpg[off:off+a.segSlots], a.bitmap, base, x)
}

// segUpperBound returns the number of elements of segment seg with key
// less than or equal to x.
func (a *Array) segUpperBound(seg int, x int64) int {
	if a.cfg.Layout == LayoutClustered {
		runK, _ := a.segRun(seg)
		return upperBoundRun(runK, x)
	}
	base := seg * a.segSlots
	kpg, off := a.segPage(a.keys, seg)
	return swarUpperBound(kpg[off:off+a.segSlots], a.bitmap, base, x)
}

// rankOf counts stored elements with key < x (inclusive=false) or
// key <= x (inclusive=true).
func (a *Array) rankOf(x int64, inclusive bool) int {
	if a.n == 0 {
		return 0
	}
	var seg int
	if inclusive {
		seg = a.ix.FindUB(x)
	} else {
		seg = a.ix.FindLB(x)
	}
	cnt := int(a.fen.prefix(seg))
	if a.cards[seg] > 0 {
		if inclusive {
			cnt += a.segUpperBound(seg, x)
		} else {
			cnt += a.segLowerBound(seg, x)
		}
	}
	return cnt
}

// Rank returns the number of stored elements with key strictly less
// than x: the position x would occupy in the sorted multiset.
func (a *Array) Rank(x int64) int { return a.rankOf(x, false) }

// CountRange returns the number of elements with lo <= key <= hi.
func (a *Array) CountRange(lo, hi int64) int {
	if a.n == 0 || lo > hi {
		return 0
	}
	return a.rankOf(hi, true) - a.rankOf(lo, false)
}

// Select returns the i-th smallest element (0-based), locating its
// segment with one Fenwick descent.
func (a *Array) Select(i int) (key, val int64, ok bool) {
	if i < 0 || i >= a.n {
		return 0, 0, false
	}
	seg, before := a.fen.find(int64(i))
	r := i - int(before)
	return a.elemKey(seg, r), a.elemVal(seg, r), true
}

// Floor returns the greatest stored element with key <= x.
func (a *Array) Floor(x int64) (key, val int64, ok bool) {
	if a.n == 0 {
		return 0, 0, false
	}
	seg := a.ix.FindUB(x)
	if a.cards[seg] > 0 {
		if r := a.segUpperBound(seg, x); r > 0 {
			return a.elemKey(seg, r-1), a.elemVal(seg, r-1), true
		}
	}
	// Only the leftmost reachable segment can lack an element <= x; the
	// floor, if any, is the maximum of the nearest non-empty segment to
	// the left (all its elements are <= the separator of seg, <= x).
	for s := seg - 1; s >= 0; s-- {
		if c := int(a.cards[s]); c > 0 {
			return a.elemKey(s, c-1), a.elemVal(s, c-1), true
		}
	}
	return 0, 0, false
}

// Ceiling returns the smallest stored element with key >= x.
func (a *Array) Ceiling(x int64) (key, val int64, ok bool) {
	if a.n == 0 {
		return 0, 0, false
	}
	seg := a.ix.FindLB(x)
	if c := int(a.cards[seg]); c > 0 {
		if r := a.segLowerBound(seg, x); r < c {
			return a.elemKey(seg, r), a.elemVal(seg, r), true
		}
	}
	for s := seg + 1; s < a.numSegs; s++ {
		if a.cards[s] > 0 {
			return a.elemKey(s, 0), a.elemVal(s, 0), true
		}
	}
	return 0, 0, false
}
