package core

import "sort"

// Batch is a set of key/value pairs for bulk loading. Elements need not
// be sorted; the loaders sort a private copy, as the paper assumes
// batches are sorted before loading.
type Batch struct {
	Keys []int64
	Vals []int64
}

// Len returns the batch size.
func (b Batch) Len() int { return len(b.Keys) }

// sortedPairs copies the batch into a sorted []pair.
func (b Batch) sortedPairs() []pair {
	ps := make([]pair, len(b.Keys))
	for i := range b.Keys {
		ps[i] = pair{k: b.Keys[i], v: b.Vals[i]}
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	return ps
}

// BulkLoad inserts the batch with the paper's bottom-up algorithm
// (Section III "Bulk loading"): pass 1 assigns each element to its target
// segment and accumulates the final cardinalities; pass 2 walks the
// touched segments and finds the minimal set of windows whose thresholds
// require a rebalance; pass 3 merges the batch into untouched segments
// directly and rebalances the marked windows once, merging as it spreads.
//
// Deletions in the same batch are supported through BulkUpdate.
func (a *Array) BulkLoad(b Batch) error {
	if len(b.Keys) != len(b.Vals) {
		panic("core: BulkLoad with mismatched key/value lengths")
	}
	if b.Len() == 0 {
		return nil
	}
	a.stats.BulkLoads++
	return a.bulkInsert(b.sortedPairs())
}

func (a *Array) bulkInsert(ps []pair) error {
	// Pass 1: count incoming elements per segment against the current
	// separators. The batch is sorted, so target segments are found with
	// a forward-moving index probe.
	incoming := make([]int32, a.numSegs)
	seg := 0
	for i := range ps {
		if i == 0 || ps[i].k != ps[i-1].k {
			seg = a.ix.FindUB(ps[i].k)
		}
		incoming[seg]++
	}

	// Root check: if the whole array cannot absorb the batch within the
	// root threshold, resize once, merging during the redistribution.
	_, tauRoot := a.cal.At(a.cal.Height())
	if float64(a.n+len(ps)) > tauRoot*float64(a.Capacity()) {
		newCap := a.cal.GrowCapacity(a.Capacity(), a.n+len(ps), a.cfg.PageSlots)
		for float64(a.n+len(ps)) > tauRoot*float64(newCap) {
			newCap *= 2
		}
		return a.resizeTo(newCap, ps)
	}

	// Pass 2: find the windows to rebalance. For every overflowing
	// segment, walk up the calibrator tree until the window (with its
	// incoming load) satisfies the level threshold.
	type window struct{ lo, hi int }
	var windows []window
	for s := 0; s < a.numSegs; s++ {
		if int(a.cards[s])+int(incoming[s]) <= a.segSlots {
			continue
		}
		if len(windows) > 0 && s < windows[len(windows)-1].hi {
			continue // already covered
		}
		found := false
		for l := 2; l <= a.cal.Height(); l++ {
			lo, hi := a.cal.Window(s, l)
			_, tau := a.cal.At(l)
			capW := (hi - lo) * a.segSlots
			load := a.windowCard(lo, hi)
			for t := lo; t < hi; t++ {
				load += int(incoming[t])
			}
			if float64(load) <= tau*float64(capW) && load <= capW {
				// Merge with a preceding overlapping window.
				for len(windows) > 0 && windows[len(windows)-1].hi > lo {
					prev := windows[len(windows)-1]
					windows = windows[:len(windows)-1]
					if prev.lo < lo {
						lo = prev.lo
					}
				}
				windows = append(windows, window{lo, hi})
				found = true
				break
			}
		}
		if !found {
			// The root itself qualifies (checked above), so this can
			// only happen via rounding; fall back to a full resize-merge.
			newCap := a.cal.GrowCapacity(a.Capacity(), a.n+len(ps), a.cfg.PageSlots)
			return a.resizeTo(newCap, ps)
		}
	}

	// Pass 3: apply, walking batch and segments left to right.
	bi := 0
	wi := 0
	for s := 0; s < a.numSegs; {
		if wi < len(windows) && windows[wi].lo == s {
			w := windows[wi]
			wi++
			// Slice the batch run destined for [w.lo, w.hi).
			cnt := 0
			for t := w.lo; t < w.hi; t++ {
				cnt += int(incoming[t])
			}
			if err := a.rebalanceMerge(w.lo, w.hi, ps[bi:bi+cnt]); err != nil {
				return err
			}
			bi += cnt
			s = w.hi
			continue
		}
		if c := int(incoming[s]); c > 0 {
			a.mergeIntoSegment(s, ps[bi:bi+c])
			bi += c
		}
		s++
	}
	return nil
}

// mergeIntoSegment merges the sorted run into segment seg, which has
// room. The segment is rewritten once via the scratch buffers.
func (a *Array) mergeIntoSegment(seg int, run []pair) {
	oldC := int(a.cards[seg])
	newC := oldC + len(run)

	if a.cfg.Layout == LayoutClustered {
		a.ensureScratch(newC)
		kpg, off := a.segPage(a.keys, seg)
		vpg, voff := a.segPage(a.vals, seg)
		rl, rh := a.runBounds(seg)
		runK := kpg[off+rl : off+rh]
		runV := vpg[voff+rl : voff+rh]
		// Two-finger merge into scratch.
		i, j, o := 0, 0, 0
		for i < oldC && j < len(run) {
			if runK[i] <= run[j].k {
				a.scratchK[o], a.scratchV[o] = runK[i], runV[i]
				i++
			} else {
				a.scratchK[o], a.scratchV[o] = run[j].k, run[j].v
				j++
			}
			o++
		}
		for ; i < oldC; i, o = i+1, o+1 {
			a.scratchK[o], a.scratchV[o] = runK[i], runV[i]
		}
		for ; j < len(run); j, o = j+1, o+1 {
			a.scratchK[o], a.scratchV[o] = run[j].k, run[j].v
		}
		// Write back with the segment's packing parity.
		a.cardAdd(seg, int32(newC-oldC))
		nl, nh := a.runBounds(seg)
		copy(kpg[off+nl:off+nh], a.scratchK[:newC])
		copy(vpg[voff+nl:voff+nh], a.scratchV[:newC])
		a.stats.ElementCopies += uint64(2 * newC)
	} else {
		// Interleaved: gather, merge, respread within the segment, all
		// through the segment's page slices and word-parallel occupancy.
		a.ensureScratch(newC)
		base := seg * a.segSlots
		end := base + a.segSlots
		kpg, off := a.segPage(a.keys, seg)
		vpg, voff := a.segPage(a.vals, seg)
		o := 0
		j := 0
		for s := bmNext(a.bitmap, base, end); s != -1; s = bmNext(a.bitmap, s+1, end) {
			k, v := kpg[off+s-base], vpg[voff+s-base]
			for j < len(run) && run[j].k < k {
				a.scratchK[o], a.scratchV[o] = run[j].k, run[j].v
				j++
				o++
			}
			a.scratchK[o], a.scratchV[o] = k, v
			o++
		}
		for ; j < len(run); j, o = j+1, o+1 {
			a.scratchK[o], a.scratchV[o] = run[j].k, run[j].v
		}
		bmClearRange(a.bitmap, base, end)
		a.cardAdd(seg, int32(newC-oldC))
		for x := 0; x < newC; x++ {
			slot := x * a.segSlots / newC
			kpg[off+slot] = a.scratchK[x]
			vpg[voff+slot] = a.scratchV[x]
			a.setOccupied(base+slot, true)
		}
		a.stats.ElementCopies += uint64(2 * newC)
	}
	a.n += len(run)
	if seg == 0 || len(run) == 0 {
		a.refreshSepAt(seg)
		return
	}
	a.refreshSepAt(seg)
}

// refreshSepAt re-derives segment seg's separator after a content change.
func (a *Array) refreshSepAt(seg int) {
	if a.cards[seg] > 0 {
		a.setSegMin(seg, a.segMin(seg))
	} else {
		a.clearSegMin(seg)
	}
}

// rebalanceMerge rebalances window [lo, hi) while merging the sorted
// batch run into it (one redistribution for the whole batch share).
func (a *Array) rebalanceMerge(lo, hi int, run []pair) error {
	cnt := a.windowCard(lo, hi) + len(run)
	nseg := hi - lo
	a.stats.Rebalances++
	a.stats.RebalancedSegments += uint64(nseg)
	a.stats.RebalancedElements += uint64(cnt)

	targets := evenTargets(nseg, cnt, a.targetsScratch(nseg))

	windowSlots := nseg * a.segSlots
	useRewire := a.cfg.Rebalance == RebalanceRewired &&
		a.cfg.Layout == LayoutClustered &&
		windowSlots >= a.cfg.PageSlots

	var next func() (int64, int64, bool)
	if a.cfg.Layout == LayoutClustered {
		next = a.mergedWindowReader(lo, hi, run)
	} else {
		next = a.mergedWindowReaderInterleaved(lo, hi, run)
	}

	if useRewire {
		page0 := lo * a.segSlots >> a.pageShift
		npages := windowSlots / a.cfg.PageSlots
		sparesK, err := a.keys.AcquireSpares(npages)
		if err != nil {
			return err
		}
		sparesV, err := a.vals.AcquireSpares(npages)
		if err != nil {
			for _, pg := range sparesK {
				a.keys.ReleaseSpare(pg)
			}
			return err
		}
		a.writeWindowStream(lo, targets, sparesK, sparesV, page0, next)
		for i := 0; i < npages; i++ {
			a.keys.Swap(page0+i, sparesK[i])
			a.vals.Swap(page0+i, sparesV[i])
		}
		a.trimPool()
		a.stats.ElementCopies += uint64(cnt)
	} else {
		// Gather the merged stream into scratch, then write back.
		a.ensureScratch(cnt)
		for o := 0; ; o++ {
			k, v, ok := next()
			if !ok {
				break
			}
			a.scratchK[o], a.scratchV[o] = k, v
		}
		if a.cfg.Layout == LayoutClustered {
			sk, sv := a.scratchK[:cnt], a.scratchV[:cnt]
			a.applyCards(lo, targets)
			dst := a.destSpans(lo, targets, nil, nil, 0)
			a.srcSpans = append(a.srcSpans[:0], span{k: sk, v: sv})
			copySpans(dst, a.srcSpans)
		} else {
			a.writeInterleaved(lo, targets, cnt)
		}
		a.stats.ElementCopies += uint64(2 * cnt)
	}
	a.applyCards(lo, targets)
	a.n += len(run)
	a.refreshSeparators(lo, hi)
	return nil
}

// mergedWindowReader streams the union of window [lo, hi)'s elements and
// the sorted run, in key order, reading the old geometry.
func (a *Array) mergedWindowReader(lo, hi int, run []pair) func() (int64, int64, bool) {
	seg, rank := lo, 0
	var runK, runV []int64
	loadSeg := func() bool {
		for seg < hi {
			if int(a.cards[seg]) > 0 && rank < int(a.cards[seg]) {
				if runK == nil {
					if a.cfg.Layout == LayoutClustered {
						kpg, off := a.segPage(a.keys, seg)
						vpg, voff := a.segPage(a.vals, seg)
						rl, rh := a.runBounds(seg)
						runK, runV = kpg[off+rl:off+rh], vpg[voff+rl:voff+rh]
					} else {
						// Interleaved windows are gathered via scratch
						// in the caller; this reader is clustered-only.
						panic("core: mergedWindowReader on interleaved layout")
					}
				}
				return true
			}
			seg++
			rank = 0
			runK, runV = nil, nil
		}
		return false
	}
	ri := 0
	return func() (int64, int64, bool) {
		haveSeg := a.cfg.Layout == LayoutClustered && loadSeg()
		if haveSeg && (ri >= len(run) || runK[rank] <= run[ri].k) {
			k, v := runK[rank], runV[rank]
			rank++
			return k, v, true
		}
		if ri < len(run) {
			p := run[ri]
			ri++
			return p.k, p.v, true
		}
		return 0, 0, false
	}
}

// mergedWindowReaderInterleaved is mergedWindowReader for the interleaved
// layout, advancing word-parallel through the bitmap with the current
// page's slices cached — O(1) amortized per element, never a rescan.
func (a *Array) mergedWindowReaderInterleaved(lo, hi int, run []pair) func() (int64, int64, bool) {
	end := hi * a.segSlots
	mask := a.cfg.PageSlots - 1
	cursor := lo * a.segSlots
	next := bmNext(a.bitmap, cursor, end)
	var kpg, vpg []int64
	page := -1
	ri := 0
	return func() (int64, int64, bool) {
		if next >= 0 {
			if p := next >> a.pageShift; p != page {
				page = p
				kpg, vpg = a.keys.Page(p), a.vals.Page(p)
			}
			if ri >= len(run) || kpg[next&mask] <= run[ri].k {
				k, v := kpg[next&mask], vpg[next&mask]
				a.stats.SlotScans += uint64(next + 1 - cursor)
				cursor = next + 1
				next = bmNext(a.bitmap, cursor, end)
				return k, v, true
			}
		}
		if ri < len(run) {
			p := run[ri]
			ri++
			return p.k, p.v, true
		}
		return 0, 0, false
	}
}

// writeWindowStream writes the stream into segments [lo, lo+len(targets))
// with the clustered layout, into the spare pages indexed relative to
// page0 (closure-free, like destSpans' rewired path).
func (a *Array) writeWindowStream(lo int, targets []int,
	sparesK, sparesV [][]int64, page0 int, next func() (int64, int64, bool)) {

	for i, c := range targets {
		if c == 0 {
			continue
		}
		seg := lo + i
		var rl int
		if seg&1 == 0 {
			rl = a.segSlots - c
		}
		slot := seg*a.segSlots + rl
		page := slot >> a.pageShift
		off := slot & (a.cfg.PageSlots - 1)
		kpg := sparesK[page-page0]
		vpg := sparesV[page-page0]
		for j := 0; j < c; j++ {
			k, v, ok := next()
			if !ok {
				panic("core: window stream count mismatch")
			}
			kpg[off+j] = k
			vpg[off+j] = v
		}
	}
}

// BulkUpdate applies a batch of deletions followed by a batch of
// insertions, the streaming pattern of Section III: deletions first with
// rebalances disabled, then the bottom-up insert load.
func (a *Array) BulkUpdate(inserts Batch, deleteKeys []int64) error {
	if len(inserts.Keys) != len(inserts.Vals) {
		panic("core: BulkUpdate with mismatched key/value lengths")
	}
	a.stats.BulkLoads++
	// Deletions with rebalances disabled: plain segment removals.
	for _, k := range deleteKeys {
		seg := a.ix.FindUB(k)
		var rank int
		if a.cfg.Layout == LayoutClustered {
			rank = a.deleteClustered(seg, k)
		} else {
			rank = a.deleteInterleaved(seg, k)
		}
		if rank < 0 {
			continue
		}
		a.n--
		a.stats.Deletes++
		if a.cards[seg] == 0 {
			a.clearSegMin(seg)
		} else if rank == 0 {
			a.setSegMin(seg, a.elemKey(seg, 0))
		}
	}
	if inserts.Len() == 0 {
		return nil
	}
	return a.bulkInsert(inserts.sortedPairs())
}

// BulkLoadTopDown is the top-down scheme of Durand et al. (DRF12),
// implemented as the comparison baseline for Fig 13b: the calibrator tree
// is traversed root-to-leaves, recursively propagating the input sequence
// to the children, rebalancing wherever a node's thresholds fail. Its
// drawback, which the bottom-up scheme fixes, is that thresholds near the
// top are tighter, causing rebalances wider than necessary.
func (a *Array) BulkLoadTopDown(b Batch) error {
	if len(b.Keys) != len(b.Vals) {
		panic("core: BulkLoadTopDown with mismatched key/value lengths")
	}
	if b.Len() == 0 {
		return nil
	}
	a.stats.BulkLoads++
	ps := b.sortedPairs()

	_, tauRoot := a.cal.At(a.cal.Height())
	if float64(a.n+len(ps)) > tauRoot*float64(a.Capacity()) {
		newCap := a.cal.GrowCapacity(a.Capacity(), a.n+len(ps), a.cfg.PageSlots)
		for float64(a.n+len(ps)) > tauRoot*float64(newCap) {
			newCap *= 2
		}
		return a.resizeTo(newCap, ps)
	}
	return a.topDown(a.cal.Height(), 0, a.numSegs, ps)
}

// topDown distributes run into the node [lo, hi) at the given calibrator
// level. Invariant (guaranteed by the caller): the node's existing
// elements plus run fit within the node's own upper threshold, hence
// within its capacity.
func (a *Array) topDown(level, lo, hi int, run []pair) error {
	if len(run) == 0 {
		return nil
	}
	if level == 1 {
		// The caller's threshold check (tau1 <= 1) guarantees the merge
		// fits the segment.
		a.mergeIntoSegment(lo, run)
		return nil
	}
	mid := (lo + hi) / 2
	// Split the run at the right child's first separator.
	sep := a.ix.Key(mid)
	cut := sort.Search(len(run), func(i int) bool { return run[i].k >= sep })

	halves := []struct {
		lo, hi int
		run    []pair
	}{{lo, mid, run[:cut]}, {mid, hi, run[cut:]}}

	// If either child cannot absorb its share even fully packed, this
	// node rebalances, merging its whole input sequence (the DRF12
	// behaviour: "trigger a rebalance, merging the input sequence with
	// the existing elements in the current window"). This check runs
	// before touching either half so no partial merge is left behind.
	capHalf := (mid - lo) * a.segSlots
	for _, h := range halves {
		if a.windowCard(h.lo, h.hi)+len(h.run) > capHalf {
			return a.rebalanceMerge(lo, hi, run)
		}
	}

	_, tau := a.cal.At(level - 1)
	for _, h := range halves {
		if len(h.run) == 0 {
			continue
		}
		load := a.windowCard(h.lo, h.hi) + len(h.run)
		if float64(load) > tau*float64(capHalf) {
			// The child's threshold fails: rebalance the child window as
			// a whole. This is where the top-down scheme pays its extra
			// cost — thresholds tighten toward the root, so rebalances
			// trigger on windows wider than strictly necessary.
			if err := a.rebalanceMerge(h.lo, h.hi, h.run); err != nil {
				return err
			}
			continue
		}
		if err := a.topDown(level-1, h.lo, h.hi, h.run); err != nil {
			return err
		}
	}
	return nil
}
