package core

import (
	"fmt"
	"math"

	"rma/internal/calibrator"
	"rma/internal/detector"
	"rma/internal/staticindex"
	"rma/internal/vmem"
)

// unsetSep is the separator value of segments that have never held an
// element: it routes every key to the left, so inserts fill the array
// from segment 0 until rebalances spread them.
const unsetSep = int64(math.MaxInt64)

// segIndex is the routing structure from keys to segments; implemented by
// both the static and the dynamic index.
type segIndex interface {
	FindUB(key int64) int
	FindLB(key int64) int
	Update(j int, min int64)
	Key(j int) int64
	FootprintBytes() int64
}

// Array is a sparse array of sorted 8-byte key/value pairs: the engine
// behind the RMA and its TPMA/APMA baselines. Keys form a multiset
// (duplicates allowed); values travel with their key through every
// rebalance. Not safe for concurrent use, like the paper's sequential
// implementation.
type Array struct {
	cfg Config

	keys *vmem.Pages
	vals *vmem.Pages

	segSlots int // current segment capacity B
	numSegs  int
	n        int // stored elements

	cards  []int32  // per-segment cardinality (the paper's "cards" array)
	fen    fenwick  // prefix sums over cards, for order statistics
	bitmap []uint64 // occupancy, interleaved layout only

	cal calibrator.Tree
	ix  segIndex
	det *detector.Detector // nil unless adaptive

	clock uint64 // logical timestamp for the detector

	stats Stats

	// Reusable scratch for two-pass rebalances and bulk loads.
	scratchK, scratchV []int64
	scratchC           []int32
	// Reusable scratch for rebalance target cardinalities and span
	// lists: a steady-state rebalance must not allocate (see
	// PERFORMANCE.md), so these persist across calls.
	targetsBuf         []int
	srcSpans, dstSpans []span
	// Reusable scratch for adaptive mark processing (ROADMAP open item:
	// the detector's mark path must not allocate in steady state):
	// window prefix cardinalities, the merged interval list, per-depth
	// interval splits of the adaptive recursion, and APMA's marked-segment
	// flags.
	prefixBuf []int
	ivBuf     []interval
	ivSplit   [][2][]interval
	markedBuf []bool
	// Reusable probe-ordering scratch for FindBatch (steady-state
	// batched lookups must not allocate; same pattern as the rebalance
	// scratch above). probeTmp is the radix sort's ping-pong buffer.
	probeBuf []probe
	probeTmp []probe
	// One-slot cache of walker compaction buffers (interleaved layout):
	// NewWalker/IterDescend borrow the pair and return it when done, so
	// steady-state seek-and-scan allocates nothing; a nested walker
	// finds the slot empty and allocates its own.
	walkK, walkV []int64
	pageShift    uint // log2(PageSlots)

	// Deferred rebalancing (see pending.go): when deferred is on, an
	// overflowing insert does only a minimal local spread and queues
	// the density violation here for the maintenance layer.
	deferred bool
	pending  pendingQueue

	// dur is the attached durability region (see durable.go); nil for a
	// purely in-memory array.
	dur *vmem.FileRegion

	// walLSN is the LSN of the last write-ahead-log record applied to
	// this array (0 without a WAL). The shard layer maintains it under
	// the shard lock; checkpoints persist it as the replay floor.
	walLSN uint64

	// view is the published lock-free read snapshot (see readpath.go):
	// an immutable capture of every reader-reachable header, stored
	// through an atomic pointer and republished at each geometry change.
	// Readers load it without the shard lock; everything else about the
	// Array keeps its "not safe for concurrent use" contract.
	view viewPtr
}

// New builds an empty array with the given configuration.
func New(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	a := &Array{cfg: cfg}
	a.pageShift = uint(log2(cfg.PageSlots))

	minCap := cfg.PageSlots // one page minimum
	b := cfg.SegmentSlots
	if cfg.Sizing == SizingLogCap {
		b = logSegSize(minCap, cfg.PageSlots)
	}
	a.segSlots = b
	a.numSegs = minCap / b
	if err := a.initStorage(minCap); err != nil {
		return nil, err
	}
	a.resetDerived()
	return a, nil
}

// initStorage dimensions the page spaces to capSlots slots.
func (a *Array) initStorage(capSlots int) error {
	a.keys = vmem.New(a.cfg.PageSlots)
	a.vals = vmem.New(a.cfg.PageSlots)
	pages := capSlots / a.cfg.PageSlots
	if err := a.keys.Grow(pages); err != nil {
		return err
	}
	if err := a.vals.Grow(pages); err != nil {
		return err
	}
	return nil
}

// resetDerived rebuilds everything derived from (numSegs, segSlots):
// cards, bitmap, calibrator, index, detector. Content is assumed empty.
func (a *Array) resetDerived() {
	a.cards = make([]int32, a.numSegs)
	a.fen.reset(a.cards)
	if a.cfg.Layout == LayoutInterleaved {
		a.bitmap = make([]uint64, (a.Capacity()+63)/64)
	} else {
		a.bitmap = nil
	}
	a.cal = calibrator.NewTree(a.numSegs, a.cfg.Thresholds)
	mins := make([]int64, a.numSegs)
	for i := range mins {
		mins[i] = unsetSep
	}
	a.buildIndex(mins)
	a.warmRebalanceScratch()
	if a.cfg.Adaptive != AdaptiveOff {
		a.det = detector.New(a.numSegs, a.cfg.Detector)
		a.warmAdaptiveScratch()
	}
	a.publishView()
}

// warmRebalanceScratch pre-sizes the rebalance scratch to the widest
// possible window — the root, numSegs segments — so the first
// root-window rebalance of a capacity epoch does not pay a one-time
// growth allocation mid-steady-state. Called wherever the geometry
// changes; allocation stays confined to resize points.
func (a *Array) warmRebalanceScratch() {
	if cap(a.targetsBuf) < a.numSegs {
		a.targetsBuf = make([]int, 0, a.numSegs)
	}
	if cap(a.srcSpans) < a.numSegs {
		a.srcSpans = make([]span, 0, a.numSegs)
	}
	if cap(a.dstSpans) < a.numSegs {
		a.dstSpans = make([]span, 0, a.numSegs)
	}
}

// warmAdaptiveScratch pre-sizes the mark-processing buffers to their
// bounds at the current segment count, so steady-state adaptive
// rebalances never allocate: allocation happens only here, at resize
// points that already reallocate the detector wholesale. The per-depth
// interval splits get a generous fixed capacity instead of their
// (quadratic) worst case — marked-interval counts are tiny in practice,
// and ivSplitScratch still grows them on demand.
func (a *Array) warmAdaptiveScratch() {
	if cap(a.prefixBuf) < a.numSegs+1 {
		a.prefixBuf = make([]int, 0, a.numSegs+1)
	}
	if cap(a.ivBuf) < a.numSegs {
		a.ivBuf = make([]interval, 0, a.numSegs)
	}
	if cap(a.markedBuf) < a.numSegs {
		a.markedBuf = make([]bool, 0, a.numSegs)
	}
	for depth := log2(a.numSegs) + 1; depth >= len(a.ivSplit); {
		a.ivSplit = append(a.ivSplit, [2][]interval{
			make([]interval, 0, 16),
			make([]interval, 0, 16),
		})
	}
}

func (a *Array) buildIndex(mins []int64) {
	switch a.cfg.Index {
	case IndexStatic:
		a.ix = staticindex.NewStatic(mins, a.cfg.IndexFanout)
	case IndexDynamic:
		a.ix = staticindex.NewDynamic(mins)
	default:
		a.ix = staticindex.NewEytzinger(mins)
	}
}

// Size returns the number of stored elements.
func (a *Array) Size() int { return a.n }

// Capacity returns the number of slots.
func (a *Array) Capacity() int { return a.numSegs * a.segSlots }

// NumSegments returns the current number of segments.
func (a *Array) NumSegments() int { return a.numSegs }

// SegmentSlots returns the current segment capacity B.
func (a *Array) SegmentSlots() int { return a.segSlots }

// Config returns the configuration the array was built with.
func (a *Array) Config() Config { return a.cfg }

// Stats returns a snapshot of the operation counters, merged with the
// storage substrate's counters.
func (a *Array) Stats() Stats {
	s := a.stats
	s.PageSwaps = a.keys.Stats().Swaps + a.vals.Stats().Swaps
	return s
}

// FootprintBytes returns the physical memory held by the array: element
// storage (including spare pages), cards, bitmap, index, detector and
// scratch buffers. This is the quantity Fig 12c plots.
func (a *Array) FootprintBytes() int64 {
	f := a.keys.FootprintBytes() + a.vals.FootprintBytes()
	f += int64(cap(a.cards)) * 4
	f += a.fen.footprintBytes()
	f += int64(cap(a.bitmap)) * 8
	f += a.ix.FootprintBytes()
	if a.det != nil {
		f += a.det.FootprintBytes()
	}
	f += int64(cap(a.scratchK)+cap(a.scratchV))*8 + int64(cap(a.scratchC))*4
	f += int64(cap(a.targetsBuf))*8 + int64(cap(a.srcSpans)+cap(a.dstSpans))*48
	f += int64(cap(a.prefixBuf))*8 + int64(cap(a.ivBuf))*24 + int64(cap(a.markedBuf))
	f += int64(cap(a.probeBuf)+cap(a.probeTmp)) * 16
	f += int64(cap(a.walkK)+cap(a.walkV)) * 8
	for _, p := range a.ivSplit {
		f += int64(cap(p[0])+cap(p[1])) * 24
	}
	f += int64(len(a.pending.buf)) * 4
	if g := a.keys.Gate(); g != nil {
		// The gate is shared by both page spaces; count its limbo once.
		f += g.FootprintBytes()
	}
	return f
}

// Density returns the global fill factor n/capacity.
func (a *Array) Density() float64 { return float64(a.n) / float64(a.Capacity()) }

// SegmentDensity returns the fill factor of one segment (inspection).
func (a *Array) SegmentDensity(seg int) float64 {
	return float64(a.cards[seg]) / float64(a.segSlots)
}

// --- segment geometry -----------------------------------------------------

// segPage returns the page holding segment seg's slots and the offset of
// the segment's first slot within it. A segment never crosses a page
// because PageSlots is a multiple of 2*SegmentSlots.
func (a *Array) segPage(p *vmem.Pages, seg int) ([]int64, int) {
	return a.pageAt(p, seg*a.segSlots)
}

// pageAt returns the page slice holding slot s and s's offset within it.
// Hot paths hold the returned slice across a run of nearby slots instead
// of paying vmem.Get's table indirection per slot.
func (a *Array) pageAt(p *vmem.Pages, s int) ([]int64, int) {
	return p.Page(s >> a.pageShift), s & (a.cfg.PageSlots - 1)
}

// runBounds returns the in-segment slot interval [lo, hi) occupied by a
// clustered segment's elements: right-packed for even segments,
// left-packed for odd ones (the paper's odd/even alternation, 0-based).
func (a *Array) runBounds(seg int) (lo, hi int) {
	c := int(a.cards[seg])
	if seg&1 == 0 {
		return a.segSlots - c, a.segSlots
	}
	return 0, c
}

// segMin returns the smallest key stored in segment seg, which must be
// non-empty.
func (a *Array) segMin(seg int) int64 {
	switch a.cfg.Layout {
	case LayoutClustered:
		pg, off := a.segPage(a.keys, seg)
		lo, _ := a.runBounds(seg)
		return pg[off+lo]
	default:
		base := seg * a.segSlots
		s := bmNext(a.bitmap, base, base+a.segSlots)
		if s < 0 {
			panic("core: segMin of empty segment")
		}
		pg, off := a.pageAt(a.keys, s)
		return pg[off]
	}
}

// occupied reports whether interleaved slot s holds an element.
func (a *Array) occupied(s int) bool {
	return a.bitmap[s>>6]&(1<<(uint(s)&63)) != 0
}

func (a *Array) setOccupied(s int, on bool) {
	if on {
		a.bitmap[s>>6] |= 1 << (uint(s) & 63)
	} else {
		a.bitmap[s>>6] &^= 1 << (uint(s) & 63)
	}
}

// --- cardinality maintenance -------------------------------------------------

// cardAdd adjusts segment seg's cardinality by d, keeping the Fenwick
// prefix sums current. Every point insert/delete goes through here, so
// it doubles as the durability hook: the touched segment's page is
// marked dirty for the next checkpoint (a nil-guarded bit set, free
// when durability is off — in-place writes through Page slices are
// invisible to vmem, and this is the choke point they all share).
func (a *Array) cardAdd(seg int, d int32) {
	a.cards[seg] += d
	a.fen.add(seg, int64(d))
	v := (seg * a.segSlots) >> a.pageShift
	a.keys.MarkDirty(v)
	a.vals.MarkDirty(v)
}

// applyCards installs new per-segment cardinalities for the window
// starting at segment lo, folding the per-segment deltas into the
// Fenwick tree. Rebalances and bulk merges go through here; calling it
// twice with the same targets is a no-op the second time. Like cardAdd,
// this is the durability choke point for window writes: every page the
// window spans is marked dirty unconditionally, because an in-place
// redistribution moves elements even in segments whose cardinality is
// unchanged.
func (a *Array) applyCards(lo int, targets []int) {
	for i, t := range targets {
		if d := int64(t) - int64(a.cards[lo+i]); d != 0 {
			a.fen.add(lo+i, d)
			a.cards[lo+i] = int32(t)
		}
	}
	loPage := (lo * a.segSlots) >> a.pageShift
	hiPage := ((lo+len(targets))*a.segSlots + a.cfg.PageSlots - 1) >> a.pageShift
	a.keys.MarkDirtyRange(loPage, hiPage)
	a.vals.MarkDirtyRange(loPage, hiPage)
}

// --- separator maintenance -------------------------------------------------

// setSegMin records that segment seg's minimum changed to min, updating
// the separator of seg and of any empty segments immediately to its left
// (whose separators point at the nearest non-empty segment on their
// right — see DESIGN.md on empty-segment separators).
func (a *Array) setSegMin(seg int, min int64) {
	if seg > 0 {
		a.ix.Update(seg, min)
	}
	for j := seg - 1; j >= 1 && a.cards[j] == 0; j-- {
		a.ix.Update(j, min)
	}
}

// clearSegMin records that segment seg became empty: its separator (and
// the chain of empty segments to its left) adopts the separator of the
// nearest non-empty segment to the right, or unsetSep if none exists.
func (a *Array) clearSegMin(seg int) {
	carry := unsetSep
	for j := seg + 1; j < a.numSegs; j++ {
		if a.cards[j] > 0 {
			carry = a.segMin(j)
			break
		}
	}
	for j := seg; j >= 1; j-- {
		if j < seg && a.cards[j] != 0 {
			break
		}
		a.ix.Update(j, carry)
	}
}

// --- misc -------------------------------------------------------------------

func log2(x int) int {
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}

// logSegSize derives the TPMA segment size Theta(log2 C) for a capacity,
// rounded up to a power of two (min 8) so window arithmetic stays exact,
// and clamped to the page size so a segment never crosses a page — the
// invariant every hot path's cached page-slice access relies on.
func logSegSize(capSlots, pageSlots int) int {
	l := log2(capSlots)
	b := 8
	for b < l {
		b <<= 1
	}
	if b > pageSlots {
		b = pageSlots
	}
	return b
}

// checkInterface guards that every index kind satisfies segIndex.
var (
	_ segIndex = (*staticindex.Static)(nil)
	_ segIndex = (*staticindex.Dynamic)(nil)
	_ segIndex = (*staticindex.Eytzinger)(nil)
)

func (a *Array) String() string {
	return fmt.Sprintf("core.Array{n=%d cap=%d segs=%d B=%d}", a.n, a.Capacity(), a.numSegs, a.segSlots)
}
