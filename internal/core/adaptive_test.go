package core

import (
	"testing"

	"rma/internal/calibrator"
	"rma/internal/detector"
	"rma/internal/workload"
)

// fig2aShell builds an Array shell with the geometry of the paper's
// Fig 2a example: 4 segments, thresholds rho1=0.1, rhoH=0.3, tauH=0.75,
// tau1=1 (which interpolate to the figure's rho2=0.2, tau2=0.875). The
// segment size is 8 in place of the figure's 6 (the engine requires a
// power of two); the adaptive algorithm's decisions depend on the run,
// the marks and the thresholds, not on B, so the paper's target
// cardinalities are preserved.
func fig2aShell(segSlots int) *Array {
	th := calibrator.Thresholds{Rho1: 0.1, RhoH: 0.3, TauH: 0.75, Tau1: 1.0}
	return &Array{
		cfg:      Config{SegmentSlots: segSlots, PageSlots: 4 * segSlots, Thresholds: th},
		segSlots: segSlots,
		numSegs:  4,
		cal:      calibrator.NewTree(4, th),
	}
}

// TestAdaptiveFig7Example reproduces the paper's worked example: 16
// elements, one marked interval at the pair (16,19) = positions [4,6),
// expected target cardinalities [4, 2, 5, 5] (Fig 7).
func TestAdaptiveFig7Example(t *testing.T) {
	a := fig2aShell(8)
	marks := []interval{{pos: 4, length: 2, score: 1}}
	got := a.adaptiveTargets(0, 4, 16, marks)
	want := []int{4, 2, 5, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets = %v, want %v (paper Fig 7)", got, want)
		}
	}
}

// TestAdaptiveNoMarksIsEven mirrors Fig 9a: without marked intervals the
// split is even.
func TestAdaptiveNoMarksIsEven(t *testing.T) {
	a := fig2aShell(8)
	got := a.adaptiveTargets(0, 4, 16, nil)
	want := []int{4, 4, 4, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("targets = %v, want %v", got, want)
		}
	}
}

// TestAdaptiveTwoMarks mirrors Fig 9c: two marked intervals are split one
// per child.
func TestAdaptiveTwoMarks(t *testing.T) {
	a := fig2aShell(8)
	marks := []interval{
		{pos: 2, length: 2, score: 1},
		{pos: 12, length: 2, score: 1},
	}
	got := a.adaptiveTargets(0, 4, 16, marks)
	sumL, sumR := got[0]+got[1], got[2]+got[3]
	if sumL+sumR != 16 {
		t.Fatalf("targets %v do not preserve the element count", got)
	}
	// One mark per side: the split must be balanced.
	if absDiff(sumL, sumR) > 2 {
		t.Fatalf("two symmetric marks should split near-evenly, got %v", got)
	}
}

// TestAdaptiveTargetsConservation: for any run/marks, targets sum to the
// run size and respect segment capacity with a reserved slot.
func TestAdaptiveTargetsConservation(t *testing.T) {
	rng := workload.NewRNG(11)
	for trial := 0; trial < 500; trial++ {
		nseg := 1 << (1 + rng.Uint64n(4)) // 2..16
		b := 8
		th := calibrator.UpdateOriented()
		a := &Array{
			cfg:      Config{SegmentSlots: b, PageSlots: 2 * b, Thresholds: th},
			segSlots: b,
			numSegs:  nseg,
			cal:      calibrator.NewTree(nseg, th),
		}
		capW := nseg * b
		cnt := int(rng.Uint64n(uint64(capW-nseg))) + 1 // leaves reserve room
		var marks []interval
		pos := 0
		for pos < cnt && len(marks) < 4 && rng.Uint64n(2) == 0 {
			p := pos + int(rng.Uint64n(uint64(cnt-pos)))
			l := 1 + int(rng.Uint64n(3))
			if p+l > cnt {
				l = cnt - p
			}
			score := 1
			if rng.Uint64n(4) == 0 {
				score = -1
			}
			marks = append(marks, interval{pos: p, length: l, score: score})
			pos = p + l
		}
		got := a.adaptiveTargets(0, nseg, cnt, marks)
		sum := 0
		for s, g := range got {
			if g < 0 || g > b {
				t.Fatalf("trial %d: target[%d]=%d out of [0,%d] (targets %v, cnt %d, marks %v)",
					trial, s, g, b, got, cnt, marks)
			}
			sum += g
		}
		if sum != cnt {
			t.Fatalf("trial %d: targets %v sum %d, want %d", trial, got, sum, cnt)
		}
	}
}

// TestAdaptiveReducesRebalancesUnderSequentialHammering is the behavioural
// claim of Section IV: with adaptive rebalancing on, sequential insertion
// triggers far less rebalance work than with even rebalancing.
func TestAdaptiveReducesRebalancesUnderSequentialHammering(t *testing.T) {
	run := func(policy AdaptivePolicy) uint64 {
		cfg := testConfig()
		cfg.SegmentSlots = 16
		cfg.PageSlots = 64
		cfg.Adaptive = policy
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30000; i++ {
			if err := a.Insert(int64(i), 0); err != nil {
				t.Fatal(err)
			}
		}
		return a.Stats().RebalancedElements
	}
	even := run(AdaptiveOff)
	adaptive := run(AdaptiveRMA)
	if adaptive*2 > even {
		t.Fatalf("adaptive rebalancing moved %d elements vs even's %d; expected at most half",
			adaptive, even)
	}
}

// TestAdaptiveCorrectUnderZipfMix checks correctness (not speed) of the
// adaptive policy under the paper's skewed mixed workload.
func TestAdaptiveCorrectUnderZipfMix(t *testing.T) {
	cfg := testConfig()
	a := mustNew(t, cfg)
	ins := workload.NewZipf(1, 1.5, 1<<20, true)
	del := workload.NewZipf(2, 1.5, 1<<20, true)
	for i := 0; i < 4000; i++ {
		mustInsert(t, a, ins.Next(), int64(i))
	}
	for round := 0; round < 10; round++ {
		for i := 0; i < 256; i++ {
			mustInsert(t, a, ins.Next(), int64(i))
		}
		for i := 0; i < 256; i++ {
			if _, err := a.Delete(del.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestAPMATargetsPinMarksPositionally: the APMA policy keeps gaps at the
// marked side of the window.
func TestAPMATargetsPinMarksPositionally(t *testing.T) {
	a := fig2aShell(8)
	a.cfg.Adaptive = AdaptiveAPMA
	// Hammered segment 0 (left side): the left child should receive as
	// few elements as the thresholds allow.
	marks := []detector.Mark{{Seg: 0, Kind: detector.MarkSegment, Score: 1}}
	got := a.apmaTargets(0, 4, 16, marks)
	if got == nil {
		t.Fatal("nil targets")
	}
	sumL, sumR := got[0]+got[1], got[2]+got[3]
	if sumL+sumR != 16 {
		t.Fatalf("targets %v do not conserve elements", got)
	}
	if sumL >= sumR {
		t.Fatalf("APMA should push elements away from the hammered left side, got %v", got)
	}
	// Mirror: hammered right side.
	marks = []detector.Mark{{Seg: 3, Kind: detector.MarkSegment, Score: 1}}
	got = a.apmaTargets(0, 4, 16, marks)
	sumL, sumR = got[0]+got[1], got[2]+got[3]
	if sumR >= sumL {
		t.Fatalf("APMA should push elements away from the hammered right side, got %v", got)
	}
}

// TestMarksToIntervalsSegmentMark verifies position conversion of
// whole-segment marks against the prefix cardinalities.
func TestMarksToIntervalsSegmentMark(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = AdaptiveOff
	a := mustNew(t, cfg)
	for i := 0; i < 64; i++ {
		mustInsert(t, a, int64(i), 0)
	}
	// Find a non-empty segment in the middle.
	seg := -1
	for s := 1; s < a.numSegs; s++ {
		if a.cards[s] > 0 {
			seg = s
			break
		}
	}
	if seg < 0 {
		t.Skip("no populated middle segment at this scale")
	}
	marks := []detector.Mark{{Seg: seg, Kind: detector.MarkSegment, Score: 1}}
	iv := a.marksToIntervals(0, a.numSegs, marks)
	if len(iv) != 1 {
		t.Fatalf("got %d intervals", len(iv))
	}
	wantPos := 0
	for s := 0; s < seg; s++ {
		wantPos += int(a.cards[s])
	}
	if iv[0].pos != wantPos || iv[0].length != int(a.cards[seg]) {
		t.Fatalf("interval (%d,%d), want (%d,%d)", iv[0].pos, iv[0].length, wantPos, a.cards[seg])
	}
}

// TestMarksToIntervalsMergesOverlaps: adjacent pair marks collapse into
// one interval.
func TestMarksToIntervalsMergesOverlaps(t *testing.T) {
	cfg := testConfig()
	cfg.Adaptive = AdaptiveOff
	a := mustNew(t, cfg)
	for i := 0; i < 32; i++ {
		mustInsert(t, a, int64(i*2), 0)
	}
	marks := []detector.Mark{
		{Seg: 0, Kind: detector.MarkPairBwd, Key: 10, Score: 1},
		{Seg: 0, Kind: detector.MarkPairBwd, Key: 12, Score: 1},
	}
	iv := a.marksToIntervals(0, a.numSegs, marks)
	if len(iv) != 1 {
		t.Fatalf("overlapping pair marks not merged: %+v", iv)
	}
	if iv[0].score != 1 {
		t.Fatalf("merged score %d, want clamped 1", iv[0].score)
	}
}
