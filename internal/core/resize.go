package core

import (
	"rma/internal/calibrator"
	"rma/internal/vmem"
)

// pair is an element in flight during resizes and bulk loads.
type pair struct{ k, v int64 }

// grow expands the array per the configured resize strategy (Section II)
// and redistributes every element evenly over the new capacity.
func (a *Array) grow() error {
	newCap := a.cal.GrowCapacity(a.Capacity(), a.n+1, a.cfg.PageSlots)
	return a.resizeTo(newCap, nil)
}

// shrink contracts the array if the strategy calls for it.
func (a *Array) shrink() error {
	newCap := a.cal.ShrinkCapacity(a.Capacity(), a.n, a.cfg.PageSlots, a.cfg.PageSlots)
	if newCap == a.Capacity() {
		return nil
	}
	return a.resizeTo(newCap, nil)
}

// resizeTo rebuilds the array at newCap slots, optionally merging the
// sorted batch extra into the elements during the single redistribution
// pass (used by bulk loads whose root window overflows).
//
// The paper treats a resize as a rebalance whose window is the whole
// array: with rewiring, the destination is a set of spare physical pages
// (absorbing the existing buffer pool first) that are swapped in after a
// single copy per element; without rewiring, a fresh runtime-zeroed
// allocation pays the "acquiring new zeroed physical pages" cost that
// Fig 14's rewiring step eliminates.
func (a *Array) resizeTo(newCap int, extra []pair) error {
	oldSegs, oldB := a.numSegs, a.segSlots
	newB := a.segSlots
	if a.cfg.Sizing == SizingLogCap {
		newB = logSegSize(newCap, a.cfg.PageSlots)
	}
	newSegs := newCap / newB
	total := a.n + len(extra)
	newPages := newCap / a.cfg.PageSlots

	targets := evenTargets(newSegs, total, make([]int, newSegs))

	var err error
	if a.cfg.Rebalance == RebalanceRewired && a.cfg.Layout == LayoutClustered {
		err = a.resizeRewired(newSegs, newB, newPages, targets, extra)
	} else {
		err = a.resizeFresh(newSegs, newB, newPages, targets, extra)
	}
	if err != nil {
		return err
	}

	a.stats.Resizes++
	if newCap > oldSegs*oldB {
		a.stats.Grows++
	} else {
		a.stats.Shrinks++
	}
	a.stats.RebalancedElements += uint64(total)
	a.stats.ElementCopies += uint64(total)

	// Rebuild everything derived from the new geometry.
	a.numSegs, a.segSlots = newSegs, newB
	a.n = total
	a.cards = make([]int32, newSegs)
	for i, t := range targets {
		a.cards[i] = int32(t)
	}
	a.fen.reset(a.cards)
	a.cal = calibrator.NewTree(newSegs, a.cfg.Thresholds)
	a.rebuildIndexFromLayout()
	a.warmRebalanceScratch()
	if a.det != nil {
		a.det.Reset(newSegs)
		a.warmAdaptiveScratch()
	}
	a.publishView()
	return nil
}

// resizeRewired redistributes into acquired spare pages and swaps them
// in, reusing pooled physical pages (no zeroing) wherever possible.
func (a *Array) resizeRewired(newSegs, newB, newPages int, targets []int, extra []pair) error {
	oldPages := a.keys.NumPages()

	// Extend the virtual address space first (cheap to undo on failure).
	if newPages > oldPages {
		if err := a.keys.Grow(newPages - oldPages); err != nil {
			a.stats.AllocFailures++
			return err
		}
		if err := a.vals.Grow(newPages - oldPages); err != nil {
			a.keys.Truncate(oldPages)
			a.stats.AllocFailures++
			return err
		}
	}
	sparesK, err := a.keys.AcquireSpares(newPages)
	if err != nil {
		if newPages > oldPages {
			a.keys.Truncate(oldPages)
			a.vals.Truncate(oldPages)
		}
		a.stats.AllocFailures++
		return err
	}
	sparesV, err := a.vals.AcquireSpares(newPages)
	if err != nil {
		for _, pg := range sparesK {
			a.keys.ReleaseSpare(pg)
		}
		if newPages > oldPages {
			a.keys.Truncate(oldPages)
			a.vals.Truncate(oldPages)
		}
		a.stats.AllocFailures++
		return err
	}

	a.writeResize(newSegs, newB, targets, extra,
		func(page int) []int64 { return sparesK[page] },
		func(page int) []int64 { return sparesV[page] })

	for i := 0; i < newPages; i++ {
		a.keys.Swap(i, sparesK[i])
		a.vals.Swap(i, sparesV[i])
	}
	if newPages < a.keys.NumPages() {
		a.keys.Truncate(newPages)
		a.vals.Truncate(newPages)
	}
	a.trimPool()
	return nil
}

// resizeFresh redistributes into brand-new page spaces (runtime-zeroed),
// the standard resize of non-rewired implementations.
func (a *Array) resizeFresh(newSegs, newB, newPages int, targets []int, extra []pair) error {
	nk := vmem.New(a.cfg.PageSlots)
	nv := vmem.New(a.cfg.PageSlots)
	if a.keys.DirtyTracking() {
		// Durability survives the space swap: the replacement spaces are
		// tracked from birth, and Grow marks every new page dirty, so the
		// next checkpoint persists the array wholesale.
		nk.EnableDirtyTracking()
		nv.EnableDirtyTracking()
	}
	if err := nk.Grow(newPages); err != nil {
		a.stats.AllocFailures++
		return err
	}
	if err := nv.Grow(newPages); err != nil {
		a.stats.AllocFailures++
		return err
	}

	// The writer reads the old geometry through a.keys/a.vals, which stay
	// in place until the write completes.
	a.writeResizeInterleavedAware(newSegs, newB, targets, extra,
		func(page int) []int64 { return nk.Page(page) },
		func(page int) []int64 { return nv.Page(page) })

	a.keys, a.vals = nk, nv
	return nil
}

// writeResize streams the merged (existing ∪ extra) ordered elements into
// the clustered destination layout described by targets, reading the old
// geometry directly (one copy per element).
func (a *Array) writeResize(newSegs, newB int, targets []int, extra []pair,
	resolveK, resolveV func(page int) []int64) {

	next := a.mergedReader(extra)
	writeClusteredStream(newSegs, newB, a.cfg.PageSlots, targets, resolveK, resolveV, next)
}

// writeResizeInterleavedAware is writeResize for either layout; the
// interleaved destination spreads elements with even gaps.
func (a *Array) writeResizeInterleavedAware(newSegs, newB int, targets []int, extra []pair,
	resolveK, resolveV func(page int) []int64) {

	next := a.mergedReader(extra)
	if a.cfg.Layout == LayoutClustered {
		writeClusteredStream(newSegs, newB, a.cfg.PageSlots, targets, resolveK, resolveV, next)
		return
	}
	// Interleaved: new bitmap sized for the new capacity. Segments never
	// cross pages (newB <= PageSlots, both powers of two), so each
	// segment's destination page is resolved once.
	newCap := newSegs * newB
	bm := make([]uint64, (newCap+63)/64)
	for i, c := range targets {
		if c == 0 {
			continue
		}
		base := i * newB
		page := base / a.cfg.PageSlots
		off := base % a.cfg.PageSlots
		kpg, vpg := resolveK(page), resolveV(page)
		for j := 0; j < c; j++ {
			slot := j * newB / c
			k, v, ok := next()
			if !ok {
				panic("core: resize element count mismatch")
			}
			kpg[off+slot] = k
			vpg[off+slot] = v
			bm[(base+slot)>>6] |= 1 << (uint(base+slot) & 63)
		}
	}
	a.bitmap = bm
}

// writeClusteredStream writes elements from next into the clustered
// layout (alternating packing) defined by targets.
func writeClusteredStream(newSegs, newB, pageSlots int, targets []int,
	resolveK, resolveV func(page int) []int64, next func() (int64, int64, bool)) {

	shift := uint(log2(pageSlots))
	for i, c := range targets {
		if c == 0 {
			continue
		}
		var rl int
		if i&1 == 0 {
			rl = newB - c
		}
		slot := i*newB + rl
		page := slot >> shift
		off := slot & (pageSlots - 1)
		kpg := resolveK(page)
		vpg := resolveV(page)
		for j := 0; j < c; j++ {
			k, v, ok := next()
			if !ok {
				panic("core: resize element count mismatch")
			}
			kpg[off+j] = k
			vpg[off+j] = v
		}
	}
}

// mergedReader returns a stream over the union of the array's current
// elements (old geometry) and the sorted extra batch, in key order.
//
// On the clustered layout it caches the current segment's run slices; on
// the interleaved one it advances a slot cursor word-parallel through
// the bitmap with the current page's slices cached — O(1) amortized per
// element. (An earlier version called elemKey/elemVal per element, each
// an O(B) rescan from the segment base: O(B²) per segment on every
// resize. Stats.SlotScans pins the linear walk.)
func (a *Array) mergedReader(extra []pair) func() (int64, int64, bool) {
	var advance func() (int64, int64, bool)
	if a.cfg.Layout == LayoutClustered {
		seg, rank := 0, 0
		var runK, runV []int64
		advance = func() (int64, int64, bool) {
			for seg < a.numSegs {
				if rank < int(a.cards[seg]) {
					if runK == nil {
						kpg, off := a.segPage(a.keys, seg)
						vpg, voff := a.segPage(a.vals, seg)
						rl, rh := a.runBounds(seg)
						runK, runV = kpg[off+rl:off+rh], vpg[voff+rl:voff+rh]
					}
					k, v := runK[rank], runV[rank]
					rank++
					return k, v, true
				}
				seg++
				rank = 0
				runK, runV = nil, nil
			}
			return 0, 0, false
		}
	} else {
		end := a.Capacity()
		mask := a.cfg.PageSlots - 1
		cursor := 0
		var kpg, vpg []int64
		page := -1
		advance = func() (int64, int64, bool) {
			s := bmNext(a.bitmap, cursor, end)
			if s < 0 {
				return 0, 0, false
			}
			if p := s >> a.pageShift; p != page {
				page = p
				kpg, vpg = a.keys.Page(p), a.vals.Page(p)
			}
			a.stats.SlotScans += uint64(s + 1 - cursor)
			cursor = s + 1
			return kpg[s&mask], vpg[s&mask], true
		}
	}
	curK, curV, curOK := advance()
	ei := 0
	return func() (int64, int64, bool) {
		if curOK && (ei >= len(extra) || curK <= extra[ei].k) {
			k, v := curK, curV
			curK, curV, curOK = advance()
			return k, v, true
		}
		if ei < len(extra) {
			p := extra[ei]
			ei++
			return p.k, p.v, true
		}
		return 0, 0, false
	}
}

// elemVal returns the rank-th value of segment seg (mirror of elemKey).
func (a *Array) elemVal(seg, rank int) int64 {
	switch a.cfg.Layout {
	case LayoutClustered:
		pg, off := a.segPage(a.vals, seg)
		lo, _ := a.runBounds(seg)
		return pg[off+lo+rank]
	default:
		base := seg * a.segSlots
		s := bmSelect(a.bitmap, base, base+a.segSlots, rank)
		if s < 0 {
			panic("core: elemVal rank out of range")
		}
		pg, off := a.pageAt(a.vals, s)
		return pg[off]
	}
}

// rebuildIndexFromLayout recomputes every separator from the stored
// elements and rebuilds the index structure for the current geometry.
func (a *Array) rebuildIndexFromLayout() {
	mins := make([]int64, a.numSegs)
	carry := unsetSep
	for j := a.numSegs - 1; j >= 0; j-- {
		if a.cards[j] > 0 {
			carry = a.segMin(j)
		}
		mins[j] = carry
	}
	a.buildIndex(mins)
}
