package core

import (
	"fmt"
	"sort"
	"testing"

	"rma/internal/calibrator"
	"rma/internal/workload"
)

// testConfig returns a small-page configuration so tests exercise
// rebalances, rewiring and resizes with modest element counts.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SegmentSlots = 8
	cfg.PageSlots = 32
	return cfg
}

// configMatrix enumerates named engine configurations covering every
// design axis; differential tests run all of them.
func configMatrix() map[string]Config {
	m := map[string]Config{}

	rma := testConfig()
	m["rma-default"] = rma

	tw := testConfig()
	tw.Rebalance = RebalanceTwoPass
	m["rma-twopass"] = tw

	even := testConfig()
	even.Adaptive = AdaptiveOff
	m["rma-even"] = even

	dyn := testConfig()
	dyn.Index = IndexDynamic
	m["rma-dynamic-index"] = dyn

	st := testConfig()
	st.Thresholds = calibrator.ScanOriented()
	m["rma-scan-thresholds"] = st

	baseline := BaselineConfig()
	baseline.PageSlots = 32
	baseline.SegmentSlots = 8
	m["tpma-baseline"] = baseline

	inter := testConfig()
	inter.Layout = LayoutInterleaved
	inter.Rebalance = RebalanceTwoPass
	inter.Adaptive = AdaptiveOff
	m["tpma-clustered-index"] = inter

	apma := BaselineConfig()
	apma.PageSlots = 32
	apma.SegmentSlots = 8
	apma.Adaptive = AdaptiveAPMA
	m["apma"] = apma

	logseg := testConfig()
	logseg.Sizing = SizingLogCap
	m["rma-logcap"] = logseg

	bigB := testConfig()
	bigB.SegmentSlots = 16
	bigB.PageSlots = 32
	m["rma-b16"] = bigB

	return m
}

// oracle is a reference sorted multiset.
type oracle struct{ ps []pair }

func (o *oracle) insert(k, v int64) {
	i := sort.Search(len(o.ps), func(i int) bool { return o.ps[i].k > k })
	o.ps = append(o.ps, pair{})
	copy(o.ps[i+1:], o.ps[i:])
	o.ps[i] = pair{k, v}
}

func (o *oracle) delete(k int64) bool {
	i := sort.Search(len(o.ps), func(i int) bool { return o.ps[i].k >= k })
	if i < len(o.ps) && o.ps[i].k == k {
		o.ps = append(o.ps[:i], o.ps[i+1:]...)
		return true
	}
	return false
}

func (o *oracle) contains(k int64) bool {
	i := sort.Search(len(o.ps), func(i int) bool { return o.ps[i].k >= k })
	return i < len(o.ps) && o.ps[i].k == k
}

func (o *oracle) sumRange(lo, hi int64) (int, int64) {
	cnt, sum := 0, int64(0)
	for _, p := range o.ps {
		if p.k >= lo && p.k <= hi {
			cnt++
			sum += p.v
		}
	}
	return cnt, sum
}

func mustNew(t *testing.T, cfg Config) *Array {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustInsert(t *testing.T, a *Array, k, v int64) {
	t.Helper()
	if err := a.Insert(k, v); err != nil {
		t.Fatalf("Insert(%d): %v", k, err)
	}
}

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.SegmentSlots = 100 // not a power of two
	if bad.Validate() == nil {
		t.Fatal("expected error for non-power-of-two B")
	}
	bad = DefaultConfig()
	bad.PageSlots = 64 // < 2*B
	if bad.Validate() == nil {
		t.Fatal("expected error for PageSlots < 2B")
	}
	bad = DefaultConfig()
	bad.Adaptive = AdaptiveAPMA
	bad.Thresholds.ForceShrinkFill = 0.5
	if bad.Validate() == nil {
		t.Fatal("expected error for APMA + deletions")
	}
}

func TestInsertFindSmall(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			keys := []int64{10, 5, 30, 20, 25, 1, 100, 50, 7, 3}
			for _, k := range keys {
				mustInsert(t, a, k, k*2)
			}
			if a.Size() != len(keys) {
				t.Fatalf("size %d, want %d", a.Size(), len(keys))
			}
			for _, k := range keys {
				v, ok := a.Find(k)
				if !ok || v != k*2 {
					t.Fatalf("Find(%d) = (%d,%v)", k, v, ok)
				}
			}
			if _, ok := a.Find(999); ok {
				t.Fatal("found absent key")
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestInsertGrowsThroughResizes(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			g := workload.NewUniform(42, 1<<30)
			const n = 3000
			for i := 0; i < n; i++ {
				mustInsert(t, a, g.Next(), int64(i))
			}
			if a.Size() != n {
				t.Fatalf("size %d, want %d", a.Size(), n)
			}
			if a.Stats().Resizes == 0 {
				t.Fatal("expected at least one resize")
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSequentialInsertion(t *testing.T) {
	// The hammering worst case: strictly ascending keys.
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			const n = 2000
			for i := 0; i < n; i++ {
				mustInsert(t, a, int64(i), int64(i))
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			cnt, _ := a.SumAll()
			if cnt != n {
				t.Fatalf("SumAll count %d, want %d", cnt, n)
			}
		})
	}
}

func TestDescendingInsertion(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			const n = 1500
			for i := n - 1; i >= 0; i-- {
				mustInsert(t, a, int64(i), int64(i))
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDuplicateKeys(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			for i := 0; i < 500; i++ {
				mustInsert(t, a, 7, int64(i))
			}
			mustInsert(t, a, 3, 30)
			mustInsert(t, a, 9, 90)
			if a.Size() != 502 {
				t.Fatalf("size %d", a.Size())
			}
			cnt, _ := a.Sum(7, 7)
			if cnt != 500 {
				t.Fatalf("dup count %d, want 500", cnt)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeleteBasics(t *testing.T) {
	for name, cfg := range configMatrix() {
		if cfg.Adaptive == AdaptiveAPMA {
			continue // APMA has no deletion support (as in the paper)
		}
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			for i := 0; i < 100; i++ {
				mustInsert(t, a, int64(i), int64(i*10))
			}
			for i := 0; i < 100; i += 2 {
				ok, err := a.Delete(int64(i))
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("Delete(%d) missed", i)
				}
			}
			if a.Size() != 50 {
				t.Fatalf("size %d", a.Size())
			}
			for i := 0; i < 100; i++ {
				_, ok := a.Find(int64(i))
				if want := i%2 == 1; ok != want {
					t.Fatalf("Find(%d) = %v, want %v", i, ok, want)
				}
			}
			if ok, _ := a.Delete(424242); ok {
				t.Fatal("deleted absent key")
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeleteToEmptyAndShrink(t *testing.T) {
	for name, cfg := range configMatrix() {
		if cfg.Adaptive == AdaptiveAPMA {
			continue
		}
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			const n = 2000
			for i := 0; i < n; i++ {
				mustInsert(t, a, int64(i), int64(i))
			}
			grownCap := a.Capacity()
			for i := 0; i < n; i++ {
				if ok, err := a.Delete(int64(i)); !ok || err != nil {
					t.Fatalf("Delete(%d) = %v,%v", i, ok, err)
				}
			}
			if a.Size() != 0 {
				t.Fatalf("size %d after deleting all", a.Size())
			}
			if a.Capacity() >= grownCap {
				t.Fatalf("array did not shrink: %d >= %d", a.Capacity(), grownCap)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			// The array must remain fully usable.
			mustInsert(t, a, 5, 50)
			if v, ok := a.Find(5); !ok || v != 50 {
				t.Fatal("array unusable after emptying")
			}
		})
	}
}

// TestDifferentialRandomOps runs a randomized insert/delete/find/sum
// workload against the oracle on every configuration.
func TestDifferentialRandomOps(t *testing.T) {
	for name, cfg := range configMatrix() {
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			o := &oracle{}
			rng := workload.NewRNG(uint64(len(name)) * 7777)
			allowDelete := cfg.Adaptive != AdaptiveAPMA
			const ops = 6000
			for i := 0; i < ops; i++ {
				k := int64(rng.Uint64n(800)) // small key space forces duplicates
				// Values are a function of the key: Delete removes an
				// unspecified occurrence among duplicates, so
				// occurrence-specific values would diverge from the
				// oracle without any bug.
				v := k ^ 0x5bd1
				switch {
				case allowDelete && rng.Uint64n(3) == 0 && len(o.ps) > 0:
					got, err := a.Delete(k)
					if err != nil {
						t.Fatal(err)
					}
					want := o.delete(k)
					if got != want {
						t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
					}
				default:
					mustInsert(t, a, k, v)
					o.insert(k, v)
				}
				if a.Size() != len(o.ps) {
					t.Fatalf("op %d: size %d, want %d", i, a.Size(), len(o.ps))
				}
				if i%500 == 499 {
					if err := a.Validate(); err != nil {
						t.Fatalf("op %d: %v", i, err)
					}
					lo := int64(rng.Uint64n(800))
					hi := lo + int64(rng.Uint64n(200))
					gotC, gotS := a.Sum(lo, hi)
					wantC, wantS := o.sumRange(lo, hi)
					if gotC != wantC || gotS != wantS {
						t.Fatalf("op %d: Sum(%d,%d) = (%d,%d), want (%d,%d)", i, lo, hi, gotC, gotS, wantC, wantS)
					}
				}
			}
			// Full-content comparison at the end.
			var got []pair
			a.Scan(func(k, v int64) bool { got = append(got, pair{k, v}); return true })
			if len(got) != len(o.ps) {
				t.Fatalf("scan yielded %d elements, want %d", len(got), len(o.ps))
			}
			for i := range got {
				if got[i].k != o.ps[i].k {
					t.Fatalf("key order mismatch at %d: %d vs %d", i, got[i].k, o.ps[i].k)
				}
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	a := mustNew(t, testConfig())
	if _, ok := a.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := a.Max(); ok {
		t.Fatal("Max on empty")
	}
	for _, k := range []int64{50, 10, 90, 30} {
		mustInsert(t, a, k, k)
	}
	if mn, _ := a.Min(); mn != 10 {
		t.Fatalf("Min = %d", mn)
	}
	if mx, _ := a.Max(); mx != 90 {
		t.Fatalf("Max = %d", mx)
	}
}

func TestExtremeKeys(t *testing.T) {
	for name, cfg := range configMatrix() {
		if cfg.Adaptive == AdaptiveAPMA {
			continue
		}
		t.Run(name, func(t *testing.T) {
			a := mustNew(t, cfg)
			keys := []int64{minInt64, maxInt64, 0, -1, 1, maxInt64 - 1, minInt64 + 1}
			for i, k := range keys {
				mustInsert(t, a, k, int64(i))
			}
			for i, k := range keys {
				v, ok := a.Find(k)
				if !ok || v != int64(i) {
					t.Fatalf("Find(%d) = (%d,%v)", k, v, ok)
				}
			}
			// Push enough extra elements to force rebalances around the
			// sentinel-looking keys.
			for i := 0; i < 300; i++ {
				mustInsert(t, a, int64(i*3-450), 0)
			}
			if err := a.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				if _, ok := a.Find(k); !ok {
					t.Fatalf("lost key %d after rebalances", k)
				}
			}
		})
	}
}

func TestStatsAccounting(t *testing.T) {
	a := mustNew(t, testConfig())
	for i := 0; i < 2000; i++ {
		mustInsert(t, a, int64(i), 0)
	}
	s := a.Stats()
	if s.Inserts != 2000 {
		t.Fatalf("Inserts = %d", s.Inserts)
	}
	if s.Rebalances == 0 || s.RebalancedElements == 0 {
		t.Fatal("rebalances not counted")
	}
	if s.ElementCopies == 0 {
		t.Fatal("copies not counted")
	}
	if s.Grows == 0 {
		t.Fatal("grows not counted")
	}
	// The rewired configuration must actually swap pages.
	if s.PageSwaps == 0 {
		t.Fatal("rewired config performed no page swaps")
	}
}

func TestFootprintGrowsWithData(t *testing.T) {
	a := mustNew(t, testConfig())
	before := a.FootprintBytes()
	for i := 0; i < 5000; i++ {
		mustInsert(t, a, int64(i), 0)
	}
	if after := a.FootprintBytes(); after <= before {
		t.Fatalf("footprint did not grow: %d -> %d", before, after)
	}
}

func TestDensityWithinRootThresholds(t *testing.T) {
	// After any long insert-only run, the global density must sit within
	// the root thresholds (the complexity guarantee's precondition).
	for _, preset := range []struct {
		name string
		th   calibrator.Thresholds
	}{{"ut", calibrator.UpdateOriented()}, {"st", calibrator.ScanOriented()}} {
		t.Run(preset.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.Thresholds = preset.th
			a := mustNew(t, cfg)
			g := workload.NewUniform(3, 0)
			for i := 0; i < 20000; i++ {
				mustInsert(t, a, g.Next(), 0)
			}
			// Between resizes the density may drift above tauH up to
			// roughly the threshold of the level below the root (the
			// walk stops at the first satisfying window), so allow the
			// interpolation step plus rounding.
			d := a.Density()
			if d > preset.th.TauH+0.06 {
				t.Fatalf("density %v exceeds tauH %v by more than the sub-root band", d, preset.th.TauH)
			}
			if d < 0.2 {
				t.Fatalf("density %v suspiciously low", d)
			}
		})
	}
}

func TestLayoutClusteringParity(t *testing.T) {
	// Verify the alternating packing: after a rebalance, even segments
	// pack right, odd segments pack left, forming contiguous pair runs.
	cfg := testConfig()
	cfg.Adaptive = AdaptiveOff
	a := mustNew(t, cfg)
	for i := 0; i < 200; i++ {
		mustInsert(t, a, int64(i), int64(i))
	}
	for s := 0; s < a.NumSegments(); s++ {
		c := int(a.cards[s])
		if c == 0 {
			continue
		}
		lo, hi := a.runBounds(s)
		if s&1 == 0 && hi != a.segSlots {
			t.Fatalf("even segment %d not right-packed: [%d,%d)", s, lo, hi)
		}
		if s&1 == 1 && lo != 0 {
			t.Fatalf("odd segment %d not left-packed: [%d,%d)", s, lo, hi)
		}
	}
}

func TestString(t *testing.T) {
	a := mustNew(t, testConfig())
	if s := a.String(); s == "" {
		t.Fatal("empty String()")
	}
	_ = fmt.Sprintf("%v", a)
}
