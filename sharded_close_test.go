package rma

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseWhileServing pins the Close-vs-in-flight contract the
// serving layer (cmd/rmaserve) relies on: Sharded.Close racing live
// writers, SnapshotScan readers and optimistic point readers must
// neither panic nor corrupt — in-flight operations either complete or
// error cleanly, and the racing goroutines all terminate. Exercised on
// every serving configuration: plain, lock-free reads + background
// rebalancing, and the same with durability (Close tears down the
// checkpoint file handles while reads are still being served from the
// heap-backed pages).
//
// Close's pieces are individually drain-safe — pool.Close drains the
// maintenance queue under shard locks, DisableDeferredRebalancing
// flushes per shard, CloseDurability only closes file handles — but
// nothing pinned their composition against concurrent traffic; this
// test does, under -race in CI's race lane.
func TestCloseWhileServing(t *testing.T) {
	configs := []struct {
		name string
		opts []Option
	}{
		{"plain", nil},
		{"lockfree-async", []Option{WithLockFreeReads(), WithBackgroundRebalancing(2)}},
		{"lockfree-async-durable", nil}, // durability dir added per run
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			opts := cfg.opts
			if cfg.name == "lockfree-async-durable" {
				opts = []Option{WithLockFreeReads(), WithBackgroundRebalancing(2),
					WithDurability(t.TempDir())}
			}
			s, err := NewSharded(4, opts...)
			if err != nil {
				t.Fatal(err)
			}
			const n = 1 << 14
			for i := 0; i < n; i++ {
				if err := s.Insert(int64(i*2), int64(i)); err != nil {
					t.Fatal(err)
				}
			}

			var (
				stop    atomic.Bool
				wg      sync.WaitGroup
				started sync.WaitGroup
			)
			spawn := func(f func()) {
				wg.Add(1)
				started.Add(1)
				go func() {
					defer wg.Done()
					started.Done()
					f()
				}()
			}
			// Writers: inserts and deletes racing the teardown. Errors
			// are legal once Close has begun; panics are not.
			for w := 0; w < 2; w++ {
				base := int64(w+1) * (n * 4)
				spawn(func() {
					for i := int64(0); !stop.Load(); i++ {
						_ = s.Insert(base+i, i)
						if i%3 == 0 {
							_, _ = s.Delete(base + i/2)
						}
					}
				})
			}
			// Snapshot scanners: full-range traversals in flight while
			// Close drains; the yield must keep seeing sane pairs.
			for r := 0; r < 2; r++ {
				spawn(func() {
					for !stop.Load() {
						prev := int64(-1)
						s.SnapshotScan(0, n*2, func(k, v int64) bool {
							if k < prev {
								t.Errorf("scan out of order: %d after %d", k, prev)
								return false
							}
							prev = k
							return !stop.Load()
						})
					}
				})
			}
			// Optimistic point readers (seqlock path when enabled).
			for r := 0; r < 2; r++ {
				seed := int64(r)
				spawn(func() {
					for i := seed; !stop.Load(); i += 7 {
						s.Find(i % (n * 2))
					}
				})
			}

			started.Wait()
			time.Sleep(20 * time.Millisecond) // let traffic reach steady state
			if err := s.Close(); err != nil {
				t.Errorf("Close under traffic: %v", err)
			}
			stop.Store(true)
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("racing goroutines did not terminate after Close")
			}
			// The structure must still be internally consistent: Close
			// stops services, it does not tear down the data.
			if err := s.Validate(); err != nil {
				t.Errorf("Validate after Close: %v", err)
			}
			// Close is idempotent even after the storm.
			if err := s.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}
		})
	}
}
