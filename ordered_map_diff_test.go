package rma

import (
	"fmt"
	"testing"

	"rma/internal/workload"
)

// Randomized differential tests: every backend implementing the widened
// OrderedMap surface is driven through mixed insert/delete workloads and
// compared, query by query, against a sorted-slice reference model —
// navigation (Floor/Ceiling), order statistics (Rank/Select/CountRange)
// and all four lazy iterator forms.

// diffVal derives a key's value so duplicate keys carry identical
// values and any occurrence satisfies a value check.
func diffVal(k int64) int64 { return k*7 + 3 }

// refModel is the reference: a sorted multiset of keys.
type refModel struct{ keys []int64 }

func lbSlice(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func ubSlice(a []int64, x int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (m *refModel) insert(k int64) {
	i := ubSlice(m.keys, k)
	m.keys = append(m.keys, 0)
	copy(m.keys[i+1:], m.keys[i:])
	m.keys[i] = k
}

func (m *refModel) delete(k int64) bool {
	i := lbSlice(m.keys, k)
	if i >= len(m.keys) || m.keys[i] != k {
		return false
	}
	m.keys = append(m.keys[:i], m.keys[i+1:]...)
	return true
}

// slice returns the model keys in [lo, hi].
func (m *refModel) slice(lo, hi int64) []int64 {
	if lo > hi {
		return nil
	}
	return m.keys[lbSlice(m.keys, lo):ubSlice(m.keys, hi)]
}

// checkQueries verifies the whole query surface of om against the model
// at a set of probe keys.
func checkQueries(t *testing.T, om OrderedMap, m *refModel, probes []int64) {
	t.Helper()
	n := len(m.keys)
	if got := om.Size(); got != n {
		t.Fatalf("Size = %d, want %d", got, n)
	}

	// Min / Max.
	mn, okMn := om.Min()
	mx, okMx := om.Max()
	if okMn != (n > 0) || okMx != (n > 0) {
		t.Fatalf("Min/Max ok = %v/%v with n=%d", okMn, okMx, n)
	}
	if n > 0 && (mn != m.keys[0] || mx != m.keys[n-1]) {
		t.Fatalf("Min/Max = %d/%d, want %d/%d", mn, mx, m.keys[0], m.keys[n-1])
	}

	for _, x := range probes {
		// Find.
		wantIdx := lbSlice(m.keys, x)
		wantFound := wantIdx < n && m.keys[wantIdx] == x
		v, found := om.Find(x)
		if found != wantFound || (found && v != diffVal(x)) {
			t.Fatalf("Find(%d) = (%d,%v), want found=%v", x, v, found, wantFound)
		}

		// Floor.
		fk, fv, fok := om.Floor(x)
		if i := ubSlice(m.keys, x) - 1; i >= 0 {
			if !fok || fk != m.keys[i] || fv != diffVal(m.keys[i]) {
				t.Fatalf("Floor(%d) = (%d,%d,%v), want %d", x, fk, fv, fok, m.keys[i])
			}
		} else if fok {
			t.Fatalf("Floor(%d) = (%d,%d,true), want none", x, fk, fv)
		}

		// Ceiling.
		ck, cv, cok := om.Ceiling(x)
		if i := lbSlice(m.keys, x); i < n {
			if !cok || ck != m.keys[i] || cv != diffVal(m.keys[i]) {
				t.Fatalf("Ceiling(%d) = (%d,%d,%v), want %d", x, ck, cv, cok, m.keys[i])
			}
		} else if cok {
			t.Fatalf("Ceiling(%d) = (%d,%d,true), want none", x, ck, cv)
		}

		// Rank.
		if got, want := om.Rank(x), lbSlice(m.keys, x); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", x, got, want)
		}
	}

	// GetBatch must answer the probe set exactly like per-probe Find
	// (probes arrive unsorted, with duplicates across iterations).
	batch := om.GetBatch(probes, nil)
	if len(batch) != len(probes) {
		t.Fatalf("GetBatch returned %d results for %d probes", len(batch), len(probes))
	}
	for i, x := range probes {
		wantIdx := lbSlice(m.keys, x)
		wantFound := wantIdx < n && m.keys[wantIdx] == x
		if batch[i].OK != wantFound || (wantFound && batch[i].Val != diffVal(x)) {
			t.Fatalf("GetBatch[%d] key %d = (%d,%v), want found=%v",
				i, x, batch[i].Val, batch[i].OK, wantFound)
		}
	}

	// Select over the full index range plus out-of-range probes.
	for _, i := range []int{-1, 0, n / 3, n / 2, n - 1, n} {
		k, v, ok := om.Select(i)
		if i < 0 || i >= n {
			if ok {
				t.Fatalf("Select(%d) ok with n=%d", i, n)
			}
			continue
		}
		if !ok || k != m.keys[i] || v != diffVal(m.keys[i]) {
			t.Fatalf("Select(%d) = (%d,%d,%v), want %d", i, k, v, ok, m.keys[i])
		}
	}

	// CountRange and the iterator forms over probe-derived ranges.
	for i := 0; i+1 < len(probes); i += 2 {
		lo, hi := probes[i], probes[i+1]
		if lo > hi {
			lo, hi = hi, lo
		}
		want := m.slice(lo, hi)
		if got := om.CountRange(lo, hi); got != len(want) {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, len(want))
		}
		if got := om.CountRange(hi, lo); lo != hi && got != 0 {
			t.Fatalf("CountRange(%d,%d) = %d, want 0 (inverted)", hi, lo, got)
		}
		checkIterSeq(t, fmt.Sprintf("Range(%d,%d)", lo, hi), om.Range(lo, hi), want, false)
		checkIterSeq(t, fmt.Sprintf("Descend(%d)", hi), om.Descend(hi), m.slice(minInt64, hi), true)
		checkIterSeq(t, fmt.Sprintf("Ascend(%d)", lo), om.Ascend(lo), m.slice(lo, maxInt64), false)
	}
	checkIterSeq(t, "All", om.All(), m.keys, false)

	// Early termination: breaking out of a lazy iterator mid-range.
	stop := len(m.keys) / 2
	seen := 0
	for k, v := range om.All() {
		if k != m.keys[seen] || v != diffVal(k) {
			t.Fatalf("All[%d] = (%d,%d), want key %d", seen, k, v, m.keys[seen])
		}
		seen++
		if seen == stop {
			break
		}
	}
	if stop > 0 && seen != stop {
		t.Fatalf("early-terminated All visited %d, want %d", seen, stop)
	}
}

// checkIterSeq drains a sequence and compares it against want (which is
// ascending; reversed=true checks descending order).
func checkIterSeq(t *testing.T, name string, seq func(func(int64, int64) bool), want []int64, reversed bool) {
	t.Helper()
	i := 0
	for k, v := range seq {
		if i >= len(want) {
			t.Fatalf("%s yielded more than %d elements", name, len(want))
		}
		wk := want[i]
		if reversed {
			wk = want[len(want)-1-i]
		}
		if k != wk || v != diffVal(wk) {
			t.Fatalf("%s[%d] = (%d,%d), want key %d", name, i, k, v, wk)
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("%s yielded %d elements, want %d", name, i, len(want))
	}
}

// diffBackends returns the updatable backends under differential test,
// including RMA configurations that exercise resizes and both threshold
// presets at small segment sizes.
func diffBackends(t *testing.T) map[string]UpdatableMap {
	t.Helper()
	mk := func(opts ...Option) *Array {
		a, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	mkSharded := func(shards int, sample []int64) *Sharded {
		s, err := NewShardedFromSample(shards, sample,
			WithSegmentCapacity(16), WithPageCapacity(64))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Boundary sample spanning the differential key range, so the
	// sharded backends split the test traffic across all shards.
	sample := make([]int64, 64)
	for i := range sample {
		sample[i] = int64(i) * 4000 / int64(len(sample))
	}
	return map[string]UpdatableMap{
		"rma-default":      mk(WithSegmentCapacity(16), WithPageCapacity(64)),
		"rma-scanoriented": mk(WithSegmentCapacity(8), WithPageCapacity(32), WithScanOrientedThresholds()),
		"rma-norewire": mk(WithSegmentCapacity(16), WithPageCapacity(64),
			WithMemoryRewiring(false), WithAdaptiveRebalancing(false)),
		"abtree":     NewABTree(16),
		"art":        NewARTTree(16),
		"sharded-5":  mkSharded(5, sample),
		"sharded-1":  mkSharded(1, nil),
		"sharded-64": mkSharded(64, sample),
	}
}

func TestOrderedMapDifferential(t *testing.T) {
	const (
		keyRange = 4000 // small enough to produce duplicate keys
		rounds   = 12
		opsPer   = 400
	)
	for name, om := range diffBackends(t) {
		t.Run(name, func(t *testing.T) {
			rng := workload.NewRNG(77)
			m := &refModel{}
			probesAt := func() []int64 {
				ps := []int64{minInt64, maxInt64, 0, -1, keyRange, keyRange / 2}
				for i := 0; i < 24; i++ {
					ps = append(ps, int64(rng.Uint64n(keyRange))-keyRange/8)
				}
				return ps
			}
			for round := 0; round < rounds; round++ {
				for op := 0; op < opsPer; op++ {
					k := int64(rng.Uint64n(keyRange))
					// Phase-dependent mix: early rounds grow, later
					// rounds shrink, middle rounds churn.
					del := false
					switch {
					case round < 4:
						del = rng.Uint64n(100) < 20
					case round < 8:
						del = rng.Uint64n(100) < 50
					default:
						del = rng.Uint64n(100) < 80
					}
					if del {
						got, err := om.DeleteKey(k)
						if err != nil {
							t.Fatal(err)
						}
						if want := m.delete(k); got != want {
							t.Fatalf("DeleteKey(%d) = %v, want %v", k, got, want)
						}
					} else {
						if err := om.InsertKV(k, diffVal(k)); err != nil {
							t.Fatal(err)
						}
						m.insert(k)
					}
				}
				checkQueries(t, om, m, probesAt())
				if a, ok := om.(*Array); ok {
					if err := a.Validate(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
				if s, ok := om.(*Sharded); ok {
					if err := s.Validate(); err != nil {
						t.Fatalf("round %d: %v", round, err)
					}
				}
			}
		})
	}
}

// TestOrderedMapDifferentialStatic drives the immutable backends (Dense,
// StaticIndexed) built from snapshots of the same reference model.
func TestOrderedMapDifferentialStatic(t *testing.T) {
	rng := workload.NewRNG(99)
	for _, n := range []int{0, 1, 5, 127, 128, 129, 1000, 5000} {
		m := &refModel{}
		for i := 0; i < n; i++ {
			m.insert(int64(rng.Uint64n(2000)))
		}
		vals := make([]int64, n)
		for i, k := range m.keys {
			vals[i] = diffVal(k)
		}
		probes := []int64{minInt64, maxInt64, -5, 0, 999, 2000}
		for i := 0; i < 20; i++ {
			probes = append(probes, int64(rng.Uint64n(2200))-100)
		}
		backends := map[string]OrderedMap{
			"dense":              NewDense(m.keys, vals),
			"staticindexed-b128": NewStaticIndexed(m.keys, vals, 128),
			"staticindexed-b4":   NewStaticIndexed(m.keys, vals, 4),
		}
		for name, om := range backends {
			t.Run(fmt.Sprintf("%s/n%d", name, n), func(t *testing.T) {
				checkQueries(t, om, m, probes)
			})
		}
	}
}

// TestCursorSeekDifferential checks the cursor's SeekGE repositioning
// and Remaining bookkeeping against the model.
func TestCursorSeekDifferential(t *testing.T) {
	a, err := New(WithSegmentCapacity(16), WithPageCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	rng := workload.NewRNG(5)
	m := &refModel{}
	for i := 0; i < 3000; i++ {
		k := int64(rng.Uint64n(10000))
		if err := a.Insert(k, diffVal(k)); err != nil {
			t.Fatal(err)
		}
		m.insert(k)
	}
	c := a.NewCursor(minInt64, maxInt64)
	for trial := 0; trial < 50; trial++ {
		x := int64(rng.Uint64n(11000)) - 500
		c.SeekGE(x)
		want := m.keys[lbSlice(m.keys, x):]
		if got := c.Remaining(); got != len(want) {
			t.Fatalf("Remaining after SeekGE(%d) = %d, want %d", x, got, len(want))
		}
		for j := 0; j < 5 && j < len(want); j++ {
			if !c.Next() {
				t.Fatalf("Next exhausted after SeekGE(%d) at step %d", x, j)
			}
			if c.Key() != want[j] || c.Value() != diffVal(want[j]) {
				t.Fatalf("after SeekGE(%d) step %d: (%d,%d), want key %d",
					x, j, c.Key(), c.Value(), want[j])
			}
		}
	}
	// A bounded cursor's Remaining never counts past its upper bound.
	c = a.NewCursor(1000, 2000)
	if got, want := c.Remaining(), len(m.slice(1000, 2000)); got != want {
		t.Fatalf("bounded Remaining = %d, want %d", got, want)
	}
	// Seeking past the bound leaves nothing remaining.
	c.SeekGE(5000)
	if got := c.Remaining(); got != 0 {
		t.Fatalf("Remaining after SeekGE past bound = %d, want 0", got)
	}
	if c.Next() {
		t.Fatal("Next after SeekGE past bound")
	}
	// An inverted range is empty.
	c = a.NewCursor(2000, 1000)
	if c.Remaining() != 0 || c.Next() {
		t.Fatal("inverted range not empty")
	}
}
