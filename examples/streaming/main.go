// Streaming: the bulk-loading scenario of Section III — a sliding window
// over a temporal stream (the paper cites tweet streams and particle
// simulations). The store holds the most recent W events; every tick, a
// batch of new events arrives and the expired ones leave. Cardinality
// stays constant, so every tick is one BulkUpdate: deletions applied
// first with rebalances disabled, then the bottom-up batch insert that
// rebalances each touched window at most once.
package main

import (
	"fmt"
	"log"
	"time"

	"rma"
	"rma/internal/workload"
)

const (
	window    = 500_000 // events kept
	batchSize = 10_000  // events per tick
	ticks     = 60
)

func main() {
	a, err := rma.New(rma.WithScanOrientedThresholds()) // dense array, fast scans
	if err != nil {
		log.Fatal(err)
	}

	// Event keys: millisecond timestamps with per-batch jitter.
	rng := workload.NewRNG(99)
	now := int64(1_700_000_000_000)
	var pending [][]int64 // batches in arrival order, for expiry

	mkBatch := func() []int64 {
		keys := make([]int64, batchSize)
		for i := range keys {
			now += int64(rng.Uint64n(3))
			keys[i] = now
		}
		return keys
	}

	// Fill the window.
	for len(pending)*batchSize < window {
		keys := mkBatch()
		if err := a.BulkLoad(keys, keys); err != nil {
			log.Fatal(err)
		}
		pending = append(pending, keys)
	}
	fmt.Printf("window filled: %d events, density %.2f\n", a.Size(), a.Density())

	var loadTime, queryTime time.Duration
	var totalScanned int64
	for tick := 0; tick < ticks; tick++ {
		newKeys := mkBatch()
		expired := pending[0]
		pending = append(pending[1:], newKeys)

		t0 := time.Now()
		if err := a.BulkUpdate(newKeys, newKeys, expired); err != nil {
			log.Fatal(err)
		}
		loadTime += time.Since(t0)

		// Continuous query: events in the most recent 10% of the window.
		t0 = time.Now()
		hi := now
		lo := hi - (now-pending[0][0])/10
		c, _ := a.Sum(lo, hi)
		totalScanned += int64(c)
		queryTime += time.Since(t0)

		// The pure count needs no scan at all: CountRange answers from
		// the maintained per-segment cardinality prefix sums in O(log n).
		if cr := a.CountRange(lo, hi); cr != c {
			log.Fatalf("CountRange(%d,%d) = %d, scan counted %d", lo, hi, cr, c)
		}
	}

	fmt.Printf("ticks: %d x (%d in + %d out)\n", ticks, batchSize, batchSize)
	fmt.Printf("bulk updates: %6.2f Mops/s\n",
		float64(2*batchSize*ticks)/loadTime.Seconds()/1e6)
	fmt.Printf("window queries: %6.2f Melts/s (scanned %d)\n",
		float64(totalScanned)/queryTime.Seconds()/1e6, totalScanned)
	fmt.Printf("final size %d (constant), density %.2f\n", a.Size(), a.Density())

	s := a.Stats()
	fmt.Printf("bulk loads=%d rebalances=%d pageswaps=%d resizes=%d\n",
		s.BulkLoads, s.Rebalances, s.PageSwaps, s.Resizes)
}
