// Streaming: the bulk-loading scenario of Section III — a sliding window
// over a temporal stream (the paper cites tweet streams and particle
// simulations). The store holds the most recent W events; every tick, a
// batch of new events arrives and the expired ones leave. Cardinality
// stays constant, so every tick is one BulkUpdate: deletions applied
// first with rebalances disabled, then the bottom-up batch insert that
// rebalances each touched window at most once.
package main

import (
	"fmt"
	"log"
	"time"

	"rma"
	"rma/internal/workload"
)

const (
	window    = 500_000 // events kept
	batchSize = 10_000  // events per tick
	ticks     = 60
)

func main() {
	a, err := rma.New(rma.WithScanOrientedThresholds()) // dense array, fast scans
	if err != nil {
		log.Fatal(err)
	}

	// Event keys: millisecond timestamps with per-batch jitter.
	rng := workload.NewRNG(99)
	now := int64(1_700_000_000_000)
	var pending [][]int64 // batches in arrival order, for expiry

	mkBatch := func() []int64 {
		keys := make([]int64, batchSize)
		for i := range keys {
			now += int64(rng.Uint64n(3))
			keys[i] = now
		}
		return keys
	}

	// Fill the window.
	for len(pending)*batchSize < window {
		keys := mkBatch()
		if err := a.BulkLoad(keys, keys); err != nil {
			log.Fatal(err)
		}
		pending = append(pending, keys)
	}
	fmt.Printf("window filled: %d events, density %.2f\n", a.Size(), a.Density())

	var loadTime, queryTime time.Duration
	var totalScanned int64
	for tick := 0; tick < ticks; tick++ {
		newKeys := mkBatch()
		expired := pending[0]
		pending = append(pending[1:], newKeys)

		t0 := time.Now()
		if err := a.BulkUpdate(newKeys, newKeys, expired); err != nil {
			log.Fatal(err)
		}
		loadTime += time.Since(t0)

		// Continuous query: events in the most recent 10% of the window.
		t0 = time.Now()
		hi := now
		lo := hi - (now-pending[0][0])/10
		c, _ := a.Sum(lo, hi)
		totalScanned += int64(c)
		queryTime += time.Since(t0)

		// The pure count needs no scan at all: CountRange answers from
		// the maintained per-segment cardinality prefix sums in O(log n).
		if cr := a.CountRange(lo, hi); cr != c {
			log.Fatalf("CountRange(%d,%d) = %d, scan counted %d", lo, hi, cr, c)
		}
	}

	fmt.Printf("ticks: %d x (%d in + %d out)\n", ticks, batchSize, batchSize)
	fmt.Printf("bulk updates: %6.2f Mops/s\n",
		float64(2*batchSize*ticks)/loadTime.Seconds()/1e6)
	fmt.Printf("window queries: %6.2f Melts/s (scanned %d)\n",
		float64(totalScanned)/queryTime.Seconds()/1e6, totalScanned)
	fmt.Printf("final size %d (constant), density %.2f\n", a.Size(), a.Density())

	s := a.Stats()
	fmt.Printf("bulk loads=%d rebalances=%d pageswaps=%d resizes=%d\n",
		s.BulkLoads, s.Rebalances, s.PageSwaps, s.Resizes)

	runSharded()
}

// runSharded replays the same sliding window through the concurrent
// serving layer: every tick is one ApplyBatch mixing the expired
// deletions with the new arrivals, grouped per shard so each shard is
// locked once and the insert runs ride the per-shard bulk path. Shard
// boundaries are fixed at construction, so for a time-ordered stream
// they must be provisioned over the whole lifetime the window will
// slide across (a key-range-sharded store cannot re-shard on the fly —
// see CONCURRENCY.md).
func runSharded() {
	rng := workload.NewRNG(99)
	now := int64(1_700_000_000_000)
	streamSpan := int64(window + batchSize*ticks) // keys advance ~1/event
	sample := make([]int64, 1024)
	for i := range sample {
		sample[i] = now + int64(i)*streamSpan/int64(len(sample))
	}
	sh, err := rma.NewShardedFromSample(4, sample, rma.WithScanOrientedThresholds())
	if err != nil {
		log.Fatal(err)
	}

	var pending [][]int64
	mkBatch := func() []int64 {
		keys := make([]int64, batchSize)
		for i := range keys {
			now += int64(rng.Uint64n(3))
			keys[i] = now
		}
		return keys
	}
	for len(pending)*batchSize < window {
		keys := mkBatch()
		ops := make([]rma.BatchOp, len(keys))
		for i, k := range keys {
			ops[i] = rma.BatchOp{Kind: rma.OpPut, Key: k, Val: k}
		}
		if _, err := sh.ApplyBatch(ops); err != nil {
			log.Fatal(err)
		}
		pending = append(pending, keys)
	}

	var loadTime time.Duration
	for tick := 0; tick < ticks; tick++ {
		newKeys := mkBatch()
		expired := pending[0]
		pending = append(pending[1:], newKeys)

		ops := make([]rma.BatchOp, 0, len(expired)+len(newKeys))
		for _, k := range expired {
			ops = append(ops, rma.BatchOp{Kind: rma.OpDelete, Key: k})
		}
		for _, k := range newKeys {
			ops = append(ops, rma.BatchOp{Kind: rma.OpPut, Key: k, Val: k})
		}
		t0 := time.Now()
		deleted, err := sh.ApplyBatch(ops)
		if err != nil {
			log.Fatal(err)
		}
		loadTime += time.Since(t0)
		if deleted != len(expired) {
			log.Fatalf("tick %d: ApplyBatch deleted %d of %d expired", tick, deleted, len(expired))
		}
	}
	fmt.Printf("sharded(4) batched ticks: %6.2f Mops/s (final size %d, shard sizes %v)\n",
		float64(2*batchSize*ticks)/loadTime.Seconds()/1e6, sh.Size(), sh.ShardSizes())
}
