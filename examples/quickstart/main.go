// Quickstart: the basic RMA lifecycle — create, insert, look up, scan,
// aggregate, delete — plus a peek at the internal statistics.
package main

import (
	"fmt"
	"log"
	"sync"

	"rma"
)

func main() {
	// An RMA with the paper's defaults: B=128 clustered segments, static
	// index, memory rewiring, adaptive rebalancing, update-oriented
	// density thresholds.
	a, err := rma.New()
	if err != nil {
		log.Fatal(err)
	}

	// Point updates keep the array sorted and physically sequential.
	for i := int64(0); i < 100_000; i++ {
		if err := a.Insert(i*7%100_000, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("size=%d capacity=%d density=%.2f\n", a.Size(), a.Capacity(), a.Density())

	// Point lookup: index descent + one binary search in a segment.
	if v, ok := a.Find(777); ok {
		fmt.Printf("find(777) = %d\n", v)
	}

	// Range scan: one tight loop per segment pair, no gap checks.
	count, sum := a.Sum(1000, 1999)
	fmt.Printf("sum over keys [1000,1999]: count=%d sum=%d\n", count, sum)

	// Callback iteration with early termination.
	printed := 0
	a.ScanRange(0, 50, func(k, v int64) bool {
		printed++
		return printed < 5
	})
	fmt.Printf("visited %d elements of [0,50]\n", printed)

	// Lazy iterators: range-over-func traversal with O(1) state — no
	// part of the range is materialized, breaking out is free.
	visited := 0
	for range a.Range(1000, 1999) {
		visited++
	}
	var newest []int64
	for k := range a.Descend(99_999) { // descending from the top
		newest = append(newest, k)
		if len(newest) == 3 {
			break
		}
	}
	fmt.Printf("iterated %d elements of [1000,1999]; newest three: %v\n", visited, newest)

	// Navigation: nearest stored neighbours of a probe key.
	fl, _, _ := a.Floor(54_321)
	ce, _, _ := a.Ceiling(54_321)
	fmt.Printf("floor/ceiling of 54321: %d / %d\n", fl, ce)

	// Order statistics in O(log n): the array maintains per-segment
	// cardinality prefix sums through every rebalance and resize.
	median, _, _ := a.Select(a.Size() / 2)
	fmt.Printf("rank(50000)=%d  median=%d  |[25000,75000]|=%d\n",
		a.Rank(50_000), median, a.CountRange(25_000, 75_000))

	// Deletes shrink the array when it gets too sparse.
	for i := int64(0); i < 50_000; i++ {
		if _, err := a.Delete(i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after deletes: size=%d capacity=%d\n", a.Size(), a.Capacity())

	// The stats expose what the structure did under the hood.
	s := a.Stats()
	fmt.Printf("rebalances=%d (adaptive %d) resizes=%d pageswaps=%d copies=%d\n",
		s.Rebalances, s.AdaptiveRebalances, s.Resizes, s.PageSwaps, s.ElementCopies)

	// Concurrent serving: shard the key space and let a background
	// worker pool execute rebalances off the write path. Writers do
	// only a minimal local spread on overflow; iterators and batches
	// still observe fully rebalanced shards. Close drains the deferred
	// work and stops the pool.
	sh, err := rma.NewSharded(8, rma.WithBackgroundRebalancing(2))
	if err != nil {
		log.Fatal(err)
	}
	defer sh.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); i < 25_000; i++ {
				if err := sh.Insert(i*4+int64(w), i); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	ss := sh.Stats()
	fmt.Printf("sharded: size=%d deferred=%d background-runs=%d pending=%d\n",
		sh.Size(), ss.DeferredWindows, ss.MaintenanceRuns, sh.PendingWindows())
}
