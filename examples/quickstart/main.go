// Quickstart: the basic RMA lifecycle — create, insert, look up, scan,
// aggregate, delete — plus a peek at the internal statistics.
package main

import (
	"fmt"
	"log"

	"rma"
)

func main() {
	// An RMA with the paper's defaults: B=128 clustered segments, static
	// index, memory rewiring, adaptive rebalancing, update-oriented
	// density thresholds.
	a, err := rma.New()
	if err != nil {
		log.Fatal(err)
	}

	// Point updates keep the array sorted and physically sequential.
	for i := int64(0); i < 100_000; i++ {
		if err := a.Insert(i*7%100_000, i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("size=%d capacity=%d density=%.2f\n", a.Size(), a.Capacity(), a.Density())

	// Point lookup: index descent + one binary search in a segment.
	if v, ok := a.Find(777); ok {
		fmt.Printf("find(777) = %d\n", v)
	}

	// Range scan: one tight loop per segment pair, no gap checks.
	count, sum := a.Sum(1000, 1999)
	fmt.Printf("sum over keys [1000,1999]: count=%d sum=%d\n", count, sum)

	// Callback iteration with early termination.
	printed := 0
	a.ScanRange(0, 50, func(k, v int64) bool {
		printed++
		return printed < 5
	})
	fmt.Printf("visited %d elements of [0,50]\n", printed)

	// Deletes shrink the array when it gets too sparse.
	for i := int64(0); i < 50_000; i++ {
		if _, err := a.Delete(i); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after deletes: size=%d capacity=%d\n", a.Size(), a.Capacity())

	// The stats expose what the structure did under the hood.
	s := a.Stats()
	fmt.Printf("rebalances=%d (adaptive %d) resizes=%d pageswaps=%d copies=%d\n",
		s.Rebalances, s.AdaptiveRebalances, s.Resizes, s.PageSwaps, s.ElementCopies)
}
