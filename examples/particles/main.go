// Particles: the Durand et al. (VRIPHYS 2012) scenario the paper cites —
// a particle simulation keeps moving particles sorted by their Morton
// (Z-order) code so neighbourhood queries become range scans. Each
// simulation step perturbs positions, which changes Z-codes: the store
// sustains a delete+insert batch per step while neighbourhood scans run
// between steps.
package main

import (
	"fmt"
	"log"
	"time"

	"rma"
	"rma/internal/workload"
)

const (
	particles = 200_000
	steps     = 30
	moving    = 20_000 // particles whose cell changes per step
)

// morton interleaves the bits of a 2D grid position into a Z-order code.
func morton(x, y uint32) int64 {
	return int64(spread(x) | spread(y)<<1)
}

// spread inserts a zero bit between each bit of v (lower 31 bits).
func spread(v uint32) uint64 {
	x := uint64(v) & 0x7fffffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

func main() {
	a, err := rma.New(rma.WithSegmentCapacity(256)) // scans dominate
	if err != nil {
		log.Fatal(err)
	}

	rng := workload.NewRNG(2024)
	const grid = 1 << 12
	xs := make([]uint32, particles)
	ys := make([]uint32, particles)
	for i := range xs {
		xs[i] = uint32(rng.Uint64n(grid))
		ys[i] = uint32(rng.Uint64n(grid))
		if err := a.Insert(morton(xs[i], ys[i]), int64(i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("loaded %d particles on a %dx%d grid (size=%d)\n", particles, grid, grid, a.Size())

	var moveTime, scanTime time.Duration
	var neighbours int64
	perm := make([]int, particles)
	for step := 0; step < steps; step++ {
		// Move a subset of *distinct* particles one cell: delete the old
		// code, insert the new one. (Moving the same particle twice in
		// one batch would delete its intermediate code before the batch
		// inserts it: batches apply deletions first.)
		t0 := time.Now()
		rng.Perm(perm)
		var dels, ins []int64
		for _, i := range perm[:moving] {
			dels = append(dels, morton(xs[i], ys[i]))
			xs[i] = (xs[i] + uint32(rng.Uint64n(3)) - 1) % grid
			ys[i] = (ys[i] + uint32(rng.Uint64n(3)) - 1) % grid
			ins = append(ins, morton(xs[i], ys[i]))
		}
		vals := make([]int64, len(ins))
		if err := a.BulkUpdate(ins, vals, dels); err != nil {
			log.Fatal(err)
		}
		moveTime += time.Since(t0)

		// Neighbourhood queries: particles within a Z-code block are
		// spatially close; enumerate 64 random blocks through the lazy
		// range iterator — a real simulation consumes the particle ids
		// (the values), so this is pull-style iteration, not aggregation.
		t0 = time.Now()
		for q := 0; q < 64; q++ {
			x := uint32(rng.Uint64n(grid))
			y := uint32(rng.Uint64n(grid))
			base := morton(x&^63, y&^63) // align to a 64x64 Z-block
			for _, id := range a.Range(base, base+64*64-1) {
				_ = id // a simulation would gather the neighbour here
				neighbours++
			}
		}
		scanTime += time.Since(t0)
	}

	fmt.Printf("steps: %d x %d moved particles\n", steps, moving)
	fmt.Printf("batch moves: %6.2f Mops/s\n",
		float64(2*moving*steps)/moveTime.Seconds()/1e6)
	fmt.Printf("z-block scans: %6.2f Melts/s (%d neighbours visited)\n",
		float64(neighbours)/scanTime.Seconds()/1e6, neighbours)
	fmt.Printf("final size %d, density %.2f\n", a.Size(), a.Density())
}
