// HTAP: the workload that motivates the paper. A "orders" column keyed
// by timestamp sustains a stream of inserts and deletes (the
// transactional side) while analytic queries continuously run range
// aggregations over recent windows (the analytical side).
//
// The example runs the identical workload over every updatable backend
// — the RMA, the TPMA baseline, a tuned (a,b)-tree and the ART-indexed
// tree — purely through the rma.UpdatableMap interface, and reports both
// sides' throughput: the trees are somewhat faster to update, the RMA is
// much faster to scan — the trade the paper quantifies. Each analytic
// burst also demonstrates the navigation surface: CountRange sizes the
// window before scanning it, Floor finds the latest order at or before a
// cutoff.
package main

import (
	"fmt"
	"log"
	"time"

	"rma"
	"rma/internal/workload"
)

const (
	preload    = 400_000 // orders already in the system
	txRounds   = 50      // transactional bursts
	txPerRound = 2_000   // inserts + deletes per burst
	queries    = 200     // analytic range queries per burst
)

func run(name string, s rma.UpdatableMap) {
	// Preload history: timestamps with some jitter, amount as value.
	ts := workload.NewSequential(1_000_000, 3)
	rng := workload.NewRNG(7)
	var minKey, maxKey int64 = 1 << 62, 0
	for i := 0; i < preload; i++ {
		k := ts.Next() + int64(rng.Uint64n(5))
		if k < minKey {
			minKey = k
		}
		if k > maxKey {
			maxKey = k
		}
		if err := s.InsertKV(k, int64(rng.Uint64n(10_000))); err != nil {
			log.Fatal(err)
		}
	}

	var txTime, scanTime time.Duration
	var scanned int64
	for round := 0; round < txRounds; round++ {
		// Transactional burst: new orders arrive, old ones are archived.
		t0 := time.Now()
		for i := 0; i < txPerRound; i++ {
			k := ts.Next() + int64(rng.Uint64n(5))
			if k > maxKey {
				maxKey = k
			}
			if err := s.InsertKV(k, int64(rng.Uint64n(10_000))); err != nil {
				log.Fatal(err)
			}
			// Archive an old order.
			old := minKey + int64(rng.Uint64n(uint64(maxKey-minKey)))
			if _, err := s.DeleteKey(old); err != nil {
				log.Fatal(err)
			}
		}
		txTime += time.Since(t0)

		// Analytical burst: revenue over random recent windows. The
		// window is sized with CountRange (no scan) before the Sum
		// aggregation; every tenth query walks the window lazily instead,
		// the iterator form of the same scan.
		t0 = time.Now()
		span := (maxKey - minKey) / 20 // 5% windows
		for q := 0; q < queries; q++ {
			lo := minKey + int64(rng.Uint64n(uint64(maxKey-minKey-span)))
			if q%10 == 9 {
				for _, v := range s.Range(lo, lo+span) {
					scanned++
					_ = v
				}
				continue
			}
			c, _ := s.Sum(lo, lo+span)
			scanned += int64(c)
		}
		// The freshest order at or before the current watermark.
		if k, _, ok := s.Floor(maxKey); ok && k > maxKey {
			log.Fatalf("Floor returned %d > watermark %d", k, maxKey)
		}
		scanTime += time.Since(t0)
	}

	totalTx := float64(txRounds*txPerRound*2) / txTime.Seconds() / 1e6
	totalScan := float64(scanned) / scanTime.Seconds() / 1e6
	fmt.Printf("%-10s  updates %6.2f Mops/s   analytics %8.2f Melts/s   (final size %d)\n",
		name, totalTx, totalScan, s.Size())
}

func main() {
	fmt.Println("HTAP mix: 50 bursts of 2k inserts + 2k deletes, 200 range queries each")
	a, err := rma.New(rma.WithSegmentCapacity(128))
	if err != nil {
		log.Fatal(err)
	}
	tpma, err := rma.NewTPMA()
	if err != nil {
		log.Fatal(err)
	}
	backends := []struct {
		name string
		s    rma.UpdatableMap
	}{
		{"rma", a},
		{"tpma", tpma},
		{"abtree", rma.NewABTree(128)},
		{"art", rma.NewARTTree(128)},
	}
	for _, b := range backends {
		run(b.name, b.s)
	}
}
