// HTAP: the workload that motivates the paper. A "orders" column keyed
// by timestamp sustains a stream of inserts and deletes (the
// transactional side) while analytic queries continuously run range
// aggregations over recent windows (the analytical side).
//
// The example runs the identical workload over every updatable backend
// — the RMA, the TPMA baseline, a tuned (a,b)-tree and the ART-indexed
// tree — purely through the rma.UpdatableMap interface, and reports both
// sides' throughput: the trees are somewhat faster to update, the RMA is
// much faster to scan — the trade the paper quantifies. Each analytic
// burst also demonstrates the navigation surface: CountRange sizes the
// window before scanning it, Floor finds the latest order at or before a
// cutoff.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"rma"
	"rma/internal/workload"
)

const (
	preload    = 400_000 // orders already in the system
	txRounds   = 50      // transactional bursts
	txPerRound = 2_000   // inserts + deletes per burst
	queries    = 200     // analytic range queries per burst
)

func run(name string, s rma.UpdatableMap) {
	// Preload history: timestamps with some jitter, amount as value.
	ts := workload.NewSequential(1_000_000, 3)
	rng := workload.NewRNG(7)
	var minKey, maxKey int64 = 1 << 62, 0
	for i := 0; i < preload; i++ {
		k := ts.Next() + int64(rng.Uint64n(5))
		if k < minKey {
			minKey = k
		}
		if k > maxKey {
			maxKey = k
		}
		if err := s.InsertKV(k, int64(rng.Uint64n(10_000))); err != nil {
			log.Fatal(err)
		}
	}

	var txTime, scanTime time.Duration
	var scanned int64
	for round := 0; round < txRounds; round++ {
		// Transactional burst: new orders arrive, old ones are archived.
		t0 := time.Now()
		for i := 0; i < txPerRound; i++ {
			k := ts.Next() + int64(rng.Uint64n(5))
			if k > maxKey {
				maxKey = k
			}
			if err := s.InsertKV(k, int64(rng.Uint64n(10_000))); err != nil {
				log.Fatal(err)
			}
			// Archive an old order.
			old := minKey + int64(rng.Uint64n(uint64(maxKey-minKey)))
			if _, err := s.DeleteKey(old); err != nil {
				log.Fatal(err)
			}
		}
		txTime += time.Since(t0)

		// Analytical burst: revenue over random recent windows. The
		// window is sized with CountRange (no scan) before the Sum
		// aggregation; every tenth query walks the window lazily instead,
		// the iterator form of the same scan.
		t0 = time.Now()
		span := (maxKey - minKey) / 20 // 5% windows
		for q := 0; q < queries; q++ {
			lo := minKey + int64(rng.Uint64n(uint64(maxKey-minKey-span)))
			if q%10 == 9 {
				for _, v := range s.Range(lo, lo+span) {
					scanned++
					_ = v
				}
				continue
			}
			c, _ := s.Sum(lo, lo+span)
			scanned += int64(c)
		}
		// The freshest order at or before the current watermark.
		if k, _, ok := s.Floor(maxKey); ok && k > maxKey {
			log.Fatalf("Floor returned %d > watermark %d", k, maxKey)
		}
		scanTime += time.Since(t0)
	}

	totalTx := float64(txRounds*txPerRound*2) / txTime.Seconds() / 1e6
	totalScan := float64(scanned) / scanTime.Seconds() / 1e6
	fmt.Printf("%-10s  updates %6.2f Mops/s   analytics %8.2f Melts/s   (final size %d)\n",
		name, totalTx, totalScan, s.Size())
}

// tsSample returns boundary-learning samples spanning the timestamp
// range the workload will populate, so NewShardedFromSample spreads the
// order stream across every shard.
func tsSample() []int64 {
	span := int64(3 * (preload + txRounds*txPerRound))
	sample := make([]int64, 1024)
	for i := range sample {
		sample[i] = 1_000_000 + int64(i)*span/int64(len(sample))
	}
	return sample
}

// runConcurrent drives the same HTAP mix through the sharded serving
// layer from several client goroutines at once — transactional clients
// inserting/archiving orders, analytical clients aggregating windows —
// which no single-lock backend could serve without full serialization.
func runConcurrent(s *rma.Sharded, clients int) {
	var wg sync.WaitGroup
	var txOps, scanned int64
	var mu sync.Mutex
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Each transactional client ingests its own key partition
			// inside the provisioned span (clients advancing in
			// lockstep through one region would all hammer the same
			// shard — sequential streams are range-sharding's worst
			// case), so writers stay spread across shards.
			ts := workload.NewSequential(1_000_000+int64(c/2)*3*txRounds*txPerRound, 3)
			rng := workload.NewRNG(uint64(100 + c))
			var tx, sc int64
			if c%2 == 0 {
				// Transactional client: bursts of new orders, batched.
				for round := 0; round < txRounds; round++ {
					ops := make([]rma.BatchOp, 0, txPerRound)
					for i := 0; i < txPerRound; i++ {
						k := ts.Next() + int64(rng.Uint64n(5))
						ops = append(ops, rma.BatchOp{Kind: rma.OpPut, Key: k, Val: int64(rng.Uint64n(10_000))})
					}
					if _, err := s.ApplyBatch(ops); err != nil {
						log.Fatal(err)
					}
					tx += int64(len(ops))
				}
			} else {
				// Analytical client: continuous revenue windows.
				for q := 0; q < txRounds*queries/10; q++ {
					lo := 1_000_000 + int64(rng.Uint64n(uint64(3*preload)))
					cnt, _ := s.Sum(lo, lo+3*preload/20)
					sc += int64(cnt)
				}
			}
			mu.Lock()
			txOps += tx
			scanned += sc
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	d := time.Since(t0)
	fmt.Printf("%-10s  %d clients: %6.2f M tx-ops/s and %8.2f Melts/s analytics concurrently (size %d, %d shards)\n",
		"sharded", clients, float64(txOps)/d.Seconds()/1e6, float64(scanned)/d.Seconds()/1e6,
		s.Size(), s.NumShards())
}

func main() {
	fmt.Println("HTAP mix: 50 bursts of 2k inserts + 2k deletes, 200 range queries each")
	a, err := rma.New(rma.WithSegmentCapacity(128))
	if err != nil {
		log.Fatal(err)
	}
	tpma, err := rma.NewTPMA()
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := rma.NewShardedFromSample(8, tsSample(), rma.WithSegmentCapacity(128))
	if err != nil {
		log.Fatal(err)
	}
	backends := []struct {
		name string
		s    rma.UpdatableMap
	}{
		{"rma", a},
		{"tpma", tpma},
		{"abtree", rma.NewABTree(128)},
		{"art", rma.NewARTTree(128)},
		{"rma-shard8", sharded},
	}
	for _, b := range backends {
		run(b.name, b.s)
	}

	// The sharded layer additionally serves concurrent clients.
	fresh, err := rma.NewShardedFromSample(8, tsSample(), rma.WithSegmentCapacity(128))
	if err != nil {
		log.Fatal(err)
	}
	runConcurrent(fresh, 8)
}
