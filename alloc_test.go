package rma

import (
	"sync"
	"testing"
)

// Allocation regression tests: cursors and iterators must hold O(1)
// state — the old Cursor materialized the whole range into a slice, so
// a 1M-element traversal allocated megabytes. These tests pin the new
// walker-based implementations to a small constant, independent of
// range size.

const allocN = 1 << 20

var allocFixture = sync.OnceValue(func() *Array {
	a, err := New()
	if err != nil {
		panic(err)
	}
	keys := make([]int64, allocN)
	vals := make([]int64, allocN)
	for i := range keys {
		keys[i] = int64(i) * 2
		vals[i] = int64(i)
	}
	if err := a.BulkLoad(keys, vals); err != nil {
		panic(err)
	}
	return a
})

// maxIterAllocs is the allowance per traversal: the cursor or iterator
// closure itself plus walker escape — nothing proportional to the range.
const maxIterAllocs = 8

func TestCursorAllocationsFullRange(t *testing.T) {
	a := allocFixture()
	visited := 0
	allocs := testing.AllocsPerRun(3, func() {
		c := a.NewCursor(minInt64, maxInt64)
		visited = 0
		for c.Next() {
			visited++
		}
	})
	if visited != allocN {
		t.Fatalf("cursor visited %d of %d", visited, allocN)
	}
	if allocs > maxIterAllocs {
		t.Errorf("cursor over %d elements: %.1f allocs/run, want <= %d (O(1) state)",
			allocN, allocs, maxIterAllocs)
	}
}

func TestCursorAllocationsIndependentOfRange(t *testing.T) {
	a := allocFixture()
	measure := func(lo, hi int64) float64 {
		return testing.AllocsPerRun(5, func() {
			c := a.NewCursor(lo, hi)
			for c.Next() {
			}
		})
	}
	small := measure(0, 200)             // ~100 elements
	large := measure(minInt64, maxInt64) // 1M elements
	if large > small+2 {
		t.Errorf("cursor allocations grow with range size: %.1f (100 elts) vs %.1f (1M elts)",
			small, large)
	}
}

func TestIteratorAllocations(t *testing.T) {
	a := allocFixture()
	visited := 0
	forms := map[string]func(){
		"All": func() {
			visited = 0
			for range a.All() {
				visited++
			}
		},
		"Range": func() {
			visited = 0
			for range a.Range(minInt64, maxInt64) {
				visited++
			}
		},
		"Ascend": func() {
			visited = 0
			for range a.Ascend(minInt64) {
				visited++
			}
		},
		"Descend": func() {
			visited = 0
			for range a.Descend(maxInt64) {
				visited++
			}
		},
	}
	for name, iterate := range forms {
		t.Run(name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(3, iterate)
			if visited != allocN {
				t.Fatalf("%s visited %d of %d", name, visited, allocN)
			}
			if allocs > maxIterAllocs {
				t.Errorf("%s over %d elements: %.1f allocs/run, want <= %d",
					name, allocN, allocs, maxIterAllocs)
			}
		})
	}
}

// TestGetBatchAllocations pins the batched-lookup surface at zero
// steady-state allocations: the probe ordering lives in persistent
// scratch on the array, the sharded grouping scratch is pooled, and the
// caller-provided out slice is reused.
func TestGetBatchAllocations(t *testing.T) {
	a := allocFixture()
	probes := make([]int64, 1024)
	for i := range probes {
		probes[i] = int64((i * 2654435761) % (2 * allocN)) // mixed hits/misses, unsorted
	}

	t.Run("array", func(t *testing.T) {
		out := a.GetBatch(probes, nil) // warm scratch and output once
		allocs := testing.AllocsPerRun(10, func() {
			out = a.GetBatch(probes, out)
		})
		if allocs > 0 {
			t.Errorf("steady-state Array.GetBatch allocates %.1f per run, want 0", allocs)
		}
	})

	t.Run("sharded", func(t *testing.T) {
		if raceEnabled {
			t.Skip("sync.Pool allocates under the race detector")
		}
		s, err := NewSharded(8)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1<<15; i++ {
			if err := s.Insert(int64(i)*3, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		out := s.GetBatch(probes, nil)
		allocs := testing.AllocsPerRun(10, func() {
			out = s.GetBatch(probes, out)
		})
		if allocs > 0 {
			t.Errorf("steady-state Sharded.GetBatch allocates %.1f per run, want 0", allocs)
		}
	})
}

func TestNavigationAllocations(t *testing.T) {
	a := allocFixture()
	allocs := testing.AllocsPerRun(10, func() {
		a.Rank(allocN)
		a.Select(allocN / 2)
		a.Floor(allocN)
		a.Ceiling(allocN)
		a.CountRange(allocN/4, allocN/2)
	})
	if allocs > 0 {
		t.Errorf("navigation queries allocate %.1f per run, want 0", allocs)
	}
}
