package rma

import (
	"sync"
	"testing"
	"time"

	"rma/internal/core"
	"rma/internal/rebal"
	"rma/internal/shard"
	"rma/internal/workload"
)

// Lifecycle tests for the background rebalancer on the real serving
// stack (rma.Sharded over internal/shard + internal/rebal). The
// deterministic fairness/wakeup unit tests live in internal/rebal;
// these assert the end-to-end contract under -race: Close-while-pending
// drains fully, double-Close is safe, and a flooded shard cannot starve
// another shard's maintenance.

// newAsyncSharded builds a small-segment sharded map whose boundaries
// cover the torture key space, with the background rebalancer on.
func newAsyncSharded(t *testing.T, shards, workers int) *Sharded {
	t.Helper()
	sample := make([]int64, 256)
	for i := range sample {
		sample[i] = int64(i) * tortureKeySpace / int64(len(sample))
	}
	s, err := NewShardedFromSample(shards, sample,
		WithSegmentCapacity(16), WithPageCapacity(64),
		WithBackgroundRebalancing(workers))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedRebalancerCloseWhilePendingDrains hammers writers and
// closes immediately, with no quiescence: Close must execute every
// deferred window before returning, leaving a valid, fully rebalanced,
// content-complete map.
func TestShardedRebalancerCloseWhilePendingDrains(t *testing.T) {
	s := newAsyncSharded(t, 5, 2)
	const writers, perW = 4, 8_000
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(31 + g))
			for i := 0; i < perW; i++ {
				k := int64(rng.Uint64n(tortureKeySpace))
				if err := s.Insert(k, diffVal(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Close right on the writers' heels — the backlog is whatever the
	// pool has not caught up with yet.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := s.PendingWindows(); n != 0 {
		t.Fatalf("%d windows still pending after Close", n)
	}
	if got := s.Size(); got != writers*perW {
		t.Fatalf("size %d after close, want %d", got, writers*perW)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.DeferredWindows == 0 {
		t.Error("no window was ever deferred; the async path never engaged")
	}
}

// TestShardedRebalancerDoubleClose: Close is idempotent (sequentially
// and concurrently), and the map stays fully usable afterwards with
// synchronous rebalancing.
func TestShardedRebalancerDoubleClose(t *testing.T) {
	s := newAsyncSharded(t, 3, 2)
	rng := workload.NewRNG(7)
	for i := 0; i < 10_000; i++ {
		k := int64(rng.Uint64n(tortureKeySpace))
		if err := s.Insert(k, diffVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	// Post-Close writes rebalance synchronously: the backlog never grows.
	for i := 0; i < 10_000; i++ {
		k := int64(rng.Uint64n(tortureKeySpace))
		if err := s.Insert(k, diffVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.PendingWindows(); n != 0 {
		t.Fatalf("%d windows pending after post-Close writes; deferral was not disabled", n)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 20_000 {
		t.Fatalf("size %d, want 20000", s.Size())
	}

	// A never-async map's Close is a free no-op.
	plain, err := NewSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRebalancerFloodFairness drives the real shard.Map + pool:
// shard 1's pre-filled backlog must drain while a writer floods shard 0
// with fresh deferrals the whole time — the round-robin workers may
// never park on the flooded shard.
func TestShardedRebalancerFloodFairness(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SegmentSlots = 16
	cfg.PageSlots = 64
	// Two shards: keys < 1<<20 on shard 0, the rest on shard 1.
	m, err := shard.New(cfg, []int64{1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pool := rebal.NewPool(m, 1) // one worker: starvation would be visible
	m.EnableDeferredRebalancing(pool.Notify)

	// Pre-fill shard 1's backlog before any worker runs.
	rng := workload.NewRNG(99)
	for i := 0; m.PendingShard(1) < 16 && i < 200_000; i++ {
		k := int64(1<<20) + int64(rng.Uint64n(4096))
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if m.PendingShard(1) == 0 {
		t.Fatal("could not provoke a deferred backlog on shard 1; retune the workload")
	}

	pool.Start()
	defer pool.Close()

	stop := make(chan struct{})
	var flood sync.WaitGroup
	flood.Add(1)
	go func() {
		defer flood.Done()
		rng := workload.NewRNG(5)
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := int64(rng.Uint64n(4096))
			if err := m.Insert(k, k); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	for m.PendingShard(1) != 0 {
		if time.Now().After(deadline) {
			close(stop)
			flood.Wait()
			t.Fatalf("shard 1 backlog (%d) starved under the shard-0 flood", m.PendingShard(1))
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	flood.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRebalancerSequentialInsert pins the two bugs the async
// split originally shipped with, both provoked by sequential ascending
// keys (the adaptive detector's hammering pattern) under concurrent
// writers:
//
//  1. the deferred local spread used adaptive targets, which can leave
//     the insert's own segment full — the insert's retry loop then
//     re-picked the same window forever (a livelock holding the shard
//     lock);
//  2. maintenance tried to repair every tau violation, fighting the
//     adaptive policy's deliberate density skew with endless near-root
//     rebalances.
//
// The run must finish quickly (the livelock burned minutes); the
// generous bound only trips if one of them regresses.
func TestShardedRebalancerSequentialInsert(t *testing.T) {
	s, err := NewSharded(8, WithBackgroundRebalancing(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		const writers, perW = 4, 25_000
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := int64(0); i < perW; i++ {
					if err := s.Insert(i*writers+int64(w), i); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("sequential insert workload livelocked (deferred local spread must guarantee insert admission)")
	}
	if t.Failed() {
		t.FailNow()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Size() != 100_000 {
		t.Fatalf("size %d, want 100000", s.Size())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRebalancerLockFreeReaders runs point readers through the
// seqlock path while writers keep the background rebalancer busy: every
// hit must carry the key's one true value (writers only ever store
// diffVal), the lock-free counter must progress, and with page-swapping
// rebalances active the epoch gate must actually reclaim retired pages.
func TestShardedRebalancerLockFreeReaders(t *testing.T) {
	sample := make([]int64, 256)
	for i := range sample {
		sample[i] = int64(i) * tortureKeySpace / int64(len(sample))
	}
	s, err := NewShardedFromSample(5, sample,
		WithSegmentCapacity(16), WithPageCapacity(64),
		WithBackgroundRebalancing(2), WithLockFreeReads())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const readerG, perWriter = 4, 30_000
	stop := make(chan struct{})
	var readers, writers sync.WaitGroup
	for g := 0; g < readerG; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := workload.NewRNG(uint64(4000 + g))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := int64(rng.Uint64n(tortureKeySpace))
				if v, ok := s.Find(k); ok && v != diffVal(k) {
					t.Errorf("reader %d: Find(%d) = %d, want %d", g, k, v, diffVal(k))
					return
				}
				if fk, fv, ok := s.Floor(k); ok && (fk > k || fv != diffVal(fk)) {
					t.Errorf("reader %d: Floor(%d) = (%d,%d)", g, k, fk, fv)
					return
				}
				if ck, cv, ok := s.Ceiling(k); ok && (ck < k || cv != diffVal(ck)) {
					t.Errorf("reader %d: Ceiling(%d) = (%d,%d)", g, k, ck, cv)
					return
				}
			}
		}(g)
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := workload.NewRNG(uint64(600 + w))
			for i := 0; i < perWriter; i++ {
				k := int64(rng.Uint64n(tortureKeySpace))
				if rng.Uint64n(100) < 20 {
					if _, err := s.Delete(k); err != nil {
						t.Error(err)
						return
					}
				} else if err := s.Insert(k, diffVal(k)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st := s.Stats()
	if st.LockFreeReads == 0 {
		t.Error("no read ever completed through the seqlock path")
	}
	if st.ReadFallbacks > 0 && st.ReadRetries == 0 {
		t.Errorf("%d fallbacks but zero retries recorded", st.ReadFallbacks)
	}
	if st.PageSwaps > 0 && st.EpochAdvances == 0 {
		t.Errorf("%d page swaps retired pages but the epoch gate never advanced", st.PageSwaps)
	}
	t.Logf("lock-free: %d reads, %d retries, %d fallbacks; %d page swaps, %d epoch advances",
		st.LockFreeReads, st.ReadRetries, st.ReadFallbacks, st.PageSwaps, st.EpochAdvances)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedFlushDrainsBacklog: Flush empties the deferral queues
// without stopping the pool, and the map keeps serving.
func TestShardedFlushDrainsBacklog(t *testing.T) {
	s := newAsyncSharded(t, 4, 1)
	defer s.Close()
	rng := workload.NewRNG(3)
	for i := 0; i < 20_000; i++ {
		k := int64(rng.Uint64n(tortureKeySpace))
		if err := s.Insert(k, diffVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := s.PendingWindows(); n != 0 {
		t.Fatalf("%d windows pending right after Flush", n)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Still serving: inserts after a flush defer again.
	for i := 0; i < 5_000; i++ {
		k := int64(rng.Uint64n(tortureKeySpace))
		if err := s.Insert(k, diffVal(k)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Size() != 25_000 {
		t.Fatalf("size %d, want 25000", s.Size())
	}
}
