//go:build race

package rma

// raceEnabled reports whether the race detector is instrumenting this
// build: allocation-regression tests that pin sync.Pool-backed paths at
// zero skip under -race, where the pool intentionally allocates to
// randomize scheduling.
const raceEnabled = true
