module rma

go 1.24
