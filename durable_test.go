package rma

import (
	"errors"
	"testing"
)

func TestArrayDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithSegmentCapacity(8), WithPageCapacity(32)}
	a, err := New(append(opts, WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Durable() {
		t.Fatal("not durable")
	}
	for i := int64(0); i < 5000; i++ {
		if err := a.Insert(i*7, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Checkpoints != 1 || st.CheckpointPages == 0 {
		t.Fatalf("checkpoint stats %+v", st)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenArray(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Size() != 5000 {
		t.Fatalf("recovered %d, want 5000", b.Size())
	}
	for i := int64(0); i < 5000; i++ {
		v, ok := b.Find(i * 7)
		if !ok || v != i {
			t.Fatalf("Find(%d) = %d,%v", i*7, v, ok)
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// The recovered array keeps checkpointing.
	if err := b.Insert(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedDurabilityRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := []Option{WithSegmentCapacity(8), WithPageCapacity(32), WithBackgroundRebalancing(2)}
	s, err := NewSharded(4, append(opts, WithDurability(dir))...)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(-4000); i < 4000; i++ {
		if err := s.Insert(i*1_000_003, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenSharded(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Size() != 8000 {
		t.Fatalf("recovered %d, want 8000", r.Size())
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := int64(-4000); i < 4000; i++ {
		v, ok := r.Find(i * 1_000_003)
		if !ok || v != i {
			t.Fatalf("Find(%d) = %d,%v", i*1_000_003, v, ok)
		}
	}
	// The recovered map keeps checkpointing (one checkpoint per shard).
	if err := r.Insert(42, 42); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Checkpoints; got != uint64(r.NumShards()) {
		t.Fatalf("Checkpoints = %d, want %d", got, r.NumShards())
	}
}

func TestCheckpointWithoutDurabilityErrors(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Array: want ErrNotDurable, got %v", err)
	}
	s, err := NewSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Checkpoint(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Sharded: want ErrNotDurable, got %v", err)
	}
	if s.RequestCheckpoint() {
		t.Fatal("RequestCheckpoint on a non-durable map")
	}
}

func TestOpenShardedNoCheckpoint(t *testing.T) {
	if _, err := OpenSharded(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if _, err := OpenArray(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}
