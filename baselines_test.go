package rma

import (
	"testing"

	"rma/internal/workload"
)

func TestABTreeWrapperSurface(t *testing.T) {
	b := NewABTree(64)
	for i := int64(0); i < 1000; i++ {
		b.Insert(i, i*2)
	}
	if v, ok := b.Find(500); !ok || v != 1000 {
		t.Fatalf("Find = (%d,%v)", v, ok)
	}
	if !b.Delete(500) || b.Delete(500) {
		t.Fatal("Delete semantics")
	}
	if b.Size() != 999 {
		t.Fatalf("Size %d", b.Size())
	}
	cnt, sum := b.Sum(0, 9)
	if cnt != 10 || sum != 90 {
		t.Fatalf("Sum = (%d,%d)", cnt, sum)
	}
	if c, _ := b.SumAll(); c != 999 {
		t.Fatalf("SumAll count %d", c)
	}
	seen := 0
	b.ScanRange(0, 99, func(_, _ int64) bool { seen++; return true })
	if seen != 100 {
		t.Fatalf("scan saw %d", seen)
	}
	if b.FootprintBytes() <= 0 {
		t.Fatal("footprint")
	}
	// BulkLoad replaces content.
	keys := []int64{1, 2, 3}
	b.BulkLoad(keys, keys)
	if b.Size() != 3 {
		t.Fatalf("after BulkLoad size %d", b.Size())
	}
}

func TestARTTreeWrapperSurface(t *testing.T) {
	b := NewARTTree(64)
	for i := int64(0); i < 1000; i++ {
		b.Insert(i, i*3)
	}
	if v, ok := b.Find(123); !ok || v != 369 {
		t.Fatalf("Find = (%d,%v)", v, ok)
	}
	if !b.Delete(123) {
		t.Fatal("Delete missed")
	}
	cnt, _ := b.Sum(0, 999)
	if cnt != 999 {
		t.Fatalf("Sum count %d", cnt)
	}
	if c, _ := b.SumAll(); c != 999 {
		t.Fatalf("SumAll %d", c)
	}
	seen := 0
	b.ScanRange(10, 19, func(_, _ int64) bool { seen++; return true })
	if seen != 10 {
		t.Fatalf("scan saw %d", seen)
	}
	if b.FootprintBytes() <= 0 {
		t.Fatal("footprint")
	}
	keys := []int64{5, 6, 7, 8}
	b.BulkLoad(keys, keys)
	if b.Size() != 4 {
		t.Fatalf("after BulkLoad size %d", b.Size())
	}
}

func TestDenseWrapperSurface(t *testing.T) {
	keys := []int64{1, 3, 5, 7}
	vals := []int64{10, 30, 50, 70}
	d := NewDense(keys, vals)
	seen := 0
	d.ScanRange(2, 6, func(_, _ int64) bool { seen++; return true })
	if seen != 2 {
		t.Fatalf("scan saw %d", seen)
	}
	if c, s := d.SumAll(); c != 4 || s != 160 {
		t.Fatalf("SumAll = (%d,%d)", c, s)
	}
	if d.FootprintBytes() <= 0 {
		t.Fatal("footprint")
	}
}

// The three updatable structures must agree under a randomized workload
// driven purely through the public interface.
func TestPublicDifferential(t *testing.T) {
	a, err := New(WithSegmentCapacity(16), WithPageCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	maps := []UpdatableMap{a, NewABTree(16), NewARTTree(16)}
	rng := workload.NewRNG(123)
	for op := 0; op < 8000; op++ {
		k := int64(rng.Uint64n(400))
		if rng.Uint64n(3) == 0 {
			var first bool
			for i, m := range maps {
				ok, err := m.DeleteKey(k)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					first = ok
				} else if ok != first {
					t.Fatalf("op %d: delete disagreement", op)
				}
			}
		} else {
			for _, m := range maps {
				if err := m.InsertKV(k, workload.ValueFor(k)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	c0, s0 := maps[0].SumAll()
	for i, m := range maps[1:] {
		if c, s := m.SumAll(); c != c0 || s != s0 {
			t.Fatalf("map %d: SumAll (%d,%d) vs (%d,%d)", i+1, c, s, c0, s0)
		}
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxEmptyPublic(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := a.Min(); ok {
		t.Fatal("Min on empty")
	}
	if _, ok := a.Max(); ok {
		t.Fatal("Max on empty")
	}
	if a.Contains(1) {
		t.Fatal("Contains on empty")
	}
}
