package rma

import (
	"testing"

	"rma/internal/workload"
)

func TestPublicAPIQuickstart(t *testing.T) {
	a, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(42, 420); err != nil {
		t.Fatal(err)
	}
	v, ok := a.Find(42)
	if !ok || v != 420 {
		t.Fatalf("Find = (%d,%v)", v, ok)
	}
	if !a.Contains(42) || a.Contains(43) {
		t.Fatal("Contains wrong")
	}
	ok, err = a.Delete(42)
	if err != nil || !ok {
		t.Fatal("Delete failed")
	}
	if a.Size() != 0 {
		t.Fatal("size")
	}
}

func TestPublicOptions(t *testing.T) {
	for _, opts := range [][]Option{
		{},
		{WithSegmentCapacity(64)},
		{WithScanOrientedThresholds()},
		{WithUpdateOrientedThresholds()},
		{WithAdaptiveRebalancing(false)},
		{WithMemoryRewiring(false)},
		{WithSegmentCapacity(32), WithPageCapacity(128)},
	} {
		a, err := New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		g := workload.NewUniform(1, 1<<30)
		for i := 0; i < 5000; i++ {
			if err := a.Insert(g.Next(), int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		if a.Size() != 5000 {
			t.Fatalf("size %d", a.Size())
		}
	}
	if _, err := New(WithSegmentCapacity(100)); err == nil {
		t.Fatal("invalid B accepted")
	}
}

func TestPublicScanAndSum(t *testing.T) {
	a, err := New(WithSegmentCapacity(16), WithPageCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := a.Insert(int64(i), int64(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	cnt, sum := a.Sum(100, 199)
	if cnt != 100 {
		t.Fatalf("count %d", cnt)
	}
	want := int64(0)
	for i := 100; i < 200; i++ {
		want += int64(i * 10)
	}
	if sum != want {
		t.Fatalf("sum %d want %d", sum, want)
	}
	seen := 0
	a.ScanRange(0, 49, func(k, v int64) bool { seen++; return true })
	if seen != 50 {
		t.Fatalf("scan visited %d", seen)
	}
	mn, _ := a.Min()
	mx, _ := a.Max()
	if mn != 0 || mx != 1999 {
		t.Fatalf("Min/Max %d/%d", mn, mx)
	}
}

func TestPublicBulkLoadAndStats(t *testing.T) {
	a, err := New(WithSegmentCapacity(16), WithPageCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	keys := workload.Keys(workload.NewUniform(7, 1<<20), 3000)
	vals := make([]int64, len(keys))
	if err := a.BulkLoad(keys, vals); err != nil {
		t.Fatal(err)
	}
	if a.Size() != 3000 {
		t.Fatalf("size %d", a.Size())
	}
	s := a.Stats()
	if s.BulkLoads != 1 {
		t.Fatalf("BulkLoads %d", s.BulkLoads)
	}
	if a.Density() <= 0 || a.Density() > 1 {
		t.Fatalf("density %v", a.Density())
	}
	if a.FootprintBytes() <= 0 || a.Capacity() == 0 || a.SegmentCapacity() != 16 {
		t.Fatal("geometry accessors wrong")
	}
	// BulkUpdate: delete 100 existing, add 100 new.
	newKeys := workload.Keys(workload.NewUniform(8, 1<<20), 100)
	if err := a.BulkUpdate(newKeys, make([]int64, 100), keys[:100]); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinesShareTheInterface(t *testing.T) {
	maps := []UpdatableMap{
		func() UpdatableMap { a, _ := New(WithSegmentCapacity(16), WithPageCapacity(64)); return a }(),
		NewABTree(16),
		NewARTTree(16),
	}
	g := workload.NewUniform(11, 1000)
	keys := workload.Keys(g, 2000)
	for _, m := range maps {
		for _, k := range keys {
			if err := m.InsertKV(k, workload.ValueFor(k)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// All implementations must agree on every aggregate.
	for lo := int64(0); lo < 1000; lo += 97 {
		hi := lo + 150
		c0, s0 := maps[0].Sum(lo, hi)
		for i, m := range maps[1:] {
			c, s := m.Sum(lo, hi)
			if c != c0 || s != s0 {
				t.Fatalf("map %d disagrees on Sum(%d,%d): (%d,%d) vs (%d,%d)", i+1, lo, hi, c, s, c0, s0)
			}
		}
	}
	// Delete parity.
	for _, k := range keys[:500] {
		r0, _ := maps[0].DeleteKey(k)
		for i, m := range maps[1:] {
			r, _ := m.DeleteKey(k)
			if r != r0 {
				t.Fatalf("map %d disagrees on Delete(%d)", i+1, k)
			}
		}
	}
	c0, _ := maps[0].SumAll()
	for i, m := range maps[1:] {
		if c, _ := m.SumAll(); c != c0 {
			t.Fatalf("map %d size diverged: %d vs %d", i+1, c, c0)
		}
	}
}

func TestDensePublic(t *testing.T) {
	keys := []int64{1, 2, 3, 5, 8}
	vals := []int64{10, 20, 30, 50, 80}
	d := NewDense(keys, vals)
	if v, ok := d.Find(5); !ok || v != 50 {
		t.Fatal("dense Find")
	}
	cnt, sum := d.Sum(2, 5)
	if cnt != 3 || sum != 100 {
		t.Fatalf("dense Sum = (%d,%d)", cnt, sum)
	}
	if d.Size() != 5 {
		t.Fatal("dense Size")
	}
}
