package rma

import (
	"fmt"

	"rma/internal/core"
	"rma/internal/shard"
	"rma/internal/vmem"
)

// Durability on the facade: WithDurability(dir) makes an Array or a
// Sharded map checkpoint its state to a directory tree, and
// OpenArray/OpenSharded recover from it. A checkpoint is explicit
// (Checkpoint, or RequestCheckpoint for the asynchronous sharded form)
// and crash-consistent: it is published by one atomic rename, so a
// crash at any instant — mid-write, mid-fsync, mid-rename — recovers
// exactly the last published checkpoint, never a torn state. Between
// checkpoints the structure runs at full in-memory speed; a checkpoint
// persists only the pages dirtied since the previous one.
//
// Failures degrade gracefully: a failed checkpoint (disk full, I/O
// error) leaves the structure serving from memory with nothing lost,
// the previous on-disk checkpoint intact, and the next Checkpoint
// retrying the unpersisted pages. See DURABILITY.md for the on-disk
// format and the full crash matrix.

// Errors surfaced by the durability layer, re-exported for errors.Is.
var (
	// ErrNoCheckpoint reports that the directory passed to
	// OpenArray/OpenSharded holds no published checkpoint.
	ErrNoCheckpoint = vmem.ErrNoCheckpoint
	// ErrNotDurable reports a Checkpoint call on a structure built
	// without WithDurability.
	ErrNotDurable = core.ErrNotDurable
	// ErrAllocFailed reports a physical page allocation failure; the
	// structure stays consistent and keeps serving.
	ErrAllocFailed = vmem.ErrAllocFailed
)

// WithDurability makes the structure durable: its state checkpoints
// into the directory tree rooted at dir (created if absent; any
// previous checkpoint history under dir is discarded — use
// OpenArray/OpenSharded to resume from one). Checkpoints are explicit:
// call Checkpoint at the moments that must survive a crash.
func WithDurability(dir string) Option {
	return func(o *options) { o.durDir = dir }
}

// Checkpoint persists the array's current state as its new recovery
// point and returns nil once it is durably on disk. Incremental: only
// pages dirtied since the last checkpoint are written. On error the
// array keeps serving from memory, the previous recovery point stays
// intact, and the next Checkpoint retries.
func (r *Array) Checkpoint() error {
	_, err := r.a.Checkpoint(0)
	return err
}

// Durable reports whether the array was built with WithDurability.
func (r *Array) Durable() bool { return r.a.Durable() }

// Close releases the array's durability files (no-op without
// WithDurability). It does not checkpoint: state since the last
// Checkpoint call is not persisted.
func (r *Array) Close() error {
	if reg := r.a.Region(); reg != nil {
		return reg.Close()
	}
	return nil
}

// OpenArray recovers an Array from the durability tree at dir,
// restoring the last checkpointed state. opts must describe the same
// engine the checkpoints were taken with (layout and page size are
// verified; tuning options are free to differ). The recovered array is
// durable and continues checkpointing incrementally into dir.
func OpenArray(dir string, opts ...Option) (*Array, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	reg, err := vmem.OpenFileRegion(dir)
	if err != nil {
		return nil, err
	}
	a, err := core.Open(reg, o.cfg, 0)
	if err != nil {
		reg.Close()
		return nil, err
	}
	return &Array{a: a}, nil
}

// Checkpoint persists the sharded map's current state as one atomic
// recovery point: every shard is checkpointed at a quiesce point under
// its own lock — one shard at a time, readers and writers on other
// shards never blocked — and a map-level manifest binding the shard
// checkpoints together is published last, by one atomic rename. On
// error the map keeps serving from memory and the previous recovery
// point stays intact.
func (s *Sharded) Checkpoint() error { return s.m.CheckpointAll() }

// RequestCheckpoint starts a checkpoint round in the background: the
// maintenance pool (WithBackgroundRebalancing) folds each shard's
// checkpoint into its sweep once that shard's deferred backlog drains,
// and the last shard's finisher publishes the recovery point. Returns
// false without starting anything when the map is not durable, no
// round can start (one already in flight), or there is no pool to
// drive it. Track completion with Stats().Checkpoints or call
// Checkpoint to force completion synchronously.
func (s *Sharded) RequestCheckpoint() bool {
	if s.pool == nil {
		return false
	}
	return s.m.RequestCheckpoint()
}

// Durable reports whether the map was built with WithDurability.
func (s *Sharded) Durable() bool { return s.m.Durable() }

// OpenSharded recovers a Sharded map from the durability tree at dir:
// the shard boundaries and every shard's state come back exactly as the
// last published Checkpoint captured them, regardless of how far later
// unpublished work had progressed when the process died. opts must
// describe the same engine the checkpoints were taken with; the
// recovered map is durable and continues checkpointing into dir.
func OpenSharded(dir string, opts ...Option) (*Sharded, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	if o.durDir != "" && o.durDir != dir {
		return nil, fmt.Errorf("rma: OpenSharded(%q) conflicts with WithDurability(%q)", dir, o.durDir)
	}
	m, err := shard.OpenMap(dir, o.cfg)
	if err != nil {
		return nil, err
	}
	return finishSharded(m, o), nil
}
