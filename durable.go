package rma

import (
	"fmt"
	"path/filepath"
	"time"

	"rma/internal/core"
	"rma/internal/shard"
	"rma/internal/vmem"
	"rma/internal/wal"
)

// Durability on the facade: WithDurability(dir) makes an Array or a
// Sharded map checkpoint its state to a directory tree, and
// OpenArray/OpenSharded recover from it. A checkpoint is explicit
// (Checkpoint, or RequestCheckpoint for the asynchronous sharded form)
// and crash-consistent: it is published by one atomic rename, so a
// crash at any instant — mid-write, mid-fsync, mid-rename — recovers
// exactly the last published checkpoint, never a torn state. Between
// checkpoints the structure runs at full in-memory speed; a checkpoint
// persists only the pages dirtied since the previous one.
//
// Failures degrade gracefully: a failed checkpoint (disk full, I/O
// error) leaves the structure serving from memory with nothing lost,
// the previous on-disk checkpoint intact, and the next Checkpoint
// retrying the unpersisted pages. See DURABILITY.md for the on-disk
// format and the full crash matrix.

// Errors surfaced by the durability layer, re-exported for errors.Is.
var (
	// ErrNoCheckpoint reports that the directory passed to
	// OpenArray/OpenSharded holds no published checkpoint.
	ErrNoCheckpoint = vmem.ErrNoCheckpoint
	// ErrNotDurable reports a Checkpoint call on a structure built
	// without WithDurability.
	ErrNotDurable = core.ErrNotDurable
	// ErrAllocFailed reports a physical page allocation failure; the
	// structure stays consistent and keeps serving.
	ErrAllocFailed = vmem.ErrAllocFailed
)

// WithDurability makes the structure durable: its state checkpoints
// into the directory tree rooted at dir (created if absent; any
// previous checkpoint history under dir is discarded — use
// OpenArray/OpenSharded to resume from one). Checkpoints are explicit:
// call Checkpoint at the moments that must survive a crash — or compose
// WithWAL to log every write and checkpoint automatically.
func WithDurability(dir string) Option {
	return func(o *options) { o.durDir = dir }
}

// WALConfig configures the write-ahead log (WithWAL). The zero value is
// a working default: fsync on every commit wave, 4 MiB segments, and an
// automatic checkpoint every minute or 64 MiB of log, whichever comes
// first.
type WALConfig struct {
	// Fsync selects when commit waves reach stable storage: "always"
	// (the default — every acknowledged write is on disk), "everysec"
	// (group fsync about once a second; a crash loses at most the last
	// second of acknowledged writes), or "never" (the OS decides; for
	// benchmarks and bulk loads).
	Fsync string
	// SegmentBytes rotates log segments at this size (default 4 MiB).
	// Smaller segments truncate at finer granularity.
	SegmentBytes int
	// CheckpointDirtyPages, CheckpointInterval and CheckpointWALBytes
	// are the automatic checkpoint scheduler's thresholds: a background
	// checkpoint round starts when any of them is crossed and new
	// records have been logged since the last round. Zero picks the
	// default (interval one minute, WAL bytes 64 MiB, dirty pages
	// unlimited); a negative value disables that threshold. The
	// scheduler needs WithBackgroundRebalancing — its rounds are driven
	// by the maintenance pool.
	CheckpointDirtyPages int
	CheckpointInterval   time.Duration
	CheckpointWALBytes   int64
	// SchedulerPeriod is the cadence at which the maintenance pool
	// probes the thresholds (default 250ms; tests tighten it to force
	// scheduler activity quickly).
	SchedulerPeriod time.Duration
}

// WithWAL composes a write-ahead log with WithDurability (requiring it;
// NewSharded fails without): every Insert, Delete and ApplyBatch is
// appended to a group-commit log before it returns, so acknowledged
// writes survive a crash at any instant — OpenSharded (with the same
// WithWAL option) replays the log's suffix over the last published
// checkpoint. Checkpoints bound replay work and truncate the log; the
// automatic scheduler keeps both going without explicit Checkpoint
// calls. New ignores the option (the sequential Array has no logging
// path). See DURABILITY.md for the record format, the ack contract and
// the crash matrix.
func WithWAL(c WALConfig) Option {
	return func(o *options) { o.wal = &c }
}

// walDirFor places the log beside the checkpoint tree it composes with.
func walDirFor(durDir string) string { return filepath.Join(durDir, "wal") }

// walOptions translates the facade config into the log's options.
func (c WALConfig) walOptions() (wal.Options, error) {
	o := wal.Options{SegmentBytes: c.SegmentBytes}
	switch c.Fsync {
	case "", "always":
		o.Sync = wal.SyncAlways
	case "everysec":
		o.Sync = wal.SyncEverySec
	case "never":
		o.Sync = wal.SyncNever
	default:
		return o, fmt.Errorf("rma: unknown fsync policy %q (want always, everysec or never)", c.Fsync)
	}
	return o, nil
}

// policy translates the scheduler thresholds, applying defaults.
func (c WALConfig) policy() shard.WALPolicy {
	p := shard.WALPolicy{
		DirtyPages: c.CheckpointDirtyPages,
		Interval:   c.CheckpointInterval,
		WALBytes:   c.CheckpointWALBytes,
	}
	if p.Interval == 0 {
		p.Interval = time.Minute
	}
	if p.WALBytes == 0 {
		p.WALBytes = 64 << 20
	}
	if p.DirtyPages < 0 {
		p.DirtyPages = 0
	}
	if p.Interval < 0 {
		p.Interval = 0
	}
	if p.WALBytes < 0 {
		p.WALBytes = 0
	}
	return p
}

// Checkpoint persists the array's current state as its new recovery
// point and returns nil once it is durably on disk. Incremental: only
// pages dirtied since the last checkpoint are written. On error the
// array keeps serving from memory, the previous recovery point stays
// intact, and the next Checkpoint retries.
func (r *Array) Checkpoint() error {
	_, err := r.a.Checkpoint(0)
	return err
}

// Durable reports whether the array was built with WithDurability.
func (r *Array) Durable() bool { return r.a.Durable() }

// Close releases the array's durability files (no-op without
// WithDurability). It does not checkpoint: state since the last
// Checkpoint call is not persisted.
func (r *Array) Close() error {
	if reg := r.a.Region(); reg != nil {
		return reg.Close()
	}
	return nil
}

// OpenArray recovers an Array from the durability tree at dir,
// restoring the last checkpointed state. opts must describe the same
// engine the checkpoints were taken with (layout and page size are
// verified; tuning options are free to differ). The recovered array is
// durable and continues checkpointing incrementally into dir.
func OpenArray(dir string, opts ...Option) (*Array, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	reg, err := vmem.OpenFileRegion(dir)
	if err != nil {
		return nil, err
	}
	a, err := core.Open(reg, o.cfg, 0)
	if err != nil {
		reg.Close()
		return nil, err
	}
	return &Array{a: a}, nil
}

// Checkpoint persists the sharded map's current state as one atomic
// recovery point: every shard is checkpointed at a quiesce point under
// its own lock — one shard at a time, readers and writers on other
// shards never blocked — and a map-level manifest binding the shard
// checkpoints together is published last, by one atomic rename. On
// error the map keeps serving from memory and the previous recovery
// point stays intact.
func (s *Sharded) Checkpoint() error { return s.m.CheckpointAll() }

// RequestCheckpoint starts a checkpoint round in the background: the
// maintenance pool (WithBackgroundRebalancing) folds each shard's
// checkpoint into its sweep once that shard's deferred backlog drains,
// and the last shard's finisher publishes the recovery point. Returns
// false without starting anything when the map is not durable, no
// round can start (one already in flight), or there is no pool to
// drive it. Track completion with Stats().Checkpoints or call
// Checkpoint to force completion synchronously.
func (s *Sharded) RequestCheckpoint() bool {
	if s.pool == nil {
		return false
	}
	return s.m.RequestCheckpoint()
}

// Durable reports whether the map was built with WithDurability.
func (s *Sharded) Durable() bool { return s.m.Durable() }

// OpenSharded recovers a Sharded map from the durability tree at dir:
// the shard boundaries and every shard's state come back exactly as the
// last published Checkpoint captured them, regardless of how far later
// unpublished work had progressed when the process died. opts must
// describe the same engine the checkpoints were taken with; the
// recovered map is durable and continues checkpointing into dir.
func OpenSharded(dir string, opts ...Option) (*Sharded, error) {
	o := defaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	if o.durDir != "" && o.durDir != dir {
		return nil, fmt.Errorf("rma: OpenSharded(%q) conflicts with WithDurability(%q)", dir, o.durDir)
	}
	var m *shard.Map
	var err error
	if o.wal != nil {
		var wo wal.Options
		if wo, err = o.wal.walOptions(); err != nil {
			return nil, err
		}
		m, err = shard.OpenMapWAL(dir, walDirFor(dir), o.cfg, wo, o.wal.policy())
	} else {
		m, err = shard.OpenMap(dir, o.cfg)
	}
	if err != nil {
		return nil, err
	}
	return finishSharded(m, o), nil
}

// LastCheckpoint identifies the last published recovery point: how many
// checkpoint rounds have published since this process built or opened
// the map, and the WAL LSN the latest one covers (0 without WithWAL).
func (s *Sharded) LastCheckpoint() (rounds, lsn uint64) { return s.m.LastCheckpoint() }
