package rma

import (
	"testing"
)

// Fuzz targets for the sharded serving layer, focused on the seams the
// unit tests can only sample: shard-boundary navigation (Floor/Ceiling/
// Range endpoints that straddle or hit a separator exactly) and the
// order-preserving hybrid batch path. Both fuzzers mirror every
// operation into the sorted-slice reference model of the differential
// tests and compare the full query surface with checkQueries, probing
// every shard separator and its neighbours explicitly. The seed corpus
// under testdata/fuzz pins boundary-heavy shapes; CI runs each target
// for a short -fuzz smoke on every push.

// fuzzSeps returns the probes a sharded map's own boundaries induce:
// each separator and both neighbours, where navigation answers must
// switch shards.
func fuzzSeps(s *Sharded) []int64 {
	var probes []int64
	for _, b := range s.Boundaries() {
		if b > minInt64 {
			probes = append(probes, b-1)
		}
		probes = append(probes, b)
		if b < maxInt64 {
			probes = append(probes, b+1)
		}
	}
	return probes
}

// FuzzShardedSeek derives a put/delete stream from data — the high bit
// of every first byte selects deletion, the rest forms a key in
// [0, 32768) — builds a Sharded map with sample-learned boundaries, and
// differentially checks navigation at every separator, the raw probe,
// and the domain edges.
func FuzzShardedSeek(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x01, 0x01, 0x7f, 0xff}, int64(128), int64(3))
	f.Add([]byte{0x10, 0x20, 0x90, 0x20, 0x10, 0x21}, int64(-1), int64(8))
	f.Fuzz(func(t *testing.T, data []byte, probe int64, shardsRaw int64) {
		k := int(shardsRaw%7 + 7)
		k = k%7 + 2 // 2..8 shards
		// Decode the stream; the first half of the puts also serves as
		// the boundary-learning sample.
		var keys []int64
		type op struct {
			del bool
			key int64
		}
		var ops []op
		for i := 0; i+1 < len(data); i += 2 {
			key := int64(data[i]&0x7f)<<8 | int64(data[i+1])
			del := data[i]&0x80 != 0
			ops = append(ops, op{del: del, key: key})
			if !del {
				keys = append(keys, key)
			}
		}
		if len(keys) == 0 {
			keys = []int64{0}
		}
		s, err := NewShardedFromSample(k, keys[:(len(keys)+1)/2],
			WithSegmentCapacity(8), WithPageCapacity(32))
		if err != nil {
			t.Fatal(err)
		}
		m := &refModel{}
		for _, o := range ops {
			if o.del {
				got, err := s.Delete(o.key)
				if err != nil {
					t.Fatal(err)
				}
				if want := m.delete(o.key); got != want {
					t.Fatalf("Delete(%d) = %v, want %v", o.key, got, want)
				}
			} else {
				if err := s.Insert(o.key, diffVal(o.key)); err != nil {
					t.Fatal(err)
				}
				m.insert(o.key)
			}
		}

		probes := append(fuzzSeps(s), probe, minInt64, maxInt64, 0, 32768)
		checkQueries(t, s, m, probes)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzShardedBatch decodes the same stream shape into ApplyBatch
// batches (chunked so some runs ride the bulk path and some do not) and
// checks that the hybrid per-shard application matches the in-order
// reference exactly, including the reported deletion count.
func FuzzShardedBatch(f *testing.F) {
	f.Add([]byte{0x01, 0x00, 0x81, 0x00, 0x01, 0x01}, uint16(4), int64(2))
	f.Add([]byte{0x40, 0x00, 0x40, 0x01, 0xc0, 0x00, 0x40, 0x02}, uint16(64), int64(5))
	f.Fuzz(func(t *testing.T, data []byte, chunkRaw uint16, shardsRaw int64) {
		k := int(shardsRaw%7+7)%7 + 2 // 2..8 shards
		chunk := int(chunkRaw)%256 + 1
		var ops []BatchOp
		var sample []int64
		for i := 0; i+1 < len(data); i += 2 {
			key := int64(data[i]&0x7f)<<8 | int64(data[i+1])
			if data[i]&0x80 != 0 {
				ops = append(ops, BatchOp{Kind: OpDelete, Key: key})
			} else {
				ops = append(ops, BatchOp{Kind: OpPut, Key: key, Val: diffVal(key)})
				sample = append(sample, key)
			}
		}
		s, err := NewShardedFromSample(k, sample,
			WithSegmentCapacity(8), WithPageCapacity(32))
		if err != nil {
			t.Fatal(err)
		}
		m := &refModel{}
		for off := 0; off < len(ops); off += chunk {
			end := off + chunk
			if end > len(ops) {
				end = len(ops)
			}
			batch := ops[off:end]
			want := 0
			for _, op := range batch {
				if op.Kind == OpDelete {
					if m.delete(op.Key) {
						want++
					}
				} else {
					m.insert(op.Key)
				}
			}
			got, err := s.ApplyBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("ApplyBatch chunk [%d,%d) deleted %d, want %d", off, end, got, want)
			}
		}
		probes := append(fuzzSeps(s), minInt64, maxInt64, 0, 32768)
		checkQueries(t, s, m, probes)
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	})
}
