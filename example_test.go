package rma_test

import (
	"fmt"

	"rma"
)

func Example() {
	a, err := rma.New()
	if err != nil {
		panic(err)
	}
	for _, k := range []int64{30, 10, 50, 20, 40} {
		if err := a.Insert(k, k*100); err != nil {
			panic(err)
		}
	}
	v, ok := a.Find(20)
	fmt.Println(v, ok)

	count, sum := a.Sum(15, 45)
	fmt.Println(count, sum)

	for k := range a.All() {
		fmt.Print(k, " ")
	}
	fmt.Println()
	// Output:
	// 2000 true
	// 3 9000
	// 10 20 30 40 50
}

// The four lazy iterator forms: range-over-func sequences that hop
// segments without materializing the range.
func ExampleArray_Range() {
	a, err := rma.New()
	if err != nil {
		panic(err)
	}
	for i := int64(1); i <= 9; i++ {
		if err := a.Insert(i*10, i); err != nil {
			panic(err)
		}
	}
	for k, v := range a.Range(25, 55) { // ascending, bounded both sides
		fmt.Println(k, v)
	}
	for k := range a.Descend(25) { // descending from 25
		fmt.Println("desc", k)
	}
	// Early termination is just a break.
	for k := range a.Ascend(60) {
		fmt.Println(k)
		break
	}
	// Output:
	// 30 3
	// 40 4
	// 50 5
	// desc 20
	// desc 10
	// 60
}

// Navigation and order statistics: Floor/Ceiling locate neighbours of a
// probe key, Rank/Select/CountRange answer positional queries in
// O(log n) via the maintained per-segment cardinality prefix sums.
func ExampleArray_Rank() {
	a, err := rma.New()
	if err != nil {
		panic(err)
	}
	for _, k := range []int64{10, 20, 20, 30, 50} {
		if err := a.Insert(k, k); err != nil {
			panic(err)
		}
	}
	fk, _, _ := a.Floor(45) // greatest key <= 45
	ck, _, _ := a.Ceiling(45)
	fmt.Println(fk, ck)

	fmt.Println(a.Rank(20), a.Rank(21)) // elements strictly below
	k, _, _ := a.Select(3)              // 0-based i-th smallest
	fmt.Println(k)
	fmt.Println(a.CountRange(15, 30))
	// Output:
	// 30 50
	// 1 3
	// 30
	// 3
}

// Merge join between two arrays through lazy cursors: each side holds
// O(1) state, so joining ranges of any size allocates nothing
// proportional to their length.
func ExampleCursor() {
	load := func(keys []int64) *rma.Array {
		a, err := rma.New()
		if err != nil {
			panic(err)
		}
		for _, k := range keys {
			if err := a.Insert(k, k*10); err != nil {
				panic(err)
			}
		}
		return a
	}
	orders := load([]int64{1, 3, 5, 7, 9})
	invoices := load([]int64{2, 3, 5, 8, 9})

	lc := orders.NewCursor(0, 100)
	rc := invoices.NewCursor(0, 100)
	lOK, rOK := lc.Next(), rc.Next()
	for lOK && rOK {
		switch {
		case lc.Key() < rc.Key():
			lOK = lc.Next()
		case lc.Key() > rc.Key():
			rOK = rc.Next()
		default:
			fmt.Println(lc.Key(), lc.Value(), rc.Value())
			lOK, rOK = lc.Next(), rc.Next()
		}
	}
	// Output:
	// 3 30 30
	// 5 50 50
	// 9 90 90
}

// Backends are interchangeable through the OrderedMap interface.
func ExampleOrderedMap() {
	keys := []int64{10, 20, 30, 40}
	vals := []int64{1, 2, 3, 4}

	rmaArr, err := rma.New()
	if err != nil {
		panic(err)
	}
	for i, k := range keys {
		if err := rmaArr.Insert(k, vals[i]); err != nil {
			panic(err)
		}
	}
	ab := rma.NewABTree(64)
	ab.BulkLoad(keys, vals)

	for _, m := range []rma.OrderedMap{rmaArr, ab, rma.NewStaticIndexed(keys, vals, 128)} {
		k, v, _ := m.Floor(35)
		fmt.Println(m.Size(), k, v, m.Rank(25))
	}
	// Output:
	// 4 30 3 2
	// 4 30 3 2
	// 4 30 3 2
}

func ExampleArray_BulkLoad() {
	a, err := rma.New()
	if err != nil {
		panic(err)
	}
	keys := []int64{5, 1, 3, 2, 4} // batches need not be pre-sorted
	vals := []int64{50, 10, 30, 20, 40}
	if err := a.BulkLoad(keys, vals); err != nil {
		panic(err)
	}
	fmt.Println(a.Size())
	mn, _ := a.Min()
	mx, _ := a.Max()
	fmt.Println(mn, mx)
	// Output:
	// 5
	// 1 5
}

func ExampleArray_ScanRange() {
	a, err := rma.New(rma.WithSegmentCapacity(32))
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := a.Insert(i, i*i); err != nil {
			panic(err)
		}
	}
	// Early termination: stop after three elements.
	n := 0
	a.ScanRange(10, 99, func(k, v int64) bool {
		fmt.Println(k, v)
		n++
		return n < 3
	})
	// Output:
	// 10 100
	// 11 121
	// 12 144
}

func ExampleArray_Stats() {
	a, err := rma.New(rma.WithSegmentCapacity(32), rma.WithPageCapacity(64))
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 10_000; i++ {
		if err := a.Insert(i, 0); err != nil {
			panic(err)
		}
	}
	s := a.Stats()
	fmt.Println(s.Inserts == 10_000, s.Rebalances > 0, s.Grows > 0)
	// Output:
	// true true true
}
