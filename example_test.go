package rma_test

import (
	"fmt"

	"rma"
)

func Example() {
	a, err := rma.New()
	if err != nil {
		panic(err)
	}
	for _, k := range []int64{30, 10, 50, 20, 40} {
		if err := a.Insert(k, k*100); err != nil {
			panic(err)
		}
	}
	v, ok := a.Find(20)
	fmt.Println(v, ok)

	count, sum := a.Sum(15, 45)
	fmt.Println(count, sum)

	a.Scan(func(k, v int64) bool {
		fmt.Print(k, " ")
		return true
	})
	fmt.Println()
	// Output:
	// 2000 true
	// 3 9000
	// 10 20 30 40 50
}

func ExampleArray_BulkLoad() {
	a, err := rma.New()
	if err != nil {
		panic(err)
	}
	keys := []int64{5, 1, 3, 2, 4} // batches need not be pre-sorted
	vals := []int64{50, 10, 30, 20, 40}
	if err := a.BulkLoad(keys, vals); err != nil {
		panic(err)
	}
	fmt.Println(a.Size())
	mn, _ := a.Min()
	mx, _ := a.Max()
	fmt.Println(mn, mx)
	// Output:
	// 5
	// 1 5
}

func ExampleArray_ScanRange() {
	a, err := rma.New(rma.WithSegmentCapacity(32))
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := a.Insert(i, i*i); err != nil {
			panic(err)
		}
	}
	// Early termination: stop after three elements.
	n := 0
	a.ScanRange(10, 99, func(k, v int64) bool {
		fmt.Println(k, v)
		n++
		return n < 3
	})
	// Output:
	// 10 100
	// 11 121
	// 12 144
}

func ExampleArray_Stats() {
	a, err := rma.New(rma.WithSegmentCapacity(32), rma.WithPageCapacity(64))
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 10_000; i++ {
		if err := a.Insert(i, 0); err != nil {
			panic(err)
		}
	}
	s := a.Stats()
	fmt.Println(s.Inserts == 10_000, s.Rebalances > 0, s.Grows > 0)
	// Output:
	// true true true
}
